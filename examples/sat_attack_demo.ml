(* The SAT attack, live, against three locking schemes.

   This is the threat model behind the whole paper: the attacker holds
   the locked netlist plus an activated chip, and prunes the key space
   with distinguishing input patterns (Subramanyan et al. [10]). We
   lock the same ripple-carry adders three ways and measure what the
   attack costs, next to the Eqn. 1 prediction:

   - random XOR key gates (RLL): corrupts half the input space, falls
     in a handful of iterations;
   - SFLL-style point-function locking: corrupts a couple of minterms,
     survives orders of magnitude longer (per key bit);
   - a Full-Lock-style keyed permutation network: iteration counts stay
     moderate but gate overhead explodes — why Sec. V-C uses it only as
     a top-up.

   Run with: dune exec examples/sat_attack_demo.exe *)

module Netlist = Rb_netlist.Netlist
module Circuits = Rb_netlist.Circuits
module Lock = Rb_netlist.Lock
module Attack = Rb_sat.Attack
module Resilience = Rb_locking.Resilience
module Rng = Rb_util.Rng
module Table = Rb_util.Table

let attack_row table base (locked : Lock.locked) =
  let t0 = Sys.time () in
  let outcome = Attack.attack_locked ~max_iterations:5_000 locked in
  let dt = Sys.time () -. t0 in
  let iterations, status =
    match outcome with
    | Attack.Broken { key; iterations } ->
      let ok = Attack.key_is_correct locked key in
      (iterations, if ok then "broken (key verified)" else "broken (WRONG KEY?)")
    | Attack.Budget_exceeded { iterations } -> (iterations, "survived budget")
    | Attack.Solver_limit { iterations; reason } ->
      (iterations, "solver gave up: " ^ Rb_util.Limits.reason_label reason)
  in
  (* a representative wrong key: flip every other correct-key bit *)
  let wrong = Array.mapi (fun i b -> if i mod 2 = 0 then not b else b) locked.Lock.correct_key in
  Table.add_text_row table ~label:locked.Lock.description
    ~cells:
      [
        string_of_int (Netlist.n_keys locked.Lock.circuit);
        Printf.sprintf "%.1f%%" (100.0 *. Lock.error_rate locked ~key:wrong);
        string_of_int iterations;
        Printf.sprintf "%.2fs" dt;
        Printf.sprintf "+%.0f%%" (100.0 *. Lock.gate_overhead locked ~baseline:base);
        status;
      ]

let () =
  print_endline "SAT attack vs. locking schemes on a 4-bit adder (8 primary inputs)";
  print_newline ();
  let base = Circuits.adder ~width:4 in
  let rng = Rng.create 2026 in
  let table =
    Table.create ~title:"oracle-guided SAT attack [10]"
      ~columns:[ "key bits"; "wrong-key error rate"; "DIP iterations"; "time"; "gates"; "outcome" ]
  in
  attack_row table base (Lock.xor_random ~rng ~key_bits:12 base);
  attack_row table base (Lock.point_function ~minterms:[ 0x5A ] base);
  attack_row table base (Lock.point_function ~minterms:[ 0x5A; 0x33; 0xC1 ] base);
  attack_row table base (Lock.permutation_network ~rng ~layers:6 base);
  Table.print table;
  print_newline ();

  (* Eqn. 1's prediction of the corruption/resilience trade-off, on the
     word-level units the binding algorithms lock. *)
  let table =
    Table.create
      ~title:"Eqn. 1: expected SAT iterations vs locked minterms (16-bit input space)"
      ~columns:[ "1 minterm"; "2"; "3"; "8"; "64"; "1024" ]
  in
  List.iter
    (fun key_bits ->
      let cells =
        List.map
          (fun minterms ->
            let lambda =
              Resilience.lambda_minterms ~key_bits ~correct_keys:1 ~input_bits:16 ~minterms
            in
            if lambda = infinity then "inf" else Printf.sprintf "%.0f" lambda)
          [ 1; 2; 3; 8; 64; 1024 ]
      in
      Table.add_text_row table ~label:(Printf.sprintf "%d-bit key" key_bits) ~cells)
    [ 17; 20; 24; 32 ];
  Table.print table;
  print_newline ();
  print_endline
    "More locked minterms -> more corruption but fewer expected SAT iterations.\n\
     The paper's binding algorithms escape the dilemma by making each of the\n\
     few SAT-resilient minterms count at the application level."
