(* Quickstart: the paper's motivational example (Figs. 1 and 2), end to
   end, on the public API.

   A 5-operation scheduled DFG runs on 3 adder FUs. FU0 locks input
   minterm 'x', FU1 locks 'y'. We bind it three ways — naively,
   obfuscation-aware (Sec. IV), and with binding-obfuscation co-design
   (Sec. V) — and watch the expected application errors (Eqn. 2) grow.

   Run with: dune exec examples/quickstart.exe *)

module Dfg = Rb_dfg.Dfg
module Minterm = Rb_dfg.Minterm
module B = Dfg.Builder
module Schedule = Rb_sched.Schedule
module Kmatrix = Rb_sim.Kmatrix
module Allocation = Rb_hls.Allocation
module Binding = Rb_hls.Binding
module Config = Rb_locking.Config
module Scheme = Rb_locking.Scheme
module Cost = Rb_core.Cost
module Obf_binding = Rb_core.Obf_binding
module Codesign = Rb_core.Codesign

let () =
  (* 1. A scheduled DFG: OPA..OPE over two clock cycles (Fig. 2A). *)
  let b = B.create "fig2" in
  let a = B.input b "a" and b_in = B.input b "b" in
  let c = B.input b "c" and d = B.input b "d" and g = B.input b "g" in
  let opa = B.add ~label:"OPA" b a b_in in
  let opb = B.add ~label:"OPB" b c d in
  let opc = B.add ~label:"OPC" b opa opb in
  let opd = B.add ~label:"OPD" b opa g in
  let ope = B.add ~label:"OPE" b opb g in
  List.iter (B.output b) [ opc; opd; ope ];
  let dfg = B.finish b in
  let schedule = Schedule.make dfg ~cycle_of:[| 0; 0; 1; 1; 1 |] in
  let allocation = { Allocation.adders = 3; multipliers = 0 } in
  Format.printf "DFG: %a@." Dfg.pp dfg;
  Format.printf "Schedule: %a@.@." Schedule.pp schedule;

  (* 2. The K matrix (Sec. IV-A): expected occurrences of each input
     minterm per operation during the typical workload. Normally this
     comes from trace simulation (Kmatrix.build); here we type in the
     paper's numbers. *)
  let x = Minterm.pack 1 1 and y = Minterm.pack 2 2 in
  let k =
    Kmatrix.of_counts dfg
      [
        (0, [ (x, 6); (y, 9) ]);
        (1, [ (x, 4); (y, 3) ]);
        (2, [ (x, 3); (y, 7) ]);
        (3, [ (x, 0); (y, 0) ]);
        (4, [ (x, 10); (y, 8) ]);
      ]
  in

  (* 3. A SAT-resilient locking configuration (Fig. 2B): FU0 locks x,
     FU1 locks y, FU2 unlocked. *)
  let config =
    Config.make ~scheme:Scheme.Sfll_rem ~locks:[ (0, [ x ]); (1, [ y ]) ]
  in
  Format.printf "Locking: %a@." Config.pp config;
  Format.printf "Predicted SAT iterations per locked FU (Eqn. 1): %.0f@.@."
    (Config.lambda_per_fu config);

  (* 4. A security-oblivious binding injects few errors. *)
  let naive = Binding.make schedule allocation ~fu_of_op:[| 0; 1; 0; 1; 2 |] in
  Format.printf "Naive binding errors (Eqn. 2):              E = %d@."
    (Cost.expected_errors k naive config);

  (* 5. Obfuscation-aware binding (Sec. IV-B) maximizes Eqn. 2 by one
     max-weight bipartite matching per cycle. *)
  let obf = Obf_binding.bind k config schedule allocation in
  Format.printf "Obfuscation-aware binding errors (Thm. 2):  E = %d@."
    (Cost.expected_errors k obf config);
  List.iter
    (fun op ->
      Format.printf "  %s -> FU%d@." (Dfg.op dfg op).Dfg.label (Binding.fu_of_op obf op))
    [ 0; 1; 2; 3; 4 ];

  (* 6. Co-design (Sec. V) also picks WHICH minterms to lock, from a
     candidate list. *)
  let spec =
    {
      Codesign.scheme = Scheme.Sfll_rem;
      locked_fus = [ 0; 1 ];
      minterms_per_fu = 1;
      candidates = [| x; y |];
    }
  in
  let solution = Codesign.heuristic k schedule allocation spec in
  Format.printf "@.Co-design picks: %a@." Config.pp solution.Codesign.config;
  Format.printf "Co-designed binding errors:                 E = %d@."
    solution.Codesign.errors
