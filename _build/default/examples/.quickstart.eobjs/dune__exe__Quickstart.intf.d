examples/quickstart.mli:
