examples/methodology.ml: Array Format List Printf Rb_core Rb_dfg Rb_hls Rb_locking Rb_netlist Rb_sim Rb_util Rb_workload
