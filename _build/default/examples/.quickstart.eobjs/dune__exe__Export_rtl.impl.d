examples/export_rtl.ml: Array Format List Printf Rb_core Rb_dfg Rb_hls Rb_locking Rb_rtl Rb_sim Rb_workload String Sys
