examples/quickstart.ml: Format List Rb_core Rb_dfg Rb_hls Rb_locking Rb_sched Rb_sim
