examples/secure_dct.mli:
