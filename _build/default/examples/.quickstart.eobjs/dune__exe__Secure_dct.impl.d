examples/secure_dct.ml: Array Format List Printf Rb_core Rb_dfg Rb_hls Rb_locking Rb_sched Rb_sim Rb_util Rb_workload
