examples/methodology.mli:
