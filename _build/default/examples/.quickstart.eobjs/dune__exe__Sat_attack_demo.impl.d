examples/sat_attack_demo.ml: Array List Printf Rb_locking Rb_netlist Rb_sat Rb_util Sys
