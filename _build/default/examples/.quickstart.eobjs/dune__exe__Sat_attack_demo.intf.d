examples/sat_attack_demo.mli:
