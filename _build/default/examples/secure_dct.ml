(* Locking a DCT accelerator, end to end.

   The dct benchmark (an 8-point DCT kernel from mpeg2enc) is
   scheduled, profiled on its typical image workload, and locked with 2
   locked multiplier FUs x 2 locked minterms each. The same locking
   configuration is then realized under all four binding algorithms,
   and the wrong-key behaviour is *measured* by trace simulation — not
   just predicted by the cost function — along with the register and
   switching overhead each binding pays.

   Run with: dune exec examples/secure_dct.exe *)

module Dfg = Rb_dfg.Dfg
module Schedule = Rb_sched.Schedule
module Benchmark = Rb_workload.Benchmark
module Kmatrix = Rb_sim.Kmatrix
module Exec = Rb_sim.Exec
module Allocation = Rb_hls.Allocation
module Binding = Rb_hls.Binding
module Profile = Rb_hls.Profile
module Registers = Rb_hls.Registers
module Switching = Rb_hls.Switching
module Config = Rb_locking.Config
module Scheme = Rb_locking.Scheme
module Cost = Rb_core.Cost
module Table = Rb_util.Table

let () =
  let bench = Benchmark.find "dct" in
  let schedule = Benchmark.schedule bench in
  let trace = Benchmark.trace bench in
  let allocation = Allocation.for_schedule schedule in
  Format.printf "%a@." Dfg.pp bench.Benchmark.dfg;
  Format.printf "%a, allocated %a@.@." Schedule.pp schedule Allocation.pp allocation;

  (* Profile the typical workload. *)
  let k = Kmatrix.build trace in
  let profile = Profile.build trace in
  let candidates = Array.of_list (Kmatrix.top_minterms ~kind:Dfg.Mul k ~n:10) in
  Format.printf "Top multiplier input minterms in the trace:@.";
  Array.iteri
    (fun i m ->
      if i < 5 then
        Format.printf "  %a seen %d times@." Rb_dfg.Minterm.pp m
          (Kmatrix.total_occurrences k m))
    candidates;

  (* Lock the first two multiplier FUs with two minterms each, chosen
     by the co-design heuristic. *)
  let mul_fus = Allocation.fu_ids allocation Dfg.Mul in
  let locked_fus = List.filteri (fun i _ -> i < 2) mul_fus in
  let spec =
    { Rb_core.Codesign.scheme = Scheme.Sfll_rem; locked_fus; minterms_per_fu = 2; candidates }
  in
  let codesigned = Rb_core.Codesign.heuristic k schedule allocation spec in
  let config = codesigned.Rb_core.Codesign.config in
  Format.printf "@.Locking configuration: %a@." Config.pp config;
  Format.printf "Predicted SAT iterations per locked FU (Eqn. 1): %.0f@.@."
    (Config.lambda_per_fu config);

  (* Bind the same configuration four ways. *)
  let area = Rb_hls.Area_binding.bind schedule allocation in
  let power = Rb_hls.Power_binding.bind schedule allocation ~profile in
  let obf = Rb_core.Obf_binding.bind k config schedule allocation in
  let cd = codesigned.Rb_core.Codesign.binding in

  let table =
    Table.create ~title:"dct under one locking configuration, four bindings"
      ~columns:
        [ "E (Eqn.2)"; "measured errors"; "corrupted samples"; "burst"; "registers"; "switching" ]
  in
  let report name binding =
    let e = Cost.expected_errors k binding config in
    let r =
      Exec.application_errors schedule trace ~fu_of_op:(Binding.fu_array binding) ~config
    in
    Table.add_text_row table ~label:name
      ~cells:
        [
          string_of_int e;
          string_of_int r.Exec.error_events;
          Printf.sprintf "%d/%d" r.Exec.corrupted_samples r.Exec.samples;
          string_of_int r.Exec.max_consecutive_cycles;
          string_of_int (Registers.count binding);
          Printf.sprintf "%.3f" (Switching.rate binding profile);
        ]
  in
  report "area-aware [20]" area;
  report "power-aware [19]" power;
  report "obfuscation-aware (Sec. IV)" obf;
  report "co-design (Sec. V)" cd;
  Table.print table;
  print_newline ();
  print_endline
    "Same locked minterms, same SAT resilience - the security-aware bindings\n\
     route the error-prone values onto the locked units, multiplying the\n\
     wrong-key corruption the attacker experiences."
