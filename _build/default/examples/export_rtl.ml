(* From behavioural kernel to locked Verilog.

   The full back half of the flow: take a benchmark, co-design its
   binding and locking, elaborate the bound schedule into a datapath
   (registers by left-edge allocation, operand muxes, control
   schedule), check the RTL against the dataflow semantics cycle by
   cycle, and print the resulting Verilog module.

   Run with: dune exec examples/export_rtl.exe [benchmark]      *)

module Dfg = Rb_dfg.Dfg
module Benchmark = Rb_workload.Benchmark
module Kmatrix = Rb_sim.Kmatrix
module Allocation = Rb_hls.Allocation
module Datapath = Rb_rtl.Datapath
module Rtl_sim = Rb_rtl.Rtl_sim
module Verilog = Rb_rtl.Verilog

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "fir" in
  let bench =
    match Benchmark.find name with
    | b -> b
    | exception Not_found ->
      Printf.eprintf "unknown benchmark %S; try one of: %s\n" name
        (String.concat ", " (Benchmark.names ()));
      exit 1
  in
  let schedule = Benchmark.schedule bench in
  let trace = Benchmark.trace ~length:64 bench in
  let allocation = Allocation.for_schedule schedule in
  let k = Kmatrix.build trace in

  (* Co-design the binding (2 locked adder FUs when available). *)
  let kind = Dfg.Add in
  let candidates = Array.of_list (Kmatrix.top_minterms ~kind k ~n:10) in
  let fus = Allocation.fu_ids allocation kind in
  let spec =
    {
      Rb_core.Codesign.scheme = Rb_locking.Scheme.Sfll_rem;
      locked_fus = List.filteri (fun i _ -> i < 2) fus;
      minterms_per_fu = min 2 (Array.length candidates);
      candidates;
    }
  in
  let solution = Rb_core.Codesign.heuristic k schedule allocation spec in
  let binding = solution.Rb_core.Codesign.binding in

  (* Elaborate, verify, emit. *)
  let dp = Datapath.build binding in
  (match Datapath.validate dp with
   | Ok () -> ()
   | Error e ->
     Printf.eprintf "datapath inconsistency: %s\n" e;
     exit 1);
  (match Rtl_sim.check_trace dp trace with
   | Ok () ->
     Printf.eprintf
       "// RTL simulation matches dataflow semantics on %d samples\n"
       (Rb_sim.Trace.length trace)
   | Error e ->
     Printf.eprintf "RTL/dataflow mismatch: %s\n" e;
     exit 1);
  Printf.eprintf "// %d registers, mux fan-in %d, locking: %s\n"
    (Datapath.n_registers dp) (Datapath.mux_inputs dp)
    (Format.asprintf "%a" Rb_locking.Config.pp solution.Rb_core.Codesign.config);
  print_string (Verilog.emit dp)
