(* The Sec. V-C design methodology, step by step.

   A designer states two goals for the fir accelerator: a minimum
   number of wrong-key error events over the typical workload, and a
   minimum expected SAT-attack effort. The methodology tunes the
   locked-input budget upward from one until the error target is met —
   the smallest corrupting set, hence the most SAT resilience Eqn. 1
   will grant — and reports whether an exponential-iteration-runtime
   scheme (Full-Lock-style permutation network) must be composed on top
   to close a resilience gap, together with what that top-up costs in
   gates.

   Run with: dune exec examples/methodology.exe *)

module Dfg = Rb_dfg.Dfg
module Benchmark = Rb_workload.Benchmark
module Kmatrix = Rb_sim.Kmatrix
module Allocation = Rb_hls.Allocation
module Config = Rb_locking.Config
module Scheme = Rb_locking.Scheme
module Methodology = Rb_core.Methodology
module Lock = Rb_netlist.Lock
module Circuits = Rb_netlist.Circuits
module Netlist = Rb_netlist.Netlist
module Table = Rb_util.Table

(* The designer's key budget is fixed at 18 bits per FU (an area
   constraint), so resilience genuinely falls as the locked-input
   budget grows — the Sec. V-C dilemma. *)
let key_budget = 18

let run_goal k schedule allocation candidates table ~label goal =
  let plan =
    Methodology.design ~key_bits:key_budget k schedule allocation
      ~scheme:Scheme.Sfll_rem ~locked_fus:[ 0 ] ~candidates goal
  in
  Table.add_text_row table ~label
    ~cells:
      [
        string_of_int goal.Methodology.target_error_events;
        Printf.sprintf "%.0f" goal.Methodology.min_lambda;
        string_of_int plan.Methodology.minterms_per_fu;
        string_of_int plan.Methodology.achieved_errors;
        (if plan.Methodology.predicted_lambda = infinity then "inf"
         else Printf.sprintf "%.0f" plan.Methodology.predicted_lambda);
        (if plan.Methodology.exponential_topup then "yes" else "no");
      ];
  plan

let () =
  let bench = Benchmark.find "fir" in
  let schedule = Benchmark.schedule bench in
  let trace = Benchmark.trace bench in
  let allocation = Allocation.for_schedule schedule in
  let k = Kmatrix.build trace in
  let candidates = Array.of_list (Kmatrix.top_minterms ~kind:Dfg.Add k ~n:10) in
  Format.printf "%a over a %d-sample typical workload@.@." Dfg.pp bench.Benchmark.dfg
    (Rb_sim.Trace.length trace);

  let table =
    Table.create ~title:"Sec. V-C: minimum locked inputs meeting each error target"
      ~columns:
        [ "target errors"; "min lambda"; "chosen |M|"; "achieved"; "lambda"; "needs top-up" ]
  in
  let goals =
    [
      ("modest", { Methodology.target_error_events = 50; min_lambda = 1_000.0 });
      ("demanding", { Methodology.target_error_events = 1_200; min_lambda = 1_000.0 });
      ("extreme", { Methodology.target_error_events = 1_200; min_lambda = 1e7 });
    ]
  in
  let plans =
    List.map
      (fun (label, goal) -> run_goal k schedule allocation candidates table ~label goal)
      goals
  in
  Table.print table;
  print_newline ();

  (* When a plan flags a resilience gap, Sec. V-C composes an
     exponential-SAT-runtime scheme on top. Quantify that premium on
     the adder FU the plan locked. *)
  (match List.find_opt (fun p -> p.Methodology.exponential_topup) plans with
   | None -> print_endline "All goals met by critical-minterm locking alone."
   | Some plan ->
     Format.printf
       "A goal leaves a resilience gap (lambda %.0f below its target):@."
       plan.Methodology.predicted_lambda;
     let base = Circuits.adder ~width:8 in
     let rng = Rb_util.Rng.create 7 in
     let table =
       Table.create ~title:"Full-Lock-style top-up cost on the locked 8-bit adder FU"
         ~columns:[ "key bits"; "extra gates"; "gate overhead" ]
     in
     List.iter
       (fun layers ->
         let locked = Lock.permutation_network ~rng ~layers base in
         Table.add_text_row table ~label:(Printf.sprintf "%d swap layers" layers)
           ~cells:
             [
               string_of_int (Netlist.n_keys locked.Lock.circuit);
               string_of_int (Netlist.n_gates locked.Lock.circuit - Netlist.n_gates base);
               Printf.sprintf "+%.0f%%" (100.0 *. Lock.gate_overhead locked ~baseline:base);
             ])
       [ 2; 4; 8; 16 ];
     Table.print table;
     print_endline
       "\nThe permutation network's overhead grows linearly in layers (the paper\n\
        quotes +61% area / +192% power for 384-bit Full-Lock on b14) - which is\n\
        why the methodology spends cheap critical-minterm resilience first and\n\
        tops up only the remainder.")
