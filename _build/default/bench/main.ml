(* The evaluation harness: regenerates every table and figure of the
   paper's Sec. VI (plus the analytical/gate-level results it builds
   on), and ends with Bechamel runtime microbenches of each binding
   algorithm.

   Sections (pass names as argv to run a subset):
     fig4         error increase per benchmark (paper Fig. 4)
     fig5         error increase per locking configuration (Fig. 5)
     fig6         register/switching overhead (Fig. 6)
     headline     paper-abstract numbers: 26x / 99x / heuristic gap
     eqn1         SAT-resilience trade-off table (Eqn. 1)
     sat-attack   oracle-guided SAT attack on locked adders (Sec. II)
     methodology  Sec. V-C design-goal walk
     runtime      Bechamel microbenches of the binding algorithms *)

module Dfg = Rb_dfg.Dfg
module Schedule = Rb_sched.Schedule
module Workload = Rb_workload.Benchmark
module Kmatrix = Rb_sim.Kmatrix
module Allocation = Rb_hls.Allocation
module Profile = Rb_hls.Profile
module Experiments = Rb_core.Experiments
module Codesign = Rb_core.Codesign
module Methodology = Rb_core.Methodology
module Resilience = Rb_locking.Resilience
module Scheme = Rb_locking.Scheme
module Lock = Rb_netlist.Lock
module Circuits = Rb_netlist.Circuits
module Netlist = Rb_netlist.Netlist
module Attack = Rb_sat.Attack
module Table = Rb_util.Table
module Stats = Rb_util.Stats
module Rng = Rb_util.Rng

let section name =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 72 '=') name (String.make 72 '=')

(* ------------------------------------------------------------ contexts *)

let contexts =
  lazy
    (List.map
       (fun b ->
         let schedule = Workload.schedule b in
         let trace = Workload.trace b in
         Experiments.context ~name:b.Workload.name schedule trace)
       (Workload.all ()))

let sweep_cache : (string * Dfg.op_kind, Experiments.config_result list) Hashtbl.t =
  Hashtbl.create 32

let sweep_of ctx kind =
  let key = (ctx.Experiments.benchmark, kind) in
  match Hashtbl.find_opt sweep_cache key with
  | Some r -> r
  | None ->
    let r =
      Experiments.sweep ~max_combos_per_config:2000 ~max_optimal_assignments:200_000 ctx
        kind
    in
    Hashtbl.add sweep_cache key r;
    r

let fmt_ratio r = Printf.sprintf "%.1fx" r

(* ---------------------------------------------------------------- fig4 *)

let fig4 () =
  section
    "Fig. 4 - increase in application errors of locking under security-aware\n\
     binding, vs area-aware [20] and power-aware [19] binding with identical\n\
     locking configurations (mean over {1,2,3} locked FUs x {1,2,3} locked\n\
     inputs x candidate-input combinations; log-scale bars)";
  let top =
    Table.create ~title:"Fig. 4 (top): obfuscation-aware binding"
      ~columns:[ "vs area"; "vs power"; "log bar (vs area)" ]
  in
  let bottom =
    Table.create
      ~title:"Fig. 4 (bottom): binding-obfuscation co-design (optimal / P-time heuristic)"
      ~columns:
        [ "opt vs area"; "opt vs power"; "heur vs area"; "heur vs power";
          "log bar (heur vs area)" ]
  in
  let all_obf_area = ref [] and all_obf_power = ref [] in
  let all_cd_area = ref [] and all_cd_power = ref [] in
  List.iter
    (fun ctx ->
      List.iter
        (fun kind ->
          let results = sweep_of ctx kind in
          match Experiments.fig4_row ~benchmark:ctx.Experiments.benchmark kind results with
          | None -> ()
          | Some row ->
            let label =
              Printf.sprintf "%s/%s" ctx.Experiments.benchmark (Dfg.kind_label kind)
            in
            all_obf_area := row.Experiments.obf_vs_area :: !all_obf_area;
            all_obf_power := row.Experiments.obf_vs_power :: !all_obf_power;
            all_cd_area := row.Experiments.cd_heur_vs_area :: !all_cd_area;
            all_cd_power := row.Experiments.cd_heur_vs_power :: !all_cd_power;
            Table.add_text_row top ~label
              ~cells:
                [
                  fmt_ratio row.Experiments.obf_vs_area;
                  fmt_ratio row.Experiments.obf_vs_power;
                  Table.log_bar row.Experiments.obf_vs_area;
                ];
            Table.add_text_row bottom ~label
              ~cells:
                [
                  fmt_ratio row.Experiments.cd_opt_vs_area;
                  fmt_ratio row.Experiments.cd_opt_vs_power;
                  fmt_ratio row.Experiments.cd_heur_vs_area;
                  fmt_ratio row.Experiments.cd_heur_vs_power;
                  Table.log_bar row.Experiments.cd_heur_vs_area;
                ])
        [ Dfg.Add; Dfg.Mul ])
    (Lazy.force contexts);
  Table.add_text_row top ~label:"Avg."
    ~cells:
      [
        fmt_ratio (Stats.mean !all_obf_area);
        fmt_ratio (Stats.mean !all_obf_power);
        Table.log_bar (Stats.mean !all_obf_area);
      ];
  Table.add_text_row bottom ~label:"Avg."
    ~cells:
      [
        "-"; "-";
        fmt_ratio (Stats.mean !all_cd_area);
        fmt_ratio (Stats.mean !all_cd_power);
        Table.log_bar (Stats.mean !all_cd_area);
      ];
  Table.print top;
  print_newline ();
  Table.print bottom;
  Printf.printf
    "\nPaper reference: obf-aware 22x (area) / 29x (power); co-design 82x / 115x.\n\
     No multipliers in ecb_enc4 (as in the paper). Combination spaces above\n\
     2000 are deterministically sampled; optimal co-design above 200k\n\
     assignments re-runs on a shortened candidate list (disclosed in the fig5\n\
     section).\n";
  (* The workload property that sets the ratio magnitude: how
     operation-concentrated the candidate minterms are (1.0 = a
     candidate fires on exactly one operation, the regime behind the
     paper's largest ratios). *)
  let concentrations =
    List.concat_map
      (fun ctx ->
        List.concat_map
          (fun kind ->
            Array.to_list (Experiments.candidates_for ctx kind)
            |> List.map (fun m -> Kmatrix.op_concentration ctx.Experiments.k m))
          [ Dfg.Add; Dfg.Mul ])
      (Lazy.force contexts)
  in
  Printf.printf
    "Candidate op-concentration across the suite: mean %.2f, median %.2f\n\
     (1.0 = single-operation minterm; see EXPERIMENTS.md - this statistic is\n\
     what separates our ratio magnitudes from the paper's MediaBench runs).\n"
    (Stats.mean concentrations) (Stats.median concentrations)

(* ---------------------------------------------------------------- fig5 *)

let fig5 () =
  section
    "Fig. 5 - error increase vs locking configuration (pooled over all\n\
     benchmarks and kinds; co-design = P-time heuristic, as in the paper)";
  let pooled =
    List.concat_map
      (fun ctx -> List.concat_map (fun kind -> sweep_of ctx kind) [ Dfg.Add; Dfg.Mul ])
      (Lazy.force contexts)
  in
  let table =
    Table.create ~title:"mean error-increase ratio"
      ~columns:
        [ "obf vs area"; "obf vs power"; "co-d vs area"; "co-d vs power";
          "log bar (co-d/area)" ]
  in
  List.iter
    (fun cell ->
      Table.add_text_row table ~label:cell.Experiments.cell_label
        ~cells:
          [
            fmt_ratio cell.Experiments.f5_obf_vs_area;
            fmt_ratio cell.Experiments.f5_obf_vs_power;
            fmt_ratio cell.Experiments.f5_cd_vs_area;
            fmt_ratio cell.Experiments.f5_cd_vs_power;
            Table.log_bar cell.Experiments.f5_cd_vs_area;
          ])
    (Experiments.fig5_cells pooled);
  Table.print table;
  (* Disclose where optimal co-design ran on a reduced candidate list. *)
  let reduced =
    List.concat_map
      (fun ctx ->
        List.concat_map
          (fun kind ->
            List.filter_map
              (fun r ->
                if r.Experiments.optimal_candidates_used < 10 then
                  Some
                    (Printf.sprintf "%s/%s L=%d m=%d: |C|=%d" ctx.Experiments.benchmark
                       (Dfg.kind_label kind) r.Experiments.locked_fu_count
                       r.Experiments.minterms_per_fu r.Experiments.optimal_candidates_used)
                else None)
              (sweep_of ctx kind))
          [ Dfg.Add; Dfg.Mul ])
      (Lazy.force contexts)
  in
  Printf.printf
    "\nPaper reference: consistently 10-150x across configurations.\n\
     Optimal co-design used a shortened candidate list on %d configuration\n\
     runs (exact search above the 200k-assignment cap):\n"
    (List.length reduced);
  List.iter (fun line -> Printf.printf "  %s\n" line) reduced

(* ---------------------------------------------------------------- fig6 *)

let fig6 () =
  section
    "Fig. 6 - design overhead of security-aware binding (registers vs the\n\
     register-minimizing binder; switching rate vs the switching-minimizing\n\
     binder), averaged over the locking-configuration sweep";
  let regs =
    Table.create ~title:"registers (distributed register-file model)"
      ~columns:
        [ "area-aware"; "obf-aware"; "co-design"; "increase (obf)"; "increase (co-d)" ]
  in
  let sw =
    Table.create ~title:"switching rate (input-port toggle fraction)"
      ~columns:
        [ "power-aware"; "obf-aware"; "co-design"; "increase (obf)"; "increase (co-d)" ]
  in
  let dr_obf = ref [] and dr_cd = ref [] and ds_obf = ref [] and ds_cd = ref [] in
  List.iter
    (fun ctx ->
      let ov = Experiments.overhead ~combos_per_config:8 ctx in
      let base_r = float_of_int ov.Experiments.area_registers in
      dr_obf := (ov.Experiments.obf_registers -. base_r) :: !dr_obf;
      dr_cd := (ov.Experiments.cd_registers -. base_r) :: !dr_cd;
      ds_obf := (ov.Experiments.obf_switching -. ov.Experiments.power_switching) :: !ds_obf;
      ds_cd := (ov.Experiments.cd_switching -. ov.Experiments.power_switching) :: !ds_cd;
      Table.add_text_row regs ~label:ov.Experiments.ov_benchmark
        ~cells:
          [
            string_of_int ov.Experiments.area_registers;
            Printf.sprintf "%.1f" ov.Experiments.obf_registers;
            Printf.sprintf "%.1f" ov.Experiments.cd_registers;
            Printf.sprintf "%+.1f" (ov.Experiments.obf_registers -. base_r);
            Printf.sprintf "%+.1f" (ov.Experiments.cd_registers -. base_r);
          ];
      Table.add_text_row sw ~label:ov.Experiments.ov_benchmark
        ~cells:
          [
            Printf.sprintf "%.3f" ov.Experiments.power_switching;
            Printf.sprintf "%.3f" ov.Experiments.obf_switching;
            Printf.sprintf "%.3f" ov.Experiments.cd_switching;
            Printf.sprintf "%+.3f"
              (ov.Experiments.obf_switching -. ov.Experiments.power_switching);
            Printf.sprintf "%+.3f"
              (ov.Experiments.cd_switching -. ov.Experiments.power_switching);
          ])
    (Lazy.force contexts);
  Table.add_text_row regs ~label:"Avg."
    ~cells:
      [ "-"; "-"; "-"; Printf.sprintf "%+.2f" (Stats.mean !dr_obf);
        Printf.sprintf "%+.2f" (Stats.mean !dr_cd) ];
  Table.add_text_row sw ~label:"Avg."
    ~cells:
      [ "-"; "-"; "-"; Printf.sprintf "%+.3f" (Stats.mean !ds_obf);
        Printf.sprintf "%+.3f" (Stats.mean !ds_cd) ];
  Table.print regs;
  print_newline ();
  Table.print sw;
  Printf.printf
    "\nPaper reference: ~+4.7 registers vs area-aware, ~+0.03 switching rate vs\n\
     power-aware. Our register deltas are smaller in absolute terms (smaller\n\
     8-bit kernels; see EXPERIMENTS.md); the reproduced claim is the shape -\n\
     small positive overhead.\n"

(* ------------------------------------------------------------ headline *)

let headline () =
  section "Headline numbers (paper abstract: 26x and 99x; heuristic within 0.5%)";
  let obf = ref [] and cd = ref [] and gaps = ref [] in
  List.iter
    (fun ctx ->
      List.iter
        (fun kind ->
          let results = sweep_of ctx kind in
          (match
             Experiments.fig4_row ~benchmark:ctx.Experiments.benchmark kind results
           with
           | None -> ()
           | Some row ->
             obf := row.Experiments.obf_vs_area :: row.Experiments.obf_vs_power :: !obf;
             cd :=
               row.Experiments.cd_heur_vs_area :: row.Experiments.cd_heur_vs_power :: !cd);
          List.iter
            (fun r ->
              (* heuristic vs optimal, only where optimal searched the
                 full candidate list *)
              if r.Experiments.optimal_candidates_used = 10 then begin
                let opt = float_of_int r.Experiments.e_codesign_optimal in
                let heur = float_of_int r.Experiments.e_codesign_heuristic in
                if opt > 0.0 then gaps := ((opt -. heur) /. opt *. 100.0) :: !gaps
              end)
            results)
        [ Dfg.Add; Dfg.Mul ])
    (Lazy.force contexts);
  Printf.printf "obfuscation-aware binding error increase (mean):   %.1fx   (paper: 26x)\n"
    (Stats.mean !obf);
  Printf.printf "binding-obfuscation co-design error increase:      %.1fx   (paper: 99x)\n"
    (Stats.mean !cd);
  Printf.printf
    "heuristic vs optimal degradation over %d full-search configurations:\n\
    \  mean %.3f%%, worst %.3f%%   (paper: < 0.5%%)\n"
    (List.length !gaps) (Stats.mean !gaps) (Stats.maximum !gaps)

(* ----------------------------------------------------------------- eqn1 *)

let eqn1 () =
  section
    "Eqn. 1 - expected SAT-attack iterations vs locked-input count\n\
     (16-bit FU input space, 1 correct key; 'inf' = attack not expected to\n\
     converge because a DIP eliminates < 1 wrong key in expectation)";
  let minterm_counts = [ 1; 2; 3; 8; 64; 1024; 16384 ] in
  let table =
    Table.create ~title:"lambda(key bits, locked inputs)"
      ~columns:(List.map string_of_int minterm_counts)
  in
  List.iter
    (fun key_bits ->
      let cells =
        List.map
          (fun minterms ->
            let l =
              Resilience.lambda_minterms ~key_bits ~correct_keys:1 ~input_bits:16
                ~minterms
            in
            if l = infinity then "inf" else Printf.sprintf "%.0f" l)
          minterm_counts
      in
      Table.add_text_row table ~label:(Printf.sprintf "%d-bit key" key_bits) ~cells)
    [ 16; 17; 20; 24; 32; 48 ];
  Table.print table;
  print_newline ();
  let budget =
    Resilience.max_minterms_for ~key_bits:20 ~correct_keys:1 ~input_bits:16
      ~min_lambda:10_000.0
  in
  Printf.printf
    "Resilience budget example: a 20-bit key targeting >= 10^4 iterations may\n\
     lock at most %d minterms - the budget the binding algorithms then spend.\n"
    budget

(* ------------------------------------------------------------ sat-attack *)

let sat_attack () =
  section
    "SAT attack (Sec. II) - measured DIP iterations on locked adders, next to\n\
     the Eqn. 1 prediction; the corruption/resilience trade-off, empirically";
  let table =
    Table.create ~title:"oracle-guided attack [10] (CDCL solver, from scratch)"
      ~columns:
        [ "inputs"; "key bits"; "locked minterms"; "iterations"; "Eqn.1 lambda"; "time";
          "gates" ]
  in
  let rng = Rng.create 424242 in
  let attack_case ~label ~base ~locked ~epsilon_minterms =
    let n_in = Netlist.n_inputs base in
    let key_bits = Netlist.n_keys locked.Lock.circuit in
    let t0 = Sys.time () in
    let iterations =
      match Attack.attack_locked ~max_iterations:20_000 locked with
      | Attack.Broken { key; iterations } ->
        assert (Attack.key_is_correct locked key);
        string_of_int iterations
      | Attack.Budget_exceeded { iterations } -> Printf.sprintf ">%d" iterations
    in
    let dt = Sys.time () -. t0 in
    let lambda =
      match epsilon_minterms with
      | None -> "-"
      | Some m ->
        let l =
          Resilience.lambda_minterms ~key_bits ~correct_keys:1 ~input_bits:n_in
            ~minterms:m
        in
        if l = infinity then "inf" else Printf.sprintf "%.0f" l
    in
    Table.add_text_row table ~label
      ~cells:
        [
          string_of_int n_in;
          string_of_int key_bits;
          (match epsilon_minterms with None -> "~half space" | Some m -> string_of_int m);
          iterations;
          lambda;
          Printf.sprintf "%.2fs" dt;
          string_of_int (Netlist.n_gates locked.Lock.circuit);
        ]
  in
  List.iter
    (fun width ->
      let base = Circuits.adder ~width in
      attack_case
        ~label:(Printf.sprintf "RLL, %d-bit adder" width)
        ~base
        ~locked:(Lock.xor_random ~rng ~key_bits:(2 * width) base)
        ~epsilon_minterms:None;
      let space = 1 lsl (2 * width) in
      List.iter
        (fun h ->
          let minterms = List.init h (fun _ -> Rng.int rng space) in
          attack_case
            ~label:(Printf.sprintf "point function h=%d, %d-bit adder" h width)
            ~base
            ~locked:(Lock.point_function ~minterms base)
            ~epsilon_minterms:(Some h))
        (* h=2 at width 5 runs ~1000 DIPs through ever-growing CNFs:
           minutes, not insight — the width-4 row already shows the
           trend. *)
        (if width >= 5 then [ 1 ] else [ 1; 2 ]);
      attack_case
        ~label:(Printf.sprintf "permnet 4 layers, %d-bit adder" width)
        ~base
        ~locked:(Lock.permutation_network ~rng ~layers:4 base)
        ~epsilon_minterms:None)
    [ 3; 4; 5 ];
  Table.print table;
  (* The approximate attack (Shamsi et al. [12], AppSAT-style): what an
     attacker gets by stopping early. *)
  let approx =
    Table.create
      ~title:"approximate attack: 10-DIP budget + random queries (4-bit adder)"
      ~columns:[ "exact convergence"; "residual error rate" ]
  in
  let approx_case label locked =
    let outcome = Attack.approximate ~dip_budget:10 locked in
    Table.add_text_row approx ~label
      ~cells:
        [
          (if outcome.Attack.converged then "yes" else "no");
          Printf.sprintf "%.3f" outcome.Attack.estimated_error_rate;
        ]
  in
  let base = Circuits.adder ~width:4 in
  approx_case "RLL, 16 key bits" (Lock.xor_random ~rng ~key_bits:16 base);
  approx_case "point function h=1" (Lock.point_function ~minterms:[ 0x42 ] base);
  approx_case "point function h=3"
    (Lock.point_function ~minterms:[ 0x42; 0x17; 0xA5 ] base);
  print_newline ();
  Table.print approx;
  Printf.printf
    "\nThe approximate attacker settles for a key with tiny residual error -\n\
     exactly the argument ([12], Sec. I) for injecting errors the application\n\
     actually feels, which is what security-aware binding buys.\n";
  Printf.printf
    "\nShape check: RLL falls in a handful of DIPs; point functions cost the\n\
     attacker far more queries per locked minterm (and Eqn. 1 tracks the\n\
     growth); the permutation network's resilience lies in solver time per\n\
     iteration and gate overhead, not DIP count - why Sec. V-C treats it as a\n\
     costly top-up, not a primary scheme.\n"

(* ----------------------------------------------------------- methodology *)

let methodology () =
  section "Sec. V-C methodology - minimum locked inputs meeting designer goals";
  let table =
    Table.create ~title:"fir benchmark, 1 locked adder FU, 18-bit key budget"
      ~columns:
        [ "target errors"; "min lambda"; "|M| chosen"; "achieved"; "lambda"; "top-up" ]
  in
  let bench = Workload.find "fir" in
  let schedule = Workload.schedule bench in
  let trace = Workload.trace bench in
  let allocation = Allocation.for_schedule schedule in
  let k = Kmatrix.build trace in
  let candidates = Array.of_list (Kmatrix.top_minterms ~kind:Dfg.Add k ~n:10) in
  List.iter
    (fun (label, goal) ->
      let plan =
        Methodology.design ~key_bits:18 k schedule allocation ~scheme:Scheme.Sfll_rem
          ~locked_fus:[ 0 ] ~candidates goal
      in
      Table.add_text_row table ~label
        ~cells:
          [
            string_of_int goal.Methodology.target_error_events;
            Printf.sprintf "%.0e" goal.Methodology.min_lambda;
            string_of_int plan.Methodology.minterms_per_fu;
            string_of_int plan.Methodology.achieved_errors;
            (if plan.Methodology.predicted_lambda = infinity then "inf"
             else Printf.sprintf "%.0f" plan.Methodology.predicted_lambda);
            (if plan.Methodology.exponential_topup then "permnet" else "none");
          ])
    [
      ("modest", { Methodology.target_error_events = 50; min_lambda = 1e3 });
      ("median", { Methodology.target_error_events = 600; min_lambda = 1e3 });
      ("demanding", { Methodology.target_error_events = 1_200; min_lambda = 1e3 });
      ("extreme", { Methodology.target_error_events = 1_200; min_lambda = 1e7 });
    ];
  Table.print table

(* ------------------------------------------------------------- postlock *)

let postlock () =
  section
    "Post-binding locking (the abstract's closing claim) - at a fixed 32-bit\n\
     key budget, the minterms each approach must lock to reach the SAME\n\
     application-error level, and the Eqn. 1 resilience it is left with";
  let table =
    Table.create ~title:"error level set by co-design (2 locked FUs x 2 minterms)"
      ~columns:
        [ "target errors"; "co-design |M|"; "co-design lambda"; "post-binding |M|";
          "post-binding lambda" ]
  in
  let lambda_str l = if l = infinity then "inf" else Printf.sprintf "%.0f" l in
  let collapses = ref 0 and rows = ref 0 in
  List.iter
    (fun ctx ->
      List.iter
        (fun kind ->
          match Experiments.post_binding ctx kind with
          | None -> ()
          | Some r ->
            incr rows;
            if r.Experiments.post_lambda < r.Experiments.codesign_lambda then incr collapses;
            Table.add_text_row table
              ~label:(Printf.sprintf "%s/%s" r.Experiments.pb_benchmark (Dfg.kind_label kind))
              ~cells:
                [
                  string_of_int r.Experiments.codesign_errors;
                  string_of_int r.Experiments.codesign_minterms;
                  lambda_str r.Experiments.codesign_lambda;
                  (match r.Experiments.post_minterms with
                   | Some h -> string_of_int h
                   | None -> Printf.sprintf "unreachable (%d)" r.Experiments.post_errors);
                  lambda_str r.Experiments.post_lambda;
                ])
        [ Dfg.Add; Dfg.Mul ])
    (Lazy.force contexts);
  Table.print table;
  Printf.printf
    "\nEven granting post-binding locking an *optimizing* minterm chooser (the\n\
     strongest baseline; the paper's Fig. 4 protocol compares identical minterm\n\
     sets instead), it pays for the same corruption with up to 2x the locked\n\
     minterms, ending with less Eqn. 1 resilience on %d/%d series. Against the\n\
     paper's a-priori-minterms baseline the gap is the 10-150x of Fig. 4: most\n\
     of co-design's advantage is choosing minterms the architecture can\n\
     concentrate; binding freedom then multiplies whatever was chosen.\n"
    !collapses !rows

(* -------------------------------------------------------------- quality *)

let quality () =
  section
    "Error quality (Sec. III) - measured wrong-key corruption of one\n\
     co-designed locking configuration (2 FUs x 2 minterms) replayed through\n\
     the trace simulator under the area-aware baseline binding and under the\n\
     co-designed binding";
  let table =
    Table.create ~title:"corruption measured over the full typical trace"
      ~columns:
        [ "events (base)"; "events (secure)"; "bad samples (base)"; "bad samples (secure)";
          "burst (base)"; "burst (secure)" ]
  in
  let burst_wins = ref 0 and rows = ref 0 in
  List.iter
    (fun ctx ->
      let trace =
        Workload.trace (Workload.find ctx.Experiments.benchmark)
      in
      List.iter
        (fun kind ->
          match Experiments.quality ~trace ctx kind with
          | None -> ()
          | Some q ->
            incr rows;
            if q.Experiments.secure_max_burst >= q.Experiments.base_max_burst then
              incr burst_wins;
            Table.add_text_row table
              ~label:(Printf.sprintf "%s/%s" q.Experiments.q_benchmark (Dfg.kind_label kind))
              ~cells:
                [
                  string_of_int q.Experiments.base_events;
                  string_of_int q.Experiments.secure_events;
                  Printf.sprintf "%d/%d" q.Experiments.base_corrupted_samples
                    q.Experiments.samples;
                  Printf.sprintf "%d/%d" q.Experiments.secure_corrupted_samples
                    q.Experiments.samples;
                  string_of_int q.Experiments.base_max_burst;
                  string_of_int q.Experiments.secure_max_burst;
                ])
        [ Dfg.Add; Dfg.Mul ])
    (Lazy.force contexts);
  Table.print table;
  Printf.printf
    "\nSecurity-aware binding injects more error events AND longer consecutive-\n\
     cycle bursts (>= baseline burst on %d/%d series) - the Sec. III argument\n\
     that consecutive injections are likelier to derail the application.\n"
    !burst_wins !rows

(* ------------------------------------------------------------- ablation *)

let ablation () =
  section
    "Ablations - design knobs the paper leaves open, quantified\n\
     (candidate selection, Sec. V-B.1; workload generalization; allocation\n\
     and scheduler sensitivity)";
  (* 1. candidate-selection strategy *)
  let table =
    Table.create
      ~title:"candidate strategy vs co-design errors (2 locked FUs x 2 minterms)"
      ~columns:[ "benchmark/kind"; "errors"; "candidate trace mass" ]
  in
  List.iter
    (fun (name, kind) ->
      let ctx =
        List.find (fun c -> c.Experiments.benchmark = name) (Lazy.force contexts)
      in
      List.iter
        (fun (row : Rb_core.Ablation.strategy_row) ->
          Table.add_text_row table
            ~label:(Rb_core.Ablation.strategy_name row.Rb_core.Ablation.strategy)
            ~cells:
              [
                Printf.sprintf "%s/%s" name (Dfg.kind_label kind);
                string_of_int row.Rb_core.Ablation.codesign_errors;
                string_of_int row.Rb_core.Ablation.candidate_mass;
              ])
        (Rb_core.Ablation.candidate_strategies ctx kind))
    [ ("dct", Dfg.Mul); ("ecb_enc4", Dfg.Add); ("fft", Dfg.Add) ];
  Table.print table;
  Printf.printf
    "As Sec. V-B.1 argues: co-design maximizes errors for whatever C the\n\
     designer supplies; rarer candidates (leak-resistant) simply buy fewer\n\
     error events.\n\n";
  (* 2. train/test generalization *)
  let table =
    Table.create ~title:"workload generalization (co-design on first half of the trace)"
      ~columns:[ "Eqn.2 (train)"; "measured (train)"; "measured (unseen half)" ]
  in
  List.iter
    (fun (name, kind) ->
      let b = Workload.find name in
      let schedule = Workload.schedule b in
      let trace = Workload.trace b in
      let row = Rb_core.Ablation.generalization schedule trace kind in
      Table.add_text_row table
        ~label:(Printf.sprintf "%s/%s" name (Dfg.kind_label kind))
        ~cells:
          [
            string_of_int row.Rb_core.Ablation.train_expected;
            string_of_int row.Rb_core.Ablation.train_measured;
            string_of_int row.Rb_core.Ablation.test_measured;
          ])
    [ ("dct", Dfg.Mul); ("fir", Dfg.Add); ("jdmerge3", Dfg.Add); ("motion3", Dfg.Add) ];
  Table.print table;
  Printf.printf
    "The locked minterms keep firing on unseen samples of the same workload:\n\
     the 'typical trace' assumption (Sec. IV-A) carries the design's error\n\
     rate to deployment.\n\n";
  (* trace-length sensitivity: how much "typical workload" does the
     designer need before the co-designed lock stabilizes? *)
  let table =
    Table.create
      ~title:"profiling-budget sensitivity (dct multipliers, replayed on 256 samples)"
      ~columns:[ "Eqn.2 on prefix"; "measured on full trace" ]
  in
  let bench = Workload.find "dct" in
  let schedule = Workload.schedule bench in
  let full = Workload.trace bench in
  let allocation = Allocation.for_schedule schedule in
  List.iter
    (fun len ->
      let prefix = Rb_sim.Trace.sub full ~pos:0 ~len in
      let k = Kmatrix.build prefix in
      let candidates = Array.of_list (Kmatrix.top_minterms ~kind:Dfg.Mul k ~n:10) in
      let fus = Allocation.fu_ids allocation Dfg.Mul in
      let spec =
        { Codesign.scheme = Scheme.Sfll_rem;
          locked_fus = List.filteri (fun i _ -> i < 2) fus;
          minterms_per_fu = min 2 (Array.length candidates); candidates }
      in
      let solution = Codesign.heuristic k schedule allocation spec in
      let report =
        Rb_sim.Exec.application_errors schedule full
          ~fu_of_op:(Rb_hls.Binding.fu_array solution.Codesign.binding)
          ~config:solution.Codesign.config
      in
      Table.add_text_row table
        ~label:(Printf.sprintf "%d samples" len)
        ~cells:
          [ string_of_int solution.Codesign.errors;
            string_of_int report.Rb_sim.Exec.error_events ])
    [ 8; 16; 32; 64; 128; 256 ];
  Table.print table;
  Printf.printf
    "Short profiles already find the workload's head minterms; the measured\n\
     full-trace corruption stabilizes within a few dozen samples.\n\n";
  (* 3 + 4. allocation and scheduler sensitivity on dct *)
  let b = Workload.find "dct" in
  let make_trace () = Workload.trace b in
  let table =
    Table.create ~title:"sensitivity of the obf-aware error increase (dct, adders)"
      ~columns:[ "cycles"; "obf vs area" ]
  in
  List.iter
    (fun (row : Rb_core.Ablation.sensitivity_row) ->
      Table.add_text_row table ~label:row.Rb_core.Ablation.label
        ~cells:
          [
            string_of_int row.Rb_core.Ablation.n_cycles;
            fmt_ratio row.Rb_core.Ablation.obf_vs_area;
          ])
    (Rb_core.Ablation.allocation_sensitivity b.Workload.dfg make_trace
     @ Rb_core.Ablation.scheduler_sensitivity b.Workload.dfg make_trace);
  Table.print table;
  Printf.printf
    "One FU per kind leaves binding no freedom (ratio exactly 1x); any larger\n\
     allocation opens the gap, and the effect survives a change of scheduling\n\
     front end. (This probe uses the conservative ratio-of-total-errors over\n\
     head-candidate pairs; the per-combination means of Fig. 4 are larger.)\n"

(* -------------------------------------------------------------- runtime *)

let runtime () =
  section "Runtime - Bechamel microbenches (P-time claims of Secs. IV-C and V-B)";
  let bench = Workload.find "dct" in
  let schedule = Workload.schedule bench in
  let trace = Workload.trace bench in
  let allocation = Allocation.for_schedule schedule in
  let k = Kmatrix.build trace in
  let profile = Profile.build trace in
  let candidates = Array.of_list (Kmatrix.top_minterms ~kind:Dfg.Add k ~n:10) in
  let config =
    Rb_locking.Config.make ~scheme:Scheme.Sfll_rem
      ~locks:[ (0, [ candidates.(0); candidates.(1) ]) ]
  in
  let spec =
    { Codesign.scheme = Scheme.Sfll_rem; locked_fus = [ 0 ]; minterms_per_fu = 2; candidates }
  in
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"area-aware binding (dct)"
        (Staged.stage (fun () -> ignore (Rb_hls.Area_binding.bind schedule allocation)));
      Test.make ~name:"power-aware binding (dct)"
        (Staged.stage (fun () ->
             ignore (Rb_hls.Power_binding.bind schedule allocation ~profile)));
      Test.make ~name:"obfuscation-aware binding (dct)"
        (Staged.stage (fun () ->
             ignore (Rb_core.Obf_binding.bind k config schedule allocation)));
      Test.make ~name:"co-design heuristic (dct, |C|=10, m=2)"
        (Staged.stage (fun () -> ignore (Codesign.heuristic k schedule allocation spec)));
      Test.make ~name:"K-matrix build (dct, 256 samples)"
        (Staged.stage (fun () -> ignore (Kmatrix.build trace)));
      Test.make ~name:"Hungarian 8x8"
        (let m =
           Array.init 8 (fun i ->
               Array.init 8 (fun j -> float_of_int (((i * 31) + (j * 17)) mod 23)))
         in
         Staged.stage (fun () -> ignore (Rb_matching.Hungarian.min_cost_assignment m)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          instance raw
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> Printf.printf "  %-42s %12.1f ns/run\n" name est
          | Some [] | None -> Printf.printf "  %-42s (no estimate)\n" name)
        results)
    tests

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let sections =
    [
      ("fig4", fig4);
      ("fig5", fig5);
      ("fig6", fig6);
      ("headline", headline);
      ("eqn1", eqn1);
      ("sat-attack", sat_attack);
      ("methodology", methodology);
      ("quality", quality);
      ("postlock", postlock);
      ("ablation", ablation);
      ("runtime", runtime);
    ]
  in
  let to_run =
    match requested with
    | [] -> sections
    | names -> List.filter (fun (n, _) -> List.mem n names) sections
  in
  if to_run = [] then begin
    Printf.eprintf "unknown section(s); available: %s\n"
      (String.concat " " (List.map fst sections));
    exit 1
  end;
  List.iter (fun (_, f) -> f ()) to_run
