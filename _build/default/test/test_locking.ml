module Scheme = Rb_locking.Scheme
module Resilience = Rb_locking.Resilience
module Config = Rb_locking.Config
module Minterm = Rb_dfg.Minterm

(* ------------------------------------------------------------- scheme *)

let test_scheme_families () =
  Alcotest.(check bool) "SFLL is critical-minterm" true
    (Scheme.family Scheme.Sfll_rem = Scheme.Critical_minterm);
  Alcotest.(check bool) "StrongAntiSAT is critical-minterm" true
    (Scheme.family Scheme.Strong_anti_sat = Scheme.Critical_minterm);
  Alcotest.(check bool) "Full-Lock is exponential-runtime" true
    (Scheme.family Scheme.Full_lock = Scheme.Exponential_iteration_runtime)

let test_scheme_static_inputs () =
  Alcotest.(check bool) "SFLL static" true (Scheme.static_locked_inputs Scheme.Sfll_rem);
  Alcotest.(check bool) "Full-Lock not static" false
    (Scheme.static_locked_inputs Scheme.Full_lock)

let test_scheme_key_bits () =
  Alcotest.(check int) "SFLL: h * n" 48
    (Scheme.key_bits Scheme.Sfll_rem ~minterms:3 ~input_bits:16);
  Alcotest.(check bool) "Full-Lock keys scale with width" true
    (Scheme.key_bits Scheme.Full_lock ~minterms:1 ~input_bits:16 > 16)

(* --------------------------------------------------------- resilience *)

let lam minterms =
  Resilience.lambda_minterms ~key_bits:16 ~correct_keys:1 ~input_bits:16 ~minterms

let test_lambda_monotone_in_minterms () =
  let l1 = lam 1 and l4 = lam 4 and l64 = lam 64 in
  Alcotest.(check bool) "decreasing" true (l1 >= l4 && l4 >= l64);
  Alcotest.(check bool) "single minterm is strong" true (l1 > 1000.0)

let test_lambda_monotone_in_keybits () =
  (* In the convergent regime (epsilon * wrong-keys > 1), more key bits
     mean more expected iterations. *)
  let l k = Resilience.lambda_minterms ~key_bits:k ~correct_keys:1 ~input_bits:16 ~minterms:4 in
  Alcotest.(check bool) "finite at 17 bits" true (l 17 < infinity);
  Alcotest.(check bool) "more key bits, more iterations" true (l 25 >= l 17)

let test_lambda_divergent_regime () =
  (* When a DIP eliminates less than one wrong key in expectation
     (epsilon * N < 1), Eqn. 1 predicts the attack never converges. *)
  let l = Resilience.lambda_minterms ~key_bits:12 ~correct_keys:1 ~input_bits:16 ~minterms:4 in
  Alcotest.(check bool) "divergent" true (l = infinity)

let test_lambda_high_epsilon_trivial () =
  (* epsilon = 0.9 kills 90% of wrong keys per DIP: 255 wrong keys fall
     within a handful of iterations. *)
  let l = Resilience.lambda ~key_bits:8 ~correct_keys:1 ~epsilon:0.9 in
  Alcotest.(check bool) "near-total corruption falls immediately" true (l <= 5.0)

let test_lambda_invalid_args () =
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | (_ : float) -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () -> Resilience.lambda ~key_bits:8 ~correct_keys:1 ~epsilon:0.0);
  invalid (fun () -> Resilience.lambda ~key_bits:8 ~correct_keys:1 ~epsilon:1.0);
  invalid (fun () -> Resilience.lambda ~key_bits:0 ~correct_keys:1 ~epsilon:0.5);
  invalid (fun () -> Resilience.lambda ~key_bits:8 ~correct_keys:0 ~epsilon:0.5);
  invalid (fun () ->
      Resilience.lambda_minterms ~key_bits:8 ~correct_keys:1 ~input_bits:8 ~minterms:0)

let test_max_minterms_for () =
  let budget =
    Resilience.max_minterms_for ~key_bits:16 ~correct_keys:1 ~input_bits:16
      ~min_lambda:1000.0
  in
  Alcotest.(check bool) "positive budget" true (budget >= 1);
  Alcotest.(check bool) "budget meets bound" true
    (lam budget >= 1000.0);
  Alcotest.(check bool) "budget is maximal" true
    (budget = 65535 || lam (budget + 1) < 1000.0)

let test_max_minterms_unreachable () =
  (* key space 2^20 over a 2^16 input space: even one locked minterm
     corrupts enough (epsilon*N = 16) for the attack to converge far
     below the absurd target, so no budget exists. *)
  let budget =
    Resilience.max_minterms_for ~key_bits:20 ~correct_keys:1 ~input_bits:16
      ~min_lambda:1e12
  in
  Alcotest.(check int) "no budget" 0 budget

let test_is_resilient () =
  Alcotest.(check bool) "1 minterm resilient" true
    (Resilience.is_resilient ~key_bits:16 ~input_bits:16 ~minterms:1 ~min_lambda:100.0);
  Alcotest.(check bool) "flooded not resilient" false
    (Resilience.is_resilient ~key_bits:16 ~input_bits:16 ~minterms:60000 ~min_lambda:100.0)

(* -------------------------------------------------------------- config *)

let m1 = Minterm.pack 1 2
let m2 = Minterm.pack 3 4

let test_config_accessors () =
  let c = Config.make ~scheme:Scheme.Sfll_rem ~locks:[ (2, [ m1; m2 ]); (0, [ m1 ]) ] in
  Alcotest.(check (list int)) "ascending fus" [ 0; 2 ] (Config.locked_fus c);
  Alcotest.(check int) "total minterms" 3 (Config.total_locked_minterms c);
  Alcotest.(check bool) "locked input" true (Config.is_locked_input c ~fu:2 m1);
  Alcotest.(check bool) "unlocked fu" false (Config.is_locked_input c ~fu:1 m1);
  Alcotest.(check bool) "unlocked minterm" false (Config.is_locked_input c ~fu:0 m2)

let test_config_validation () =
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | (_ : Config.t) -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () -> Config.make ~scheme:Scheme.Full_lock ~locks:[ (0, [ m1 ]) ]);
  invalid (fun () -> Config.make ~scheme:Scheme.Sfll_rem ~locks:[ (0, [ m1 ]); (0, [ m2 ]) ]);
  invalid (fun () -> Config.make ~scheme:Scheme.Sfll_rem ~locks:[ (0, []) ]);
  invalid (fun () -> Config.make ~scheme:Scheme.Sfll_rem ~locks:[ (-1, [ m1 ]) ])

let test_config_corrupt_involution () =
  Alcotest.(check int) "flips bit 0" 1 (Config.corrupt 0);
  Alcotest.(check int) "twice is identity" 77 (Config.corrupt (Config.corrupt 77));
  Alcotest.(check bool) "never identity" true (Config.corrupt 42 <> 42)

let test_config_lambda_per_fu_uses_weakest () =
  let one = Config.make ~scheme:Scheme.Sfll_rem ~locks:[ (0, [ m1 ]) ] in
  let many =
    Config.make ~scheme:Scheme.Sfll_rem
      ~locks:[ (0, [ m1 ]); (1, List.init 40 (fun i -> Minterm.of_int i)) ]
  in
  Alcotest.(check bool) "more corrupting FU lowers design resilience" true
    (Config.lambda_per_fu many < Config.lambda_per_fu one)

let test_config_with_minterms () =
  let c = Config.make ~scheme:Scheme.Sfll_rem ~locks:[ (0, [ m1 ]) ] in
  let c' = Config.with_minterms c [ (1, [ m2 ]) ] in
  Alcotest.(check (list int)) "fus replaced" [ 1 ] (Config.locked_fus c');
  Alcotest.(check bool) "scheme kept" true (Config.scheme c' = Scheme.Sfll_rem)

(* Cross-level consistency: the behavioural wrong-key model
   (Config.corrupt = bit-0 flip on locked minterms) is exactly what the
   gate-level SFLL-style construction does to a word-level adder FU. *)
let test_behavioural_model_matches_gate_level () =
  let width = Rb_dfg.Word.width in
  let base = Rb_netlist.Circuits.adder ~width in
  let m1 = Rb_dfg.Minterm.pack 10 20 and m2 = Rb_dfg.Minterm.pack 77 200 in
  let protected_minterms = [ Rb_dfg.Minterm.to_int m1; Rb_dfg.Minterm.to_int m2 ] in
  let locked = Rb_netlist.Lock.point_function ~minterms:protected_minterms base in
  (* wrong key programming two patterns outside the protected set *)
  let n_in = 2 * width in
  let wrong_patterns = [ 3; 5 ] in
  let wrong = Array.make (Rb_netlist.Netlist.n_keys locked.Rb_netlist.Lock.circuit) false in
  List.iteri
    (fun j m ->
      for i = 0 to n_in - 1 do
        wrong.((j * n_in) + i) <- (m lsr i) land 1 = 1
      done)
    wrong_patterns;
  let pack_key k =
    Array.to_list k |> List.mapi (fun i b -> if b then 1 lsl i else 0) |> List.fold_left ( lor ) 0
  in
  let wrong_key = pack_key wrong in
  List.iter
    (fun m ->
      let a, b = Rb_dfg.Minterm.unpack m in
      let clean = Rb_dfg.Word.add a b in
      let gate_out =
        Rb_netlist.Netlist.eval_words locked.Rb_netlist.Lock.circuit
          ~inputs:(Rb_dfg.Minterm.to_int m) ~keys:wrong_key
      in
      Alcotest.(check int)
        (Format.asprintf "gate-level corruption at %a" Rb_dfg.Minterm.pp m)
        (Config.corrupt clean) gate_out)
    [ m1; m2 ];
  (* and on a non-locked minterm the wrong key behaves cleanly *)
  let m3 = Rb_dfg.Minterm.pack 1 2 in
  Alcotest.(check int) "clean elsewhere" (Rb_dfg.Word.add 1 2)
    (Rb_netlist.Netlist.eval_words locked.Rb_netlist.Lock.circuit
       ~inputs:(Rb_dfg.Minterm.to_int m3) ~keys:wrong_key)

let qcheck_lambda_decreasing =
  QCheck2.Test.make ~name:"lambda non-increasing in epsilon" ~count:200
    QCheck2.Gen.(triple (int_range 4 20) (float_range 0.0001 0.4) (float_range 1.01 2.0))
    (fun (key_bits, eps, factor) ->
      let l1 = Resilience.lambda ~key_bits ~correct_keys:1 ~epsilon:eps in
      let l2 = Resilience.lambda ~key_bits ~correct_keys:1 ~epsilon:(min 0.9 (eps *. factor)) in
      l1 >= l2)

let qcheck_max_minterms_consistent =
  QCheck2.Test.make ~name:"max_minterms_for meets its own bound" ~count:100
    QCheck2.Gen.(pair (int_range 6 20) (float_range 1.0 100000.0))
    (fun (key_bits, min_lambda) ->
      let budget =
        Resilience.max_minterms_for ~key_bits ~correct_keys:1 ~input_bits:16 ~min_lambda
      in
      budget = 0
      || Resilience.lambda_minterms ~key_bits ~correct_keys:1 ~input_bits:16
           ~minterms:budget
         >= min_lambda)

let () =
  Alcotest.run "rb_locking"
    [
      ( "scheme",
        [
          Alcotest.test_case "families" `Quick test_scheme_families;
          Alcotest.test_case "static inputs" `Quick test_scheme_static_inputs;
          Alcotest.test_case "key bits" `Quick test_scheme_key_bits;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "monotone in minterms" `Quick test_lambda_monotone_in_minterms;
          Alcotest.test_case "monotone in key bits" `Quick test_lambda_monotone_in_keybits;
          Alcotest.test_case "divergent regime" `Quick test_lambda_divergent_regime;
          Alcotest.test_case "high epsilon" `Quick test_lambda_high_epsilon_trivial;
          Alcotest.test_case "invalid args" `Quick test_lambda_invalid_args;
          Alcotest.test_case "max minterms" `Quick test_max_minterms_for;
          Alcotest.test_case "unreachable target" `Quick test_max_minterms_unreachable;
          Alcotest.test_case "is_resilient" `Quick test_is_resilient;
        ] );
      ( "config",
        [
          Alcotest.test_case "accessors" `Quick test_config_accessors;
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "corrupt involution" `Quick test_config_corrupt_involution;
          Alcotest.test_case "lambda per fu" `Quick test_config_lambda_per_fu_uses_weakest;
          Alcotest.test_case "with_minterms" `Quick test_config_with_minterms;
          Alcotest.test_case "matches gate level" `Quick test_behavioural_model_matches_gate_level;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_lambda_decreasing; qcheck_max_minterms_consistent ] );
    ]
