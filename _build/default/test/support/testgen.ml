module Dfg = Rb_dfg.Dfg
module Minterm = Rb_dfg.Minterm
module B = Dfg.Builder
module Rng = Rb_util.Rng
module Schedule = Rb_sched.Schedule

let random_dfg ?(n_ops = 20) ?(n_inputs = 4) seed =
  let rng = Rng.create seed in
  let b = B.create (Printf.sprintf "random%d" seed) in
  let inputs = Array.init n_inputs (fun i -> B.input b (Printf.sprintf "in%d" i)) in
  let results = ref [] in
  let operand () =
    match (Rng.int rng 10, !results) with
    | r, (_ :: _ as made) when r < 6 -> List.nth made (Rng.int rng (List.length made))
    | r, _ when r < 9 -> inputs.(Rng.int rng n_inputs)
    | _, _ -> B.const (Rng.int rng 256)
  in
  for _ = 1 to n_ops do
    let lhs = operand () and rhs = operand () in
    let op = if Rng.int rng 3 = 0 then B.mul b lhs rhs else B.add b lhs rhs in
    results := op :: !results
  done;
  B.finish b

let random_trace ?(n = 32) seed dfg =
  let rng = Rng.create seed in
  Rb_sim.Trace.generate dfg ~n ~f:(fun _ _ -> Rng.int rng 256)

let skewed_trace ?(n = 64) seed dfg =
  let rng = Rng.create seed in
  let palette = [| 0; 7; 64; 200 |] in
  Rb_sim.Trace.generate dfg ~n ~f:(fun _ _ ->
      if Rng.int rng 10 < 8 then Rng.pick rng palette else Rng.int rng 256)

let random_valid_binding seed schedule allocation =
  let rng = Rng.create seed in
  let dfg = Schedule.dfg schedule in
  let fu_of_op = Array.make (Dfg.op_count dfg) (-1) in
  let assign kind cycle =
    let ops = Array.of_list (Schedule.ops_in_cycle schedule kind cycle) in
    let fus = Array.of_list (Rb_hls.Allocation.fu_ids allocation kind) in
    Rng.shuffle rng fus;
    Array.iteri (fun i op -> fu_of_op.(op) <- fus.(i)) ops
  in
  for cycle = 0 to Schedule.n_cycles schedule - 1 do
    assign Dfg.Add cycle;
    assign Dfg.Mul cycle
  done;
  Rb_hls.Binding.make schedule allocation ~fu_of_op

(* Fig. 2A: OPA(a,b) and OPB(c,d) in clock 1; OPC and OPD consume OPA
   and OPB; OPE(g, OPB) in clock 2. The concrete wiring is irrelevant
   to the algorithms (only the schedule and K matter); we keep it
   acyclic and two-cycle. *)
let fig2_dfg () =
  let b = B.create "fig2" in
  let a = B.input b "a" and b_in = B.input b "b" in
  let c = B.input b "c" and d = B.input b "d" in
  let g = B.input b "g" in
  let opa = B.add ~label:"OPA" b a b_in in
  let opb = B.add ~label:"OPB" b c d in
  let opc = B.add ~label:"OPC" b opa opb in
  let opd = B.add ~label:"OPD" b opa g in
  let ope = B.add ~label:"OPE" b opb g in
  List.iter (B.output b) [ opc; opd; ope ];
  B.finish b

let fig2_schedule dfg = Schedule.make dfg ~cycle_of:[| 0; 0; 1; 1; 1 |]

let minterm_x = Minterm.pack 1 1
let minterm_y = Minterm.pack 2 2

let fig2_kmatrix dfg =
  (* Occurrences from Fig. 2A: x: OPA=6 OPB=4 OPC=3 OPD=0 OPE=10;
                               y: OPA=9 OPB=3 OPC=7 OPD=0 OPE=8. *)
  Rb_sim.Kmatrix.of_counts dfg
    [
      (0, [ (minterm_x, 6); (minterm_y, 9) ]);
      (1, [ (minterm_x, 4); (minterm_y, 3) ]);
      (2, [ (minterm_x, 3); (minterm_y, 7) ]);
      (3, [ (minterm_x, 0); (minterm_y, 0) ]);
      (4, [ (minterm_x, 10); (minterm_y, 8) ]);
    ]
