(** Shared generators for the test suites: random DFGs, schedules,
    traces and bindings with controlled shapes. *)

val random_dfg : ?n_ops:int -> ?n_inputs:int -> int -> Rb_dfg.Dfg.t
(** [random_dfg seed] builds a random, valid DFG (mixed add/mul;
    operands drawn from earlier results, inputs, and constants).
    Deterministic in [seed]. *)

val random_trace : ?n:int -> int -> Rb_dfg.Dfg.t -> Rb_sim.Trace.t
(** Uniform-random input trace (deterministic in the seed). *)

val skewed_trace : ?n:int -> int -> Rb_dfg.Dfg.t -> Rb_sim.Trace.t
(** Heavy-tailed trace: inputs drawn from a 4-value palette most of the
    time, so minterm histograms have tall heads like real workloads. *)

val random_valid_binding :
  int -> Rb_sched.Schedule.t -> Rb_hls.Allocation.t -> Rb_hls.Binding.t
(** A uniformly random binding that satisfies validity (per-cycle
    random assignment of ops to distinct kind-matched FUs). *)

val fig2_dfg : unit -> Rb_dfg.Dfg.t
(** The 5-operation, 2-cycle scheduled DFG of paper Fig. 2A (all adds:
    OPA..OPE). Operation ids 0..4 correspond to OPA..OPE. *)

val fig2_schedule : Rb_dfg.Dfg.t -> Rb_sched.Schedule.t
(** OPA, OPB in cycle 0; OPC, OPD, OPE in cycle 1 — Fig. 2A. *)

val fig2_kmatrix : Rb_dfg.Dfg.t -> Rb_sim.Kmatrix.t
(** The expected-occurrence table printed under Fig. 2A: input 'x' is
    minterm [(1,1)], input 'y' is [(2,2)]. *)

val minterm_x : Rb_dfg.Minterm.t
val minterm_y : Rb_dfg.Minterm.t
