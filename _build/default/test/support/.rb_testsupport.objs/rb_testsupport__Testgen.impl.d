test/support/testgen.ml: Array List Printf Rb_dfg Rb_hls Rb_sched Rb_sim Rb_util
