test/test_sched.ml: Alcotest Array Fun Int List QCheck2 QCheck_alcotest Rb_dfg Rb_sched Rb_testsupport Result
