test/test_netlist.ml: Alcotest Array Int List Printf QCheck2 QCheck_alcotest Rb_dfg Rb_netlist Rb_util String
