test/test_core.ml: Alcotest Array Int List QCheck2 QCheck_alcotest Rb_core Rb_dfg Rb_hls Rb_locking Rb_sched Rb_sim Rb_testsupport Rb_workload
