test/test_sim.ml: Alcotest Array List QCheck2 QCheck_alcotest Rb_dfg Rb_hls Rb_locking Rb_sched Rb_sim Rb_testsupport
