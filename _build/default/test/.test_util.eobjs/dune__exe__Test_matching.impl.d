test/test_matching.ml: Alcotest Array Int List QCheck2 QCheck_alcotest Rb_matching Rb_util
