test/test_rtl.ml: Alcotest Array Fun Int List Printf QCheck2 QCheck_alcotest Rb_core Rb_dfg Rb_hls Rb_locking Rb_rtl Rb_sched Rb_sim Rb_testsupport Rb_workload Result String
