test/test_hls.ml: Alcotest Array Int List Printf QCheck2 QCheck_alcotest Rb_dfg Rb_hls Rb_sched Rb_sim Rb_testsupport
