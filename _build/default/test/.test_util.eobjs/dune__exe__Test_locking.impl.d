test/test_locking.ml: Alcotest Array Format List QCheck2 QCheck_alcotest Rb_dfg Rb_locking Rb_netlist
