test/test_dfg.ml: Alcotest Array Buffer Fun List Printf QCheck2 QCheck_alcotest Rb_dfg Rb_sim Rb_util Result String
