test/test_sat.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest Rb_netlist Rb_sat Rb_util String
