test/test_dfg.mli:
