test/test_workload.ml: Alcotest Array List Rb_dfg Rb_sched Rb_sim Rb_util Rb_workload Result
