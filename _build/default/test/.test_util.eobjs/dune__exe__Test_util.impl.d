test/test_util.ml: Alcotest Array Fun Int List Printf QCheck2 QCheck_alcotest Rb_util String
