module Dfg = Rb_dfg.Dfg
module Minterm = Rb_dfg.Minterm
module Trace = Rb_sim.Trace
module Exec = Rb_sim.Exec
module Kmatrix = Rb_sim.Kmatrix
module Config = Rb_locking.Config
module Scheme = Rb_locking.Scheme
module Schedule = Rb_sched.Schedule
module Testgen = Rb_testsupport.Testgen
module B = Dfg.Builder

(* y = (a + b), z = y * c ; two ops, easy to trace by hand. *)
let tiny_dfg () =
  let b = B.create "tiny" in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let c = B.input b "c" in
  let y = B.add ~label:"y" b a bb in
  let z = B.mul ~label:"z" b y c in
  B.output b z;
  B.finish b

let tiny_trace dfg =
  Trace.make dfg ~samples:[| [| 1; 2; 3 |]; [| 1; 2; 3 |]; [| 10; 20; 2 |] |]

(* -------------------------------------------------------------- trace *)

let test_trace_accessors () =
  let dfg = tiny_dfg () in
  let t = tiny_trace dfg in
  Alcotest.(check int) "length" 3 (Trace.length t);
  Alcotest.(check int) "value" 20 (Trace.input_value t ~sample:2 ~input:"b");
  Alcotest.(check int) "index" 2 (Trace.input_index t "c")

let test_trace_clamps () =
  let dfg = tiny_dfg () in
  let t = Trace.make dfg ~samples:[| [| 300; -1; 256 |] |] in
  Alcotest.(check int) "clamped 300" (300 land 255) (Trace.input_value t ~sample:0 ~input:"a");
  Alcotest.(check int) "clamped 256" 0 (Trace.input_value t ~sample:0 ~input:"c")

let test_trace_validation () =
  let dfg = tiny_dfg () in
  (match Trace.make dfg ~samples:[||] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "empty trace accepted");
  (match Trace.make dfg ~samples:[| [| 1 |] |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "narrow sample accepted");
  match Trace.input_value (tiny_trace dfg) ~sample:0 ~input:"nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown input accepted"

(* --------------------------------------------------------------- exec *)

let test_eval_clean_by_hand () =
  let dfg = tiny_dfg () in
  let t = tiny_trace dfg in
  let e = Exec.eval_clean t ~sample:0 in
  Alcotest.(check int) "y = 1+2" 3 e.(0).Exec.result;
  Alcotest.(check int) "z = 3*3" 9 e.(1).Exec.result;
  Alcotest.(check (pair int int)) "z operands" (3, 3) (e.(1).Exec.a, e.(1).Exec.b);
  let e2 = Exec.eval_clean t ~sample:2 in
  Alcotest.(check int) "z = 30*2" 60 e2.(1).Exec.result

let lock_z_config () =
  (* lock FU 1 on minterm (3,3) — z's operands in samples 0 and 1. *)
  Config.make ~scheme:Scheme.Sfll_rem ~locks:[ (1, [ Minterm.pack 3 3 ]) ]

let test_eval_locked_injects () =
  let dfg = tiny_dfg () in
  let t = tiny_trace dfg in
  (* op0 (add) -> FU 0, op1 (mul) -> FU 1 *)
  let fu_of_op = [| 0; 1 |] in
  let results, injections = Exec.eval_locked t ~sample:0 ~fu_of_op ~config:(lock_z_config ()) in
  Alcotest.(check int) "one injection" 1 injections;
  Alcotest.(check int) "corrupted output" (Config.corrupt 9) results.(1).Exec.result;
  let results2, injections2 = Exec.eval_locked t ~sample:2 ~fu_of_op ~config:(lock_z_config ()) in
  Alcotest.(check int) "no injection on other data" 0 injections2;
  Alcotest.(check int) "clean output" 60 results2.(1).Exec.result

let test_corruption_propagates () =
  (* Lock the *add* FU: its corrupted result changes the multiply's
     operands downstream. *)
  let dfg = tiny_dfg () in
  let t = tiny_trace dfg in
  let fu_of_op = [| 0; 1 |] in
  let config = Config.make ~scheme:Scheme.Sfll_rem ~locks:[ (0, [ Minterm.pack 1 2 ]) ] in
  let results, injections = Exec.eval_locked t ~sample:0 ~fu_of_op ~config in
  Alcotest.(check int) "inject at add" 1 injections;
  let corrupted_y = Config.corrupt 3 in
  Alcotest.(check int) "downstream operand" corrupted_y results.(1).Exec.a;
  Alcotest.(check int) "downstream result" ((corrupted_y * 3) land 255) results.(1).Exec.result

let schedule_of dfg = Schedule.make dfg ~cycle_of:[| 0; 1 |]

let test_application_errors_report () =
  let dfg = tiny_dfg () in
  let t = tiny_trace dfg in
  let schedule = schedule_of dfg in
  let report =
    Exec.application_errors schedule t ~fu_of_op:[| 0; 1 |] ~config:(lock_z_config ())
  in
  Alcotest.(check int) "samples" 3 report.Exec.samples;
  (* samples 0 and 1 hit minterm (3,3) on the locked mul *)
  Alcotest.(check int) "error events" 2 report.Exec.error_events;
  Alcotest.(check int) "clean hits agree" 2 report.Exec.clean_hits;
  Alcotest.(check int) "corrupted samples" 2 report.Exec.corrupted_samples;
  Alcotest.(check int) "corrupted output words" 2 report.Exec.corrupted_output_words;
  Alcotest.(check int) "corrupted cycles" 2 report.Exec.corrupted_cycles;
  Alcotest.(check int) "burst length" 1 report.Exec.max_consecutive_cycles

let test_application_errors_burst () =
  (* Lock both FUs so a sample injects in both cycles: burst = 2. *)
  let dfg = tiny_dfg () in
  let t = tiny_trace dfg in
  let schedule = schedule_of dfg in
  let config =
    Config.make ~scheme:Scheme.Sfll_rem
      ~locks:[ (0, [ Minterm.pack 1 2 ]); (1, [ Minterm.pack (Config.corrupt 3) 3 ]) ]
  in
  let report = Exec.application_errors schedule t ~fu_of_op:[| 0; 1 |] ~config in
  Alcotest.(check int) "burst spans both cycles" 2 report.Exec.max_consecutive_cycles

let test_application_errors_validation () =
  let dfg = tiny_dfg () in
  let t = tiny_trace dfg in
  let schedule = schedule_of dfg in
  match Exec.application_errors schedule t ~fu_of_op:[| 0 |] ~config:(lock_z_config ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "binding width mismatch accepted"

let test_eval_locked_multi_kind_config () =
  (* one locked adder FU and one locked multiplier FU in a single
     configuration: injections accumulate across kinds *)
  let dfg = tiny_dfg () in
  let t = tiny_trace dfg in
  let config =
    Config.make ~scheme:Scheme.Sfll_rem
      ~locks:[ (0, [ Minterm.pack 1 2 ]); (1, [ Minterm.pack (Config.corrupt 3) 3 ]) ]
  in
  let _, injections = Exec.eval_locked t ~sample:0 ~fu_of_op:[| 0; 1 |] ~config in
  Alcotest.(check int) "both kinds inject" 2 injections

let test_trace_sub () =
  let dfg = tiny_dfg () in
  let t = tiny_trace dfg in
  let tail = Trace.sub t ~pos:1 ~len:2 in
  Alcotest.(check int) "length" 2 (Trace.length tail);
  Alcotest.(check int) "offset preserved" 10 (Trace.input_value tail ~sample:1 ~input:"a");
  (match Trace.sub t ~pos:2 ~len:5 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "overrun accepted");
  match Trace.sub t ~pos:0 ~len:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty slice accepted"

(* ------------------------------------------------------------ kmatrix *)

let test_kmatrix_counts () =
  let dfg = tiny_dfg () in
  let t = tiny_trace dfg in
  let k = Kmatrix.build t in
  Alcotest.(check int) "K((1,2), add)" 2 (Kmatrix.count k (Minterm.pack 1 2) 0);
  Alcotest.(check int) "K((10,20), add)" 1 (Kmatrix.count k (Minterm.pack 10 20) 0);
  Alcotest.(check int) "K((3,3), mul)" 2 (Kmatrix.count k (Minterm.pack 3 3) 1);
  Alcotest.(check int) "absent" 0 (Kmatrix.count k (Minterm.pack 9 9) 1)

let test_kmatrix_counts_sum_to_samples () =
  let dfg = Testgen.random_dfg 11 in
  let t = Testgen.skewed_trace 12 dfg in
  let k = Kmatrix.build t in
  for op = 0 to Dfg.op_count dfg - 1 do
    let total = List.fold_left (fun acc (_, c) -> acc + c) 0 (Kmatrix.op_histogram k op) in
    Alcotest.(check int) "histogram covers trace" (Trace.length t) total
  done

let test_kmatrix_count_set_additive () =
  let dfg = tiny_dfg () in
  let k = Kmatrix.build (tiny_trace dfg) in
  let set = Minterm.Set.of_list [ Minterm.pack 1 2; Minterm.pack 10 20 ] in
  Alcotest.(check int) "set = sum of members" 3 (Kmatrix.count_set k set 0)

let test_kmatrix_top_minterms () =
  let dfg = tiny_dfg () in
  let k = Kmatrix.build (tiny_trace dfg) in
  (match Kmatrix.top_minterms k ~n:1 with
   | [ m ] ->
     (* (1,2) on add and (3,3) on mul both occur twice; tie broken by
        minterm order, so (1,2) wins. *)
     Alcotest.(check (pair int int)) "most common" (1, 2) (Minterm.unpack m)
   | _ -> Alcotest.fail "expected one");
  Alcotest.(check int) "n bounds result" 3 (List.length (Kmatrix.top_minterms k ~n:3))

let test_kmatrix_top_minterms_by_kind () =
  let dfg = tiny_dfg () in
  let k = Kmatrix.build (tiny_trace dfg) in
  match Kmatrix.top_minterms ~kind:Dfg.Mul k ~n:1 with
  | [ m ] -> Alcotest.(check (pair int int)) "mul head" (3, 3) (Minterm.unpack m)
  | _ -> Alcotest.fail "expected one"

let test_kmatrix_of_counts () =
  let dfg = Testgen.fig2_dfg () in
  let k = Testgen.fig2_kmatrix dfg in
  Alcotest.(check int) "x on OPA" 6 (Kmatrix.count k Testgen.minterm_x 0);
  Alcotest.(check int) "y on OPE" 8 (Kmatrix.count k Testgen.minterm_y 4);
  Alcotest.(check int) "x total" 23 (Kmatrix.total_occurrences k Testgen.minterm_x)

let test_kmatrix_of_counts_validation () =
  let dfg = tiny_dfg () in
  (match Kmatrix.of_counts dfg [ (7, [ (Minterm.pack 0 0, 1) ]) ] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "bad op id accepted");
  match Kmatrix.of_counts dfg [ (0, [ (Minterm.pack 0 0, -2) ]) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative count accepted"

let test_kmatrix_head_mass () =
  let dfg = tiny_dfg () in
  let k = Kmatrix.build (tiny_trace dfg) in
  (* 6 operand pairs total over 3 samples x 2 ops; top-4 covers all *)
  Alcotest.(check (float 1e-9)) "all mass" 1.0 (Kmatrix.head_mass k ~n:4);
  Alcotest.(check bool) "head of 1 is partial" true
    (Kmatrix.head_mass k ~n:1 < 1.0 && Kmatrix.head_mass k ~n:1 > 0.0)

let test_kmatrix_op_concentration () =
  let dfg = tiny_dfg () in
  let k = Kmatrix.build (tiny_trace dfg) in
  (* (1,2) occurs only on the add op: fully concentrated *)
  Alcotest.(check (float 1e-9)) "single-op minterm" 1.0
    (Kmatrix.op_concentration k (Minterm.pack 1 2));
  Alcotest.(check (float 1e-9)) "absent minterm" 0.0
    (Kmatrix.op_concentration k (Minterm.pack 200 200))

let qcheck_clean_hits_match_kmatrix =
  (* Exec.clean_hits must equal the K-matrix sum over locked (fu, op)
     pairs — the consistency between simulator and Eqn. 2's table. *)
  QCheck2.Test.make ~name:"clean hits = K restricted to locked ops" ~count:40
    QCheck2.Gen.(int_range 0 5_000)
    (fun seed ->
      let dfg = Testgen.random_dfg seed ~n_ops:12 in
      let t = Testgen.skewed_trace (seed + 1) dfg in
      let schedule = Rb_sched.Scheduler.path_based dfg in
      let allocation = Rb_hls.Allocation.for_schedule schedule in
      let binding = Testgen.random_valid_binding (seed + 2) schedule allocation in
      let k = Kmatrix.build t in
      let locked_fu = 0 in
      let minterms = List.filteri (fun i _ -> i < 2) (Kmatrix.top_minterms k ~n:2) in
      match minterms with
      | [] -> true
      | _ ->
        let config = Config.make ~scheme:Scheme.Sfll_rem ~locks:[ (locked_fu, minterms) ] in
        let report =
          Exec.application_errors schedule t ~fu_of_op:(Rb_hls.Binding.fu_array binding)
            ~config
        in
        let expected =
          List.fold_left
            (fun acc op ->
              acc + Kmatrix.count_set k (Config.minterms_of config locked_fu) op)
            0
            (Rb_hls.Binding.ops_on_fu binding locked_fu)
        in
        report.Exec.clean_hits = expected)

let () =
  Alcotest.run "rb_sim"
    [
      ( "trace",
        [
          Alcotest.test_case "accessors" `Quick test_trace_accessors;
          Alcotest.test_case "clamps" `Quick test_trace_clamps;
          Alcotest.test_case "validation" `Quick test_trace_validation;
        ] );
      ( "exec",
        [
          Alcotest.test_case "clean by hand" `Quick test_eval_clean_by_hand;
          Alcotest.test_case "locked injects" `Quick test_eval_locked_injects;
          Alcotest.test_case "corruption propagates" `Quick test_corruption_propagates;
          Alcotest.test_case "error report" `Quick test_application_errors_report;
          Alcotest.test_case "burst metric" `Quick test_application_errors_burst;
          Alcotest.test_case "validation" `Quick test_application_errors_validation;
          Alcotest.test_case "multi-kind config" `Quick test_eval_locked_multi_kind_config;
          Alcotest.test_case "trace sub" `Quick test_trace_sub;
        ] );
      ( "kmatrix",
        [
          Alcotest.test_case "counts" `Quick test_kmatrix_counts;
          Alcotest.test_case "sums to samples" `Quick test_kmatrix_counts_sum_to_samples;
          Alcotest.test_case "count_set additive" `Quick test_kmatrix_count_set_additive;
          Alcotest.test_case "top minterms" `Quick test_kmatrix_top_minterms;
          Alcotest.test_case "top by kind" `Quick test_kmatrix_top_minterms_by_kind;
          Alcotest.test_case "of_counts" `Quick test_kmatrix_of_counts;
          Alcotest.test_case "of_counts validation" `Quick test_kmatrix_of_counts_validation;
          Alcotest.test_case "head mass" `Quick test_kmatrix_head_mass;
          Alcotest.test_case "op concentration" `Quick test_kmatrix_op_concentration;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ qcheck_clean_hits_match_kmatrix ] );
    ]
