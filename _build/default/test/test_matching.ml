module Hungarian = Rb_matching.Hungarian

let check_assignment name matrix expected_cols =
  let assign = Hungarian.min_cost_assignment matrix in
  Alcotest.(check (array int)) name expected_cols assign

let test_identity () =
  check_assignment "diagonal optimum"
    [| [| 0.0; 9.0; 9.0 |]; [| 9.0; 0.0; 9.0 |]; [| 9.0; 9.0; 0.0 |] |]
    [| 0; 1; 2 |]

let test_antidiagonal () =
  check_assignment "anti-diagonal optimum"
    [| [| 9.0; 9.0; 0.0 |]; [| 9.0; 0.0; 9.0 |]; [| 0.0; 9.0; 9.0 |] |]
    [| 2; 1; 0 |]

let test_classic_3x3 () =
  (* Classic example: optimal cost 5 via (0,1) (1,0) (2,2). *)
  let m = [| [| 4.0; 1.0; 3.0 |]; [| 2.0; 0.0; 5.0 |]; [| 3.0; 2.0; 2.0 |] |] in
  let assign = Hungarian.min_cost_assignment m in
  Alcotest.(check (float 1e-9)) "cost 5" 5.0 (Hungarian.assignment_weight m assign)

let test_rectangular () =
  let m = [| [| 10.0; 1.0; 10.0; 10.0 |]; [| 10.0; 10.0; 10.0; 2.0 |] |] in
  let assign = Hungarian.min_cost_assignment m in
  Alcotest.(check (array int)) "uses cheap columns" [| 1; 3 |] assign

let test_max_weight () =
  let m = [| [| 1.0; 5.0 |]; [| 6.0; 2.0 |] |] in
  let assign = Hungarian.max_weight_assignment m in
  Alcotest.(check (array int)) "max picks 5+6" [| 1; 0 |] assign;
  Alcotest.(check (float 1e-9)) "weight" 11.0 (Hungarian.assignment_weight m assign)

let test_negative_weights () =
  let m = [| [| -5.0; -1.0 |]; [| -2.0; -8.0 |] |] in
  let assign = Hungarian.max_weight_assignment m in
  Alcotest.(check (float 1e-9)) "best of a bad lot" (-3.0) (Hungarian.assignment_weight m assign)

let test_single_cell () =
  Alcotest.(check (array int)) "1x1" [| 0 |] (Hungarian.min_cost_assignment [| [| 7.0 |] |])

let test_all_equal_weights () =
  (* any perfect matching is optimal; result must still be a valid
     injective assignment *)
  let m = Array.make_matrix 4 6 3.0 in
  let assign = Hungarian.min_cost_assignment m in
  Alcotest.(check (float 1e-9)) "cost 12" 12.0 (Hungarian.assignment_weight m assign);
  Alcotest.(check int) "distinct columns" 4
    (List.length (List.sort_uniq Int.compare (Array.to_list assign)))

let test_large_random_consistency () =
  (* max on w == -(min on -w) at a size brute force cannot check *)
  let rng = Rb_util.Rng.create 2024 in
  let m = Array.init 40 (fun _ -> Array.init 40 (fun _ -> float_of_int (Rb_util.Rng.int rng 1000))) in
  let neg = Array.map (Array.map (fun w -> -.w)) m in
  let a1 = Hungarian.max_weight_assignment m in
  let a2 = Hungarian.min_cost_assignment neg in
  Alcotest.(check (float 1e-6)) "duality at 40x40"
    (Hungarian.assignment_weight m a1)
    (-. Hungarian.assignment_weight neg a2)

let test_validation_errors () =
  let invalid name m =
    match Hungarian.min_cost_assignment m with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  invalid "empty" [||];
  invalid "empty row" [| [||] |];
  invalid "ragged" [| [| 1.0; 2.0 |]; [| 1.0 |] |];
  invalid "too tall" [| [| 1.0 |]; [| 2.0 |] |]

(* Exhaustive optimum via permutation enumeration, for cross-checking. *)
let brute_force_min matrix =
  let rows = Array.length matrix and cols = Array.length matrix.(0) in
  let best = ref infinity in
  let used = Array.make cols false in
  let rec go row acc =
    if row = rows then (if acc < !best then best := acc)
    else
      for c = 0 to cols - 1 do
        if not used.(c) then begin
          used.(c) <- true;
          go (row + 1) (acc +. matrix.(row).(c));
          used.(c) <- false
        end
      done
  in
  go 0 0.0;
  !best

let matrix_gen =
  QCheck2.Gen.(
    bind (pair (int_range 1 6) (int_range 1 7)) (fun (rows, cols) ->
        let rows = min rows cols in
        array_size (return rows)
          (array_size (return cols) (map float_of_int (int_range 0 50)))))

let qcheck_optimal_vs_brute_force =
  QCheck2.Test.make ~name:"Hungarian matches brute force" ~count:300 matrix_gen
    (fun m ->
      let assign = Hungarian.min_cost_assignment m in
      abs_float (Hungarian.assignment_weight m assign -. brute_force_min m) < 1e-6)

let qcheck_assignment_valid =
  QCheck2.Test.make ~name:"assignment is injective and total" ~count:300 matrix_gen
    (fun m ->
      let assign = Hungarian.min_cost_assignment m in
      let cols = Array.length m.(0) in
      Array.length assign = Array.length m
      && Array.for_all (fun c -> c >= 0 && c < cols) assign
      && List.length (List.sort_uniq Int.compare (Array.to_list assign))
         = Array.length assign)

let qcheck_max_min_duality =
  QCheck2.Test.make ~name:"max on negated = min" ~count:200 matrix_gen
    (fun m ->
      let neg = Array.map (Array.map (fun w -> -.w)) m in
      let min_a = Hungarian.min_cost_assignment m in
      let max_a = Hungarian.max_weight_assignment neg in
      abs_float
        (Hungarian.assignment_weight m min_a +. Hungarian.assignment_weight neg max_a)
      < 1e-6)

let () =
  Alcotest.run "rb_matching"
    [
      ( "hungarian",
        [
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "anti-diagonal" `Quick test_antidiagonal;
          Alcotest.test_case "classic 3x3" `Quick test_classic_3x3;
          Alcotest.test_case "rectangular" `Quick test_rectangular;
          Alcotest.test_case "max weight" `Quick test_max_weight;
          Alcotest.test_case "negative weights" `Quick test_negative_weights;
          Alcotest.test_case "single cell" `Quick test_single_cell;
          Alcotest.test_case "all equal" `Quick test_all_equal_weights;
          Alcotest.test_case "40x40 duality" `Quick test_large_random_consistency;
          Alcotest.test_case "validation" `Quick test_validation_errors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_optimal_vs_brute_force; qcheck_assignment_valid; qcheck_max_min_duality ] );
    ]
