module Dfg = Rb_dfg.Dfg
module Schedule = Rb_sched.Schedule
module Scheduler = Rb_sched.Scheduler
module Allocation = Rb_hls.Allocation
module Binding = Rb_hls.Binding
module Registers = Rb_hls.Registers
module Profile = Rb_hls.Profile
module Benchmark = Rb_workload.Benchmark
module Datapath = Rb_rtl.Datapath
module Rtl_sim = Rb_rtl.Rtl_sim
module Verilog = Rb_rtl.Verilog
module Testgen = Rb_testsupport.Testgen

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

(* ----------------------------------------------------------- datapath *)

let fig2_datapath () =
  let dfg = Testgen.fig2_dfg () in
  let schedule = Testgen.fig2_schedule dfg in
  let allocation = { Allocation.adders = 3; multipliers = 0 } in
  let binding = Binding.make schedule allocation ~fu_of_op:[| 0; 1; 0; 1; 2 |] in
  (binding, Datapath.build binding)

let test_build_validates () =
  let _, dp = fig2_datapath () in
  match Datapath.validate dp with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_register_count_matches_cost_model () =
  let binding, dp = fig2_datapath () in
  Alcotest.(check int) "datapath registers = cost model"
    (Registers.count binding) (Datapath.n_registers dp)

let test_every_op_issued_once () =
  let binding, dp = fig2_datapath () in
  let dfg = Schedule.dfg (Binding.schedule binding) in
  let issued = List.map (fun (i : Datapath.issue) -> i.Datapath.op) (Datapath.issues dp) in
  Alcotest.(check (list int)) "all ops issued"
    (List.init (Dfg.op_count dfg) Fun.id)
    (List.sort Int.compare issued)

let test_issue_matches_binding () =
  let binding, dp = fig2_datapath () in
  let schedule = Binding.schedule binding in
  List.iter
    (fun (i : Datapath.issue) ->
      Alcotest.(check int) "fu agrees" (Binding.fu_of_op binding i.Datapath.op) i.Datapath.fu;
      Alcotest.(check int) "cycle agrees"
        (Schedule.cycle_of schedule i.Datapath.op)
        i.Datapath.cycle)
    (Datapath.issues dp)

let test_mux_inputs_positive_when_shared () =
  let _, dp = fig2_datapath () in
  (* FU0 runs OPA then OPC with different sources: muxing needed. *)
  Alcotest.(check bool) "mux fan-in positive" true (Datapath.mux_inputs dp > 0)

(* ------------------------------------------------------------ rtl sim *)

let all_binders schedule allocation trace =
  let profile = Profile.build trace in
  [
    ("area", Rb_hls.Area_binding.bind schedule allocation);
    ("power", Rb_hls.Power_binding.bind schedule allocation ~profile);
  ]

let test_rtl_sim_matches_dataflow_on_benchmarks () =
  List.iter
    (fun b ->
      let schedule = Benchmark.schedule b in
      let trace = Benchmark.trace ~length:32 b in
      let allocation = Allocation.for_schedule schedule in
      List.iter
        (fun (binder, binding) ->
          let dp = Datapath.build binding in
          (match Datapath.validate dp with
           | Ok () -> ()
           | Error e -> Alcotest.failf "%s/%s: invalid datapath: %s" b.Benchmark.name binder e);
          match Rtl_sim.check_trace dp trace with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s/%s: %s" b.Benchmark.name binder e)
        (all_binders schedule allocation trace))
    (Benchmark.all ())

let test_rtl_sim_matches_dataflow_obf_binding () =
  (* The security-aware binding must also produce a correct datapath —
     scattering producer/consumer chains stresses the register
     allocator hardest. *)
  let b = Benchmark.find "dct" in
  let schedule = Benchmark.schedule b in
  let trace = Benchmark.trace ~length:32 b in
  let allocation = Allocation.for_schedule schedule in
  let k = Rb_sim.Kmatrix.build trace in
  let candidates = Array.of_list (Rb_sim.Kmatrix.top_minterms ~kind:Dfg.Mul k ~n:4) in
  let config =
    Rb_locking.Config.make ~scheme:Rb_locking.Scheme.Sfll_rem
      ~locks:[ (allocation.Allocation.adders, Array.to_list candidates) ]
  in
  let binding = Rb_core.Obf_binding.bind k config schedule allocation in
  let dp = Datapath.build binding in
  match Rtl_sim.check_trace dp trace with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_rtl_sim_rejects_foreign_trace () =
  let _, dp = fig2_datapath () in
  let other = Benchmark.trace ~length:4 (Benchmark.find "fir") in
  match Rtl_sim.run dp other ~sample:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "foreign trace accepted"

(* ------------------------------------------------------------ verilog *)

let test_verilog_structure () =
  let binding, dp = fig2_datapath () in
  let schedule = Binding.schedule binding in
  let dfg = Schedule.dfg schedule in
  let v = Verilog.emit dp in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (affix ^ " present") true (contains ~affix v))
    ([ "module fig2"; "endmodule"; "input clk"; "always @(posedge clk)"; "case (cycle)" ]
     @ List.map (fun i -> Printf.sprintf "input [7:0] %s" i) (Dfg.inputs dfg)
     @ List.mapi (fun idx _ -> Printf.sprintf "output [7:0] out%d" idx) (Dfg.outputs dfg))

let test_verilog_register_declarations () =
  let _, dp = fig2_datapath () in
  let v = Verilog.emit dp in
  for r = 0 to Datapath.n_registers dp - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "r%d declared" r)
      true
      (contains ~affix:(Printf.sprintf "reg [7:0] r%d;" r) v)
  done

let test_verilog_custom_module_name () =
  let _, dp = fig2_datapath () in
  Alcotest.(check bool) "renamed" true
    (contains ~affix:"module my_core (" (Verilog.emit ~module_name:"my_core" dp))

let test_verilog_emits_for_all_benchmarks () =
  List.iter
    (fun b ->
      let schedule = Benchmark.schedule b in
      let allocation = Allocation.for_schedule schedule in
      let binding = Rb_hls.Area_binding.bind schedule allocation in
      let dp = Datapath.build binding in
      let v = Verilog.emit dp in
      Alcotest.(check bool) (b.Benchmark.name ^ " emits a module") true
        (contains ~affix:"endmodule" v);
      (* every allocated register appears *)
      for r = 0 to Datapath.n_registers dp - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "%s r%d" b.Benchmark.name r)
          true
          (contains ~affix:(Printf.sprintf "reg [7:0] r%d;" r) v)
      done)
    (Benchmark.all ())

let test_verilog_deterministic () =
  let _, dp = fig2_datapath () in
  Alcotest.(check string) "same text" (Verilog.emit dp) (Verilog.emit dp)

(* ---------------------------------------------------------- properties *)

let qcheck_datapath_correct_on_random_dfgs =
  QCheck2.Test.make ~name:"datapath simulates like the dataflow on random DFGs" ~count:40
    QCheck2.Gen.(pair (int_range 0 5_000) (int_range 0 500))
    (fun (seed, bseed) ->
      let dfg = Testgen.random_dfg seed ~n_ops:(8 + (seed mod 18)) in
      let schedule = Scheduler.path_based dfg in
      let allocation = Allocation.for_schedule schedule in
      let binding = Testgen.random_valid_binding bseed schedule allocation in
      let dp = Datapath.build binding in
      let trace = Testgen.skewed_trace (seed + 7) dfg ~n:8 in
      Result.is_ok (Datapath.validate dp) && Result.is_ok (Rtl_sim.check_trace dp trace))

let qcheck_register_count_always_matches =
  QCheck2.Test.make ~name:"left-edge meets the max-overlap bound" ~count:60
    QCheck2.Gen.(pair (int_range 0 5_000) (int_range 0 500))
    (fun (seed, bseed) ->
      let dfg = Testgen.random_dfg seed ~n_ops:16 in
      let schedule = Scheduler.path_based dfg in
      let allocation = Allocation.for_schedule schedule in
      let binding = Testgen.random_valid_binding bseed schedule allocation in
      Datapath.n_registers (Datapath.build binding) = Registers.count binding)

let () =
  Alcotest.run "rb_rtl"
    [
      ( "datapath",
        [
          Alcotest.test_case "validates" `Quick test_build_validates;
          Alcotest.test_case "register count" `Quick test_register_count_matches_cost_model;
          Alcotest.test_case "ops issued once" `Quick test_every_op_issued_once;
          Alcotest.test_case "matches binding" `Quick test_issue_matches_binding;
          Alcotest.test_case "mux fan-in" `Quick test_mux_inputs_positive_when_shared;
        ] );
      ( "rtl-sim",
        [
          Alcotest.test_case "benchmarks x binders" `Slow
            test_rtl_sim_matches_dataflow_on_benchmarks;
          Alcotest.test_case "obf binding" `Quick test_rtl_sim_matches_dataflow_obf_binding;
          Alcotest.test_case "foreign trace" `Quick test_rtl_sim_rejects_foreign_trace;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "structure" `Quick test_verilog_structure;
          Alcotest.test_case "registers declared" `Quick test_verilog_register_declarations;
          Alcotest.test_case "module name" `Quick test_verilog_custom_module_name;
          Alcotest.test_case "deterministic" `Quick test_verilog_deterministic;
          Alcotest.test_case "all benchmarks" `Quick test_verilog_emits_for_all_benchmarks;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_datapath_correct_on_random_dfgs; qcheck_register_count_always_matches ] );
    ]
