module Dfg = Rb_dfg.Dfg
module Schedule = Rb_sched.Schedule
module Scheduler = Rb_sched.Scheduler
module Testgen = Rb_testsupport.Testgen

let limits adders multipliers = { Scheduler.adders; multipliers }

let test_asap_respects_deps () =
  let dfg = Testgen.random_dfg 1 in
  let asap = Scheduler.asap dfg in
  for id = 0 to Dfg.op_count dfg - 1 do
    List.iter
      (fun p ->
        Alcotest.(check bool) "pred earlier" true (asap.(p) < asap.(id)))
      (Dfg.predecessors dfg id)
  done

let test_asap_critical_path () =
  let dfg = Testgen.random_dfg 2 in
  let asap = Scheduler.asap dfg in
  let span = 1 + Array.fold_left max 0 asap in
  Alcotest.(check int) "span = critical path" (Dfg.critical_path_length dfg) span

let test_alap_bounds () =
  let dfg = Testgen.random_dfg 3 in
  let latency = Dfg.critical_path_length dfg + 2 in
  let early = Scheduler.asap dfg and late = Scheduler.alap dfg ~latency in
  Array.iteri
    (fun id l ->
      Alcotest.(check bool) "alap >= asap" true (l >= early.(id));
      Alcotest.(check bool) "alap within latency" true (l < latency))
    late

let test_alap_rejects_tight_latency () =
  let dfg = Testgen.random_dfg 4 in
  let latency = Dfg.critical_path_length dfg - 1 in
  match Scheduler.alap dfg ~latency with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_slack_nonnegative () =
  let dfg = Testgen.random_dfg 5 in
  let latency = Dfg.critical_path_length dfg + 3 in
  Array.iter
    (fun s -> Alcotest.(check bool) "slack >= 0" true (s >= 0))
    (Scheduler.slack dfg ~latency)

let test_path_based_valid () =
  let dfg = Testgen.random_dfg 6 ~n_ops:40 in
  let schedule = Scheduler.path_based dfg in
  Alcotest.(check bool) "causal" true (Result.is_ok (Schedule.validate schedule))

let test_path_based_respects_limits () =
  let dfg = Testgen.random_dfg 7 ~n_ops:40 in
  let lims = limits 2 1 in
  let schedule = Scheduler.path_based ~limits:lims dfg in
  Alcotest.(check bool) "add concurrency" true (Schedule.max_concurrency schedule Dfg.Add <= 2);
  Alcotest.(check bool) "mul concurrency" true (Schedule.max_concurrency schedule Dfg.Mul <= 1)

let test_path_based_single_fu_serializes () =
  let dfg = Testgen.random_dfg 8 ~n_ops:15 in
  let schedule = Scheduler.path_based ~limits:(limits 1 1) dfg in
  (* one FU per kind: cycle count >= ops of the busier kind *)
  let adds = List.length (Dfg.ops_of_kind dfg Dfg.Add) in
  let muls = List.length (Dfg.ops_of_kind dfg Dfg.Mul) in
  Alcotest.(check bool) "serialized" true (Schedule.n_cycles schedule >= max adds muls)

let test_force_directed_valid () =
  let dfg = Testgen.random_dfg 40 ~n_ops:25 in
  let schedule = Rb_sched.Force_directed.schedule dfg in
  Alcotest.(check bool) "causal" true (Result.is_ok (Schedule.validate schedule));
  Alcotest.(check int) "meets latency" (Dfg.critical_path_length dfg)
    (Schedule.n_cycles schedule)

let test_force_directed_latency_slack () =
  let dfg = Testgen.random_dfg 41 ~n_ops:25 in
  let latency = Dfg.critical_path_length dfg + 3 in
  let schedule = Rb_sched.Force_directed.schedule ~latency dfg in
  Alcotest.(check bool) "causal" true (Result.is_ok (Schedule.validate schedule));
  Alcotest.(check bool) "within latency" true (Schedule.n_cycles schedule <= latency)

let test_force_directed_balances_usage () =
  (* With slack, FDS must not exceed the zero-slack peak; usually it
     lowers it. *)
  let dfg = Testgen.random_dfg 42 ~n_ops:30 in
  let tight = Rb_sched.Force_directed.schedule dfg in
  let latency = Dfg.critical_path_length dfg + 4 in
  let relaxed = Rb_sched.Force_directed.schedule ~latency dfg in
  List.iter
    (fun kind ->
      Alcotest.(check bool) "slack never raises the peak" true
        (Schedule.max_concurrency relaxed kind <= Schedule.max_concurrency tight kind))
    [ Dfg.Add; Dfg.Mul ]

let test_force_directed_rejects_small_latency () =
  let dfg = Testgen.random_dfg 43 in
  match Rb_sched.Force_directed.schedule ~latency:(Dfg.critical_path_length dfg - 1) dfg with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "latency below critical path accepted"

let test_force_directed_deterministic () =
  let dfg = Testgen.random_dfg 44 ~n_ops:20 in
  let s1 = Rb_sched.Force_directed.schedule dfg in
  let s2 = Rb_sched.Force_directed.schedule dfg in
  for id = 0 to Dfg.op_count dfg - 1 do
    Alcotest.(check int) "same cycle" (Schedule.cycle_of s1 id) (Schedule.cycle_of s2 id)
  done

let test_schedule_make_validation () =
  let dfg = Testgen.fig2_dfg () in
  (match Schedule.make dfg ~cycle_of:[| 0; 0 |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "length mismatch accepted");
  match Schedule.make dfg ~cycle_of:[| 0; 0; -1; 1; 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative cycle accepted"

let test_schedule_validate_catches_violation () =
  let dfg = Testgen.fig2_dfg () in
  (* OPC (id 2) depends on OPA (id 0); schedule both in cycle 0. *)
  let bad = Schedule.make dfg ~cycle_of:[| 0; 0; 0; 1; 1 |] in
  Alcotest.(check bool) "violation detected" true (Result.is_error (Schedule.validate bad))

let test_ops_in_cycle_partition () =
  let dfg = Testgen.random_dfg 9 ~n_ops:30 in
  let schedule = Scheduler.path_based dfg in
  let collected = ref [] in
  for c = 0 to Schedule.n_cycles schedule - 1 do
    collected :=
      !collected
      @ Schedule.ops_in_cycle schedule Dfg.Add c
      @ Schedule.ops_in_cycle schedule Dfg.Mul c
  done;
  Alcotest.(check (list int)) "every op exactly once"
    (List.init (Dfg.op_count dfg) Fun.id)
    (List.sort Int.compare !collected)

let test_fig2_schedule_shape () =
  let dfg = Testgen.fig2_dfg () in
  let schedule = Testgen.fig2_schedule dfg in
  Alcotest.(check int) "2 cycles" 2 (Schedule.n_cycles schedule);
  Alcotest.(check (list int)) "clock 1 ops" [ 0; 1 ] (Schedule.ops_in_cycle schedule Dfg.Add 0);
  Alcotest.(check (list int)) "clock 2 ops" [ 2; 3; 4 ] (Schedule.ops_in_cycle schedule Dfg.Add 1);
  Alcotest.(check int) "max concurrency" 3 (Schedule.max_concurrency schedule Dfg.Add)

let qcheck_path_based_always_valid =
  QCheck2.Test.make ~name:"path-based schedules are causal and bounded" ~count:60
    QCheck2.Gen.(triple (int_range 0 10_000) (int_range 1 3) (int_range 1 3))
    (fun (seed, adders, multipliers) ->
      let dfg = Testgen.random_dfg seed ~n_ops:(10 + (seed mod 25)) in
      let schedule = Scheduler.path_based ~limits:(limits adders multipliers) dfg in
      Result.is_ok (Schedule.validate schedule)
      && Schedule.max_concurrency schedule Dfg.Add <= adders
      && Schedule.max_concurrency schedule Dfg.Mul <= multipliers)

let qcheck_asap_is_lower_bound =
  QCheck2.Test.make ~name:"path-based never beats ASAP per op" ~count:60
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let dfg = Testgen.random_dfg seed in
      let asap = Scheduler.asap dfg in
      let schedule = Scheduler.path_based dfg in
      List.for_all
        (fun id -> Schedule.cycle_of schedule id >= asap.(id))
        (List.init (Dfg.op_count dfg) Fun.id))

let () =
  Alcotest.run "rb_sched"
    [
      ( "asap/alap",
        [
          Alcotest.test_case "asap respects deps" `Quick test_asap_respects_deps;
          Alcotest.test_case "asap = critical path" `Quick test_asap_critical_path;
          Alcotest.test_case "alap bounds" `Quick test_alap_bounds;
          Alcotest.test_case "alap tight latency" `Quick test_alap_rejects_tight_latency;
          Alcotest.test_case "slack non-negative" `Quick test_slack_nonnegative;
        ] );
      ( "path-based",
        [
          Alcotest.test_case "valid" `Quick test_path_based_valid;
          Alcotest.test_case "respects limits" `Quick test_path_based_respects_limits;
          Alcotest.test_case "single FU serializes" `Quick test_path_based_single_fu_serializes;
        ] );
      ( "force-directed",
        [
          Alcotest.test_case "valid" `Quick test_force_directed_valid;
          Alcotest.test_case "latency slack" `Quick test_force_directed_latency_slack;
          Alcotest.test_case "balances usage" `Quick test_force_directed_balances_usage;
          Alcotest.test_case "small latency" `Quick test_force_directed_rejects_small_latency;
          Alcotest.test_case "deterministic" `Quick test_force_directed_deterministic;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "make validation" `Quick test_schedule_make_validation;
          Alcotest.test_case "catches violations" `Quick test_schedule_validate_catches_violation;
          Alcotest.test_case "ops partition" `Quick test_ops_in_cycle_partition;
          Alcotest.test_case "fig2 shape" `Quick test_fig2_schedule_shape;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_path_based_always_valid; qcheck_asap_is_lower_bound ] );
    ]
