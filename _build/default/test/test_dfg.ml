module Dfg = Rb_dfg.Dfg
module Word = Rb_dfg.Word
module Minterm = Rb_dfg.Minterm
module B = Dfg.Builder

(* y = (a + b) * (a + 3); z = y + b *)
let sample_dfg () =
  let b = B.create "sample" in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let s = B.add ~label:"s" b a bb in
  let t = B.add ~label:"t" b a (B.const 3) in
  let y = B.mul ~label:"y" b s t in
  let z = B.add ~label:"z" b y bb in
  B.output b z;
  (B.finish b, (s, t, y, z))

let op_id = function Dfg.Op id -> id | Dfg.Input _ | Dfg.Const _ -> assert false

let test_builder_structure () =
  let dfg, (s, t, y, z) = sample_dfg () in
  Alcotest.(check int) "op count" 4 (Dfg.op_count dfg);
  Alcotest.(check (list string)) "inputs in first-use order" [ "a"; "b" ] (Dfg.inputs dfg);
  Alcotest.(check (list int)) "outputs" [ op_id z ] (Dfg.outputs dfg);
  Alcotest.(check (list int)) "adds" [ op_id s; op_id t; op_id z ] (Dfg.ops_of_kind dfg Dfg.Add);
  Alcotest.(check (list int)) "muls" [ op_id y ] (Dfg.ops_of_kind dfg Dfg.Mul)

let test_predecessors_successors () =
  let dfg, (s, t, y, z) = sample_dfg () in
  Alcotest.(check (list int)) "y's preds" [ op_id s; op_id t ] (Dfg.predecessors dfg (op_id y));
  Alcotest.(check (list int)) "s's succs" [ op_id y ] (Dfg.successors dfg (op_id s));
  Alcotest.(check (list int)) "y's succs" [ op_id z ] (Dfg.successors dfg (op_id y));
  Alcotest.(check (list int)) "z has no succs" [] (Dfg.successors dfg (op_id z));
  Alcotest.(check (list int)) "s has no op preds" [] (Dfg.predecessors dfg (op_id s))

let test_validate_good () =
  let dfg, _ = sample_dfg () in
  Alcotest.(check bool) "valid" true (Result.is_ok (Dfg.validate dfg))

let test_builder_rejects_dangling () =
  let b = B.create "bad" in
  let a = B.input b "a" in
  match B.add b a (Dfg.Op 5) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for forward reference"

let test_builder_rejects_output_of_input () =
  let b = B.create "bad" in
  let a = B.input b "a" in
  match B.output b a with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for input output"

let test_empty_dfg_rejected () =
  let b = B.create "empty" in
  match B.finish b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for empty DFG"

let test_implicit_outputs () =
  let b = B.create "implicit" in
  let a = B.input b "a" in
  let x = B.add b a a in
  let _y = B.add b x x in
  (* no explicit output: the sink y becomes one implicitly *)
  let dfg = B.finish b in
  Alcotest.(check (list int)) "sink is implicit output" [ 1 ] (Dfg.outputs dfg)

let test_critical_path () =
  let dfg, _ = sample_dfg () in
  (* s/t (depth 1) -> y (2) -> z (3) *)
  Alcotest.(check int) "chain length" 3 (Dfg.critical_path_length dfg)

let test_dot_output () =
  let dfg, _ = sample_dfg () in
  let dot = Dfg.to_dot dfg in
  Alcotest.(check bool) "has digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  List.iter
    (fun op ->
      let marker = Printf.sprintf "op%d" op.Dfg.id in
      let found =
        let n = String.length dot and m = String.length marker in
        let rec go i = i + m <= n && (String.sub dot i m = marker || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (marker ^ " in dot") true found)
    (Array.to_list (Dfg.ops dfg))

let test_eval_kind () =
  Alcotest.(check int) "add wraps" 4 (Dfg.eval_kind Dfg.Add 250 10);
  Alcotest.(check int) "mul wraps" ((250 * 10) land 255) (Dfg.eval_kind Dfg.Mul 250 10)

(* ------------------------------------------------------------- Dfg_text *)

module Dfg_text = Rb_dfg.Dfg_text

let same_structure d1 d2 =
  Dfg.name d1 = Dfg.name d2
  && Dfg.inputs d1 = Dfg.inputs d2
  && Dfg.outputs d1 = Dfg.outputs d2
  && Dfg.op_count d1 = Dfg.op_count d2
  && List.for_all
       (fun id ->
         let o1 = Dfg.op d1 id and o2 = Dfg.op d2 id in
         o1.Dfg.kind = o2.Dfg.kind && o1.Dfg.lhs = o2.Dfg.lhs && o1.Dfg.rhs = o2.Dfg.rhs)
       (List.init (Dfg.op_count d1) Fun.id)

let test_text_roundtrip () =
  let dfg, _ = sample_dfg () in
  match Dfg_text.of_string (Dfg_text.to_string dfg) with
  | Ok parsed -> Alcotest.(check bool) "same structure" true (same_structure dfg parsed)
  | Error e -> Alcotest.fail e

let test_text_parse_concrete () =
  let text = "# a kernel\ndfg demo\ninput a\ninput b\nop 0 add a b\nop 1 mul %0 #3\noutput %1\n" in
  match Dfg_text.of_string text with
  | Ok dfg ->
    Alcotest.(check string) "name" "demo" (Dfg.name dfg);
    Alcotest.(check int) "ops" 2 (Dfg.op_count dfg);
    Alcotest.(check (list int)) "outputs" [ 1 ] (Dfg.outputs dfg);
    Alcotest.(check bool) "op1 is mul" true ((Dfg.op dfg 1).Dfg.kind = Dfg.Mul)
  | Error e -> Alcotest.fail e

let test_text_parse_errors () =
  let expect_error text =
    match Dfg_text.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" text
  in
  expect_error "";
  expect_error "dfg x\nop 1 add a b\n";
  expect_error "dfg x\ninput a\nop 0 add a undeclared\n";
  expect_error "dfg x\ninput a\nop 0 sub a a\n";
  expect_error "dfg x\ninput a\nop 0 add a %5\n";
  expect_error "dfg x\ninput a\nop 0 add a a\noutput a\n"

let test_text_roundtrip_benchmarks_shape () =
  (* round-trip a nontrivial generated graph *)
  let b = B.create "gen" in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let s1 = B.add b x y in
  let s2 = B.mul b s1 (B.const 7) in
  let s3 = B.add b s2 s1 in
  B.output b s3;
  let dfg = B.finish b in
  match Dfg_text.of_string (Dfg_text.to_string dfg) with
  | Ok parsed -> Alcotest.(check bool) "same" true (same_structure dfg parsed)
  | Error e -> Alcotest.fail e

(* ----------------------------------------------------------------- Expr *)

module Expr = Rb_dfg.Expr

let fir3 = "kernel fir3\ninput x0, x1, x2\nacc = 3*x0 + 11*x1 + 3*x2\ny = acc - x1\noutput y\n"

let test_expr_compile_structure () =
  match Expr.compile fir3 with
  | Error e -> Alcotest.fail e
  | Ok dfg ->
    Alcotest.(check string) "kernel name" "fir3" (Dfg.name dfg);
    Alcotest.(check (list string)) "inputs" [ "x0"; "x1"; "x2" ] (Dfg.inputs dfg);
    Alcotest.(check bool) "valid" true (Result.is_ok (Dfg.validate dfg));
    Alcotest.(check int) "one output" 1 (List.length (Dfg.outputs dfg))

let test_expr_matches_reference () =
  match Expr.compile fir3 with
  | Error e -> Alcotest.fail e
  | Ok dfg ->
    let values = [ ("x0", 7); ("x1", 200); ("x2", 13) ] in
    let lookup n = List.assoc n values in
    (match Expr.eval_reference fir3 ~inputs:lookup with
     | Error e -> Alcotest.fail e
     | Ok [ ("y", expected) ] ->
       (* evaluate the DFG on the same inputs *)
       let trace =
         Rb_sim.Trace.generate dfg ~n:1 ~f:(fun _ name -> lookup name)
       in
       let results = Rb_sim.Exec.eval_clean trace ~sample:0 in
       let out = List.hd (Dfg.outputs dfg) in
       Alcotest.(check int) "DFG = interpreter" expected results.(out).Rb_sim.Exec.result
     | Ok _ -> Alcotest.fail "expected one output")

let test_expr_constant_folding () =
  match Expr.compile "input a\ny = a + 2*3 + 1\noutput y\n" with
  | Error e -> Alcotest.fail e
  | Ok dfg ->
    (* 2*3 and +1 must fold: a + 6 + 1 -> two adds at most; folding
       inside the tree gives (a+6)+1 = 2 adds, no muls *)
    Alcotest.(check int) "no multiplies" 0 (List.length (Dfg.ops_of_kind dfg Dfg.Mul))

let test_expr_cse () =
  match Expr.compile "input a, b\nx = a + b\ny = a + b\nz = x * y\noutput z\n" with
  | Error e -> Alcotest.fail e
  | Ok dfg ->
    Alcotest.(check int) "one shared add" 1 (List.length (Dfg.ops_of_kind dfg Dfg.Add));
    (* z = (a+b)*(a+b): one multiply *)
    Alcotest.(check int) "one multiply" 1 (List.length (Dfg.ops_of_kind dfg Dfg.Mul))

let test_expr_errors () =
  let expect_error program =
    match Expr.compile program with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" program
  in
  expect_error "output y\n";
  expect_error "input a\ny = a + nope\noutput y\n";
  expect_error "input a\na = a + 1\noutput a\n";
  expect_error "input a\ny = a + 1\ny = a + 2\noutput y\n";
  expect_error "input a\noutput a\n";
  expect_error "input a\ny = (a + 1\noutput y\n";
  expect_error "input a\ny = a ? 1\noutput y\n";
  expect_error "input a\ny = a + 1\n"

(* random straight-line programs: compiled DFG == interpreter *)
let random_program seed =
  let rng = Rb_util.Rng.create seed in
  let buf = Buffer.create 128 in
  Buffer.add_string buf "input i0, i1, i2\n";
  let names = ref [ "i0"; "i1"; "i2" ] in
  let rec gen_expr depth =
    if depth = 0 || Rb_util.Rng.int rng 3 = 0 then
      if Rb_util.Rng.bool rng then List.nth !names (Rb_util.Rng.int rng (List.length !names))
      else string_of_int (Rb_util.Rng.int rng 256)
    else begin
      let op = [| "+"; "-"; "*" |].(Rb_util.Rng.int rng 3) in
      Printf.sprintf "(%s %s %s)" (gen_expr (depth - 1)) op (gen_expr (depth - 1))
    end
  in
  let n_stmts = 1 + Rb_util.Rng.int rng 5 in
  for i = 0 to n_stmts - 1 do
    let name = Printf.sprintf "v%d" i in
    Buffer.add_string buf (Printf.sprintf "%s = %s + i0\n" name (gen_expr 3));
    names := name :: !names
  done;
  Buffer.add_string buf (Printf.sprintf "output v%d\n" (n_stmts - 1));
  Buffer.contents buf

let qcheck_expr_compile_matches_interpreter =
  QCheck2.Test.make ~name:"compiled DFG matches the interpreter" ~count:100
    QCheck2.Gen.(pair (int_range 0 10_000) (triple (int_range 0 255) (int_range 0 255) (int_range 0 255)))
    (fun (seed, (a, b, c)) ->
      let program = random_program seed in
      let lookup = function "i0" -> a | "i1" -> b | _ -> c in
      match (Expr.compile program, Expr.eval_reference program ~inputs:lookup) with
      | Ok dfg, Ok [ (_, expected) ] ->
        let trace = Rb_sim.Trace.generate dfg ~n:1 ~f:(fun _ name -> lookup name) in
        let results = Rb_sim.Exec.eval_clean trace ~sample:0 in
        let out = List.hd (Dfg.outputs dfg) in
        results.(out).Rb_sim.Exec.result = expected
      | Ok _, Ok _ -> false
      | Error _, _ | _, Error _ -> false)

(* ----------------------------------------------------------------- Word *)

let test_word_constants () =
  Alcotest.(check int) "width" 8 Word.width;
  Alcotest.(check int) "mask" 255 Word.mask;
  Alcotest.(check int) "count" 256 Word.count

(* -------------------------------------------------------------- Minterm *)

let test_minterm_pack_unpack () =
  let m = Minterm.pack 17 254 in
  Alcotest.(check (pair int int)) "roundtrip" (17, 254) (Minterm.unpack m);
  Alcotest.(check int) "space" 65536 Minterm.space_size

let test_minterm_order () =
  Alcotest.(check bool) "ordered by packed int" true
    (Minterm.compare (Minterm.pack 0 5) (Minterm.pack 1 0) < 0)

let qcheck_word_ops_in_range =
  QCheck2.Test.make ~name:"word ops stay in range" ~count:1000
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 0 100000))
    (fun (a, b) ->
      let s = Word.add a b and p = Word.mul a b in
      s >= 0 && s <= Word.mask && p >= 0 && p <= Word.mask)

let qcheck_word_add_matches_mod =
  QCheck2.Test.make ~name:"add is mod-256 addition" ~count:1000
    QCheck2.Gen.(pair (int_range 0 255) (int_range 0 255))
    (fun (a, b) -> Word.add a b = (a + b) mod 256)

let qcheck_minterm_roundtrip =
  QCheck2.Test.make ~name:"minterm pack/unpack roundtrip" ~count:1000
    QCheck2.Gen.(pair (int_range 0 255) (int_range 0 255))
    (fun (a, b) -> Minterm.unpack (Minterm.pack a b) = (a, b))

let qcheck_minterm_of_to_int =
  QCheck2.Test.make ~name:"minterm of_int/to_int" ~count:1000
    QCheck2.Gen.(int_range 0 65535)
    (fun i -> Minterm.to_int (Minterm.of_int i) = i)

let () =
  Alcotest.run "rb_dfg"
    [
      ( "builder",
        [
          Alcotest.test_case "structure" `Quick test_builder_structure;
          Alcotest.test_case "preds/succs" `Quick test_predecessors_successors;
          Alcotest.test_case "validate" `Quick test_validate_good;
          Alcotest.test_case "dangling rejected" `Quick test_builder_rejects_dangling;
          Alcotest.test_case "output of input rejected" `Quick test_builder_rejects_output_of_input;
          Alcotest.test_case "empty rejected" `Quick test_empty_dfg_rejected;
          Alcotest.test_case "implicit outputs" `Quick test_implicit_outputs;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "dot export" `Quick test_dot_output;
          Alcotest.test_case "eval kinds" `Quick test_eval_kind;
        ] );
      ( "expr",
        [
          Alcotest.test_case "compile structure" `Quick test_expr_compile_structure;
          Alcotest.test_case "matches reference" `Quick test_expr_matches_reference;
          Alcotest.test_case "constant folding" `Quick test_expr_constant_folding;
          Alcotest.test_case "cse" `Quick test_expr_cse;
          Alcotest.test_case "errors" `Quick test_expr_errors;
        ] );
      ( "text-format",
        [
          Alcotest.test_case "roundtrip" `Quick test_text_roundtrip;
          Alcotest.test_case "concrete parse" `Quick test_text_parse_concrete;
          Alcotest.test_case "errors" `Quick test_text_parse_errors;
          Alcotest.test_case "generated roundtrip" `Quick test_text_roundtrip_benchmarks_shape;
        ] );
      ( "word+minterm",
        [
          Alcotest.test_case "word constants" `Quick test_word_constants;
          Alcotest.test_case "minterm roundtrip" `Quick test_minterm_pack_unpack;
          Alcotest.test_case "minterm order" `Quick test_minterm_order;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_expr_compile_matches_interpreter;
            qcheck_word_ops_in_range;
            qcheck_word_add_matches_mod;
            qcheck_minterm_roundtrip;
            qcheck_minterm_of_to_int;
          ] );
    ]
