(** Scheduling algorithms.

    The paper schedules each benchmark "to be executed on up to 3 FUs
    using a path-based scheduler [24]" (Sec. VI). We provide ASAP and
    ALAP (for slack analysis and tests) and a resource-constrained
    path-based list scheduler that prioritizes operations on long
    dependency paths, the core idea of path-based scheduling. *)

type limits = { adders : int; multipliers : int }
(** Per-cycle resource bounds; both must be positive. *)

val default_limits : limits
(** Up to 3 FUs of each kind, the paper's experimental setting. *)

val asap : Rb_dfg.Dfg.t -> int array
(** Unconstrained as-soon-as-possible cycle per operation. *)

val alap : Rb_dfg.Dfg.t -> latency:int -> int array
(** As-late-as-possible within [latency] cycles. Raises
    [Invalid_argument] if [latency] is below the critical path. *)

val slack : Rb_dfg.Dfg.t -> latency:int -> int array
(** [alap - asap] mobility per operation. *)

val path_based : ?limits:limits -> Rb_dfg.Dfg.t -> Schedule.t
(** Resource-constrained list schedule. Ready operations are ordered by
    (longest path to a sink, descending; id ascending) and packed into
    the earliest cycle with a free unit of the right kind. The result
    always satisfies [Schedule.validate] and respects [limits]
    per-cycle. *)
