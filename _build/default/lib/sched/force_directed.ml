module Dfg = Rb_dfg.Dfg

(* Time frames under partial fixing: ASAP/ALAP recomputed from the
   operations already pinned. *)
let frames dfg ~latency ~fixed =
  let n = Dfg.op_count dfg in
  let early = Array.make n 0 in
  for id = 0 to n - 1 do
    let lower =
      List.fold_left (fun acc p -> max acc (early.(p) + 1)) 0 (Dfg.predecessors dfg id)
    in
    early.(id) <- (match fixed.(id) with Some c -> c | None -> lower)
  done;
  let late = Array.make n (latency - 1) in
  for id = n - 1 downto 0 do
    let upper =
      List.fold_left (fun acc s -> min acc (late.(s) - 1)) (latency - 1)
        (Dfg.successors dfg id)
    in
    late.(id) <- (match fixed.(id) with Some c -> c | None -> upper)
  done;
  (early, late)

let schedule ?latency dfg =
  let critical = Dfg.critical_path_length dfg in
  let latency = Option.value latency ~default:critical in
  if latency < critical then invalid_arg "Force_directed.schedule: latency too small";
  let n = Dfg.op_count dfg in
  let fixed : int option array = Array.make n None in
  (* Distribution graph for one kind under the current frames. *)
  let distribution early late kind =
    let dg = Array.make latency 0.0 in
    for id = 0 to n - 1 do
      if (Dfg.op dfg id).Dfg.kind = kind then begin
        let width = late.(id) - early.(id) + 1 in
        let p = 1.0 /. float_of_int width in
        for c = early.(id) to late.(id) do
          dg.(c) <- dg.(c) +. p
        done
      end
    done;
    dg
  in
  (* Self force of pinning [id] at cycle [c]: how much more crowded the
     distribution graph becomes, relative to the op's current spread. *)
  let self_force dg early late id c =
    let width = late.(id) - early.(id) + 1 in
    let p = 1.0 /. float_of_int width in
    let force = ref 0.0 in
    for t = early.(id) to late.(id) do
      let delta = (if t = c then 1.0 else 0.0) -. p in
      force := !force +. (dg.(t) *. delta)
    done;
    !force
  in
  let remaining = ref (List.init n Fun.id) in
  while !remaining <> [] do
    let early, late = frames dfg ~latency ~fixed in
    let dg_add = distribution early late Dfg.Add in
    let dg_mul = distribution early late Dfg.Mul in
    (* Pick the (op, cycle) with minimum force among unscheduled ops;
       ties resolve to the earliest cycle and smallest id for
       determinism. *)
    let best = ref None in
    List.iter
      (fun id ->
        let dg = match (Dfg.op dfg id).Dfg.kind with Dfg.Add -> dg_add | Dfg.Mul -> dg_mul in
        for c = early.(id) to late.(id) do
          let f = self_force dg early late id c in
          let better =
            match !best with
            | None -> true
            | Some (bf, bid, bc) ->
              f < bf -. 1e-12
              || (abs_float (f -. bf) <= 1e-12 && (c < bc || (c = bc && id < bid)))
          in
          if better then best := Some (f, id, c)
        done)
      !remaining;
    (match !best with
     | None -> assert false
     | Some (_, id, c) ->
       fixed.(id) <- Some c;
       remaining := List.filter (fun x -> x <> id) !remaining)
  done;
  let cycle_of = Array.map (function Some c -> c | None -> assert false) fixed in
  Schedule.make dfg ~cycle_of
