(** Force-directed scheduling (Paulin & Knight).

    The classic HLS scheduler that minimizes peak resource usage for a
    fixed latency: each unscheduled operation carries a probability
    distribution over its feasible time frame; "distribution graphs"
    accumulate expected usage per (kind, cycle); operations are fixed
    one at a time into the cycle minimizing the self-force (the
    increase in crowding), re-tightening the frames of their neighbours
    after every choice.

    Provided as an alternative front end to {!Scheduler.path_based}:
    experiments can check that the paper's binding results are not an
    artifact of one scheduling style (the schedule-sensitivity ablation
    in the bench harness). *)

val schedule : ?latency:int -> Rb_dfg.Dfg.t -> Schedule.t
(** Schedule with the given latency bound (default: the critical path
    length, the tightest feasible). Raises [Invalid_argument] if
    [latency] is below the critical path. The result always satisfies
    {!Schedule.validate}. *)
