lib/sched/force_directed.mli: Rb_dfg Schedule
