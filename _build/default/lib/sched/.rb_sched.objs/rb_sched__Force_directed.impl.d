lib/sched/force_directed.ml: Array Fun List Option Rb_dfg Schedule
