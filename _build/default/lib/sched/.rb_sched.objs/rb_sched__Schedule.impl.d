lib/sched/schedule.ml: Array Format List Printf Rb_dfg
