lib/sched/scheduler.mli: Rb_dfg Schedule
