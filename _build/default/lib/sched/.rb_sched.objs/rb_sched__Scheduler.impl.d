lib/sched/scheduler.ml: Array Fun Hashtbl Int List Option Rb_dfg Schedule
