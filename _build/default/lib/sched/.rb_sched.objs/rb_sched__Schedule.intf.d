lib/sched/schedule.mli: Format Rb_dfg
