module Dfg = Rb_dfg.Dfg

type limits = { adders : int; multipliers : int }

let default_limits = { adders = 3; multipliers = 3 }

let limit_for limits = function
  | Dfg.Add -> limits.adders
  | Dfg.Mul -> limits.multipliers

let asap dfg =
  let n = Dfg.op_count dfg in
  let cycle = Array.make n 0 in
  for id = 0 to n - 1 do
    let ready =
      List.fold_left (fun acc p -> max acc (cycle.(p) + 1)) 0 (Dfg.predecessors dfg id)
    in
    cycle.(id) <- ready
  done;
  cycle

let alap dfg ~latency =
  if latency < Dfg.critical_path_length dfg then
    invalid_arg "Scheduler.alap: latency below critical path";
  let n = Dfg.op_count dfg in
  let cycle = Array.make n (latency - 1) in
  for id = n - 1 downto 0 do
    let deadline =
      List.fold_left (fun acc s -> min acc (cycle.(s) - 1)) (latency - 1)
        (Dfg.successors dfg id)
    in
    cycle.(id) <- deadline
  done;
  cycle

let slack dfg ~latency =
  let early = asap dfg and late = alap dfg ~latency in
  Array.init (Array.length early) (fun i -> late.(i) - early.(i))

(* Longest path (in operations) from each op to any sink; the priority
   function of the list scheduler. *)
let path_to_sink dfg =
  let n = Dfg.op_count dfg in
  let dist = Array.make n 1 in
  for id = n - 1 downto 0 do
    let d =
      List.fold_left (fun acc s -> max acc (dist.(s) + 1)) 1 (Dfg.successors dfg id)
    in
    dist.(id) <- d
  done;
  dist

let path_based ?(limits = default_limits) dfg =
  if limits.adders <= 0 || limits.multipliers <= 0 then
    invalid_arg "Scheduler.path_based: non-positive limits";
  let n = Dfg.op_count dfg in
  let priority = path_to_sink dfg in
  let cycle = Array.make n (-1) in
  let unscheduled = ref n in
  (* usage.(cycle) is looked up lazily through a growable table. *)
  let usage : (int * Dfg.op_kind, int) Hashtbl.t = Hashtbl.create 64 in
  let used c kind = Option.value (Hashtbl.find_opt usage (c, kind)) ~default:0 in
  let book c kind = Hashtbl.replace usage (c, kind) (used c kind + 1) in
  let ready_cycle id =
    List.fold_left (fun acc p -> max acc (cycle.(p) + 1)) 0 (Dfg.predecessors dfg id)
  in
  let is_ready id =
    cycle.(id) = -1 && List.for_all (fun p -> cycle.(p) >= 0) (Dfg.predecessors dfg id)
  in
  while !unscheduled > 0 do
    let ready =
      List.init n Fun.id |> List.filter is_ready
      |> List.sort (fun a b ->
             match Int.compare priority.(b) priority.(a) with
             | 0 -> Int.compare a b
             | c -> c)
    in
    assert (ready <> []);
    let place id =
      let kind = (Dfg.op dfg id).kind in
      let cap = limit_for limits kind in
      let rec first_free c = if used c kind < cap then c else first_free (c + 1) in
      let c = first_free (ready_cycle id) in
      cycle.(id) <- c;
      book c kind;
      decr unscheduled
    in
    List.iter place ready
  done;
  Schedule.make dfg ~cycle_of:cycle
