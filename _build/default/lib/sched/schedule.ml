module Dfg = Rb_dfg.Dfg

type t = { dfg : Dfg.t; cycle_of : int array; n_cycles : int }

let make dfg ~cycle_of =
  if Array.length cycle_of <> Dfg.op_count dfg then
    invalid_arg "Schedule.make: cycle array length mismatch";
  Array.iter (fun c -> if c < 0 then invalid_arg "Schedule.make: negative cycle") cycle_of;
  let n_cycles = 1 + Array.fold_left max 0 cycle_of in
  { dfg; cycle_of = Array.copy cycle_of; n_cycles }

let dfg t = t.dfg
let cycle_of t id = t.cycle_of.(id)
let n_cycles t = t.n_cycles

let ops_in_cycle t kind cycle =
  Dfg.ops_of_kind t.dfg kind |> List.filter (fun id -> t.cycle_of.(id) = cycle)

let max_concurrency t kind =
  let counts = Array.make t.n_cycles 0 in
  List.iter
    (fun id -> counts.(t.cycle_of.(id)) <- counts.(t.cycle_of.(id)) + 1)
    (Dfg.ops_of_kind t.dfg kind);
  Array.fold_left max 0 counts

let validate t =
  let n = Dfg.op_count t.dfg in
  let rec check id =
    if id >= n then Ok ()
    else
      let late_pred =
        List.find_opt (fun p -> t.cycle_of.(p) >= t.cycle_of.(id)) (Dfg.predecessors t.dfg id)
      in
      match late_pred with
      | Some p ->
        Error
          (Printf.sprintf "op %d (cycle %d) depends on op %d (cycle %d)" id t.cycle_of.(id)
             p t.cycle_of.(p))
      | None -> check (id + 1)
  in
  check 0

let pp fmt t =
  Format.fprintf fmt "%s scheduled in %d cycles (peak: %d add, %d mul)"
    (Dfg.name t.dfg) t.n_cycles (max_concurrency t Add) (max_concurrency t Mul)
