(** Scheduled data-flow graphs.

    A schedule partitions a DFG into control steps (clock cycles);
    every operation executes in exactly one cycle, after all of its
    predecessors (Sec. II-B). Binding consumes the per-cycle,
    per-kind concurrency sets exposed here. *)

type t

val make : Rb_dfg.Dfg.t -> cycle_of:int array -> t
(** Wrap a cycle assignment. Raises [Invalid_argument] if the array
    length differs from the operation count or a cycle is negative. *)

val dfg : t -> Rb_dfg.Dfg.t

val cycle_of : t -> Rb_dfg.Dfg.op_id -> int
(** Control step of an operation, 0-based. *)

val n_cycles : t -> int
(** Number of control steps, [1 + max cycle]. *)

val ops_in_cycle : t -> Rb_dfg.Dfg.op_kind -> int -> Rb_dfg.Dfg.op_id list
(** Operations of one kind scheduled in one cycle, ascending id. These
    are the concurrent sets [N_t] of Sec. IV-B. *)

val max_concurrency : t -> Rb_dfg.Dfg.op_kind -> int
(** Largest per-cycle operation count of a kind — the minimum FU
    allocation able to execute the schedule. *)

val validate : t -> (unit, string) result
(** Checks dependency causality: every operation is scheduled strictly
    after all of its operand-producing predecessors. *)

val pp : Format.formatter -> t -> unit
(** Summary line: cycles and peak concurrency per kind. *)
