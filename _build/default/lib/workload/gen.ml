module Rng = Rb_util.Rng
module Word = Rb_dfg.Word

type generator = Rng.t -> int -> string -> int

(* Each generator keeps a little state that is refreshed when the
   sample index advances; all words of one sample are drawn from the
   same regime, the way pixels of one block share a region.

   The distributions are deliberately heavy-tailed *per input
   position*: real multimedia kernels see a few stereotyped values on
   each port (region bases, silence levels, zero residuals, ASCII
   text), so each operation's minterm histogram has a tall, operation-
   specific head. That concentration is what HLS input-distribution
   knowledge (Sec. II-B) looks like, and what the binding algorithms
   exploit. *)

(* Stable small hash of an input name, to give each port its own
   stereotyped offset without sharing state across ports. *)
let port_id name = Hashtbl.hash name land 0xFF

let image_pixels () =
  let current_sample = ref (-1) in
  let base = ref 0 in
  let step = ref 1 in
  let textured = ref false in
  let palette = [| 8; 16; 32; 64; 96; 128; 200 |] in
  fun rng sample name ->
    if sample <> !current_sample then begin
      current_sample := sample;
      base := Rng.pick rng palette;
      (* Most blocks are smooth ramps (gradients); some are perfectly
         flat; few are textured. *)
      let r = Rng.int rng 10 in
      step := if r < 2 then 0 else if r < 8 then 1 else 2;
      textured := r = 9
    end;
    let position = port_id name land 0x7 in
    let v = !base + (!step * position) in
    if !textured then Word.clamp (v + Rng.int rng 5) else Word.clamp v

let audio_samples () =
  let current_sample = ref (-1) in
  let silent = ref false in
  let level = ref 0 in
  fun rng sample name ->
    if sample <> !current_sample then begin
      current_sample := sample;
      (* Runs of silence are common in speech workloads; active frames
         sit at one of a few loudness plateaus. *)
      if Rng.int rng 4 = 0 then silent := not !silent;
      level := Rng.int rng 4
    end;
    if !silent then 128
    else begin
      (* Each channel/tap has a stereotyped offset around the frame's
         plateau; coarse codec quantization keeps values repeating. *)
      let plateau = 64 + (32 * !level) in
      let offset = port_id name land 0x1F in
      Word.clamp ((plateau + offset) / 8 * 8)
    end

let residuals () =
  let current_sample = ref (-1) in
  let moving = ref false in
  fun rng sample name ->
    if sample <> !current_sample then begin
      current_sample := sample;
      (* Most macroblocks are static (zero residual); moving ones have
         small, position-biased residuals. *)
      moving := Rng.int rng 3 = 0
    end;
    if not !moving then 0
    else begin
      let bias = port_id name land 0x3 in
      if Rng.int rng 8 = 0 then Rng.int rng Word.count else bias + Rng.int rng 3
    end

let cipher_bytes () =
  let alphabet = [| 0x00; 0x20; 0x41; 0x45; 0x54; 0x61; 0x65; 0x74; 0xFF |] in
  fun rng _sample name ->
    (* Headers, padding and ASCII text dominate real plaintext; each
       byte position has its own favourite (header magic, length
       fields), with occasional arbitrary payload bytes. *)
    let r = Rng.int rng 8 in
    if r = 0 then Rng.int rng Word.count
    else if r < 4 then alphabet.(port_id name mod Array.length alphabet)
    else Rng.pick rng alphabet
