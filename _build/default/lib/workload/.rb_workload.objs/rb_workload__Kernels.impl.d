lib/workload/kernels.ml: Array List Printf Rb_dfg
