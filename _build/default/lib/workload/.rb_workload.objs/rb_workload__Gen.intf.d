lib/workload/gen.mli: Rb_util
