lib/workload/benchmark.mli: Gen Rb_dfg Rb_sched Rb_sim
