lib/workload/kernels.mli: Rb_dfg
