lib/workload/benchmark.ml: Gen Hashtbl Kernels List Rb_dfg Rb_sched Rb_sim Rb_util
