lib/workload/gen.ml: Array Hashtbl Rb_dfg Rb_util
