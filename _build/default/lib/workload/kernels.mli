(** The 11 benchmark DFG kernels (Sec. VI).

    Each function rebuilds, from the paper's description of its
    MediaBench source function, an arithmetic kernel with the same
    operation mix and dependency shape (see DESIGN.md, substitutions).
    Subtraction is expressed as [x + (y * 255)] — exact two's-complement
    negation in 8-bit arithmetic — which is also why several
    image kernels carry "neg" multiplications, as strength-reduced
    SUIF output would.

    All kernels use only {!Rb_dfg.Dfg.op_kind} Add/Mul operations and
    validate structurally. *)

val dct : unit -> Rb_dfg.Dfg.t
(** 8-point DCT, even/odd decomposition (mpeg2enc transform). *)

val ecb_enc4 : unit -> Rb_dfg.Dfg.t
(** Block-cipher ECB encryption round group (pegwit); adds only. *)

val fft : unit -> Rb_dfg.Dfg.t
(** Radix-2 decimation-in-time butterflies with twiddle products. *)

val fir : unit -> Rb_dfg.Dfg.t
(** 8-tap FIR filter inner loop body (EPIC/rasta filtering). *)

val jctrans2 : unit -> Rb_dfg.Dfg.t
(** JPEG transcoding requantization of one coefficient block (cjpeg). *)

val jdmerge1 : unit -> Rb_dfg.Dfg.t
(** JPEG upsampled YCbCr->RGB merge, h1v1 variant (djpeg). *)

val jdmerge3 : unit -> Rb_dfg.Dfg.t
(** JPEG merge, h2v1 variant: 4 pixels share interpolated chroma. *)

val jdmerge4 : unit -> Rb_dfg.Dfg.t
(** JPEG merge, h2v2 variant: two chroma rows, triangle filter. *)

val motion2 : unit -> Rb_dfg.Dfg.t
(** Half-pel motion compensation + SAD accumulation (mpeg2dec). *)

val motion3 : unit -> Rb_dfg.Dfg.t
(** Bi-directional weighted prediction + SAD (mpeg2dec). *)

val noisest2 : unit -> Rb_dfg.Dfg.t
(** Noise-variance estimation: squared differences (gsm/rasta). *)
