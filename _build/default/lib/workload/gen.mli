(** Synthetic "typical workload" generators.

    Stand-ins for the MediaBench sample workloads (see DESIGN.md,
    substitutions). What the binding algorithms exploit is that real
    multimedia data is highly repetitive — flat image regions, silent
    audio, zero residuals — so a few input minterms dominate each
    operation's histogram. Each generator produces one word per named
    input per sample from a seeded {!Rb_util.Rng.t}:

    - {!image_pixels}: blocks from a piecewise-flat image with a small
      palette of region intensities plus occasional texture noise.
    - {!audio_samples}: a quantized low-frequency oscillation with
      silence runs.
    - {!residuals}: sparse motion/noise residuals, mostly zero.
    - {!cipher_bytes}: plaintext bytes from a small alphabet (headers,
      padding) — the ecb_enc4 feed. *)

type generator = Rb_util.Rng.t -> int -> string -> int
(** [gen rng sample_index input_name] yields one word. Generators keep
    per-sample state keyed on [sample_index] transitions, so inputs of
    the same sample are correlated the way a pixel block is. *)

val image_pixels : unit -> generator
val audio_samples : unit -> generator
val residuals : unit -> generator
val cipher_bytes : unit -> generator
