(** Power-aware binding — the switching-minimizing baseline [19].

    Chang et al. bind to minimize the switched capacitance of the data
    path: consecutive operations on one FU should present similar
    operand words so few input bits toggle. Our per-cycle assignment
    cost of putting [op] on [fu] is the expected Hamming distance
    (over the typical trace) between [op]'s operand pair and that of
    the operation most recently executed on [fu]; an idle FU costs
    nothing. Minimized per cycle, in time order. *)

val bind : Rb_sched.Schedule.t -> Allocation.t -> profile:Profile.t -> Binding.t
