lib/hls/profile.ml: Array Rb_dfg Rb_sim
