lib/hls/area_binding.mli: Allocation Binding Rb_sched
