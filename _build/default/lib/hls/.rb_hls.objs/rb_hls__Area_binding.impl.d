lib/hls/area_binding.ml: Allocation Array Bind_engine List Rb_dfg Rb_sched
