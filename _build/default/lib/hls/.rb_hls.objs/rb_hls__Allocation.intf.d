lib/hls/allocation.mli: Format Rb_dfg Rb_sched
