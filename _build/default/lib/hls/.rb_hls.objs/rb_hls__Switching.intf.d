lib/hls/switching.mli: Binding Profile
