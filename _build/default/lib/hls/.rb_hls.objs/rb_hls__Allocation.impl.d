lib/hls/allocation.ml: Format Fun List Rb_dfg Rb_sched
