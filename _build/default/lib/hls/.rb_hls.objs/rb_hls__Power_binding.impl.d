lib/hls/power_binding.ml: Bind_engine Hashtbl Profile
