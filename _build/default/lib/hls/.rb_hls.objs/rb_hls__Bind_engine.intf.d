lib/hls/bind_engine.mli: Allocation Binding Rb_dfg Rb_sched
