lib/hls/switching.ml: Allocation Binding Profile Rb_dfg
