lib/hls/power_binding.mli: Allocation Binding Profile Rb_sched
