lib/hls/binding.mli: Allocation Format Rb_dfg Rb_sched
