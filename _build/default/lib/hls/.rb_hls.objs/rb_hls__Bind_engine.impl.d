lib/hls/bind_engine.ml: Allocation Array Binding Printf Rb_dfg Rb_matching Rb_sched
