lib/hls/binding.ml: Allocation Array Format Hashtbl Int List Printf Rb_dfg Rb_sched
