lib/hls/profile.mli: Rb_dfg Rb_sim
