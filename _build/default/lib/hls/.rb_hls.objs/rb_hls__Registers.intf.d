lib/hls/registers.mli: Binding Rb_dfg
