lib/hls/registers.ml: Allocation Binding List Rb_dfg Rb_sched
