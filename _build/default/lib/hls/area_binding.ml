module Dfg = Rb_dfg.Dfg
module Schedule = Rb_sched.Schedule

(* Weighted-matching datapath allocation in the spirit of [20]: the
   assignment cost of putting [op] on [fu] is the marginal storage
   pressure it adds to [fu]'s register bank — the number of values
   already parked in that bank across the new value's lifetime — minus
   a discount for operand-producer alignment, which keeps chains on one
   unit and enables the output-latch bypass that {!Registers} models. *)

let bind schedule allocation =
  let dfg = Schedule.dfg schedule in
  let n_cycles = Schedule.n_cycles schedule in
  let fu_so_far = Array.make (Dfg.op_count dfg) (-1) in
  let lifetime op =
    let birth = Schedule.cycle_of schedule op in
    let consumer_death =
      List.fold_left
        (fun acc c -> max acc (Schedule.cycle_of schedule c))
        birth (Dfg.successors dfg op)
    in
    (birth, consumer_death)
  in
  (* bank.(fu).(b) = values already committed to fu's bank that are
     live across boundary b. *)
  let bank = Array.init (Allocation.total allocation) (fun _ -> Array.make (max 1 n_cycles) 0) in
  let weight ~kind:_ ~cycle:_ ~op ~fu =
    let birth, death = lifetime op in
    let pressure = ref 0 in
    for b = birth to death - 1 do
      pressure := !pressure + bank.(fu).(b)
    done;
    let aligned =
      List.fold_left
        (fun acc p -> if fu_so_far.(p) = fu then acc + 1 else acc)
        0 (Dfg.predecessors dfg op)
    in
    float_of_int !pressure +. (0.25 *. float_of_int (death - birth))
    -. (0.5 *. float_of_int aligned)
  in
  let on_bound ~op ~fu =
    fu_so_far.(op) <- fu;
    let birth, death = lifetime op in
    for b = birth to death - 1 do
      bank.(fu).(b) <- bank.(fu).(b) + 1
    done
  in
  Bind_engine.bind ~on_bound ~objective:`Minimize ~weight schedule allocation
