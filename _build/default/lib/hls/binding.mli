(** Resource bindings — the operation-to-FU map all algorithms produce.

    A binding assigns every operation of a scheduled DFG to a
    functional unit of its own kind such that no FU executes two
    operations in the same cycle (validity, paper Thm. 1). All four
    binding algorithms in this repository return this one type, so the
    error and overhead evaluations are algorithm-agnostic. *)

module Dfg = Rb_dfg.Dfg

type t

val make : Rb_sched.Schedule.t -> Allocation.t -> fu_of_op:int array -> t
(** Wrap and validate a raw operation-to-FU array. Raises
    [Invalid_argument] when the array length is wrong, an operation is
    bound to an FU of the wrong kind or out of range, or two
    same-cycle operations share an FU. *)

val schedule : t -> Rb_sched.Schedule.t
val allocation : t -> Allocation.t

val fu_of_op : t -> Dfg.op_id -> int

val fu_array : t -> int array
(** Fresh copy of the raw map (for {!Rb_sim.Exec}). *)

val ops_on_fu : t -> int -> Dfg.op_id list
(** Operations bound to an FU, ascending id — the set [N_l] of
    Eqn. 2. *)

val ops_on_fu_in_time : t -> int -> Dfg.op_id list
(** Operations bound to an FU ordered by execution cycle — the
    consecutive-execution sequence the switching model walks. *)

val equal : t -> t -> bool
(** Same schedule object shape and identical op-to-FU map. *)

val pp : Format.formatter -> t -> unit
