let bind schedule allocation ~profile =
  let last_on_fu = Hashtbl.create 16 in
  let weight ~kind:_ ~cycle:_ ~op ~fu =
    match Hashtbl.find_opt last_on_fu fu with
    | None -> 0.0
    | Some prev -> Profile.expected_input_hamming profile prev op
  in
  let on_bound ~op ~fu = Hashtbl.replace last_on_fu fu op in
  Bind_engine.bind ~on_bound ~objective:`Minimize ~weight schedule allocation
