(** Switching-rate cost model — the power proxy of Fig. 6 (bottom).

    The comparison binder [19] minimizes switching activity, so
    overhead is measured as the expected fraction of FU input-port bits
    that toggle per consecutive execution on the same unit, averaged
    over the typical trace. The value is in [0, 1]; the paper reports
    security-aware binding costing ~0.03 extra. *)

val rate : Binding.t -> Profile.t -> float
(** Normalized input-port toggle rate of a bound data path: total
    expected Hamming distance across all consecutive same-FU
    execution pairs, divided by the bits presented ([2 * Word.width]
    per transition). 0.0 when no FU executes twice. *)

val total_toggles : Binding.t -> Profile.t -> float
(** Unnormalized expected toggle count per trace sample. *)
