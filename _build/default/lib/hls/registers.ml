module Dfg = Rb_dfg.Dfg
module Schedule = Rb_sched.Schedule

let value_lifetimes binding =
  let schedule = Binding.schedule binding in
  let dfg = Schedule.dfg schedule in
  List.init (Dfg.op_count dfg) (fun p ->
      let birth = Schedule.cycle_of schedule p in
      let consumer_death =
        List.fold_left
          (fun acc c -> max acc (Schedule.cycle_of schedule c))
          birth (Dfg.successors dfg p)
      in
      (* Primary outputs are drained by the output interface in their
         production cycle; banks only hold values for later internal
         consumers. *)
      (p, birth, consumer_death))

(* A value consumed on its producer's FU in the immediately following
   cycle can ride the FU's output latch; it needs no register bank
   slot. Everything else occupies a slot in its producer FU's bank
   from the boundary after its birth until its death. *)
let bypassed binding (p, birth, death) =
  let schedule = Binding.schedule binding in
  let dfg = Schedule.dfg schedule in
  let fu = Binding.fu_of_op binding p in
  death = birth + 1
  && List.for_all (fun c -> Binding.fu_of_op binding c = fu) (Dfg.successors dfg p)

let latch_resident_values binding =
  value_lifetimes binding
  |> List.filter (bypassed binding)
  |> List.map (fun (p, _, _) -> p)

(* Distributed register-file accounting: each FU owns a register bank
   holding the values it produced until their last use; banks are not
   shared between FUs (no global register file and its full crossbar),
   the organization the low-power binding literature [19], [22]
   assumes. The bank of FU f needs its peak overlap of f-produced
   values; the design total is the sum of bank peaks. Summing peaks is
   what makes the metric binding-sensitive: scattering a dependency
   chain across FUs leaves long-lived values in several banks at once,
   while area-aware binding retires each bank's value before the next
   one is born. *)
let count binding =
  let schedule = Binding.schedule binding in
  let n_cycles = Schedule.n_cycles schedule in
  let allocation = Binding.allocation binding in
  let values =
    value_lifetimes binding |> List.filter (fun v -> not (bypassed binding v))
  in
  let bank_peak fu =
    let mine = List.filter (fun (p, _, _) -> Binding.fu_of_op binding p = fu) values in
    let best = ref 0 in
    for b = 0 to n_cycles - 1 do
      let live =
        List.fold_left
          (fun acc (_, birth, death) -> if birth <= b && b < death then acc + 1 else acc)
          0 mine
      in
      if live > !best then best := live
    done;
    !best
  in
  let total = ref 0 in
  for fu = 0 to Allocation.total allocation - 1 do
    total := !total + bank_peak fu
  done;
  !total
