module Dfg = Rb_dfg.Dfg
module Schedule = Rb_sched.Schedule

type t = { adders : int; multipliers : int }

let for_schedule schedule =
  {
    adders = Schedule.max_concurrency schedule Dfg.Add;
    multipliers = Schedule.max_concurrency schedule Dfg.Mul;
  }

let total t = t.adders + t.multipliers

let fu_ids t = function
  | Dfg.Add -> List.init t.adders Fun.id
  | Dfg.Mul -> List.init t.multipliers (fun i -> t.adders + i)

let kind_of_fu t fu =
  if fu < 0 || fu >= total t then invalid_arg "Allocation.kind_of_fu"
  else if fu < t.adders then Dfg.Add
  else Dfg.Mul

let pp fmt t = Format.fprintf fmt "%d adders + %d multipliers" t.adders t.multipliers
