(** Resource allocation — the FU inventory a schedule is bound onto.

    Allocation (Sec. II-B) fixes the number of functional units of each
    kind. FU identity is a dense global index: adders first, then
    multipliers, so bindings and locking configurations can address any
    FU with one integer. *)

type t = { adders : int; multipliers : int }

val for_schedule : Rb_sched.Schedule.t -> t
(** The minimum allocation executing a schedule: the peak per-cycle
    concurrency of each kind (at least 1 adder if any add exists, etc.;
    a kind with no operations gets 0 units). *)

val total : t -> int
(** Total FU count. *)

val fu_ids : t -> Rb_dfg.Dfg.op_kind -> int list
(** Global FU ids of one kind, ascending. *)

val kind_of_fu : t -> int -> Rb_dfg.Dfg.op_kind
(** Kind of a global FU id. Raises [Invalid_argument] out of range. *)

val pp : Format.formatter -> t -> unit
