(** Register-count cost model — the area proxy of Fig. 6 (top).

    The comparison binder [20] minimizes register count, so overhead is
    measured in registers. Model: each FU owns one local feedback
    register; an operation result whose consumers all execute on the
    producing FU may occupy that register (one value at a time, greedy
    by birth), while values with cross-FU consumers or feeding a
    primary output live in the shared register file from birth to last
    use. The shared file's size is the maximum lifetime overlap, which
    the left-edge algorithm achieves exactly. Bindings that keep
    producer-consumer chains on one FU (area-aware) need fewer shared
    registers than bindings that scatter them (security-aware) —
    the effect the paper quantifies at ~4.7 registers. *)

val count : Binding.t -> int
(** Shared registers needed by a binding under the feedback-register
    model. *)

val value_lifetimes : Binding.t -> (Rb_dfg.Dfg.op_id * int * int) list
(** Per value: (producer op, birth cycle, death cycle) where death is
    the last cycle a consumer (or the output interface) reads it.
    Exposed for tests and reports. *)

val latch_resident_values : Binding.t -> Rb_dfg.Dfg.op_id list
(** Values assigned to FU-local feedback registers under the binding
    (never needing the shared file), in allocation order. *)
