module Dfg = Rb_dfg.Dfg
module Trace = Rb_sim.Trace
module Exec = Rb_sim.Exec

type t = {
  n_samples : int;
  a_values : int array array; (* op -> sample -> lhs word *)
  b_values : int array array;
}

let build trace =
  let dfg = Trace.dfg trace in
  let n_ops = Dfg.op_count dfg in
  let n_samples = Trace.length trace in
  let a_values = Array.init n_ops (fun _ -> Array.make n_samples 0) in
  let b_values = Array.init n_ops (fun _ -> Array.make n_samples 0) in
  for s = 0 to n_samples - 1 do
    let evals = Exec.eval_clean trace ~sample:s in
    for id = 0 to n_ops - 1 do
      a_values.(id).(s) <- evals.(id).Exec.a;
      b_values.(id).(s) <- evals.(id).Exec.b
    done
  done;
  { n_samples; a_values; b_values }

let n_samples t = t.n_samples

let operands t op ~sample = (t.a_values.(op).(sample), t.b_values.(op).(sample))

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let expected_input_hamming t op1 op2 =
  let total = ref 0 in
  for s = 0 to t.n_samples - 1 do
    total :=
      !total
      + popcount (t.a_values.(op1).(s) lxor t.a_values.(op2).(s))
      + popcount (t.b_values.(op1).(s) lxor t.b_values.(op2).(s))
  done;
  float_of_int !total /. float_of_int t.n_samples
