module Dfg = Rb_dfg.Dfg
module Schedule = Rb_sched.Schedule

type t = {
  schedule : Schedule.t;
  allocation : Allocation.t;
  fu_of_op : int array;
}

let make schedule allocation ~fu_of_op =
  let dfg = Schedule.dfg schedule in
  let n = Dfg.op_count dfg in
  if Array.length fu_of_op <> n then invalid_arg "Binding.make: array length";
  Array.iteri
    (fun id fu ->
      if fu < 0 || fu >= Allocation.total allocation then
        invalid_arg (Printf.sprintf "Binding.make: op %d bound to invalid FU %d" id fu);
      if Allocation.kind_of_fu allocation fu <> (Dfg.op dfg id).kind then
        invalid_arg (Printf.sprintf "Binding.make: op %d bound to wrong-kind FU %d" id fu))
    fu_of_op;
  (* No FU executes two operations in one cycle. *)
  let seen = Hashtbl.create 64 in
  Array.iteri
    (fun id fu ->
      let key = (Schedule.cycle_of schedule id, fu) in
      if Hashtbl.mem seen key then
        invalid_arg
          (Printf.sprintf "Binding.make: FU %d double-booked in cycle %d" fu (fst key));
      Hashtbl.add seen key ())
    fu_of_op;
  { schedule; allocation; fu_of_op = Array.copy fu_of_op }

let schedule t = t.schedule
let allocation t = t.allocation
let fu_of_op t id = t.fu_of_op.(id)
let fu_array t = Array.copy t.fu_of_op

let ops_on_fu t fu =
  let acc = ref [] in
  Array.iteri (fun id f -> if f = fu then acc := id :: !acc) t.fu_of_op;
  List.rev !acc

let ops_on_fu_in_time t fu =
  ops_on_fu t fu
  |> List.sort (fun a b ->
         Int.compare (Schedule.cycle_of t.schedule a) (Schedule.cycle_of t.schedule b))

let equal a b = a.fu_of_op = b.fu_of_op

let pp fmt t =
  Format.fprintf fmt "binding over %a:" Allocation.pp t.allocation;
  Array.iteri (fun id fu -> Format.fprintf fmt " %d->FU%d" id fu) t.fu_of_op
