module Word = Rb_dfg.Word

let fold_transitions binding f init =
  let allocation = Binding.allocation binding in
  let rec walk acc = function
    | a :: (b :: _ as rest) -> walk (f acc a b) rest
    | [ _ ] | [] -> acc
  in
  let rec over_fus acc fu =
    if fu >= Allocation.total allocation then acc
    else over_fus (walk acc (Binding.ops_on_fu_in_time binding fu)) (fu + 1)
  in
  over_fus init 0

let total_toggles binding profile =
  fold_transitions binding
    (fun acc prev next -> acc +. Profile.expected_input_hamming profile prev next)
    0.0

let rate binding profile =
  let transitions = fold_transitions binding (fun acc _ _ -> acc + 1) 0 in
  if transitions = 0 then 0.0
  else
    total_toggles binding profile
    /. float_of_int (transitions * 2 * Word.width)
