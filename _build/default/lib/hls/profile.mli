(** Operand-value profiles of a DFG over its typical trace.

    Power-aware binding [19] and the switching-rate overhead model need
    the actual operand words each operation sees per trace sample (the
    "knowledge of the IC's input space" of Sec. II-B). A profile is
    that table, computed once per (DFG, trace) pair. *)

type t

val build : Rb_sim.Trace.t -> t
(** Golden-simulate the whole trace and tabulate per-operation operand
    words. *)

val n_samples : t -> int

val operands : t -> Rb_dfg.Dfg.op_id -> sample:int -> int * int
(** The (lhs, rhs) words operation [op] consumed in [sample]. *)

val expected_input_hamming : t -> Rb_dfg.Dfg.op_id -> Rb_dfg.Dfg.op_id -> float
(** Mean Hamming distance between the operand pairs of two operations
    across samples — the expected bit toggles on an FU's input ports if
    the second operation executes right after the first on the same
    unit. Symmetric. *)
