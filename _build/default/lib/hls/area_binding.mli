(** Area-aware binding — the register-count-minimizing baseline [20].

    Huang et al.'s data-path allocation binds by bipartite weighted
    matching, rewarding assignments that let a value stay inside its
    producing FU's output register instead of occupying a shared
    register and a multiplexer port. Our weight for binding operation
    [op] to FU [fu] is the number of [op]'s operands whose producer is
    already bound to [fu] (0, 1 or 2), maximized per cycle — producer
    and consumer collapse onto the same unit, which is exactly what the
    {!Registers} cost model rewards. *)

val bind : Rb_sched.Schedule.t -> Allocation.t -> Binding.t
