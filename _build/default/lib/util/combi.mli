(** Combinatorial enumeration used by the co-design algorithms.

    The optimal binding-obfuscation co-design of Sec. V enumerates all
    size-[k] subsets of the candidate locked-input list for each locked
    FU, and then the cartesian product of those choices across FUs. *)

val choose : int -> int -> int
(** [choose n k] is the binomial coefficient C(n, k). Returns 0 when
    [k < 0] or [k > n]. Uses a multiplicative scheme that stays exact
    for every value used in this library (n <= 62). *)

val k_subsets : 'a array -> int -> 'a array list
(** [k_subsets arr k] lists every size-[k] subset of [arr], each in the
    original element order, in lexicographic index order. C(n, k)
    subsets are produced. *)

val fold_k_subsets : 'a array -> int -> init:'b -> f:('b -> 'a array -> 'b) -> 'b
(** Allocation-light fold over the same enumeration as {!k_subsets};
    the subset array passed to [f] is reused between calls and must not
    be retained. *)

val cartesian_product : 'a list list -> 'a list list
(** [cartesian_product [l1; l2; ...]] is every way of picking one
    element from each list, in order. The product of an empty list of
    lists is [[[]]]. *)

val fold_cartesian : 'a array array -> init:'b -> f:('b -> 'a array -> 'b) -> 'b
(** [fold_cartesian choices ~init ~f] folds [f] over every tuple of the
    product [choices.(0) x choices.(1) x ...] without materializing the
    product. The tuple array passed to [f] is reused and must not be
    retained. *)

val product_size : int list -> int
(** Product of the list, saturating at [max_int] instead of wrapping so
    enumeration-size guards stay sound. *)
