(** Plain-text rendering of experiment tables and log-scale bars.

    The benchmark harness regenerates the paper's figures as text: each
    figure becomes a table of series values plus an ASCII log-scale bar
    chart so the "shape" (who wins, by what factor) is visible in a
    terminal. *)

type t
(** A table under construction. *)

val create : title:string -> columns:string list -> t
(** [create ~title ~columns] starts a table whose first column is a row
    label followed by [columns] data headers. *)

val add_row : t -> label:string -> values:float list -> unit
(** Append a data row; the value count must match the column count. *)

val add_text_row : t -> label:string -> cells:string list -> unit
(** Append a row of preformatted cells (e.g. "12.3x" or "capped"). *)

val render : t -> string
(** Render with aligned columns, a title rule, and two decimal places
    for float cells. *)

val log_bar : ?width:int -> float -> string
(** [log_bar v] is an ASCII bar whose length is proportional to
    [log10 (max v 1.0)], scaled so 1000x fills [width] (default 30).
    Mirrors the log-scale y-axis of the paper's Figs. 4 and 5. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
