lib/util/rng.mli:
