lib/util/combi.mli:
