lib/util/stats.mli:
