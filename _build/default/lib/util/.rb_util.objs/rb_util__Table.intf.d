lib/util/table.mli:
