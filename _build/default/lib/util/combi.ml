let choose n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 0 to k - 1 do
      acc := !acc * (n - i) / (i + 1)
    done;
    !acc
  end

(* Enumerate index vectors 0 <= c.(0) < c.(1) < ... < c.(k-1) < n in
   lexicographic order; [advance] finds the rightmost index that can
   still move and resets everything after it. *)
let fold_k_subsets arr k ~init ~f =
  let n = Array.length arr in
  if k < 0 || k > n then init
  else if k = 0 then f init [||]
  else begin
    let idx = Array.init k (fun i -> i) in
    let subset = Array.map (fun i -> arr.(i)) idx in
    let fill_from pos =
      for i = pos to k - 1 do
        subset.(i) <- arr.(idx.(i))
      done
    in
    let rec advance pos =
      if pos < 0 then None
      else if idx.(pos) < n - (k - pos) then begin
        idx.(pos) <- idx.(pos) + 1;
        for i = pos + 1 to k - 1 do
          idx.(i) <- idx.(i - 1) + 1
        done;
        Some pos
      end
      else advance (pos - 1)
    in
    let rec loop acc =
      let acc = f acc subset in
      match advance (k - 1) with
      | None -> acc
      | Some pos ->
        fill_from pos;
        loop acc
    in
    loop init
  end

let k_subsets arr k =
  let subsets =
    fold_k_subsets arr k ~init:[] ~f:(fun acc subset -> Array.copy subset :: acc)
  in
  List.rev subsets

let cartesian_product lists =
  let rec go = function
    | [] -> [ [] ]
    | choices :: rest ->
      let tails = go rest in
      List.concat_map (fun c -> List.map (fun tl -> c :: tl) tails) choices
  in
  go lists

let fold_cartesian choices ~init ~f =
  let n = Array.length choices in
  if Array.exists (fun c -> Array.length c = 0) choices then init
  else if n = 0 then f init [||]
  else begin
    let idx = Array.make n 0 in
    let tuple = Array.map (fun c -> c.(0)) choices in
    let rec advance pos =
      if pos < 0 then false
      else if idx.(pos) + 1 < Array.length choices.(pos) then begin
        idx.(pos) <- idx.(pos) + 1;
        tuple.(pos) <- choices.(pos).(idx.(pos));
        true
      end
      else begin
        idx.(pos) <- 0;
        tuple.(pos) <- choices.(pos).(0);
        advance (pos - 1)
      end
    in
    let rec run acc =
      let acc = f acc tuple in
      if advance (n - 1) then run acc else acc
    in
    run init
  end

let product_size sizes =
  let mul a b =
    if a = 0 || b = 0 then 0
    else if a > max_int / b then max_int
    else a * b
  in
  List.fold_left mul 1 sizes
