(** Deterministic pseudo-random number generation.

    Every stochastic component of the library draws from an explicit
    generator state so that experiments are reproducible bit-for-bit.
    The implementation is splitmix64, which is fast, has a 64-bit state,
    and passes BigCrush; it is more than adequate for workload
    synthesis. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator seeded with [seed]. Equal
    seeds yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. Used to give
    each benchmark its own stream derived from one master seed. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> mean:float -> stdev:float -> float
(** Box-Muller normal deviate. *)

val pick : t -> 'a array -> 'a
(** Uniformly chosen element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
