(** Small statistics helpers for aggregating experiment results. *)

val mean : float list -> float
(** Arithmetic mean; 0.0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean of strictly positive values; 0.0 on the empty list.
    Raises [Invalid_argument] if any value is not positive. The paper's
    "increase in application errors" plots are log-scale ratios, so the
    geometric mean is the faithful aggregate; we also report arithmetic
    means, which is what the headline 26x/99x figures use. *)

val stdev : float list -> float
(** Sample standard deviation; 0.0 for fewer than two values. *)

val median : float list -> float
(** Median; 0.0 on the empty list. *)

val minimum : float list -> float
(** Smallest value; raises [Invalid_argument] on the empty list. *)

val maximum : float list -> float
(** Largest value; raises [Invalid_argument] on the empty list. *)

val ratio : num:float -> den:float -> float
(** [ratio ~num ~den] is [num /. den], treating a zero denominator as a
    ratio of 1.0 when the numerator is also zero and infinity
    otherwise. Used for error-increase factors where a baseline binding
    may inject zero errors. *)
