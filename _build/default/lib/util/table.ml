type row = { label : string; cells : string list }

type t = {
  title : string;
  columns : string list;
  mutable rows : row list; (* reverse order *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_text_row t ~label ~cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_text_row: cell count mismatch";
  t.rows <- { label; cells } :: t.rows

let add_row t ~label ~values =
  add_text_row t ~label ~cells:(List.map (Printf.sprintf "%.2f") values)

let render t =
  let rows = List.rev t.rows in
  let header = "" :: t.columns in
  let all_rows = header :: List.map (fun r -> r.label :: r.cells) rows in
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  let note_widths cells =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) cells
  in
  List.iter note_widths all_rows;
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let total_width = Array.fold_left (fun acc w -> acc + w + 2) 0 widths in
  Buffer.add_string buf (String.make (max (String.length t.title) total_width) '-');
  Buffer.add_char buf '\n';
  let emit_row cells =
    List.iteri
      (fun i cell ->
        let pad = widths.(i) - String.length cell in
        if i = 0 then begin
          Buffer.add_string buf cell;
          Buffer.add_string buf (String.make pad ' ')
        end
        else begin
          Buffer.add_string buf (String.make pad ' ');
          Buffer.add_string buf cell
        end;
        if i < ncols - 1 then Buffer.add_string buf "  ")
      cells;
    Buffer.add_char buf '\n'
  in
  List.iter emit_row all_rows;
  Buffer.contents buf

let log_bar ?(width = 30) v =
  let v = max v 1.0 in
  let frac = log10 v /. 3.0 in
  let n = int_of_float (Float.round (frac *. float_of_int width)) in
  let n = max 0 (min width n) in
  String.make n '#'

let print t = print_string (render t); print_newline ()
