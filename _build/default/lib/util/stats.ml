let mean = function
  | [] -> 0.0
  | values -> List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)

let geomean = function
  | [] -> 0.0
  | values ->
    let log_sum =
      List.fold_left
        (fun acc v ->
          if v <= 0.0 then invalid_arg "Stats.geomean: non-positive value"
          else acc +. log v)
        0.0 values
    in
    exp (log_sum /. float_of_int (List.length values))

let stdev values =
  match values with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean values in
    let n = float_of_int (List.length values) in
    let ss = List.fold_left (fun acc v -> acc +. ((v -. m) *. (v -. m))) 0.0 values in
    sqrt (ss /. (n -. 1.0))

let median = function
  | [] -> 0.0
  | values ->
    let sorted = List.sort compare values in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | v :: rest -> List.fold_left min v rest

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | v :: rest -> List.fold_left max v rest

let ratio ~num ~den =
  if den = 0.0 then if num = 0.0 then 1.0 else infinity else num /. den
