lib/netlist/circuits.mli: Netlist Rb_dfg
