lib/netlist/lock.ml: Array Circuits Fun Hashtbl Int List Netlist Printf Rb_util
