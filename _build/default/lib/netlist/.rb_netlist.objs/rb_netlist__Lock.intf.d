lib/netlist/lock.mli: Netlist Rb_util
