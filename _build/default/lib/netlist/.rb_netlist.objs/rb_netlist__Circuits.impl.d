lib/netlist/circuits.ml: Array Netlist Rb_dfg
