lib/netlist/verilog_gates.mli: Netlist
