lib/netlist/verilog_gates.ml: Array Buffer List Netlist Printf String
