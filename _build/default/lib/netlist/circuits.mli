(** Structural generators for the arithmetic units the paper locks.

    The benchmarks bind adders and multipliers (Sec. VI); these
    generators produce their gate-level implementations, both as
    standalone netlists (for SAT-attack experiments) and as bit-vector
    combinators over a {!Netlist.Builder} (so locking constructions can
    embed them). *)

type bits = Netlist.net array
(** A little-endian bit vector of nets. *)

val ripple_add : Netlist.Builder.t -> bits -> bits -> bits
(** Wrapping ripple-carry sum of two equal-width vectors. *)

val array_multiply : Netlist.Builder.t -> bits -> bits -> bits
(** Low [width] bits of the product of two equal-width vectors
    (carry-save array of AND partial products + ripple rows). *)

val equals_const : Netlist.Builder.t -> bits -> int -> Netlist.net
(** Net that is true iff the vector equals a constant (LSB first). *)

val equals_bits : Netlist.Builder.t -> bits -> bits -> Netlist.net
(** Net that is true iff two equal-width vectors match. *)

val adder : width:int -> Netlist.t
(** Standalone unlocked adder: inputs [a0..a(w-1) b0..b(w-1)], outputs
    the wrapping sum. *)

val multiplier : width:int -> Netlist.t
(** Standalone unlocked multiplier (low [width] product bits). *)

val of_kind : Rb_dfg.Dfg.op_kind -> width:int -> Netlist.t
(** The unit implementing a DFG operation kind. *)
