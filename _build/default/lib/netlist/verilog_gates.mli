(** Structural Verilog emission of gate-level netlists.

    Renders a (possibly locked) combinational netlist as a flat
    gate-level Verilog module — one wire per net, one primitive
    expression per gate, key inputs as an explicit port vector — so a
    locked FU produced by {!Lock} can be inspected or synthesized by
    external tools. Emission is deterministic. *)

val emit : ?module_name:string -> Netlist.t -> string
(** Render the netlist ([module_name] defaults to ["netlist"]).
    Ports: [in_i] per primary input, a [key] vector when the circuit
    has key inputs, [out_i] per output. *)
