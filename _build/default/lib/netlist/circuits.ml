module B = Netlist.Builder

type bits = Netlist.net array

let check_same_width a b name =
  if Array.length a <> Array.length b then invalid_arg name;
  if Array.length a = 0 then invalid_arg name

(* Full adder chain; the final carry is dropped (wrapping semantics,
   matching Word.add). *)
let ripple_add b x y =
  check_same_width x y "Circuits.ripple_add";
  let width = Array.length x in
  let sum = Array.make width 0 in
  let carry = ref (B.const b false) in
  for i = 0 to width - 1 do
    let axb = B.xor_ b x.(i) y.(i) in
    sum.(i) <- B.xor_ b axb !carry;
    (* The last carry-out is dropped (wrapping semantics); emitting its
       logic would create dead gates, which key-gate insertion must not
       land on. *)
    if i < width - 1 then begin
      let gen = B.and_ b x.(i) y.(i) in
      let prop = B.and_ b axb !carry in
      carry := B.or_ b gen prop
    end
  done;
  sum

let array_multiply b x y =
  check_same_width x y "Circuits.array_multiply";
  let width = Array.length x in
  let zero = B.const b false in
  let row j =
    (* Partial product x * y_j, shifted left by j, truncated to width. *)
    Array.init width (fun i -> if i < j then zero else B.and_ b x.(i - j) y.(j))
  in
  let acc = ref (row 0) in
  for j = 1 to width - 1 do
    acc := ripple_add b !acc (row j)
  done;
  !acc

let equals_const b x c =
  let matches =
    Array.to_list
      (Array.mapi (fun i net -> if (c lsr i) land 1 = 1 then net else B.not_ b net) x)
  in
  B.and_reduce b matches

let equals_bits b x y =
  check_same_width x y "Circuits.equals_bits";
  let matches = Array.to_list (Array.map2 (fun a c -> B.xnor_ b a c) x y) in
  B.and_reduce b matches

let binary_unit ~width f =
  if width <= 0 then invalid_arg "Circuits: width must be positive";
  let b = B.create ~n_inputs:(2 * width) ~n_keys:0 in
  let x = Array.init width (fun i -> B.input b i) in
  let y = Array.init width (fun i -> B.input b (width + i)) in
  let out = f b x y in
  Array.iter (fun n -> B.output b n) out;
  B.finish b

let adder ~width = binary_unit ~width ripple_add
let multiplier ~width = binary_unit ~width array_multiply

let of_kind kind ~width =
  match (kind : Rb_dfg.Dfg.op_kind) with
  | Add -> adder ~width
  | Mul -> multiplier ~width
