type binop = Plus | Minus | Times

type ast = Var of string | Int of int | Bin of binop * ast * ast

type stmt =
  | Kernel of string
  | Input of string list
  | Assign of string * ast
  | Output of string

(* ------------------------------------------------------------- lexing *)

type token = Ident of string | Num of int | Op of char | Eq | Comma | Lpar | Rpar

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let tokenize line =
  let n = String.length line in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match line.[i] with
      | ' ' | '\t' | '\r' -> go (i + 1) acc
      | '#' -> Ok (List.rev acc)
      | '+' -> go (i + 1) (Op '+' :: acc)
      | '-' -> go (i + 1) (Op '-' :: acc)
      | '*' -> go (i + 1) (Op '*' :: acc)
      | '=' -> go (i + 1) (Eq :: acc)
      | ',' -> go (i + 1) (Comma :: acc)
      | '(' -> go (i + 1) (Lpar :: acc)
      | ')' -> go (i + 1) (Rpar :: acc)
      | '0' .. '9' ->
        let j = ref i in
        while !j < n && line.[!j] >= '0' && line.[!j] <= '9' do
          incr j
        done;
        go !j (Num (int_of_string (String.sub line i (!j - i))) :: acc)
      | c when is_ident_char c ->
        let j = ref i in
        while !j < n && is_ident_char line.[!j] do
          incr j
        done;
        go !j (Ident (String.sub line i (!j - i)) :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C" c)
  in
  go 0 []

(* ------------------------------------------------------------ parsing *)

(* expr := term (('+'|'-') term)* ; term := factor ('*' factor)* *)
let parse_expr tokens =
  let rec expr ts =
    Result.bind (term ts) (fun (lhs, rest) -> expr_tail lhs rest)
  and expr_tail lhs = function
    | Op '+' :: rest ->
      Result.bind (term rest) (fun (rhs, rest) -> expr_tail (Bin (Plus, lhs, rhs)) rest)
    | Op '-' :: rest ->
      Result.bind (term rest) (fun (rhs, rest) -> expr_tail (Bin (Minus, lhs, rhs)) rest)
    | rest -> Ok (lhs, rest)
  and term ts =
    Result.bind (factor ts) (fun (lhs, rest) -> term_tail lhs rest)
  and term_tail lhs = function
    | Op '*' :: rest ->
      Result.bind (factor rest) (fun (rhs, rest) -> term_tail (Bin (Times, lhs, rhs)) rest)
    | rest -> Ok (lhs, rest)
  and factor = function
    | Ident name :: rest -> Ok (Var name, rest)
    | Num v :: rest -> Ok (Int v, rest)
    | Lpar :: rest ->
      Result.bind (expr rest) (fun (e, rest) ->
          match rest with
          | Rpar :: rest -> Ok (e, rest)
          | _ -> Error "expected ')'")
    | _ -> Error "expected identifier, number or '('"
  in
  Result.bind (expr tokens) (fun (e, rest) ->
      match rest with [] -> Ok e | _ -> Error "trailing tokens after expression")

let parse_line line =
  Result.bind (tokenize line) (fun tokens ->
      match tokens with
      | [] -> Ok None
      | [ Ident "kernel"; Ident name ] -> Ok (Some (Kernel name))
      | Ident "input" :: rest ->
        let rec names acc = function
          | [ Ident n ] -> Ok (List.rev (n :: acc))
          | Ident n :: Comma :: rest -> names (n :: acc) rest
          | _ -> Error "expected comma-separated input names"
        in
        Result.map (fun ns -> Some (Input ns)) (names [] rest)
      | [ Ident "output"; Ident name ] -> Ok (Some (Output name))
      | Ident name :: Eq :: rest ->
        Result.map (fun e -> Some (Assign (name, e))) (parse_expr rest)
      | _ -> Error "expected 'input', 'output', 'kernel' or an assignment")

let keywords = [ "input"; "output"; "kernel" ]

let parse program =
  let lines = String.split_on_char '\n' program in
  let rec go line_no acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      (match parse_line line with
       | Ok None -> go (line_no + 1) acc rest
       | Ok (Some stmt) -> go (line_no + 1) ((line_no, stmt) :: acc) rest
       | Error e -> Error (Printf.sprintf "line %d: %s" line_no e))
  in
  go 1 [] lines

(* ---------------------------------------------------------- compiling *)

(* Compiling and interpreting share a traversal parameterized by the
   value domain: operands under the builder, ints for the oracle. *)
let check_program stmts =
  let defined = Hashtbl.create 16 in
  let rec check = function
    | [] -> Ok ()
    | (line_no, stmt) :: rest ->
      let err fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" line_no m)) fmt in
      let declare name what =
        if List.mem name keywords then err "%s name %S is reserved" what name
        else if Hashtbl.mem defined name then err "%S defined twice" name
        else begin
          Hashtbl.replace defined name ();
          Ok ()
        end
      in
      let rec uses = function
        | Var name ->
          if Hashtbl.mem defined name then Ok () else err "undefined name %S" name
        | Int v -> if v >= 0 then Ok () else err "negative literal"
        | Bin (_, a, b) -> Result.bind (uses a) (fun () -> uses b)
      in
      let step =
        match stmt with
        | Kernel _ -> Ok ()
        | Input names ->
          List.fold_left
            (fun acc n -> Result.bind acc (fun () -> declare n "input"))
            (Ok ()) names
        | Assign (name, e) ->
          Result.bind (uses e) (fun () -> declare name "value")
        | Output name ->
          if Hashtbl.mem defined name then Ok () else err "undefined output %S" name
      in
      Result.bind step (fun () -> check rest)
  in
  check stmts

let compile program =
  Result.bind (parse program) (fun stmts ->
      Result.bind (check_program stmts) (fun () ->
          let name =
            List.fold_left
              (fun acc (_, s) -> match s with Kernel n -> n | Input _ | Assign _ | Output _ -> acc)
              "expr" stmts
          in
          let b = Dfg.Builder.create name in
          (* Build lazily from the declared outputs: assignments whose
             values are never used emit no operations (dead-code
             elimination), so the DFG's outputs are exactly the
             declared ones. *)
          let asts : (string, ast) Hashtbl.t = Hashtbl.create 16 in
          let env : (string, Dfg.operand) Hashtbl.t = Hashtbl.create 16 in
          (* CSE memo keyed on (kind, canonically-ordered operands). *)
          let memo : (Dfg.op_kind * Dfg.operand * Dfg.operand, Dfg.operand) Hashtbl.t =
            Hashtbl.create 32
          in
          let emit kind x y =
            match (x, y) with
            | Dfg.Const a, Dfg.Const b -> Dfg.Builder.const (Dfg.eval_kind kind a b)
            | _ ->
              let x, y = if compare x y <= 0 then (x, y) else (y, x) in
              (match Hashtbl.find_opt memo (kind, x, y) with
               | Some op -> op
               | None ->
                 let op =
                   match kind with
                   | Dfg.Add -> Dfg.Builder.add b x y
                   | Dfg.Mul -> Dfg.Builder.mul b x y
                 in
                 Hashtbl.replace memo (kind, x, y) op;
                 op)
          in
          let rec build = function
            | Var v ->
              (match Hashtbl.find_opt env v with
               | Some operand -> operand
               | None ->
                 let operand = build (Hashtbl.find asts v) in
                 Hashtbl.replace env v operand;
                 operand)
            | Int v -> Dfg.Builder.const v
            | Bin (Plus, a, c) -> emit Dfg.Add (build a) (build c)
            | Bin (Times, a, c) -> emit Dfg.Mul (build a) (build c)
            | Bin (Minus, a, c) ->
              (* a - c == a + c*255 in 8-bit two's complement *)
              emit Dfg.Add (build a) (emit Dfg.Mul (build c) (Dfg.Builder.const 255))
          in
          (* Pass 1: declare inputs in order, record assignment ASTs. *)
          List.iter
            (fun (_, stmt) ->
              match stmt with
              | Kernel _ | Output _ -> ()
              | Input names ->
                List.iter (fun n -> Hashtbl.replace env n (Dfg.Builder.input b n)) names
              | Assign (name, e) -> Hashtbl.replace asts name e)
            stmts;
          (* Pass 2: build only what the outputs reach. *)
          let rec run outputs = function
            | [] ->
              if outputs = 0 then Error "program has no outputs"
              else Ok (Dfg.Builder.finish b)
            | (line_no, stmt) :: rest ->
              (match stmt with
               | Kernel _ | Input _ | Assign _ -> run outputs rest
               | Output name ->
                 (match build (Var name) with
                  | Dfg.Op _ as op ->
                    Dfg.Builder.output b op;
                    run (outputs + 1) rest
                  | Dfg.Input _ | Dfg.Const _ ->
                    Error
                      (Printf.sprintf
                         "line %d: output %S folds to a wire/constant; nothing to compute"
                         line_no name)))
          in
          run 0 stmts))

let eval_reference program ~inputs =
  Result.bind (parse program) (fun stmts ->
      Result.bind (check_program stmts) (fun () ->
          let env : (string, int) Hashtbl.t = Hashtbl.create 16 in
          let rec eval = function
            | Var v -> Hashtbl.find env v
            | Int v -> Word.clamp v
            | Bin (Plus, a, b) -> Word.add (eval a) (eval b)
            | Bin (Times, a, b) -> Word.mul (eval a) (eval b)
            | Bin (Minus, a, b) -> Word.add (eval a) (Word.mul (eval b) 255)
          in
          let outputs = ref [] in
          List.iter
            (fun (_, stmt) ->
              match stmt with
              | Kernel _ -> ()
              | Input names ->
                List.iter (fun n -> Hashtbl.replace env n (Word.clamp (inputs n))) names
              | Assign (name, e) -> Hashtbl.replace env name (eval e)
              | Output name -> outputs := (name, Hashtbl.find env name) :: !outputs)
            stmts;
          Ok (List.rev !outputs)))
