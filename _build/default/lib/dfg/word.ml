let width = 8
let mask = (1 lsl width) - 1
let count = 1 lsl width
let clamp x = x land mask
let add a b = (clamp a + clamp b) land mask
let mul a b = (clamp a * clamp b) land mask
