(** Input minterms of a functional unit.

    A locked FU corrupts its output for a fixed set of {e input
    minterms} — full assignments of its input operands (Sec. II-A).
    For the 2-operand word-level FUs modelled here, a minterm is the
    ordered operand pair [(a, b)], packed into one integer so it can be
    hashed and compared cheaply. *)

type t = private int
(** Packed operand pair. Total order and structural equality coincide
    with the packed integer. *)

val pack : int -> int -> t
(** [pack a b] packs operands (clamped to {!Word.width} bits). *)

val unpack : t -> int * int
(** Inverse of {!pack}. *)

val of_int : int -> t
(** Cast from an already-packed integer, clamped to the valid range.
    Useful for enumerating the whole minterm space. *)

val to_int : t -> int

val space_size : int
(** Number of distinct minterms for one FU, [2^(2*Word.width)]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as ["(a,b)"]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
