(** Data-flow graphs: the HLS intermediate representation.

    A DFG is the output of HLS scheduling's front end (Sec. II-B):
    nodes are single-cycle arithmetic operations, edges are data
    dependencies. Operations are created through {!Builder} in
    topological order, so every graph is acyclic by construction.

    Operation identity is a dense integer [op_id]; all per-operation
    tables in the library (schedules, bindings, K-matrix columns) are
    arrays indexed by it. *)

type op_kind = Add | Mul

type op_id = int

(** Source of an operand value. *)
type operand =
  | Input of string  (** a named primary input, one word per trace sample *)
  | Const of int  (** a compile-time constant word *)
  | Op of op_id  (** the result of another operation *)

type operation = {
  id : op_id;
  kind : op_kind;
  lhs : operand;
  rhs : operand;
  label : string;  (** human-readable name for reports and DOT dumps *)
}

type t

val name : t -> string
val ops : t -> operation array
val op : t -> op_id -> operation
val op_count : t -> int
val inputs : t -> string list
(** Primary input names, in first-use order. *)

val outputs : t -> op_id list
(** Operations whose results are the kernel's primary outputs. *)

val ops_of_kind : t -> op_kind -> op_id list
(** Ids of all operations of one kind, ascending. The paper binds each
    operation/resource type separately (Sec. IV-B); this is the
    partition it works on. *)

val predecessors : t -> op_id -> op_id list
(** Operation ids feeding an operation (0, 1 or 2 entries). *)

val successors : t -> op_id -> op_id list
(** Operation ids consuming an operation's result, ascending. *)

val kind_label : op_kind -> string
(** ["add"] or ["mul"]. *)

val eval_kind : op_kind -> int -> int -> int
(** Word-level semantics of an operation kind. *)

val validate : t -> (unit, string) result
(** Structural checks: dense ids, operand references point backwards
    (acyclicity), outputs exist, at least one operation. The builder
    guarantees these; [validate] guards hand-constructed graphs and is
    exercised by the test suite. *)

val critical_path_length : t -> int
(** Longest dependency chain, in operations. A lower bound on any
    schedule's cycle count. *)

val to_dot : t -> string
(** Graphviz rendering (operations as nodes, dependencies as edges). *)

val pp : Format.formatter -> t -> unit
(** One-line summary: name, op counts per kind, input count. *)

(** Incremental, topologically-ordered construction. *)
module Builder : sig
  type dfg := t
  type t

  val create : string -> t
  (** [create name] starts an empty graph. *)

  val input : t -> string -> operand
  (** Declare (or re-reference) a primary input by name. *)

  val const : int -> operand
  (** A constant word operand. *)

  val add : ?label:string -> t -> operand -> operand -> operand
  (** Append an addition; the result is an [Op] operand usable by later
      operations. Raises [Invalid_argument] if an [Op] operand does not
      exist yet. *)

  val mul : ?label:string -> t -> operand -> operand -> operand
  (** Append a multiplication; see {!add}. *)

  val output : t -> operand -> unit
  (** Mark an operation result as a primary output. Raises
      [Invalid_argument] on [Input]/[Const] operands. *)

  val finish : t -> dfg
  (** Freeze the graph. Every operation with no consumer and no output
      mark is implicitly added to the outputs (dead code is meaningful
      silicon in a datapath). *)
end
