type t = int

let pack a b = (Word.clamp a lsl Word.width) lor Word.clamp b
let unpack m = (m lsr Word.width, m land Word.mask)
let space_size = 1 lsl (2 * Word.width)
let of_int i = i land (space_size - 1)
let to_int m = m
let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash

let pp fmt m =
  let a, b = unpack m in
  Format.fprintf fmt "(%d,%d)" a b

module Set = Set.Make (Int)
module Map = Map.Make (Int)
