lib/dfg/dfg.mli: Format
