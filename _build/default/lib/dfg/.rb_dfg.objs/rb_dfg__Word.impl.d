lib/dfg/word.ml:
