lib/dfg/dfg_text.mli: Dfg
