lib/dfg/dfg.ml: Array Buffer Format Int List Option Printf Word
