lib/dfg/expr.ml: Dfg Hashtbl List Printf Result String Word
