lib/dfg/minterm.ml: Format Hashtbl Int Map Set Word
