lib/dfg/dfg_text.ml: Array Buffer Dfg List Printf String
