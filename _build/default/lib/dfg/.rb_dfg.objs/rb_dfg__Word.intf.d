lib/dfg/word.mli:
