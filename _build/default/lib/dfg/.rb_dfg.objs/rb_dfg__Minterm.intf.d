lib/dfg/minterm.mli: Format Map Set
