lib/dfg/expr.mli: Dfg
