(** Word-level arithmetic of the modelled functional units.

    All FU operations in this reproduction are 2-operand, [width]-bit,
    wrapping arithmetic. 8-bit words keep the per-FU input-minterm
    space at 2^16, which is large enough for the locking trade-off of
    paper Eqn. 1 to bite and small enough for exhaustive ground truth
    in tests. *)

val width : int
(** Bits per operand (8). *)

val mask : int
(** [2^width - 1]. *)

val count : int
(** Number of representable words, [2^width]. *)

val clamp : int -> int
(** Truncate an integer to the word range. *)

val add : int -> int -> int
(** Wrapping addition of two clamped words. *)

val mul : int -> int -> int
(** Wrapping multiplication of two clamped words. *)
