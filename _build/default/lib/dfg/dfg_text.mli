(** A line-oriented textual DFG exchange format.

    Lets users feed their own kernels to the binding algorithms without
    writing OCaml (the CLI consumes it), and gives the test suite a
    round-trippable serialization. Grammar (one item per line; lines
    whose first non-blank character is ['#'] are comments):

    {v
      dfg NAME
      input  NAME            declare a primary input
      op ID KIND LHS RHS     KIND = add | mul
                             operand = input name | #N (constant) | %ID
      output %ID             mark an operation result as a DFG output
    v}

    Operation ids must be dense and ascending (the builder's
    topological discipline). *)

val to_string : Dfg.t -> string
(** Serialize; [of_string] of the result reproduces an equal graph. *)

val of_string : string -> (Dfg.t, string) result
(** Parse; the error carries a line number and reason. *)
