let to_string dfg =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "dfg %s\n" (Dfg.name dfg));
  List.iter (fun i -> Buffer.add_string buf (Printf.sprintf "input %s\n" i)) (Dfg.inputs dfg);
  let operand_str = function
    | Dfg.Input name -> name
    | Dfg.Const c -> Printf.sprintf "#%d" c
    | Dfg.Op id -> Printf.sprintf "%%%d" id
  in
  Array.iter
    (fun (o : Dfg.operation) ->
      Buffer.add_string buf
        (Printf.sprintf "op %d %s %s %s\n" o.Dfg.id
           (Dfg.kind_label o.Dfg.kind)
           (operand_str o.Dfg.lhs) (operand_str o.Dfg.rhs)))
    (Dfg.ops dfg);
  List.iter
    (fun id -> Buffer.add_string buf (Printf.sprintf "output %%%d\n" id))
    (Dfg.outputs dfg);
  Buffer.contents buf

type parse_state = {
  mutable pname : string option;
  mutable inputs : string list; (* reverse *)
  mutable ops : (int * Dfg.op_kind * string * string) list; (* reverse *)
  mutable outputs : int list; (* reverse *)
}

let of_string text =
  let state = { pname = None; inputs = []; ops = []; outputs = [] } in
  let error line_no reason = Error (Printf.sprintf "line %d: %s" line_no reason) in
  let parse_line line_no line =
    let trimmed = String.trim line in
    (* full-line comments only: '#' would clash with constant operands *)
    let trimmed = if String.length trimmed > 0 && trimmed.[0] = '#' then "" else trimmed in
    let words = String.split_on_char ' ' trimmed |> List.filter (fun w -> w <> "") in
    match words with
    | [] -> Ok ()
    | [ "dfg"; name ] ->
      if state.pname <> None then error line_no "duplicate dfg header"
      else begin
        state.pname <- Some name;
        Ok ()
      end
    | [ "input"; name ] ->
      state.inputs <- name :: state.inputs;
      Ok ()
    | [ "op"; id; kind; lhs; rhs ] ->
      (match (int_of_string_opt id, kind) with
       | Some id, "add" ->
         state.ops <- (id, Dfg.Add, lhs, rhs) :: state.ops;
         Ok ()
       | Some id, "mul" ->
         state.ops <- (id, Dfg.Mul, lhs, rhs) :: state.ops;
         Ok ()
       | Some _, other -> error line_no (Printf.sprintf "unknown kind %S" other)
       | None, _ -> error line_no "bad op id")
    | [ "output"; operand ] ->
      if String.length operand > 1 && operand.[0] = '%' then
        match int_of_string_opt (String.sub operand 1 (String.length operand - 1)) with
        | Some id ->
          state.outputs <- id :: state.outputs;
          Ok ()
        | None -> error line_no "bad output id"
      else error line_no "output must reference an op (%id)"
    | _ -> error line_no (Printf.sprintf "unparsable line %S" (String.trim line))
  in
  let lines = String.split_on_char '\n' text in
  let rec parse_all line_no = function
    | [] -> Ok ()
    | line :: rest ->
      (match parse_line line_no line with
       | Ok () -> parse_all (line_no + 1) rest
       | Error _ as e -> e)
  in
  let build () =
    match state.pname with
    | None -> Error "missing 'dfg NAME' header"
    | Some name ->
      let b = Dfg.Builder.create name in
      let declared_inputs = List.rev state.inputs in
      List.iter (fun i -> ignore (Dfg.Builder.input b i)) declared_inputs;
      let ops = List.rev state.ops in
      let operand_of spec =
        if String.length spec = 0 then Error "empty operand"
        else if spec.[0] = '#' then
          match int_of_string_opt (String.sub spec 1 (String.length spec - 1)) with
          | Some c -> Ok (Dfg.Builder.const c)
          | None -> Error (Printf.sprintf "bad constant %S" spec)
        else if spec.[0] = '%' then
          match int_of_string_opt (String.sub spec 1 (String.length spec - 1)) with
          | Some id -> Ok (Dfg.Op id)
          | None -> Error (Printf.sprintf "bad op reference %S" spec)
        else if List.mem spec declared_inputs then Ok (Dfg.Input spec)
        else Error (Printf.sprintf "undeclared input %S" spec)
      in
      let rec add_ops expected = function
        | [] -> Ok ()
        | (id, kind, lhs, rhs) :: rest ->
          if id <> expected then
            Error (Printf.sprintf "op ids must be dense/ascending; got %d, wanted %d" id expected)
          else
            (match (operand_of lhs, operand_of rhs) with
             | Ok l, Ok r ->
               (match
                  (match kind with
                   | Dfg.Add -> Dfg.Builder.add b l r
                   | Dfg.Mul -> Dfg.Builder.mul b l r)
                with
                | (_ : Dfg.operand) -> add_ops (expected + 1) rest
                | exception Invalid_argument msg -> Error msg)
             | Error e, _ | _, Error e -> Error e)
      in
      (match add_ops 0 ops with
       | Error _ as e -> e
       | Ok () ->
         let rec mark = function
           | [] -> Ok ()
           | id :: rest ->
             (match Dfg.Builder.output b (Dfg.Op id) with
              | () -> mark rest
              | exception Invalid_argument msg -> Error msg)
         in
         (match mark (List.rev state.outputs) with
          | Error _ as e -> e
          | Ok () ->
            (match Dfg.Builder.finish b with
             | dfg -> Ok dfg
             | exception Invalid_argument msg -> Error msg)))
  in
  match parse_all 1 lines with
  | Error _ as e -> e
  | Ok () -> build ()
