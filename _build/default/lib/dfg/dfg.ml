type op_kind = Add | Mul

type op_id = int

type operand = Input of string | Const of int | Op of op_id

type operation = {
  id : op_id;
  kind : op_kind;
  lhs : operand;
  rhs : operand;
  label : string;
}

type t = {
  name : string;
  ops : operation array;
  inputs : string list;
  outputs : op_id list;
  successors : op_id list array;
}

let name t = t.name
let ops t = t.ops
let op t id = t.ops.(id)
let op_count t = Array.length t.ops
let inputs t = t.inputs
let outputs t = t.outputs

let kind_label = function Add -> "add" | Mul -> "mul"

let eval_kind = function Add -> Word.add | Mul -> Word.mul

let ops_of_kind t kind =
  Array.to_list t.ops
  |> List.filter (fun o -> o.kind = kind)
  |> List.map (fun o -> o.id)

let operand_deps o =
  let dep = function Op id -> [ id ] | Input _ | Const _ -> [] in
  dep o.lhs @ dep o.rhs

let predecessors t id = operand_deps t.ops.(id)

let successors t id = t.successors.(id)

let validate t =
  let n = Array.length t.ops in
  let check_operand owner = function
    | Op id when id < 0 || id >= n -> Error (Printf.sprintf "op %d: dangling operand %d" owner id)
    | Op id when id >= owner -> Error (Printf.sprintf "op %d: forward reference to %d" owner id)
    | Op _ | Input _ | Const _ -> Ok ()
  in
  let rec check_ops i =
    if i >= n then Ok ()
    else if t.ops.(i).id <> i then Error (Printf.sprintf "op %d: id mismatch" i)
    else
      match check_operand i t.ops.(i).lhs with
      | Error _ as e -> e
      | Ok () ->
        (match check_operand i t.ops.(i).rhs with
         | Error _ as e -> e
         | Ok () -> check_ops (i + 1))
  in
  if n = 0 then Error "empty DFG"
  else
    match check_ops 0 with
    | Error _ as e -> e
    | Ok () ->
      let bad_output = List.find_opt (fun id -> id < 0 || id >= n) t.outputs in
      (match bad_output with
       | Some id -> Error (Printf.sprintf "output %d out of range" id)
       | None -> Ok ())

let critical_path_length t =
  let n = Array.length t.ops in
  let depth = Array.make n 1 in
  for i = 0 to n - 1 do
    let d =
      List.fold_left (fun acc p -> max acc (depth.(p) + 1)) 1 (predecessors t i)
    in
    depth.(i) <- d
  done;
  Array.fold_left max 0 depth

let operand_dot_label = function
  | Input s -> s
  | Const c -> string_of_int c
  | Op id -> Printf.sprintf "op%d" id

let to_dot t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" t.name);
  Array.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "  op%d [label=\"%s: %s\"];\n" o.id o.label (kind_label o.kind)))
    t.ops;
  Array.iter
    (fun o ->
      let edge src =
        match src with
        | Op id -> Buffer.add_string buf (Printf.sprintf "  op%d -> op%d;\n" id o.id)
        | Input _ | Const _ ->
          Buffer.add_string buf
            (Printf.sprintf "  \"%s\" -> op%d [style=dashed];\n" (operand_dot_label src) o.id)
      in
      edge o.lhs;
      edge o.rhs)
    t.ops;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp fmt t =
  let count kind = List.length (ops_of_kind t kind) in
  Format.fprintf fmt "%s: %d add, %d mul, %d inputs, %d outputs" t.name (count Add)
    (count Mul) (List.length t.inputs) (List.length t.outputs)

module Builder = struct
  type t = {
    bname : string;
    mutable rev_ops : operation list;
    mutable next_id : int;
    mutable rev_inputs : string list;
    mutable rev_outputs : op_id list;
  }

  let create bname =
    { bname; rev_ops = []; next_id = 0; rev_inputs = []; rev_outputs = [] }

  let input b input_name =
    if not (List.mem input_name b.rev_inputs) then
      b.rev_inputs <- input_name :: b.rev_inputs;
    Input input_name

  let const c = Const (Word.clamp c)

  let check_operand b = function
    | Op id when id < 0 || id >= b.next_id ->
      invalid_arg (Printf.sprintf "Dfg.Builder: operand op %d does not exist" id)
    | Op _ | Input _ | Const _ -> ()

  let append ?label b kind lhs rhs =
    check_operand b lhs;
    check_operand b rhs;
    let id = b.next_id in
    let label = Option.value label ~default:(Printf.sprintf "%s%d" (kind_label kind) id) in
    b.rev_ops <- { id; kind; lhs; rhs; label } :: b.rev_ops;
    b.next_id <- id + 1;
    Op id

  let add ?label b lhs rhs = append ?label b Add lhs rhs
  let mul ?label b lhs rhs = append ?label b Mul lhs rhs

  let output b = function
    | Op id ->
      check_operand b (Op id);
      b.rev_outputs <- id :: b.rev_outputs
    | Input _ | Const _ -> invalid_arg "Dfg.Builder.output: not an operation result"

  let finish b =
    let ops = Array.of_list (List.rev b.rev_ops) in
    let n = Array.length ops in
    if n = 0 then invalid_arg "Dfg.Builder.finish: empty DFG";
    let successors = Array.make n [] in
    Array.iter
      (fun o ->
        let note = function
          | Op id -> successors.(id) <- o.id :: successors.(id)
          | Input _ | Const _ -> ()
        in
        note o.lhs;
        note o.rhs)
      ops;
    let successors = Array.map (fun l -> List.sort_uniq Int.compare l) successors in
    let marked = List.sort_uniq Int.compare b.rev_outputs in
    let implicit =
      Array.to_list ops
      |> List.filter (fun o -> successors.(o.id) = [] && not (List.mem o.id marked))
      |> List.map (fun o -> o.id)
    in
    {
      name = b.bname;
      ops;
      inputs = List.rev b.rev_inputs;
      outputs = List.sort_uniq Int.compare (marked @ implicit);
      successors;
    }
end
