(** A behavioural front end: straight-line expression code -> DFG.

    HLS starts from "a behavioral description of a digital system"
    (Sec. II-B); this module provides a minimal one so kernels can be
    written as arithmetic instead of operation lists:

    {v
      # 3-tap filter
      input x0, x1, x2
      acc = 3*x0 + 11*x1 + 3*x2
      y   = acc - x1
      output y
    v}

    Semantics are the library's 8-bit wrapping words. [+] and [*] map
    to Add/Mul operations; [a - b] lowers to [a + b*255] (exact
    two's-complement negation, the same idiom the built-in benchmarks
    use). [*] binds tighter than [+]/[-]; parentheses group.

    The compiler constant-folds ([2*3+1] emits no operations), shares
    common subexpressions (writing [a+b] twice emits one adder
    operation), and eliminates dead code (assignments no output
    reaches emit nothing), so the compiled DFG's outputs are exactly
    the declared ones. *)

val compile : string -> (Dfg.t, string) result
(** Parse and compile a program. Names: [input] lines declare primary
    inputs; [name = expr] defines a value (single assignment); [output
    name] marks outputs (at least one required; the value must be an
    operation result, not a bare input or constant). The first line
    may be [kernel NAME] to name the DFG (default ["expr"]). Errors
    carry a line number. *)

val eval_reference :
  string -> inputs:(string -> int) -> ((string * int) list, string) result
(** Interpret the same program directly (no DFG), returning the output
    values in declaration order — the test oracle for {!compile}. *)
