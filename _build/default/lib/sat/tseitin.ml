module Netlist = Rb_netlist.Netlist

type instance = {
  input_vars : int array;
  key_vars : int array;
  output_vars : int array;
}

let fresh_vars solver n = Array.init n (fun _ -> Solver.new_var solver)

(* CNF clauses asserting z <-> gate(inputs), with [v] resolving net
   variables. Shared by the solver encoding and the DIMACS export. *)
let gate_clauses ~z ~v (g : Rb_netlist.Netlist.gate) =
  match g with
  | And (a, b) -> [ [ -z; v a ]; [ -z; v b ]; [ z; -(v a); -(v b) ] ]
  | Nand (a, b) -> [ [ z; v a ]; [ z; v b ]; [ -z; -(v a); -(v b) ] ]
  | Or (a, b) -> [ [ z; -(v a) ]; [ z; -(v b) ]; [ -z; v a; v b ] ]
  | Nor (a, b) -> [ [ -z; -(v a) ]; [ -z; -(v b) ]; [ z; v a; v b ] ]
  | Xor (a, b) ->
    [ [ -z; v a; v b ]; [ -z; -(v a); -(v b) ]; [ z; -(v a); v b ]; [ z; v a; -(v b) ] ]
  | Xnor (a, b) ->
    [ [ z; v a; v b ]; [ z; -(v a); -(v b) ]; [ -z; -(v a); v b ]; [ -z; v a; -(v b) ] ]
  | Not a -> [ [ -z; -(v a) ]; [ z; v a ] ]
  | Buf a -> [ [ -z; v a ]; [ z; -(v a) ] ]
  | Mux (s, a, b) ->
    (* z = s ? b : a *)
    [ [ -z; v s; v a ]; [ z; v s; -(v a) ]; [ -z; -(v s); v b ]; [ z; -(v s); -(v b) ] ]
  | Const true -> [ [ z ] ]
  | Const false -> [ [ -z ] ]

let encode ?input_vars ?key_vars solver circuit =
  let n_in = Netlist.n_inputs circuit in
  let n_key = Netlist.n_keys circuit in
  let input_vars =
    match input_vars with
    | None -> fresh_vars solver n_in
    | Some v ->
      if Array.length v <> n_in then invalid_arg "Tseitin.encode: input width";
      v
  in
  let key_vars =
    match key_vars with
    | None -> fresh_vars solver n_key
    | Some v ->
      if Array.length v <> n_key then invalid_arg "Tseitin.encode: key width";
      v
  in
  let n_nets = Netlist.n_nets circuit in
  let var_of_net = Array.make n_nets 0 in
  Array.blit input_vars 0 var_of_net 0 n_in;
  Array.blit key_vars 0 var_of_net n_in n_key;
  let base = n_in + n_key in
  Array.iteri
    (fun i g ->
      let z = Solver.new_var solver in
      var_of_net.(base + i) <- z;
      let v n = var_of_net.(n) in
      List.iter (Solver.add_clause solver) (gate_clauses ~z ~v g))
    (Netlist.gates circuit);
  let output_vars = Array.map (fun o -> var_of_net.(o)) (Netlist.outputs circuit) in
  { input_vars; key_vars; output_vars }

let pin solver vars values name =
  if Array.length vars <> Array.length values then invalid_arg name;
  Array.iteri
    (fun i v -> Solver.add_clause solver [ (if values.(i) then v else -v) ])
    vars

let constrain_inputs solver inst values =
  pin solver inst.input_vars values "Tseitin.constrain_inputs"

let constrain_outputs solver inst values =
  pin solver inst.output_vars values "Tseitin.constrain_outputs"
