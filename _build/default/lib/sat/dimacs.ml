module Netlist = Rb_netlist.Netlist

type t = {
  n_vars : int;
  clauses : int list list;
  input_vars : int array;
  key_vars : int array;
  output_vars : int array;
}

(* Standalone Tseitin encoding: variables 1..n_in are inputs, the next
   n_key are keys, then one per gate, allocated in gate order (plus any
   extra the caller appends). *)
let encode_copy ~next_var ~clauses ?input_vars circuit =
  let n_in = Netlist.n_inputs circuit in
  let n_key = Netlist.n_keys circuit in
  let fresh () =
    let v = !next_var in
    incr next_var;
    v
  in
  let input_vars =
    match input_vars with
    | Some v -> v
    | None -> Array.init n_in (fun _ -> fresh ())
  in
  let key_vars = Array.init n_key (fun _ -> fresh ()) in
  let var_of_net = Array.make (Netlist.n_nets circuit) 0 in
  Array.blit input_vars 0 var_of_net 0 n_in;
  Array.blit key_vars 0 var_of_net n_in n_key;
  let base = n_in + n_key in
  Array.iteri
    (fun i g ->
      let z = fresh () in
      var_of_net.(base + i) <- z;
      let v n = var_of_net.(n) in
      clauses := List.rev_append (Tseitin.gate_clauses ~z ~v g) !clauses)
    (Netlist.gates circuit);
  let output_vars = Array.map (fun o -> var_of_net.(o)) (Netlist.outputs circuit) in
  (input_vars, key_vars, output_vars)

let of_netlist circuit =
  let next_var = ref 1 in
  let clauses = ref [] in
  let input_vars, key_vars, output_vars = encode_copy ~next_var ~clauses circuit in
  {
    n_vars = !next_var - 1;
    clauses = List.rev !clauses;
    input_vars;
    key_vars;
    output_vars;
  }

let miter circuit =
  let next_var = ref 1 in
  let clauses = ref [] in
  let input_vars, key_a, out_a = encode_copy ~next_var ~clauses circuit in
  let _, _key_b, out_b = encode_copy ~next_var ~clauses ~input_vars circuit in
  (* difference indicators: d_i -> (out_a.i xor out_b.i); assert some d *)
  let diffs =
    Array.init (Array.length out_a) (fun i ->
        let d = !next_var in
        incr next_var;
        clauses := [ -d; out_a.(i); out_b.(i) ] :: !clauses;
        clauses := [ -d; -out_a.(i); -out_b.(i) ] :: !clauses;
        d)
  in
  clauses := Array.to_list diffs :: !clauses;
  {
    n_vars = !next_var - 1;
    clauses = List.rev !clauses;
    input_vars;
    key_vars = key_a;
    output_vars = diffs;
  }

let to_string ?(comments = []) t =
  let buf = Buffer.create 4096 in
  List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "c %s\n" c)) comments;
  let span name vars =
    if Array.length vars > 0 then
      Buffer.add_string buf
        (Printf.sprintf "c %s: variables %d..%d\n" name vars.(0)
           vars.(Array.length vars - 1))
  in
  span "primary inputs" t.input_vars;
  span "key inputs" t.key_vars;
  (* outputs are not contiguous; list them *)
  if Array.length t.output_vars > 0 then
    Buffer.add_string buf
      (Printf.sprintf "c outputs: %s\n"
         (String.concat " " (Array.to_list (Array.map string_of_int t.output_vars))));
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" t.n_vars (List.length t.clauses));
  List.iter
    (fun clause ->
      List.iter (fun lit -> Buffer.add_string buf (Printf.sprintf "%d " lit)) clause;
      Buffer.add_string buf "0\n")
    t.clauses;
  Buffer.contents buf

let parse text =
  let lines = String.split_on_char '\n' text in
  let header = ref None in
  let clauses = ref [] in
  let current = ref [] in
  let rec go line_no = function
    | [] -> Ok ()
    | line :: rest ->
      let line = String.trim line in
      if line = "" || (String.length line > 0 && line.[0] = 'c') then go (line_no + 1) rest
      else if String.length line > 0 && line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (fun w -> w <> "") with
        | [ "p"; "cnf"; vars; n_clauses ] ->
          (match (int_of_string_opt vars, int_of_string_opt n_clauses) with
           | Some v, Some c when !header = None ->
             header := Some (v, c);
             go (line_no + 1) rest
           | Some _, Some _ -> Error (Printf.sprintf "line %d: duplicate header" line_no)
           | _, _ -> Error (Printf.sprintf "line %d: bad header" line_no))
        | _ -> Error (Printf.sprintf "line %d: bad header" line_no)
      end
      else begin
        let words = String.split_on_char ' ' line |> List.filter (fun w -> w <> "") in
        let rec take = function
          | [] -> Ok ()
          | w :: ws ->
            (match int_of_string_opt w with
             | None -> Error (Printf.sprintf "line %d: bad literal %S" line_no w)
             | Some 0 ->
               clauses := List.rev !current :: !clauses;
               current := [];
               take ws
             | Some lit ->
               current := lit :: !current;
               take ws)
        in
        match take words with Ok () -> go (line_no + 1) rest | Error _ as e -> e
      end
  in
  match go 1 lines with
  | Error _ as e -> e
  | Ok () ->
    if !current <> [] then Error "unterminated final clause"
    else begin
      match !header with
      | None -> Error "missing 'p cnf' header"
      | Some (n_vars, n_clauses) ->
        let parsed = List.rev !clauses in
        if List.length parsed <> n_clauses then
          Error
            (Printf.sprintf "header declares %d clauses, found %d" n_clauses
               (List.length parsed))
        else if
          List.exists (fun c -> List.exists (fun l -> l = 0 || abs l > n_vars) c) parsed
        then Error "literal out of declared range"
        else Ok (n_vars, parsed)
    end
