lib/sat/attack.ml: Array List Rb_netlist Rb_util Solver Tseitin
