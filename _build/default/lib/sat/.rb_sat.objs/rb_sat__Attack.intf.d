lib/sat/attack.mli: Rb_netlist
