lib/sat/dimacs.ml: Array Buffer List Printf Rb_netlist String Tseitin
