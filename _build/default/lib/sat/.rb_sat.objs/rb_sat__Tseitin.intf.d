lib/sat/tseitin.mli: Rb_netlist Solver
