lib/sat/solver.mli:
