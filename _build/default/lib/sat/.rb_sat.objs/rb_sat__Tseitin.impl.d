lib/sat/tseitin.ml: Array List Rb_netlist Solver
