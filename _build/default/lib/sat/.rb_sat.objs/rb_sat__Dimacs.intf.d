lib/sat/dimacs.mli: Rb_netlist
