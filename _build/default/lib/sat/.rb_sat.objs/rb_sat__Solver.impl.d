lib/sat/solver.ml: Array Int List
