(** DIMACS CNF export.

    Lets a locked netlist's key-recovery or equivalence instances be
    handed to external SAT solvers/tools. The variable layout is
    documented in comment lines of the output: primary inputs first,
    key inputs second, then one variable per gate. *)

type t = {
  n_vars : int;
  clauses : int list list;
  input_vars : int array;
  key_vars : int array;
  output_vars : int array;
}

val of_netlist : Rb_netlist.Netlist.t -> t
(** Tseitin-encode one copy of the circuit, standalone. *)

val miter : Rb_netlist.Netlist.t -> t
(** The SAT-attack miter (two copies sharing primary inputs, separate
    keys, at least one output differing) as one CNF; [key_vars] holds
    the first copy's keys and [output_vars] the difference
    indicators. *)

val to_string : ?comments:string list -> t -> string
(** Render in DIMACS format with a variable-layout comment header. *)

val parse : string -> (int * int list list, string) result
(** Parse DIMACS text into (variable count, clauses). Accepts comment
    lines, a single [p cnf] header, and 0-terminated clauses possibly
    spanning lines. The error names the offending line. *)
