module Dfg = Rb_dfg.Dfg
module Minterm = Rb_dfg.Minterm
module Combi = Rb_util.Combi
module Allocation = Rb_hls.Allocation
module Config = Rb_locking.Config

type spec = {
  scheme : Rb_locking.Scheme.t;
  locked_fus : int list;
  minterms_per_fu : int;
  candidates : Minterm.t array;
}

type solution = {
  config : Config.t;
  binding : Rb_hls.Binding.t;
  errors : int;
  assignments_searched : int;
}

let validate_spec allocation spec =
  (match spec.locked_fus with
   | [] -> invalid_arg "Codesign: no locked FUs"
   | fu :: rest ->
     let kind = Allocation.kind_of_fu allocation fu in
     List.iter
       (fun fu' ->
         if Allocation.kind_of_fu allocation fu' <> kind then
           invalid_arg "Codesign: locked FUs of mixed kinds")
       rest);
  if List.length (List.sort_uniq Int.compare spec.locked_fus) <> List.length spec.locked_fus
  then invalid_arg "Codesign: duplicate locked FU";
  if spec.minterms_per_fu < 1 then invalid_arg "Codesign: minterms_per_fu";
  if spec.minterms_per_fu > Array.length spec.candidates then
    invalid_arg "Codesign: budget exceeds candidate list";
  Allocation.kind_of_fu allocation (List.hd spec.locked_fus)

let search_space spec =
  let per_fu = Combi.choose (Array.length spec.candidates) spec.minterms_per_fu in
  Combi.product_size (List.map (fun _ -> per_fu) spec.locked_fus)

(* All size-m subsets of candidate indices, as arrays. *)
let index_subsets spec =
  let indices = Array.init (Array.length spec.candidates) Fun.id in
  Array.of_list (Combi.k_subsets indices spec.minterms_per_fu)

let finalize k schedule allocation spec table locks searched =
  let config =
    Config.make ~scheme:spec.scheme
      ~locks:(List.map (fun (fu, subset) -> (fu, Cost.subset_minterms table subset)) locks)
  in
  let binding = Obf_binding.bind k config schedule allocation in
  let errors = Cost.expected_errors k binding config in
  { config; binding; errors; assignments_searched = searched }

let optimal ?(max_assignments = 500_000) k schedule allocation spec =
  let kind = validate_spec allocation spec in
  let space = search_space spec in
  if space > max_assignments then `Too_large space
  else begin
    let table = Cost.cand_table k spec.candidates in
    let fast = Obf_binding.Fast.prepare table schedule allocation ~kind in
    let subsets = index_subsets spec in
    let fus = Array.of_list spec.locked_fus in
    let choices = Array.map (fun _ -> subsets) fus in
    let best = ref None in
    let searched = ref 0 in
    let consider _acc tuple =
      incr searched;
      let locks = Array.to_list (Array.mapi (fun i subset -> (fus.(i), subset)) tuple) in
      let errors = Obf_binding.Fast.best_errors fast ~locks in
      (match !best with
       | Some (best_errors, _) when best_errors >= errors -> ()
       | Some _ | None ->
         (* Copy: the tuple array is reused by the enumerator. *)
         best := Some (errors, List.map (fun (fu, s) -> (fu, Array.copy s)) locks));
      ()
    in
    Combi.fold_cartesian choices ~init:() ~f:consider;
    match !best with
    | None -> assert false
    | Some (_, locks) -> `Solution (finalize k schedule allocation spec table locks !searched)
  end

let heuristic k schedule allocation spec =
  let kind = validate_spec allocation spec in
  let table = Cost.cand_table k spec.candidates in
  let fast = Obf_binding.Fast.prepare table schedule allocation ~kind in
  let subsets = index_subsets spec in
  let searched = ref 0 in
  let fix_next fixed fu =
    let best = ref None in
    Array.iter
      (fun subset ->
        incr searched;
        let errors = Obf_binding.Fast.best_errors fast ~locks:((fu, subset) :: fixed) in
        match !best with
        | Some (best_errors, _) when best_errors >= errors -> ()
        | Some _ | None -> best := Some (errors, subset))
      subsets;
    match !best with
    | None -> assert false
    | Some (_, subset) -> (fu, subset) :: fixed
  in
  let locks = List.fold_left fix_next [] spec.locked_fus in
  finalize k schedule allocation spec table (List.rev locks) !searched
