(** Binding-obfuscation co-design — paper Sec. V.

    The locked minterms are no longer given: only the locked FU set,
    the per-FU locked-input budget [|M_l|], and a designer-supplied
    candidate list [C] are fixed. Both algorithms search assignments
    of size-[|M_l|] candidate subsets to locked FUs, scoring each with
    optimal obfuscation-aware binding (Sec. IV), so every score is the
    true maximum of Eqn. 2 for that assignment:

    - {!optimal} enumerates all [C(|C|, |M|)^|L|] assignments —
      exponential, exact (Sec. V-B.3).
    - {!heuristic} fixes one FU at a time, choosing the subset whose
      obfuscation-aware binding yields the most errors with all
      previously-fixed FUs still locked — P-time,
      O(s |L| |Nm| |R| log |R|) for bounded [|C|] (Sec. V-A). *)

module Minterm = Rb_dfg.Minterm

type spec = {
  scheme : Rb_locking.Scheme.t;  (** must be a critical-minterm scheme *)
  locked_fus : int list;  (** FU ids to lock; all of one kind *)
  minterms_per_fu : int;  (** the SAT-resilience budget |M_l| *)
  candidates : Minterm.t array;  (** the designer's list C *)
}

type solution = {
  config : Rb_locking.Config.t;  (** chosen locked minterms per FU *)
  binding : Rb_hls.Binding.t;  (** complete obfuscation-aware binding *)
  errors : int;  (** Eqn. 2 value of (config, binding) *)
  assignments_searched : int;  (** candidate assignments scored *)
}

val validate_spec : Rb_hls.Allocation.t -> spec -> Rb_dfg.Dfg.op_kind
(** Check the spec (non-empty same-kind FU set, budget within the
    candidate count) and return the locked kind. Raises
    [Invalid_argument] otherwise. *)

val search_space : spec -> int
(** [C(|C|, |M|)^|L|], saturating at [max_int]. *)

val optimal :
  ?max_assignments:int ->
  Rb_sim.Kmatrix.t ->
  Rb_sched.Schedule.t ->
  Rb_hls.Allocation.t ->
  spec ->
  [ `Solution of solution | `Too_large of int ]
(** Exhaustive search. Refuses (returning [`Too_large] with the space
    size) when the space exceeds [max_assignments] (default 500_000)
    rather than silently truncating. *)

val heuristic :
  Rb_sim.Kmatrix.t ->
  Rb_sched.Schedule.t ->
  Rb_hls.Allocation.t ->
  spec ->
  solution
(** The P-time sequential heuristic of Sec. V-A. *)
