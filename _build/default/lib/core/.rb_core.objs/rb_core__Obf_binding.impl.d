lib/core/obf_binding.ml: Array Cost Hashtbl List Rb_dfg Rb_hls Rb_matching Rb_sched
