lib/core/ablation.ml: Array Codesign Cost Experiments List Obf_binding Option Printf Rb_dfg Rb_hls Rb_locking Rb_sched Rb_sim Rb_util
