lib/core/cost.mli: Rb_dfg Rb_hls Rb_locking Rb_sim
