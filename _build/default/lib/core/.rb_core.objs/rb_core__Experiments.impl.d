lib/core/experiments.ml: Array Codesign Cost Fun Hashtbl Int List Obf_binding Rb_dfg Rb_hls Rb_locking Rb_sched Rb_sim Rb_util
