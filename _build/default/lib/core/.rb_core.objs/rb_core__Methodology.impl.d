lib/core/methodology.ml: Array Codesign List Option Rb_dfg Rb_locking
