lib/core/methodology.mli: Codesign Rb_dfg Rb_hls Rb_locking Rb_sched Rb_sim
