lib/core/codesign.mli: Rb_dfg Rb_hls Rb_locking Rb_sched Rb_sim
