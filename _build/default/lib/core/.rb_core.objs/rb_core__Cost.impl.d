lib/core/cost.ml: Array List Rb_dfg Rb_hls Rb_locking Rb_sim
