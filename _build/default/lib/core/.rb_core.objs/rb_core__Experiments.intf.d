lib/core/experiments.mli: Rb_dfg Rb_hls Rb_sched Rb_sim
