lib/core/ablation.mli: Experiments Rb_dfg Rb_sched Rb_sim
