lib/core/obf_binding.mli: Cost Rb_dfg Rb_hls Rb_locking Rb_sched Rb_sim
