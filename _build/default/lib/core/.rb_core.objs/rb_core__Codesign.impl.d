lib/core/codesign.ml: Array Cost Fun Int List Obf_binding Rb_dfg Rb_hls Rb_locking Rb_util
