(** Obfuscation-aware binding — paper Sec. IV-B.

    Given a locking configuration whose locked minterms are already
    fixed, bind each cycle's concurrent operations to FUs by a
    max-weight bipartite matching whose edge weights are Eqn. 3
    ([w(i,j)] = occurrences of FU [i]'s locked minterms in operation
    [j]). Per-cycle matchings are independent (separability), so the
    concatenation is the binding with the maximum expected application
    errors (Thm. 2), in O(s |Nm| |R| log |R|) time. *)

val bind :
  Rb_sim.Kmatrix.t ->
  Rb_locking.Config.t ->
  Rb_sched.Schedule.t ->
  Rb_hls.Allocation.t ->
  Rb_hls.Binding.t
(** The public algorithm: always returns a valid, complete binding
    (Thm. 1) maximizing Eqn. 2 for the given configuration. *)

(** Allocation-light fast path used by the co-design enumerators: the
    locked minterm sets are given as candidate-index subsets per locked
    FU over a prebuilt {!Cost.cand_table}. *)
module Fast : sig
  type t
  (** Preprocessed (schedule, allocation, table) state reused across
      millions of assignments. *)

  val prepare :
    Cost.cand_table ->
    Rb_sched.Schedule.t ->
    Rb_hls.Allocation.t ->
    kind:Rb_dfg.Dfg.op_kind ->
    t
  (** Specialize to one operation kind (the paper binds kinds
      separately; only FUs of [kind] can be locked in this state). *)

  val best_errors : t -> locks:(int * int array) list -> int
  (** Maximum Eqn. 2 value over bindings of this kind's operations,
      where [locks] gives (FU id, candidate-index subset) pairs.
      Does not materialize the binding. *)

  val best_binding : t -> locks:(int * int array) list -> int array * int
  (** As {!best_errors} but also returns the kind's operation-to-FU
      map (entries for other kinds are -1). *)
end
