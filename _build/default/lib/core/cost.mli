(** The obfuscation-aware objective cost function — paper Eqn. 2.

    For a bound DFG whose locked FUs [l] lock minterm sets [M_l] and
    execute operation sets [N_l], the expected application errors over
    the typical workload are

    {v  E = sum over l, sum over m in M_l, sum over n in N_l of K(m, n)  v}

    This module evaluates E for arbitrary bindings/configurations, and
    provides the candidate-indexed fast path the co-design enumerators
    run millions of times. *)

module Dfg = Rb_dfg.Dfg
module Minterm = Rb_dfg.Minterm
module Kmatrix = Rb_sim.Kmatrix

val expected_errors :
  Kmatrix.t -> Rb_hls.Binding.t -> Rb_locking.Config.t -> int
(** E of Eqn. 2: locked-input occurrences summed over the operations
    bound to each locked FU. *)

val edge_weight :
  Kmatrix.t -> Rb_locking.Config.t -> fu:int -> op:Dfg.op_id -> int
(** w(i,j) of Eqn. 3: occurrences of FU [fu]'s locked minterms in
    operation [op]'s input stream. 0 for unlocked FUs. *)

(** Candidate-indexed occurrence table: [K] restricted to the candidate
    locked-input list, as dense arrays. Lets the enumerators weigh an
    (FU, operation) edge for any candidate subset with a few integer
    adds instead of hash lookups. *)
type cand_table

val cand_table : Kmatrix.t -> Minterm.t array -> cand_table

val candidates : cand_table -> Minterm.t array

val cand_count : cand_table -> cand:int -> op:Dfg.op_id -> int
(** Occurrences of candidate [cand] (by index) in operation [op]. *)

val subset_weight : cand_table -> subset:int array -> op:Dfg.op_id -> int
(** Sum of {!cand_count} over a candidate-index subset — Eqn. 3 for an
    FU locking that subset. *)

val subset_minterms : cand_table -> int array -> Minterm.t list
(** Resolve candidate indices back to minterms. *)
