module Dfg = Rb_dfg.Dfg
module Minterm = Rb_dfg.Minterm
module Kmatrix = Rb_sim.Kmatrix
module Binding = Rb_hls.Binding
module Config = Rb_locking.Config

let edge_weight k config ~fu ~op =
  Kmatrix.count_set k (Config.minterms_of config fu) op

let expected_errors k binding config =
  List.fold_left
    (fun acc fu ->
      List.fold_left
        (fun acc op -> acc + edge_weight k config ~fu ~op)
        acc
        (Binding.ops_on_fu binding fu))
    0
    (Config.locked_fus config)

type cand_table = {
  minterms : Minterm.t array;
  counts : int array array; (* candidate index -> op -> K(m, op) *)
}

let cand_table k minterms =
  let n_ops = Dfg.op_count (Kmatrix.dfg k) in
  let counts =
    Array.map (fun m -> Array.init n_ops (fun op -> Kmatrix.count k m op)) minterms
  in
  { minterms = Array.copy minterms; counts }

let candidates t = Array.copy t.minterms

let cand_count t ~cand ~op = t.counts.(cand).(op)

let subset_weight t ~subset ~op =
  let total = ref 0 in
  Array.iter (fun cand -> total := !total + t.counts.(cand).(op)) subset;
  !total

let subset_minterms t subset = Array.to_list (Array.map (fun c -> t.minterms.(c)) subset)
