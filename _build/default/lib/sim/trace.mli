(** Input traces — the "typical workload" of a kernel.

    HLS assumes knowledge of the IC's input distribution (Sec. II-B,
    [19], [22]); concretely, a trace is a sequence of samples, each
    assigning one word to every primary input of a DFG. The
    MediaBench-provided sample workloads of Sec. VI are reproduced by
    the generators in {!Rb_workload}. *)

type t

val make : Rb_dfg.Dfg.t -> samples:int array array -> t
(** [make dfg ~samples] wraps samples ordered like [Dfg.inputs dfg]
    (one inner array per sample, one word per input, clamped to the
    word range). Raises [Invalid_argument] on width mismatches or an
    empty trace. *)

val generate : Rb_dfg.Dfg.t -> n:int -> f:(int -> string -> int) -> t
(** [generate dfg ~n ~f] builds [n] samples where [f sample_index
    input_name] supplies each word. *)

val dfg : t -> Rb_dfg.Dfg.t
val length : t -> int

val input_value : t -> sample:int -> input:string -> int
(** Value of a named input in one sample. Raises [Not_found] for
    unknown input names. *)

val sample : t -> int -> int array
(** Raw sample row (do not mutate). *)

val sub : t -> pos:int -> len:int -> t
(** Contiguous slice of the trace — used by the train/test
    generalization ablation. Raises [Invalid_argument] on an empty or
    out-of-range slice. *)

val input_index : t -> string -> int
(** Position of an input name in sample rows. *)
