(** The K matrix — expected locked-input occurrences per operation.

    [K(m, n)] is the number of times input minterm [m] is applied to
    operation [n] over the typical input trace (Sec. IV-A). It is the
    only statistic the paper's cost function (Eqn. 2) and both binding
    algorithms consume; building it once per benchmark makes every
    enumeration cheap. *)

module Dfg = Rb_dfg.Dfg
module Minterm = Rb_dfg.Minterm

type t

val build : Trace.t -> t
(** Simulate the golden DFG over the whole trace and count, per
    operation, every operand minterm applied to it. *)

val of_counts : Rb_dfg.Dfg.t -> (Dfg.op_id * (Minterm.t * int) list) list -> t
(** Build a K matrix from explicit per-operation counts instead of a
    trace — used to encode the paper's worked examples (Figs. 1 and 2)
    and by tests. Unlisted (op, minterm) pairs count 0. Raises
    [Invalid_argument] on out-of-range ids or negative counts. *)

val dfg : t -> Dfg.t

val count : t -> Minterm.t -> Dfg.op_id -> int
(** [count k m n] is K(m, n); 0 when [m] never reaches [n]. *)

val count_set : t -> Minterm.Set.t -> Dfg.op_id -> int
(** Sum of {!count} over a minterm set — the edge weight w(i, j) of
    Eqn. 3 for FU [i]'s locked set and operation [j]. *)

val op_histogram : t -> Dfg.op_id -> (Minterm.t * int) list
(** All (minterm, count) pairs for an operation, descending count, ties
    by ascending minterm. *)

val total_occurrences : t -> Minterm.t -> int
(** Occurrences of a minterm summed over all operations. *)

val top_minterms : ?kind:Dfg.op_kind -> t -> n:int -> Minterm.t list
(** The [n] most frequent minterms across the DFG (restricted to
    operations of [kind] when given) — the paper's candidate
    locked-input list C, "the 10 most common inputs for each DFG"
    (Sec. VI). Descending frequency, ties by ascending minterm. *)

val all_minterms : ?kind:Dfg.op_kind -> t -> (Minterm.t * int) list
(** Every minterm seen in the trace (restricted to operations of
    [kind] when given) with its total occurrence count, descending
    count then ascending minterm — {!top_minterms} is a prefix of
    this list. *)

val distinct_minterms : t -> int
(** Number of distinct minterms seen anywhere in the trace. *)

val head_mass : ?kind:Dfg.op_kind -> t -> n:int -> float
(** Fraction of all operand-minterm occurrences captured by the [n]
    most common minterms — how repetitive the workload is. The
    binding algorithms need this to be high (candidate lists carry
    real error mass). *)

val op_concentration : t -> Minterm.t -> float
(** Largest share of a minterm's occurrences attributable to a single
    operation, in [0, 1]. 1.0 means the minterm fires on exactly one
    operation — the regime where a security-oblivious binding is
    likeliest to miss it entirely, which is what drives the paper's
    largest error-increase ratios (see EXPERIMENTS.md). Returns 0 for
    minterms absent from the trace. *)
