lib/sim/kmatrix.ml: Array Exec Hashtbl Int List Option Rb_dfg Trace
