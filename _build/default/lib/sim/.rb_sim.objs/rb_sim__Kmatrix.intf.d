lib/sim/kmatrix.mli: Rb_dfg Trace
