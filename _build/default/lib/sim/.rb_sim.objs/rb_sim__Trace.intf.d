lib/sim/trace.mli: Rb_dfg
