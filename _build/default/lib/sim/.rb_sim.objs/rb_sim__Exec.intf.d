lib/sim/exec.mli: Rb_dfg Rb_locking Rb_sched Trace
