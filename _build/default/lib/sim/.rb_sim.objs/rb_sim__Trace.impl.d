lib/sim/trace.ml: Array Hashtbl Rb_dfg
