lib/sim/exec.ml: Array List Rb_dfg Rb_locking Rb_sched Trace
