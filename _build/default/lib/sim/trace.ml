module Dfg = Rb_dfg.Dfg
module Word = Rb_dfg.Word

type t = {
  dfg : Dfg.t;
  input_names : string array;
  index_of : (string, int) Hashtbl.t;
  samples : int array array;
}

let make dfg ~samples =
  let input_names = Array.of_list (Dfg.inputs dfg) in
  let n_inputs = Array.length input_names in
  if Array.length samples = 0 then invalid_arg "Trace.make: empty trace";
  let clamped =
    Array.map
      (fun row ->
        if Array.length row <> n_inputs then invalid_arg "Trace.make: sample width";
        Array.map Word.clamp row)
      samples
  in
  let index_of = Hashtbl.create n_inputs in
  Array.iteri (fun i name -> Hashtbl.replace index_of name i) input_names;
  { dfg; input_names; index_of; samples = clamped }

let generate dfg ~n ~f =
  if n <= 0 then invalid_arg "Trace.generate: n";
  let input_names = Array.of_list (Dfg.inputs dfg) in
  let samples =
    Array.init n (fun s -> Array.map (fun name -> Word.clamp (f s name)) input_names)
  in
  make dfg ~samples

let dfg t = t.dfg
let length t = Array.length t.samples

let input_index t name =
  match Hashtbl.find_opt t.index_of name with
  | Some i -> i
  | None -> raise Not_found

let input_value t ~sample ~input = t.samples.(sample).(input_index t input)

let sample t i = t.samples.(i)

let sub t ~pos ~len =
  if len <= 0 || pos < 0 || pos + len > Array.length t.samples then
    invalid_arg "Trace.sub";
  { t with samples = Array.sub t.samples pos len }
