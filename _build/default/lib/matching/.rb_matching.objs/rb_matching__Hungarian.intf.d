lib/matching/hungarian.mli:
