lib/matching/hungarian.ml: Array
