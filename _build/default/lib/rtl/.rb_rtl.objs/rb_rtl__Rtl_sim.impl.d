lib/rtl/rtl_sim.ml: Array Datapath List Printf Rb_dfg Rb_hls Rb_sched Rb_sim
