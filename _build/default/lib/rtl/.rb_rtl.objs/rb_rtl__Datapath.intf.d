lib/rtl/datapath.mli: Format Rb_dfg Rb_hls
