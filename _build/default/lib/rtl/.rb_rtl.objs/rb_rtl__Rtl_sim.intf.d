lib/rtl/rtl_sim.mli: Datapath Rb_sim
