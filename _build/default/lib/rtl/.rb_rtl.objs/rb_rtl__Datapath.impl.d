lib/rtl/datapath.ml: Array Format Hashtbl Int List Option Printf Rb_dfg Rb_hls Rb_sched
