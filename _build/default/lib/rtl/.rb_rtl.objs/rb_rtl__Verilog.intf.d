lib/rtl/verilog.mli: Datapath
