lib/rtl/verilog.ml: Buffer Datapath Float List Option Printf Rb_dfg Rb_hls Rb_sched String
