module Dfg = Rb_dfg.Dfg
module Schedule = Rb_sched.Schedule
module Binding = Rb_hls.Binding
module Registers = Rb_hls.Registers
module Allocation = Rb_hls.Allocation

type source =
  | From_input of string
  | From_const of int
  | From_fu of int
  | From_register of int

type issue = {
  op : Dfg.op_id;
  fu : int;
  cycle : int;
  lhs_src : source;
  rhs_src : source;
}

type write = { register : int; cycle : int; fu : int; op : Dfg.op_id }

type t = {
  binding : Binding.t;
  n_registers : int;
  issues : issue list;
  writes : write list;
  register_of : int option array; (* op id -> register *)
}

let source_pp fmt = function
  | From_input name -> Format.fprintf fmt "in:%s" name
  | From_const c -> Format.fprintf fmt "#%d" c
  | From_fu fu -> Format.fprintf fmt "FU%d" fu
  | From_register r -> Format.fprintf fmt "r%d" r

(* Left-edge register allocation inside one FU's bank: values sorted by
   birth take the first register whose previous tenant has died. *)
let allocate_bank ~next_reg values =
  let sorted =
    List.sort
      (fun (p1, b1, _) (p2, b2, _) ->
        match Int.compare b1 b2 with 0 -> Int.compare p1 p2 | c -> c)
      values
  in
  let registers : (int * int) list ref = ref [] (* (reg, last death) *) in
  let assignments = ref [] in
  let place (p, birth, death) =
    let rec find = function
      | [] -> None
      | (reg, last_death) :: rest ->
        if last_death <= birth then Some reg else find rest
    in
    let reg =
      match find !registers with
      | Some reg ->
        registers :=
          List.map (fun (r, d) -> if r = reg then (r, death) else (r, d)) !registers;
        reg
      | None ->
        let reg = !next_reg in
        incr next_reg;
        registers := !registers @ [ (reg, death) ];
        reg
    in
    assignments := (p, reg) :: !assignments
  in
  List.iter place sorted;
  !assignments

let build binding =
  let schedule = Binding.schedule binding in
  let dfg = Schedule.dfg schedule in
  let allocation = Binding.allocation binding in
  let n_ops = Dfg.op_count dfg in
  let lifetimes = Registers.value_lifetimes binding in
  let bypassed = Registers.latch_resident_values binding in
  let is_bypassed = Array.make n_ops false in
  List.iter (fun p -> is_bypassed.(p) <- true) bypassed;
  (* Values needing a register: not bypassed, and actually read later
     (death > birth). *)
  let register_of = Array.make n_ops None in
  let next_reg = ref 0 in
  for fu = 0 to Allocation.total allocation - 1 do
    let bank_values =
      List.filter
        (fun (p, birth, death) ->
          Binding.fu_of_op binding p = fu && (not is_bypassed.(p)) && death > birth)
        lifetimes
    in
    List.iter
      (fun (p, reg) -> register_of.(p) <- Some reg)
      (allocate_bank ~next_reg bank_values)
  done;
  let operand_source op_id operand =
    match (operand : Dfg.operand) with
    | Dfg.Input name -> From_input name
    | Dfg.Const c -> From_const c
    | Dfg.Op p ->
      (match register_of.(p) with
       | Some reg -> From_register reg
       | None ->
         (* latch bypass: the producer's FU still holds the value *)
         if not is_bypassed.(p) then
           invalid_arg
             (Printf.sprintf "Datapath.build: op %d reads unregistered dead value %d"
                op_id p);
         From_fu (Binding.fu_of_op binding p))
  in
  let issues =
    List.init n_ops (fun op ->
        let node = Dfg.op dfg op in
        {
          op;
          fu = Binding.fu_of_op binding op;
          cycle = Schedule.cycle_of schedule op;
          lhs_src = operand_source op node.Dfg.lhs;
          rhs_src = operand_source op node.Dfg.rhs;
        })
    |> List.sort (fun (a : issue) (b : issue) ->
           match Int.compare a.cycle b.cycle with
           | 0 -> Int.compare a.fu b.fu
           | c -> c)
  in
  let writes =
    List.filter_map
      (fun (p, birth, _) ->
        match register_of.(p) with
        | Some register ->
          Some { register; cycle = birth; fu = Binding.fu_of_op binding p; op = p }
        | None -> None)
      lifetimes
    |> List.sort (fun (a : write) (b : write) ->
           match Int.compare a.cycle b.cycle with
           | 0 -> Int.compare a.register b.register
           | c -> c)
  in
  { binding; n_registers = !next_reg; issues; writes; register_of }

let binding t = t.binding
let n_registers t = t.n_registers
let issues t = t.issues
let writes t = t.writes
let register_of_value t op = t.register_of.(op)

let mux_inputs t =
  let ports = Hashtbl.create 32 in
  let note fu side src =
    let key = (fu, side) in
    let sources = Option.value (Hashtbl.find_opt ports key) ~default:[] in
    if not (List.mem src sources) then Hashtbl.replace ports key (src :: sources)
  in
  List.iter
    (fun (i : issue) ->
      note i.fu `L i.lhs_src;
      note i.fu `R i.rhs_src)
    t.issues;
  Hashtbl.fold (fun _ sources acc -> acc + max 0 (List.length sources - 1)) ports 0

let validate t =
  let schedule = Binding.schedule t.binding in
  let dfg = Schedule.dfg schedule in
  let n_ops = Dfg.op_count dfg in
  (* register contents over time: register -> (cycle, op) writes *)
  let write_conflict =
    let seen = Hashtbl.create 32 in
    List.find_opt
      (fun w ->
        let key = (w.register, w.cycle) in
        if Hashtbl.mem seen key then true
        else begin
          Hashtbl.add seen key ();
          false
        end)
      t.writes
  in
  let last_write_before register cycle =
    List.fold_left
      (fun acc w ->
        if w.register = register && w.cycle < cycle then
          match acc with
          | Some prev when prev.cycle >= w.cycle -> acc
          | Some _ | None -> Some w
        else acc)
      None t.writes
  in
  let last_issue_on_fu_before fu cycle =
    List.fold_left
      (fun (acc : issue option) (i : issue) ->
        if i.fu = fu && i.cycle < cycle then
          match acc with
          | Some prev when prev.cycle >= i.cycle -> acc
          | Some _ | None -> Some i
        else acc)
      None t.issues
  in
  let check_source (issue : issue) expected src =
    match (expected : Dfg.operand), (src : source) with
    | Dfg.Input n1, From_input n2 when n1 = n2 -> Ok ()
    | Dfg.Const c1, From_const c2 when c1 = c2 -> Ok ()
    | Dfg.Op p, From_register r ->
      (match last_write_before r issue.cycle with
       | Some w when w.op = p -> Ok ()
       | Some w ->
         Error
           (Printf.sprintf "op %d reads r%d holding op %d, wanted op %d" issue.op r w.op p)
       | None -> Error (Printf.sprintf "op %d reads never-written r%d" issue.op r))
    | Dfg.Op p, From_fu fu ->
      (match last_issue_on_fu_before fu issue.cycle with
       | Some i when i.op = p -> Ok ()
       | Some i ->
         Error
           (Printf.sprintf "op %d reads FU%d latch holding op %d, wanted op %d" issue.op
              fu i.op p)
       | None -> Error (Printf.sprintf "op %d reads idle FU%d latch" issue.op fu))
    | (Dfg.Input _ | Dfg.Const _ | Dfg.Op _), _ ->
      Error (Printf.sprintf "op %d source mismatch" issue.op)
  in
  let rec check_issues : issue list -> (unit, string) result = function
    | [] -> Ok ()
    | issue :: rest ->
      let node = Dfg.op dfg issue.op in
      (match check_source issue node.Dfg.lhs issue.lhs_src with
       | Error _ as e -> e
       | Ok () ->
         (match check_source issue node.Dfg.rhs issue.rhs_src with
          | Error _ as e -> e
          | Ok () -> check_issues rest))
  in
  match write_conflict with
  | Some w -> Error (Printf.sprintf "double write to r%d in cycle %d" w.register w.cycle)
  | None ->
    if List.length t.issues <> n_ops then Error "issue count mismatch"
    else check_issues t.issues
