(** Datapath construction — from a binding to registers, muxes and a
    control schedule.

    A binding fixes which FU executes each operation; this module
    finishes the RT-level design: it allocates physical registers (by
    the left-edge algorithm over each FU's output-value lifetimes,
    matching the {!Rb_hls.Registers} cost model exactly), wires every
    FU operand port to its sources through multiplexers, and lays out
    the per-cycle control word. The result can be simulated
    cycle-accurately ({!Rtl_sim}) and emitted as Verilog
    ({!Verilog}). *)

module Dfg = Rb_dfg.Dfg

(** Where an FU operand port gets its value in a given cycle. *)
type source =
  | From_input of string  (** primary input port *)
  | From_const of int  (** hardwired constant *)
  | From_fu of int  (** another FU's output latch (bypass path) *)
  | From_register of int  (** physical register, global id *)

(** One operation issue: FU [fu] executes [op] in [cycle], reading its
    ports from [lhs_src]/[rhs_src]. *)
type issue = {
  op : Dfg.op_id;
  fu : int;
  cycle : int;
  lhs_src : source;
  rhs_src : source;
}

(** A register-file write: at the end of [cycle], register [register]
    captures FU [fu]'s result (the value of [op]). *)
type write = { register : int; cycle : int; fu : int; op : Dfg.op_id }

type t

val build : Rb_hls.Binding.t -> t
(** Elaborate a bound schedule into a datapath. Every operation gets an
    issue slot; every non-latch-bypassed value gets a register in its
    producer FU's bank. *)

val binding : t -> Rb_hls.Binding.t
val n_registers : t -> int
(** Physical registers allocated; equals {!Rb_hls.Registers.count} of
    the binding (the cost model and the constructor share the
    lifetime analysis). *)

val issues : t -> issue list
(** All issues, ordered by (cycle, fu). *)

val writes : t -> write list
(** All register writes, ordered by (cycle, register). *)

val register_of_value : t -> Dfg.op_id -> int option
(** The register holding an operation's result, or [None] when the
    value lives only in the producer's output latch. *)

val mux_inputs : t -> int
(** Total multiplexer fan-in across all FU ports: the sum over ports of
    (distinct sources - 1) when a port has more than one source. An
    interconnect-cost companion to the register count. *)

val source_pp : Format.formatter -> source -> unit

val validate : t -> (unit, string) result
(** Internal consistency: every issue's sources are defined at its
    cycle, no two writes hit one register in one cycle, every consumed
    value is readable where the issue expects it. Exercised by tests;
    [build] output always validates. *)
