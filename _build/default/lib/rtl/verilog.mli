(** Structural Verilog emission of a constructed datapath.

    Produces a synthesizable single-clock module: one input port per
    primary input, one output port per DFG output, a cycle counter FSM,
    the FU output latches, the allocated registers, and per-cycle mux
    selection encoded as [case] statements over the counter. The
    numbers in a comment header record the resource summary
    (registers, mux fan-in) so emitted files are self-describing.

    Emission is deterministic; the test suite checks structure (module
    header, port list, one [case] arm per active cycle) and resource
    counts rather than simulating Verilog. *)

val emit : ?module_name:string -> Datapath.t -> string
(** Render the module ([module_name] defaults to the DFG name). *)
