(** Cycle-accurate simulation of a constructed datapath.

    Drives the control schedule of a {!Datapath.t} one clock cycle at a
    time — reading FU operand ports through their selected sources,
    latching FU outputs, committing register-file writes at cycle
    boundaries — and returns each operation's computed result. Agreement
    with the dataflow executor {!Rb_sim.Exec.eval_clean} is the
    end-to-end proof that binding, register allocation and mux wiring
    preserve the kernel's semantics; {!check_trace} asserts it over a
    whole workload. *)

val run : Datapath.t -> Rb_sim.Trace.t -> sample:int -> int array
(** Simulate one sample; index the result by operation id. Raises
    [Invalid_argument] if the trace wraps a different DFG. *)

val check_trace : Datapath.t -> Rb_sim.Trace.t -> (unit, string) result
(** Compare {!run} against {!Rb_sim.Exec.eval_clean} on every sample;
    the error names the first mismatching (sample, op). *)
