module Dfg = Rb_dfg.Dfg
module Schedule = Rb_sched.Schedule
module Binding = Rb_hls.Binding
module Allocation = Rb_hls.Allocation
module Trace = Rb_sim.Trace
module Exec = Rb_sim.Exec

let run dp trace ~sample =
  let binding = Datapath.binding dp in
  let schedule = Binding.schedule binding in
  let dfg = Schedule.dfg schedule in
  if Dfg.name (Trace.dfg trace) <> Dfg.name dfg then
    invalid_arg "Rtl_sim.run: trace wraps a different DFG";
  let n_cycles = Schedule.n_cycles schedule in
  let registers = Array.make (max 1 (Datapath.n_registers dp)) 0 in
  let latches = Array.make (Allocation.total (Binding.allocation binding)) 0 in
  let results = Array.make (Dfg.op_count dfg) 0 in
  let read = function
    | Datapath.From_input name -> Trace.input_value trace ~sample ~input:name
    | Datapath.From_const c -> c
    | Datapath.From_fu fu -> latches.(fu)
    | Datapath.From_register r -> registers.(r)
  in
  for cycle = 0 to n_cycles - 1 do
    (* Read phase: all of this cycle's issues sample their sources
       against the pre-cycle state. *)
    let fired =
      List.filter_map
        (fun (i : Datapath.issue) ->
          if i.Datapath.cycle = cycle then begin
            let a = read i.Datapath.lhs_src and b = read i.Datapath.rhs_src in
            let kind = (Dfg.op dfg i.Datapath.op).Dfg.kind in
            let v = Dfg.eval_kind kind a b in
            results.(i.Datapath.op) <- v;
            Some (i.Datapath.fu, i.Datapath.op, v)
          end
          else None)
        (Datapath.issues dp)
    in
    (* Write phase: FU output latches, then register-file commits. *)
    List.iter (fun (fu, _, v) -> latches.(fu) <- v) fired;
    List.iter
      (fun (w : Datapath.write) ->
        if w.Datapath.cycle = cycle then registers.(w.Datapath.register) <- results.(w.Datapath.op))
      (Datapath.writes dp)
  done;
  results

let check_trace dp trace =
  let n = Trace.length trace in
  let rec go sample =
    if sample >= n then Ok ()
    else begin
      let rtl = run dp trace ~sample in
      let golden = Exec.eval_clean trace ~sample in
      let rec compare_ops op =
        if op >= Array.length rtl then None
        else if rtl.(op) <> golden.(op).Exec.result then Some op
        else compare_ops (op + 1)
      in
      match compare_ops 0 with
      | Some op ->
        Error
          (Printf.sprintf "sample %d op %d: RTL %d, dataflow %d" sample op rtl.(op)
             golden.(op).Exec.result)
      | None -> go (sample + 1)
    end
  in
  go 0
