module Minterm = Rb_dfg.Minterm
module Word = Rb_dfg.Word

type t = {
  scheme : Scheme.t;
  locks : (int * Minterm.Set.t) list; (* ascending fu id *)
}

let make ~scheme ~locks =
  if not (Scheme.static_locked_inputs scheme) then
    invalid_arg "Config.make: scheme lacks static locked inputs";
  let fus = List.map fst locks in
  let sorted = List.sort_uniq Int.compare fus in
  if List.length sorted <> List.length fus then invalid_arg "Config.make: duplicate FU";
  List.iter (fun fu -> if fu < 0 then invalid_arg "Config.make: negative FU id") fus;
  let locks =
    List.map
      (fun (fu, ms) ->
        if ms = [] then invalid_arg "Config.make: empty minterm list";
        (fu, Minterm.Set.of_list ms))
      locks
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  { scheme; locks }

let scheme t = t.scheme

let locked_fus t = List.map fst t.locks

let minterms_of t fu =
  match List.assoc_opt fu t.locks with
  | Some set -> set
  | None -> Minterm.Set.empty

let is_locked_input t ~fu m = Minterm.Set.mem m (minterms_of t fu)

let total_locked_minterms t =
  List.fold_left (fun acc (_, set) -> acc + Minterm.Set.cardinal set) 0 t.locks

let corrupt output = output lxor 1

let key_bits_per_fu t ~input_bits =
  let max_minterms =
    List.fold_left (fun acc (_, set) -> max acc (Minterm.Set.cardinal set)) 0 t.locks
  in
  Scheme.key_bits t.scheme ~minterms:max_minterms ~input_bits

let lambda_per_fu t =
  let input_bits = 2 * Word.width in
  List.fold_left
    (fun acc (_, set) ->
      let minterms = Minterm.Set.cardinal set in
      let key_bits = Scheme.key_bits t.scheme ~minterms ~input_bits in
      let l = Resilience.lambda_minterms ~key_bits ~correct_keys:1 ~input_bits ~minterms in
      min acc l)
    infinity t.locks

let with_minterms t locks = make ~scheme:t.scheme ~locks

let pp fmt t =
  Format.fprintf fmt "%s:" (Scheme.name t.scheme);
  List.iter
    (fun (fu, set) ->
      Format.fprintf fmt " FU%d{" fu;
      let first = ref true in
      Minterm.Set.iter
        (fun m ->
          if not !first then Format.pp_print_char fmt ' ';
          first := false;
          Minterm.pp fmt m)
        set;
      Format.pp_print_char fmt '}')
    t.locks
