(** A locking configuration over allocated functional units.

    The obfuscation-aware binding problem (Sec. IV) takes as input "1)
    the number of FUs locked, 2) the locking scheme used, and 3) the
    locked inputs"; this record is that specification. FU identities
    are the dense indices assigned at allocation time.

    Behavioural wrong-key semantics: a locked FU evaluated on one of
    its locked minterms produces {!corrupt}[ output] instead of the
    correct word — the module-level error event whose application-level
    count Eqn. 2 maximizes. Critical-minterm schemes guarantee the
    minterm set is static for (almost all) wrong keys, which is what
    makes this deterministic model faithful; see
    {!Rb_netlist.Lock.point_function} for the gate-level counterpart
    used in SAT experiments. *)

module Minterm = Rb_dfg.Minterm

type t

val make : scheme:Scheme.t -> locks:(int * Minterm.t list) list -> t
(** [make ~scheme ~locks] builds a configuration from per-FU locked
    minterm lists. Raises [Invalid_argument] on duplicate FU ids,
    negative FU ids, an empty minterm list for a locked FU, or a
    scheme without static locked inputs (Sec. IV requires
    critical-minterm locking). *)

val scheme : t -> Scheme.t

val locked_fus : t -> int list
(** FU ids carrying a lock, ascending. *)

val minterms_of : t -> int -> Minterm.Set.t
(** Locked minterms of an FU; empty for unlocked FUs. *)

val is_locked_input : t -> fu:int -> Minterm.t -> bool

val total_locked_minterms : t -> int

val corrupt : int -> int
(** Wrong-key output corruption applied by a locked FU on a locked
    minterm (bit-0 flip, the SFLL-style single-output-bit strip). *)

val key_bits_per_fu : t -> input_bits:int -> int
(** Key length each locked FU carries under the configured scheme. *)

val lambda_per_fu : t -> float
(** Worst-case (smallest) predicted SAT-attack iterations across the
    locked FUs, from {!Resilience.lambda_minterms} with one correct
    key. The SAT-attack model assumes scan access, so resilience is
    per-module (Sec. II-A): the weakest FU is the design's
    resilience. *)

val with_minterms : t -> (int * Minterm.t list) list -> t
(** Replace the minterm assignment, keeping scheme and FU set; used by
    the co-design search when it re-evaluates candidate assignments. *)

val pp : Format.formatter -> t -> unit
