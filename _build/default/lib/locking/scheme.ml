type family = Critical_minterm | Exponential_iteration_runtime

type t = Sfll_rem | Strong_anti_sat | Full_lock | Random_xor

let family = function
  | Sfll_rem | Strong_anti_sat -> Critical_minterm
  | Full_lock -> Exponential_iteration_runtime
  | Random_xor -> Critical_minterm

let name = function
  | Sfll_rem -> "SFLL-rem"
  | Strong_anti_sat -> "StrongAntiSAT"
  | Full_lock -> "Full-Lock"
  | Random_xor -> "RLL"

let key_bits t ~minterms ~input_bits =
  match t with
  | Sfll_rem -> minterms * input_bits
  | Strong_anti_sat ->
    (* one Anti-SAT block: two key-XORed copies of the input vector *)
    max (2 * input_bits) (minterms * input_bits)
  | Full_lock ->
    (* One control bit per swap pair per layer; layers chosen as
       2*log2(width) in Rb_netlist.Lock.permutation_network users. *)
    let layers = max 2 (2 * int_of_float (Float.round (Float.log2 (float_of_int input_bits)))) in
    layers * (input_bits / 2)
  | Random_xor -> max minterms input_bits

let static_locked_inputs = function
  | Sfll_rem | Strong_anti_sat -> true
  | Full_lock | Random_xor -> false

let pp fmt t = Format.pp_print_string fmt (name t)
