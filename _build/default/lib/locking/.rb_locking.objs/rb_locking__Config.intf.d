lib/locking/config.mli: Format Rb_dfg Scheme
