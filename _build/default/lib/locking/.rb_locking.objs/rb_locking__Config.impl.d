lib/locking/config.ml: Format Int List Rb_dfg Resilience Scheme
