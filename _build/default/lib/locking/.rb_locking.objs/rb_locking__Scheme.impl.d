lib/locking/scheme.ml: Float Format
