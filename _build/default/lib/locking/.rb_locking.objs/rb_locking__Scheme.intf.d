lib/locking/scheme.mli: Format
