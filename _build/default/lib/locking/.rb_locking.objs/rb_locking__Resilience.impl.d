lib/locking/resilience.ml: Float
