lib/locking/resilience.mli:
