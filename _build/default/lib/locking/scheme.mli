(** Logic-locking scheme taxonomy (paper Sec. II-A).

    The paper works with two families. {e Critical-minterm} schemes
    (SFLL [3-5], Strong Anti-SAT [6]) let the designer choose the
    corrupted minterms, keep them static across wrong keys, and get SAT
    resilience that scales with key length via Eqn. 1. {e Exponential
    SAT-iteration-runtime} schemes (Full-Lock [7], LoPher [8],
    Cross-Lock [9]) instead blow up per-iteration solver time, at heavy
    area/power cost. The binding algorithms require the former; the
    Sec. V-C methodology composes both. *)

type family =
  | Critical_minterm
      (** designer-chosen, key-independent corrupted minterms *)
  | Exponential_iteration_runtime
      (** per-SAT-iteration runtime grows exponentially *)

type t =
  | Sfll_rem  (** stripped-functionality locking, fault-based variant [5] *)
  | Strong_anti_sat  (** Strong Anti-SAT block [6] *)
  | Full_lock  (** keyed routing (permutation) network [7] *)
  | Random_xor  (** traditional XOR/XNOR key gates — the SAT-weak strawman *)

val family : t -> family

val name : t -> string

val key_bits : t -> minterms:int -> input_bits:int -> int
(** Key length of the scheme when protecting [minterms] patterns on a
    unit with [input_bits] primary input bits; mirrors the gate-level
    constructions in {!Rb_netlist.Lock}. *)

val static_locked_inputs : t -> bool
(** Whether the corrupted minterm set is static across wrong keys —
    the assumption obfuscation-aware binding needs (Sec. IV). *)

val pp : Format.formatter -> t -> unit
