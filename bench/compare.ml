(* Perf-regression gate over two BENCH.json files (as written by
   main.exe --metrics). Thin CLI over Rb_util.Bench_diff: counters are
   compared exactly by default (they are deterministic work counts —
   any drift means behaviour changed), wall-clock one-sided with a
   relative tolerance.

   Usage:
     compare.exe [--wall-tol FRAC] [--counter-tol FRAC] [--allow-new]
                 BASELINE CURRENT

   Exit status: 0 = within tolerances, 1 = regression(s), 2 = bad
   usage or malformed input. *)

module Bench_diff = Rb_util.Bench_diff

let usage () =
  Printf.eprintf
    "usage: compare.exe [--wall-tol FRAC] [--counter-tol FRAC] [--allow-new] \
     BASELINE CURRENT\n\
     FRAC is a relative fraction: --wall-tol 0.5 allows +50%% wall-clock.\n\
     Counters are exact (tolerance 0) unless --counter-tol is given.\n\
     --allow-new tolerates counters absent from the baseline (noted on \
     stderr);\n\
     by default they fail the gate.\n"

let parse_frac flag s =
  match float_of_string_opt s with
  | Some f when f >= 0.0 && Float.is_finite f -> f
  | _ ->
    Printf.eprintf "%s expects a non-negative number, got %S\n" flag s;
    exit 2

let () =
  let wall_tol = ref 0.5 in
  let counter_tol = ref 0.0 in
  let allow_new = ref false in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--wall-tol" :: v :: rest ->
      wall_tol := parse_frac "--wall-tol" v;
      parse rest
    | "--counter-tol" :: v :: rest ->
      counter_tol := parse_frac "--counter-tol" v;
      parse rest
    | "--allow-new" :: rest ->
      allow_new := true;
      parse rest
    | [ ("--wall-tol" | "--counter-tol") as flag ] ->
      Printf.eprintf "%s expects a value\n" flag;
      exit 2
    | ("--help" | "-h") :: _ ->
      usage ();
      exit 0
    | arg :: _ when String.length arg >= 2 && String.sub arg 0 2 = "--" ->
      Printf.eprintf "unknown option %s\n" arg;
      usage ();
      exit 2
    | file :: rest ->
      files := file :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline, current =
    match List.rev !files with
    | [ b; c ] -> (b, c)
    | _ ->
      usage ();
      exit 2
  in
  match
    Bench_diff.compare_files ~wall_tol:!wall_tol ~counter_tol:!counter_tol
      ~allow_new:!allow_new ~baseline ~current ()
  with
  | Error msg ->
    Printf.eprintf "compare: %s\n" msg;
    exit 2
  | Ok report ->
    List.iter
      (fun v -> Printf.printf "FAIL %s\n" (Bench_diff.describe v))
      report.Bench_diff.violations;
    (* Notes go to stderr so tooling diffing the gate's stdout sees
       only pass/fail content. *)
    List.iter
      (fun a -> Printf.eprintf "note: only in current run: %s\n" a)
      report.Bench_diff.additions;
    if report.Bench_diff.violations = [] then begin
      Printf.printf
        "perf gate OK: %d sections, %d counters checked (wall tol +%.0f%%, counter tol %.0f%%)\n"
        report.Bench_diff.sections_checked report.Bench_diff.counters_checked
        (100.0 *. !wall_tol) (100.0 *. !counter_tol);
      exit 0
    end
    else begin
      Printf.printf "perf gate FAILED: %d violation(s)\n"
        (List.length report.Bench_diff.violations);
      exit 1
    end
