(* The evaluation harness: regenerates every table and figure of the
   paper's Sec. VI (plus the analytical/gate-level results it builds
   on), and ends with Bechamel runtime microbenches of each registered
   binder.

   Experiment sections are split compute/render: Rb_core.Experiments
   and Rb_core.Ablation produce records (fanned out over the worker
   pool), Rb_core.Render turns them into the tables printed here. All
   tables go to stdout and are byte-identical for any --jobs value;
   per-section wall-clock goes to stderr.

   Usage:
     main.exe [--jobs N] [--sections a,b,...] [--list-sections]
              [--metrics FILE] [--checkpoint FILE] [--resume]
              [--solver-budget N] [SECTION...]

     --jobs N        worker domains (default: available cores; 1 = no
                     worker domains, everything runs inline)
     --sections ...  comma-separated subset to run (same as naming
                     sections positionally)
     --list-sections print the section names and exit
     --metrics FILE  write a machine-readable BENCH.json: one record
                     per section (name, wall-clock, deterministic
                     counter deltas) plus the full end-of-run metric
                     snapshot; bench/compare.exe diffs two such files
     --checkpoint F  journal completed sweep chunks to F (JSON lines,
                     flushed per record); SIGINT flushes it and exits
                     130, so an interrupted sweep loses nothing
     --resume        replay chunks already in the --checkpoint journal
                     instead of recomputing them; stdout is
                     byte-identical to an uninterrupted run
     --solver-budget N  cap every SAT-attack miter solve at N CDCL
                     conflicts; exhausted cells render as
                     "limit:<reason>@<iterations>" instead of hanging

   Rb_util.Metrics collection is always on here: per-section
   wall-clock is reported once, in section order, on stderr after the
   run (never interleaved into section output), and stdout stays
   byte-identical across --jobs values because only deterministic
   counters — never timings — feed anything printed there. *)

module Dfg = Rb_dfg.Dfg
module Workload = Rb_workload.Benchmark
module Kmatrix = Rb_sim.Kmatrix
module Allocation = Rb_hls.Allocation
module Profile = Rb_hls.Profile
module Binder = Rb_hls.Binder
module Experiments = Rb_core.Experiments
module Ablation = Rb_core.Ablation
module Render = Rb_core.Render
module Codesign = Rb_core.Codesign
module Methodology = Rb_core.Methodology
module Resilience = Rb_locking.Resilience
module Scheme = Rb_locking.Scheme
module Lock = Rb_netlist.Lock
module Circuits = Rb_netlist.Circuits
module Netlist = Rb_netlist.Netlist
module Attack = Rb_sat.Attack
module Solver = Rb_sat.Solver
module Table = Rb_util.Table
module Rng = Rb_util.Rng
module Pool = Rb_util.Pool
module Metrics = Rb_util.Metrics
module Json = Rb_util.Json
module Limits = Rb_util.Limits
module Checkpoint = Rb_util.Checkpoint

let section name =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 72 '=') name (String.make 72 '=')

(* ------------------------------------------------- experiment sections *)

(* Sections built around the shared pool: contexts and the
   configuration sweep are computed once (lazily, in parallel) and
   reused by every section that needs them. *)
let experiment_sections pool journal =
  let contexts =
    lazy
      (Pool.map_list pool
         ~f:(fun b ->
           let schedule = Workload.schedule b in
           let trace = Workload.trace b in
           Experiments.context ~name:b.Workload.name schedule trace)
         (Workload.all ()))
  in
  let suite =
    lazy
      (Experiments.sweep_suite ~pool ?journal ~max_combos_per_config:2000
         ~max_optimal_assignments:200_000 (Lazy.force contexts))
  in
  let fig4 () =
    section
      "Fig. 4 - increase in application errors of locking under security-aware\n\
       binding, vs area-aware [20] and power-aware [19] binding with identical\n\
       locking configurations (mean over {1,2,3} locked FUs x {1,2,3} locked\n\
       inputs x candidate-input combinations; log-scale bars)";
    print_string
      (Render.fig4
         ~rows:(Experiments.fig4_rows (Lazy.force suite))
         ~concentrations:(Experiments.concentrations (Lazy.force contexts)))
  in
  let fig5 () =
    section
      "Fig. 5 - error increase vs locking configuration (pooled over all\n\
       benchmarks and kinds; co-design = P-time heuristic, as in the paper)";
    let s = Lazy.force suite in
    print_string
      (Render.fig5
         ~cells:(Experiments.fig5_cells (Experiments.pooled_results s))
         ~reduced:(Experiments.reduced_optimal_runs s))
  in
  let fig6 () =
    section
      "Fig. 6 - design overhead of security-aware binding (registers vs the\n\
       register-minimizing binder; switching rate vs the switching-minimizing\n\
       binder), averaged over the locking-configuration sweep";
    print_string
      (Render.fig6 (Experiments.overhead_suite ~pool ~combos_per_config:8
                      (Lazy.force contexts)))
  in
  let headline () =
    section "Headline numbers (paper abstract: 26x and 99x; heuristic within 0.5%)";
    print_string (Render.headline (Experiments.headline (Lazy.force suite)))
  in
  let quality () =
    section
      "Error quality (Sec. III) - measured wrong-key corruption of one\n\
       co-designed locking configuration (2 FUs x 2 minterms) replayed through\n\
       the trace simulator under the area-aware baseline binding and under the\n\
       co-designed binding";
    let trace_of ctx = Workload.trace (Workload.find ctx.Experiments.benchmark) in
    print_string
      (Render.quality (Experiments.quality_suite ~pool ~trace_of (Lazy.force contexts)))
  in
  let postlock () =
    section
      "Post-binding locking (the abstract's closing claim) - at a fixed 32-bit\n\
       key budget, the minterms each approach must lock to reach the SAME\n\
       application-error level, and the Eqn. 1 resilience it is left with";
    print_string
      (Render.post_binding (Experiments.post_binding_suite ~pool (Lazy.force contexts)))
  in
  let ablation () =
    section
      "Ablations - design knobs the paper leaves open, quantified\n\
       (candidate selection, Sec. V-B.1; workload generalization; profiling\n\
       budget; allocation and scheduler sensitivity)";
    let ctx_named name =
      List.find (fun c -> c.Experiments.benchmark = name) (Lazy.force contexts)
    in
    let strategies =
      List.map
        (fun (name, kind) ->
          (name, kind, Ablation.candidate_strategies (ctx_named name) kind))
        [ ("dct", Dfg.Mul); ("ecb_enc4", Dfg.Add); ("fft", Dfg.Add) ]
    in
    let generalization =
      Pool.map_list pool
        ~f:(fun (name, kind) ->
          let b = Workload.find name in
          ( name, kind,
            Ablation.generalization (Workload.schedule b) (Workload.trace b) kind ))
        [ ("dct", Dfg.Mul); ("fir", Dfg.Add); ("jdmerge3", Dfg.Add);
          ("motion3", Dfg.Add) ]
    in
    let dct = Workload.find "dct" in
    let budget =
      Ablation.profiling_budget (Workload.schedule dct) (Workload.trace dct) Dfg.Mul
    in
    let make_trace () = Workload.trace dct in
    let sensitivity =
      Ablation.allocation_sensitivity dct.Workload.dfg make_trace
      @ Ablation.scheduler_sensitivity dct.Workload.dfg make_trace
    in
    print_string
      (Render.ablation ~strategies ~generalization
         ~budget_title:
           "profiling-budget sensitivity (dct multipliers, replayed on 256 samples)"
         ~budget
         ~sensitivity_title:"sensitivity of the obf-aware error increase (dct, adders)"
         ~sensitivity)
  in
  [
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("headline", headline);
    ("quality", quality);
    ("postlock", postlock);
    ("ablation", ablation);
  ]

(* ----------------------------------------------------------------- eqn1 *)

let eqn1 () =
  section
    "Eqn. 1 - expected SAT-attack iterations vs locked-input count\n\
     (16-bit FU input space, 1 correct key; 'inf' = attack not expected to\n\
     converge because a DIP eliminates < 1 wrong key in expectation)";
  let minterm_counts = [ 1; 2; 3; 8; 64; 1024; 16384 ] in
  let table =
    Table.create ~title:"lambda(key bits, locked inputs)"
      ~columns:(List.map string_of_int minterm_counts)
  in
  List.iter
    (fun key_bits ->
      let cells =
        List.map
          (fun minterms ->
            let l =
              Resilience.lambda_minterms ~key_bits ~correct_keys:1 ~input_bits:16
                ~minterms
            in
            if l = infinity then "inf" else Printf.sprintf "%.0f" l)
          minterm_counts
      in
      Table.add_text_row table ~label:(Printf.sprintf "%d-bit key" key_bits) ~cells)
    [ 16; 17; 20; 24; 32; 48 ];
  Table.print table;
  print_newline ();
  let budget =
    Resilience.max_minterms_for ~key_bits:20 ~correct_keys:1 ~input_bits:16
      ~min_lambda:10_000.0
  in
  Printf.printf
    "Resilience budget example: a 20-bit key targeting >= 10^4 iterations may\n\
     lock at most %d minterms - the budget the binding algorithms then spend.\n"
    budget

(* ------------------------------------------------------------ sat-attack *)

let sat_attack ~limit () =
  section
    "SAT attack (Sec. II) - measured DIP iterations on locked adders, next to\n\
     the Eqn. 1 prediction; the corruption/resilience trade-off, empirically";
  let table =
    Table.create ~title:"oracle-guided attack [10] (incremental CDCL, one solver per attack)"
      ~columns:
        [ "inputs"; "key bits"; "locked minterms"; "iterations"; "Eqn.1 lambda";
          "conflicts"; "gates" ]
  in
  (* Solver effort is reported as CDCL conflicts, not seconds: conflicts
     are a deterministic work count (identical for every --jobs value and
     machine), so this table stays byte-comparable; wall-clock lives in
     the sat/solve timer of the metrics snapshot. *)
  let m_conflicts = Metrics.counter ~scope:"sat" "conflicts" in
  let rng = Rng.create 424242 in
  let attack_case ~label ~base ~locked ~epsilon_minterms =
    let n_in = Netlist.n_inputs base in
    let key_bits = Netlist.n_keys locked.Lock.circuit in
    let c0 = Metrics.counter_value m_conflicts in
    let iterations =
      match Attack.attack_locked ~max_iterations:20_000 ~limit locked with
      | Attack.Broken { key; iterations } ->
        assert (Attack.key_is_correct locked key);
        string_of_int iterations
      | Attack.Budget_exceeded { iterations } -> Printf.sprintf ">%d" iterations
      (* Budget-exhausted cells are marked, not dropped: the row keeps
         its place in the table and says why the number is partial. *)
      | Attack.Solver_limit { iterations; reason } ->
        Printf.sprintf "limit:%s@%d" (Limits.reason_label reason) iterations
    in
    let conflicts = Metrics.counter_value m_conflicts - c0 in
    let lambda =
      match epsilon_minterms with
      | None -> "-"
      | Some m ->
        let l =
          Resilience.lambda_minterms ~key_bits ~correct_keys:1 ~input_bits:n_in
            ~minterms:m
        in
        if l = infinity then "inf" else Printf.sprintf "%.0f" l
    in
    Table.add_text_row table ~label
      ~cells:
        [
          string_of_int n_in;
          string_of_int key_bits;
          (match epsilon_minterms with None -> "~half space" | Some m -> string_of_int m);
          iterations;
          lambda;
          string_of_int conflicts;
          string_of_int (Netlist.n_gates locked.Lock.circuit);
        ]
  in
  List.iter
    (fun width ->
      let base = Circuits.adder ~width in
      attack_case
        ~label:(Printf.sprintf "RLL, %d-bit adder" width)
        ~base
        ~locked:(Lock.xor_random ~rng ~key_bits:(2 * width) base)
        ~epsilon_minterms:None;
      let space = 1 lsl (2 * width) in
      List.iter
        (fun h ->
          let minterms = List.init h (fun _ -> Rng.int rng space) in
          attack_case
            ~label:(Printf.sprintf "point function h=%d, %d-bit adder" h width)
            ~base
            ~locked:(Lock.point_function ~minterms base)
            ~epsilon_minterms:(Some h))
        (* h=2 at width 5 runs ~1000 DIPs through ever-growing CNFs:
           minutes, not insight — the width-4 row already shows the
           trend. *)
        (if width >= 5 then [ 1 ] else [ 1; 2 ]);
      attack_case
        ~label:(Printf.sprintf "permnet 4 layers, %d-bit adder" width)
        ~base
        ~locked:(Lock.permutation_network ~rng ~layers:4 base)
        ~epsilon_minterms:None)
    [ 3; 4; 5 ];
  Table.print table;
  (* The approximate attack (Shamsi et al. [12], AppSAT-style): what an
     attacker gets by stopping early. *)
  let approx =
    Table.create
      ~title:"approximate attack: 10-DIP budget + random queries (4-bit adder)"
      ~columns:[ "exact convergence"; "residual error rate" ]
  in
  let approx_case label locked =
    let outcome = Attack.approximate ~dip_budget:10 ~limit locked in
    Table.add_text_row approx ~label
      ~cells:
        [
          (if outcome.Attack.converged then "yes" else "no");
          Printf.sprintf "%.3f" outcome.Attack.estimated_error_rate;
        ]
  in
  let base = Circuits.adder ~width:4 in
  approx_case "RLL, 16 key bits" (Lock.xor_random ~rng ~key_bits:16 base);
  approx_case "point function h=1" (Lock.point_function ~minterms:[ 0x42 ] base);
  approx_case "point function h=3"
    (Lock.point_function ~minterms:[ 0x42; 0x17; 0xA5 ] base);
  print_newline ();
  Table.print approx;
  Printf.printf
    "\nThe approximate attacker settles for a key with tiny residual error -\n\
     exactly the argument ([12], Sec. I) for injecting errors the application\n\
     actually feels, which is what security-aware binding buys.\n";
  Printf.printf
    "\nShape check: RLL falls in a handful of DIPs; point functions cost the\n\
     attacker far more queries per locked minterm (and Eqn. 1 tracks the\n\
     growth); the permutation network's resilience lies in solver effort\n\
     (conflicts) per iteration and gate overhead, not DIP count - why Sec. V-C\n\
     treats it as a costly top-up, not a primary scheme.\n"

(* ----------------------------------------------------- attack-portfolio *)

(* Portfolio determinism demonstrated, not just claimed: every case runs
   twice — portfolio 1 inline, then portfolio 4 racing on the pool — and
   the table's last column checks the full observable result (outcome,
   recovered key, AND the DIP sequence via the on_dip hook) for equality.
   Member 0 owns the DIP sequence and the key is the canonical lex-min
   consistent one, so "identical" is a contract, not luck. *)
let attack_portfolio ~pool ~limit () =
  section
    "Portfolio SAT attack - diversified solver configurations race each miter\n\
     round with clause sharing; the deterministic-result contract in action\n\
     (same DIPs, same key, at every portfolio size; racing walls on stderr)";
  let table =
    Table.create ~title:"incremental attack: portfolio 1 (reference) vs 4 (racing)"
      ~columns:[ "key bits"; "iterations"; "recovered key"; "portfolio-4 result" ]
  in
  let p1_wall = ref 0.0 in
  let p4_wall = ref 0.0 in
  let run ?pool ~portfolio ~wall locked =
    let dips = ref [] in
    let t0 = Metrics.now_s () in
    let outcome =
      Attack.attack_locked ~max_iterations:20_000 ~limit ?pool ~portfolio
        ~on_dip:(fun d -> dips := d :: !dips)
        locked
    in
    wall := !wall +. (Metrics.now_s () -. t0);
    (outcome, List.rev !dips)
  in
  let case ~label locked =
    let key_bits = Netlist.n_keys locked.Lock.circuit in
    let reference = run ~portfolio:1 ~wall:p1_wall locked in
    (* The racing run's solver counters (sat/* work, imported clauses)
       depend on which member wins each round, so they are suspended to
       keep the regression-gated counter snapshot deterministic. *)
    Metrics.set_enabled false;
    let racing =
      Fun.protect
        ~finally:(fun () -> Metrics.set_enabled true)
        (fun () -> run ~pool ~portfolio:4 ~wall:p4_wall locked)
    in
    let iterations, key =
      match fst reference with
      | Attack.Broken { iterations; key } ->
        ( string_of_int iterations,
          String.init (Array.length key) (fun i -> if key.(i) then '1' else '0') )
      | Attack.Budget_exceeded { iterations } -> (Printf.sprintf ">%d" iterations, "-")
      | Attack.Solver_limit { iterations; reason } ->
        (Printf.sprintf "limit:%s@%d" (Limits.reason_label reason) iterations, "-")
    in
    Table.add_text_row table ~label
      ~cells:
        [
          string_of_int key_bits;
          iterations;
          key;
          (if reference = racing then "identical" else "DIVERGED");
        ]
  in
  let rng = Rng.create 98765 in
  let base4 = Circuits.adder ~width:4 in
  let base5 = Circuits.adder ~width:5 in
  case ~label:"RLL, 5-bit adder" (Lock.xor_random ~rng ~key_bits:10 base5);
  case ~label:"point function h=1, 4-bit adder"
    (Lock.point_function ~minterms:[ Rng.int rng 256 ] base4);
  case ~label:"point function h=2, 4-bit adder"
    (Lock.point_function ~minterms:[ Rng.int rng 256; Rng.int rng 256 ] base4);
  case ~label:"point function h=1, 5-bit adder"
    (Lock.point_function ~minterms:[ Rng.int rng 1024 ] base5);
  case ~label:"permnet 4 layers, 4-bit adder"
    (Lock.permutation_network ~rng ~layers:4 base4);
  Table.print table;
  Printf.printf
    "\nBoth columns of every row came from the same circuit attacked at two\n\
     parallelism settings: member 0 owns the DIP sequence (helpers only race\n\
     UNSAT proofs and share clauses), and the recovered key is the\n\
     lexicographically smallest consistent one - so the report bytes cannot\n\
     depend on which racing member happens to win a round.\n";
  let speedup = if !p4_wall > 0.0 then !p1_wall /. !p4_wall else 1.0 in
  Metrics.set_gauge (Metrics.gauge ~scope:"runtime" "attack portfolio-1 wall-s") !p1_wall;
  Metrics.set_gauge (Metrics.gauge ~scope:"runtime" "attack portfolio-4 wall-s") !p4_wall;
  Metrics.set_gauge (Metrics.gauge ~scope:"runtime" "attack portfolio speedup") speedup;
  Printf.eprintf "  [attack-portfolio: p1 %.2fs, p4 %.2fs, %.2fx]\n" !p1_wall !p4_wall
    speedup

(* ----------------------------------------------------------- analysis *)

let static_analysis () =
  section
    "Static analysis - the oracle-less attacker: per-scheme vulnerability of the\n\
     lock-scheme zoo under constant-propagation key inference, probability\n\
     profiling and structural removal (no oracle queries at all)";
  let table =
    Table.create ~title:"oracle-less battery (Rb_analysis, fixed seed)"
      ~columns:
        [ "keys"; "inferable"; "recovered"; "skewed"; "dead"; "SCCs"; "removed";
          "static-res" ]
  in
  let analyze_case ~label ?correct_key circuit =
    let r = Rb_analysis.Report.analyze ~subject:label circuit in
    (* "recovered" scores the inferred values against the known correct
       key: inference is only an attack if the bits are right. *)
    let recovered =
      match correct_key with
      | None -> "-"
      | Some key ->
        let right =
          List.length
            (List.filter
               (fun (i : Rb_analysis.Attacks.inference) ->
                 key.(i.Rb_analysis.Attacks.bit) = i.Rb_analysis.Attacks.value)
               r.Rb_analysis.Report.inferable)
        in
        Printf.sprintf "%d/%d" right (Array.length key)
    in
    Table.add_text_row table ~label
      ~cells:
        [
          string_of_int r.Rb_analysis.Report.n_keys;
          string_of_int (List.length r.Rb_analysis.Report.inferable);
          recovered;
          string_of_int (List.length r.Rb_analysis.Report.skewed);
          string_of_int r.Rb_analysis.Report.dead_gates;
          string_of_int r.Rb_analysis.Report.cycles;
          string_of_int r.Rb_analysis.Report.gates_removed;
          Printf.sprintf "%.2f" r.Rb_analysis.Report.static_resilience;
        ]
  in
  let rng = Rng.create 31337 in
  let base = Circuits.adder ~width:4 in
  let locked_case ~label (locked : Lock.locked) =
    analyze_case ~label ~correct_key:locked.Lock.correct_key locked.Lock.circuit
  in
  locked_case ~label:"RLL, 8 key bits" (Lock.xor_random ~rng ~key_bits:8 base);
  let space = 1 lsl 8 in
  locked_case ~label:"point function h=2"
    (Lock.point_function ~minterms:[ Rng.int rng space; Rng.int rng space ] base);
  locked_case ~label:"anti-SAT" (Lock.anti_sat ~rng base);
  locked_case ~label:"permnet 3 layers"
    (Lock.permutation_network ~rng ~layers:3 base);
  (* A deliberately cyclic circuit (SRCLock-flavoured): the engine must
     report the SCC instead of diverging. Gate nets start at 2 here
     (1 input + 1 key): gate 0 reads gate 1's net and vice versa. *)
  let cyclic =
    Netlist.unchecked ~n_inputs:1 ~n_keys:1
      ~gates:[| Netlist.And (3, 0); Netlist.Or (2, 1) |]
      ~outputs:[| 3 |]
  in
  analyze_case ~label:"cyclic fixture (unchecked)" cyclic;
  Table.print table;
  Printf.printf
    "\nRLL falls without a single oracle query - every XOR/XNOR repair gate\n\
     betrays its polarity, and removal strips the lock clean. The SAT-hard\n\
     schemes (point function, anti-SAT, permnet) expose no key bits to the\n\
     static battery: their key logic is comparator-shaped, which constant\n\
     propagation cannot pierce - the structural complement of the Eqn. 1\n\
     oracle-resilience the sat-attack section measures.\n"

(* ------------------------------------------------------- solver-bench *)

(* CDCL microbench: pinned CNF instances solved inline, never on the
   pool. Random 3-SAT around the phase-transition ratio exercises the
   search heuristics (VSIDS, restarts, phase saving); pigeonhole
   instances force deep resolution proofs and so exercise conflict
   analysis and the learnt database. Everything is generated from
   fixed seeds and solved by the (deterministic) solver, so the table
   of work counters is byte-identical on every machine and --jobs
   value; wall-clock and propagations/second go to stderr and the
   runtime gauges, where the perf gate and dashboards look for them. *)

let add_random_3sat s rng ~nvars ~nclauses =
  ignore (Solver.new_vars s nvars);
  for _ = 1 to nclauses do
    let rec pick_distinct () =
      let a = 1 + Rng.int rng nvars in
      let b = 1 + Rng.int rng nvars in
      let c = 1 + Rng.int rng nvars in
      if a = b || b = c || a = c then pick_distinct () else (a, b, c)
    in
    let a, b, c = pick_distinct () in
    let sign x = if Rng.bool rng then x else -x in
    Solver.add_clause s [ sign a; sign b; sign c ]
  done

(* [holes + 1] pigeons into [holes] holes: unsatisfiable, with only
   exponential-size resolution proofs. Variable p*holes+h+1 means
   "pigeon p sits in hole h". *)
let add_pigeonhole s ~holes =
  let pigeons = holes + 1 in
  ignore (Solver.new_vars s (pigeons * holes));
  let v p h = (p * holes) + h + 1 in
  for p = 0 to pigeons - 1 do
    Solver.add_clause s (List.init holes (fun h -> v p h))
  done;
  for h = 0 to holes - 1 do
    for p = 0 to pigeons - 1 do
      for q = p + 1 to pigeons - 1 do
        Solver.add_clause s [ -v p h; -v q h ]
      done
    done
  done

let solver_bench () =
  section
    "CDCL solver microbench - pinned instances, inline; the table shows\n\
     deterministic work counters only (wall-clock goes to stderr)";
  let table =
    Table.create ~title:"cdcl microbench (fixed seeds)"
      ~columns:
        [ "vars"; "verdict"; "decisions"; "conflicts"; "propagations";
          "learned" ]
  in
  let case ~label build =
    let s = Solver.create () in
    build s;
    let st0 = Solver.stats s in
    let t0 = Metrics.now_s () in
    let verdict =
      match Solver.solve s with
      | Solver.Sat -> "sat"
      | Solver.Unsat -> "unsat"
      | Solver.Unknown _ -> "unknown"
    in
    let wall = Metrics.now_s () -. t0 in
    let st1 = Solver.stats s in
    let d f = f st1 - f st0 in
    let props = d (fun (st : Solver.stats) -> st.propagations) in
    let props_per_s = if wall > 0. then float_of_int props /. wall else 0. in
    Metrics.set_gauge
      (Metrics.gauge ~scope:"runtime" ("solver-bench/" ^ label ^ " props-per-s"))
      props_per_s;
    Printf.eprintf "  %-34s %8.4f s %12.0f props/s
" label wall props_per_s;
    (* Clause count is not read back from the solver on purpose: the
       generators above fix it, and unit/duplicate simplification at
       add time is an implementation detail the table must not track. *)
    Table.add_text_row table ~label
      ~cells:
        [
          string_of_int (Solver.n_vars s);
          verdict;
          string_of_int (d (fun (st : Solver.stats) -> st.decisions));
          string_of_int (d (fun (st : Solver.stats) -> st.conflicts));
          string_of_int props;
          string_of_int (d (fun (st : Solver.stats) -> st.learned));
        ]
  in
  case ~label:"3-sat 150v r=4.1 seed=11" (fun s ->
      add_random_3sat s (Rng.create 11) ~nvars:150 ~nclauses:615);
  case ~label:"3-sat 180v r=4.26 seed=12" (fun s ->
      add_random_3sat s (Rng.create 12) ~nvars:180 ~nclauses:767);
  case ~label:"3-sat 130v r=5.0 seed=14" (fun s ->
      add_random_3sat s (Rng.create 14) ~nvars:130 ~nclauses:650);
  case ~label:"pigeonhole 7 into 6" (fun s -> add_pigeonhole s ~holes:6);
  case ~label:"pigeonhole 8 into 7" (fun s -> add_pigeonhole s ~holes:7);
  Table.print table

(* ----------------------------------------------------------- methodology *)

let methodology () =
  section "Sec. V-C methodology - minimum locked inputs meeting designer goals";
  let table =
    Table.create ~title:"fir benchmark, 1 locked adder FU, 18-bit key budget"
      ~columns:
        [ "target errors"; "min lambda"; "|M| chosen"; "achieved"; "lambda"; "top-up" ]
  in
  let bench = Workload.find "fir" in
  let schedule = Workload.schedule bench in
  let trace = Workload.trace bench in
  let allocation = Allocation.for_schedule schedule in
  let k = Kmatrix.build trace in
  let candidates = Array.of_list (Kmatrix.top_minterms ~kind:Dfg.Add k ~n:10) in
  List.iter
    (fun (label, goal) ->
      let plan =
        Methodology.design ~key_bits:18 k schedule allocation ~scheme:Scheme.Sfll_rem
          ~locked_fus:[ 0 ] ~candidates goal
      in
      Table.add_text_row table ~label
        ~cells:
          [
            string_of_int goal.Methodology.target_error_events;
            Printf.sprintf "%.0e" goal.Methodology.min_lambda;
            (match plan.Methodology.stopped with
            | None -> string_of_int plan.Methodology.minterms_per_fu
            | Some reason ->
              (* The search was interrupted: the budget shown is the
                 largest one evaluated, not the converged answer. *)
              Printf.sprintf "%d (stopped: %s)" plan.Methodology.minterms_per_fu
                (Limits.reason_label reason));
            string_of_int plan.Methodology.achieved_errors;
            (if plan.Methodology.predicted_lambda = infinity then "inf"
             else Printf.sprintf "%.0f" plan.Methodology.predicted_lambda);
            (if plan.Methodology.exponential_topup then "permnet" else "none");
          ])
    [
      ("modest", { Methodology.target_error_events = 50; min_lambda = 1e3 });
      ("median", { Methodology.target_error_events = 600; min_lambda = 1e3 });
      ("demanding", { Methodology.target_error_events = 1_200; min_lambda = 1e3 });
      ("extreme", { Methodology.target_error_events = 1_200; min_lambda = 1e7 });
    ];
  Table.print table

(* -------------------------------------------------------------- runtime *)

let runtime () =
  section "Runtime - Bechamel microbenches (P-time claims of Secs. IV-C and V-B)";
  let bench = Workload.find "dct" in
  let schedule = Workload.schedule bench in
  let trace = Workload.trace bench in
  let allocation = Allocation.for_schedule schedule in
  let k = Kmatrix.build trace in
  let profile = Profile.build trace in
  let candidates = Array.of_list (Kmatrix.top_minterms ~kind:Dfg.Add k ~n:10) in
  let config =
    Rb_locking.Config.make ~scheme:Scheme.Sfll_rem
      ~locks:[ (0, [ candidates.(0); candidates.(1) ]) ]
  in
  let input = { Binder.schedule; allocation; profile; k; config; candidates } in
  let open Bechamel in
  (* One microbench per registered binder (all run on the same dct
     input: 1 locked FU x 2 minterms, |C|=10), plus the two hot
     non-binder kernels. *)
  let tests =
    List.map
      (fun name ->
        let (module B : Binder.S) = Binder.require name in
        Test.make
          ~name:(Printf.sprintf "%s binder (dct)" B.name)
          (Staged.stage (fun () -> ignore (B.bind input))))
      (Binder.names ())
    @ [
        Test.make ~name:"K-matrix build (dct, 256 samples)"
          (Staged.stage (fun () -> ignore (Kmatrix.build trace)));
        Test.make ~name:"Hungarian 8x8"
          (let m =
             Array.init 8 (fun i ->
                 Array.init 8 (fun j -> float_of_int (((i * 31) + (j * 17)) mod 23)))
           in
           Staged.stage (fun () -> ignore (Rb_matching.Hungarian.min_cost_assignment m)));
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) () in
  (* Measured estimates are timings, so per the determinism contract
     they go to stderr (stdout stays byte-identical across --jobs) and
     into runtime/ gauges, which --metrics captures in BENCH.json. *)
  Printf.printf
    "  measured ns/run estimates print to stderr; --metrics records them\n\
    \  as runtime/ gauges in the snapshot\n";
  List.iter
    (fun test ->
      (* The quota decides how many times each thunk runs, so any work
         counters it would bump are timing-derived, not deterministic:
         suspend collection during measurement. *)
      let results =
        Metrics.set_enabled false;
        Fun.protect ~finally:(fun () -> Metrics.set_enabled true) @@ fun () ->
        let raw =
          Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ])
        in
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          instance raw
      in
      Hashtbl.iter
        (fun name ols ->
          let name =
            match String.index_opt name '/' with
            | Some i -> String.sub name (i + 1) (String.length name - i - 1)
            | None -> name
          in
          match Analyze.OLS.estimates ols with
          | Some (est :: _) ->
            Metrics.set_gauge (Metrics.gauge ~scope:"runtime" (name ^ " ns-per-run")) est;
            Printf.eprintf "  %-42s %12.1f ns/run\n" name est
          | Some [] | None -> Printf.eprintf "  %-42s (no estimate)\n" name)
        results)
    tests

(* -------------------------------------------------------- matcher-bench *)

(* Assignment-matcher registry benchmark (DESIGN.md §14). Two parts:
   differential agreement on binder-shaped instances (every registered
   matcher must produce the same optimal total and, after
   canonicalization, byte-identical assignments), then the thousand-op
   scaling race — one row per operation of the parameterized fft
   kernel with banded FU-affinity candidates, the shape a binding
   cycle at scale produces. Stdout carries only deterministic verdicts;
   measured walls go to stderr and runtime/ gauges, and the >=10x
   sparse-vs-dense speedup lands in the matching/bench/speedup_10x
   counter, which the CI perf gate compares exactly against the
   baseline's 1. *)
let matcher_bench () =
  let module Cost_graph = Rb_matching.Cost_graph in
  let module Matcher = Rb_matching.Matcher in
  Rb_matching.Matchers.ensure_registered ();
  let names = Matcher.names () in
  Printf.printf "  registered matchers: %s\n" (String.concat ", " names);
  let dense8 =
    Array.init 8 (fun i ->
        Array.init 8 (fun j -> float_of_int (((i * 31) + (j * 17)) mod 23)))
  in
  let sparse64 =
    Array.init 64 (fun r ->
        Array.init 6 (fun k ->
            ((r + (k * 13)) mod 80, float_of_int (((r * 7) + (k * 29)) mod 41))))
  in
  List.iter
    (fun (label, g) ->
      let totals = List.map (fun m -> Matcher.min_cost_total ~matcher:m g) names in
      let assigns =
        List.map (fun m -> Matcher.min_cost_assignment ~matcher:m g) names
      in
      let t0 = List.hd totals and a0 = List.hd assigns in
      let agree =
        List.for_all (fun t -> t = t0) totals
        && List.for_all (fun a -> a = a0) assigns
      in
      Printf.printf "  %-13s total=%g canonical-agreement=%b\n" label t0 agree)
    [
      ("dense 8x8", Cost_graph.of_dense dense8);
      ("sparse 64x80", Cost_graph.of_rows ~cols:80 sparse64);
    ];
  (* Thousand-op race: fft256 is 4096 operations; each op row gets a
     12-arc band of candidate FU columns, weights salted by the op's
     kind so the instance is a function of the kernel DFG. *)
  let dfg = Rb_workload.Kernels.fft_n ~n:256 in
  let rows = Dfg.op_count dfg in
  let cols = rows + 64 and deg = 12 in
  let cand =
    Array.init rows (fun r ->
        let salt = match (Dfg.op dfg r).Dfg.kind with Dfg.Add -> 0 | Dfg.Mul -> 3 in
        Array.init deg (fun k ->
            let c = if k = 0 then r else (r + (k * 7)) mod cols in
            (c, float_of_int (((r * 31) + (k * 17) + salt) mod 97))))
  in
  let g = Cost_graph.of_rows ~cols cand in
  Printf.printf "  scaling instance: fft256 -> %d rows x %d cols, %d arcs\n" rows
    cols (Cost_graph.arcs g);
  let race =
    List.map
      (fun m ->
        let t0 = Metrics.now_s () in
        let total = Matcher.min_cost_total ~matcher:m g in
        let wall = Metrics.now_s () -. t0 in
        Metrics.set_gauge
          (Metrics.gauge ~scope:"runtime" (Printf.sprintf "matcher %s s" m))
          wall;
        Printf.eprintf "  [matcher %-9s %8.4f s]\n" m wall;
        (m, total, wall))
      names
  in
  let total_of m = match List.assoc_opt m (List.map (fun (m, t, _) -> (m, t)) race) with
    | Some t -> t
    | None -> nan
  in
  let wall_of m =
    match List.find_opt (fun (m', _, _) -> m' = m) race with
    | Some (_, _, w) -> w
    | None -> infinity
  in
  List.iter
    (fun (m, total, _) -> Printf.printf "  %-9s total=%g\n" m total)
    race;
  let agree = List.for_all (fun (_, t, _) -> t = total_of "hungarian") race in
  Printf.printf "  all matchers optimal-equal: %b\n" agree;
  (* The acceptance pin: the sparse auction engine at >=10x under the
     dense reference on the same instance, equal totals. Flipping to 0
     (or totals diverging) breaks the exact counter diff. *)
  let speedup = wall_of "hungarian" /. wall_of "auction" in
  Printf.eprintf "  [auction speedup over hungarian: %.1fx]\n" speedup;
  Metrics.set_gauge (Metrics.gauge ~scope:"runtime" "matcher auction-speedup") speedup;
  if agree && speedup >= 10.0 then
    Metrics.incr (Metrics.counter ~scope:"matching" "bench/speedup_10x")

(* ---------------------------------------------------------------- serve *)

(* The serve daemon's job palette: ~40 distinct feasible jobs spanning
   every operation the service layer executes. The replay stream
   below revisits these at random, so consecutive requests overlap
   heavily — the regime the content-addressed store is built for. *)
let serve_palette () =
  let open Rb_service.Job in
  let bind benchmark binder seed =
    Bind
      { benchmark; seed; binder; kind = Dfg.Mul; locked_fus = 2; minterms_per_fu = 2 }
  in
  let mul_binds =
    List.concat_map
      (fun b ->
        List.concat_map
          (fun binder -> List.map (bind b binder) [ 1789; 1790 ])
          [ "codesign"; "area"; "obf" ])
      [ "dct"; "fft"; "jctrans2" ]
  in
  let fir_text = Rb_dfg.Dfg_text.to_string (Workload.find "fir").Workload.dfg in
  mul_binds
  @ [
      Bind
        { benchmark = "ecb_enc4"; seed = 1789; binder = "codesign"; kind = Dfg.Add;
          locked_fus = 2; minterms_per_fu = 2 };
      Bind
        { benchmark = "fir"; seed = 1789; binder = "area"; kind = Dfg.Add;
          locked_fus = 1; minterms_per_fu = 2 };
      Lint
        { benchmark = Some "dct"; seed = 1789; locked_fus = 2; minterms_per_fu = 2;
          min_lambda = None };
      Lint
        { benchmark = Some "fir"; seed = 1789; locked_fus = 2; minterms_per_fu = 2;
          min_lambda = None };
      Analyze { scheme = None; width = 4; strength = 4; seed = 1789 };
      Analyze { scheme = Some Pf; width = 4; strength = 2; seed = 1789 };
      Analyze { scheme = Some Rll; width = 4; strength = 2; seed = 1789 };
      Analyze { scheme = Some Antisat; width = 4; strength = 4; seed = 1789 };
      Analyze { scheme = Some Permnet; width = 3; strength = 2; seed = 1789 };
      Attack
        { scheme = Rll; width = 3; strength = 2; seed = 1789; max_iterations = 20_000;
          portfolio = 1 };
      Attack
        { scheme = Rll; width = 4; strength = 4; seed = 1789; max_iterations = 20_000;
          portfolio = 1 };
      Attack
        { scheme = Pf; width = 3; strength = 1; seed = 1789; max_iterations = 20_000;
          portfolio = 1 };
      Attack
        { scheme = Pf; width = 4; strength = 2; seed = 1789; max_iterations = 20_000;
          portfolio = 1 };
      Attack
        { scheme = Permnet; width = 3; strength = 2; seed = 1789; max_iterations = 20_000;
          portfolio = 1 };
      Export_cnf { scheme = Rll; width = 4; strength = 2; miter = false; seed = 1789 };
      Export_cnf { scheme = Pf; width = 4; strength = 2; miter = true; seed = 1789 };
      Export_cnf { scheme = Permnet; width = 4; strength = 2; miter = false; seed = 1789 };
      List_benchmarks;
      Show { benchmark = "dct"; seed = 1789 };
      Show { benchmark = "fir"; seed = 1790 };
      Export_dfg { benchmark = "dct" };
      Dot { benchmark = "fir" };
      Custom
        { source = Dfg_source fir_text; kind = Dfg.Add; locked_fus = 1;
          minterms_per_fu = 2; trace_length = 256; seed = 1789 };
    ]

(* Traffic replay through the Rb_service executor — the serve daemon's
   dispatch path (job stream -> batches -> pool -> content-addressed
   store) minus the NDJSON transport. The stream draws from the fixed
   palette, so the cache hit/miss split is a property of the workload
   and byte-identical for every --jobs value (the store's single-flight
   discipline guarantees one miss per distinct key even when workers
   race). Stdout carries only deterministic counts; latency
   percentiles and throughput are timings, so they go to stderr and
   runtime/ gauges. *)
let rec serve_replay ~pool () =
  section
    "Serve - rb-job/1 traffic replay: 100k overlapping jobs through the\n\
     executor's content-addressed store (p50/p99 latency on stderr)";
  let palette = Array.of_list (serve_palette ()) in
  let n_jobs = 100_000 in
  let batch = 64 in
  let store = Rb_service.Store.create () in
  let executor = Rb_service.Executor.create ~store ~pool () in
  let rng = Rng.create 20_260_808 in
  let stream =
    Array.init n_jobs (fun _ -> palette.(Rng.int rng (Array.length palette)))
  in
  let walls = Array.make n_jobs 0.0 in
  let errors = ref 0 in
  let t0 = Metrics.now_s () in
  let pos = ref 0 in
  while !pos < n_jobs do
    let len = min batch (n_jobs - !pos) in
    let results = Rb_service.Executor.run_batch executor (Array.sub stream !pos len) in
    Array.iteri
      (fun i (r, w) ->
        walls.(!pos + i) <- w;
        match r with Ok _ -> () | Error _ -> incr errors)
      results;
    pos := !pos + len
  done;
  let wall = Metrics.now_s () -. t0 in
  let stats = Rb_service.Store.stats store in
  let lookups = stats.Rb_service.Store.hits + stats.Rb_service.Store.misses in
  Printf.printf "  replayed %d jobs from a %d-job palette in batches of %d\n" n_jobs
    (Array.length palette) batch;
  Printf.printf "  results: %d ok, %d errors\n" (n_jobs - !errors) !errors;
  Printf.printf "  cache: %d hits, %d misses over %d lookups (%.1f%% hit rate)\n"
    stats.Rb_service.Store.hits stats.Rb_service.Store.misses lookups
    (100.0 *. float_of_int stats.Rb_service.Store.hits /. float_of_int (max 1 lookups));
  Array.sort compare walls;
  let pct p = walls.(min (n_jobs - 1) (p * n_jobs / 100)) in
  let p50 = pct 50 and p99 = pct 99 in
  let throughput = float_of_int n_jobs /. wall in
  Metrics.set_gauge (Metrics.gauge ~scope:"runtime" "serve p50 ms-per-job") (1000. *. p50);
  Metrics.set_gauge (Metrics.gauge ~scope:"runtime" "serve p99 ms-per-job") (1000. *. p99);
  Metrics.set_gauge (Metrics.gauge ~scope:"runtime" "serve jobs-per-s") throughput;
  Metrics.set_gauge
    (Metrics.gauge ~scope:"runtime" "serve hit-rate %")
    (100.0 *. float_of_int stats.Rb_service.Store.hits /. float_of_int (max 1 lookups));
  Printf.eprintf "  [serve: p50 %.3f ms, p99 %.3f ms, %.0f jobs/s]\n" (1000. *. p50)
    (1000. *. p99) throughput;
  serve_bounded_replay ~pool ();
  serve_admission_micro ~pool ()

(* The bounded daemon: the same traffic shape under --store-cap. The
   palette is closure-free on purpose — export jobs cache Locked
   netlists and Exported text, pure data whose Obj.reachable_words
   cost is a stable property of the value — and the replay is
   sequential, so the LRU access order, and with it the
   [cache/evictions] delta the perf gate pins, is deterministic and
   identical on every machine and compiler the gate runs on. The
   acceptance bar: evictions actually happen, resident bytes stay at
   the cap, and every response is byte-identical to the unbounded
   daemon's. *)
and serve_bounded_replay ~pool () =
  let open Rb_service.Job in
  let palette =
    List.concat_map
      (fun scheme ->
        List.concat_map
          (fun width ->
            List.map
              (fun seed ->
                Export_cnf { scheme; width; strength = 2; miter = false; seed })
              [ 1789; 1790 ])
          [ 3; 4; 5 ])
      [ Rll; Pf; Permnet ]
    @ [
        Export_dfg { benchmark = "dct" };
        Export_dfg { benchmark = "fir" };
        Dot { benchmark = "dct" };
        Dot { benchmark = "fir" };
      ]
  in
  let palette = Array.of_list palette in
  let render r =
    match r with
    | Ok outcome -> Json.to_string (Rb_service.Render.result_to_json outcome)
    | Error e -> Json.to_string (Rb_service.Error.to_json e)
  in
  (* Reference pass: unbounded store, one run per palette entry, and
     the total resident cost the cap is derived from. *)
  let reference_store = Rb_service.Store.create () in
  let reference = Rb_service.Executor.create ~store:reference_store ~pool () in
  let expected = Array.map (fun job -> render (Rb_service.Executor.run reference job)) palette in
  let total_bytes = (Rb_service.Store.stats reference_store).Rb_service.Store.bytes in
  let cap_bytes = max 1 (total_bytes / 2) in
  let store = Rb_service.Store.create ~cap_bytes () in
  let executor = Rb_service.Executor.create ~store ~pool () in
  let n_jobs = 20_000 in
  let rng = Rng.create 20_260_809 in
  let divergent = ref 0 in
  let t0 = Metrics.now_s () in
  for _ = 1 to n_jobs do
    let i = Rng.int rng (Array.length palette) in
    if render (Rb_service.Executor.run executor palette.(i)) <> expected.(i) then
      incr divergent
  done;
  let wall = Metrics.now_s () -. t0 in
  let stats = Rb_service.Store.stats store in
  Printf.printf
    "  bounded replay: %d sequential jobs from a %d-job closure-free palette\n"
    n_jobs (Array.length palette);
  Printf.printf "  store cap: half of the %d-byte working set\n" total_bytes;
  Printf.printf "  evictions: %d (resident bytes within cap: %b)\n"
    stats.Rb_service.Store.evictions
    (stats.Rb_service.Store.bytes <= cap_bytes);
  Printf.printf "  responses byte-identical to the unbounded daemon: %b\n"
    (!divergent = 0);
  Printf.eprintf "  [serve bounded: %.0f jobs/s]\n" (float_of_int n_jobs /. wall)

(* Admission control through the real NDJSON loop: a burst gathered as
   one batch against an in-flight cap of 2 sheds all but the first two
   lines, pinning a fixed [serve/rejected] delta for the perf gate. *)
and serve_admission_micro ~pool () =
  let requests =
    List.init 8 (fun i ->
        Printf.sprintf {|{"schema":"rb-job/1","id":%d,"op":"list"}|} i)
  in
  let payload = String.concat "" (List.map (fun r -> r ^ "\n") requests) in
  let read_fd, write_fd = Unix.pipe ~cloexec:true () in
  ignore (Unix.write_substring write_fd payload 0 (String.length payload));
  Unix.close write_fd;
  let executor = Rb_service.Executor.create ~pool () in
  let admission = Rb_service.Serve.Admission.create 2 in
  let null = open_out Filename.null in
  let stop =
    Rb_service.Serve.run ~executor ~batch_size:8 ~admission ~input:read_fd
      ~output:null ()
  in
  close_out null;
  Unix.close read_fd;
  Printf.printf "  admission: burst of %d against an in-flight cap of 2 -> %d shed\n"
    (List.length requests)
    (List.length requests - 2);
  assert (stop = Rb_service.Serve.Eof)

(* ------------------------------------------------------------------ CLI *)

let section_order =
  [ "fig4"; "fig5"; "fig6"; "headline"; "eqn1"; "sat-attack"; "attack-portfolio";
    "analysis"; "solver-bench"; "matcher-bench"; "methodology"; "quality";
    "postlock"; "ablation"; "serve"; "runtime" ]

let usage () =
  Printf.eprintf
    "usage: main.exe [--jobs N] [--sections a,b,...] [--list-sections]\n\
    \       [--metrics FILE] [--checkpoint FILE] [--resume]\n\
    \       [--solver-budget N] [--matcher NAME] [SECTION...]\n\
     available sections: %s\n"
    (String.concat " " section_order)

(* One BENCH.json per run: the config that produced it, a record per
   section in run order, and the final whole-process snapshot. Only
   the "sections" records feed the regression gate; "totals" is for
   humans and dashboards. *)
let bench_json ~jobs ~records =
  Json.Obj
    [
      ("schema", Json.String "rb-bench/1");
      ( "config",
        Json.Obj
          [
            ("jobs", Json.Int jobs);
            ( "sections",
              Json.List (List.map (fun (name, _, _) -> Json.String name) records) );
          ] );
      ( "sections",
        Json.List
          (List.map
             (fun (name, wall, deltas) ->
               Json.Obj
                 [
                   ("section", Json.String name);
                   ("wall_s", Json.Float wall);
                   ("counters", Metrics.counters_to_json deltas);
                 ])
             records) );
      ("totals", Metrics.to_json (Metrics.snapshot ()));
    ]

let write_file path contents =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)

let parse_pos_int flag s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> n
  | _ ->
    Printf.eprintf "%s expects a positive integer, got %S\n" flag s;
    exit 2

let split_sections s = String.split_on_char ',' s |> List.filter (fun x -> x <> "")

let () =
  (* Batch-throughput GC tuning. The attack sections allocate tens of
     millions of minor words, and under OCaml 5 every minor collection
     is a stop-the-world synchronisation of all domains — at the
     default 256k-word minor heap that sync fires hundreds of times
     and costs ~10% wall on the SAT-attack section alone. A 4M-word
     minor heap (inherited by the worker domains) makes collections
     ~30x rarer, and the looser space_overhead trades heap headroom
     for less major-GC work. Determinism is untouched: GC pacing never
     feeds anything printed to stdout. *)
  Gc.set
    { (Gc.get ()) with minor_heap_size = 4 * 1024 * 1024; space_overhead = 200 };
  let jobs = ref (Pool.default_jobs ()) in
  let requested = ref [] in
  let list_only = ref false in
  let metrics_out = ref None in
  let checkpoint_path = ref None in
  let resume = ref false in
  let solver_budget = ref None in
  let matcher = ref None in
  let rec parse = function
    | [] -> ()
    | "--list-sections" :: rest ->
      list_only := true;
      parse rest
    | "--jobs" :: n :: rest ->
      jobs := parse_pos_int "--jobs" n;
      parse rest
    | [ "--jobs" ] ->
      Printf.eprintf "--jobs expects a value\n";
      exit 2
    | "--sections" :: s :: rest ->
      requested := !requested @ split_sections s;
      parse rest
    | [ "--sections" ] ->
      Printf.eprintf "--sections expects a value\n";
      exit 2
    | "--metrics" :: path :: rest ->
      metrics_out := Some path;
      parse rest
    | [ "--metrics" ] ->
      Printf.eprintf "--metrics expects a file name\n";
      exit 2
    | "--checkpoint" :: path :: rest ->
      checkpoint_path := Some path;
      parse rest
    | [ "--checkpoint" ] ->
      Printf.eprintf "--checkpoint expects a file name\n";
      exit 2
    | "--resume" :: rest ->
      resume := true;
      parse rest
    | "--solver-budget" :: n :: rest ->
      solver_budget := Some (parse_pos_int "--solver-budget" n);
      parse rest
    | [ "--solver-budget" ] ->
      Printf.eprintf "--solver-budget expects a value\n";
      exit 2
    | "--matcher" :: m :: rest ->
      matcher := Some m;
      parse rest
    | [ "--matcher" ] ->
      Printf.eprintf "--matcher expects a value\n";
      exit 2
    | ("--help" | "-h") :: _ ->
      usage ();
      exit 0
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
      jobs := parse_pos_int "--jobs" (String.sub arg 7 (String.length arg - 7));
      parse rest
    | arg :: rest when String.length arg > 11 && String.sub arg 0 11 = "--sections=" ->
      requested := !requested @ split_sections (String.sub arg 11 (String.length arg - 11));
      parse rest
    | arg :: rest when String.length arg > 10 && String.sub arg 0 10 = "--metrics=" ->
      metrics_out := Some (String.sub arg 10 (String.length arg - 10));
      parse rest
    | arg :: rest when String.length arg > 13 && String.sub arg 0 13 = "--checkpoint=" ->
      checkpoint_path := Some (String.sub arg 13 (String.length arg - 13));
      parse rest
    | arg :: rest
      when String.length arg > 16 && String.sub arg 0 16 = "--solver-budget=" ->
      solver_budget :=
        Some (parse_pos_int "--solver-budget" (String.sub arg 16 (String.length arg - 16)));
      parse rest
    | arg :: rest when String.length arg > 10 && String.sub arg 0 10 = "--matcher=" ->
      matcher := Some (String.sub arg 10 (String.length arg - 10));
      parse rest
    | arg :: _ when String.length arg >= 2 && String.sub arg 0 2 = "--" ->
      Printf.eprintf "unknown option %s\n" arg;
      usage ();
      exit 2
    | name :: rest ->
      requested := !requested @ [ name ];
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list_only then begin
    List.iter print_endline section_order;
    exit 0
  end;
  if !resume && !checkpoint_path = None then begin
    Printf.eprintf "--resume requires --checkpoint FILE\n";
    exit 2
  end;
  Rb_core.Binders.ensure_registered ();
  Rb_matching.Matchers.ensure_registered ();
  (match !matcher with
  | None -> ()
  | Some m -> (
    try Rb_matching.Matcher.use m
    with Invalid_argument msg ->
      Printf.eprintf "--matcher: %s\n" msg;
      exit 2));
  Metrics.set_enabled true;
  let journal =
    Option.map (fun path -> Checkpoint.create ~path ~resume:!resume) !checkpoint_path
  in
  (* With a checkpoint, ^C must not lose completed chunks: flush the
     journal (records are flushed per write, this catches any in-flight
     buffer) and exit with the conventional SIGINT status. Without one,
     the default fatal-signal behaviour is fine. *)
  (match journal with
  | Some j ->
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle
         (fun _ ->
           Checkpoint.flush_now j;
           exit 130))
  | None -> ());
  let attack_limit =
    match !solver_budget with
    | None -> Limits.none
    | Some n -> Limits.conflicts n
  in
  Pool.with_pool ~jobs:!jobs (fun pool ->
      let sections =
        experiment_sections pool journal
        @ [
            ("eqn1", eqn1);
            ("sat-attack", sat_attack ~limit:attack_limit);
            ("attack-portfolio", attack_portfolio ~pool ~limit:attack_limit);
            ("analysis", static_analysis);
            ("solver-bench", solver_bench);
            ("matcher-bench", matcher_bench);
            ("methodology", methodology);
            ("serve", serve_replay ~pool);
            ("runtime", runtime);
          ]
      in
      let lookup name =
        match List.assoc_opt name sections with
        | Some f -> (name, f)
        | None ->
          Printf.eprintf "unknown section %S; available: %s\n" name
            (String.concat " " section_order);
          exit 1
      in
      let to_run =
        match !requested with
        | [] -> List.map lookup section_order
        | names -> List.map lookup names
      in
      let records =
        List.map
          (fun (name, f) ->
            let before = Metrics.snapshot () in
            let t0 = Metrics.now_s () in
            Metrics.with_span name f;
            let wall = Metrics.now_s () -. t0 in
            let after = Metrics.snapshot () in
            (name, wall, Metrics.counter_deltas ~before ~after))
          to_run
      in
      (* One timing block, in section order, after all sections — the
         per-section lines used to interleave with section stderr under
         --jobs N. *)
      List.iter
        (fun (name, wall, _) ->
          Printf.eprintf "[%s: %.2fs, jobs=%d]\n" name wall (Pool.jobs pool))
        records;
      flush stderr;
      (match journal with
      | Some j ->
        Printf.eprintf "[checkpoint %s: %d chunk(s) journaled]\n" (Checkpoint.path j)
          (Checkpoint.entries j);
        Checkpoint.close j
      | None -> ());
      match !metrics_out with
      | None -> ()
      | Some path ->
        write_file path (Json.to_string (bench_json ~jobs:!jobs ~records) ^ "\n");
        Printf.eprintf "[metrics written to %s]\n%!" path)
