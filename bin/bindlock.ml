(* bindlock — command-line front end to the resource-binding
   obfuscation library.

     bindlock list                    benchmarks and their shapes
     bindlock show -b dct             schedule + workload statistics
     bindlock bind -b dct ...         bind/lock one benchmark, report errors
     bindlock lint                    design-rule check benchmarks + lock gadgets
     bindlock analyze                 static vulnerability report for lock schemes
     bindlock attack ...              run the SAT attack on a locked adder
     bindlock dot -b dct             Graphviz dump of the DFG
     bindlock serve                   NDJSON job daemon over stdin or a socket

   Every subcommand is a thin client of Rb_service: parse flags into a
   Job.t, run it on an Executor, render the Outcome. The pipeline
   wiring lives in lib/service; nothing here touches the binding,
   locking or attack code directly. *)

module Dfg = Rb_dfg.Dfg
module Benchmark = Rb_workload.Benchmark
module Binder = Rb_hls.Binder
module Pool = Rb_util.Pool
module Limits = Rb_util.Limits
module Job = Rb_service.Job
module Error = Rb_service.Error
module Executor = Rb_service.Executor
module Store = Rb_service.Store
module Outcome = Rb_service.Outcome
module Render = Rb_service.Render
module Serve = Rb_service.Serve
open Cmdliner

(* Populate the binder and matcher registries before any --binder or
   --matcher argument is parsed against them. *)
let () = Rb_core.Binders.ensure_registered ()
let () = Rb_matching.Matchers.ensure_registered ()

let benchmark_arg =
  let doc = "Benchmark name (one of: " ^ String.concat ", " (Benchmark.names ()) ^ ")." in
  Arg.(required & opt (some string) None & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)

let seed_arg =
  Arg.(value & opt int 1789 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let format_arg =
  let fmt = Arg.enum [ ("text", `Text); ("json", `Json) ] in
  Arg.(value & opt fmt `Text & info [ "format" ] ~docv:"FMT"
         ~doc:"Report format: text or json.")

let jobs_arg =
  Arg.(value & opt int (Pool.default_jobs ()) & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for parallel work (default: available cores; 1 runs \
               everything inline).")

(* One job, one executor. Commands with their own --jobs flag pass it
   through; everything else runs a 1-job pool (inline, no domains). *)
let run_job ?(jobs = 1) job =
  Pool.with_pool ~jobs (fun pool ->
      let executor = Executor.create ~pool () in
      Executor.run executor job)

let to_msg (e : Error.t) = `Msg e.Error.message

(* ---------------------------------------------------------------- list *)

let list_cmd =
  let run format =
    Result.map (Render.print format) (Result.map_error to_msg (run_job Job.List_benchmarks))
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the benchmark suite and the registered binders.")
    Term.(term_result (const run $ format_arg))

(* ---------------------------------------------------------------- show *)

let show_cmd =
  let run name seed =
    Result.map (Render.print `Text)
      (Result.map_error to_msg (run_job (Job.Show { benchmark = name; seed })))
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Schedule and workload statistics of one benchmark.")
    Term.(term_result (const run $ benchmark_arg $ seed_arg))

(* ---------------------------------------------------------------- bind *)

let binder_arg =
  let algo = Arg.enum (List.map (fun n -> (n, n)) (Binder.names ())) in
  Arg.(value & opt algo "codesign" & info [ "binder" ] ~docv:"ALGO"
         ~doc:("Binding algorithm, resolved from the binder registry: "
               ^ String.concat ", " (Binder.names ()) ^ "."))

(* Selecting the assignment algorithm is a pure performance knob:
   matchers are output-equivalent (registry-canonicalized ties), so
   this sets the process-wide default rather than entering the job
   description — job digests and cached results must not depend on
   it. *)
let matcher_arg =
  let matchers = Rb_matching.Matcher.names () in
  let algo = Arg.enum (List.map (fun n -> (n, n)) matchers) in
  Arg.(value & opt algo (Rb_matching.Matcher.default ())
       & info [ "matcher" ] ~docv:"ALGO"
           ~doc:("Assignment algorithm for binding matchings, resolved from the \
                  matcher registry (output-equivalent; a speed/scaling choice): "
                 ^ String.concat ", " matchers ^ "."))

let kind_arg =
  let op_kind = Arg.enum [ ("add", Dfg.Add); ("mul", Dfg.Mul) ] in
  Arg.(value & opt op_kind Dfg.Mul & info [ "kind" ] ~docv:"KIND"
         ~doc:"Operation kind whose FUs are locked (add or mul).")

let locked_fus_arg =
  Arg.(value & opt int 2 & info [ "locked-fus" ] ~docv:"N" ~doc:"Number of locked FUs.")

let minterms_arg =
  Arg.(value & opt int 2 & info [ "minterms" ] ~docv:"M" ~doc:"Locked inputs per FU.")

let bind_cmd =
  let run name seed binder matcher kind locked_fus minterms_per_fu format =
    Rb_matching.Matcher.use matcher;
    Result.map (Render.print format)
      (Result.map_error to_msg
         (run_job
            (Job.Bind { benchmark = name; seed; binder; kind; locked_fus; minterms_per_fu })))
  in
  Cmd.v
    (Cmd.info "bind" ~doc:"Bind and lock one benchmark; report error and overhead.")
    Term.(term_result
            (const run $ benchmark_arg $ seed_arg $ binder_arg $ matcher_arg $ kind_arg
             $ locked_fus_arg $ minterms_arg $ format_arg))

(* ---------------------------------------------------------------- lint *)

let lint_cmd =
  let bench_arg =
    Arg.(value & opt (some string) None & info [ "b"; "benchmark" ] ~docv:"NAME"
           ~doc:"Lint a single benchmark (default: the whole suite plus the \
                 gate-level lock constructions).")
  in
  let min_lambda_arg =
    Arg.(value & opt (some float) None & info [ "min-lambda" ] ~docv:"L"
           ~doc:"SAT-resilience target: error when a locked FU's predicted Eqn. 1 \
                 iterations fall below $(docv).")
  in
  let run bench seed locked_fus minterms_per_fu min_lambda format jobs =
    Result.bind
      (Result.map_error to_msg
         (run_job ~jobs
            (Job.Lint { benchmark = bench; seed; locked_fus; minterms_per_fu; min_lambda })))
      (fun outcome ->
        Render.print format outcome;
        let reports =
          match outcome with Outcome.Linted reports -> reports | _ -> []
        in
        match Rb_lint.Report.total_errors reports with
        | 0 -> Ok ()
        | n ->
          Error (`Msg (Printf.sprintf "lint: %d error%s in %d subject%s" n
                         (if n = 1 then "" else "s")
                         (List.length reports)
                         (if List.length reports = 1 then "" else "s"))))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Design-rule check: netlist, binding and locking-config rules over the \
             benchmark suite (non-zero exit on errors).")
    Term.(term_result
            (const run $ bench_arg $ seed_arg $ locked_fus_arg $ minterms_arg
             $ min_lambda_arg $ format_arg $ jobs_arg))

(* -------------------------------------------------------------- attack *)

let attack_scheme_arg =
  let scheme_kind = Arg.enum [ ("rll", Job.Rll); ("pf", Job.Pf); ("permnet", Job.Permnet) ] in
  Arg.(value & opt scheme_kind Job.Pf & info [ "scheme" ] ~docv:"SCHEME"
         ~doc:"Locking scheme: rll, pf (point function), or permnet.")

let width_arg =
  Arg.(value & opt int 4 & info [ "width" ] ~docv:"W" ~doc:"Adder operand width in bits.")

let attack_cmd =
  let strength_arg =
    Arg.(value & opt int 2 & info [ "strength" ] ~docv:"S"
           ~doc:"Key gates (rll), protected minterms (pf), or layers (permnet).")
  in
  let portfolio_arg =
    Arg.(value & opt int 1 & info [ "portfolio" ] ~docv:"N"
           ~doc:"Racing solver configurations per miter round (1-64). The reported \
                 attack result is identical for every portfolio size and --jobs \
                 value; larger portfolios only race the hard solves.")
  in
  let run scheme width strength seed format jobs portfolio =
    let t0 = Sys.time () in
    Result.map
      (fun outcome ->
        Render.print ~attack_wall_s:(Sys.time () -. t0) format outcome)
      (Result.map_error to_msg
         (run_job ~jobs
            (Job.Attack
               { scheme; width; strength; seed; max_iterations = 20_000; portfolio })))
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run the oracle-guided SAT attack on a locked adder.")
    Term.(term_result
            (const run $ attack_scheme_arg $ width_arg $ strength_arg $ seed_arg
             $ format_arg $ jobs_arg $ portfolio_arg))

(* ------------------------------------------------------------- analyze *)

let analyze_cmd =
  let scheme_kind =
    Arg.enum
      [ ("all", None); ("rll", Some Job.Rll); ("pf", Some Job.Pf);
        ("antisat", Some Job.Antisat); ("permnet", Some Job.Permnet) ]
  in
  let scheme_arg =
    Arg.(value & opt scheme_kind None & info [ "scheme" ] ~docv:"SCHEME"
           ~doc:"Scheme to analyze: rll, pf, antisat, permnet, or all.")
  in
  let strength_arg =
    Arg.(value & opt int 4 & info [ "strength" ] ~docv:"S"
           ~doc:"Key gates (rll), protected minterms (pf), or layers (permnet).")
  in
  let fail_arg =
    Arg.(value & flag & info [ "fail-on-inferable" ]
           ~doc:"Exit non-zero when any analyzed design has statically inferable \
                 key bits (CI guard for SAT-hard schemes).")
  in
  let run scheme width strength seed format jobs fail_on_inferable =
    Result.bind
      (Result.map_error to_msg
         (run_job ~jobs (Job.Analyze { scheme; width; strength; seed })))
      (fun outcome ->
        Render.print format outcome;
        let reports =
          match outcome with Outcome.Analyzed reports -> reports | _ -> []
        in
        let inferable =
          List.fold_left
            (fun acc r -> acc + List.length r.Rb_analysis.Report.inferable)
            0 reports
        in
        if fail_on_inferable && inferable > 0 then
          Error (`Msg (Printf.sprintf "analyze: %d key bit%s statically inferable"
                         inferable (if inferable = 1 then "" else "s")))
        else Ok ())
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static vulnerability report for locked designs: oracle-less key \
             inference, probability skew, dead logic, cycles and key \
             observability.")
    Term.(term_result
            (const run $ scheme_arg $ width_arg $ strength_arg $ seed_arg
             $ format_arg $ jobs_arg $ fail_arg))

(* -------------------------------------------------------------- custom *)

let custom_cmd =
  let file_arg =
    Arg.(required & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE"
           ~doc:"Kernel in the DFG text format, or behavioural expression code \
                 when the file ends in .expr (see lib/dfg/expr.mli).")
  in
  let trace_len_arg =
    Arg.(value & opt int 256 & info [ "trace-length" ] ~docv:"N"
           ~doc:"Synthesized workload length (heavy-tailed generator).")
  in
  let run file matcher kind locked_fus minterms_per_fu trace_length seed =
    Rb_matching.Matcher.use matcher;
    let contents =
      let ic = open_in file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let source =
      if Filename.check_suffix file ".expr" then Job.Expr_source contents
      else Job.Dfg_source contents
    in
    Result.map (Render.print `Text)
      (Result.map_error to_msg
         (run_job
            (Job.Custom { source; kind; locked_fus; minterms_per_fu; trace_length; seed })))
  in
  Cmd.v
    (Cmd.info "custom" ~doc:"Co-design binding/locking for a user kernel in DFG text format.")
    Term.(term_result
            (const run $ file_arg $ matcher_arg $ kind_arg $ locked_fus_arg $ minterms_arg
             $ trace_len_arg $ seed_arg))

(* ---------------------------------------------------------- export-dfg *)

let export_dfg_cmd =
  let run name =
    Result.map (Render.print `Text)
      (Result.map_error to_msg (run_job (Job.Export_dfg { benchmark = name })))
  in
  Cmd.v
    (Cmd.info "export-dfg"
       ~doc:"Print a benchmark in the DFG text format (a template for 'custom').")
    Term.(term_result (const run $ benchmark_arg))

(* ---------------------------------------------------------- export-cnf *)

let export_cnf_cmd =
  let strength_arg =
    Arg.(value & opt int 2 & info [ "strength" ] ~docv:"S"
           ~doc:"Key gates (rll), protected minterms (pf), or layers (permnet).")
  in
  let miter_arg =
    Arg.(value & flag & info [ "miter" ]
           ~doc:"Emit the two-copy SAT-attack miter instead of a single copy.")
  in
  let run scheme width strength miter seed =
    Result.map (Render.print `Text)
      (Result.map_error to_msg
         (run_job (Job.Export_cnf { scheme; width; strength; miter; seed })))
  in
  Cmd.v
    (Cmd.info "export-cnf" ~doc:"Emit a locked adder (or its attack miter) as DIMACS CNF.")
    Term.(term_result
            (const run $ attack_scheme_arg $ width_arg $ strength_arg $ miter_arg
             $ seed_arg))

(* ----------------------------------------------------------------- dot *)

let dot_cmd =
  let run name =
    Result.map (Render.print `Text)
      (Result.map_error to_msg (run_job (Job.Dot { benchmark = name })))
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Print the benchmark's DFG in Graphviz format.")
    Term.(term_result (const run $ benchmark_arg))

(* --------------------------------------------------------------- serve *)

let serve_cmd =
  let socket_arg =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on a Unix-domain socket at $(docv) instead of serving \
                 stdin/stdout.")
  in
  let batch_arg =
    Arg.(value & opt (some int) None & info [ "batch" ] ~docv:"N"
           ~doc:"Greedy batch cap per dispatch (default: 4x the worker count).")
  in
  let store_cap_arg =
    Arg.(value & opt (some int) None & info [ "store-cap" ] ~docv:"MB"
           ~doc:"Bound the result cache to $(docv) megabytes; least-recently-used \
                 artifacts are evicted when an insert overflows the cap \
                 (default: unbounded).")
  in
  let max_inflight_arg =
    Arg.(value & opt (some int) None & info [ "max-inflight" ] ~docv:"N"
           ~doc:"Shed requests over $(docv) concurrently running jobs with a \
                 structured 'overloaded' error (default: no cap).")
  in
  let run jobs socket batch_size store_cap_mb max_inflight =
    (match store_cap_mb with
    | Some mb when mb < 1 -> Error (`Msg "--store-cap must be at least 1 MB")
    | _ -> (
      match max_inflight with
      | Some n when n < 1 -> Error (`Msg "--max-inflight must be at least 1")
      | _ ->
        let cancel = Limits.new_cancel () in
        let drain = Atomic.make false in
        Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> Limits.cancel cancel));
        Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set drain true));
        (if Sys.unix then
           try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
           with Invalid_argument _ -> ());
        let stop =
          Pool.with_pool ~jobs (fun pool ->
              let limit = Limits.make ~cancel () in
              let store =
                match store_cap_mb with
                | None -> Store.create ()
                | Some mb -> Store.create ~cap_bytes:(mb * 1024 * 1024) ()
              in
              let executor = Executor.create ~limit ~store ~pool () in
              match socket with
              | Some path ->
                Serve.run_socket ~executor ~cancel ~drain ?batch_size ?max_inflight
                  ~path ()
              | None ->
                let admission = Option.map Serve.Admission.create max_inflight in
                Serve.run ~executor ~cancel ~drain ?batch_size ?admission
                  ~input:Unix.stdin ~output:stdout ())
        in
        match stop with
        | Serve.Eof | Serve.Drained -> Ok ()
        | Serve.Cancelled -> exit 130))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve rb-job/1 requests as newline-delimited JSON: one job per input \
             line, one rb-result/1 line per job, dispatched in batches over the \
             worker pool with a content-addressed result cache. Socket mode serves \
             each connection on its own thread. SIGTERM drains in-flight work and \
             exits 0; SIGINT cancels it and exits 130.")
    Term.(term_result
            (const run $ jobs_arg $ socket_arg $ batch_arg $ store_cap_arg
             $ max_inflight_arg))

let () =
  let info =
    Cmd.info "bindlock" ~version:"1.0.0"
      ~doc:"Security-aware resource binding for logic obfuscation (DAC'21 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; show_cmd; bind_cmd; lint_cmd; analyze_cmd; custom_cmd;
            attack_cmd; export_cnf_cmd; export_dfg_cmd; dot_cmd; serve_cmd ]))
