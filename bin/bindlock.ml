(* bindlock — command-line front end to the resource-binding
   obfuscation library.

     bindlock list                    benchmarks and their shapes
     bindlock show -b dct             schedule + workload statistics
     bindlock bind -b dct ...         bind/lock one benchmark, report errors
     bindlock lint                    design-rule check benchmarks + lock gadgets
     bindlock analyze                 static vulnerability report for lock schemes
     bindlock attack ...              run the SAT attack on a locked adder
     bindlock dot -b dct              Graphviz dump of the DFG *)

module Dfg = Rb_dfg.Dfg
module Schedule = Rb_sched.Schedule
module Benchmark = Rb_workload.Benchmark
module Kmatrix = Rb_sim.Kmatrix
module Exec = Rb_sim.Exec
module Allocation = Rb_hls.Allocation
module Binding = Rb_hls.Binding
module Profile = Rb_hls.Profile
module Config = Rb_locking.Config
module Scheme = Rb_locking.Scheme
module Binder = Rb_hls.Binder
module Cost = Rb_core.Cost
module Table = Rb_util.Table
module Json = Rb_util.Json
module Pool = Rb_util.Pool
open Cmdliner

(* Populate the binder registry before any --binder argument is
   parsed against it. *)
let () = Rb_core.Binders.ensure_registered ()

let benchmark_arg =
  let doc = "Benchmark name (one of: " ^ String.concat ", " (Benchmark.names ()) ^ ")." in
  Arg.(required & opt (some string) None & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)

let seed_arg =
  Arg.(value & opt int 1789 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let format_arg =
  let fmt = Arg.enum [ ("text", `Text); ("json", `Json) ] in
  Arg.(value & opt fmt `Text & info [ "format" ] ~docv:"FMT"
         ~doc:"Report format: text or json.")

let jobs_arg =
  Arg.(value & opt int (Pool.default_jobs ()) & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for parallel work (default: available cores; 1 runs \
               everything inline).")

let lookup name =
  match Benchmark.find name with
  | b -> Ok b
  | exception Not_found -> Error (`Msg (Printf.sprintf "unknown benchmark %S" name))

(* ---------------------------------------------------------------- list *)

let list_cmd =
  let run format =
    let rows =
      List.map
        (fun b ->
          let schedule = Benchmark.schedule b in
          ( b.Benchmark.name,
            b.Benchmark.source,
            List.length (Dfg.ops_of_kind b.Benchmark.dfg Dfg.Add),
            List.length (Dfg.ops_of_kind b.Benchmark.dfg Dfg.Mul),
            Schedule.n_cycles schedule ))
        (Benchmark.all ())
    in
    match format with
    | `Json ->
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ( "benchmarks",
                  Json.List
                    (List.map
                       (fun (name, source, adds, muls, cycles) ->
                         Json.Obj
                           [
                             ("name", Json.String name);
                             ("source", Json.String source);
                             ("adds", Json.Int adds);
                             ("muls", Json.Int muls);
                             ("cycles", Json.Int cycles);
                           ])
                       rows) );
                ("binders", Json.List (List.map (fun n -> Json.String n) (Binder.names ())));
              ]))
    | `Text ->
      let table =
        Table.create ~title:"MediaBench-derived benchmarks (Sec. VI)"
          ~columns:[ "source"; "adds"; "muls"; "cycles" ]
      in
      List.iter
        (fun (name, source, adds, muls, cycles) ->
          Table.add_text_row table ~label:name
            ~cells:
              [ source; string_of_int adds; string_of_int muls; string_of_int cycles ])
        rows;
      Table.print table;
      Printf.printf "\nregistered binders:\n";
      List.iter
        (fun name ->
          let (module B : Binder.S) = Binder.require name in
          Printf.printf "  %-10s %s\n" B.name B.description)
        (Binder.names ())
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the benchmark suite and the registered binders.")
    Term.(const run $ format_arg)

(* ---------------------------------------------------------------- show *)

let show_cmd =
  let run name seed =
    Result.map
      (fun b ->
        let schedule = Benchmark.schedule b in
        let trace = Benchmark.trace ~seed b in
        let k = Kmatrix.build trace in
        Format.printf "%a@.%a@.source: %s@." Dfg.pp b.Benchmark.dfg Schedule.pp schedule
          b.Benchmark.source;
        Format.printf "workload: top-10 minterms carry %.0f%% of occurrences@.@."
          (100.0 *. Kmatrix.head_mass k ~n:10);
        List.iter
          (fun kind ->
            Format.printf "top %s minterms:@." (Dfg.kind_label kind);
            List.iter
              (fun m ->
                Format.printf "  %a x%d@." Rb_dfg.Minterm.pp m
                  (Kmatrix.total_occurrences k m))
              (Kmatrix.top_minterms ~kind k ~n:5))
          [ Dfg.Add; Dfg.Mul ])
      (lookup name)
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Schedule and workload statistics of one benchmark.")
    Term.(term_result (const run $ benchmark_arg $ seed_arg))

(* ---------------------------------------------------------------- bind *)

let binder_arg =
  let algo = Arg.enum (List.map (fun n -> (n, n)) (Binder.names ())) in
  Arg.(value & opt algo "codesign" & info [ "binder" ] ~docv:"ALGO"
         ~doc:("Binding algorithm, resolved from the binder registry: "
               ^ String.concat ", " (Binder.names ()) ^ "."))

let kind_arg =
  let op_kind = Arg.enum [ ("add", Dfg.Add); ("mul", Dfg.Mul) ] in
  Arg.(value & opt op_kind Dfg.Mul & info [ "kind" ] ~docv:"KIND"
         ~doc:"Operation kind whose FUs are locked (add or mul).")

let locked_fus_arg =
  Arg.(value & opt int 2 & info [ "locked-fus" ] ~docv:"N" ~doc:"Number of locked FUs.")

let minterms_arg =
  Arg.(value & opt int 2 & info [ "minterms" ] ~docv:"M" ~doc:"Locked inputs per FU.")

let json_of_config config =
  Json.Obj
    [
      ("scheme", Json.String (Scheme.name (Config.scheme config)));
      ( "locks",
        Json.List
          (List.map
             (fun fu ->
               Json.Obj
                 [
                   ("fu", Json.Int fu);
                   ( "minterms",
                     Json.List
                       (List.map
                          (fun m ->
                            let a, b = Rb_dfg.Minterm.unpack m in
                            Json.List [ Json.Int a; Json.Int b ])
                          (Rb_dfg.Minterm.Set.elements (Config.minterms_of config fu)))
                   );
                 ])
             (Config.locked_fus config)) );
      ("lambda_per_fu", Json.float_or_string (Config.lambda_per_fu config));
    ]

let bind_cmd =
  let run name seed binder kind locked_fu_count minterms_per_fu format =
    Result.bind (lookup name) (fun b ->
        let schedule = Benchmark.schedule b in
        let trace = Benchmark.trace ~seed b in
        let allocation = Allocation.for_schedule schedule in
        let k = Kmatrix.build trace in
        let profile = Profile.build trace in
        let fus = Allocation.fu_ids allocation kind in
        if List.length fus < locked_fu_count then
          Error (`Msg (Printf.sprintf "only %d %s FUs allocated" (List.length fus)
                         (Dfg.kind_label kind)))
        else begin
          let candidates = Array.of_list (Kmatrix.top_minterms ~kind k ~n:10) in
          if Array.length candidates < minterms_per_fu then
            Error (`Msg "workload too uniform: not enough candidate minterms")
          else begin
            let locked_fus = List.filteri (fun i _ -> i < locked_fu_count) fus in
            let spec =
              { Rb_core.Codesign.scheme = Scheme.Sfll_rem; locked_fus; minterms_per_fu;
                candidates }
            in
            (* The co-designed configuration seeds input.config; binders
               with a fixed a-priori lock bind under it, the codesign
               binder re-derives its search spec from its shape. *)
            let codesigned = Rb_core.Codesign.heuristic k schedule allocation spec in
            let input =
              { Binder.schedule; allocation; profile; k;
                config = codesigned.Rb_core.Codesign.config; candidates }
            in
            let out = Binder.bind binder input in
            let config = out.Binder.config in
            let binding = out.Binder.binding in
            let report =
              Exec.application_errors schedule trace ~fu_of_op:(Binding.fu_array binding)
                ~config
            in
            (match format with
             | `Json ->
               print_endline
                 (Json.to_string
                    (Json.Obj
                       [
                         ("benchmark", Json.String b.Benchmark.name);
                         ("binder", Json.String binder);
                         ("kind", Json.String (Dfg.kind_label kind));
                         ("config", json_of_config config);
                         ("expected_errors", Json.Int (Cost.expected_errors k binding config));
                         ( "measured",
                           Json.Obj
                             [
                               ("error_events", Json.Int report.Exec.error_events);
                               ("samples", Json.Int report.Exec.samples);
                               ("corrupted_samples", Json.Int report.Exec.corrupted_samples);
                               ("max_burst_cycles",
                                Json.Int report.Exec.max_consecutive_cycles);
                             ] );
                         ( "overhead",
                           Json.Obj
                             [
                               ("registers", Json.Int (Rb_hls.Registers.count binding));
                               ("switching_rate",
                                Json.float_or_string (Rb_hls.Switching.rate binding profile));
                             ] );
                       ]))
             | `Text ->
               Format.printf "binder: %s@." binder;
               Format.printf "locking: %a@." Config.pp config;
               Format.printf "predicted SAT iterations per FU (Eqn. 1): %.0f@."
                 (Config.lambda_per_fu config);
               Format.printf "expected application errors (Eqn. 2): %d@."
                 (Cost.expected_errors k binding config);
               Format.printf "measured wrong-key error events: %d over %d samples@."
                 report.Exec.error_events report.Exec.samples;
               Format.printf "corrupted samples: %d, longest error burst: %d cycles@."
                 report.Exec.corrupted_samples report.Exec.max_consecutive_cycles;
               Format.printf "registers: %d, switching rate: %.3f@."
                 (Rb_hls.Registers.count binding)
                 (Rb_hls.Switching.rate binding profile));
            Ok ()
          end
        end)
  in
  Cmd.v
    (Cmd.info "bind" ~doc:"Bind and lock one benchmark; report error and overhead.")
    Term.(term_result
            (const run $ benchmark_arg $ seed_arg $ binder_arg $ kind_arg $ locked_fus_arg
             $ minterms_arg $ format_arg))

(* ---------------------------------------------------------------- lint *)

let lint_cmd =
  let bench_arg =
    Arg.(value & opt (some string) None & info [ "b"; "benchmark" ] ~docv:"NAME"
           ~doc:"Lint a single benchmark (default: the whole suite plus the \
                 gate-level lock constructions).")
  in
  let min_lambda_arg =
    Arg.(value & opt (some float) None & info [ "min-lambda" ] ~docv:"L"
           ~doc:"SAT-resilience target: error when a locked FU's predicted Eqn. 1 \
                 iterations fall below $(docv).")
  in
  let lint_design b seed locked_fu_count minterms_per_fu min_lambda =
    let schedule = Benchmark.schedule b in
    let trace = Benchmark.trace ~seed b in
    let allocation = Allocation.for_schedule schedule in
    let k = Kmatrix.build trace in
    List.filter_map
      (fun kind ->
        let fus = Allocation.fu_ids allocation kind in
        let candidates = Array.of_list (Kmatrix.top_minterms ~kind k ~n:10) in
        if fus = [] || Array.length candidates = 0 then None
        else begin
          let n_locked = min locked_fu_count (List.length fus) in
          let spec =
            { Rb_core.Codesign.scheme = Scheme.Sfll_rem;
              locked_fus = List.filteri (fun i _ -> i < n_locked) fus;
              minterms_per_fu = min minterms_per_fu (Array.length candidates);
              candidates }
          in
          let sol = Rb_core.Codesign.heuristic k schedule allocation spec in
          let binding = sol.Rb_core.Codesign.binding in
          Some
            (Rb_lint.Lint.design ?min_lambda ~candidates
               ~config:sol.Rb_core.Codesign.config
               ~registers:(Rb_hls.Registers.count binding)
               ~transfers:(Rb_lint.Hls_rules.transfer_count binding)
               ~subject:(Printf.sprintf "%s/%s" b.Benchmark.name (Dfg.kind_label kind))
               schedule allocation ~fu_of_op:(Binding.fu_array binding))
        end)
      [ Dfg.Add; Dfg.Mul ]
  in
  let lint_gates seed =
    let rng = Rb_util.Rng.create seed in
    let base = Rb_netlist.Circuits.adder ~width:4 in
    let space = 1 lsl 8 in
    [
      Rb_lint.Lint.netlist ~subject:"adder(4)" base;
      Rb_lint.Lint.netlist ~subject:"multiplier(4)" (Rb_netlist.Circuits.multiplier ~width:4);
      Rb_lint.Lint.locked (Rb_netlist.Lock.xor_random ~rng ~key_bits:4 base);
      Rb_lint.Lint.locked
        (Rb_netlist.Lock.point_function
           ~minterms:[ Rb_util.Rng.int rng space; Rb_util.Rng.int rng space ]
           base);
      Rb_lint.Lint.locked (Rb_netlist.Lock.anti_sat ~rng base);
      Rb_lint.Lint.locked (Rb_netlist.Lock.permutation_network ~rng ~layers:2 base);
    ]
  in
  let run bench seed locked_fu_count minterms_per_fu min_lambda format jobs =
    let benches =
      match bench with
      | None -> Ok (Benchmark.all ())
      | Some name -> Result.map (fun b -> [ b ]) (lookup name)
    in
    Result.bind benches (fun benches ->
        let design_reports =
          Pool.with_pool ~jobs (fun pool ->
              Pool.map_list pool
                ~f:(fun b -> lint_design b seed locked_fu_count minterms_per_fu min_lambda)
                benches)
        in
        let reports =
          (if bench = None then lint_gates seed else []) @ List.concat design_reports
        in
        (match format with
         | `Json -> print_endline (Rb_lint.Report.json_of_reports reports)
         | `Text ->
           List.iter (fun r -> Format.printf "%a@." Rb_lint.Report.pp r) reports);
        match Rb_lint.Report.total_errors reports with
        | 0 -> Ok ()
        | n ->
          Error (`Msg (Printf.sprintf "lint: %d error%s in %d subject%s" n
                         (if n = 1 then "" else "s")
                         (List.length reports)
                         (if List.length reports = 1 then "" else "s"))))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Design-rule check: netlist, binding and locking-config rules over the \
             benchmark suite (non-zero exit on errors).")
    Term.(term_result
            (const run $ bench_arg $ seed_arg $ locked_fus_arg $ minterms_arg
             $ min_lambda_arg $ format_arg $ jobs_arg))

(* -------------------------------------------------------------- attack *)

let attack_cmd =
  let scheme_kind = Arg.enum [ ("rll", `Rll); ("pf", `Pf); ("permnet", `Permnet) ] in
  let scheme_arg =
    Arg.(value & opt scheme_kind `Pf & info [ "scheme" ] ~docv:"SCHEME"
           ~doc:"Locking scheme: rll, pf (point function), or permnet.")
  in
  let width_arg =
    Arg.(value & opt int 4 & info [ "width" ] ~docv:"W" ~doc:"Adder operand width in bits.")
  in
  let strength_arg =
    Arg.(value & opt int 2 & info [ "strength" ] ~docv:"S"
           ~doc:"Key gates (rll), protected minterms (pf), or layers (permnet).")
  in
  let run scheme width strength seed =
    if width < 2 || width > 8 then Error (`Msg "width must be in 2..8")
    else begin
      let base = Rb_netlist.Circuits.adder ~width in
      let rng = Rb_util.Rng.create seed in
      let locked =
        match scheme with
        | `Rll -> Rb_netlist.Lock.xor_random ~rng ~key_bits:strength base
        | `Pf ->
          let space = 1 lsl (2 * width) in
          let minterms = List.init strength (fun _ -> Rb_util.Rng.int rng space) in
          Rb_netlist.Lock.point_function ~minterms base
        | `Permnet -> Rb_netlist.Lock.permutation_network ~rng ~layers:strength base
      in
      Format.printf "locked circuit: %s, %a@." locked.Rb_netlist.Lock.description
        Rb_netlist.Netlist.pp_stats locked.Rb_netlist.Lock.circuit;
      let t0 = Sys.time () in
      (match Rb_sat.Attack.attack_locked ~max_iterations:20_000 locked with
       | Rb_sat.Attack.Broken { key; iterations } ->
         Format.printf "broken in %d DIP iterations (%.2fs); recovered key %s@." iterations
           (Sys.time () -. t0)
           (if Rb_sat.Attack.key_is_correct locked key then "is functionally correct"
            else "FAILS verification")
       | Rb_sat.Attack.Budget_exceeded { iterations } ->
         Format.printf "survived %d iterations (%.2fs)@." iterations (Sys.time () -. t0)
       | Rb_sat.Attack.Solver_limit { iterations; reason } ->
         Format.printf "solver %s budget exhausted after %d iterations (%.2fs)@."
           (Rb_util.Limits.reason_label reason) iterations (Sys.time () -. t0));
      Ok ()
    end
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run the oracle-guided SAT attack on a locked adder.")
    Term.(term_result (const run $ scheme_arg $ width_arg $ strength_arg $ seed_arg))

(* ------------------------------------------------------------- analyze *)

let analyze_cmd =
  let scheme_kind =
    Arg.enum
      [ ("all", `All); ("rll", `Rll); ("pf", `Pf); ("antisat", `Antisat);
        ("permnet", `Permnet) ]
  in
  let scheme_arg =
    Arg.(value & opt scheme_kind `All & info [ "scheme" ] ~docv:"SCHEME"
           ~doc:"Scheme to analyze: rll, pf, antisat, permnet, or all.")
  in
  let width_arg =
    Arg.(value & opt int 4 & info [ "width" ] ~docv:"W" ~doc:"Adder operand width in bits.")
  in
  let strength_arg =
    Arg.(value & opt int 4 & info [ "strength" ] ~docv:"S"
           ~doc:"Key gates (rll), protected minterms (pf), or layers (permnet).")
  in
  let fail_arg =
    Arg.(value & flag & info [ "fail-on-inferable" ]
           ~doc:"Exit non-zero when any analyzed design has statically inferable \
                 key bits (CI guard for SAT-hard schemes).")
  in
  let build_design width strength seed = function
    | `Rll ->
      let rng = Rb_util.Rng.create seed in
      let l = Rb_netlist.Lock.xor_random ~rng ~key_bits:strength
          (Rb_netlist.Circuits.adder ~width) in
      (l.Rb_netlist.Lock.description, l.Rb_netlist.Lock.circuit)
    | `Pf ->
      let rng = Rb_util.Rng.create seed in
      let space = 1 lsl (2 * width) in
      let minterms = List.init strength (fun _ -> Rb_util.Rng.int rng space) in
      let l = Rb_netlist.Lock.point_function ~minterms
          (Rb_netlist.Circuits.adder ~width) in
      (l.Rb_netlist.Lock.description, l.Rb_netlist.Lock.circuit)
    | `Antisat ->
      let rng = Rb_util.Rng.create seed in
      let l = Rb_netlist.Lock.anti_sat ~rng (Rb_netlist.Circuits.adder ~width) in
      (l.Rb_netlist.Lock.description, l.Rb_netlist.Lock.circuit)
    | `Permnet ->
      let rng = Rb_util.Rng.create seed in
      let l = Rb_netlist.Lock.permutation_network ~rng ~layers:strength
          (Rb_netlist.Circuits.adder ~width) in
      (l.Rb_netlist.Lock.description, l.Rb_netlist.Lock.circuit)
  in
  let run scheme width strength seed format jobs fail_on_inferable =
    if width < 2 || width > 8 then Error (`Msg "width must be in 2..8")
    else begin
      let schemes =
        match scheme with
        | `All -> [ `Rll; `Pf; `Antisat; `Permnet ]
        | (`Rll | `Pf | `Antisat | `Permnet) as s -> [ s ]
      in
      let designs = List.map (build_design width strength seed) schemes in
      let reports =
        Pool.with_pool ~jobs (fun pool ->
            Pool.map_list pool
              ~f:(fun (subject, c) -> Rb_analysis.Report.analyze ~subject c)
              designs)
      in
      (match format with
       | `Json ->
         print_endline
           (Json.to_string
              (Json.Obj
                 [ ("schema", Json.String "rb-analyze/1");
                   ("reports",
                    Json.List (List.map Rb_analysis.Report.to_json reports)) ]))
       | `Text ->
         List.iter (fun r -> Format.printf "%a@." Rb_analysis.Report.pp r) reports);
      let inferable =
        List.fold_left
          (fun acc r -> acc + List.length r.Rb_analysis.Report.inferable)
          0 reports
      in
      if fail_on_inferable && inferable > 0 then
        Error (`Msg (Printf.sprintf "analyze: %d key bit%s statically inferable"
                       inferable (if inferable = 1 then "" else "s")))
      else Ok ()
    end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static vulnerability report for locked designs: oracle-less key \
             inference, probability skew, dead logic, cycles and key \
             observability.")
    Term.(term_result
            (const run $ scheme_arg $ width_arg $ strength_arg $ seed_arg
             $ format_arg $ jobs_arg $ fail_arg))

(* -------------------------------------------------------------- custom *)

let custom_cmd =
  let file_arg =
    Arg.(required & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE"
           ~doc:"Kernel in the DFG text format, or behavioural expression code \
                 when the file ends in .expr (see lib/dfg/expr.mli).")
  in
  let trace_len_arg =
    Arg.(value & opt int 256 & info [ "trace-length" ] ~docv:"N"
           ~doc:"Synthesized workload length (heavy-tailed generator).")
  in
  let run file kind locked_fu_count minterms_per_fu trace_length seed =
    let contents =
      let ic = open_in file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let parsed =
      if Filename.check_suffix file ".expr" then Rb_dfg.Expr.compile contents
      else Rb_dfg.Dfg_text.of_string contents
    in
    Result.bind (Result.map_error (fun e -> `Msg e) parsed) (fun dfg ->
        let schedule = Rb_sched.Scheduler.path_based dfg in
        let allocation = Allocation.for_schedule schedule in
        (* heavy-tailed synthetic workload for the user kernel *)
        let rng = Rb_util.Rng.create seed in
        let palette = [| 0; 3; 16; 64; 128; 255 |] in
        let trace =
          Rb_sim.Trace.generate dfg ~n:trace_length ~f:(fun _ _ ->
              if Rb_util.Rng.int rng 10 < 8 then Rb_util.Rng.pick rng palette
              else Rb_util.Rng.int rng 256)
        in
        let k = Kmatrix.build trace in
        let fus = Allocation.fu_ids allocation kind in
        let candidates = Array.of_list (Kmatrix.top_minterms ~kind k ~n:10) in
        if List.length fus < locked_fu_count then
          Error (`Msg (Printf.sprintf "only %d %s FUs allocated" (List.length fus)
                         (Dfg.kind_label kind)))
        else if Array.length candidates < minterms_per_fu then
          Error (`Msg "not enough candidate minterms in the synthesized workload")
        else begin
          let spec =
            { Rb_core.Codesign.scheme = Scheme.Sfll_rem;
              locked_fus = List.filteri (fun i _ -> i < locked_fu_count) fus;
              minterms_per_fu; candidates }
          in
          let solution = Rb_core.Codesign.heuristic k schedule allocation spec in
          Format.printf "%a@.%a, allocated %a@." Dfg.pp dfg Schedule.pp schedule
            Allocation.pp allocation;
          Format.printf "co-designed locking: %a@." Config.pp
            solution.Rb_core.Codesign.config;
          Format.printf "expected application errors (Eqn. 2): %d over %d samples@."
            solution.Rb_core.Codesign.errors trace_length;
          let baseline = Rb_hls.Area_binding.bind schedule allocation in
          Format.printf "same lock under area-aware binding:   %d@."
            (Cost.expected_errors k baseline solution.Rb_core.Codesign.config);
          Ok ()
        end)
  in
  Cmd.v
    (Cmd.info "custom" ~doc:"Co-design binding/locking for a user kernel in DFG text format.")
    Term.(term_result
            (const run $ file_arg $ kind_arg $ locked_fus_arg $ minterms_arg
             $ trace_len_arg $ seed_arg))

(* ---------------------------------------------------------- export-dfg *)

let export_dfg_cmd =
  let run name =
    Result.map
      (fun b -> print_string (Rb_dfg.Dfg_text.to_string b.Benchmark.dfg))
      (lookup name)
  in
  Cmd.v
    (Cmd.info "export-dfg"
       ~doc:"Print a benchmark in the DFG text format (a template for 'custom').")
    Term.(term_result (const run $ benchmark_arg))

(* ---------------------------------------------------------- export-cnf *)

let export_cnf_cmd =
  let scheme_kind = Arg.enum [ ("rll", `Rll); ("pf", `Pf); ("permnet", `Permnet) ] in
  let scheme_arg =
    Arg.(value & opt scheme_kind `Pf & info [ "scheme" ] ~docv:"SCHEME"
           ~doc:"Locking scheme: rll, pf (point function), or permnet.")
  in
  let width_arg =
    Arg.(value & opt int 4 & info [ "width" ] ~docv:"W" ~doc:"Adder operand width in bits.")
  in
  let strength_arg =
    Arg.(value & opt int 2 & info [ "strength" ] ~docv:"S"
           ~doc:"Key gates (rll), protected minterms (pf), or layers (permnet).")
  in
  let miter_arg =
    Arg.(value & flag & info [ "miter" ]
           ~doc:"Emit the two-copy SAT-attack miter instead of a single copy.")
  in
  let run scheme width strength miter seed =
    if width < 2 || width > 10 then Error (`Msg "width must be in 2..10")
    else begin
      let base = Rb_netlist.Circuits.adder ~width in
      let rng = Rb_util.Rng.create seed in
      let locked =
        match scheme with
        | `Rll -> Rb_netlist.Lock.xor_random ~rng ~key_bits:strength base
        | `Pf ->
          let space = 1 lsl (2 * width) in
          let minterms = List.init strength (fun _ -> Rb_util.Rng.int rng space) in
          Rb_netlist.Lock.point_function ~minterms base
        | `Permnet -> Rb_netlist.Lock.permutation_network ~rng ~layers:strength base
      in
      let d =
        if miter then Rb_sat.Dimacs.miter locked.Rb_netlist.Lock.circuit
        else Rb_sat.Dimacs.of_netlist locked.Rb_netlist.Lock.circuit
      in
      print_string
        (Rb_sat.Dimacs.to_string
           ~comments:
             [
               Printf.sprintf "%s on a %d-bit adder%s" locked.Rb_netlist.Lock.description
                 width
                 (if miter then " (SAT-attack miter)" else "");
             ]
           d);
      Ok ()
    end
  in
  Cmd.v
    (Cmd.info "export-cnf" ~doc:"Emit a locked adder (or its attack miter) as DIMACS CNF.")
    Term.(term_result (const run $ scheme_arg $ width_arg $ strength_arg $ miter_arg $ seed_arg))

(* ----------------------------------------------------------------- dot *)

let dot_cmd =
  let run name =
    Result.map (fun b -> print_string (Dfg.to_dot b.Benchmark.dfg)) (lookup name)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Print the benchmark's DFG in Graphviz format.")
    Term.(term_result (const run $ benchmark_arg))

let () =
  let info =
    Cmd.info "bindlock" ~version:"1.0.0"
      ~doc:"Security-aware resource binding for logic obfuscation (DAC'21 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; show_cmd; bind_cmd; lint_cmd; analyze_cmd; custom_cmd;
            attack_cmd; export_cnf_cmd; export_dfg_cmd; dot_cmd ]))
