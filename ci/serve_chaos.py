#!/usr/bin/env python3
"""Chaos client for the bindlock serve socket daemon.

Hammers a daemon (expected to be running under deterministic fault
injection on the serve/conn and store/evict sites, with a small
--store-cap and a --max-inflight cap) with concurrent sessions mixing
valid, malformed and oversized NDJSON requests, plus one client that
hangs up mid-request. The contract under test:

- every non-blank request line gets exactly one rb-result/1 line back,
  in request order, whatever the request's quality;
- a connection killed by the serve/conn fault dies alone: a fresh
  connection must succeed;
- an oversized line answers one invalid-request error and does not
  poison the lines after it;
- a client dying mid-request costs nobody else anything.

Exits non-zero (assertion or SystemExit) on any violation.
"""

import json
import socket
import sys
import threading
import time

PATH = sys.argv[1]
MAX_ATTEMPTS = 40


def session(lines):
    """One connection: send all lines, half-close, read to EOF.

    Returns the response lines, or None if the connection was killed
    (fault injection at accept, or reset mid-stream).
    """
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        s.connect(PATH)
        s.sendall("".join(l + "\n" for l in lines).encode())
        s.shutdown(socket.SHUT_WR)
        data = b""
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            data += chunk
        return [l for l in data.decode().splitlines() if l]
    except (ConnectionResetError, BrokenPipeError, ConnectionRefusedError):
        return None
    finally:
        s.close()


def robust_session(lines, expect):
    """Retry until a connection survives fault injection end to end."""
    for _ in range(MAX_ATTEMPTS):
        got = session(lines)
        if got is None or len(got) != expect:
            # this connection's handler was killed: its death must be
            # private, so a fresh connection gets a fresh chance
            time.sleep(0.05)
            continue
        for line in got:
            r = json.loads(line)
            assert r.get("schema") == "rb-result/1", f"not an rb-result/1: {line}"
        return got
    raise SystemExit(f"no successful session after {MAX_ATTEMPTS} attempts")


VALID = [
    '{"schema":"rb-job/1","id":0,"op":"list"}',
    '{"schema":"rb-job/1","id":1,"op":"show","benchmark":"dct"}',
    '{"schema":"rb-job/1","id":2,"op":"bind","benchmark":"dct"}',
    '{"schema":"rb-job/1","id":3,"op":"export-cnf","scheme":"pf","strength":2}',
    '{"schema":"rb-job/1","id":4,"op":"list","deadline_ms":60000}',
]
MALFORMED = [
    "not json at all",
    '{"schema":"rb-job/2","id":5,"op":"list"}',
    '{"schema":"rb-job/1","id":6,"op":"show","benchmark":"nope"}',
    '{"schema":"rb-job/1","id":7,"op":"list","deadline_ms":-1}',
]


def mixed_client(i, failures):
    try:
        # rotate the mix per client so sessions are not identical
        lines = VALID[i % len(VALID) :] + MALFORMED + VALID[: i % len(VALID)]
        got = robust_session(lines, len(lines))
        oks = sum(1 for l in got if '"ok"' in l)
        errs = sum(1 for l in got if '"error"' in l)
        assert oks + errs == len(lines), f"client {i}: {oks} ok + {errs} err"
        assert errs >= len(MALFORMED), f"client {i}: malformed lines not rejected"
    except BaseException as e:  # noqa: BLE001 - report into the main thread
        failures.append(f"client {i}: {e!r}")


def main():
    # One client hangs up mid-request before anyone else starts.
    k = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    k.connect(PATH)
    k.sendall(b'{"schema":"rb-job/1","id":99,"op":"bi')
    k.close()

    failures = []
    threads = [
        threading.Thread(target=mixed_client, args=(i, failures)) for i in range(8)
    ]
    for t in threads:
        t.start()

    # Meanwhile: an oversized line (beyond the 16 MiB cap) answers one
    # invalid-request error and the next line still runs.
    big = (
        '{"schema":"rb-job/1","id":9,"op":"list","pad":"'
        + "x" * (17 * 1024 * 1024)
        + '"}'
    )
    got = robust_session([big, '{"schema":"rb-job/1","id":10,"op":"list"}'], 2)
    assert "request line exceeds" in got[0], f"oversized answer: {got[0]}"
    assert '"ok"' in got[1], f"line after oversized did not run: {got[1]}"

    for t in threads:
        t.join()
    if failures:
        raise SystemExit("\n".join(failures))
    print("serve chaos: all sessions answered line-for-line")


if __name__ == "__main__":
    main()
