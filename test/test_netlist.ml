module Netlist = Rb_netlist.Netlist
module Circuits = Rb_netlist.Circuits
module Lock = Rb_netlist.Lock
module Word = Rb_dfg.Word
module Rng = Rb_util.Rng
module B = Netlist.Builder

let pack_bools bits =
  Array.to_list bits
  |> List.mapi (fun i b -> if b then 1 lsl i else 0)
  |> List.fold_left ( lor ) 0

let no_keys = [||]

(* ---------------------------------------------------------- structural *)

let test_builder_basics () =
  let b = B.create ~n_inputs:2 ~n_keys:0 in
  let x = B.input b 0 and y = B.input b 1 in
  let g = B.and_ b x y in
  B.output b g;
  let c = B.finish b in
  Alcotest.(check int) "inputs" 2 (Netlist.n_inputs c);
  Alcotest.(check int) "gates" 1 (Netlist.n_gates c);
  Alcotest.(check int) "and(1,1)" 1 (Netlist.eval_words c ~inputs:3 ~keys:0);
  Alcotest.(check int) "and(1,0)" 0 (Netlist.eval_words c ~inputs:1 ~keys:0)

let test_eval_words_rejects_wide_circuits () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | (_ : int) -> Alcotest.fail "expected Invalid_argument"
  in
  (* 63 inputs: packed input word would not fit an OCaml int *)
  let b = B.create ~n_inputs:63 ~n_keys:0 in
  B.output b (B.input b 0);
  let wide_in = B.finish b in
  expect_invalid (fun () -> Netlist.eval_words wide_in ~inputs:0 ~keys:0);
  (* 63 outputs over one input *)
  let b = B.create ~n_inputs:1 ~n_keys:0 in
  for _ = 1 to 63 do
    B.output b (B.gate b (Netlist.Buf (B.input b 0)))
  done;
  let wide_out = B.finish b in
  expect_invalid (fun () -> Netlist.eval_words wide_out ~inputs:1 ~keys:0);
  (* 63 keys *)
  let b = B.create ~n_inputs:1 ~n_keys:63 in
  B.output b (B.xor_ b (B.input b 0) (B.key b 62));
  let wide_key = B.finish b in
  expect_invalid (fun () -> Netlist.eval_words wide_key ~inputs:1 ~keys:0);
  (* 62 of everything is still fine *)
  let b = B.create ~n_inputs:62 ~n_keys:0 in
  B.output b (B.input b 3);
  let ok = B.finish b in
  Alcotest.(check int) "62 inputs ok" 1 (Netlist.eval_words ok ~inputs:8 ~keys:0)

let test_all_gate_semantics () =
  let b = B.create ~n_inputs:3 ~n_keys:0 in
  let x = B.input b 0 and y = B.input b 1 and s = B.input b 2 in
  List.iter
    (fun g -> B.output b (B.gate b g))
    [
      Netlist.And (x, y); Netlist.Or (x, y); Netlist.Xor (x, y);
      Netlist.Nand (x, y); Netlist.Nor (x, y); Netlist.Xnor (x, y);
      Netlist.Not x; Netlist.Buf x; Netlist.Mux (s, x, y);
      Netlist.Const true; Netlist.Const false;
    ];
  let c = B.finish b in
  for v = 0 to 7 do
    let x = v land 1 = 1 and y = v land 2 = 2 and s = v land 4 = 4 in
    let out = Netlist.eval c ~inputs:[| x; y; s |] ~keys:no_keys in
    let expect =
      [| x && y; x || y; x <> y; not (x && y); not (x || y); x = y;
         not x; x; (if s then y else x); true; false |]
    in
    Alcotest.(check (array bool)) (Printf.sprintf "input %d" v) expect out
  done

let test_builder_rejects_undefined_net () =
  let b = B.create ~n_inputs:1 ~n_keys:0 in
  match B.and_ b 0 99 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undefined net accepted"

let test_eval_width_mismatch () =
  let c = Circuits.adder ~width:4 in
  match Netlist.eval c ~inputs:[| true |] ~keys:no_keys with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "width mismatch accepted"

let test_fanin_cone () =
  let c = Circuits.adder ~width:4 in
  let last_output = (Netlist.outputs c).(3) in
  let cone = Netlist.fanin_cone_size c last_output in
  Alcotest.(check bool) "msb cone spans most of the adder" true
    (cone > 10 && cone <= Netlist.n_gates c)

(* ---------------------------------------------------------- arithmetic *)

let test_adder_exhaustive () =
  let width = 4 in
  let c = Circuits.adder ~width in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let out = Netlist.eval_words c ~inputs:(a lor (b lsl width)) ~keys:0 in
      Alcotest.(check int) (Printf.sprintf "%d+%d" a b) ((a + b) land 15) out
    done
  done

let test_multiplier_exhaustive () =
  let width = 4 in
  let c = Circuits.multiplier ~width in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let out = Netlist.eval_words c ~inputs:(a lor (b lsl width)) ~keys:0 in
      Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b land 15) out
    done
  done

let test_adder_word_width_matches_word_module () =
  let c = Circuits.adder ~width:Word.width in
  let rng = Rng.create 99 in
  for _ = 1 to 500 do
    let a = Rng.int rng 256 and b = Rng.int rng 256 in
    let out = Netlist.eval_words c ~inputs:(a lor (b lsl Word.width)) ~keys:0 in
    Alcotest.(check int) "matches Word.add" (Word.add a b) out
  done

let test_equals_const () =
  let b = B.create ~n_inputs:4 ~n_keys:0 in
  let x = Array.init 4 (fun i -> B.input b i) in
  B.output b (Circuits.equals_const b x 0b1010);
  let c = B.finish b in
  for v = 0 to 15 do
    Alcotest.(check int) (Printf.sprintf "v=%d" v)
      (if v = 0b1010 then 1 else 0)
      (Netlist.eval_words c ~inputs:v ~keys:0)
  done

let test_equals_bits () =
  let b = B.create ~n_inputs:6 ~n_keys:0 in
  let x = Array.init 3 (fun i -> B.input b i) in
  let y = Array.init 3 (fun i -> B.input b (3 + i)) in
  B.output b (Circuits.equals_bits b x y);
  let c = B.finish b in
  for a = 0 to 7 do
    for bb = 0 to 7 do
      Alcotest.(check int) (Printf.sprintf "%d=%d" a bb)
        (if a = bb then 1 else 0)
        (Netlist.eval_words c ~inputs:(a lor (bb lsl 3)) ~keys:0)
    done
  done

(* ------------------------------------------------------------- locking *)

let correct_key_preserves locked base =
  let w = Netlist.n_inputs base in
  let key = pack_bools locked.Lock.correct_key in
  let ok = ref true in
  for v = 0 to (1 lsl w) - 1 do
    if
      Netlist.eval_words locked.Lock.circuit ~inputs:v ~keys:key
      <> Netlist.eval_words base ~inputs:v ~keys:0
    then ok := false
  done;
  !ok

let test_xor_lock_correct_key () =
  let rng = Rng.create 4 in
  let base = Circuits.adder ~width:4 in
  let locked = Lock.xor_random ~rng ~key_bits:10 base in
  Alcotest.(check int) "key width" 10 (Netlist.n_keys locked.Lock.circuit);
  Alcotest.(check bool) "correct key preserves function" true
    (correct_key_preserves locked base)

let test_xor_lock_wrong_key_corrupts () =
  let rng = Rng.create 5 in
  let base = Circuits.adder ~width:4 in
  let locked = Lock.xor_random ~rng ~key_bits:10 base in
  let wrong = Array.copy locked.Lock.correct_key in
  wrong.(0) <- not wrong.(0);
  Alcotest.(check bool) "wrong key corrupts something" true
    (Lock.error_rate locked ~key:wrong > 0.0)

let test_xor_lock_rejects_bad_args () =
  let rng = Rng.create 6 in
  let base = Circuits.adder ~width:2 in
  (match Lock.xor_random ~rng ~key_bits:10_000 base with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "oversized key accepted");
  let already = (Lock.xor_random ~rng ~key_bits:2 base).Lock.circuit in
  match Lock.xor_random ~rng ~key_bits:2 already with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double locking accepted"

let test_point_function_semantics () =
  let base = Circuits.adder ~width:3 in
  let protected_minterms = [ 5; 44 ] in
  let locked = Lock.point_function ~minterms:protected_minterms base in
  Alcotest.(check bool) "correct key preserves" true (correct_key_preserves locked base);
  (* A wrong key programming untouched patterns corrupts exactly the
     protected minterms plus the wrongly programmed ones. *)
  let n_in = Netlist.n_inputs base in
  let wrong_patterns = [ 9; 21 ] in
  let wrong = Array.make (Netlist.n_keys locked.Lock.circuit) false in
  List.iteri
    (fun j m ->
      for i = 0 to n_in - 1 do
        wrong.((j * n_in) + i) <- (m lsr i) land 1 = 1
      done)
    wrong_patterns;
  let diffs = Lock.wrong_key_locked_minterms locked ~key:wrong in
  Alcotest.(check (list int)) "locked inputs are static and known"
    (List.sort Int.compare (protected_minterms @ wrong_patterns))
    diffs

let test_point_function_error_rate_small () =
  let base = Circuits.adder ~width:3 in
  let locked = Lock.point_function ~minterms:[ 7 ] base in
  let wrong = Array.make (Netlist.n_keys locked.Lock.circuit) false in
  (* all-zero key programs pattern 0: errors at {0, 7} out of 64. *)
  Alcotest.(check (float 1e-9)) "2/64" (2.0 /. 64.0) (Lock.error_rate locked ~key:wrong)

let test_anti_sat_correct_key () =
  let rng = Rng.create 11 in
  let base = Circuits.adder ~width:3 in
  let locked = Lock.anti_sat ~rng base in
  Alcotest.(check int) "key width 2n" 12 (Netlist.n_keys locked.Lock.circuit);
  Alcotest.(check bool) "correct key preserves" true (correct_key_preserves locked base)

let test_anti_sat_any_matched_key_correct () =
  (* every key with K1 = K2 keeps Y = 0: multiple correct keys. *)
  let rng = Rng.create 12 in
  let base = Circuits.adder ~width:2 in
  let locked = Lock.anti_sat ~rng base in
  let half = Array.init 4 (fun i -> i mod 2 = 1) in
  let matched = Array.append half half in
  Alcotest.(check (float 1e-9)) "K1=K2 is correct" 0.0 (Lock.error_rate locked ~key:matched)

let test_anti_sat_wrong_key_one_minterm () =
  let rng = Rng.create 13 in
  let base = Circuits.adder ~width:3 in
  let locked = Lock.anti_sat ~rng base in
  let wrong = Array.copy locked.Lock.correct_key in
  wrong.(0) <- not wrong.(0);
  (* K1 differs from K2: exactly one corrupted input pattern *)
  Alcotest.(check int) "single locked input" 1
    (List.length (Lock.wrong_key_locked_minterms locked ~key:wrong))

let test_permutation_network () =
  let rng = Rng.create 7 in
  let base = Circuits.adder ~width:3 in
  let locked = Lock.permutation_network ~rng ~layers:4 base in
  Alcotest.(check bool) "correct key preserves" true (correct_key_preserves locked base);
  Alcotest.(check bool) "mux overhead is real" true
    (Lock.gate_overhead locked ~baseline:base > 0.0)

let test_permutation_network_wrong_key () =
  let rng = Rng.create 8 in
  let base = Circuits.multiplier ~width:3 in
  let locked = Lock.permutation_network ~rng ~layers:3 base in
  let wrong = Array.map not locked.Lock.correct_key in
  Alcotest.(check bool) "inverted controls corrupt heavily" true
    (Lock.error_rate locked ~key:wrong > 0.1)

let test_permutation_network_all_keys_drive_swaps () =
  (* Regression: offset layers of an even-width network have one swap
     fewer, and key bits used to be allocated as if every layer were
     full, leaving dead key inputs. Every key bit must now reach an
     output. *)
  List.iter
    (fun (width, layers) ->
      let rng = Rng.create 21 in
      let base = Circuits.adder ~width in
      let locked = Lock.permutation_network ~rng ~layers base in
      let cone = Rb_analysis.Engine.output_cone locked.Lock.circuit in
      let c = locked.Lock.circuit in
      for k = 0 to Netlist.n_keys c - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "w%d l%d key %d live" width layers k)
          true
          cone.(Netlist.n_inputs c + k)
      done)
    [ (2, 2); (3, 3); (4, 2); (4, 5) ]

(* ------------------------------------------------------------- verilog *)

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let test_verilog_gates_structure () =
  let base = Circuits.adder ~width:3 in
  let rng = Rng.create 3 in
  let locked = Lock.xor_random ~rng ~key_bits:4 base in
  let v = Rb_netlist.Verilog_gates.emit ~module_name:"locked_adder" locked.Lock.circuit in
  List.iter
    (fun affix -> Alcotest.(check bool) (affix ^ " present") true (contains ~affix v))
    [ "module locked_adder"; "endmodule"; "input [3:0] key"; "input in_0"; "assign out_0" ];
  (* one wire per gate *)
  Alcotest.(check bool) "last gate present" true
    (contains ~affix:(Printf.sprintf "wire n%d" (Netlist.n_gates locked.Lock.circuit - 1)) v)

let test_verilog_gates_unlocked_has_no_key_port () =
  let v = Rb_netlist.Verilog_gates.emit (Circuits.multiplier ~width:2) in
  Alcotest.(check bool) "no key port" false (contains ~affix:"] key" v)

let qcheck_adder_random_widths =
  QCheck2.Test.make ~name:"adders wrap at any width" ~count:100
    QCheck2.Gen.(triple (int_range 1 8) (int_range 0 255) (int_range 0 255))
    (fun (w, a, b) ->
      let mask = (1 lsl w) - 1 in
      let a = a land mask and b = b land mask in
      let c = Circuits.adder ~width:w in
      Netlist.eval_words c ~inputs:(a lor (b lsl w)) ~keys:0 = (a + b) land mask)

let qcheck_multiplier_random_widths =
  QCheck2.Test.make ~name:"multipliers truncate at any width" ~count:100
    QCheck2.Gen.(triple (int_range 1 6) (int_range 0 255) (int_range 0 255))
    (fun (w, a, b) ->
      let mask = (1 lsl w) - 1 in
      let a = a land mask and b = b land mask in
      let c = Circuits.multiplier ~width:w in
      Netlist.eval_words c ~inputs:(a lor (b lsl w)) ~keys:0 = a * b land mask)

let qcheck_xor_lock_flipping_one_bit =
  QCheck2.Test.make ~name:"flipping any key bit of RLL corrupts" ~count:30
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 7))
    (fun (seed, bit) ->
      let rng = Rng.create seed in
      let base = Circuits.adder ~width:3 in
      let locked = Lock.xor_random ~rng ~key_bits:8 base in
      let wrong = Array.copy locked.Lock.correct_key in
      wrong.(bit) <- not wrong.(bit);
      (* an inverted key gate must corrupt at least one input pattern
         unless it is masked by reconvergence; RLL on a ripple adder
         has no masking for single-bit flips on these positions *)
      Lock.error_rate locked ~key:wrong > 0.0)

let () =
  Alcotest.run "rb_netlist"
    [
      ( "structure",
        [
          Alcotest.test_case "builder basics" `Quick test_builder_basics;
          Alcotest.test_case "gate semantics" `Quick test_all_gate_semantics;
          Alcotest.test_case "eval_words width guard" `Quick
            test_eval_words_rejects_wide_circuits;
          Alcotest.test_case "undefined net" `Quick test_builder_rejects_undefined_net;
          Alcotest.test_case "width mismatch" `Quick test_eval_width_mismatch;
          Alcotest.test_case "fanin cone" `Quick test_fanin_cone;
        ] );
      ( "arithmetic",
        [
          Alcotest.test_case "adder exhaustive" `Quick test_adder_exhaustive;
          Alcotest.test_case "multiplier exhaustive" `Quick test_multiplier_exhaustive;
          Alcotest.test_case "word-width adder" `Quick test_adder_word_width_matches_word_module;
          Alcotest.test_case "equals const" `Quick test_equals_const;
          Alcotest.test_case "equals bits" `Quick test_equals_bits;
        ] );
      ( "locking",
        [
          Alcotest.test_case "xor correct key" `Quick test_xor_lock_correct_key;
          Alcotest.test_case "xor wrong key" `Quick test_xor_lock_wrong_key_corrupts;
          Alcotest.test_case "xor bad args" `Quick test_xor_lock_rejects_bad_args;
          Alcotest.test_case "point function semantics" `Quick test_point_function_semantics;
          Alcotest.test_case "point function rate" `Quick test_point_function_error_rate_small;
          Alcotest.test_case "anti-sat correct key" `Quick test_anti_sat_correct_key;
          Alcotest.test_case "anti-sat matched keys" `Quick test_anti_sat_any_matched_key_correct;
          Alcotest.test_case "anti-sat wrong key" `Quick test_anti_sat_wrong_key_one_minterm;
          Alcotest.test_case "permutation network" `Quick test_permutation_network;
          Alcotest.test_case "permnet wrong key" `Quick test_permutation_network_wrong_key;
          Alcotest.test_case "permnet keys all live" `Quick
            test_permutation_network_all_keys_drive_swaps;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "structure" `Quick test_verilog_gates_structure;
          Alcotest.test_case "no key port" `Quick test_verilog_gates_unlocked_has_no_key_port;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_adder_random_widths;
            qcheck_multiplier_random_widths;
            qcheck_xor_lock_flipping_one_bit;
          ] );
    ]
