module Dfg = Rb_dfg.Dfg
module Schedule = Rb_sched.Schedule
module Scheduler = Rb_sched.Scheduler
module Allocation = Rb_hls.Allocation
module Binding = Rb_hls.Binding
module Bind_engine = Rb_hls.Bind_engine
module Profile = Rb_hls.Profile
module Registers = Rb_hls.Registers
module Switching = Rb_hls.Switching
module Testgen = Rb_testsupport.Testgen
module Exec = Rb_sim.Exec

let setup seed =
  let dfg = Testgen.random_dfg seed ~n_ops:24 in
  let schedule = Scheduler.path_based dfg in
  let allocation = Allocation.for_schedule schedule in
  (dfg, schedule, allocation)

(* ---------------------------------------------------------- allocation *)

let test_allocation_matches_concurrency () =
  let _, schedule, allocation = setup 1 in
  Alcotest.(check int) "adders" (Schedule.max_concurrency schedule Dfg.Add) allocation.Allocation.adders;
  Alcotest.(check int) "multipliers" (Schedule.max_concurrency schedule Dfg.Mul)
    allocation.Allocation.multipliers

let test_allocation_fu_ids () =
  let a = { Allocation.adders = 2; multipliers = 3 } in
  Alcotest.(check (list int)) "adders first" [ 0; 1 ] (Allocation.fu_ids a Dfg.Add);
  Alcotest.(check (list int)) "mults after" [ 2; 3; 4 ] (Allocation.fu_ids a Dfg.Mul);
  Alcotest.(check bool) "kind of 1" true (Allocation.kind_of_fu a 1 = Dfg.Add);
  Alcotest.(check bool) "kind of 4" true (Allocation.kind_of_fu a 4 = Dfg.Mul);
  match Allocation.kind_of_fu a 5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of range accepted"

(* ------------------------------------------------------------- binding *)

let test_binding_validation () =
  let dfg = Testgen.fig2_dfg () in
  let schedule = Testgen.fig2_schedule dfg in
  let allocation = { Allocation.adders = 3; multipliers = 0 } in
  (* valid binding *)
  let b = Binding.make schedule allocation ~fu_of_op:[| 0; 1; 0; 1; 2 |] in
  Alcotest.(check int) "fu of OPE" 2 (Binding.fu_of_op b 4);
  Alcotest.(check (list int)) "ops on FU0" [ 0; 2 ] (Binding.ops_on_fu b 0);
  (* double booking: OPA and OPB both cycle 0 on FU0 *)
  (match Binding.make schedule allocation ~fu_of_op:[| 0; 0; 0; 1; 2 |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "double booking accepted");
  (* wrong length *)
  (match Binding.make schedule allocation ~fu_of_op:[| 0; 1 |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "wrong length accepted");
  (* out of range FU *)
  match Binding.make schedule allocation ~fu_of_op:[| 0; 1; 0; 1; 7 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad FU accepted"

let test_binding_wrong_kind_rejected () =
  let _, schedule, allocation = setup 2 in
  let dfg = Schedule.dfg schedule in
  match
    (* bind everything to FU 0 (an adder) including multiplies *)
    Binding.make schedule allocation ~fu_of_op:(Array.make (Dfg.op_count dfg) 0)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted"

let test_ops_on_fu_in_time_sorted () =
  let _, schedule, allocation = setup 3 in
  let binding = Testgen.random_valid_binding 99 schedule allocation in
  for fu = 0 to Allocation.total allocation - 1 do
    let cycles =
      List.map (Schedule.cycle_of schedule) (Binding.ops_on_fu_in_time binding fu)
    in
    Alcotest.(check bool) "sorted by cycle" true (List.sort Int.compare cycles = cycles)
  done

(* --------------------------------------------------------- bind engine *)

let test_engine_produces_valid_bindings () =
  let _, schedule, allocation = setup 4 in
  let binding =
    Bind_engine.bind ~objective:`Maximize
      ~weight:(fun ~kind:_ ~cycle:_ ~op ~fu -> float_of_int ((op * 7) + fu))
      schedule allocation
  in
  (* Binding.make inside the engine validates; spot-check coverage. *)
  let dfg = Schedule.dfg schedule in
  for id = 0 to Dfg.op_count dfg - 1 do
    Alcotest.(check bool) "bound" true (Binding.fu_of_op binding id >= 0)
  done

let test_engine_respects_weights () =
  (* A weight function that strongly prefers one FU per op must be
     honoured when there is no conflict. *)
  let dfg = Testgen.fig2_dfg () in
  let schedule = Testgen.fig2_schedule dfg in
  let allocation = { Allocation.adders = 3; multipliers = 0 } in
  let preferred = [| 2; 0; 1; 0; 2 |] in
  let binding =
    Bind_engine.bind ~objective:`Maximize
      ~weight:(fun ~kind:_ ~cycle:_ ~op ~fu -> if preferred.(op) = fu then 10.0 else 0.0)
      schedule allocation
  in
  Array.iteri
    (fun op fu -> Alcotest.(check int) (Printf.sprintf "op %d" op) fu (Binding.fu_of_op binding op))
    preferred

let test_engine_rejects_small_allocation () =
  let dfg = Testgen.fig2_dfg () in
  let schedule = Testgen.fig2_schedule dfg in
  let allocation = { Allocation.adders = 2; multipliers = 0 } in
  (* cycle 1 has 3 concurrent adds *)
  match
    Bind_engine.bind ~objective:`Maximize
      ~weight:(fun ~kind:_ ~cycle:_ ~op:_ ~fu:_ -> 0.0)
      schedule allocation
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undersized allocation accepted"

(* ------------------------------------------------------------- profile *)

let test_profile_matches_exec () =
  let dfg = Testgen.random_dfg 5 ~n_ops:10 in
  let trace = Testgen.random_trace 6 dfg in
  let profile = Profile.build trace in
  Alcotest.(check int) "samples" (Rb_sim.Trace.length trace) (Profile.n_samples profile);
  for s = 0 to Profile.n_samples profile - 1 do
    let evals = Exec.eval_clean trace ~sample:s in
    for op = 0 to Dfg.op_count dfg - 1 do
      let a, b = Profile.operands profile op ~sample:s in
      Alcotest.(check (pair int int)) "operands agree"
        (evals.(op).Exec.a, evals.(op).Exec.b)
        (a, b)
    done
  done

let test_expected_hamming_properties () =
  let dfg = Testgen.random_dfg 7 ~n_ops:8 in
  let trace = Testgen.random_trace 8 dfg in
  let profile = Profile.build trace in
  Alcotest.(check (float 1e-9)) "self distance" 0.0 (Profile.expected_input_hamming profile 3 3);
  Alcotest.(check (float 1e-9)) "symmetry"
    (Profile.expected_input_hamming profile 1 4)
    (Profile.expected_input_hamming profile 4 1);
  Alcotest.(check bool) "bounded by 2w" true
    (Profile.expected_input_hamming profile 0 5 <= 16.0)

(* --------------------------------------------------- baseline binders *)

let test_area_binding_beats_random_on_registers () =
  let wins = ref 0 and total = ref 0 in
  List.iter
    (fun seed ->
      let _, schedule, allocation = setup seed in
      let area = Rb_hls.Area_binding.bind schedule allocation in
      let area_regs = Registers.count area in
      List.iter
        (fun bseed ->
          let random = Testgen.random_valid_binding bseed schedule allocation in
          incr total;
          if area_regs <= Registers.count random then incr wins)
        [ 101; 102; 103; 104; 105 ])
    [ 10; 11; 12; 13 ];
  (* The area binder optimizes the same metric greedily; it must beat
     or match random bindings nearly always. *)
  Alcotest.(check bool)
    (Printf.sprintf "wins %d/%d" !wins !total)
    true
    (float_of_int !wins /. float_of_int !total >= 0.8)

let test_power_binding_beats_random_on_switching () =
  let wins = ref 0 and total = ref 0 in
  List.iter
    (fun seed ->
      let dfg = Testgen.random_dfg seed ~n_ops:24 in
      let schedule = Scheduler.path_based dfg in
      let allocation = Allocation.for_schedule schedule in
      let trace = Testgen.skewed_trace (seed + 50) dfg in
      let profile = Profile.build trace in
      let power = Rb_hls.Power_binding.bind schedule allocation ~profile in
      let power_sw = Switching.rate power profile in
      List.iter
        (fun bseed ->
          let random = Testgen.random_valid_binding bseed schedule allocation in
          incr total;
          if power_sw <= Switching.rate random profile +. 1e-9 then incr wins)
        [ 201; 202; 203; 204; 205 ])
    [ 20; 21; 22; 23 ];
  Alcotest.(check bool)
    (Printf.sprintf "wins %d/%d" !wins !total)
    true
    (float_of_int !wins /. float_of_int !total >= 0.8)

(* ----------------------------------------------------------- overhead *)

let test_register_lifetimes () =
  let dfg = Testgen.fig2_dfg () in
  let schedule = Testgen.fig2_schedule dfg in
  let allocation = { Allocation.adders = 3; multipliers = 0 } in
  let binding = Binding.make schedule allocation ~fu_of_op:[| 0; 1; 0; 1; 2 |] in
  let lifetimes = Registers.value_lifetimes binding in
  (* OPA (id 0) born in cycle 0, last consumed by OPC/OPD in cycle 1. *)
  Alcotest.(check bool) "OPA lives 0->1" true (List.mem (0, 0, 1) lifetimes);
  (* OPC (id 2) is an output with no consumers: drained at birth. *)
  Alcotest.(check bool) "OPC drained" true (List.mem (2, 1, 1) lifetimes)

let test_register_count_positive_when_values_cross () =
  let _, schedule, allocation = setup 30 in
  let binding = Testgen.random_valid_binding 31 schedule allocation in
  Alcotest.(check bool) "non-negative" true (Registers.count binding >= 0)

let test_switching_rate_bounds () =
  let dfg = Testgen.random_dfg 32 ~n_ops:20 in
  let schedule = Scheduler.path_based dfg in
  let allocation = Allocation.for_schedule schedule in
  let trace = Testgen.random_trace 33 dfg in
  let profile = Profile.build trace in
  let binding = Testgen.random_valid_binding 34 schedule allocation in
  let rate = Switching.rate binding profile in
  Alcotest.(check bool) "in [0,1]" true (rate >= 0.0 && rate <= 1.0)

let test_switching_zero_when_no_transitions () =
  (* 2-op DFG on 2 FUs, one op each: no FU executes twice. *)
  let b = Dfg.Builder.create "two" in
  let a = Dfg.Builder.input b "a" in
  let x = Dfg.Builder.add b a a in
  let _y = Dfg.Builder.add b a x in
  let dfg = Dfg.Builder.finish b in
  let schedule = Schedule.make dfg ~cycle_of:[| 0; 1 |] in
  let allocation = { Allocation.adders = 2; multipliers = 0 } in
  let binding = Binding.make schedule allocation ~fu_of_op:[| 0; 1 |] in
  let trace = Testgen.random_trace 35 dfg in
  let profile = Profile.build trace in
  Alcotest.(check (float 1e-9)) "no transitions" 0.0 (Switching.rate binding profile)

(* ----------------------------------------------------- binder registry *)

module Binder = Rb_hls.Binder
module Kmatrix = Rb_sim.Kmatrix
module Config = Rb_locking.Config
module Scheme = Rb_locking.Scheme

let binder_input seed =
  let dfg = Testgen.random_dfg seed ~n_ops:24 in
  let schedule = Scheduler.path_based dfg in
  let allocation = Allocation.for_schedule schedule in
  let trace = Testgen.skewed_trace (seed + 1) dfg in
  let profile = Profile.build trace in
  let k = Kmatrix.build trace in
  let candidates = Array.of_list (Kmatrix.top_minterms ~kind:Dfg.Add k ~n:4) in
  let config = Config.make ~scheme:Scheme.Sfll_rem ~locks:[ (0, [ candidates.(0) ]) ] in
  { Binder.schedule; allocation; profile; k; config; candidates }

let test_binder_registry_names () =
  let names = Binder.names () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [ "area"; "power" ];
  Alcotest.(check (list string)) "sorted" (List.sort String.compare names) names

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let test_binder_require_unknown () =
  match Binder.require "no-such-binder" with
  | exception Invalid_argument msg ->
    (* the error must name the known binders so the CLI message is useful *)
    Alcotest.(check bool) "names the known binders" true
      (contains ~affix:"area" msg && contains ~affix:"power" msg)
  | _ -> Alcotest.fail "unknown binder accepted"

let test_binder_duplicate_rejected () =
  let module Dup = struct
    let name = "area"
    let description = "duplicate"
    let bind (input : Binder.input) =
      { Binder.binding = Rb_hls.Area_binding.bind input.schedule input.allocation;
        config = input.config }
  end in
  match Binder.register (module Dup) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate registration accepted"

let test_binder_registry_matches_direct () =
  let input = binder_input 42 in
  let via_registry = Binder.bind "area" input in
  let direct = Rb_hls.Area_binding.bind input.Binder.schedule input.Binder.allocation in
  Alcotest.(check bool) "area binding identical" true
    (via_registry.Binder.binding = direct);
  Alcotest.(check bool) "config echoed" true (via_registry.Binder.config == input.Binder.config);
  let via_registry = Binder.bind "power" input in
  let direct =
    Rb_hls.Power_binding.bind input.Binder.schedule input.Binder.allocation
      ~profile:input.Binder.profile
  in
  Alcotest.(check bool) "power binding identical" true
    (via_registry.Binder.binding = direct)

let qcheck_baseline_binders_always_valid =
  QCheck2.Test.make ~name:"area/power binders always produce valid bindings" ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let dfg = Testgen.random_dfg seed ~n_ops:(8 + (seed mod 20)) in
      let schedule = Scheduler.path_based dfg in
      let allocation = Allocation.for_schedule schedule in
      let trace = Testgen.skewed_trace (seed + 1) dfg in
      let profile = Profile.build trace in
      (* Binding.make raises on invalid results; reaching here means both passed. *)
      let (_ : Binding.t) = Rb_hls.Area_binding.bind schedule allocation in
      let (_ : Binding.t) = Rb_hls.Power_binding.bind schedule allocation ~profile in
      true)

let () =
  Alcotest.run "rb_hls"
    [
      ( "allocation",
        [
          Alcotest.test_case "matches concurrency" `Quick test_allocation_matches_concurrency;
          Alcotest.test_case "fu ids" `Quick test_allocation_fu_ids;
        ] );
      ( "binding",
        [
          Alcotest.test_case "validation" `Quick test_binding_validation;
          Alcotest.test_case "wrong kind" `Quick test_binding_wrong_kind_rejected;
          Alcotest.test_case "time order" `Quick test_ops_on_fu_in_time_sorted;
        ] );
      ( "engine",
        [
          Alcotest.test_case "valid bindings" `Quick test_engine_produces_valid_bindings;
          Alcotest.test_case "respects weights" `Quick test_engine_respects_weights;
          Alcotest.test_case "small allocation" `Quick test_engine_rejects_small_allocation;
        ] );
      ( "profile",
        [
          Alcotest.test_case "matches exec" `Quick test_profile_matches_exec;
          Alcotest.test_case "hamming properties" `Quick test_expected_hamming_properties;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "area beats random" `Slow test_area_binding_beats_random_on_registers;
          Alcotest.test_case "power beats random" `Slow test_power_binding_beats_random_on_switching;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "lifetimes" `Quick test_register_lifetimes;
          Alcotest.test_case "count sane" `Quick test_register_count_positive_when_values_cross;
          Alcotest.test_case "switching bounds" `Quick test_switching_rate_bounds;
          Alcotest.test_case "switching zero" `Quick test_switching_zero_when_no_transitions;
        ] );
      ( "binder",
        [
          Alcotest.test_case "registry names" `Quick test_binder_registry_names;
          Alcotest.test_case "unknown binder" `Quick test_binder_require_unknown;
          Alcotest.test_case "duplicate rejected" `Quick test_binder_duplicate_rejected;
          Alcotest.test_case "registry matches direct" `Quick
            test_binder_registry_matches_direct;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ qcheck_baseline_binders_always_valid ] );
    ]
