module Dfg = Rb_dfg.Dfg
module Minterm = Rb_dfg.Minterm
module Schedule = Rb_sched.Schedule
module Scheduler = Rb_sched.Scheduler
module Kmatrix = Rb_sim.Kmatrix
module Allocation = Rb_hls.Allocation
module Binding = Rb_hls.Binding
module Config = Rb_locking.Config
module Scheme = Rb_locking.Scheme
module Cost = Rb_core.Cost
module Obf_binding = Rb_core.Obf_binding
module Codesign = Rb_core.Codesign
module Methodology = Rb_core.Methodology
module Experiments = Rb_core.Experiments
module Testgen = Rb_testsupport.Testgen
module Limits = Rb_util.Limits
module Checkpoint = Rb_util.Checkpoint

(* The paper's Fig. 2 setting: 5 add operations over 2 cycles, 3 adder
   FUs, FU0 locks 'x' = (1,1), FU1 locks 'y' = (2,2). *)
let fig2_setting () =
  let dfg = Testgen.fig2_dfg () in
  let schedule = Testgen.fig2_schedule dfg in
  let allocation = { Allocation.adders = 3; multipliers = 0 } in
  let k = Testgen.fig2_kmatrix dfg in
  let config =
    Config.make ~scheme:Scheme.Sfll_rem
      ~locks:[ (0, [ Testgen.minterm_x ]); (1, [ Testgen.minterm_y ]) ]
  in
  (dfg, schedule, allocation, k, config)

(* ---------------------------------------------------------------- cost *)

let test_edge_weights_match_fig2 () =
  let _, _, _, k, config = fig2_setting () in
  (* w(FU0, OPA) = K(x, OPA) = 6; w(FU1, OPA) = K(y, OPA) = 9. *)
  Alcotest.(check int) "w(FU0,OPA)" 6 (Cost.edge_weight k config ~fu:0 ~op:0);
  Alcotest.(check int) "w(FU1,OPA)" 9 (Cost.edge_weight k config ~fu:1 ~op:0);
  Alcotest.(check int) "w(FU0,OPB)" 4 (Cost.edge_weight k config ~fu:0 ~op:1);
  Alcotest.(check int) "w(FU1,OPE)" 8 (Cost.edge_weight k config ~fu:1 ~op:4);
  Alcotest.(check int) "unlocked FU2 weighs 0" 0 (Cost.edge_weight k config ~fu:2 ~op:0)

let test_expected_errors_eqn2 () =
  let _, schedule, allocation, k, config = fig2_setting () in
  (* Fig. 2C's clock-1 solution: OPA->FU1, OPB->FU0 (cost 13). For
     clock 2 bind OPC->FU1 (7), OPD->FU2, OPE->FU0 (10): E = 30. *)
  let binding = Binding.make schedule allocation ~fu_of_op:[| 1; 0; 1; 2; 0 |] in
  Alcotest.(check int) "E = 13 + 17" 30 (Cost.expected_errors k binding config)

let test_cand_table_matches_kmatrix () =
  let dfg = Testgen.random_dfg 3 ~n_ops:10 in
  let trace = Testgen.skewed_trace 4 dfg in
  let k = Kmatrix.build trace in
  let candidates = Array.of_list (Kmatrix.top_minterms k ~n:6) in
  let table = Cost.cand_table k candidates in
  Array.iteri
    (fun c m ->
      for op = 0 to Dfg.op_count dfg - 1 do
        Alcotest.(check int) "cand count = K" (Kmatrix.count k m op)
          (Cost.cand_count table ~cand:c ~op)
      done)
    candidates;
  (* subset weight is additive *)
  let subset = [| 0; 2; 4 |] in
  for op = 0 to Dfg.op_count dfg - 1 do
    let expected =
      Array.fold_left (fun acc c -> acc + Kmatrix.count k candidates.(c) op) 0 subset
    in
    Alcotest.(check int) "subset weight" expected (Cost.subset_weight table ~subset ~op)
  done

(* --------------------------------------------------- obfuscation-aware *)

let test_obf_binding_reproduces_fig2_clock1 () =
  let _, schedule, allocation, k, config = fig2_setting () in
  let binding = Obf_binding.bind k config schedule allocation in
  (* Fig. 2C: OPA to FU1 (weight 9), OPB to FU0 (weight 4): cost 13 for
     clock 1; the matching is the unique optimum. *)
  Alcotest.(check int) "OPA -> FU1" 1 (Binding.fu_of_op binding 0);
  Alcotest.(check int) "OPB -> FU0" 0 (Binding.fu_of_op binding 1);
  (* Clock 2 optimum: OPC->FU1 (7), OPE->FU0 (10) = 17; total 30. *)
  Alcotest.(check int) "max errors" 30 (Cost.expected_errors k binding config)

let test_obf_binding_beats_all_bindings_fig2 () =
  (* Thm. 2 on a case small enough to enumerate: 3 FUs, cycle 0 has 2
     ops, cycle 1 has 3 ops: 6 * 6 = 36 bindings. *)
  let _, schedule, allocation, k, config = fig2_setting () in
  let obf = Obf_binding.bind k config schedule allocation in
  let obf_errors = Cost.expected_errors k obf config in
  let perms = [ [ 0; 1; 2 ]; [ 0; 2; 1 ]; [ 1; 0; 2 ]; [ 1; 2; 0 ]; [ 2; 0; 1 ]; [ 2; 1; 0 ] ] in
  List.iter
    (fun p0 ->
      List.iter
        (fun p1 ->
          match (p0, p1) with
          | a :: b :: _, [ c; d; e ] ->
            let binding =
              Binding.make schedule allocation ~fu_of_op:[| a; b; c; d; e |]
            in
            Alcotest.(check bool) "obf is max" true
              (Cost.expected_errors k binding config <= obf_errors)
          | _ -> assert false)
        perms)
    perms

let qcheck_obf_binding_optimal =
  (* Thm. 2 at property scale: obfuscation-aware binding dominates
     random valid bindings on Eqn. 2. *)
  QCheck2.Test.make ~name:"obf binding >= random bindings (Thm. 2)" ~count:60
    QCheck2.Gen.(pair (int_range 0 5_000) (int_range 0 1_000))
    (fun (seed, bseed) ->
      let dfg = Testgen.random_dfg seed ~n_ops:14 in
      let trace = Testgen.skewed_trace (seed + 1) dfg in
      let schedule = Scheduler.path_based dfg in
      let allocation = Allocation.for_schedule schedule in
      let k = Kmatrix.build trace in
      match Kmatrix.top_minterms k ~n:3 with
      | [] -> true
      | minterms ->
        let config = Config.make ~scheme:Scheme.Sfll_rem ~locks:[ (0, minterms) ] in
        let obf = Obf_binding.bind k config schedule allocation in
        let random = Testgen.random_valid_binding bseed schedule allocation in
        Cost.expected_errors k obf config >= Cost.expected_errors k random config)

(* Enumerate every valid binding of a small scheduled DFG and check the
   obfuscation-aware binding attains the global maximum of Eqn. 2 —
   Thm. 2 (separability + per-cycle optimality) verified exhaustively
   on random instances. *)
let exhaustive_max_errors k config schedule allocation =
  let dfg = Schedule.dfg schedule in
  let n_ops = Dfg.op_count dfg in
  let fu_of_op = Array.make n_ops (-1) in
  let best = ref 0 in
  let rec assign_cycle cycle =
    if cycle >= Schedule.n_cycles schedule then begin
      let binding = Binding.make schedule allocation ~fu_of_op in
      let e = Cost.expected_errors k binding config in
      if e > !best then best := e
    end
    else begin
      let ops k = Array.of_list (Schedule.ops_in_cycle schedule k cycle) in
      let fus k = Array.of_list (Rb_hls.Allocation.fu_ids allocation k) in
      (* enumerate injective maps for adds, then for muls, then recurse *)
      let rec inject ops fus used i next =
        if i >= Array.length ops then next ()
        else
          Array.iter
            (fun fu ->
              if not (List.mem fu !used) then begin
                used := fu :: !used;
                fu_of_op.(ops.(i)) <- fu;
                inject ops fus used (i + 1) next;
                used := List.filter (fun f -> f <> fu) !used
              end)
            fus
      in
      inject (ops Dfg.Add) (fus Dfg.Add) (ref []) 0 (fun () ->
          inject (ops Dfg.Mul) (fus Dfg.Mul) (ref []) 0 (fun () ->
              assign_cycle (cycle + 1)))
    end
  in
  assign_cycle 0;
  !best

let qcheck_thm2_exhaustive =
  QCheck2.Test.make ~name:"Thm. 2: obf binding attains the global optimum" ~count:25
    QCheck2.Gen.(int_range 0 3_000)
    (fun seed ->
      let dfg = Testgen.random_dfg seed ~n_ops:8 ~n_inputs:3 in
      let trace = Testgen.skewed_trace (seed + 1) dfg ~n:24 in
      let schedule = Scheduler.path_based dfg in
      let allocation = Allocation.for_schedule schedule in
      let k = Kmatrix.build trace in
      match Kmatrix.top_minterms k ~n:4 with
      | first :: rest ->
        let locks =
          match Rb_hls.Allocation.fu_ids allocation Dfg.Add with
          | fu :: _ -> [ (fu, first :: List.filteri (fun i _ -> i < 1) rest) ]
          | [] -> [ (allocation.Allocation.adders, [ first ]) ]
        in
        let config = Config.make ~scheme:Scheme.Sfll_rem ~locks in
        let obf = Obf_binding.bind k config schedule allocation in
        Cost.expected_errors k obf config
        = exhaustive_max_errors k config schedule allocation
      | [] -> true)

let test_fast_path_agrees_with_public_bind () =
  let dfg = Testgen.random_dfg 8 ~n_ops:16 in
  let trace = Testgen.skewed_trace 9 dfg in
  let schedule = Scheduler.path_based dfg in
  let allocation = Allocation.for_schedule schedule in
  let k = Kmatrix.build trace in
  let candidates = Array.of_list (Kmatrix.top_minterms ~kind:Dfg.Add k ~n:5) in
  if Array.length candidates >= 2 && allocation.Allocation.adders >= 1 then begin
    let table = Cost.cand_table k candidates in
    let fast = Obf_binding.Fast.prepare table schedule allocation ~kind:Dfg.Add in
    let subset = [| 0; 1 |] in
    let fast_errors = Obf_binding.Fast.best_errors fast ~locks:[ (0, subset) ] in
    let config =
      Config.make ~scheme:Scheme.Sfll_rem
        ~locks:[ (0, Cost.subset_minterms table subset) ]
    in
    let public = Obf_binding.bind k config schedule allocation in
    Alcotest.(check int) "fast = public" (Cost.expected_errors k public config) fast_errors
  end

let test_fast_rejects_wrong_kind_fu () =
  let dfg = Testgen.random_dfg 10 ~n_ops:16 in
  let trace = Testgen.skewed_trace 11 dfg in
  let schedule = Scheduler.path_based dfg in
  let allocation = Allocation.for_schedule schedule in
  let k = Kmatrix.build trace in
  let candidates = Array.of_list (Kmatrix.top_minterms k ~n:3) in
  let table = Cost.cand_table k candidates in
  let fast = Obf_binding.Fast.prepare table schedule allocation ~kind:Dfg.Add in
  let mul_fu = allocation.Allocation.adders in
  if allocation.Allocation.multipliers > 0 then
    match Obf_binding.Fast.best_errors fast ~locks:[ (mul_fu, [| 0 |]) ] with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "wrong-kind FU accepted"

(* ------------------------------------------------------------ codesign *)

let codesign_setting seed =
  let dfg = Testgen.random_dfg seed ~n_ops:16 in
  let trace = Testgen.skewed_trace (seed + 1) dfg in
  let schedule = Scheduler.path_based dfg in
  let allocation = Allocation.for_schedule schedule in
  let k = Kmatrix.build trace in
  let candidates = Array.of_list (Kmatrix.top_minterms ~kind:Dfg.Add k ~n:6) in
  (schedule, allocation, k, candidates)

let test_codesign_optimal_vs_heuristic () =
  let schedule, allocation, k, candidates = codesign_setting 20 in
  let spec =
    { Codesign.scheme = Scheme.Sfll_rem; locked_fus = [ 0 ]; minterms_per_fu = 2; candidates }
  in
  match Codesign.optimal k schedule allocation spec with
  | `Too_large _ -> Alcotest.fail "tiny space reported too large"
  | `Solution opt ->
    let heur = Codesign.heuristic k schedule allocation spec in
    Alcotest.(check bool) "optimal >= heuristic" true
      (opt.Codesign.errors >= heur.Codesign.errors);
    (* single locked FU: the heuristic IS the optimal algorithm *)
    Alcotest.(check int) "single FU: equal" opt.Codesign.errors heur.Codesign.errors;
    Alcotest.(check int) "searched all" (Codesign.search_space spec)
      opt.Codesign.assignments_searched

let test_codesign_beats_fixed_assignment () =
  (* Co-design chooses minterms, so it must do at least as well as the
     obfuscation-aware binding of any fixed candidate subset. *)
  let schedule, allocation, k, candidates = codesign_setting 22 in
  let spec =
    { Codesign.scheme = Scheme.Sfll_rem; locked_fus = [ 0 ]; minterms_per_fu = 2; candidates }
  in
  let heur = Codesign.heuristic k schedule allocation spec in
  let fixed_config =
    Config.make ~scheme:Scheme.Sfll_rem ~locks:[ (0, [ candidates.(0); candidates.(1) ]) ]
  in
  let fixed = Obf_binding.bind k fixed_config schedule allocation in
  Alcotest.(check bool) "codesign >= fixed head pair" true
    (heur.Codesign.errors >= Cost.expected_errors k fixed fixed_config)

let test_codesign_config_is_consistent () =
  let schedule, allocation, k, candidates = codesign_setting 24 in
  let spec =
    { Codesign.scheme = Scheme.Sfll_rem; locked_fus = [ 0 ]; minterms_per_fu = 2; candidates }
  in
  let heur = Codesign.heuristic k schedule allocation spec in
  (* reported errors = Eqn 2 of (binding, config) *)
  Alcotest.(check int) "errors consistent" heur.Codesign.errors
    (Cost.expected_errors k heur.Codesign.binding heur.Codesign.config);
  Alcotest.(check (list int)) "locked fus" [ 0 ] (Config.locked_fus heur.Codesign.config);
  Alcotest.(check int) "budget respected" 2
    (Minterm.Set.cardinal (Config.minterms_of heur.Codesign.config 0))

let test_codesign_too_large_guard () =
  let schedule, allocation, k, candidates = codesign_setting 26 in
  if allocation.Allocation.adders >= 2 then begin
    let spec =
      {
        Codesign.scheme = Scheme.Sfll_rem;
        locked_fus = [ 0; 1 ];
        minterms_per_fu = 3;
        candidates;
      }
    in
    match Codesign.optimal ~max_assignments:10 k schedule allocation spec with
    | `Too_large space ->
      Alcotest.(check int) "space size" (Codesign.search_space spec) space
    | `Solution _ -> Alcotest.fail "cap ignored"
  end

let test_codesign_spec_validation () =
  let schedule, allocation, k, candidates = codesign_setting 28 in
  let invalid spec =
    match Codesign.heuristic k schedule allocation spec with
    | exception Invalid_argument _ -> ()
    | (_ : Codesign.solution) -> Alcotest.fail "invalid spec accepted"
  in
  invalid { Codesign.scheme = Scheme.Sfll_rem; locked_fus = []; minterms_per_fu = 1; candidates };
  invalid
    { Codesign.scheme = Scheme.Sfll_rem; locked_fus = [ 0; 0 ]; minterms_per_fu = 1; candidates };
  invalid
    {
      Codesign.scheme = Scheme.Sfll_rem;
      locked_fus = [ 0 ];
      minterms_per_fu = 1 + Array.length candidates;
      candidates;
    }

let qcheck_optimal_dominates_heuristic =
  QCheck2.Test.make ~name:"optimal co-design >= heuristic (Sec. V-B.3)" ~count:15
    QCheck2.Gen.(int_range 0 2_000)
    (fun seed ->
      let schedule, allocation, k, candidates = codesign_setting seed in
      if Array.length candidates < 3 then true
      else begin
        let locked_fus = if allocation.Allocation.adders >= 2 then [ 0; 1 ] else [ 0 ] in
        let spec =
          { Codesign.scheme = Scheme.Sfll_rem; locked_fus; minterms_per_fu = 2; candidates }
        in
        match Codesign.optimal k schedule allocation spec with
        | `Too_large _ -> true
        | `Solution opt ->
          let heur = Codesign.heuristic k schedule allocation spec in
          opt.Codesign.errors >= heur.Codesign.errors
      end)

(* --------------------------------------------------------- methodology *)

let test_methodology_minimal_budget () =
  let schedule, allocation, k, candidates = codesign_setting 30 in
  let small_goal = { Methodology.target_error_events = 1; min_lambda = 10.0 } in
  let plan =
    Methodology.design k schedule allocation ~scheme:Scheme.Sfll_rem ~locked_fus:[ 0 ]
      ~candidates small_goal
  in
  Alcotest.(check int) "one minterm suffices" 1 plan.Methodology.minterms_per_fu;
  Alcotest.(check bool) "meets error target" true plan.Methodology.meets_error_target;
  Alcotest.(check bool) "resilient at h=1" true plan.Methodology.meets_resilience;
  Alcotest.(check bool) "no topup needed" false plan.Methodology.exponential_topup

let test_methodology_grows_budget () =
  let schedule, allocation, k, candidates = codesign_setting 32 in
  let base_plan =
    Methodology.design k schedule allocation ~scheme:Scheme.Sfll_rem ~locked_fus:[ 0 ]
      ~candidates
      { Methodology.target_error_events = 1; min_lambda = 1.0 }
  in
  let hungry =
    {
      Methodology.target_error_events = base_plan.Methodology.achieved_errors * 2;
      min_lambda = 1.0;
    }
  in
  let plan =
    Methodology.design k schedule allocation ~scheme:Scheme.Sfll_rem ~locked_fus:[ 0 ]
      ~candidates hungry
  in
  Alcotest.(check bool) "budget grew" true
    (plan.Methodology.minterms_per_fu > base_plan.Methodology.minterms_per_fu
     || not plan.Methodology.meets_error_target)

let test_methodology_unreachable_target () =
  let schedule, allocation, k, candidates = codesign_setting 34 in
  let plan =
    Methodology.design k schedule allocation ~scheme:Scheme.Sfll_rem ~locked_fus:[ 0 ]
      ~candidates
      { Methodology.target_error_events = max_int; min_lambda = 1.0 }
  in
  Alcotest.(check bool) "reports failure" false plan.Methodology.meets_error_target;
  Alcotest.(check int) "exhausted budget" (Array.length candidates)
    plan.Methodology.minterms_per_fu;
  Alcotest.(check bool) "an exhausted search is not a tripped limit" true
    (plan.Methodology.stopped = None)

let test_methodology_stops_on_cancel () =
  let schedule, allocation, k, candidates = codesign_setting 36 in
  let flag = Limits.new_cancel () in
  Limits.cancel flag;
  let plan =
    Methodology.design k schedule allocation
      ~limits:(Limits.make ~cancel:flag ())
      ~scheme:Scheme.Sfll_rem ~locked_fus:[ 0 ] ~candidates
      { Methodology.target_error_events = max_int; min_lambda = 1.0 }
  in
  Alcotest.(check bool) "plan carries the stop reason" true
    (plan.Methodology.stopped = Some Limits.Cancelled);
  (* The partial plan is still well-formed: it reflects the smallest
     budget, not garbage. *)
  Alcotest.(check bool) "budget evaluated at least once" true
    (plan.Methodology.minterms_per_fu >= 1);
  Alcotest.(check bool) "unmet target reported honestly" false
    plan.Methodology.meets_error_target

let test_methodology_unlimited_never_stopped () =
  let schedule, allocation, k, candidates = codesign_setting 30 in
  let plan =
    Methodology.design k schedule allocation ~scheme:Scheme.Sfll_rem
      ~locked_fus:[ 0 ] ~candidates
      { Methodology.target_error_events = 1; min_lambda = 1.0 }
  in
  Alcotest.(check bool) "default limits never trip" true
    (plan.Methodology.stopped = None)

(* ------------------------------------------------------------ ablation *)

module Ablation = Rb_core.Ablation

let test_ablation_candidate_lists () =
  let schedule, _, k, _ = codesign_setting 50 in
  ignore schedule;
  let top = Ablation.candidate_list ~strategy:Ablation.Most_common k Dfg.Add in
  let bottom = Ablation.candidate_list ~strategy:Ablation.Least_common k Dfg.Add in
  let rand = Ablation.candidate_list ~strategy:Ablation.Random_sample k Dfg.Add in
  let mass c =
    Array.fold_left (fun acc m -> acc + Kmatrix.total_occurrences k m) 0 c
  in
  Alcotest.(check bool) "top is heaviest" true (mass top >= mass bottom);
  Alcotest.(check bool) "random within bounds" true
    (mass rand >= mass bottom && mass rand <= mass top);
  Alcotest.(check (list int)) "top matches Kmatrix.top_minterms"
    (List.map Minterm.to_int (Kmatrix.top_minterms ~kind:Dfg.Add k ~n:10))
    (Array.to_list (Array.map Minterm.to_int top));
  (* least-common candidates still occur in the trace *)
  Array.iter
    (fun m ->
      Alcotest.(check bool) "occurs" true (Kmatrix.total_occurrences k m > 0))
    bottom

let test_ablation_strategy_ordering () =
  let bench = Rb_workload.Benchmark.find "fft" in
  let schedule = Rb_workload.Benchmark.schedule bench in
  let trace = Rb_workload.Benchmark.trace ~length:128 bench in
  let ctx = Experiments.context ~name:"fft" schedule trace in
  match Ablation.candidate_strategies ctx Dfg.Add with
  | [ top; _rand; bottom ] ->
    Alcotest.(check bool) "most-common strategy wins" true
      (top.Ablation.codesign_errors >= bottom.Ablation.codesign_errors);
    Alcotest.(check bool) "strategies tagged" true
      (top.Ablation.strategy = Ablation.Most_common
       && bottom.Ablation.strategy = Ablation.Least_common)
  | other -> Alcotest.failf "expected 3 strategies, got %d" (List.length other)

let test_ablation_generalization () =
  let bench = Rb_workload.Benchmark.find "dct" in
  let schedule = Rb_workload.Benchmark.schedule bench in
  let trace = Rb_workload.Benchmark.trace ~length:128 bench in
  let row = Ablation.generalization schedule trace Dfg.Mul in
  Alcotest.(check bool) "training errors positive" true (row.Ablation.train_measured > 0);
  Alcotest.(check bool) "generalizes to unseen half" true (row.Ablation.test_measured > 0)

let test_ablation_allocation_sensitivity () =
  let bench = Rb_workload.Benchmark.find "dct" in
  let rows =
    Ablation.allocation_sensitivity bench.Rb_workload.Benchmark.dfg (fun () ->
        Rb_workload.Benchmark.trace ~length:96 bench)
  in
  Alcotest.(check int) "four budgets" 4 (List.length rows);
  (match rows with
   | single :: rest ->
     Alcotest.(check (float 1e-9)) "1 FU leaves no freedom" 1.0
       single.Ablation.obf_vs_area;
     List.iter
       (fun r ->
         Alcotest.(check bool) "ratio >= 1" true (r.Ablation.obf_vs_area >= 1.0))
       rest
   | [] -> Alcotest.fail "no rows");
  (* more FUs always shortens or keeps the schedule *)
  let cycles = List.map (fun r -> r.Ablation.n_cycles) rows in
  Alcotest.(check bool) "cycles non-increasing" true
    (List.sort (fun a b -> Int.compare b a) cycles = cycles)

let test_ablation_scheduler_sensitivity () =
  let bench = Rb_workload.Benchmark.find "dct" in
  let rows =
    Ablation.scheduler_sensitivity bench.Rb_workload.Benchmark.dfg (fun () ->
        Rb_workload.Benchmark.trace ~length:96 bench)
  in
  Alcotest.(check int) "two schedulers" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Ablation.label ^ " ratio >= 1") true
        (r.Ablation.obf_vs_area >= 1.0))
    rows

(* --------------------------------------------------------- experiments *)

let small_context () =
  let bench = Rb_workload.Benchmark.find "fir" in
  let schedule = Rb_workload.Benchmark.schedule bench in
  let trace = Rb_workload.Benchmark.trace ~length:64 bench in
  Experiments.context ~name:"fir" schedule trace

let test_experiments_sweep_shapes () =
  let ctx = small_context () in
  let results =
    Experiments.sweep ~max_combos_per_config:50 ~max_optimal_assignments:5_000 ctx Dfg.Mul
  in
  Alcotest.(check bool) "has configurations" true (results <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool) "combos present" true (Array.length r.Experiments.combos > 0);
      Alcotest.(check bool) "sampling flagged correctly" true
        (r.Experiments.sampled = (r.Experiments.combos_total > 50));
      Array.iter
        (fun c ->
          Alcotest.(check bool) "obf >= baselines (Thm. 2)" true
            (c.Experiments.e_obf >= c.Experiments.e_area
             && c.Experiments.e_obf >= c.Experiments.e_power))
        r.Experiments.combos;
      Alcotest.(check bool) "codesign >= mean obf" true
        (r.Experiments.e_codesign_heuristic > 0))
    results

let test_experiments_fig4_row () =
  let ctx = small_context () in
  let results =
    Experiments.sweep ~max_combos_per_config:50 ~max_optimal_assignments:5_000 ctx Dfg.Mul
  in
  match Experiments.fig4_row ~benchmark:"fir" Dfg.Mul results with
  | None -> Alcotest.fail "expected a row"
  | Some row ->
    Alcotest.(check bool) "obf ratio >= 1" true (row.Experiments.obf_vs_area >= 1.0);
    Alcotest.(check bool) "codesign >= obf (vs area)" true
      (row.Experiments.cd_heur_vs_area >= row.Experiments.obf_vs_area)

let test_experiments_fig4_empty_kind () =
  let bench = Rb_workload.Benchmark.find "ecb_enc4" in
  let schedule = Rb_workload.Benchmark.schedule bench in
  let trace = Rb_workload.Benchmark.trace ~length:64 bench in
  let ctx = Experiments.context ~name:"ecb_enc4" schedule trace in
  let results = Experiments.sweep ~max_combos_per_config:20 ctx Dfg.Mul in
  Alcotest.(check bool) "no mult configs" true (results = []);
  Alcotest.(check bool) "no row" true
    (Experiments.fig4_row ~benchmark:"ecb_enc4" Dfg.Mul results = None)

let test_experiments_fig5_cells () =
  let ctx = small_context () in
  let results =
    Experiments.sweep ~max_combos_per_config:30 ~max_optimal_assignments:2_000 ctx Dfg.Mul
  in
  let cells = Experiments.fig5_cells results in
  Alcotest.(check int) "seven groups" 7 (List.length cells);
  let avg = List.nth cells 6 in
  Alcotest.(check string) "last is Avg." "Avg." avg.Experiments.cell_label;
  Alcotest.(check bool) "avg ratios >= 1" true (avg.Experiments.f5_obf_vs_area >= 1.0)

let test_experiments_ratio_floor () =
  Alcotest.(check (float 1e-9)) "normal" 2.0 (Experiments.ratio_vs 10 5);
  Alcotest.(check (float 1e-9)) "zero baseline floored" 10.0 (Experiments.ratio_vs 10 0)

let test_experiments_quality () =
  let bench = Rb_workload.Benchmark.find "fir" in
  let schedule = Rb_workload.Benchmark.schedule bench in
  let trace = Rb_workload.Benchmark.trace ~length:64 bench in
  let ctx = Experiments.context ~name:"fir" schedule trace in
  (match Experiments.quality ~trace ctx Dfg.Mul with
   | None -> Alcotest.fail "expected a quality row"
   | Some q ->
     Alcotest.(check int) "samples" 64 q.Experiments.samples;
     Alcotest.(check bool) "secure injects at least as much" true
       (q.Experiments.secure_events >= q.Experiments.base_events);
     Alcotest.(check bool) "bursts sane" true
       (q.Experiments.secure_max_burst >= 0
        && q.Experiments.base_corrupted_samples <= q.Experiments.samples));
  (* a kind with no FUs yields None *)
  let ecb = Rb_workload.Benchmark.find "ecb_enc4" in
  let eschedule = Rb_workload.Benchmark.schedule ecb in
  let etrace = Rb_workload.Benchmark.trace ~length:32 ecb in
  let ectx = Experiments.context ~name:"ecb_enc4" eschedule etrace in
  Alcotest.(check bool) "no mult FUs -> None" true
    (Experiments.quality ~trace:etrace ectx Dfg.Mul = None)

let test_experiments_post_binding () =
  let ctx = small_context () in
  (match Experiments.post_binding ctx Dfg.Mul with
   | None -> Alcotest.fail "expected a post-binding row"
   | Some r ->
     Alcotest.(check bool) "codesign errors positive" true (r.Experiments.codesign_errors > 0);
     Alcotest.(check bool) "post matches or is flagged" true
       (match r.Experiments.post_minterms with
        | Some h ->
          h >= r.Experiments.codesign_minterms
          && r.Experiments.post_errors >= r.Experiments.codesign_errors
        | None -> r.Experiments.post_errors < r.Experiments.codesign_errors);
     Alcotest.(check bool) "resilience ordering" true
       (r.Experiments.post_lambda <= r.Experiments.codesign_lambda));
  (* no FUs of a kind -> None *)
  let ecb = Rb_workload.Benchmark.find "ecb_enc4" in
  let ectx =
    Experiments.context ~name:"ecb_enc4"
      (Rb_workload.Benchmark.schedule ecb)
      (Rb_workload.Benchmark.trace ~length:32 ecb)
  in
  Alcotest.(check bool) "None for missing kind" true
    (Experiments.post_binding ectx Dfg.Mul = None)

let test_experiments_overhead_fields () =
  let ctx = small_context () in
  let ov = Experiments.overhead ~combos_per_config:2 ctx in
  Alcotest.(check bool) "registers positive" true (ov.Experiments.area_registers > 0);
  Alcotest.(check bool) "switching rates in range" true
    (ov.Experiments.power_switching >= 0.0 && ov.Experiments.power_switching <= 1.0
     && ov.Experiments.obf_switching >= 0.0 && ov.Experiments.obf_switching <= 1.0);
  Alcotest.(check bool) "power binder wins its own metric" true
    (ov.Experiments.power_switching <= ov.Experiments.obf_switching +. 1e-9)

(* ------------------------------------------------- checkpointed sweeps *)

let with_temp_journal f =
  let path = Filename.temp_file "rb_sweep" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_sweep_journal_resume_identical () =
  let ctx = small_context () in
  let run ?journal () =
    Experiments.sweep ?journal ~max_combos_per_config:30
      ~max_optimal_assignments:2_000 ctx Dfg.Mul
  in
  let plain = run () in
  with_temp_journal (fun path ->
      let j = Checkpoint.create ~path ~resume:false in
      let first = run ~journal:j () in
      let chunks = Checkpoint.entries j in
      Checkpoint.close j;
      Alcotest.(check bool) "journaling changes nothing" true (first = plain);
      Alcotest.(check bool) "chunks were journaled" true (chunks > 0);
      (* Resume: every chunk replays from the journal, results are
         byte-identical, and nothing new is appended. *)
      let r = Checkpoint.create ~path ~resume:true in
      Alcotest.(check int) "resume loads every chunk" chunks
        (Checkpoint.entries r);
      let resumed = run ~journal:r () in
      Alcotest.(check bool) "resumed results identical" true (resumed = plain);
      Alcotest.(check int) "no recomputed chunks appended" chunks
        (Checkpoint.entries r);
      Checkpoint.close r)

let test_sweep_journal_tolerates_garbage_values () =
  (* A journal value of the wrong shape must fall back to recomputing
     the chunk, never crash or corrupt the results. *)
  let ctx = small_context () in
  let run ?journal () =
    Experiments.sweep ?journal ~max_combos_per_config:20 ctx Dfg.Mul
  in
  let plain = run () in
  with_temp_journal (fun path ->
      let j = Checkpoint.create ~path ~resume:false in
      ignore (run ~journal:j ());
      Checkpoint.close j;
      (* Corrupt every journaled value in place, keeping the keys. *)
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      let oc = open_out path in
      List.iter
        (fun line ->
          match Rb_util.Json.of_string line with
          | Ok (Rb_util.Json.Obj [ ("k", k); ("v", _) ]) ->
            output_string oc
              (Rb_util.Json.to_string
                 (Rb_util.Json.Obj
                    [ ("k", k); ("v", Rb_util.Json.String "garbage") ]));
            output_char oc '\n'
          | _ -> ())
        (List.rev !lines);
      close_out oc;
      let r = Checkpoint.create ~path ~resume:true in
      let resumed = run ~journal:r () in
      Checkpoint.close r;
      Alcotest.(check bool) "garbage values fall back to recompute" true
        (resumed = plain))

(* ------------------------------------------------ security-aware binders *)

module Binder = Rb_hls.Binder
module Binders = Rb_core.Binders

let test_binders_registered () =
  Binders.ensure_registered ();
  Binders.ensure_registered ();
  let names = Binder.names () in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [ "area"; "power"; "obf"; "codesign" ]

let binder_input () =
  let ctx = small_context () in
  let candidates = Experiments.candidates_for ctx Dfg.Add in
  let config =
    Config.make ~scheme:Scheme.Sfll_rem
      ~locks:[ (0, [ candidates.(0); candidates.(1) ]) ]
  in
  ( ctx,
    {
      Binder.schedule = ctx.Experiments.schedule;
      allocation = ctx.Experiments.allocation;
      profile = ctx.Experiments.profile;
      k = ctx.Experiments.k;
      config;
      candidates;
    } )

let test_obf_binder_matches_direct () =
  Binders.ensure_registered ();
  let ctx, input = binder_input () in
  let out = Binder.bind "obf" input in
  let direct =
    Obf_binding.bind ctx.Experiments.k input.Binder.config ctx.Experiments.schedule
      ctx.Experiments.allocation
  in
  Alcotest.(check bool) "binding identical" true (out.Binder.binding = direct);
  Alcotest.(check bool) "config echoed" true (out.Binder.config == input.Binder.config)

let test_codesign_binder_chooses_config () =
  Binders.ensure_registered ();
  let _, input = binder_input () in
  let out = Binder.bind "codesign" input in
  (* same locked-FU set, minterms drawn from the candidate list *)
  Alcotest.(check (list int)) "locked FUs preserved"
    (Config.locked_fus input.Binder.config)
    (Config.locked_fus out.Binder.config);
  let cands = Array.to_list input.Binder.candidates in
  List.iter
    (fun fu ->
      Minterm.Set.iter
        (fun m ->
          Alcotest.(check bool) "minterm from candidate list" true (List.mem m cands))
        (Config.minterms_of out.Binder.config fu))
    (Config.locked_fus out.Binder.config)

(* ------------------------------------------------- parallel determinism *)

module Pool = Rb_util.Pool
module Render = Rb_core.Render

module Metrics = Rb_util.Metrics

(* The PR-level guard: fanning a sweep suite over a 4-worker pool must
   render byte-identical tables to the single-job run, and the
   deterministic metrics counters (logical-work counts, not timings)
   must agree too — this is what lets CI's perf gate compare counters
   exactly regardless of --jobs. Small budgets keep it fast while
   still exercising the sampled branch and the chunked exhaustive
   branch. *)
let test_parallel_determinism () =
  let run jobs =
    Metrics.reset ();
    Metrics.set_enabled true;
    Fun.protect ~finally:(fun () -> Metrics.set_enabled false)
    @@ fun () ->
    let before = Metrics.snapshot () in
    let figs =
      Pool.with_pool ~jobs (fun pool ->
          let ctxs = [ small_context () ] in
          let suite =
            Experiments.sweep_suite ~pool ~max_combos_per_config:40
              ~max_optimal_assignments:2_000 ctxs
          in
          let fig4 =
            Render.fig4
              ~rows:(Experiments.fig4_rows suite)
              ~concentrations:(Experiments.concentrations ctxs)
          in
          let fig5 =
            Render.fig5
              ~cells:(Experiments.fig5_cells (Experiments.pooled_results suite))
              ~reduced:(Experiments.reduced_optimal_runs suite)
          in
          (fig4, fig5))
    in
    (figs, Metrics.counter_deltas ~before ~after:(Metrics.snapshot ()))
  in
  let (f4_seq, f5_seq), counters_seq = run 1 in
  let (f4_par, f5_par), counters_par = run 4 in
  Alcotest.(check string) "fig4 byte-identical" f4_seq f4_par;
  Alcotest.(check string) "fig5 byte-identical" f5_seq f5_par;
  Alcotest.(check bool) "sweep moved some counters" true (counters_seq <> []);
  Alcotest.(check (list (pair string int)))
    "metrics counters jobs-invariant" counters_seq counters_par

let () =
  Alcotest.run "rb_core"
    [
      ( "cost",
        [
          Alcotest.test_case "fig2 edge weights" `Quick test_edge_weights_match_fig2;
          Alcotest.test_case "eqn2" `Quick test_expected_errors_eqn2;
          Alcotest.test_case "cand table" `Quick test_cand_table_matches_kmatrix;
        ] );
      ( "obf-binding",
        [
          Alcotest.test_case "fig2 clock 1" `Quick test_obf_binding_reproduces_fig2_clock1;
          Alcotest.test_case "fig2 exhaustive optimum" `Quick test_obf_binding_beats_all_bindings_fig2;
          Alcotest.test_case "fast = public" `Quick test_fast_path_agrees_with_public_bind;
          Alcotest.test_case "fast kind check" `Quick test_fast_rejects_wrong_kind_fu;
        ] );
      ( "codesign",
        [
          Alcotest.test_case "optimal vs heuristic" `Quick test_codesign_optimal_vs_heuristic;
          Alcotest.test_case "beats fixed assignment" `Quick test_codesign_beats_fixed_assignment;
          Alcotest.test_case "solution consistency" `Quick test_codesign_config_is_consistent;
          Alcotest.test_case "too-large guard" `Quick test_codesign_too_large_guard;
          Alcotest.test_case "spec validation" `Quick test_codesign_spec_validation;
        ] );
      ( "methodology",
        [
          Alcotest.test_case "minimal budget" `Quick test_methodology_minimal_budget;
          Alcotest.test_case "grows budget" `Quick test_methodology_grows_budget;
          Alcotest.test_case "unreachable target" `Quick test_methodology_unreachable_target;
          Alcotest.test_case "stops on cancel" `Quick test_methodology_stops_on_cancel;
          Alcotest.test_case "unlimited never stopped" `Quick
            test_methodology_unlimited_never_stopped;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "candidate lists" `Quick test_ablation_candidate_lists;
          Alcotest.test_case "strategy ordering" `Quick test_ablation_strategy_ordering;
          Alcotest.test_case "generalization" `Quick test_ablation_generalization;
          Alcotest.test_case "allocation sensitivity" `Slow test_ablation_allocation_sensitivity;
          Alcotest.test_case "scheduler sensitivity" `Slow test_ablation_scheduler_sensitivity;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "sweep shapes" `Slow test_experiments_sweep_shapes;
          Alcotest.test_case "fig4 row" `Slow test_experiments_fig4_row;
          Alcotest.test_case "fig4 empty kind" `Quick test_experiments_fig4_empty_kind;
          Alcotest.test_case "fig5 cells" `Slow test_experiments_fig5_cells;
          Alcotest.test_case "ratio floor" `Quick test_experiments_ratio_floor;
          Alcotest.test_case "quality" `Quick test_experiments_quality;
          Alcotest.test_case "post-binding" `Quick test_experiments_post_binding;
          Alcotest.test_case "overhead fields" `Quick test_experiments_overhead_fields;
          Alcotest.test_case "journal resume identical" `Slow
            test_sweep_journal_resume_identical;
          Alcotest.test_case "journal garbage falls back" `Slow
            test_sweep_journal_tolerates_garbage_values;
        ] );
      ( "binders",
        [
          Alcotest.test_case "registry complete" `Quick test_binders_registered;
          Alcotest.test_case "obf matches direct" `Quick test_obf_binder_matches_direct;
          Alcotest.test_case "codesign chooses config" `Quick
            test_codesign_binder_chooses_config;
        ] );
      ( "determinism",
        [ Alcotest.test_case "jobs=1 = jobs=4" `Slow test_parallel_determinism ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_obf_binding_optimal;
            qcheck_thm2_exhaustive;
            qcheck_optimal_dominates_heuristic;
          ] );
    ]
