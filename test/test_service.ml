(* Tests for the service layer: job codec, content-addressed store,
   executor determinism, the serve protocol, and golden-output guards
   holding the thin-client renderers to the pre-service CLI bytes. *)

module Json = Rb_util.Json
module Pool = Rb_util.Pool
module Job = Rb_service.Job
module Error = Rb_service.Error
module Store = Rb_service.Store
module Executor = Rb_service.Executor
module Outcome = Rb_service.Outcome
module Render = Rb_service.Render
module Serve = Rb_service.Serve

let job_testable =
  Alcotest.testable
    (fun fmt j -> Format.pp_print_string fmt (Json.to_string (Job.to_json j)))
    ( = )

let decode_ok v =
  match Job.of_json v with
  | Ok job -> job
  | Error e -> Alcotest.failf "unexpected decode error: %s" e.Error.message

let decode_error v =
  match Job.of_json v with
  | Ok job -> Alcotest.failf "expected an error, decoded %s" (Job.op job)
  | Error e -> e

let obj fields = Json.Obj fields

(* ------------------------------------------------------------- Job codec *)

let test_job_defaults () =
  let job = decode_ok (obj [ ("op", Json.String "bind"); ("benchmark", Json.String "dct") ]) in
  Alcotest.check job_testable "historical CLI defaults"
    (Job.Bind
       {
         benchmark = "dct";
         seed = 1789;
         binder = "codesign";
         kind = Rb_dfg.Dfg.Mul;
         locked_fus = 2;
         minterms_per_fu = 2;
       })
    job;
  let attack = decode_ok (obj [ ("op", Json.String "attack") ]) in
  Alcotest.check job_testable "attack defaults"
    (Job.Attack
       { scheme = Job.Pf; width = 4; strength = 2; seed = 1789; max_iterations = 20_000;
         portfolio = 1 })
    attack

let test_job_envelope_ignored () =
  (* The serve envelope rides alongside the job fields; decode must not
     trip over them. *)
  let job =
    decode_ok
      (obj
         [
           ("schema", Json.String "rb-job/1");
           ("id", Json.Int 7);
           ("op", Json.String "list");
         ])
  in
  Alcotest.check job_testable "envelope fields ignored" Job.List_benchmarks job

let test_job_validation () =
  let check_msg name v expected =
    let e = decode_error v in
    Alcotest.(check string) (name ^ " code") "invalid-request" (Error.code_label e.Error.code);
    Alcotest.(check string) (name ^ " message") expected e.Error.message
  in
  check_msg "missing op" (obj []) "missing required field \"op\"";
  check_msg "unknown op" (obj [ ("op", Json.String "frobnicate") ]) "unknown op \"frobnicate\"";
  check_msg "missing benchmark" (obj [ ("op", Json.String "show") ])
    "missing required field \"benchmark\"";
  check_msg "width bounds"
    (obj [ ("op", Json.String "attack"); ("width", Json.Int 99) ])
    "width must be in 2..8";
  check_msg "export-cnf width bounds"
    (obj [ ("op", Json.String "export-cnf"); ("width", Json.Int 11) ])
    "width must be in 2..10";
  check_msg "strength bounds"
    (obj [ ("op", Json.String "analyze"); ("strength", Json.Int 0) ])
    "strength must be in 1..256";
  check_msg "antisat not attackable"
    (obj [ ("op", Json.String "attack"); ("scheme", Json.String "antisat") ])
    "scheme must be rll, pf, or permnet";
  check_msg "field type"
    (obj [ ("op", Json.String "bind"); ("benchmark", Json.String "dct"); ("seed", Json.String "x") ])
    "field \"seed\" must be an integer";
  check_msg "not an object" (Json.List []) "missing required field \"op\""

let test_job_digest () =
  (* Defaulted and explicit spellings of the same job share a content
     address; changing any meaningful field moves it. *)
  let terse = decode_ok (obj [ ("op", Json.String "bind"); ("benchmark", Json.String "dct") ]) in
  let explicit =
    decode_ok
      (obj
         [
           ("minterms_per_fu", Json.Int 2);
           ("seed", Json.Int 1789);
           ("benchmark", Json.String "dct");
           ("op", Json.String "bind");
           ("kind", Json.String "mul");
           ("binder", Json.String "codesign");
           ("locked_fus", Json.Int 2);
         ])
  in
  Alcotest.(check string) "spelling-independent" (Job.digest terse) (Job.digest explicit);
  let reseeded =
    decode_ok
      (obj [ ("op", Json.String "bind"); ("benchmark", Json.String "dct"); ("seed", Json.Int 1790) ])
  in
  Alcotest.(check bool) "seed changes the address" true
    (Job.digest terse <> Job.digest reseeded)

(* QCheck generator over the closed variant; every produced job passes
   [Job.validate], so the round-trip property exercises [of_json]'s full
   decode-and-validate path. *)
let job_gen =
  let open QCheck2.Gen in
  let name = oneofl [ "dct"; "fir"; "fft"; "nope"; "x 1" ] in
  let seed = int_range 0 10_000 in
  let scheme = oneofl [ Job.Rll; Job.Pf; Job.Antisat; Job.Permnet ] in
  let netlist_scheme = oneofl [ Job.Rll; Job.Pf; Job.Permnet ] in
  let kind = oneofl [ Rb_dfg.Dfg.Add; Rb_dfg.Dfg.Mul ] in
  let fus = int_range 1 64 in
  oneof
    [
      return Job.List_benchmarks;
      map2 (fun benchmark seed -> Job.Show { benchmark; seed }) name seed;
      (let* benchmark = name and* seed = seed and* kind = kind in
       let* binder = oneofl [ "codesign"; "area"; "obf" ]
       and* locked_fus = fus
       and* minterms_per_fu = fus in
       return (Job.Bind { benchmark; seed; binder; kind; locked_fus; minterms_per_fu }));
      (let* benchmark = opt name
       and* seed = seed
       and* locked_fus = fus
       and* minterms_per_fu = fus
       and* min_lambda = opt (oneofl [ 0.5; 1.; 2.25 ]) in
       return (Job.Lint { benchmark; seed; locked_fus; minterms_per_fu; min_lambda }));
      (let* scheme = opt scheme and* width = int_range 2 8 and* strength = int_range 1 256 and* seed = seed in
       return (Job.Analyze { scheme; width; strength; seed }));
      (let* scheme = netlist_scheme
       and* width = int_range 2 8
       and* strength = int_range 1 256
       and* seed = seed
       and* max_iterations = int_range 1 10_000_000
       and* portfolio = int_range 1 64 in
       return (Job.Attack { scheme; width; strength; seed; max_iterations; portfolio }));
      (let* text = string_size ~gen:printable (int_range 0 40)
       and* expr = bool
       and* kind = kind
       and* locked_fus = fus
       and* minterms_per_fu = fus
       and* trace_length = int_range 1 1_000_000
       and* seed = seed in
       let source = if expr then Job.Expr_source text else Job.Dfg_source text in
       return (Job.Custom { source; kind; locked_fus; minterms_per_fu; trace_length; seed }));
      (let* scheme = netlist_scheme
       and* width = int_range 2 10
       and* strength = int_range 1 256
       and* miter = bool
       and* seed = seed in
       return (Job.Export_cnf { scheme; width; strength; miter; seed }));
      map (fun benchmark -> Job.Export_dfg { benchmark }) name;
      map (fun benchmark -> Job.Dot { benchmark }) name;
    ]

let qcheck_job_roundtrip =
  QCheck2.Test.make ~name:"Job.of_json inverts to_json" ~count:500 job_gen
    (fun job -> Job.of_json (Job.to_json job) = Ok job)

let qcheck_job_digest_stable =
  QCheck2.Test.make ~name:"Job.digest survives a decode round-trip" ~count:200 job_gen
    (fun job ->
      match Job.of_json (Job.to_json job) with
      | Ok job' -> Job.digest job = Job.digest job'
      | Error _ -> false)

(* ----------------------------------------------------------------- Store *)

let test_store_single_flight () =
  let store = Store.create () in
  let computed = Atomic.make 0 in
  let compute () =
    Atomic.incr computed;
    Store.Text "payload"
  in
  let first = Store.find_or_compute store ~key:"k" compute in
  let second = Store.find_or_compute store ~key:"k" compute in
  (match (first, second) with
  | Store.Text a, Store.Text b ->
      Alcotest.(check string) "same artifact" a b
  | _ -> Alcotest.fail "unexpected artifact shape");
  Alcotest.(check int) "computed once" 1 (Atomic.get computed);
  let { Store.hits; misses; _ } = Store.stats store in
  Alcotest.(check int) "one miss" 1 misses;
  Alcotest.(check int) "one hit" 1 hits;
  Alcotest.(check int) "one ready entry" 1 (Store.size store)

let test_store_failure_not_cached () =
  let store = Store.create () in
  let attempts = Atomic.make 0 in
  let flaky () =
    Atomic.incr attempts;
    if Atomic.get attempts = 1 then failwith "transient";
    Store.Text "recovered"
  in
  (match Store.find_or_compute store ~key:"k" flaky with
  | exception Failure m -> Alcotest.(check string) "error propagates" "transient" m
  | _ -> Alcotest.fail "first attempt should raise");
  Alcotest.(check int) "failure leaves no entry" 0 (Store.size store);
  (match Store.find_or_compute store ~key:"k" flaky with
  | Store.Text s -> Alcotest.(check string) "retry recomputes" "recovered" s
  | _ -> Alcotest.fail "unexpected artifact shape");
  let { Store.hits; misses; _ } = Store.stats store in
  Alcotest.(check int) "every attempt is a miss" 2 misses;
  Alcotest.(check int) "no hits" 0 hits

let test_store_concurrent_single_flight () =
  let store = Store.create () in
  let computed = Atomic.make 0 in
  let compute () =
    Atomic.incr computed;
    Domain.cpu_relax ();
    Store.Text "shared"
  in
  Pool.with_pool ~jobs:4 (fun pool ->
      let results =
        Pool.map_array pool
          ~f:(fun _ ->
            match Store.find_or_compute store ~key:"hot" compute with
            | Store.Text s -> s
            | _ -> "?")
          (Array.init 16 Fun.id)
      in
      Array.iter (fun s -> Alcotest.(check string) "all waiters agree" "shared" s) results);
  Alcotest.(check int) "exactly one compute" 1 (Atomic.get computed);
  let { Store.hits; misses; _ } = Store.stats store in
  Alcotest.(check int) "one miss regardless of racing workers" 1 misses;
  Alcotest.(check int) "everyone else hits" 15 hits

(* Three same-cost artifacts against a cap that holds two: the insert
   of the third must evict exactly the least-recently-used entry. *)
let test_store_lru_eviction () =
  let payload c = Store.Text (String.make 1000 c) in
  let cost = Store.cost_of (payload 'a') in
  let store = Store.create ~cap_bytes:(2 * cost) () in
  let computed = Atomic.make 0 in
  let get key c =
    match
      Store.find_or_compute store ~key (fun () ->
          Atomic.incr computed;
          payload c)
    with
    | Store.Text s -> s
    | _ -> Alcotest.fail "unexpected artifact shape"
  in
  ignore (get "a" 'a');
  ignore (get "b" 'b');
  ignore (get "a" 'a');
  (* touch: b is now LRU *)
  ignore (get "c" 'c');
  let { Store.evictions; bytes; _ } = Store.stats store in
  Alcotest.(check int) "third insert evicts one entry" 1 evictions;
  Alcotest.(check int) "two entries resident" 2 (Store.size store);
  Alcotest.(check bool) "resident bytes within cap" true (bytes <= 2 * cost);
  Alcotest.(check int) "three computes so far" 3 (Atomic.get computed);
  ignore (get "a" 'a');
  Alcotest.(check int) "a survived (recently used)" 3 (Atomic.get computed);
  ignore (get "b" 'b');
  Alcotest.(check int) "b was the victim, recomputed" 4 (Atomic.get computed)

(* A failing eviction pass (injected ["store/evict"] fault) must
   degrade — store temporarily over cap — never surface to the
   caller; the next unfaulted insert catches up. *)
let test_store_evict_fault_degrades () =
  let payload c = Store.Text (String.make 1000 c) in
  let cost = Store.cost_of (payload 'a') in
  let store = Store.create ~cap_bytes:(2 * cost) () in
  let get key c =
    ignore (Store.find_or_compute store ~key (fun () -> payload c))
  in
  Rb_util.Faults.with_config
    (Some { Rb_util.Faults.seed = 1; rate_per_mille = 1000; sites = [ "store/evict" ] })
    (fun () ->
      get "a" 'a';
      get "b" 'b';
      get "c" 'c';
      get "d" 'd');
  let over = Store.stats store in
  Alcotest.(check int) "faulted eviction passes evict nothing" 0 over.Store.evictions;
  Alcotest.(check int) "store is over cap but intact" 4 (Store.size store);
  get "e" 'e';
  let after = Store.stats store in
  Alcotest.(check bool) "next insert catches up" true (after.Store.evictions >= 3);
  Alcotest.(check bool) "resident bytes back within cap" true
    (after.Store.bytes <= 2 * cost)

(* Single-flight must hold under eviction churn: racing workers on a
   store whose cap holds only a fraction of the key space always get
   the artifact belonging to their key, never a stale or foreign
   one. *)
let qcheck_store_eviction_single_flight =
  let open QCheck2.Gen in
  let gen = list_size (int_range 20 120) (int_range 0 7) in
  QCheck2.Test.make ~name:"bounded store serves the right artifact under churn"
    ~count:25 gen (fun keys ->
      let payload i = String.make (50 * (i + 1)) (Char.chr (Char.code 'a' + i)) in
      let cost = Store.cost_of (Store.Text (payload 7)) in
      let store = Store.create ~cap_bytes:(2 * cost) () in
      let ok =
        Pool.with_pool ~jobs:4 (fun pool ->
            Pool.map_array pool
              ~f:(fun i ->
                match
                  Store.find_or_compute store ~key:(string_of_int i) (fun () ->
                      Store.Text (payload i))
                with
                | Store.Text s -> s = payload i
                | _ -> false)
              (Array.of_list keys))
      in
      Array.for_all Fun.id ok
      &&
      let { Store.bytes; _ } = Store.stats store in
      bytes <= 2 * cost)

(* -------------------------------------------------------------- Executor *)

let with_executor ?(jobs = 1) f =
  Pool.with_pool ~jobs (fun pool -> f (Executor.create ~pool ()))

let render_result = function
  | Ok outcome -> Render.to_text outcome
  | Error e -> "error: " ^ Error.code_label e.Error.code ^ ": " ^ e.Error.message

let test_executor_cache_determinism () =
  with_executor (fun ex ->
      let job =
        Job.Bind
          {
            benchmark = "dct";
            seed = 1789;
            binder = "codesign";
            kind = Rb_dfg.Dfg.Mul;
            locked_fus = 2;
            minterms_per_fu = 2;
          }
      in
      let first = render_result (Executor.run ex job) in
      let before = Store.stats (Executor.store ex) in
      let second = render_result (Executor.run ex job) in
      let after = Store.stats (Executor.store ex) in
      Alcotest.(check string) "cache hit renders identically" first second;
      Alcotest.(check int) "second run misses nothing" before.Store.misses after.Store.misses;
      Alcotest.(check bool) "second run hits" true (after.Store.hits > before.Store.hits))

let test_executor_errors () =
  with_executor (fun ex ->
      (match Executor.run ex (Job.Show { benchmark = "nope"; seed = 1789 }) with
      | Error e ->
          Alcotest.(check string) "code" "unknown-target" (Error.code_label e.Error.code);
          Alcotest.(check string) "message" "unknown benchmark \"nope\"" e.Error.message
      | Ok _ -> Alcotest.fail "expected unknown-target");
      match
        Executor.run ex
          (Job.Bind
             {
               benchmark = "nope";
               seed = 1789;
               binder = "bogus";
               kind = Rb_dfg.Dfg.Mul;
               locked_fus = 2;
               minterms_per_fu = 2;
             })
      with
      | Error e ->
          Alcotest.(check string) "binder resolves first" "unknown binder \"bogus\""
            e.Error.message
      | Ok _ -> Alcotest.fail "expected unknown-target")

(* A small mixed palette: cheap jobs only, with deliberate duplicates
   (cache hits) and failures mixed in. *)
let mixed_jobs () =
  let base =
    [
      Job.List_benchmarks;
      Job.Show { benchmark = "dct"; seed = 1789 };
      Job.Show { benchmark = "fir"; seed = 1790 };
      Job.Show { benchmark = "nope"; seed = 1789 };
      Job.Bind
        {
          benchmark = "dct";
          seed = 1789;
          binder = "codesign";
          kind = Rb_dfg.Dfg.Mul;
          locked_fus = 2;
          minterms_per_fu = 2;
        };
      Job.Bind
        {
          benchmark = "fir";
          seed = 1789;
          binder = "area";
          kind = Rb_dfg.Dfg.Add;
          locked_fus = 1;
          minterms_per_fu = 2;
        };
      Job.Lint
        { benchmark = Some "dct"; seed = 1789; locked_fus = 2; minterms_per_fu = 2; min_lambda = None };
      Job.Analyze { scheme = Some Job.Rll; width = 4; strength = 2; seed = 1789 };
      Job.Attack
        { scheme = Job.Rll; width = 3; strength = 2; seed = 1789;
          max_iterations = 20_000; portfolio = 1 };
      Job.Export_cnf { scheme = Job.Pf; width = 4; strength = 2; miter = false; seed = 1789 };
      Job.Export_dfg { benchmark = "dct" };
      Job.Dot { benchmark = "fir" };
      Job.Show { benchmark = "dct"; seed = 1790 };
    ]
  in
  (* 13 distinct jobs cycled to 52 — plenty of repeats for the cache. *)
  Array.init 52 (fun i -> List.nth base (i mod List.length base))

let test_executor_jobs_invariant () =
  let run jobs =
    with_executor ~jobs (fun ex ->
        let results = Executor.run_batch ex (mixed_jobs ()) in
        Array.to_list (Array.map (fun (r, _wall) -> render_result r) results))
  in
  let sequential = run 1 in
  let parallel = run 4 in
  Alcotest.(check (list string)) "rendered outputs invariant across jobs" sequential parallel

let test_executor_batch_cache_rate () =
  with_executor ~jobs:2 (fun ex ->
      ignore (Executor.run_batch ex (mixed_jobs ()));
      let { Store.hits; misses; _ } = Store.stats (Executor.store ex) in
      let rate = float_of_int hits /. float_of_int (hits + misses) in
      Alcotest.(check bool)
        (Printf.sprintf "hit rate %.2f above floor" rate)
        true (rate >= 0.30))

(* ----------------------------------------------------------------- Serve *)

let parse_response line =
  match Json.of_string line with
  | Ok (Json.Obj fields) -> fields
  | Ok _ -> Alcotest.failf "response is not an object: %s" line
  | Error e -> Alcotest.failf "response is not JSON (%s): %s" e line

let field name fields =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S" name

let error_member fields =
  match field "error" fields with
  | Json.Obj e ->
      let code = match field "code" e with Json.String s -> s | _ -> "?" in
      let message = match field "message" e with Json.String s -> s | _ -> "?" in
      (code, message)
  | _ -> Alcotest.fail "error member is not an object"

let test_serve_respond () =
  with_executor (fun ex ->
      let respond s = parse_response (Serve.respond ex s) in
      let ok = respond {|{"schema":"rb-job/1","id":42,"op":"list"}|} in
      Alcotest.(check string) "result schema" "rb-result/1"
        (match field "schema" ok with Json.String s -> s | _ -> "?");
      Alcotest.(check bool) "id echoed" true (field "id" ok = Json.Int 42);
      Alcotest.(check bool) "ok member present" true (List.mem_assoc "ok" ok);
      Alcotest.(check bool) "no error member" false (List.mem_assoc "error" ok);

      let bad_json = respond "{" in
      Alcotest.(check bool) "parse failure gets a null id" true (field "id" bad_json = Json.Null);
      let code, message = error_member bad_json in
      Alcotest.(check string) "parse failure code" "invalid-request" code;
      Alcotest.(check bool) "parse failure message" true
        (String.length message >= 12 && String.sub message 0 12 = "parse error:");

      let code, message = error_member (respond {|{"schema":"rb-job/2","id":1,"op":"list"}|}) in
      Alcotest.(check string) "schema mismatch code" "invalid-request" code;
      Alcotest.(check string) "schema mismatch message" {|unsupported schema "rb-job/2"|} message;

      let code, _ = error_member (respond {|{"id":1,"op":"list"}|}) in
      Alcotest.(check string) "missing schema" "invalid-request" code;

      let code, message =
        error_member (respond {|{"schema":"rb-job/1","id":2,"op":"show","benchmark":"nope"}|})
      in
      Alcotest.(check string) "execution error code" "unknown-target" code;
      Alcotest.(check string) "execution error message" {|unknown benchmark "nope"|} message;

      let code, message =
        error_member (respond {|{"schema":"rb-job/1","id":3,"op":"attack","width":99}|})
      in
      Alcotest.(check string) "validation error code" "invalid-request" code;
      Alcotest.(check string) "validation error message" "width must be in 2..8" message)

let test_serve_run_pipe () =
  let requests =
    [
      {|{"schema":"rb-job/1","id":0,"op":"list"}|};
      {|{"schema":"rb-job/1","id":1,"op":"show","benchmark":"dct"}|};
      "";
      {|{"schema":"rb-job/1","id":2,"op":"bind","benchmark":"dct"}|};
      {|{"schema":"rb-job/1","id":3,"op":"bind","benchmark":"dct"}|};
      "not json at all";
      {|{"schema":"rb-job/1","id":5,"op":"show","benchmark":"nope"}|};
      {|{"schema":"rb-job/1","id":6,"op":"analyze","scheme":"rll","strength":2}|};
      {|{"schema":"rb-job/1","id":7,"op":"export-dfg","benchmark":"dct"}|};
      {|{"schema":"rb-job/1","id":8,"op":"dot","benchmark":"fir"}|};
      {|{"schema":"rb-job/1","id":9,"op":"list"}|};
    ]
  in
  let read_fd, write_fd = Unix.pipe ~cloexec:true () in
  let payload = String.concat "\n" requests ^ "\n" in
  let wrote = Unix.write_substring write_fd payload 0 (String.length payload) in
  Alcotest.(check int) "request payload fits the pipe buffer" (String.length payload) wrote;
  Unix.close write_fd;
  let out_path = Filename.temp_file "rb_serve_test" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out_path)
    (fun () ->
      let oc = open_out out_path in
      let stop =
        with_executor ~jobs:2 (fun ex ->
            Serve.run ~executor:ex ~input:read_fd ~output:oc ())
      in
      close_out oc;
      Unix.close read_fd;
      Alcotest.(check bool) "stops at EOF" true (stop = Serve.Eof);
      let ic = open_in out_path in
      let lines = In_channel.input_lines ic in
      close_in ic;
      (* one response per non-blank request line, in request order *)
      Alcotest.(check int) "one response per request" 10 (List.length lines);
      let ids =
        List.map (fun line -> field "id" (parse_response line)) lines
      in
      Alcotest.(check bool) "ids echo in request order" true
        (ids
        = [
            Json.Int 0; Json.Int 1; Json.Int 2; Json.Int 3; Json.Null; Json.Int 5;
            Json.Int 6; Json.Int 7; Json.Int 8; Json.Int 9;
          ]);
      List.iter
        (fun line ->
          let fields = parse_response line in
          Alcotest.(check string) "every line is rb-result/1" "rb-result/1"
            (match field "schema" fields with Json.String s -> s | _ -> "?"))
        lines;
      (* the two identical binds must serialize identically (cache) *)
      let strip_id line =
        let fields = parse_response line in
        Json.to_string (Json.Obj (List.remove_assoc "id" fields))
      in
      Alcotest.(check string) "duplicate jobs answer identically"
        (strip_id (List.nth lines 2))
        (strip_id (List.nth lines 3)))

(* ------------------------------------------------- Serve: robustness *)

module Limits = Rb_util.Limits
module Metrics = Rb_util.Metrics

(* An already-expired deadline answers the structured limit error, and
   the truncated run leaves nothing behind in the cache. *)
let test_executor_deadline () =
  with_executor (fun ex ->
      let job = Job.Show { benchmark = "dct"; seed = 1789 } in
      (match Executor.run ~deadline_s:(Metrics.now_s () -. 1.0) ex job with
      | Error e ->
          Alcotest.(check string) "deadline error code" "limit"
            (Error.code_label e.Error.code);
          Alcotest.(check bool) "deadline error message" true
            (String.length e.Error.message >= 8
            && String.sub e.Error.message 0 8 = "deadline")
      | Ok _ -> Alcotest.fail "expired deadline should not produce an outcome");
      Alcotest.(check int) "expired run cached nothing" 0
        (Store.size (Executor.store ex));
      match Executor.run ex job with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "same job without deadline fails: %s" e.Error.message)

(* An analysis truncated mid-run by a deadline marks itself stopped
   in place instead of raising; the executor must convert that into a
   limit error and keep the partial report out of the artifact cache.
   Deadlines a few microseconds away usually expire after the
   before-execution check but during the analysis itself, exercising
   the in-thunk guard; whenever any run was cut short, a later
   deadline-free run of the identical job must yield complete reports
   (stopped = None on every scheme), not a cached partial replay. *)
let test_analyze_truncation_not_cached () =
  with_executor (fun ex ->
      let job = Job.Analyze { scheme = None; width = 4; strength = 4; seed = 1789 } in
      List.iter
        (fun eps ->
          match Executor.run ~deadline_s:(Metrics.now_s () +. eps) ex job with
          | Ok _ -> () (* finished inside the deadline: cacheable *)
          | Error e ->
            Alcotest.(check string) "truncated analyze answers limit" "limit"
              (Error.code_label e.Error.code))
        [ 1e-6; 1e-5; 1e-4; 1e-3 ];
      match Executor.run ex job with
      | Ok (Outcome.Analyzed reports) ->
        Alcotest.(check int) "one report per scheme" 4 (List.length reports);
        List.iter
          (fun (r : Rb_analysis.Report.t) ->
            Alcotest.(check bool)
              ("complete report for " ^ r.Rb_analysis.Report.subject)
              true
              (r.Rb_analysis.Report.stopped = None))
          reports
      | Ok _ -> Alcotest.fail "analyze answered a non-analyze outcome"
      | Error e -> Alcotest.failf "deadline-free analyze fails: %s" e.Error.message)

let test_serve_deadline_envelope () =
  with_executor (fun ex ->
      let respond s = parse_response (Serve.respond ex s) in
      (* a generous deadline changes nothing *)
      let ok = respond {|{"schema":"rb-job/1","id":1,"op":"list","deadline_ms":60000}|} in
      Alcotest.(check bool) "generous deadline answers ok" true (List.mem_assoc "ok" ok);
      (* a malformed deadline is an invalid request, not a crash *)
      let code, message =
        error_member (respond {|{"schema":"rb-job/1","id":2,"op":"list","deadline_ms":-5}|})
      in
      Alcotest.(check string) "negative deadline code" "invalid-request" code;
      Alcotest.(check bool) "negative deadline message" true
        (String.length message > 0);
      let code, _ =
        error_member
          (respond {|{"schema":"rb-job/1","id":3,"op":"list","deadline_ms":"soon"}|})
      in
      Alcotest.(check string) "non-numeric deadline code" "invalid-request" code)

let test_admission_gate () =
  (match Serve.Admission.create 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cap 0 should be rejected");
  let adm = Serve.Admission.create 2 in
  Alcotest.(check bool) "first slot" true (Serve.Admission.try_acquire adm);
  Alcotest.(check bool) "second slot" true (Serve.Admission.try_acquire adm);
  Alcotest.(check bool) "third is shed" false (Serve.Admission.try_acquire adm);
  Alcotest.(check int) "two in flight" 2 (Serve.Admission.in_flight adm);
  Serve.Admission.release adm;
  Alcotest.(check bool) "released slot is reusable" true
    (Serve.Admission.try_acquire adm);
  Serve.Admission.release adm;
  Serve.Admission.release adm;
  Alcotest.(check int) "all released" 0 (Serve.Admission.in_flight adm)

(* Run a pipe session through [Serve.run] and hand back the response
   lines. *)
let serve_pipe ?drain ?batch_size ?max_line ?admission ~jobs requests =
  let read_fd, write_fd = Unix.pipe ~cloexec:true () in
  let payload = String.concat "" (List.map (fun r -> r ^ "\n") requests) in
  let wrote = Unix.write_substring write_fd payload 0 (String.length payload) in
  Alcotest.(check int) "request payload fits the pipe buffer" (String.length payload) wrote;
  Unix.close write_fd;
  let out_path = Filename.temp_file "rb_serve_test" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out_path)
    (fun () ->
      let oc = open_out out_path in
      let stop =
        with_executor ~jobs (fun ex ->
            Serve.run ~executor:ex ?drain ?batch_size ?max_line ?admission
              ~input:read_fd ~output:oc ())
      in
      close_out oc;
      Unix.close read_fd;
      let ic = open_in out_path in
      let lines = In_channel.input_lines ic in
      close_in ic;
      (stop, lines))

(* An oversized request line answers one invalid-request error and
   costs bounded memory; its neighbours are unaffected. *)
let test_serve_oversized_line () =
  let pad = String.make 200 'x' in
  let stop, lines =
    serve_pipe ~jobs:1 ~max_line:64
      [
        {|{"schema":"rb-job/1","id":0,"op":"list"}|};
        Printf.sprintf {|{"schema":"rb-job/1","id":1,"op":"list","pad":"%s"}|} pad;
        {|{"schema":"rb-job/1","id":2,"op":"list"}|};
      ]
  in
  Alcotest.(check bool) "stops at EOF" true (stop = Serve.Eof);
  Alcotest.(check int) "three responses" 3 (List.length lines);
  let fields = List.map parse_response lines in
  Alcotest.(check bool) "first request answered ok" true
    (List.mem_assoc "ok" (List.nth fields 0));
  let code, message = error_member (List.nth fields 1) in
  Alcotest.(check string) "oversized line code" "invalid-request" code;
  Alcotest.(check bool) "oversized line message names the cap" true
    (String.length message >= 20 && String.sub message 0 20 = "request line exceeds");
  Alcotest.(check bool) "oversized line id is null" true
    (field "id" (List.nth fields 1) = Json.Null);
  Alcotest.(check bool) "next request answered ok" true
    (List.mem_assoc "ok" (List.nth fields 2))

(* Admission cap 1 against a five-line burst gathered as one batch:
   the first line claims the slot, the other four are shed with the
   structured overloaded error — ids still echoed. *)
let test_serve_overload_shedding () =
  let requests =
    List.init 5 (fun i ->
        Printf.sprintf {|{"schema":"rb-job/1","id":%d,"op":"list"}|} i)
  in
  let admission = Serve.Admission.create 1 in
  let stop, lines = serve_pipe ~jobs:1 ~batch_size:8 ~admission requests in
  Alcotest.(check bool) "stops at EOF" true (stop = Serve.Eof);
  Alcotest.(check int) "every line answered" 5 (List.length lines);
  let fields = List.map parse_response lines in
  Alcotest.(check bool) "first line ran" true (List.mem_assoc "ok" (List.nth fields 0));
  List.iteri
    (fun i f ->
      if i > 0 then begin
        let code, _ = error_member f in
        Alcotest.(check string) "excess line shed" "overloaded" code;
        Alcotest.(check bool) "shed line echoes its id" true
          (field "id" f = Json.Int i)
      end)
    fields;
  Alcotest.(check int) "all slots released" 0 (Serve.Admission.in_flight admission)

(* A pre-raised drain flag: already-buffered lines are still answered,
   then the loop refuses to block for more input. *)
let test_serve_drain_pipe () =
  let drain = Atomic.make true in
  let stop, lines = serve_pipe ~jobs:1 ~drain [ {|{"schema":"rb-job/1","id":0,"op":"list"}|} ] in
  Alcotest.(check bool) "drain stop" true (stop = Serve.Drained || stop = Serve.Eof);
  Alcotest.(check bool) "no more than one response" true (List.length lines <= 1)

(* ------------------------------------------- Serve: socket concurrency *)

let socket_path () =
  let path = Filename.temp_file "rb_serve" ".sock" in
  Sys.remove path;
  path

let wait_for_socket path =
  let rec go n =
    if n = 0 then Alcotest.fail "socket never appeared"
    else if not (Sys.file_exists path) then begin
      Thread.delay 0.02;
      go (n - 1)
    end
  in
  go 250

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send fd s = ignore (Unix.write_substring fd s 0 (String.length s))

let recv_line fd =
  let buf = Buffer.create 256 in
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> Buffer.contents buf
    | _ ->
        if Bytes.get b 0 = '\n' then Buffer.contents buf
        else begin
          Buffer.add_char buf (Bytes.get b 0);
          go ()
        end
    (* a handler killed with our request unread closes with an RST *)
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> Buffer.contents buf
  in
  go ()

let with_socket_server ?max_inflight ~jobs f =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let path = socket_path () in
  with_executor ~jobs (fun ex ->
      let cancel = Limits.new_cancel () in
      let drain = Atomic.make false in
      let stop = ref None in
      let server =
        Thread.create
          (fun () ->
            stop := Some (Serve.run_socket ~executor:ex ~cancel ~drain ?max_inflight ~path ()))
          ()
      in
      wait_for_socket path;
      Fun.protect
        ~finally:(fun () ->
          Atomic.set drain true;
          Thread.join server)
        (fun () -> f path);
      !stop)

(* Two clients interleave on one daemon; a third that hangs up
   mid-request costs nobody anything; slow client A (connected, idle)
   never blocks B. *)
let test_serve_socket_concurrent () =
  let stop =
    with_socket_server ~jobs:2 (fun path ->
        let a = connect path in
        let b = connect path in
        let c = connect path in
        (* C dies mid-request: an unterminated line, then hangup *)
        send c {|{"schema":"rb-job/1","id":99,"op":"list"}|};
        Unix.close c;
        (* B makes progress while A sits connected and silent *)
        send b ({|{"schema":"rb-job/1","id":7,"op":"show","benchmark":"dct"}|} ^ "\n");
        let rb = parse_response (recv_line b) in
        Alcotest.(check bool) "b answered" true (field "id" rb = Json.Int 7);
        Alcotest.(check bool) "b got an outcome" true (List.mem_assoc "ok" rb);
        (* A wakes up late and still works *)
        send a ({|{"schema":"rb-job/1","id":8,"op":"list"}|} ^ "\n");
        let ra = parse_response (recv_line a) in
        Alcotest.(check bool) "a answered after b" true (field "id" ra = Json.Int 8);
        (* B again: the connection outlives its siblings' sessions *)
        send b ({|{"schema":"rb-job/1","id":9,"op":"list"}|} ^ "\n");
        let rb2 = parse_response (recv_line b) in
        Alcotest.(check bool) "b answered again" true (field "id" rb2 = Json.Int 9);
        Unix.close a;
        Unix.close b)
  in
  Alcotest.(check bool) "SIGTERM-style drain stops the daemon" true
    (stop = Some Serve.Drained)

(* Every connection handler is killed at accept time by the
   ["serve/conn"] fault — each client just sees its connection close,
   and the daemon keeps accepting and drains cleanly. *)
let test_serve_conn_fault_isolation () =
  let stop =
    Rb_util.Faults.with_config
      (Some { Rb_util.Faults.seed = 7; rate_per_mille = 1000; sites = [ "serve/conn" ] })
      (fun () ->
        with_socket_server ~jobs:1 (fun path ->
            let try_once () =
              let fd = connect path in
              send fd ({|{"schema":"rb-job/1","id":0,"op":"list"}|} ^ "\n");
              let answer = recv_line fd in
              Unix.close fd;
              answer
            in
            Alcotest.(check string) "faulted handler closes without answering" ""
              (try_once ());
            Alcotest.(check string) "daemon still accepts the next connection" ""
              (try_once ())))
  in
  Alcotest.(check bool) "daemon drains despite per-connection faults" true
    (stop = Some Serve.Drained)

(* ---------------------------------------------------------------- Golden *)

(* dune runtest runs with cwd = _build/default/test (where the golden/
   dep glob lands); dune exec from the root does not, so fall back to
   the copy next to the executable. *)
let golden_dir =
  if Sys.file_exists "golden" then "golden"
  else Filename.concat (Filename.dirname Sys.executable_name) "golden"

let read_golden name =
  let path = Filename.concat golden_dir name in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden_text name job () =
  with_executor (fun ex ->
      match Executor.run ex job with
      | Ok outcome ->
          Alcotest.(check string) name (read_golden name) (Render.to_text outcome)
      | Error e -> Alcotest.failf "job failed: %s" e.Error.message)

let golden_json name job () =
  with_executor (fun ex ->
      match Executor.run ex job with
      | Ok outcome ->
          Alcotest.(check string) name (read_golden name)
            (Json.to_string_pretty (Render.result_to_json outcome) ^ "\n")
      | Error e -> Alcotest.failf "job failed: %s" e.Error.message)

let bind_dct =
  Job.Bind
    {
      benchmark = "dct";
      seed = 1789;
      binder = "codesign";
      kind = Rb_dfg.Dfg.Mul;
      locked_fus = 2;
      minterms_per_fu = 2;
    }

let bind_fir_area =
  Job.Bind
    {
      benchmark = "fir";
      seed = 1789;
      binder = "area";
      kind = Rb_dfg.Dfg.Add;
      locked_fus = 1;
      minterms_per_fu = 2;
    }

let lint_dct =
  Job.Lint
    { benchmark = Some "dct"; seed = 1789; locked_fus = 2; minterms_per_fu = 2; min_lambda = None }

let lint_suite =
  Job.Lint { benchmark = None; seed = 1789; locked_fus = 2; minterms_per_fu = 2; min_lambda = None }

let analyze_pf = Job.Analyze { scheme = Some Job.Pf; width = 5; strength = 2; seed = 1789 }
let analyze_all = Job.Analyze { scheme = None; width = 4; strength = 4; seed = 1789 }

let export_cnf_pf =
  Job.Export_cnf { scheme = Job.Pf; width = 4; strength = 2; miter = true; seed = 1789 }

(* The attack goldens freeze the deterministic-result contract into
   bytes: the portfolio-4 variant must render the same report as the
   portfolio-1 job the files were generated from (text wall-clock is
   the renderer's 0.00s default — outcomes carry no timing). *)
let attack_pf =
  Job.Attack
    { scheme = Job.Pf; width = 4; strength = 2; seed = 1789; max_iterations = 20_000;
      portfolio = 1 }

let attack_pf_racing =
  Job.Attack
    { scheme = Job.Pf; width = 4; strength = 2; seed = 1789; max_iterations = 20_000;
      portfolio = 4 }

let attack_rll =
  Job.Attack
    { scheme = Job.Rll; width = 4; strength = 4; seed = 1789; max_iterations = 20_000;
      portfolio = 1 }

let golden_tests =
  [
    Alcotest.test_case "list.txt" `Quick (golden_text "list.txt" Job.List_benchmarks);
    Alcotest.test_case "list.json" `Quick (golden_json "list.json" Job.List_benchmarks);
    Alcotest.test_case "show_dct.txt" `Quick
      (golden_text "show_dct.txt" (Job.Show { benchmark = "dct"; seed = 1789 }));
    Alcotest.test_case "bind_dct.txt" `Quick (golden_text "bind_dct.txt" bind_dct);
    Alcotest.test_case "bind_dct.json" `Quick (golden_json "bind_dct.json" bind_dct);
    Alcotest.test_case "bind_fir_area.json" `Quick (golden_json "bind_fir_area.json" bind_fir_area);
    Alcotest.test_case "lint_dct.txt" `Quick (golden_text "lint_dct.txt" lint_dct);
    Alcotest.test_case "lint_dct.json" `Quick (golden_json "lint_dct.json" lint_dct);
    Alcotest.test_case "lint_suite.json" `Quick (golden_json "lint_suite.json" lint_suite);
    Alcotest.test_case "analyze_pf.txt" `Quick (golden_text "analyze_pf.txt" analyze_pf);
    Alcotest.test_case "analyze_pf.json" `Quick (golden_json "analyze_pf.json" analyze_pf);
    Alcotest.test_case "analyze_all.json" `Quick (golden_json "analyze_all.json" analyze_all);
    Alcotest.test_case "export_cnf_pf.txt" `Quick (golden_text "export_cnf_pf.txt" export_cnf_pf);
    Alcotest.test_case "attack_pf.txt" `Quick (golden_text "attack_pf.txt" attack_pf);
    Alcotest.test_case "attack_pf.json" `Quick (golden_json "attack_pf.json" attack_pf);
    Alcotest.test_case "attack_pf.json at portfolio 4" `Quick
      (golden_json "attack_pf.json" attack_pf_racing);
    Alcotest.test_case "attack_rll.json" `Quick (golden_json "attack_rll.json" attack_rll);
    Alcotest.test_case "export_dfg_dct.txt" `Quick
      (golden_text "export_dfg_dct.txt" (Job.Export_dfg { benchmark = "dct" }));
    Alcotest.test_case "dot_fir.txt" `Quick
      (golden_text "dot_fir.txt" (Job.Dot { benchmark = "fir" }));
  ]

let () =
  Alcotest.run "rb_service"
    [
      ( "job",
        [
          Alcotest.test_case "decode defaults" `Quick test_job_defaults;
          Alcotest.test_case "envelope fields ignored" `Quick test_job_envelope_ignored;
          Alcotest.test_case "validation errors" `Quick test_job_validation;
          Alcotest.test_case "content address" `Quick test_job_digest;
        ] );
      ( "store",
        [
          Alcotest.test_case "single flight" `Quick test_store_single_flight;
          Alcotest.test_case "failure not cached" `Quick test_store_failure_not_cached;
          Alcotest.test_case "concurrent single flight" `Quick
            test_store_concurrent_single_flight;
          Alcotest.test_case "lru eviction" `Quick test_store_lru_eviction;
          Alcotest.test_case "evict fault degrades" `Quick test_store_evict_fault_degrades;
        ] );
      ( "executor",
        [
          Alcotest.test_case "cache determinism" `Quick test_executor_cache_determinism;
          Alcotest.test_case "structured errors" `Quick test_executor_errors;
          Alcotest.test_case "jobs invariance" `Quick test_executor_jobs_invariant;
          Alcotest.test_case "cache hit rate" `Quick test_executor_batch_cache_rate;
          Alcotest.test_case "deadline" `Quick test_executor_deadline;
          Alcotest.test_case "analyze truncation not cached" `Quick
            test_analyze_truncation_not_cached;
        ] );
      ( "serve",
        [
          Alcotest.test_case "respond" `Quick test_serve_respond;
          Alcotest.test_case "pipe session" `Quick test_serve_run_pipe;
          Alcotest.test_case "deadline envelope" `Quick test_serve_deadline_envelope;
          Alcotest.test_case "admission gate" `Quick test_admission_gate;
          Alcotest.test_case "oversized line" `Quick test_serve_oversized_line;
          Alcotest.test_case "overload shedding" `Quick test_serve_overload_shedding;
          Alcotest.test_case "drain" `Quick test_serve_drain_pipe;
          Alcotest.test_case "concurrent socket clients" `Quick
            test_serve_socket_concurrent;
          Alcotest.test_case "connection fault isolation" `Quick
            test_serve_conn_fault_isolation;
        ] );
      ("golden", golden_tests);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_job_roundtrip; qcheck_job_digest_stable;
            qcheck_store_eviction_single_flight;
          ] );
    ]
