module Solver = Rb_sat.Solver
module Solver_ref = Rb_sat.Solver_ref
module Order_heap = Rb_sat.Order_heap
module Tseitin = Rb_sat.Tseitin
module Attack = Rb_sat.Attack
module Netlist = Rb_netlist.Netlist
module Circuits = Rb_netlist.Circuits
module Lock = Rb_netlist.Lock
module Rng = Rb_util.Rng
module Limits = Rb_util.Limits
module Faults = Rb_util.Faults

(* ------------------------------------------------------------- solver *)

let test_trivial_sat () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ v ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "model" true (Solver.value s v)

let test_trivial_unsat () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ v ];
  Solver.add_clause s [ -v ];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_empty_clause_unsat () =
  let s = Solver.create () in
  ignore (Solver.new_var s);
  Solver.add_clause s [];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_implication_chain () =
  let s = Solver.create () in
  let n = 50 in
  let first = Solver.new_vars s n in
  for i = 0 to n - 2 do
    Solver.add_clause s [ -(first + i); first + i + 1 ]
  done;
  Solver.add_clause s [ first ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "chain propagated" true (Solver.value s (first + n - 1))

let pigeonhole pigeons holes =
  let s = Solver.create () in
  let var p h = 1 + (p * holes) + h in
  ignore (Solver.new_vars s (pigeons * holes));
  for p = 0 to pigeons - 1 do
    Solver.add_clause s (List.init holes (fun h -> var p h))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Solver.add_clause s [ -(var p1 h); -(var p2 h) ]
      done
    done
  done;
  s

let test_pigeonhole_unsat () =
  Alcotest.(check bool) "php(5,4)" true (Solver.solve (pigeonhole 5 4) = Solver.Unsat)

let test_pigeonhole_sat_when_enough_holes () =
  Alcotest.(check bool) "php(4,4)" true (Solver.solve (pigeonhole 4 4) = Solver.Sat)

let test_incremental_solving () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ a; b ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Solver.add_clause s [ -a ];
  Alcotest.(check bool) "still sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "b forced" true (Solver.value s b);
  Solver.add_clause s [ -b ];
  Alcotest.(check bool) "now unsat" true (Solver.solve s = Solver.Unsat)

let test_assumptions () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ -a; b ];
  Alcotest.(check bool) "assume a" true (Solver.solve ~assumptions:[ a ] s = Solver.Sat);
  Alcotest.(check bool) "b implied" true (Solver.value s b);
  Alcotest.(check bool) "assume a and -b fails" true
    (Solver.solve ~assumptions:[ a; -b ] s = Solver.Unsat);
  Alcotest.(check bool) "recoverable" true (Solver.solve s = Solver.Sat)

let test_unknown_variable_rejected () =
  let s = Solver.create () in
  match Solver.add_clause s [ 3 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown variable accepted"

let test_stats_progress () =
  let s = pigeonhole 5 4 in
  ignore (Solver.solve s);
  let st = Solver.stats s in
  Alcotest.(check bool) "searched" true (st.Solver.conflicts > 0 && st.Solver.propagations > 0)

(* ----------------------------------------------------- solver budgets *)

let test_solve_conflict_budget_unknown () =
  (* php(7,6) costs far more than 10 conflicts; the budget must stop
     the search instead of deciding. *)
  let s = pigeonhole 7 6 in
  (match Solver.solve ~limit:(Limits.conflicts 10) s with
  | Solver.Unknown Limits.Conflicts -> ()
  | Solver.Unknown _ -> Alcotest.fail "wrong reason"
  | Solver.Sat | Solver.Unsat -> Alcotest.fail "10 conflicts cannot decide php(7,6)");
  (* The solver stays usable: an unbudgeted re-solve still decides. *)
  Alcotest.(check bool) "still decides without a limit" true
    (Solver.solve s = Solver.Unsat)

let test_solve_propagation_budget_unknown () =
  let s = pigeonhole 7 6 in
  match Solver.solve ~limit:(Limits.make ~max_propagations:5 ()) s with
  | Solver.Unknown Limits.Propagations -> ()
  | _ -> Alcotest.fail "propagation budget should trip first"

let test_solve_budget_is_per_call () =
  Faults.with_config None @@ fun () ->
  (* Budgets meter each call's own work, not the solver's lifetime
     totals: a budget that covers one full solve covers a repeat too. *)
  let probe = pigeonhole 4 4 in
  Alcotest.(check bool) "probe solves" true (Solver.solve probe = Solver.Sat);
  let budget = (Solver.stats probe).Solver.conflicts + 1 in
  let s = pigeonhole 4 4 in
  let limit = Limits.conflicts budget in
  Alcotest.(check bool) "first budgeted solve" true
    (Solver.solve ~limit s = Solver.Sat);
  Alcotest.(check bool) "second solve has a fresh budget" true
    (Solver.solve ~limit s = Solver.Sat)

let test_solve_cancelled () =
  let flag = Limits.new_cancel () in
  Limits.cancel flag;
  let s = pigeonhole 5 4 in
  match Solver.solve ~limit:(Limits.make ~cancel:flag ()) s with
  | Solver.Unknown Limits.Cancelled -> ()
  | _ -> Alcotest.fail "raised cancel flag should stop the solve"

let test_solve_generous_budget_decides () =
  Faults.with_config None @@ fun () ->
  let s = pigeonhole 5 4 in
  Alcotest.(check bool) "large budget changes nothing" true
    (Solver.solve ~limit:(Limits.conflicts 10_000_000) s = Solver.Unsat)

let test_solve_budget_fault_site () =
  Faults.with_config
    (Some { Faults.seed = 1; rate_per_mille = 1000; sites = [ "sat/budget" ] })
    (fun () ->
      let s = Solver.create () in
      let v = Solver.new_var s in
      Solver.add_clause s [ v ];
      (* The site only arms budgeted solves: unlimited calls are never
         perturbed, so ordinary tests survive the CI fault job. *)
      Alcotest.(check bool) "unlimited solve untouched" true
        (Solver.solve s = Solver.Sat);
      match Solver.solve ~limit:(Limits.conflicts 1_000_000) s with
      | Solver.Unknown Limits.Conflicts -> ()
      | _ -> Alcotest.fail "injected budget exhaustion expected")

let eval_clauses clauses value =
  List.for_all
    (fun c -> List.exists (fun l -> if l > 0 then value l else not (value (-l))) c)
    clauses

let qcheck_incremental_matches_batch =
  (* solving after each clause must end with the same verdict as
     solving once with all clauses *)
  QCheck2.Test.make ~name:"incremental solving matches batch" ~count:60
    QCheck2.Gen.(pair (int_range 0 50_000) (int_range 1 30))
    (fun (seed, n_clauses) ->
      let rng = Rng.create seed in
      let n_vars = 7 in
      let clauses =
        List.init n_clauses (fun _ ->
            List.init 3 (fun _ ->
                let v = 1 + Rng.int rng n_vars in
                if Rng.bool rng then v else -v))
      in
      let batch = Solver.create () in
      ignore (Solver.new_vars batch n_vars);
      List.iter (Solver.add_clause batch) clauses;
      let incremental = Solver.create () in
      ignore (Solver.new_vars incremental n_vars);
      let verdicts =
        List.map
          (fun c ->
            Solver.add_clause incremental c;
            Solver.solve incremental)
          clauses
      in
      (* verdicts are monotone: once Unsat, always Unsat *)
      let rec monotone = function
        | Solver.Unsat :: Solver.Sat :: _ -> false
        | _ :: rest -> monotone rest
        | [] -> true
      in
      monotone verdicts
      && List.nth verdicts (List.length verdicts - 1) = Solver.solve batch)

let qcheck_solver_vs_brute_force =
  QCheck2.Test.make ~name:"CDCL matches brute force on random 3-SAT" ~count:200
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 1 45))
    (fun (seed, n_clauses) ->
      let rng = Rng.create seed in
      let n_vars = 9 in
      let clauses =
        List.init n_clauses (fun _ ->
            List.init 3 (fun _ ->
                let v = 1 + Rng.int rng n_vars in
                if Rng.bool rng then v else -v))
      in
      let s = Solver.create () in
      ignore (Solver.new_vars s n_vars);
      List.iter (Solver.add_clause s) clauses;
      let brute =
        let rec try_model m =
          m < 1 lsl n_vars
          && (eval_clauses clauses (fun v -> (m lsr (v - 1)) land 1 = 1) || try_model (m + 1))
        in
        try_model 0
      in
      match Solver.solve s with
      | Sat -> brute && eval_clauses clauses (fun v -> Solver.value s v)
      | Unsat -> not brute
      | Unknown _ -> false (* no limit passed: must decide *))

(* --------------------------------------------------------- order heap *)

let test_heap_pop_follows_activity () =
  let h = Order_heap.create () in
  Order_heap.ensure h 5;
  Order_heap.bump h 3 10.0;
  Order_heap.bump h 1 5.0;
  Order_heap.bump h 4 7.5;
  Alcotest.(check bool) "valid after bumps" true (Order_heap.valid h);
  Alcotest.(check int) "highest activity first" 3 (Order_heap.pop h);
  Alcotest.(check int) "then next" 4 (Order_heap.pop h);
  Alcotest.(check int) "then next" 1 (Order_heap.pop h);
  ignore (Order_heap.pop h);
  ignore (Order_heap.pop h);
  Alcotest.(check int) "empty pops 0" 0 (Order_heap.pop h);
  Alcotest.(check int) "empty size" 0 (Order_heap.size h)

let test_heap_reinsert_and_membership () =
  let h = Order_heap.create () in
  Order_heap.ensure h 3;
  Alcotest.(check bool) "in heap after ensure" true (Order_heap.in_heap h 2);
  let v = Order_heap.pop h in
  Alcotest.(check bool) "popped var left" false (Order_heap.in_heap h v);
  Order_heap.insert h v;
  Order_heap.insert h v;
  (* double insert is a no-op *)
  Alcotest.(check int) "size back to 3" 3 (Order_heap.size h);
  Alcotest.(check bool) "valid" true (Order_heap.valid h)

let test_heap_set_activity_decrease () =
  let h = Order_heap.create () in
  Order_heap.ensure h 6;
  for v = 1 to 6 do
    Order_heap.bump h v (float_of_int v)
  done;
  (* Demote the current maximum below everything else: it must sift
     down, not stay at the root. *)
  Order_heap.set_activity h 6 0.5;
  Alcotest.(check bool) "valid after decrease" true (Order_heap.valid h);
  let order = List.init 6 (fun _ -> Order_heap.pop h) in
  Alcotest.(check (list int)) "demoted var pops last" [ 5; 4; 3; 2; 1; 6 ] order

let test_heap_rescale_preserves_order () =
  let h = Order_heap.create () in
  Order_heap.ensure h 8;
  for v = 1 to 8 do
    Order_heap.bump h v (float_of_int v *. 1e99)
  done;
  Order_heap.rescale h 1e-100;
  Alcotest.(check bool) "valid after rescale" true (Order_heap.valid h);
  Alcotest.(check (float 1e-9)) "activity scaled" 0.8
    (Order_heap.activity h 8);
  let order = List.init 8 (fun _ -> Order_heap.pop h) in
  Alcotest.(check (list int)) "order preserved" [ 8; 7; 6; 5; 4; 3; 2; 1 ] order

let test_heap_random_ops_keep_invariant () =
  let rng = Rng.create 7 in
  let h = Order_heap.create () in
  Order_heap.ensure h 40;
  for step = 1 to 2000 do
    (match Rng.int rng 4 with
    | 0 -> Order_heap.bump h (1 + Rng.int rng 40) (Rng.float rng 10.0)
    | 1 -> Order_heap.set_activity h (1 + Rng.int rng 40) (Rng.float rng 10.0)
    | 2 -> ignore (Order_heap.pop h)
    | _ -> Order_heap.insert h (1 + Rng.int rng 40));
    if step mod 100 = 0 then
      Alcotest.(check bool) "invariant holds" true (Order_heap.valid h)
  done;
  (* Re-admit everything, rebuild, and drain: activities must come out
     non-increasing. *)
  for v = 1 to 40 do
    Order_heap.insert h v
  done;
  Order_heap.rebuild h;
  let rec drain last =
    let v = Order_heap.pop h in
    if v = 0 then true
    else
      let a = Order_heap.activity h v in
      a <= last +. 1e-12 && drain a
  in
  Alcotest.(check bool) "drain non-increasing" true (drain infinity)

(* ---------------------------------------------------------- clause db *)

(* Deterministic reduction workload: php(8,7) costs a few thousand
   conflicts in one solve call, comfortably past the first reduction
   threshold, with a verdict known in advance. *)
let test_db_reduction_on_pigeonhole () =
  let s = pigeonhole 8 7 in
  Alcotest.(check bool) "php(8,7) unsat" true (Solver.solve s = Solver.Unsat);
  Alcotest.(check bool) "reductions happened" true (Solver.db_reductions s >= 1);
  Alcotest.(check bool) "clauses removed" true (Solver.removed_clauses s > 0);
  let st = Solver.stats s in
  Alcotest.(check bool) "database shrank" true
    (Solver.live_learnt_clauses s < st.learned);
  Alcotest.(check bool) "reasons survive reduction" true (Solver.reasons_are_live s)

let test_db_reduction_keeps_solver_usable () =
  (* A satisfiable phase-transition instance (the solver-bench pinned
     seed): thousands of conflicts, so the database is reduced at
     least once, and the model can be checked directly. *)
  let rng = Rng.create 12 in
  let n_vars = 180 in
  let clauses =
    List.init 767 (fun _ ->
        let rec distinct () =
          let a = 1 + Rng.int rng n_vars in
          let b = 1 + Rng.int rng n_vars in
          let c = 1 + Rng.int rng n_vars in
          if a = b || b = c || a = c then distinct () else (a, b, c)
        in
        let a, b, c = distinct () in
        let sign x = if Rng.bool rng then x else -x in
        [ sign a; sign b; sign c ])
  in
  let s = Solver.create () in
  ignore (Solver.new_vars s n_vars);
  List.iter (Solver.add_clause s) clauses;
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "reduction ran" true (Solver.db_reductions s >= 1);
  Alcotest.(check bool) "model satisfies every clause" true
    (eval_clauses clauses (fun v -> Solver.value s v));
  Alcotest.(check bool) "reasons live" true (Solver.reasons_are_live s);
  (* The solver must stay usable incrementally after reductions: pin a
     variable each way and get coherent verdicts. *)
  let v = 1 + ((Rng.int rng n_vars) mod n_vars) in
  (match Solver.solve ~assumptions:[ v ] s with
  | Solver.Sat ->
    Alcotest.(check bool) "assumption respected" true (Solver.value s v)
  | Solver.Unsat -> ()
  | Solver.Unknown _ -> Alcotest.fail "unlimited solve returned Unknown");
  match Solver.solve ~assumptions:[ -v ] s with
  | Solver.Sat ->
    Alcotest.(check bool) "negated assumption respected" false (Solver.value s v)
  | Solver.Unsat -> ()
  | Solver.Unknown _ -> Alcotest.fail "unlimited solve returned Unknown"

(* ------------------------------------------------- differential oracle *)

(* Random CNFs with mixed clause lengths (1-4): unit clauses drive the
   root-level simplification paths, longer clauses the watch
   machinery. *)
let random_cnf rng ~n_vars ~n_clauses =
  List.init n_clauses (fun _ ->
      let len = 1 + Rng.int rng 4 in
      List.init len (fun _ ->
          let v = 1 + Rng.int rng n_vars in
          if Rng.bool rng then v else -v))

let qcheck_differential_vs_reference =
  QCheck2.Test.make ~name:"rewritten solver matches reference oracle" ~count:500
    QCheck2.Gen.(
      triple (int_range 0 1_000_000) (int_range 4 12) (int_range 1 60))
    (fun (seed, n_vars, n_clauses) ->
      let rng = Rng.create seed in
      let clauses = random_cnf rng ~n_vars ~n_clauses in
      let s = Solver.create () in
      ignore (Solver.new_vars s n_vars);
      let r = Solver_ref.create () in
      ignore (Solver_ref.new_vars r n_vars);
      List.iter (Solver.add_clause s) clauses;
      List.iter (Solver_ref.add_clause r) clauses;
      match (Solver.solve s, Solver_ref.solve r) with
      | Solver.Sat, Solver_ref.Sat ->
        (* Verdicts agreeing is not enough: each solver's model must
           satisfy the formula by direct clause evaluation. *)
        eval_clauses clauses (fun v -> Solver.value s v)
        && eval_clauses clauses (fun v -> Solver_ref.value r v)
      | Solver.Unsat, Solver_ref.Unsat -> true
      | _ -> false)

let qcheck_differential_incremental_assumptions =
  QCheck2.Test.make ~name:"incremental + assumption paths match oracle"
    ~count:500
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 2 40))
    (fun (seed, n_clauses) ->
      let rng = Rng.create seed in
      let n_vars = 8 in
      let s = Solver.create () in
      ignore (Solver.new_vars s n_vars);
      let r = Solver_ref.create () in
      ignore (Solver_ref.new_vars r n_vars);
      let clauses = random_cnf rng ~n_vars ~n_clauses in
      let seen = ref [] in
      List.for_all
        (fun c ->
          Solver.add_clause s c;
          Solver_ref.add_clause r c;
          seen := c :: !seen;
          let assumptions =
            List.init (Rng.int rng 3) (fun _ ->
                let v = 1 + Rng.int rng n_vars in
                if Rng.bool rng then v else -v)
          in
          match (Solver.solve ~assumptions s, Solver_ref.solve ~assumptions r) with
          | Solver.Sat, Solver_ref.Sat ->
            eval_clauses !seen (fun v -> Solver.value s v)
            && List.for_all
                 (fun lit ->
                   if lit > 0 then Solver.value s lit
                   else not (Solver.value s (-lit)))
                 assumptions
          | Solver.Unsat, Solver_ref.Unsat ->
            (* Unsat under assumptions must not poison the instance:
               an assumption-free solve still agrees below. *)
            true
          | _ -> false)
        clauses
      && (match (Solver.solve s, Solver_ref.solve r) with
         | Solver.Sat, Solver_ref.Sat ->
           eval_clauses !seen (fun v -> Solver.value s v)
         | Solver.Unsat, Solver_ref.Unsat -> true
         | _ -> false))

let qcheck_diverse_configs_match_reference =
  (* Every portfolio member's heuristics must decide the same
     instances: diversification may only change the search path. *)
  QCheck2.Test.make ~name:"diverse portfolio configs match oracle" ~count:120
    QCheck2.Gen.(
      triple (int_range 0 1_000_000) (int_range 4 10) (int_range 1 50))
    (fun (seed, n_vars, n_clauses) ->
      let rng = Rng.create seed in
      let clauses = random_cnf rng ~n_vars ~n_clauses in
      let r = Solver_ref.create () in
      ignore (Solver_ref.new_vars r n_vars);
      List.iter (Solver_ref.add_clause r) clauses;
      let expected = Solver_ref.solve r = Solver_ref.Sat in
      List.for_all
        (fun member ->
          let s = Solver.create ~config:(Solver.diverse_config member) () in
          ignore (Solver.new_vars s n_vars);
          List.iter (Solver.add_clause s) clauses;
          match Solver.solve s with
          | Solver.Sat -> expected && eval_clauses clauses (fun v -> Solver.value s v)
          | Solver.Unsat -> not expected
          | Solver.Unknown _ -> false)
        [ 0; 1; 2; 3; 4 ])

let qcheck_unknown_leaves_instance_reusable =
  (* A budgeted Unknown must not poison the instance: the same solver,
     solved again without a budget, still agrees with the oracle — the
     property the portfolio relies on when a cancelled helper's solver
     is reused for the next round. *)
  QCheck2.Test.make ~name:"Unknown leaves the instance reusable" ~count:150
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 10 50))
    (fun (seed, n_clauses) ->
      let rng = Rng.create seed in
      let n_vars = 8 in
      let clauses = random_cnf rng ~n_vars ~n_clauses in
      let s = Solver.create () in
      ignore (Solver.new_vars s n_vars);
      List.iter (Solver.add_clause s) clauses;
      (* Zero propagation budget: trips on the first search loop, so
         the first call is Unknown whenever the instance needs search. *)
      (match Solver.solve ~limit:(Limits.make ~max_propagations:0 ()) s with
      | Solver.Unknown _ | Solver.Sat | Solver.Unsat -> ());
      let flag = Limits.new_cancel () in
      Limits.cancel flag;
      (match Solver.solve ~limit:(Limits.make ~cancel:flag ()) s with
      | Solver.Unknown _ | Solver.Sat | Solver.Unsat -> ());
      let r = Solver_ref.create () in
      ignore (Solver_ref.new_vars r n_vars);
      List.iter (Solver_ref.add_clause r) clauses;
      match (Solver.solve s, Solver_ref.solve r) with
      | Solver.Sat, Solver_ref.Sat -> eval_clauses clauses (fun v -> Solver.value s v)
      | Solver.Unsat, Solver_ref.Unsat -> true
      | _ -> false)

(* ------------------------------------------------------------ tseitin *)

let test_tseitin_matches_simulation () =
  let circuit = Circuits.adder ~width:3 in
  let rng = Rng.create 31 in
  for _ = 1 to 50 do
    let inputs = Array.init 6 (fun _ -> Rng.bool rng) in
    let s = Solver.create () in
    let inst = Tseitin.encode s circuit in
    Tseitin.constrain_inputs s inst inputs;
    Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
    let expected = Netlist.eval circuit ~inputs ~keys:[||] in
    let got = Array.map (fun v -> Solver.value s v) inst.Tseitin.output_vars in
    Alcotest.(check (array bool)) "outputs agree" expected got
  done

let test_tseitin_output_constraint_inverts () =
  (* Constrain the output of an adder to a value and check the model's
     inputs actually produce it. *)
  let circuit = Circuits.adder ~width:3 in
  let s = Solver.create () in
  let inst = Tseitin.encode s circuit in
  let target = [| true; false; true |] in
  Tseitin.constrain_outputs s inst target;
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  let inputs = Array.map (fun v -> Solver.value s v) inst.Tseitin.input_vars in
  Alcotest.(check (array bool)) "witness checks" target
    (Netlist.eval circuit ~inputs ~keys:[||])

let test_tseitin_shared_variables () =
  (* Two copies sharing inputs must agree on outputs. *)
  let circuit = Circuits.multiplier ~width:2 in
  let s = Solver.create () in
  let a = Tseitin.encode s circuit in
  let b = Tseitin.encode s circuit ~input_vars:a.Tseitin.input_vars in
  (* force a difference: unsatisfiable *)
  let d = Solver.new_var s in
  let x = a.Tseitin.output_vars.(0) and y = b.Tseitin.output_vars.(0) in
  Solver.add_clause s [ -d; x; y ];
  Solver.add_clause s [ -d; -x; -y ];
  Solver.add_clause s [ d ];
  Alcotest.(check bool) "identical copies cannot differ" true (Solver.solve s = Solver.Unsat)

(* ------------------------------------------------------------- dimacs *)

module Dimacs = Rb_sat.Dimacs

let solve_dimacs (d : Dimacs.t) extra =
  let s = Solver.create () in
  ignore (Solver.new_vars s d.Dimacs.n_vars);
  List.iter (Solver.add_clause s) d.Dimacs.clauses;
  List.iter (Solver.add_clause s) extra;
  (s, Solver.solve s)

let test_dimacs_roundtrips_through_solver () =
  (* Pin inputs of the exported CNF and check outputs match simulation. *)
  let circuit = Circuits.adder ~width:3 in
  let d = Dimacs.of_netlist circuit in
  let rng = Rng.create 5 in
  for _ = 1 to 20 do
    let inputs = Array.init 6 (fun _ -> Rng.bool rng) in
    let pins =
      Array.to_list
        (Array.mapi
           (fun i v -> [ (if inputs.(i) then v else -v) ])
           d.Dimacs.input_vars)
    in
    let s, result = solve_dimacs d pins in
    Alcotest.(check bool) "sat" true (result = Solver.Sat);
    let expected = Netlist.eval circuit ~inputs ~keys:[||] in
    Array.iteri
      (fun i v ->
        Alcotest.(check bool) "output bit" expected.(i) (Solver.value s v))
      d.Dimacs.output_vars
  done

let test_dimacs_miter_unsat_for_unlocked () =
  (* Two copies of an unkeyed circuit can never differ. *)
  let circuit = Circuits.multiplier ~width:2 in
  let d = Dimacs.miter circuit in
  let _, result = solve_dimacs d [] in
  Alcotest.(check bool) "unsat" true (result = Solver.Unsat)

let test_dimacs_miter_sat_for_locked () =
  let rng = Rng.create 6 in
  let base = Circuits.adder ~width:3 in
  let locked = Lock.xor_random ~rng ~key_bits:4 base in
  let d = Dimacs.miter locked.Lock.circuit in
  let _, result = solve_dimacs d [] in
  Alcotest.(check bool) "two keys can disagree" true (result = Solver.Sat)

let test_dimacs_text_format () =
  let d = Dimacs.of_netlist (Circuits.adder ~width:2) in
  let text = Dimacs.to_string ~comments:[ "hello" ] d in
  let lines = String.split_on_char '
' text in
  Alcotest.(check bool) "has comment" true (List.mem "c hello" lines);
  let header = Printf.sprintf "p cnf %d %d" d.Dimacs.n_vars (List.length d.Dimacs.clauses) in
  Alcotest.(check bool) "has header" true (List.mem header lines);
  (* every clause line ends in 0 *)
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] <> 'c' && line.[0] <> 'p' then
        Alcotest.(check bool) "terminated" true
          (String.length line >= 1 && line.[String.length line - 1] = '0'))
    lines

let test_dimacs_parse_roundtrip () =
  let d = Dimacs.of_netlist (Circuits.adder ~width:3) in
  match Dimacs.parse (Dimacs.to_string ~comments:[ "roundtrip" ] d) with
  | Ok (n_vars, clauses) ->
    Alcotest.(check int) "vars" d.Dimacs.n_vars n_vars;
    Alcotest.(check (list (list int))) "clauses" d.Dimacs.clauses clauses
  | Error e -> Alcotest.fail e

let test_dimacs_parse_errors () =
  let expect_error text =
    match Dimacs.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" text
  in
  expect_error "";
  expect_error "p cnf 2 1\n1 2\n";
  expect_error "p cnf 1 1\n2 0\n";
  expect_error "p cnf 2 2\n1 0\n";
  expect_error "p cnf 2 1\np cnf 2 1\n1 0\n1 0\n"

let test_dimacs_parse_multiline_clause () =
  match Dimacs.parse "c hi\np cnf 3 1\n1 2\n3 0\n" with
  | Ok (3, [ [ 1; 2; 3 ] ]) -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------- attack *)

let test_attack_breaks_rll () =
  let rng = Rng.create 42 in
  let base = Circuits.adder ~width:4 in
  let locked = Lock.xor_random ~rng ~key_bits:12 base in
  match Attack.attack_locked locked with
  | Attack.Broken { key; iterations } ->
    Alcotest.(check bool) "few iterations" true (iterations < 64);
    Alcotest.(check bool) "functionally correct key" true (Attack.key_is_correct locked key)
  | Attack.Budget_exceeded _ | Attack.Solver_limit _ ->
    Alcotest.fail "RLL should fall quickly"

let test_attack_breaks_point_function () =
  let base = Circuits.adder ~width:3 in
  let locked = Lock.point_function ~minterms:[ 33 ] base in
  match Attack.attack_locked locked with
  | Attack.Broken { key; iterations } ->
    Alcotest.(check bool) "key correct" true (Attack.key_is_correct locked key);
    (* Point functions force many DIPs relative to RLL on the same
       circuit: each DIP eliminates few keys. *)
    Alcotest.(check bool) "needs multiple iterations" true (iterations >= 3)
  | Attack.Budget_exceeded _ | Attack.Solver_limit _ ->
    Alcotest.fail "should converge on 6-input circuit"

let test_attack_respects_budget () =
  let base = Circuits.adder ~width:3 in
  let locked = Lock.point_function ~minterms:[ 12; 19 ] base in
  match Attack.attack_locked ~max_iterations:1 locked with
  | Attack.Budget_exceeded { iterations } -> Alcotest.(check int) "stopped at 1" 1 iterations
  | Attack.Broken _ | Attack.Solver_limit _ ->
    Alcotest.fail "cannot converge in one iteration"

let test_attack_breaks_permnet () =
  let rng = Rng.create 17 in
  let base = Circuits.adder ~width:3 in
  let locked = Lock.permutation_network ~rng ~layers:4 base in
  match Attack.attack_locked locked with
  | Attack.Broken { key; _ } ->
    Alcotest.(check bool) "key correct" true (Attack.key_is_correct locked key)
  | Attack.Budget_exceeded _ | Attack.Solver_limit _ ->
    Alcotest.fail "small permnet should fall"

let test_point_function_harder_than_rll () =
  (* The locked-input count / SAT-resilience trade-off, measured: RLL
     corrupts many inputs and falls fast; a point function corrupts two
     and needs more DIPs. *)
  let base = Circuits.adder ~width:3 in
  let rng = Rng.create 23 in
  let rll = Lock.xor_random ~rng ~key_bits:6 base in
  let pf = Lock.point_function ~minterms:[ 44 ] base in
  let iters locked =
    match Attack.attack_locked locked with
    | Attack.Broken { iterations; _ }
    | Attack.Budget_exceeded { iterations }
    | Attack.Solver_limit { iterations; _ } ->
      iterations
  in
  Alcotest.(check bool) "pf needs at least as many DIPs" true (iters pf >= iters rll)

let test_approximate_attack_on_point_function () =
  (* A point function hides 1 minterm in 2^8: the approximate attacker
     stops early with a key that is almost always right. *)
  let base = Circuits.adder ~width:4 in
  let locked = Lock.point_function ~minterms:[ 0x42 ] base in
  let outcome = Attack.approximate ~dip_budget:10 locked in
  Alcotest.(check bool) "low residual error" true
    (outcome.Attack.estimated_error_rate < 0.05);
  Alcotest.(check bool) "bounded work" true (outcome.Attack.dip_iterations <= 10)

let test_approximate_attack_converges_on_rll () =
  let rng = Rng.create 77 in
  let base = Circuits.adder ~width:3 in
  let locked = Lock.xor_random ~rng ~key_bits:6 base in
  let outcome = Attack.approximate ~dip_budget:50 locked in
  Alcotest.(check bool) "converged exactly" true outcome.Attack.converged;
  Alcotest.(check bool) "recovered key correct" true
    (Attack.key_is_correct locked outcome.Attack.key)

let test_approximate_attack_reports_non_convergence () =
  (* One DIP cannot separate a two-minterm point function; the outcome
     must say so rather than dress the partial key up as exact. *)
  let base = Circuits.adder ~width:3 in
  let locked = Lock.point_function ~minterms:[ 12; 19 ] base in
  let outcome = Attack.approximate ~dip_budget:1 locked in
  Alcotest.(check bool) "not converged" false outcome.Attack.converged;
  Alcotest.(check int) "spent exactly the budget" 1 outcome.Attack.dip_iterations;
  Alcotest.(check bool) "still returns a usable estimate" true
    (outcome.Attack.estimated_error_rate >= 0.0
    && outcome.Attack.estimated_error_rate <= 1.0);
  Alcotest.(check int) "key has the right width"
    (Array.length locked.Lock.correct_key)
    (Array.length outcome.Attack.key)

let test_attack_solver_limit () =
  Faults.with_config None @@ fun () ->
  let base = Circuits.adder ~width:3 in
  let locked = Lock.point_function ~minterms:[ 12; 19 ] base in
  (* A zero-conflict budget trips on the very first miter solve. *)
  (match Attack.attack_locked ~limit:(Limits.conflicts 0) locked with
  | Attack.Solver_limit { iterations; reason } ->
    Alcotest.(check int) "no DIP completed" 0 iterations;
    Alcotest.(check string) "reason" "conflicts" (Limits.reason_label reason)
  | Attack.Broken _ | Attack.Budget_exceeded _ ->
    Alcotest.fail "zero budget cannot complete a miter solve");
  (* A generous budget leaves the attack's behaviour unchanged. *)
  match Attack.attack_locked ~limit:(Limits.conflicts 10_000_000) locked with
  | Attack.Broken { key; _ } ->
    Alcotest.(check bool) "key correct under generous budget" true
      (Attack.key_is_correct locked key)
  | Attack.Budget_exceeded _ | Attack.Solver_limit _ ->
    Alcotest.fail "generous budget should not interfere"

let test_approximate_attack_solver_limit () =
  Faults.with_config None @@ fun () ->
  let base = Circuits.adder ~width:3 in
  let locked = Lock.point_function ~minterms:[ 12; 19 ] base in
  let outcome = Attack.approximate ~limit:(Limits.conflicts 0) locked in
  Alcotest.(check bool) "budgeted-out approximate never claims exactness" false
    outcome.Attack.converged

(* The deterministic-result contract: one attack observed (DIP sequence
   via on_dip + final outcome) at several parallelism settings must be
   indistinguishable. *)
let observe_attack ?pool ?portfolio ?limit locked =
  let dips = ref [] in
  let outcome =
    Attack.attack_locked ?pool ?portfolio ?limit
      ~on_dip:(fun d -> dips := Array.to_list d :: !dips)
      locked
  in
  (outcome, List.rev !dips)

let test_attack_portfolio_deterministic () =
  let base = Circuits.adder ~width:3 in
  let cases =
    [
      Lock.point_function ~minterms:[ 12; 19 ] base;
      Lock.xor_random ~rng:(Rng.create 42) ~key_bits:6 base;
      Lock.permutation_network ~rng:(Rng.create 17) ~layers:3 base;
    ]
  in
  Rb_util.Pool.with_pool ~jobs:3 (fun pool ->
      List.iteri
        (fun i locked ->
          let reference = observe_attack locked in
          (* Racing on the pool, racing without one (members tried in
             index order), and a larger portfolio: all identical. *)
          List.iteri
            (fun j observed ->
              Alcotest.(check bool)
                (Printf.sprintf "case %d variant %d matches portfolio 1" i j)
                true (observed = reference))
            [
              observe_attack ~portfolio:3 ~pool locked;
              observe_attack ~portfolio:3 locked;
              observe_attack ~portfolio:5 ~pool locked;
            ])
        cases)

let test_attack_portfolio_breaks_locks () =
  (* A racing portfolio still recovers a functionally correct key, and
     repeats its own DIP sequence run over run (cancelled helper
     solvers are rebuilt per attack, so no state leaks between runs). *)
  Rb_util.Pool.with_pool ~jobs:4 (fun pool ->
      let base = Circuits.adder ~width:4 in
      let locked = Lock.point_function ~minterms:[ 0x42; 0x17 ] base in
      let first = observe_attack ~portfolio:4 ~pool locked in
      let again = observe_attack ~portfolio:4 ~pool locked in
      Alcotest.(check bool) "repeatable" true (first = again);
      match fst first with
      | Attack.Broken { key; _ } ->
        Alcotest.(check bool) "key correct" true (Attack.key_is_correct locked key)
      | Attack.Budget_exceeded _ | Attack.Solver_limit _ ->
        Alcotest.fail "portfolio attack should converge")

let test_attack_portfolio_rejects_bad_size () =
  let base = Circuits.adder ~width:3 in
  let locked = Lock.point_function ~minterms:[ 3 ] base in
  Alcotest.check_raises "portfolio 0"
    (Invalid_argument "Attack.new_miter: portfolio must be >= 1") (fun () ->
      ignore (Attack.attack_locked ~portfolio:0 locked))

let test_attack_budgeted_portfolio_degrades () =
  Faults.with_config None @@ fun () ->
  let base = Circuits.adder ~width:3 in
  let locked = Lock.point_function ~minterms:[ 12; 19 ] base in
  Rb_util.Pool.with_pool ~jobs:3 (fun pool ->
      (* A zero budget trips member 0's first round even with helpers
         racing; the attack reports the limit instead of wedging. *)
      (match Attack.attack_locked ~portfolio:3 ~pool ~limit:(Limits.conflicts 0) locked with
      | Attack.Solver_limit { iterations; _ } ->
        Alcotest.(check int) "no DIP completed" 0 iterations
      | Attack.Broken _ | Attack.Budget_exceeded _ ->
        Alcotest.fail "zero budget cannot complete a miter solve");
      (* A generous budget changes nothing about the result. *)
      match Attack.attack_locked ~portfolio:3 ~pool ~limit:(Limits.conflicts 10_000_000) locked with
      | Attack.Broken { key; _ } ->
        Alcotest.(check bool) "key correct" true (Attack.key_is_correct locked key)
      | Attack.Budget_exceeded _ | Attack.Solver_limit _ ->
        Alcotest.fail "generous budget should not interfere")

let test_attack_budgeted_portfolio_deterministic () =
  (* The stop point of a work-budgeted attack must be a pure function
     of the constraint set, never of helper racing: under a conflict
     budget the budget-tracking solve runs on member 0 alone, so the
     outcome (including which Solver_limit round trips and the DIP
     prefix completed) is byte-identical at every portfolio size, pool
     or no pool. *)
  Faults.with_config None @@ fun () ->
  let base = Circuits.adder ~width:3 in
  let locked = Lock.point_function ~minterms:[ 12; 19 ] base in
  let limited = ref 0 and finished = ref 0 in
  Rb_util.Pool.with_pool ~jobs:3 (fun pool ->
      List.iter
        (fun budget ->
          let limit = Limits.conflicts budget in
          let reference = observe_attack ~limit locked in
          (match fst reference with
          | Attack.Solver_limit _ -> incr limited
          | Attack.Broken _ -> incr finished
          | Attack.Budget_exceeded _ -> ());
          List.iteri
            (fun j observed ->
              Alcotest.(check bool)
                (Printf.sprintf "budget %d variant %d matches portfolio 1" budget j)
                true (observed = reference))
            [
              observe_attack ~portfolio:3 ~pool ~limit locked;
              observe_attack ~portfolio:3 ~limit locked;
              observe_attack ~portfolio:5 ~pool ~limit locked;
            ])
        [ 1; 2; 5; 10; 20; 50; 100; 1_000; 100_000 ]);
  (* The sweep must exercise both regimes or it proves nothing. *)
  Alcotest.(check bool) "some budget trips mid-attack" true (!limited > 0);
  Alcotest.(check bool) "some budget completes" true (!finished > 0)

let test_constrain_observation_semantics () =
  (* constrain_observation must mean exactly circuit(dip, key) = outputs:
     for every full key assignment, the constrained instance is
     satisfiable iff simulation under that key reproduces the
     observation. Exhaustive over the key space. *)
  let base = Circuits.adder ~width:3 in
  let locked = Lock.point_function ~minterms:[ 33 ] base in
  let circuit = locked.Lock.circuit in
  let n_keys = Netlist.n_keys circuit in
  let rng = Rng.create 91 in
  for _ = 1 to 10 do
    let dip = Array.init (Netlist.n_inputs circuit) (fun _ -> Rng.bool rng) in
    let response = Netlist.eval circuit ~inputs:dip ~keys:locked.Lock.correct_key in
    let s = Solver.create () in
    let key_vars = Array.init n_keys (fun _ -> Solver.new_var s) in
    Tseitin.constrain_observation s circuit ~key_vars ~inputs:dip ~outputs:response;
    for k = 0 to (1 lsl n_keys) - 1 do
      let keys = Array.init n_keys (fun i -> k land (1 lsl i) <> 0) in
      let assumptions =
        Array.to_list
          (Array.mapi (fun i v -> if keys.(i) then v else -v) key_vars)
      in
      let consistent = Netlist.eval circuit ~inputs:dip ~keys = response in
      Alcotest.(check bool)
        (Printf.sprintf "key %d consistency" k)
        consistent
        (Solver.solve ~assumptions s = Solver.Sat)
    done
  done

let () =
  Alcotest.run "rb_sat"
    [
      ( "solver",
        [
          Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
          Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
          Alcotest.test_case "empty clause" `Quick test_empty_clause_unsat;
          Alcotest.test_case "implication chain" `Quick test_implication_chain;
          Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
          Alcotest.test_case "pigeonhole sat" `Quick test_pigeonhole_sat_when_enough_holes;
          Alcotest.test_case "incremental" `Quick test_incremental_solving;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "unknown var" `Quick test_unknown_variable_rejected;
          Alcotest.test_case "stats" `Quick test_stats_progress;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "conflict budget yields Unknown" `Quick
            test_solve_conflict_budget_unknown;
          Alcotest.test_case "propagation budget yields Unknown" `Quick
            test_solve_propagation_budget_unknown;
          Alcotest.test_case "budget is per call" `Quick
            test_solve_budget_is_per_call;
          Alcotest.test_case "cancel flag stops the solve" `Quick
            test_solve_cancelled;
          Alcotest.test_case "generous budget decides" `Quick
            test_solve_generous_budget_decides;
          Alcotest.test_case "sat/budget fault site" `Quick
            test_solve_budget_fault_site;
        ] );
      ( "order-heap",
        [
          Alcotest.test_case "pop follows activity" `Quick
            test_heap_pop_follows_activity;
          Alcotest.test_case "reinsert + membership" `Quick
            test_heap_reinsert_and_membership;
          Alcotest.test_case "set_activity decrease" `Quick
            test_heap_set_activity_decrease;
          Alcotest.test_case "rescale preserves order" `Quick
            test_heap_rescale_preserves_order;
          Alcotest.test_case "random ops keep invariant" `Quick
            test_heap_random_ops_keep_invariant;
        ] );
      ( "clause-db",
        [
          Alcotest.test_case "reduction on pigeonhole" `Quick
            test_db_reduction_on_pigeonhole;
          Alcotest.test_case "usable after reduction" `Quick
            test_db_reduction_keeps_solver_usable;
        ] );
      ( "tseitin",
        [
          Alcotest.test_case "matches simulation" `Quick test_tseitin_matches_simulation;
          Alcotest.test_case "output constraints" `Quick test_tseitin_output_constraint_inverts;
          Alcotest.test_case "shared variables" `Quick test_tseitin_shared_variables;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrips_through_solver;
          Alcotest.test_case "unlocked miter unsat" `Quick test_dimacs_miter_unsat_for_unlocked;
          Alcotest.test_case "locked miter sat" `Quick test_dimacs_miter_sat_for_locked;
          Alcotest.test_case "text format" `Quick test_dimacs_text_format;
          Alcotest.test_case "parse roundtrip" `Quick test_dimacs_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_dimacs_parse_errors;
          Alcotest.test_case "multiline clause" `Quick test_dimacs_parse_multiline_clause;
        ] );
      ( "attack",
        [
          Alcotest.test_case "breaks RLL" `Quick test_attack_breaks_rll;
          Alcotest.test_case "breaks point function" `Quick test_attack_breaks_point_function;
          Alcotest.test_case "budget" `Quick test_attack_respects_budget;
          Alcotest.test_case "breaks permnet" `Quick test_attack_breaks_permnet;
          Alcotest.test_case "trade-off measured" `Quick test_point_function_harder_than_rll;
          Alcotest.test_case "approximate on pf" `Quick test_approximate_attack_on_point_function;
          Alcotest.test_case "approximate on rll" `Quick test_approximate_attack_converges_on_rll;
          Alcotest.test_case "approximate reports non-convergence" `Quick
            test_approximate_attack_reports_non_convergence;
          Alcotest.test_case "solver limit degrades gracefully" `Quick
            test_attack_solver_limit;
          Alcotest.test_case "approximate under solver limit" `Quick
            test_approximate_attack_solver_limit;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "deterministic across settings" `Quick
            test_attack_portfolio_deterministic;
          Alcotest.test_case "racing run breaks locks repeatably" `Quick
            test_attack_portfolio_breaks_locks;
          Alcotest.test_case "rejects portfolio < 1" `Quick
            test_attack_portfolio_rejects_bad_size;
          Alcotest.test_case "budgeted portfolio degrades gracefully" `Quick
            test_attack_budgeted_portfolio_degrades;
          Alcotest.test_case "budgeted portfolio deterministic" `Quick
            test_attack_budgeted_portfolio_deterministic;
          Alcotest.test_case "observation constraint semantics" `Quick
            test_constrain_observation_semantics;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_solver_vs_brute_force; qcheck_incremental_matches_batch;
            qcheck_differential_vs_reference;
            qcheck_differential_incremental_assumptions;
            qcheck_diverse_configs_match_reference;
            qcheck_unknown_leaves_instance_reusable;
          ] );
    ]
