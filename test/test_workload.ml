module Dfg = Rb_dfg.Dfg
module Word = Rb_dfg.Word
module Schedule = Rb_sched.Schedule
module Trace = Rb_sim.Trace
module Kmatrix = Rb_sim.Kmatrix
module Benchmark = Rb_workload.Benchmark
module Stats = Rb_util.Stats

let all = Benchmark.all ()

let test_registry () =
  Alcotest.(check int) "11 benchmarks" 11 (List.length all);
  Alcotest.(check (list string)) "paper order"
    [ "dct"; "ecb_enc4"; "fft"; "fir"; "jctrans2"; "jdmerge1"; "jdmerge3"; "jdmerge4";
      "motion2"; "motion3"; "noisest2" ]
    (Benchmark.names ());
  Alcotest.(check string) "find" "fft" (Benchmark.find "fft").Benchmark.name;
  match Benchmark.find "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown benchmark accepted"

let test_all_dfgs_validate () =
  List.iter
    (fun b ->
      match Dfg.validate b.Benchmark.dfg with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s invalid: %s" b.Benchmark.name e)
    all

let test_operation_mix_matches_paper_scale () =
  (* Paper: average 18.6 adds and 10.6 multiplies over 13.5 cycles. We
     require the same order of magnitude per benchmark and on
     average. *)
  let adds =
    List.map (fun b -> float_of_int (List.length (Dfg.ops_of_kind b.Benchmark.dfg Dfg.Add))) all
  in
  let muls =
    List.map (fun b -> float_of_int (List.length (Dfg.ops_of_kind b.Benchmark.dfg Dfg.Mul))) all
  in
  Alcotest.(check bool) "avg adds in 10..30" true
    (Stats.mean adds >= 10.0 && Stats.mean adds <= 30.0);
  Alcotest.(check bool) "avg muls in 4..20" true
    (Stats.mean muls >= 4.0 && Stats.mean muls <= 20.0);
  List.iter2
    (fun b a -> Alcotest.(check bool) (b.Benchmark.name ^ " has adds") true (a >= 5.0))
    all adds

let test_ecb_has_no_multipliers () =
  (* The paper notes "No multipliers were present in the ecb_enc4
     benchmark" — preserved by our rebuild. *)
  let b = Benchmark.find "ecb_enc4" in
  Alcotest.(check int) "no muls" 0 (List.length (Dfg.ops_of_kind b.Benchmark.dfg Dfg.Mul));
  List.iter
    (fun other ->
      if other.Benchmark.name <> "ecb_enc4" then
        Alcotest.(check bool) (other.Benchmark.name ^ " has muls") true
          (Dfg.ops_of_kind other.Benchmark.dfg Dfg.Mul <> []))
    all

let test_schedules_fit_resource_budget () =
  List.iter
    (fun b ->
      let s = Benchmark.schedule b in
      Alcotest.(check bool) (b.Benchmark.name ^ " causal") true
        (Result.is_ok (Schedule.validate s));
      Alcotest.(check bool) (b.Benchmark.name ^ " <=3 adders") true
        (Schedule.max_concurrency s Dfg.Add <= 3);
      Alcotest.(check bool) (b.Benchmark.name ^ " <=3 mults") true
        (Schedule.max_concurrency s Dfg.Mul <= 3))
    all

let test_cycle_counts_reasonable () =
  let cycles = List.map (fun b -> float_of_int (Schedule.n_cycles (Benchmark.schedule b))) all in
  Alcotest.(check bool) "avg cycles in 6..25" true
    (Stats.mean cycles >= 6.0 && Stats.mean cycles <= 25.0)

let test_traces_deterministic () =
  let b = Benchmark.find "dct" in
  let t1 = Benchmark.trace ~seed:5 b and t2 = Benchmark.trace ~seed:5 b in
  let same = ref true in
  for s = 0 to Trace.length t1 - 1 do
    if Trace.sample t1 s <> Trace.sample t2 s then same := false
  done;
  Alcotest.(check bool) "same seed, same trace" true !same;
  let t3 = Benchmark.trace ~seed:6 b in
  let differs = ref false in
  for s = 0 to Trace.length t1 - 1 do
    if Trace.sample t1 s <> Trace.sample t3 s then differs := true
  done;
  Alcotest.(check bool) "different seed differs" true !differs

let test_traces_in_word_range () =
  List.iter
    (fun b ->
      let t = Benchmark.trace ~length:64 b in
      for s = 0 to Trace.length t - 1 do
        Array.iter
          (fun v ->
            if v < 0 || v > Word.mask then
              Alcotest.failf "%s out of range: %d" b.Benchmark.name v)
          (Trace.sample t s)
      done)
    all

let test_workloads_are_heavy_tailed () =
  (* The binding algorithms rely on repetitive inputs: the most common
     minterm must dominate a uniform-random baseline (which would put
     ~trace/65536 on each). *)
  List.iter
    (fun b ->
      let t = Benchmark.trace b in
      let k = Kmatrix.build t in
      match Kmatrix.top_minterms k ~n:1 with
      | [ m ] ->
        Alcotest.(check bool)
          (b.Benchmark.name ^ " head is tall") true
          (Kmatrix.total_occurrences k m >= Benchmark.default_trace_length / 8)
      | _ -> Alcotest.failf "%s produced no minterms" b.Benchmark.name)
    all

let test_candidate_lists_fill_up () =
  (* Sec. VI aggregates the 10 most common inputs; every benchmark's
     trace must be rich enough to supply them for its dominant kind. *)
  List.iter
    (fun b ->
      let t = Benchmark.trace b in
      let k = Kmatrix.build t in
      Alcotest.(check int) (b.Benchmark.name ^ " add candidates") 10
        (List.length (Kmatrix.top_minterms ~kind:Dfg.Add k ~n:10)))
    all

let test_trace_length_override () =
  let b = Benchmark.find "fir" in
  Alcotest.(check int) "custom length" 32 (Trace.length (Benchmark.trace ~length:32 b))

(* {1 Parameterized thousand-op kernels} *)

module Kernels = Rb_workload.Kernels

let test_parametric_sizes () =
  (* Op counts must land in the paper-motivated 10^3..10^4 band (the
     scale where sparse matching pays off) and follow the generators'
     documented formulas. *)
  let cases =
    [
      ("fft256", Kernels.fft_n ~n:256, 4096);
      ("fft512", Kernels.fft_n ~n:512, 9216);
      ("dct64", Kernels.dct_n ~n:64, 4128);
      ("conv64", Kernels.conv_n ~taps:16 ~points:64, 1984);
      ("aes16", Kernels.aes_round_n ~blocks:16, 2048);
    ]
  in
  List.iter
    (fun (name, dfg, expect) ->
      Alcotest.(check int) (name ^ " op count") expect (Dfg.op_count dfg);
      Alcotest.(check bool) (name ^ " in band") true (expect >= 1000 && expect <= 10000))
    cases

let test_parametric_validate () =
  List.iter
    (fun (name, dfg) ->
      match Dfg.validate dfg with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s invalid: %s" name e)
    [
      ("fft256", Kernels.fft_n ~n:256);
      ("dct32", Kernels.dct_n ~n:32);
      ("conv32", Kernels.conv_n ~taps:8 ~points:32);
      ("aes4", Kernels.aes_round_n ~blocks:4);
    ]

let test_parametric_deterministic () =
  (* Integer surrogate coefficients only: the same size always rebuilds
     the same DFG, so schedules and bindings replay exactly. *)
  let fingerprint dfg =
    ( Dfg.op_count dfg,
      Dfg.critical_path_length dfg,
      List.length (Dfg.ops_of_kind dfg Dfg.Add),
      List.length (Dfg.ops_of_kind dfg Dfg.Mul) )
  in
  List.iter
    (fun (name, build) ->
      Alcotest.(check bool) (name ^ " deterministic") true
        (fingerprint (build ()) = fingerprint (build ())))
    [
      ("fft256", fun () -> Kernels.fft_n ~n:256);
      ("dct32", fun () -> Kernels.dct_n ~n:32);
      ("conv32", fun () -> Kernels.conv_n ~taps:8 ~points:32);
      ("aes4", fun () -> Kernels.aes_round_n ~blocks:4);
    ]

let test_parametric_schedulable () =
  let b = Benchmark.parametric "fft" ~n:256 in
  let s =
    Benchmark.schedule ~limits:{ Rb_sched.Scheduler.adders = 8; multipliers = 8 } b
  in
  Alcotest.(check bool) "fft256 causal" true (Result.is_ok (Schedule.validate s));
  Alcotest.(check bool) "fft256 <=8 adders" true (Schedule.max_concurrency s Dfg.Add <= 8);
  Alcotest.(check bool) "fft256 <=8 mults" true (Schedule.max_concurrency s Dfg.Mul <= 8)

let test_parametric_registry () =
  let b = Benchmark.parametric "aes" ~n:8 in
  Alcotest.(check string) "derived name" "aes8" b.Benchmark.name;
  Alcotest.(check int) "aes8 ops" 1024 (Dfg.op_count b.Benchmark.dfg);
  (match Benchmark.parametric "nope" ~n:64 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "unknown family accepted");
  (* Parametric names stay out of the fixed Fig. 4 registry. *)
  Alcotest.(check bool) "not in registry" true
    (not (List.mem "fft256" (Benchmark.names ())))

let test_parametric_rejects_bad_sizes () =
  let invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | (_ : Dfg.t) -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  invalid "fft not pow2" (fun () -> Kernels.fft_n ~n:100);
  invalid "fft too small" (fun () -> Kernels.fft_n ~n:4);
  invalid "dct not pow2" (fun () -> Kernels.dct_n ~n:33);
  invalid "conv one tap" (fun () -> Kernels.conv_n ~taps:1 ~points:64);
  invalid "conv no points" (fun () -> Kernels.conv_n ~taps:8 ~points:0);
  invalid "aes no blocks" (fun () -> Kernels.aes_round_n ~blocks:0)

let () =
  Alcotest.run "rb_workload"
    [
      ( "registry",
        [
          Alcotest.test_case "names and lookup" `Quick test_registry;
          Alcotest.test_case "all validate" `Quick test_all_dfgs_validate;
          Alcotest.test_case "operation mix" `Quick test_operation_mix_matches_paper_scale;
          Alcotest.test_case "ecb has no muls" `Quick test_ecb_has_no_multipliers;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "fit budget" `Quick test_schedules_fit_resource_budget;
          Alcotest.test_case "cycle counts" `Quick test_cycle_counts_reasonable;
        ] );
      ( "traces",
        [
          Alcotest.test_case "deterministic" `Quick test_traces_deterministic;
          Alcotest.test_case "in range" `Quick test_traces_in_word_range;
          Alcotest.test_case "heavy tails" `Quick test_workloads_are_heavy_tailed;
          Alcotest.test_case "candidate lists" `Quick test_candidate_lists_fill_up;
          Alcotest.test_case "length override" `Quick test_trace_length_override;
        ] );
      ( "parametric",
        [
          Alcotest.test_case "op counts" `Quick test_parametric_sizes;
          Alcotest.test_case "validate" `Quick test_parametric_validate;
          Alcotest.test_case "deterministic" `Quick test_parametric_deterministic;
          Alcotest.test_case "schedulable" `Quick test_parametric_schedulable;
          Alcotest.test_case "registry" `Quick test_parametric_registry;
          Alcotest.test_case "bad sizes" `Quick test_parametric_rejects_bad_sizes;
        ] );
    ]
