module Netlist = Rb_netlist.Netlist
module Circuits = Rb_netlist.Circuits
module Lock = Rb_netlist.Lock
module B = Netlist.Builder
module Dfg = Rb_dfg.Dfg
module Minterm = Rb_dfg.Minterm
module Schedule = Rb_sched.Schedule
module Allocation = Rb_hls.Allocation
module Binding = Rb_hls.Binding
module Config = Rb_locking.Config
module Scheme = Rb_locking.Scheme
module Rng = Rb_util.Rng
module Diagnostic = Rb_lint.Diagnostic
module Report = Rb_lint.Report
module Netlist_rules = Rb_lint.Netlist_rules
module Hls_rules = Rb_lint.Hls_rules
module Locking_rules = Rb_lint.Locking_rules
module Lint = Rb_lint.Lint

let rules_of diags = List.map (fun d -> d.Diagnostic.rule) diags

let has_rule rule diags = List.mem rule (rules_of diags)

let check_fires name rule diags =
  Alcotest.(check bool) (name ^ " fires " ^ rule) true (has_rule rule diags)

let check_silent name rule diags =
  Alcotest.(check bool) (name ^ " does not fire " ^ rule) false (has_rule rule diags)

(* ------------------------------------------------- netlist rule fixtures *)

let test_net_cycle () =
  (* gate 0 drives net 1 but reads net 2 — a forward reference, i.e. a
     combinational cycle; only constructible through Netlist.unchecked *)
  let c =
    Netlist.unchecked ~n_inputs:1 ~n_keys:0
      ~gates:[| Netlist.And (0, 2); Netlist.Buf (1) |]
      ~outputs:[| 2 |]
  in
  let diags = Netlist_rules.check c in
  check_fires "forward ref" Netlist_rules.rule_cycle diags;
  (* output naming a nonexistent net *)
  let c =
    Netlist.unchecked ~n_inputs:1 ~n_keys:0 ~gates:[| Netlist.Not 0 |] ~outputs:[| 9 |]
  in
  check_fires "dangling output" Netlist_rules.rule_cycle (Netlist_rules.check c)

let test_net_dead () =
  let b = B.create ~n_inputs:1 ~n_keys:0 in
  let x = B.input b 0 in
  let (_ : Netlist.net) = B.not_ b x in
  (* dead: feeds nothing *)
  B.output b (B.and_ b x x);
  let diags = Netlist_rules.check (B.finish b) in
  check_fires "dead gate" Netlist_rules.rule_dead diags;
  Alcotest.(check bool) "dead gate is only a warning" true
    (List.for_all (fun d -> d.Diagnostic.severity <> Diagnostic.Error) diags)

let test_net_key_mute () =
  (* the key input is never wired into the circuit at all *)
  let b = B.create ~n_inputs:1 ~n_keys:1 in
  B.output b (B.not_ b (B.input b 0));
  let diags = Netlist_rules.check (B.finish b) in
  check_fires "unconnected key" Netlist_rules.rule_key_mute diags;
  check_silent "unconnected key" Netlist_rules.rule_key_strip diags

let test_net_key_strip () =
  (* k XOR k = 0 feeds the output XOR: structurally connected, but
     constant folding removes the key entirely *)
  let b = B.create ~n_inputs:1 ~n_keys:1 in
  let x = B.input b 0 and k = B.key b 0 in
  let kk = B.xor_ b k k in
  B.output b (B.xor_ b x kk);
  let diags = Netlist_rules.check (B.finish b) in
  check_fires "strippable key" Netlist_rules.rule_key_strip diags;
  check_silent "strippable key" Netlist_rules.rule_key_mute diags

let test_net_const_out () =
  (* output wired straight to a key input: observable key bit, error *)
  let b = B.create ~n_inputs:1 ~n_keys:1 in
  B.output b (B.key b 0);
  B.output b (B.not_ b (B.input b 0));
  let diags = Netlist_rules.check (B.finish b) in
  check_fires "key output" Netlist_rules.rule_const_out diags;
  Alcotest.(check bool) "key output is an error" true
    (List.exists
       (fun d ->
         d.Diagnostic.rule = Netlist_rules.rule_const_out
         && d.Diagnostic.severity = Diagnostic.Error)
       diags);
  (* statically-constant output: warning only *)
  let b = B.create ~n_inputs:2 ~n_keys:0 in
  let x = B.input b 0 in
  B.output b (B.and_ b x (B.not_ b x));
  (* x AND not x: unknown to the folder (no same-net rule), so use a
     literal constant instead *)
  let b = B.create ~n_inputs:1 ~n_keys:0 in
  B.output b (B.const b true);
  B.output b (B.not_ b (B.input b 0));
  let report = Lint.netlist (B.finish b) in
  check_fires "const output" Netlist_rules.rule_const_out (Report.diagnostics report);
  Alcotest.(check bool) "const output alone stays clean" true (Report.is_clean report)

let test_net_key_skew () =
  (* an AND-reduce over five key bits is true with probability 1/32
     under random keys — far below the 0.05 floor, the textbook
     ProbLock leak *)
  let b = B.create ~n_inputs:1 ~n_keys:5 in
  let x = B.input b 0 in
  let keys = List.init 5 (B.key b) in
  let guard = B.and_reduce b keys in
  B.output b (B.and_ b x guard);
  let diags = Netlist_rules.check (B.finish b) in
  check_fires "key AND-chain" Netlist_rules.rule_key_skew diags;
  Alcotest.(check bool) "skew is only a warning" true
    (List.for_all
       (fun d ->
         d.Diagnostic.rule <> Netlist_rules.rule_key_skew
         || d.Diagnostic.severity <> Diagnostic.Error)
       diags);
  (* a lone XOR key gate is perfectly balanced: silent *)
  let b = B.create ~n_inputs:1 ~n_keys:1 in
  let x = B.input b 0 in
  let g = B.not_ b x in
  B.output b (B.xor_ b g (B.key b 0));
  check_silent "balanced XOR lock" Netlist_rules.rule_key_skew
    (Netlist_rules.check (B.finish b))

let test_clean_adder_has_no_diags () =
  let report = Lint.netlist (Circuits.adder ~width:4) in
  Alcotest.(check (list string)) "no diagnostics at all" []
    (rules_of (Report.diagnostics report))

(* ----------------------------------------------------- HLS rule fixtures *)

(* two independent adds and one dependent add: op2 consumes op0 *)
let little_dfg () =
  let b = Dfg.Builder.create "lint-fixture" in
  let x = Dfg.Builder.input b "x" and y = Dfg.Builder.input b "y" in
  let s0 = Dfg.Builder.add b x y in
  let s1 = Dfg.Builder.add b x (Dfg.Builder.const 3) in
  let s2 = Dfg.Builder.add b s0 y in
  Dfg.Builder.output b s1;
  Dfg.Builder.output b s2;
  Dfg.Builder.finish b

let test_hls_precedence () =
  let dfg = little_dfg () in
  (* op2 consumes op0 but is scheduled in the same cycle *)
  let schedule = Schedule.make dfg ~cycle_of:[| 0; 0; 0 |] in
  let diags = Hls_rules.check_schedule schedule in
  check_fires "same-cycle producer" Hls_rules.rule_precedence diags;
  let good = Schedule.make dfg ~cycle_of:[| 0; 0; 1 |] in
  Alcotest.(check (list string)) "valid schedule is silent" []
    (rules_of (Hls_rules.check_schedule good))

let test_hls_oversubscribed () =
  let dfg = little_dfg () in
  let schedule = Schedule.make dfg ~cycle_of:[| 0; 0; 1 |] in
  let allocation = { Allocation.adders = 2; multipliers = 0 } in
  (* ops 0 and 1 share cycle 0 yet both sit on FU 0 *)
  let diags = Hls_rules.check_binding schedule allocation ~fu_of_op:[| 0; 0; 0 |] in
  check_fires "double-booked FU" Hls_rules.rule_oversubscribed diags;
  let ok = Hls_rules.check_binding schedule allocation ~fu_of_op:[| 0; 1; 0 |] in
  Alcotest.(check (list string)) "valid binding is silent" [] (rules_of ok)

let test_hls_kind () =
  let dfg = little_dfg () in
  let schedule = Schedule.make dfg ~cycle_of:[| 0; 0; 1 |] in
  let allocation = { Allocation.adders = 2; multipliers = 1 } in
  (* FU 2 is the multiplier; op 1 is an add *)
  let diags = Hls_rules.check_binding schedule allocation ~fu_of_op:[| 0; 2; 0 |] in
  check_fires "wrong-kind FU" Hls_rules.rule_kind diags;
  (* out-of-range FU *)
  let diags = Hls_rules.check_binding schedule allocation ~fu_of_op:[| 0; 9; 0 |] in
  check_fires "out-of-range FU" Hls_rules.rule_kind diags;
  (* array of the wrong length *)
  let diags = Hls_rules.check_binding schedule allocation ~fu_of_op:[| 0 |] in
  check_fires "short binding" Hls_rules.rule_kind diags

let test_hls_cost () =
  let dfg = little_dfg () in
  let schedule = Schedule.make dfg ~cycle_of:[| 0; 0; 1 |] in
  let allocation = Allocation.for_schedule schedule in
  let binding = Rb_hls.Area_binding.bind schedule allocation in
  let registers = Rb_hls.Registers.count binding in
  let transfers = Hls_rules.transfer_count binding in
  Alcotest.(check (list string)) "true counts are silent" []
    (rules_of (Hls_rules.check_costs ~registers ~transfers binding));
  check_fires "inflated registers" Hls_rules.rule_cost
    (Hls_rules.check_costs ~registers:(registers + 1) binding);
  check_fires "deflated transfers" Hls_rules.rule_cost
    (Hls_rules.check_costs ~transfers:(transfers + 3) binding)

(* ------------------------------------------------- locking rule fixtures *)

let minterms n = List.init n Minterm.of_int

let test_lock_resilience () =
  (* 600 locked minterms under a 16-bit key: Eqn. 1 predicts ~700
     iterations, far under a 10^3 target *)
  let config = Config.make ~scheme:Scheme.Sfll_rem ~locks:[ (0, minterms 600) ] in
  let diags =
    Locking_rules.check_config ~min_lambda:1000.0 ~key_bits:16 ~input_bits:16 config
  in
  check_fires "over-corrupting config" Locking_rules.rule_resilience diags;
  (* two minterms under the scheme's own key length is comfortably
     resilient *)
  let config = Config.make ~scheme:Scheme.Sfll_rem ~locks:[ (0, minterms 2) ] in
  Alcotest.(check (list string)) "resilient config is silent" []
    (rules_of (Locking_rules.check_config ~min_lambda:1000.0 ~input_bits:16 config))

let test_lock_overlap () =
  let shared = Minterm.pack 3 7 in
  let config =
    Config.make ~scheme:Scheme.Sfll_rem
      ~locks:[ (0, [ shared; Minterm.pack 1 1 ]); (2, [ shared; Minterm.pack 2 2 ]) ]
  in
  let diags = Locking_rules.check_config ~input_bits:16 config in
  check_fires "shared minterm" Locking_rules.rule_overlap diags;
  Alcotest.(check bool) "overlap is only a warning" true
    (List.for_all (fun d -> d.Diagnostic.severity = Diagnostic.Warning) diags)

let test_lock_candidates () =
  let candidates = [| Minterm.pack 1 1; Minterm.pack 2 2 |] in
  let config =
    Config.make ~scheme:Scheme.Sfll_rem ~locks:[ (0, [ Minterm.pack 9 9 ]) ]
  in
  let diags = Locking_rules.check_config ~candidates ~input_bits:16 config in
  check_fires "off-list minterm" Locking_rules.rule_candidates diags;
  let config = Config.make ~scheme:Scheme.Sfll_rem ~locks:[ (0, [ candidates.(0) ]) ] in
  Alcotest.(check (list string)) "on-list minterm is silent" []
    (rules_of (Locking_rules.check_config ~candidates ~input_bits:16 config))

(* ---------------------------------------------------- report + reporters *)

let test_report_order_and_counts () =
  let report =
    Report.make ~subject:"fixture"
      [
        Diagnostic.warning ~rule:"Z-WARN" Diagnostic.Whole_design "later";
        Diagnostic.error ~rule:"A-ERR" (Diagnostic.Gate 1) "first";
      ]
  in
  Alcotest.(check int) "errors" 1 (Report.error_count report);
  Alcotest.(check int) "warnings" 1 (Report.warning_count report);
  Alcotest.(check bool) "not clean" false (Report.is_clean report);
  (match Report.diagnostics report with
   | [ first; second ] ->
     Alcotest.(check string) "errors sort first" "A-ERR" first.Diagnostic.rule;
     Alcotest.(check string) "warnings after" "Z-WARN" second.Diagnostic.rule
   | _ -> Alcotest.fail "expected two diagnostics")

let test_json_reporter () =
  let report =
    Report.make ~subject:{|quo"ted|}
      [
        Diagnostic.error ~rule:"NET-CYCLE" (Diagnostic.Gate 3) ~hint:"fix\nit"
          "bad \"net\"";
      ]
  in
  let json = Report.to_json report in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("json contains " ^ fragment) true
        (let n = String.length json and m = String.length fragment in
         let rec go i = i + m <= n && (String.sub json i m = fragment || go (i + 1)) in
         go 0))
    [
      {|"subject":"quo\"ted"|};
      {|"errors":1|};
      {|"rule":"NET-CYCLE"|};
      {|{"kind":"gate","index":3}|};
      {|"hint":"fix\nit"|};
      {|"message":"bad \"net\""|};
    ];
  Alcotest.(check bool) "array reporter wraps" true
    (String.length (Report.json_of_reports [ report; report ]) > 2 * String.length json)

let test_assert_clean_raises () =
  let dirty =
    Report.make ~subject:"dirty"
      [ Diagnostic.error ~rule:"NET-CYCLE" Diagnostic.Whole_design "boom" ]
  in
  (match Lint.assert_clean dirty with
   | exception Lint.Lint_error r ->
     Alcotest.(check string) "carries the report" "dirty" (Report.subject r)
   | () -> Alcotest.fail "expected Lint_error");
  Lint.assert_clean (Report.make ~subject:"ok" [])

(* -------------------------------------------- end-to-end cleanliness *)

(* Every benchmark, co-designed and bound, must pass every rule. *)
let test_benchmarks_lint_clean () =
  List.iter
    (fun b ->
      let schedule = Rb_workload.Benchmark.schedule b in
      let trace = Rb_workload.Benchmark.trace ~length:64 b in
      let allocation = Allocation.for_schedule schedule in
      let k = Rb_sim.Kmatrix.build trace in
      List.iter
        (fun kind ->
          let fus = Allocation.fu_ids allocation kind in
          let candidates = Array.of_list (Rb_sim.Kmatrix.top_minterms ~kind k ~n:10) in
          if fus <> [] && Array.length candidates > 0 then begin
            let spec =
              {
                Rb_core.Codesign.scheme = Scheme.Sfll_rem;
                locked_fus = List.filteri (fun i _ -> i < min 2 (List.length fus)) fus;
                minterms_per_fu = min 2 (Array.length candidates);
                candidates;
              }
            in
            let sol = Rb_core.Codesign.heuristic k schedule allocation spec in
            let binding = sol.Rb_core.Codesign.binding in
            let report =
              Lint.design ~candidates ~config:sol.Rb_core.Codesign.config
                ~registers:(Rb_hls.Registers.count binding)
                ~transfers:(Hls_rules.transfer_count binding)
                ~subject:(b.Rb_workload.Benchmark.name ^ "/" ^ Dfg.kind_label kind)
                schedule allocation ~fu_of_op:(Binding.fu_array binding)
            in
            Alcotest.(check bool)
              (Report.subject report ^ " lint-clean")
              true (Report.is_clean report)
          end)
        [ Dfg.Add; Dfg.Mul ])
    (Rb_workload.Benchmark.all ())

(* Property: every lock construction, at any width/seed/strength, emits
   a gate-level-clean circuit. *)
let qcheck_lock_constructions_lint_clean =
  QCheck2.Test.make ~name:"lock constructions are lint-clean" ~count:60
    QCheck2.Gen.(triple (int_range 2 5) (int_range 0 999) (int_range 0 3))
    (fun (width, seed, which) ->
      let rng = Rng.create seed in
      let base = Circuits.adder ~width in
      let locked =
        match which with
        | 0 -> Lock.xor_random ~rng ~key_bits:(1 + (seed mod 4)) base
        | 1 ->
          let space = 1 lsl (2 * width) in
          Lock.point_function
            ~minterms:[ Rng.int rng space; Rng.int rng space ]
            base
        | 2 -> Lock.anti_sat ~rng base
        | _ -> Lock.permutation_network ~rng ~layers:(1 + (seed mod 4)) base
      in
      Report.is_clean (Lint.locked locked))

let () =
  Alcotest.run "rb_lint"
    [
      ( "netlist rules",
        [
          Alcotest.test_case "NET-CYCLE" `Quick test_net_cycle;
          Alcotest.test_case "NET-DEAD" `Quick test_net_dead;
          Alcotest.test_case "NET-KEY-MUTE" `Quick test_net_key_mute;
          Alcotest.test_case "NET-KEY-STRIP" `Quick test_net_key_strip;
          Alcotest.test_case "NET-CONST-OUT" `Quick test_net_const_out;
          Alcotest.test_case "NET-KEY-SKEW" `Quick test_net_key_skew;
          Alcotest.test_case "clean adder" `Quick test_clean_adder_has_no_diags;
        ] );
      ( "hls rules",
        [
          Alcotest.test_case "HLS-PREC" `Quick test_hls_precedence;
          Alcotest.test_case "HLS-OVERSUB" `Quick test_hls_oversubscribed;
          Alcotest.test_case "HLS-KIND" `Quick test_hls_kind;
          Alcotest.test_case "HLS-COST" `Quick test_hls_cost;
        ] );
      ( "locking rules",
        [
          Alcotest.test_case "LOCK-RESIL" `Quick test_lock_resilience;
          Alcotest.test_case "LOCK-OVERLAP" `Quick test_lock_overlap;
          Alcotest.test_case "LOCK-CAND" `Quick test_lock_candidates;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "order and counts" `Quick test_report_order_and_counts;
          Alcotest.test_case "json" `Quick test_json_reporter;
          Alcotest.test_case "assert_clean" `Quick test_assert_clean_raises;
        ] );
      ( "end to end",
        Alcotest.test_case "benchmarks lint-clean" `Slow test_benchmarks_lint_clean
        :: List.map QCheck_alcotest.to_alcotest
             [ qcheck_lock_constructions_lint_clean ] );
    ]
