module Netlist = Rb_netlist.Netlist
module Analysis = Rb_netlist.Analysis
module Circuits = Rb_netlist.Circuits
module Lock = Rb_netlist.Lock
module Engine = Rb_analysis.Engine
module Ternary = Rb_analysis.Ternary
module Probability = Rb_analysis.Probability
module Keydep = Rb_analysis.Keydep
module Cycles = Rb_analysis.Cycles
module Attacks = Rb_analysis.Attacks
module Report = Rb_analysis.Report
module Limits = Rb_util.Limits
module Faults = Rb_util.Faults
module Json = Rb_util.Json
module Rng = Rb_util.Rng
module B = Netlist.Builder

(* Reference per-net evaluator for well-formed netlists: Netlist.eval
   only exposes outputs, but the analyses make claims about every net. *)
let eval_nets c ~inputs ~keys =
  let n_inputs = Netlist.n_inputs c and n_keys = Netlist.n_keys c in
  let vals = Array.make (Netlist.n_nets c) false in
  Array.blit inputs 0 vals 0 n_inputs;
  Array.blit keys 0 vals n_inputs n_keys;
  Array.iteri
    (fun i g ->
      let v = Array.get vals in
      let r =
        match g with
        | Netlist.And (a, b) -> v a && v b
        | Netlist.Or (a, b) -> v a || v b
        | Netlist.Xor (a, b) -> v a <> v b
        | Netlist.Nand (a, b) -> not (v a && v b)
        | Netlist.Nor (a, b) -> not (v a || v b)
        | Netlist.Xnor (a, b) -> v a = v b
        | Netlist.Not a -> not (v a)
        | Netlist.Buf a -> v a
        | Netlist.Mux (s, a, b) -> if v s then v b else v a
        | Netlist.Const k -> k
      in
      vals.(n_inputs + n_keys + i) <- r)
    (Netlist.gates c);
  vals

let bits_of n width = Array.init width (fun i -> (n lsr i) land 1 = 1)

(* Random well-formed circuit over the full gate alphabet. *)
let random_circuit rng ~n_inputs ~n_keys ~n_gates =
  let b = B.create ~n_inputs ~n_keys in
  let nets = ref [] in
  for i = 0 to n_inputs - 1 do
    nets := B.input b i :: !nets
  done;
  for k = 0 to n_keys - 1 do
    nets := B.key b k :: !nets
  done;
  let pick () = List.nth !nets (Rng.int rng (List.length !nets)) in
  for _ = 1 to n_gates do
    let a = pick () and c = pick () and s = pick () in
    let g =
      match Rng.int rng 10 with
      | 0 -> Netlist.And (a, c)
      | 1 -> Netlist.Or (a, c)
      | 2 -> Netlist.Xor (a, c)
      | 3 -> Netlist.Nand (a, c)
      | 4 -> Netlist.Nor (a, c)
      | 5 -> Netlist.Xnor (a, c)
      | 6 -> Netlist.Not a
      | 7 -> Netlist.Buf a
      | 8 -> Netlist.Mux (s, a, c)
      | _ -> Netlist.Const (Rng.bool rng)
    in
    nets := B.gate b g :: !nets
  done;
  for _ = 1 to 1 + Rng.int rng 3 do
    B.output b (pick ())
  done;
  B.finish b

(* Random possibly-cyclic netlist: operands are drawn from the whole
   net range (forward references included) and occasionally outside it. *)
let random_unchecked rng ~n_inputs ~n_keys ~n_gates =
  let n_nets = n_inputs + n_keys + n_gates in
  let operand () =
    match Rng.int rng 12 with
    | 0 -> -1 - Rng.int rng 3
    | 1 -> n_nets + Rng.int rng 3
    | _ -> Rng.int rng n_nets
  in
  let gates =
    Array.init n_gates (fun _ ->
        let a = operand () and c = operand () and s = operand () in
        match Rng.int rng 10 with
        | 0 -> Netlist.And (a, c)
        | 1 -> Netlist.Or (a, c)
        | 2 -> Netlist.Xor (a, c)
        | 3 -> Netlist.Nand (a, c)
        | 4 -> Netlist.Nor (a, c)
        | 5 -> Netlist.Xnor (a, c)
        | 6 -> Netlist.Not a
        | 7 -> Netlist.Buf a
        | 8 -> Netlist.Mux (s, a, c)
        | _ -> Netlist.Const (Rng.bool rng))
  in
  let outputs = Array.init (1 + Rng.int rng 3) (fun _ -> Rng.int rng n_nets) in
  Netlist.unchecked ~n_inputs ~n_keys ~gates ~outputs

(* ------------------------------------------------------------- engine *)

let test_output_cone () =
  let b = B.create ~n_inputs:2 ~n_keys:0 in
  let x = B.input b 0 and y = B.input b 1 in
  let live = B.and_ b x y in
  let dead = B.or_ b x y in
  B.output b live;
  let c = B.finish b in
  let cone = Engine.output_cone c in
  Alcotest.(check bool) "live gate in cone" true cone.(live);
  Alcotest.(check bool) "dead gate out of cone" false cone.(dead);
  Alcotest.(check bool) "inputs in cone" true (cone.(x) && cone.(y));
  (* cycles and out-of-range operands terminate *)
  let cyc =
    Netlist.unchecked ~n_inputs:1 ~n_keys:0
      ~gates:[| Netlist.And (2, 0); Netlist.Or (1, 9) |]
      ~outputs:[| 2 |]
  in
  let cone = Engine.output_cone cyc in
  Alcotest.(check bool) "both cycle nets in cone" true (cone.(1) && cone.(2))

let test_engine_budget_and_cancel () =
  let c = Circuits.adder ~width:3 in
  let free = Ternary.run ~limit:Limits.none c in
  Alcotest.(check bool) "unlimited run converges" true free.Engine.converged;
  (* a zero pass budget stops deterministically under Conflicts *)
  let r = Probability.run ~max_passes:0 c in
  Alcotest.(check bool) "budget stop" true
    (r.Engine.stopped = Some Limits.Conflicts);
  Alcotest.(check bool) "budget run not converged" false r.Engine.converged;
  Alcotest.(check int) "budget: no passes" 0 r.Engine.passes;
  (* a raised cancel flag stops before the first sweep *)
  let flag = Limits.new_cancel () in
  Limits.cancel flag;
  let r = Ternary.run ~limit:(Limits.make ~cancel:flag ()) c in
  Alcotest.(check bool) "cancelled" true
    (r.Engine.stopped = Some Limits.Cancelled);
  Alcotest.(check bool) "cancelled run not converged" false r.Engine.converged;
  Alcotest.(check int) "cancelled: no passes" 0 r.Engine.passes

(* A run that reports convergence really is at a fixpoint: replaying
   the transfer function over the final values changes nothing. *)
let ternary_is_fixpoint c (r : Ternary.v Engine.outcome) =
  let gates = Netlist.gates c in
  let n_nets = Netlist.n_nets c in
  let base = n_nets - Array.length gates in
  let read n =
    if n < 0 || n >= n_nets then Ternary.Domain.bogus else r.Engine.values.(n)
  in
  let ok = ref true in
  Array.iteri
    (fun i g ->
      let driven = base + i in
      let old = r.Engine.values.(driven) in
      let fresh = Ternary.Domain.transfer ~driven g ~read in
      if not (Ternary.Domain.equal old (Ternary.Domain.join old fresh)) then
        ok := false)
    gates;
  !ok

let qcheck_ternary_fixpoint =
  QCheck2.Test.make ~name:"ternary converges to a true fixpoint" ~count:100
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c =
        random_unchecked rng ~n_inputs:(1 + Rng.int rng 4)
          ~n_keys:(Rng.int rng 3) ~n_gates:(1 + Rng.int rng 30)
      in
      let r = Ternary.run c in
      if not r.Engine.converged then r.Engine.stopped <> None
      else
        ternary_is_fixpoint c r
        && r.Engine.passes <= Netlist.n_gates c + 2
        (* determinism: a second run lands on the same values *)
        && (Ternary.run c).Engine.values = r.Engine.values)

let qcheck_unchecked_termination =
  QCheck2.Test.make ~name:"all analyses terminate on cyclic netlists" ~count:100
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c =
        random_unchecked rng ~n_inputs:(1 + Rng.int rng 4)
          ~n_keys:(Rng.int rng 4) ~n_gates:(1 + Rng.int rng 40)
      in
      let n = Netlist.n_nets c in
      let t = Ternary.run c in
      let k = Keydep.run c in
      let p = Probability.run c in
      let (_ : Cycles.t) = Cycles.find c in
      let (_ : bool array) = Engine.output_cone c in
      (* termination itself is the property; every run must either
         converge or carry an explicit stop reason *)
      Array.length t.Engine.values = n
      && Array.length k.Engine.values = n
      && Array.length p.Engine.values = n
      && List.for_all
           (fun (o : bool * Limits.reason option) ->
             fst o || snd o <> None)
           [
             (t.Engine.converged, t.Engine.stopped);
             (k.Engine.converged, k.Engine.stopped);
             (p.Engine.converged, p.Engine.stopped);
           ])

(* Soundness: every net the analysis calls Known agrees with exhaustive
   simulation under every key assignment consistent with the pins. *)
let qcheck_ternary_agrees_with_simulation =
  QCheck2.Test.make ~name:"constant prop agrees with exhaustive simulation"
    ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n_inputs = 1 + Rng.int rng 5 in
      let n_keys = Rng.int rng 4 in
      let c =
        random_circuit rng ~n_inputs ~n_keys ~n_gates:(1 + Rng.int rng 25)
      in
      let key =
        Array.init n_keys (fun _ ->
            match Rng.int rng 3 with
            | 0 -> Analysis.Known (Rng.bool rng)
            | _ -> Analysis.Unknown)
      in
      let consts = Ternary.constants ~key c in
      let ok = ref true in
      for i = 0 to (1 lsl n_inputs) - 1 do
        for kv = 0 to (1 lsl n_keys) - 1 do
          let keys = bits_of kv n_keys in
          let consistent = ref true in
          Array.iteri
            (fun b pin ->
              match pin with
              | Analysis.Known p -> if p <> keys.(b) then consistent := false
              | Analysis.Unknown -> ())
            key;
          if !consistent then begin
            let vals = eval_nets c ~inputs:(bits_of i n_inputs) ~keys in
            Array.iteri
              (fun net v ->
                match consts.(net) with
                | Analysis.Known p -> if p <> v then ok := false
                | Analysis.Unknown -> ())
              vals
          end
        done
      done;
      !ok)

(* ------------------------------------------------------------ ternary *)

let test_ternary_identities () =
  let b = B.create ~n_inputs:2 ~n_keys:1 in
  let x = B.input b 0 and k = B.key b 0 in
  let xx = B.xor_ b x x in
  (* Known false *)
  let xnx = B.xnor_ b k k in
  (* Known true *)
  let absorbed = B.and_ b xx (B.input b 1) in
  (* false AND y *)
  let m = B.mux b ~sel:xnx ~a:x ~b:k in
  (* select true picks the free key *)
  B.output b absorbed;
  B.output b m;
  let c = B.finish b in
  let consts = Ternary.constants c in
  Alcotest.(check bool) "x xor x = 0" true (consts.(xx) = Analysis.Known false);
  Alcotest.(check bool) "k xnor k = 1" true (consts.(xnx) = Analysis.Known true);
  Alcotest.(check bool) "absorption" true
    (consts.(absorbed) = Analysis.Known false);
  Alcotest.(check bool) "mux with known select stays free" true
    (consts.(m) = Analysis.Unknown)

let test_ternary_partial_key () =
  let b = B.create ~n_inputs:1 ~n_keys:2 in
  let k0 = B.key b 0 and k1 = B.key b 1 in
  let kk = B.xor_ b k0 k1 in
  B.output b (B.xor_ b (B.input b 0) kk);
  let c = B.finish b in
  let free = Ternary.constants c in
  Alcotest.(check bool) "k0 xor k1 free" true (free.(kk) = Analysis.Unknown);
  let pinned =
    Ternary.constants ~key:[| Analysis.Known true; Analysis.Known true |] c
  in
  Alcotest.(check bool) "pinned: k0 xor k1 = 0" true
    (pinned.(kk) = Analysis.Known false);
  let half = Ternary.constants ~key:[| Analysis.Known true; Analysis.Unknown |] c in
  Alcotest.(check bool) "half-pinned stays free" true
    (half.(kk) = Analysis.Unknown)

let test_live_nets_mux_select () =
  let b = B.create ~n_inputs:2 ~n_keys:0 in
  let x = B.input b 0 and y = B.input b 1 in
  let sel = B.const b true in
  let m = B.mux b ~sel ~a:x ~b:y in
  B.output b m;
  let c = B.finish b in
  let live = Ternary.live_nets c in
  Alcotest.(check bool) "selected branch live" true live.(y);
  Alcotest.(check bool) "unselected branch dead" false live.(x)

(* -------------------------------------------------------- probability *)

let test_probability_fixtures () =
  let b = B.create ~n_inputs:2 ~n_keys:5 in
  let x = B.input b 0 in
  let bal = B.xor_ b x (B.key b 0) in
  let chain = B.and_reduce b (List.init 5 (B.key b)) in
  let zero = B.xor_ b x x in
  B.output b bal;
  B.output b chain;
  B.output b zero;
  let c = B.finish b in
  let p = Probability.estimate c in
  Alcotest.(check (float 1e-9)) "xor balanced" 0.5 p.(bal);
  Alcotest.(check (float 1e-9)) "5-key AND chain" (1.0 /. 32.0) p.(chain);
  Alcotest.(check (float 1e-9)) "x xor x" 0.0 p.(zero);
  let skewed = Probability.skewed_key_gates c in
  Alcotest.(check bool) "AND reduction ends skewed" true (skewed <> []);
  Alcotest.(check bool) "all skewed are low" true
    (List.for_all (fun (_, p) -> p < 0.05) skewed)

(* Exact on trees: every net has fan-out at most one, so the
   independence assumption holds and the estimate must match the true
   probability from exhaustive enumeration. *)
let qcheck_probability_exact_on_trees =
  QCheck2.Test.make ~name:"probability exact on fanout-free circuits" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n_inputs = 2 + Rng.int rng 7 in
      let b = B.create ~n_inputs ~n_keys:0 in
      (* combine until one net is left; each net used exactly once *)
      let nets = ref (List.init n_inputs (B.input b)) in
      let take () =
        let i = Rng.int rng (List.length !nets) in
        let n = List.nth !nets i in
        nets := List.filteri (fun j _ -> j <> i) !nets;
        n
      in
      while List.length !nets > 1 do
        let x = take () and y = take () in
        let g =
          match Rng.int rng 7 with
          | 0 -> Netlist.And (x, y)
          | 1 -> Netlist.Or (x, y)
          | 2 -> Netlist.Xor (x, y)
          | 3 -> Netlist.Nand (x, y)
          | 4 -> Netlist.Nor (x, y)
          | 5 -> Netlist.Xnor (x, y)
          | _ -> Netlist.Not x
        in
        (match g with Netlist.Not _ -> nets := y :: !nets | _ -> ());
        nets := B.gate b g :: !nets
      done;
      let root = List.hd !nets in
      B.output b root;
      let c = B.finish b in
      let est = (Probability.estimate c).(root) in
      let count = ref 0 in
      for i = 0 to (1 lsl n_inputs) - 1 do
        let vals = eval_nets c ~inputs:(bits_of i n_inputs) ~keys:[||] in
        if vals.(root) then incr count
      done;
      let exact = float_of_int !count /. float_of_int (1 lsl n_inputs) in
      Float.abs (est -. exact) < 1e-6)

let test_probability_cyclic_terminates () =
  (* inverter loop: no boolean fixpoint exists; the damped estimate
     must still settle within the pass budget *)
  let c =
    Netlist.unchecked ~n_inputs:1 ~n_keys:0
      ~gates:[| Netlist.Not 2; Netlist.Not 1 |]
      ~outputs:[| 1 |]
  in
  let r = Probability.run c in
  Alcotest.(check bool) "converged" true r.Engine.converged;
  Alcotest.(check (float 1e-3)) "settles at 1/2" 0.5 r.Engine.values.(1)

(* ------------------------------------------------------------- keydep *)

let test_keydep_rll () =
  let rng = Rng.create 7 in
  let locked = Lock.xor_random ~rng ~key_bits:4 (Circuits.adder ~width:4) in
  let summaries = Keydep.summarize locked.Lock.circuit in
  Alcotest.(check int) "one summary per key" 4 (List.length summaries);
  List.iteri
    (fun i (s : Keydep.summary) ->
      Alcotest.(check int) "ascending key bits" i s.Keydep.key_bit;
      Alcotest.(check bool)
        (Printf.sprintf "key %d observable" i)
        true
        (s.Keydep.outputs_reached <> [] && s.Keydep.min_output_depth <> None);
      Alcotest.(check bool)
        (Printf.sprintf "key %d depth positive" i)
        true
        (match s.Keydep.min_output_depth with Some d -> d >= 1 | None -> false);
      Alcotest.(check bool)
        (Printf.sprintf "key %d cone nonempty" i)
        true (s.Keydep.cone_gates >= 1))
    summaries

let test_keydep_mute_key () =
  let b = B.create ~n_inputs:1 ~n_keys:1 in
  B.output b (B.not_ b (B.input b 0));
  let c = B.finish b in
  match Keydep.summarize c with
  | [ s ] ->
      Alcotest.(check bool) "mute: no outputs" true
        (s.Keydep.outputs_reached = []);
      Alcotest.(check bool) "mute: no depth" true
        (s.Keydep.min_output_depth = None);
      Alcotest.(check int) "mute: empty cone" 0 s.Keydep.cone_gates
  | l -> Alcotest.failf "expected 1 summary, got %d" (List.length l)

(* ------------------------------------------------------------- cycles *)

let test_cycles () =
  Alcotest.(check int) "builder circuits acyclic" 0
    (Cycles.count (Cycles.find (Circuits.multiplier ~width:3)));
  (* two gates reading each other (1 input + 1 key, so base = 2) *)
  let c =
    Netlist.unchecked ~n_inputs:1 ~n_keys:1
      ~gates:[| Netlist.And (3, 0); Netlist.Or (2, 1) |]
      ~outputs:[| 3 |]
  in
  let t = Cycles.find c in
  Alcotest.(check int) "one SCC" 1 (Cycles.count t);
  Alcotest.(check (list (list int))) "SCC members" [ [ 2; 3 ] ] t.Cycles.sccs;
  Alcotest.(check bool) "cyclic flags" true
    (t.Cycles.cyclic.(2) && t.Cycles.cyclic.(3));
  Alcotest.(check bool) "inputs not cyclic" false t.Cycles.cyclic.(0);
  let c =
    Netlist.unchecked ~n_inputs:1 ~n_keys:0 ~gates:[| Netlist.Buf 1 |]
      ~outputs:[| 1 |]
  in
  Alcotest.(check int) "self loop" 1 (Cycles.count (Cycles.find c))

(* ------------------------------------------------------------ attacks *)

let test_registry () =
  Alcotest.(check (list string)) "registered attacks"
    [ "const-prop"; "removal" ] (Attacks.names ());
  (match Attacks.require "const-prop" with
  | (module A : Attacks.S) ->
      Alcotest.(check string) "name" "const-prop" A.name);
  (match Attacks.require "no-such-attack" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument");
  match
    Attacks.register
      (module struct
        let name = "removal"
        let description = "dup"
        let run ?limit:_ _ = assert false
      end : Attacks.S)
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate registration must raise"

let test_const_prop_recovers_rll () =
  let rng = Rng.create 99 in
  let locked = Lock.xor_random ~rng ~key_bits:8 (Circuits.adder ~width:4) in
  let out = Attacks.const_prop locked.Lock.circuit in
  Alcotest.(check bool) "not stopped" true (out.Attacks.stopped = None);
  (* acceptance floor: >= 25% of naive-XOR key bits recovered; the
     pass-through rule in fact gets all of them, with correct values *)
  Alcotest.(check bool) "at least 25% recovered" true
    (4 * List.length out.Attacks.inferred >= 8);
  Alcotest.(check int) "all 8 recovered" 8 (List.length out.Attacks.inferred);
  List.iter
    (fun (i : Attacks.inference) ->
      Alcotest.(check bool)
        (Printf.sprintf "bit %d correct" i.Attacks.bit)
        true
        (locked.Lock.correct_key.(i.Attacks.bit) = i.Attacks.value);
      Alcotest.(check string) "via pass-through" "pass-through" i.Attacks.via)
    out.Attacks.inferred

let test_const_prop_abstains_on_sat_hard_schemes () =
  let base = Circuits.adder ~width:4 in
  let cases =
    [
      ("pf", (Lock.point_function ~minterms:[ 0x42; 0x17 ] base).Lock.circuit);
      ("anti-sat", (Lock.anti_sat ~rng:(Rng.create 3) base).Lock.circuit);
      ( "permnet",
        (Lock.permutation_network ~rng:(Rng.create 3) ~layers:3 base)
          .Lock.circuit );
    ]
  in
  List.iter
    (fun (label, c) ->
      let out = Attacks.const_prop c in
      Alcotest.(check int)
        (label ^ ": nothing inferred")
        0
        (List.length out.Attacks.inferred))
    cases

let test_const_prop_mute_and_strip () =
  (* key 0 unconnected (mute); key 1 cancelled by k xor k (strip) *)
  let b = B.create ~n_inputs:1 ~n_keys:2 in
  let x = B.input b 0 in
  let k1 = B.key b 1 in
  let kk = B.xor_ b k1 k1 in
  B.output b (B.or_ b x kk);
  let c = B.finish b in
  let out = Attacks.const_prop c in
  let via bit =
    List.find_map
      (fun (i : Attacks.inference) ->
        if i.Attacks.bit = bit then Some i.Attacks.via else None)
      out.Attacks.inferred
  in
  Alcotest.(check (option string)) "mute key" (Some "mute") (via 0);
  Alcotest.(check (option string)) "stripped key" (Some "strip") (via 1)

let test_removal_preserves_function () =
  let rng = Rng.create 2024 in
  let locked = Lock.xor_random ~rng ~key_bits:6 (Circuits.adder ~width:3) in
  let c = locked.Lock.circuit in
  let out = Attacks.removal c in
  let simplified =
    match out.Attacks.simplified with
    | Some s -> s
    | None -> Alcotest.fail "removal must rebuild a netlist"
  in
  Alcotest.(check bool) "gates removed" true (out.Attacks.gates_removed >= 6);
  Alcotest.(check int) "keys stripped" 6 out.Attacks.keys_stripped;
  Alcotest.(check int) "input width preserved" (Netlist.n_inputs c)
    (Netlist.n_inputs simplified);
  Alcotest.(check int) "key width preserved" (Netlist.n_keys c)
    (Netlist.n_keys simplified);
  let correct = locked.Lock.correct_key in
  let zeros = Array.map (fun _ -> false) correct in
  for i = 0 to (1 lsl Netlist.n_inputs c) - 1 do
    let inputs = bits_of i (Netlist.n_inputs c) in
    let reference = Netlist.eval c ~inputs ~keys:correct in
    Alcotest.(check (array bool))
      (Printf.sprintf "input %d preserved" i)
      reference
      (Netlist.eval simplified ~inputs ~keys:correct);
    (* the stripped circuit no longer listens to the key at all *)
    Alcotest.(check (array bool))
      (Printf.sprintf "input %d key-independent" i)
      reference
      (Netlist.eval simplified ~inputs ~keys:zeros)
  done

let test_removal_refuses_ill_formed () =
  let c =
    Netlist.unchecked ~n_inputs:1 ~n_keys:1
      ~gates:[| Netlist.And (3, 0); Netlist.Or (2, 1) |]
      ~outputs:[| 3 |]
  in
  let rebuilt, removed = Attacks.strip c ~key:[ (0, true) ] in
  Alcotest.(check int) "no gates removed" 0 removed;
  Alcotest.(check int) "same gate count" (Netlist.n_gates c)
    (Netlist.n_gates rebuilt)

(* --------------------------------------------- limits & fault injection *)

let test_attack_degrades_under_cancel () =
  let flag = Limits.new_cancel () in
  Limits.cancel flag;
  let limit = Limits.make ~cancel:flag () in
  let rng = Rng.create 5 in
  let locked = Lock.xor_random ~rng ~key_bits:4 (Circuits.adder ~width:3) in
  let out = Attacks.run ~limit "const-prop" locked.Lock.circuit in
  Alcotest.(check bool) "stopped with reason" true
    (out.Attacks.stopped = Some Limits.Cancelled);
  Alcotest.(check int) "no inferences claimed" 0
    (List.length out.Attacks.inferred)

let test_fault_injection_degrades () =
  let rng = Rng.create 5 in
  let locked = Lock.xor_random ~rng ~key_bits:4 (Circuits.adder ~width:3) in
  let c = locked.Lock.circuit in
  let fire_always sites = Some { Faults.seed = 11; rate_per_mille = 1000; sites } in
  Faults.with_config (fire_always [ "analysis/fixpoint" ]) (fun () ->
      let r = Ternary.run c in
      Alcotest.(check bool) "fixpoint stops as budget" true
        (r.Engine.stopped = Some Limits.Conflicts);
      Alcotest.(check bool) "not converged" false r.Engine.converged;
      let out = Attacks.run "removal" c in
      Alcotest.(check bool) "attack reports the stop" true
        (out.Attacks.stopped = Some Limits.Conflicts);
      Alcotest.(check int) "no inferences under faults" 0
        (List.length out.Attacks.inferred);
      Alcotest.(check bool) "no rebuilt netlist" true
        (out.Attacks.simplified = None);
      let report = Report.analyze ~subject:"faulted" c in
      Alcotest.(check bool) "report carries the stop" true
        (report.Report.stopped = Some Limits.Conflicts);
      Alcotest.(check int) "report claims nothing" 0
        (List.length report.Report.inferable));
  (* a config aimed at other sites leaves the analyses alone *)
  Faults.with_config (fire_always [ "pool/task" ]) (fun () ->
      let r = Ternary.run c in
      Alcotest.(check bool) "other sites do not fire here" true
        r.Engine.converged)

(* ------------------------------------------------------------- report *)

let test_report_rll_vs_sat_hard () =
  let rng = Rng.create 17 in
  let base = Circuits.adder ~width:4 in
  let rll = Lock.xor_random ~rng ~key_bits:4 base in
  let r = Report.analyze ~subject:"rll" rll.Lock.circuit in
  Alcotest.(check bool) "rll leaks" true (List.length r.Report.inferable >= 1);
  Alcotest.(check (float 1e-9)) "rll resilience 0" 0.0 r.Report.static_resilience;
  Alcotest.(check bool) "rll strips" true (r.Report.gates_removed >= 4);
  let pf = Lock.point_function ~minterms:[ 0x21 ] base in
  let r = Report.analyze ~subject:"pf" pf.Lock.circuit in
  Alcotest.(check int) "pf leaks nothing" 0 (List.length r.Report.inferable);
  Alcotest.(check (float 1e-9)) "pf resilience 1" 1.0 r.Report.static_resilience;
  Alcotest.(check int) "every pf key observable" 0
    (List.length
       (List.filter (fun o -> o.Report.min_depth = None) r.Report.observability))

let test_report_json_roundtrip () =
  let rng = Rng.create 17 in
  let locked = Lock.xor_random ~rng ~key_bits:4 (Circuits.adder ~width:3) in
  let r = Report.analyze ~subject:"fixture" locked.Lock.circuit in
  let json = Report.to_json r in
  (match Json.member "schema" json with
  | Some (Json.String s) -> Alcotest.(check string) "schema" "rb-analyze/1" s
  | _ -> Alcotest.fail "schema field missing");
  (match Json.member "inferable" json with
  | Some (Json.List l) ->
      Alcotest.(check int) "inferable length"
        (List.length r.Report.inferable)
        (List.length l)
  | _ -> Alcotest.fail "inferable field missing");
  (* the rendered document parses back *)
  match Json.of_string (Json.to_string json) with
  | Ok parsed ->
      Alcotest.(check bool) "static_resilience survives round-trip" true
        (Json.member "static_resilience" parsed <> None)
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e

let () =
  Alcotest.run "rb_analysis"
    [
      ( "engine",
        [
          Alcotest.test_case "output cone" `Quick test_output_cone;
          Alcotest.test_case "budget and cancel" `Quick
            test_engine_budget_and_cancel;
        ] );
      ( "ternary",
        [
          Alcotest.test_case "identities" `Quick test_ternary_identities;
          Alcotest.test_case "partial keys" `Quick test_ternary_partial_key;
          Alcotest.test_case "mux liveness" `Quick test_live_nets_mux_select;
        ] );
      ( "probability",
        [
          Alcotest.test_case "fixtures" `Quick test_probability_fixtures;
          Alcotest.test_case "cyclic damping" `Quick
            test_probability_cyclic_terminates;
        ] );
      ( "keydep",
        [
          Alcotest.test_case "rll observability" `Quick test_keydep_rll;
          Alcotest.test_case "mute key" `Quick test_keydep_mute_key;
        ] );
      ("cycles", [ Alcotest.test_case "scc extraction" `Quick test_cycles ]);
      ( "attacks",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "const-prop recovers RLL" `Quick
            test_const_prop_recovers_rll;
          Alcotest.test_case "const-prop abstains" `Quick
            test_const_prop_abstains_on_sat_hard_schemes;
          Alcotest.test_case "mute and strip rules" `Quick
            test_const_prop_mute_and_strip;
          Alcotest.test_case "removal preserves function" `Quick
            test_removal_preserves_function;
          Alcotest.test_case "removal refuses ill-formed" `Quick
            test_removal_refuses_ill_formed;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "cancel" `Quick test_attack_degrades_under_cancel;
          Alcotest.test_case "fault injection" `Quick
            test_fault_injection_degrades;
        ] );
      ( "report",
        [
          Alcotest.test_case "rll vs sat-hard" `Quick test_report_rll_vs_sat_hard;
          Alcotest.test_case "json round-trip" `Quick test_report_json_roundtrip;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_ternary_fixpoint;
            qcheck_unchecked_termination;
            qcheck_ternary_agrees_with_simulation;
            qcheck_probability_exact_on_trees;
          ] );
    ]
