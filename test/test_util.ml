module Rng = Rb_util.Rng
module Combi = Rb_util.Combi
module Stats = Rb_util.Stats
module Table = Rb_util.Table
module Pool = Rb_util.Pool
module Json = Rb_util.Json
module Metrics = Rb_util.Metrics
module Bench_diff = Rb_util.Bench_diff

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ Rng *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_int_in () =
  let rng = Rng.create 3 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 10 14 in
    Alcotest.(check bool) "bounds" true (v >= 10 && v <= 14);
    seen.(v - 10) <- true
  done;
  Alcotest.(check bool) "all values reached" true (Array.for_all Fun.id seen)

let test_rng_copy_independent () =
  let a = Rng.create 5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "split streams differ" true !differs

let test_rng_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 13 in
  let n = 20_000 in
  let values = List.init n (fun _ -> Rng.gaussian rng ~mean:10.0 ~stdev:2.0) in
  let mean = Stats.mean values in
  let stdev = Stats.stdev values in
  Alcotest.(check bool) "mean near 10" true (abs_float (mean -. 10.0) < 0.1);
  Alcotest.(check bool) "stdev near 2" true (abs_float (stdev -. 2.0) < 0.1)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 17 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "multiset preserved" (Array.init 50 Fun.id) sorted;
  Alcotest.(check bool) "actually moved something" true (arr <> Array.init 50 Fun.id)

(* ---------------------------------------------------------------- Combi *)

let test_choose_values () =
  List.iter
    (fun (n, k, expect) -> Alcotest.(check int) (Printf.sprintf "C(%d,%d)" n k) expect (Combi.choose n k))
    [ (0, 0, 1); (5, 0, 1); (5, 5, 1); (5, 2, 10); (10, 3, 120); (10, 2, 45);
      (5, 6, 0); (5, -1, 0); (52, 5, 2598960) ]

let test_k_subsets_enumeration () =
  let subsets = Combi.k_subsets [| 1; 2; 3; 4 |] 2 in
  Alcotest.(check int) "count" 6 (List.length subsets);
  Alcotest.(check (list (array int)))
    "lexicographic order"
    [ [| 1; 2 |]; [| 1; 3 |]; [| 1; 4 |]; [| 2; 3 |]; [| 2; 4 |]; [| 3; 4 |] ]
    subsets

let test_k_subsets_edge_cases () =
  Alcotest.(check (list (array int))) "k=0" [ [||] ] (Combi.k_subsets [| 1; 2 |] 0);
  Alcotest.(check (list (array int))) "k=n" [ [| 1; 2 |] ] (Combi.k_subsets [| 1; 2 |] 2);
  Alcotest.(check (list (array int))) "k>n" [] (Combi.k_subsets [| 1; 2 |] 3)

let test_fold_k_subsets_matches_list () =
  let arr = Array.init 7 Fun.id in
  for k = 0 to 7 do
    let from_fold =
      Combi.fold_k_subsets arr k ~init:[] ~f:(fun acc s -> Array.copy s :: acc)
      |> List.rev
    in
    Alcotest.(check (list (array int)))
      (Printf.sprintf "k=%d" k) (Combi.k_subsets arr k) from_fold
  done

let test_cartesian_product () =
  Alcotest.(check (list (list int)))
    "2x2" [ [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ] ]
    (Combi.cartesian_product [ [ 1; 2 ]; [ 3; 4 ] ]);
  Alcotest.(check (list (list int))) "empty product" [ [] ] (Combi.cartesian_product []);
  Alcotest.(check (list (list int))) "empty factor" [] (Combi.cartesian_product [ [ 1 ]; [] ])

let test_fold_cartesian_matches_list () =
  let choices = [| [| 1; 2 |]; [| 3 |]; [| 4; 5; 6 |] |] in
  let tuples =
    Combi.fold_cartesian choices ~init:[] ~f:(fun acc t -> Array.to_list t :: acc)
    |> List.rev
  in
  Alcotest.(check (list (list int)))
    "same as list product"
    (Combi.cartesian_product (Array.to_list (Array.map Array.to_list choices)))
    tuples

let test_product_size_saturates () =
  Alcotest.(check int) "normal" 24 (Combi.product_size [ 2; 3; 4 ]);
  Alcotest.(check int) "zero" 0 (Combi.product_size [ 5; 0 ]);
  Alcotest.(check int) "saturation" max_int
    (Combi.product_size [ max_int / 2; 3 ])

(* ---------------------------------------------------------------- Stats *)

let test_stats_basics () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "mean empty" 0.0 (Stats.mean []);
  check_float "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  check_float "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "median even" 2.5 (Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "stdev" 1.0 (Stats.stdev [ 1.0; 2.0; 3.0 ]);
  check_float "min" 1.0 (Stats.minimum [ 2.0; 1.0; 3.0 ]);
  check_float "max" 3.0 (Stats.maximum [ 2.0; 1.0; 3.0 ])

let test_stats_ratio () =
  check_float "normal" 2.0 (Stats.ratio ~num:4.0 ~den:2.0);
  check_float "0/0" 1.0 (Stats.ratio ~num:0.0 ~den:0.0);
  Alcotest.(check bool) "x/0 infinite" true (Stats.ratio ~num:3.0 ~den:0.0 = infinity)

let test_geomean_rejects_nonpositive () =
  Alcotest.check_raises "zero" (Invalid_argument "Stats.geomean: non-positive value")
    (fun () -> ignore (Stats.geomean [ 1.0; 0.0 ]))

(* ---------------------------------------------------------------- Table *)

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Table.add_row t ~label:"row1" ~values:[ 1.5; 2.25 ];
  Table.add_text_row t ~label:"row2" ~cells:[ "x"; "y" ];
  let s = Table.render t in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) (fragment ^ " present") true
        (contains ~affix:fragment s))
    [ "demo"; "row1"; "1.50"; "2.25"; "row2"; "x" ]

let test_table_mismatched_row () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Table.add_text_row: cell count mismatch")
    (fun () -> Table.add_row t ~label:"r" ~values:[ 1.0 ])

let test_log_bar () =
  Alcotest.(check string) "1x is empty" "" (Table.log_bar ~width:30 1.0);
  Alcotest.(check int) "1000x fills" 30 (String.length (Table.log_bar ~width:30 1000.0));
  Alcotest.(check int) "10x is a third" 10 (String.length (Table.log_bar ~width:30 10.0));
  Alcotest.(check string) "sub-1 clamps" "" (Table.log_bar ~width:30 0.5)

(* ----------------------------------------------------------------- Pool *)

let test_pool_map_matches_sequential () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let arr = Array.init 100 Fun.id in
      let f x = (x * x) + 1 in
      Alcotest.(check (array int))
        "map_array" (Array.map f arr)
        (Pool.map_array pool ~f arr);
      let l = List.init 57 Fun.id in
      Alcotest.(check (list int)) "map_list" (List.map f l) (Pool.map_list pool ~f l))

let test_pool_jobs_one_inline () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs clamp" 1 (Pool.jobs pool);
      let self = Domain.self () in
      let domains =
        Pool.map_array pool ~f:(fun _ -> Domain.self ()) (Array.make 8 ())
      in
      Alcotest.(check bool) "ran in the calling domain" true
        (Array.for_all (fun d -> d = self) domains))

let test_pool_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "lowest index" (Failure "boom5") (fun () ->
          ignore
            (Pool.map_array pool
               ~f:(fun i -> if i = 5 || i = 9 then failwith (Printf.sprintf "boom%d" i) else i)
               (Array.init 12 Fun.id))))

let test_pool_usable_after_error () =
  Pool.with_pool ~jobs:3 (fun pool ->
      (try
         ignore
           (Pool.map_array pool
              ~f:(fun i -> if i = 0 then failwith "first" else i)
              (Array.init 10 Fun.id))
       with Failure _ -> ());
      Alcotest.(check (array int))
        "pool still works" (Array.init 10 succ)
        (Pool.map_array pool ~f:succ (Array.init 10 Fun.id)))

let test_pool_nested_map () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let result =
        Pool.map_list pool
          ~f:(fun i ->
            Array.fold_left ( + ) 0
              (Pool.map_array pool ~f:(fun j -> (i * 10) + j) (Array.init 4 Fun.id)))
          [ 0; 1; 2 ]
      in
      Alcotest.(check (list int)) "nested totals" [ 6; 46; 86 ] result)

let test_pool_shutdown_rejects () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "rejects map"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map_array pool ~f:Fun.id [| 1 |]))

(* ----------------------------------------------------------------- Json *)

let test_json_render () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.String "x\"y");
        ("c", Json.List [ Json.Bool true; Json.Null; Json.Float 2.5 ]);
        ("d", Json.Float 1.0);
      ]
  in
  Alcotest.(check string) "compact render"
    {|{"a":1,"b":"x\"y","c":[true,null,2.5],"d":1.0}|}
    (Json.to_string v)

let test_json_nonfinite () =
  Alcotest.(check string) "inf as string" {|"inf"|}
    (Json.to_string (Json.float_or_string infinity));
  Alcotest.(check string) "nan as string" {|"nan"|}
    (Json.to_string (Json.float_or_string nan));
  Alcotest.(check string) "finite stays numeric" "2.0"
    (Json.to_string (Json.float_or_string 2.0));
  Alcotest.(check string) "raw non-finite Float is null" "null"
    (Json.to_string (Json.Float infinity))

let test_json_escaping () =
  Alcotest.(check string) "control characters"
    "\"a\\nb\\tc\\u0001\\\\\""
    (Json.to_string (Json.String "a\nb\tc\x01\\"));
  Alcotest.(check string) "carriage return"
    "\"x\\ry\""
    (Json.to_string (Json.String "x\ry"))

(* -------------------------------------------------------------- Metrics *)

(* Metrics state is process-global; each test runs against a freshly
   reset registry with the sink enabled, and restores the default
   (disabled) sink so the rest of the suite pays nothing. *)
let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    f

let counters_of prefix snap =
  List.filter (fun (k, _) -> String.starts_with ~prefix k) snap.Metrics.counters

let test_metrics_counter_basics () =
  with_metrics (fun () ->
      let c = Metrics.counter ~scope:"tm1" "events" in
      Metrics.incr c;
      Metrics.add c 41;
      Alcotest.(check int) "handle reads back" 42 (Metrics.counter_value c);
      Alcotest.(check int) "same key, same metric" 42
        (Metrics.counter_value (Metrics.counter ~scope:"tm1" "events"));
      Alcotest.(check (list (pair string int)))
        "snapshot row" [ ("tm1/events", 42) ]
        (counters_of "tm1/" (Metrics.snapshot ())))

let test_metrics_scope_isolation () =
  with_metrics (fun () ->
      let a = Metrics.counter ~scope:"tm2a" "hits" in
      let b = Metrics.counter ~scope:"tm2b" "hits" in
      Metrics.add a 3;
      Metrics.add b 7;
      Alcotest.(check int) "scope a untouched by b" 3 (Metrics.counter_value a);
      Alcotest.(check int) "scope b untouched by a" 7 (Metrics.counter_value b))

let test_metrics_kind_clash () =
  with_metrics (fun () ->
      ignore (Metrics.counter ~scope:"tm3" "x");
      Alcotest.(check bool) "gauge under a counter key rejected" true
        (match Metrics.gauge ~scope:"tm3" "x" with
        | _ -> false
        | exception Invalid_argument _ -> true))

let test_metrics_disabled_sink_free () =
  Metrics.reset ();
  Metrics.set_enabled false;
  let c = Metrics.counter ~scope:"tm4" "events" in
  let t = Metrics.timer ~scope:"tm4" "wall" in
  Metrics.incr c;
  Metrics.add c 100;
  Metrics.observe t 1.0;
  let ran = ref false in
  ignore (Metrics.time t (fun () -> ran := true; 5));
  Metrics.with_span "tm4span" (fun () -> ());
  Alcotest.(check bool) "thunk still runs when disabled" true !ran;
  Alcotest.(check int) "counter untouched" 0 (Metrics.counter_value c);
  let snap = Metrics.snapshot () in
  Alcotest.(check (list (pair string int)))
    "snapshot shows zero" [ ("tm4/events", 0) ] (counters_of "tm4/" snap);
  let dist = List.assoc "tm4/wall" snap.Metrics.timers in
  Alcotest.(check int) "timer empty" 0 dist.Metrics.count;
  Alcotest.(check bool) "span never recorded" true
    (Metrics.span_total snap "tm4span" = None)

let test_metrics_timer_dist () =
  with_metrics (fun () ->
      let t = Metrics.timer ~scope:"tm5" "obs" in
      List.iter (Metrics.observe t) [ 0.25; 1.0; 0.5 ];
      let snap = Metrics.snapshot () in
      let d = List.assoc "tm5/obs" snap.Metrics.timers in
      Alcotest.(check int) "count" 3 d.Metrics.count;
      check_float "total" 1.75 d.Metrics.total;
      check_float "min" 0.25 d.Metrics.min;
      check_float "max" 1.0 d.Metrics.max)

let test_metrics_span_nesting () =
  with_metrics (fun () ->
      Metrics.with_span "outer" (fun () ->
          Metrics.with_span "inner" (fun () -> ());
          Metrics.with_span "inner" (fun () -> ()));
      let snap = Metrics.snapshot () in
      Alcotest.(check bool) "outer recorded" true
        (Metrics.span_total snap "outer" <> None);
      let inner = List.assoc "outer/inner" snap.Metrics.spans in
      Alcotest.(check int) "inner nests under outer, twice" 2 inner.Metrics.count;
      Alcotest.(check bool) "no top-level inner" true
        (not (List.mem_assoc "inner" snap.Metrics.spans)))

let test_metrics_counter_deltas () =
  with_metrics (fun () ->
      let c = Metrics.counter ~scope:"tm6" "n" in
      let d = Metrics.counter ~scope:"tm6" "steady" in
      Metrics.add d 5;
      let before = Metrics.snapshot () in
      Metrics.add c 17;
      let after = Metrics.snapshot () in
      Alcotest.(check (list (pair string int)))
        "only moved counters appear" [ ("tm6/n", 17) ]
        (List.filter
           (fun (k, _) -> String.starts_with ~prefix:"tm6/" k)
           (Metrics.counter_deltas ~before ~after)))

(* The PR-level contract: counters count logical work, so fanning the
   same tasks over 1 or 4 workers must produce identical values. *)
let test_metrics_jobs_determinism () =
  let run jobs =
    with_metrics (fun () ->
        let c = Metrics.counter ~scope:"tm7" "work" in
        Pool.with_pool ~jobs (fun pool ->
            ignore
              (Pool.map_array pool
                 ~f:(fun i ->
                   Metrics.add c (i mod 7);
                   i)
                 (Array.init 200 Fun.id)));
        counters_of "tm7/" (Metrics.snapshot ())
        @ counters_of "pool/" (Metrics.snapshot ()))
  in
  Alcotest.(check (list (pair string int)))
    "jobs=1 = jobs=4 counters" (run 1) (run 4)

let test_metrics_json_roundtrip () =
  with_metrics (fun () ->
      let c = Metrics.counter ~scope:"tm8" "events" in
      let g = Metrics.gauge ~scope:"tm8" "level" in
      let t = Metrics.timer ~scope:"tm8" "wall" in
      Metrics.add c 123;
      Metrics.set_gauge g 2.5;
      Metrics.observe t 0.125;
      Metrics.with_span "tm8span" (fun () -> ());
      let rendered = Json.to_string (Metrics.to_json (Metrics.snapshot ())) in
      match Json.of_string rendered with
      | Error msg -> Alcotest.fail msg
      | Ok parsed ->
        Alcotest.(check string) "reparse is stable" rendered (Json.to_string parsed);
        let counters = Option.get (Json.member "counters" parsed) in
        Alcotest.(check bool) "counter value survives" true
          (Json.member "tm8/events" counters = Some (Json.Int 123)))

(* ----------------------------------------------------------- Bench_diff *)

let bench_doc sections =
  Json.Obj
    [
      ("schema", Json.String "rb-bench/1");
      ( "sections",
        Json.List
          (List.map
             (fun (name, wall, counters) ->
               Json.Obj
                 [
                   ("section", Json.String name);
                   ("wall_s", Json.Float wall);
                   ( "counters",
                     Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters) );
                 ])
             sections) );
    ]

let diff ?wall_tol ?counter_tol a b =
  match Bench_diff.compare_docs ?wall_tol ?counter_tol ~baseline:a ~current:b () with
  | Ok r -> r
  | Error msg -> Alcotest.fail msg

let kinds r = List.map (fun v -> v.Bench_diff.kind) r.Bench_diff.violations

let test_diff_tolerance_pass () =
  let base = bench_doc [ ("fig6", 1.0, [ ("sat/solves", 10) ]) ] in
  let cur = bench_doc [ ("fig6", 1.4, [ ("sat/solves", 10) ]) ] in
  let r = diff ~wall_tol:0.5 base cur in
  Alcotest.(check int) "no violations" 0 (List.length r.Bench_diff.violations);
  Alcotest.(check int) "counters checked" 1 r.Bench_diff.counters_checked

let test_diff_wall_regression () =
  let base = bench_doc [ ("fig6", 1.0, []) ] in
  let cur = bench_doc [ ("fig6", 1.6, []) ] in
  Alcotest.(check bool) "above band fails" true
    (kinds (diff ~wall_tol:0.5 base cur) = [ Bench_diff.Wall_regression ]);
  Alcotest.(check int) "faster never fails" 0
    (List.length (diff ~wall_tol:0.0 cur base).Bench_diff.violations)

let test_diff_counter_regression () =
  let base = bench_doc [ ("fig6", 1.0, [ ("sim/op_evals", 1000) ]) ] in
  let cur = bench_doc [ ("fig6", 1.0, [ ("sim/op_evals", 1001) ]) ] in
  Alcotest.(check bool) "exact by default" true
    (kinds (diff base cur) = [ Bench_diff.Counter_drift ]);
  Alcotest.(check int) "within explicit tolerance passes" 0
    (List.length (diff ~counter_tol:0.01 base cur).Bench_diff.violations);
  (* Drift downward is a behaviour change too. *)
  Alcotest.(check bool) "downward drift also fails" true
    (kinds (diff cur base) = [ Bench_diff.Counter_drift ])

let test_diff_missing_metric () =
  let base =
    bench_doc [ ("fig6", 1.0, [ ("sat/solves", 10); ("sim/op_evals", 5) ]) ]
  in
  let cur = bench_doc [ ("fig6", 1.0, [ ("sat/solves", 10) ]) ] in
  Alcotest.(check bool) "dropped counter fails" true
    (kinds (diff base cur) = [ Bench_diff.Missing_counter ]);
  let r = diff cur base in
  Alcotest.(check int) "extra counter is not a failure" 0
    (List.length r.Bench_diff.violations);
  Alcotest.(check bool) "but is reported as an addition" true
    (r.Bench_diff.additions <> [])

let test_diff_missing_section () =
  let base = bench_doc [ ("fig6", 1.0, []); ("quality", 1.0, []) ] in
  let cur = bench_doc [ ("fig6", 1.0, []) ] in
  Alcotest.(check bool) "dropped section fails" true
    (kinds (diff base cur) = [ Bench_diff.Missing_section ])

let test_diff_malformed () =
  Alcotest.(check bool) "shape error is Error, not a crash" true
    (match
       Bench_diff.compare_docs ~baseline:(Json.Obj []) ~current:(bench_doc []) ()
     with
    | Error _ -> true
    | Ok _ -> false)

(* ------------------------------------------------------------ Json parse *)

let test_json_parse_values () =
  List.iter
    (fun (input, expect) ->
      match Json.of_string input with
      | Ok v -> Alcotest.(check string) input expect (Json.to_string v)
      | Error msg -> Alcotest.fail (input ^ ": " ^ msg))
    [
      ("null", "null");
      (" true ", "true");
      ("-42", "-42");
      ("2.5", "2.5");
      ("1e3", "1000.0");
      ({|"aA\n"|}, {|"aA\n"|});
      ({|"😀"|}, "\"\xf0\x9f\x98\x80\"");
      ({|[1, [], {"a": 2}]|}, {|[1,[],{"a":2}]|});
      ({|{"x": 1, "y": [true, null]}|}, {|{"x":1,"y":[true,null]}|});
    ]

let test_json_parse_int_vs_float () =
  Alcotest.(check bool) "integer syntax is Int" true
    (Json.of_string "7" = Ok (Json.Int 7));
  Alcotest.(check bool) "decimal syntax is Float" true
    (Json.of_string "7.0" = Ok (Json.Float 7.0));
  Alcotest.(check bool) "exponent syntax is Float" true
    (Json.of_string "7e0" = Ok (Json.Float 7.0))

let test_json_parse_errors () =
  List.iter
    (fun input ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" input) true
        (match Json.of_string input with Error _ -> true | Ok _ -> false))
    [ ""; "{"; "[1,"; {|{"a" 1}|}; "tru"; "1 2"; {|"unterminated|};
      {|"\ud83d"|}; "[1,]"; "nan" ]

(* --------------------------------------------------------------- QCheck *)

let qcheck_choose_symmetry =
  QCheck2.Test.make ~name:"choose n k = choose n (n-k)" ~count:200
    QCheck2.Gen.(pair (int_range 0 30) (int_range 0 30))
    (fun (n, k) -> Combi.choose n k = Combi.choose n (n - k) || k > n)

let qcheck_k_subsets_count =
  QCheck2.Test.make ~name:"|k_subsets| = choose n k" ~count:50
    QCheck2.Gen.(pair (int_range 0 9) (int_range 0 9))
    (fun (n, k) ->
      let arr = Array.init n Fun.id in
      List.length (Combi.k_subsets arr k) = Combi.choose n k)

let qcheck_rng_int_bounds =
  QCheck2.Test.make ~name:"Rng.int in bounds" ~count:500
    QCheck2.Gen.(pair int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let qcheck_shuffle_multiset =
  QCheck2.Test.make ~name:"shuffle preserves elements" ~count:100
    QCheck2.Gen.(pair int (list_size (int_range 0 40) small_int))
    (fun (seed, l) ->
      let rng = Rng.create seed in
      let arr = Array.of_list l in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let qcheck_pool_exactly_once =
  QCheck2.Test.make ~name:"Pool.map runs each task exactly once, in order" ~count:30
    QCheck2.Gen.(pair (int_range 1 4) (int_range 0 200))
    (fun (jobs, n) ->
      Pool.with_pool ~jobs (fun pool ->
          let counters = Array.init n (fun _ -> Atomic.make 0) in
          let results =
            Pool.map_array pool
              ~f:(fun i ->
                Atomic.incr counters.(i);
                i * 3)
              (Array.init n Fun.id)
          in
          Array.for_all (fun c -> Atomic.get c = 1) counters
          && results = Array.init n (fun i -> i * 3)))

let qcheck_pool_matches_list_map =
  QCheck2.Test.make ~name:"Pool.map_list = List.map" ~count:30
    QCheck2.Gen.(pair (int_range 1 4) (list_size (int_range 0 60) small_int))
    (fun (jobs, l) ->
      Pool.with_pool ~jobs (fun pool ->
          Pool.map_list pool ~f:(fun x -> (2 * x) - 1) l
          = List.map (fun x -> (2 * x) - 1) l))

let qcheck_pool_exception_cleanup =
  QCheck2.Test.make ~name:"failed Pool.map leaves the pool serviceable" ~count:20
    QCheck2.Gen.(pair (int_range 1 4) (int_range 1 50))
    (fun (jobs, n) ->
      Pool.with_pool ~jobs (fun pool ->
          let raised =
            try
              ignore
                (Pool.map_array pool
                   ~f:(fun i -> if i mod 3 = 0 then failwith "task" else i)
                   (Array.init n Fun.id));
              false
            with Failure msg -> msg = "task"
          in
          raised
          && Pool.map_list pool ~f:succ (List.init n Fun.id)
             = List.init n (fun i -> i + 1)))

(* Float-free Json values: Int/String/Bool/Null survive a print/parse
   cycle exactly, so the round-trip can demand structural equality. *)
let json_value_gen =
  let open QCheck2.Gen in
  let key = string_size ~gen:printable (int_range 0 6) in
  sized @@ fix (fun self n ->
      let scalar =
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun i -> Json.Int i) int;
            map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 8));
          ]
      in
      if n <= 0 then scalar
      else
        oneof
          [
            scalar;
            map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 2)));
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (int_range 0 4) (pair key (self (n / 2))));
          ])

let qcheck_json_roundtrip =
  QCheck2.Test.make ~name:"Json.of_string inverts to_string (float-free)"
    ~count:200 json_value_gen
    (fun v -> Json.of_string (Json.to_string v) = Ok v)

let qcheck_metrics_jobs_invariant =
  QCheck2.Test.make ~name:"counter totals invariant across jobs" ~count:20
    QCheck2.Gen.(pair (int_range 1 4) (int_range 0 120))
    (fun (jobs, n) ->
      let run jobs =
        with_metrics (fun () ->
            let c = Metrics.counter ~scope:"tmq" "work" in
            Pool.with_pool ~jobs (fun pool ->
                ignore
                  (Pool.map_array pool
                     ~f:(fun i ->
                       Metrics.add c (1 + (i mod 5));
                       i)
                     (Array.init n Fun.id)));
            Metrics.counter_value c)
      in
      run jobs = run 1)

let () =
  Alcotest.run "rb_util"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick
            test_pool_map_matches_sequential;
          Alcotest.test_case "jobs=1 runs inline" `Quick test_pool_jobs_one_inline;
          Alcotest.test_case "lowest-index error wins" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "usable after a failed map" `Quick
            test_pool_usable_after_error;
          Alcotest.test_case "nested map runs inline" `Quick test_pool_nested_map;
          Alcotest.test_case "shutdown rejects further maps" `Quick
            test_pool_shutdown_rejects;
        ] );
      ( "json",
        [
          Alcotest.test_case "render" `Quick test_json_render;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
          Alcotest.test_case "string escaping" `Quick test_json_escaping;
          Alcotest.test_case "parse values" `Quick test_json_parse_values;
          Alcotest.test_case "parse int vs float" `Quick
            test_json_parse_int_vs_float;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_metrics_counter_basics;
          Alcotest.test_case "scope isolation" `Quick test_metrics_scope_isolation;
          Alcotest.test_case "kind clash rejected" `Quick test_metrics_kind_clash;
          Alcotest.test_case "disabled sink is free" `Quick
            test_metrics_disabled_sink_free;
          Alcotest.test_case "timer distribution" `Quick test_metrics_timer_dist;
          Alcotest.test_case "span nesting" `Quick test_metrics_span_nesting;
          Alcotest.test_case "counter deltas" `Quick test_metrics_counter_deltas;
          Alcotest.test_case "jobs determinism" `Quick
            test_metrics_jobs_determinism;
          Alcotest.test_case "json round-trip" `Quick test_metrics_json_roundtrip;
        ] );
      ( "bench_diff",
        [
          Alcotest.test_case "within tolerance passes" `Quick
            test_diff_tolerance_pass;
          Alcotest.test_case "wall regression fails" `Quick
            test_diff_wall_regression;
          Alcotest.test_case "counter drift fails" `Quick
            test_diff_counter_regression;
          Alcotest.test_case "missing counter fails" `Quick
            test_diff_missing_metric;
          Alcotest.test_case "missing section fails" `Quick
            test_diff_missing_section;
          Alcotest.test_case "malformed doc is an error" `Quick
            test_diff_malformed;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "combi",
        [
          Alcotest.test_case "choose values" `Quick test_choose_values;
          Alcotest.test_case "k_subsets enumeration" `Quick test_k_subsets_enumeration;
          Alcotest.test_case "k_subsets edges" `Quick test_k_subsets_edge_cases;
          Alcotest.test_case "fold matches list" `Quick test_fold_k_subsets_matches_list;
          Alcotest.test_case "cartesian product" `Quick test_cartesian_product;
          Alcotest.test_case "fold_cartesian matches" `Quick test_fold_cartesian_matches_list;
          Alcotest.test_case "product_size saturates" `Quick test_product_size_saturates;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "ratio" `Quick test_stats_ratio;
          Alcotest.test_case "geomean domain" `Quick test_geomean_rejects_nonpositive;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "mismatched row" `Quick test_table_mismatched_row;
          Alcotest.test_case "log bar" `Quick test_log_bar;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_choose_symmetry; qcheck_k_subsets_count; qcheck_rng_int_bounds;
            qcheck_shuffle_multiset; qcheck_pool_exactly_once;
            qcheck_pool_matches_list_map; qcheck_pool_exception_cleanup;
            qcheck_json_roundtrip; qcheck_metrics_jobs_invariant ] );
    ]
