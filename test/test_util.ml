module Rng = Rb_util.Rng
module Combi = Rb_util.Combi
module Stats = Rb_util.Stats
module Table = Rb_util.Table
module Pool = Rb_util.Pool
module Json = Rb_util.Json
module Metrics = Rb_util.Metrics
module Bench_diff = Rb_util.Bench_diff
module Limits = Rb_util.Limits
module Faults = Rb_util.Faults
module Checkpoint = Rb_util.Checkpoint
module Veci = Rb_util.Veci

let check_float = Alcotest.(check (float 1e-9))

(* ----------------------------------------------------------------- Veci *)

let test_veci_push_get_pop () =
  let v = Veci.create () in
  Alcotest.(check int) "empty" 0 (Veci.length v);
  for i = 0 to 99 do
    Veci.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Veci.length v);
  Alcotest.(check int) "get" 49 (Veci.get v 7);
  Veci.set v 7 (-1);
  Alcotest.(check int) "set" (-1) (Veci.get v 7);
  Alcotest.(check int) "pop returns last" (99 * 99) (Veci.pop v);
  Alcotest.(check int) "pop shrinks" 99 (Veci.length v)

let test_veci_growth_past_capacity () =
  (* Push far beyond the default capacity; every element must survive
     the reallocation chain. *)
  let v = Veci.create ~cap:1 () in
  for i = 0 to 9_999 do
    Veci.push v i
  done;
  let ok = ref true in
  for i = 0 to 9_999 do
    if Veci.get v i <> i then ok := false
  done;
  Alcotest.(check bool) "contents preserved across growth" true !ok

let test_veci_truncate_clear () =
  let v = Veci.of_list [ 1; 2; 3; 4; 5 ] in
  Veci.truncate v 2;
  Alcotest.(check (list int)) "truncated" [ 1; 2 ] (Veci.to_list v);
  Veci.push v 9;
  Alcotest.(check (list int)) "push after truncate" [ 1; 2; 9 ] (Veci.to_list v);
  Veci.clear v;
  Alcotest.(check int) "cleared" 0 (Veci.length v)

let test_veci_swap_remove () =
  let v = Veci.of_list [ 10; 20; 30; 40 ] in
  Veci.swap_remove v 1;
  (* last element fills the hole; order is not preserved *)
  Alcotest.(check (list int)) "hole filled by last" [ 10; 40; 30 ] (Veci.to_list v);
  Veci.swap_remove v 2;
  Alcotest.(check (list int)) "removing last is a plain pop" [ 10; 40 ]
    (Veci.to_list v)

let test_veci_conversions_iter_exists () =
  let v = Veci.of_list [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check (array int)) "to_array" [| 3; 1; 4; 1; 5 |] (Veci.to_array v);
  let sum = ref 0 in
  Veci.iter (fun x -> sum := !sum + x) v;
  Alcotest.(check int) "iter visits all" 14 !sum;
  Alcotest.(check bool) "exists hit" true (Veci.exists (fun x -> x = 4) v);
  Alcotest.(check bool) "exists miss" false (Veci.exists (fun x -> x = 9) v);
  (* to_array is a copy: mutating it must not touch the vector *)
  (Veci.to_array v).(0) <- 99;
  Alcotest.(check int) "to_array copies" 3 (Veci.get v 0)

let test_veci_bounds_checked () =
  let v = Veci.of_list [ 1; 2 ] in
  let raises name f =
    Alcotest.check_raises name (Invalid_argument name) (fun () -> f ())
  in
  raises "Veci.get" (fun () -> ignore (Veci.get v 2));
  raises "Veci.get" (fun () -> ignore (Veci.get v (-1)));
  raises "Veci.set" (fun () -> Veci.set v 2 0);
  raises "Veci.truncate" (fun () -> Veci.truncate v 3);
  raises "Veci.swap_remove" (fun () -> Veci.swap_remove v 2);
  Veci.clear v;
  raises "Veci.pop" (fun () -> ignore (Veci.pop v));
  raises "Veci.create" (fun () -> ignore (Veci.create ~cap:(-1) ()))

(* ------------------------------------------------------------------ Rng *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_int_in () =
  let rng = Rng.create 3 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 10 14 in
    Alcotest.(check bool) "bounds" true (v >= 10 && v <= 14);
    seen.(v - 10) <- true
  done;
  Alcotest.(check bool) "all values reached" true (Array.for_all Fun.id seen)

let test_rng_copy_independent () =
  let a = Rng.create 5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "split streams differ" true !differs

let test_rng_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 13 in
  let n = 20_000 in
  let values = List.init n (fun _ -> Rng.gaussian rng ~mean:10.0 ~stdev:2.0) in
  let mean = Stats.mean values in
  let stdev = Stats.stdev values in
  Alcotest.(check bool) "mean near 10" true (abs_float (mean -. 10.0) < 0.1);
  Alcotest.(check bool) "stdev near 2" true (abs_float (stdev -. 2.0) < 0.1)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 17 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "multiset preserved" (Array.init 50 Fun.id) sorted;
  Alcotest.(check bool) "actually moved something" true (arr <> Array.init 50 Fun.id)

(* ---------------------------------------------------------------- Combi *)

let test_choose_values () =
  List.iter
    (fun (n, k, expect) -> Alcotest.(check int) (Printf.sprintf "C(%d,%d)" n k) expect (Combi.choose n k))
    [ (0, 0, 1); (5, 0, 1); (5, 5, 1); (5, 2, 10); (10, 3, 120); (10, 2, 45);
      (5, 6, 0); (5, -1, 0); (52, 5, 2598960) ]

let test_k_subsets_enumeration () =
  let subsets = Combi.k_subsets [| 1; 2; 3; 4 |] 2 in
  Alcotest.(check int) "count" 6 (List.length subsets);
  Alcotest.(check (list (array int)))
    "lexicographic order"
    [ [| 1; 2 |]; [| 1; 3 |]; [| 1; 4 |]; [| 2; 3 |]; [| 2; 4 |]; [| 3; 4 |] ]
    subsets

let test_k_subsets_edge_cases () =
  Alcotest.(check (list (array int))) "k=0" [ [||] ] (Combi.k_subsets [| 1; 2 |] 0);
  Alcotest.(check (list (array int))) "k=n" [ [| 1; 2 |] ] (Combi.k_subsets [| 1; 2 |] 2);
  Alcotest.(check (list (array int))) "k>n" [] (Combi.k_subsets [| 1; 2 |] 3)

let test_fold_k_subsets_matches_list () =
  let arr = Array.init 7 Fun.id in
  for k = 0 to 7 do
    let from_fold =
      Combi.fold_k_subsets arr k ~init:[] ~f:(fun acc s -> Array.copy s :: acc)
      |> List.rev
    in
    Alcotest.(check (list (array int)))
      (Printf.sprintf "k=%d" k) (Combi.k_subsets arr k) from_fold
  done

let test_cartesian_product () =
  Alcotest.(check (list (list int)))
    "2x2" [ [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ] ]
    (Combi.cartesian_product [ [ 1; 2 ]; [ 3; 4 ] ]);
  Alcotest.(check (list (list int))) "empty product" [ [] ] (Combi.cartesian_product []);
  Alcotest.(check (list (list int))) "empty factor" [] (Combi.cartesian_product [ [ 1 ]; [] ])

let test_fold_cartesian_matches_list () =
  let choices = [| [| 1; 2 |]; [| 3 |]; [| 4; 5; 6 |] |] in
  let tuples =
    Combi.fold_cartesian choices ~init:[] ~f:(fun acc t -> Array.to_list t :: acc)
    |> List.rev
  in
  Alcotest.(check (list (list int)))
    "same as list product"
    (Combi.cartesian_product (Array.to_list (Array.map Array.to_list choices)))
    tuples

let test_product_size_saturates () =
  Alcotest.(check int) "normal" 24 (Combi.product_size [ 2; 3; 4 ]);
  Alcotest.(check int) "zero" 0 (Combi.product_size [ 5; 0 ]);
  Alcotest.(check int) "saturation" max_int
    (Combi.product_size [ max_int / 2; 3 ])

(* ---------------------------------------------------------------- Stats *)

let test_stats_basics () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "mean empty" 0.0 (Stats.mean []);
  check_float "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  check_float "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "median even" 2.5 (Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "stdev" 1.0 (Stats.stdev [ 1.0; 2.0; 3.0 ]);
  check_float "min" 1.0 (Stats.minimum [ 2.0; 1.0; 3.0 ]);
  check_float "max" 3.0 (Stats.maximum [ 2.0; 1.0; 3.0 ])

let test_stats_ratio () =
  check_float "normal" 2.0 (Stats.ratio ~num:4.0 ~den:2.0);
  check_float "0/0" 1.0 (Stats.ratio ~num:0.0 ~den:0.0);
  Alcotest.(check bool) "x/0 infinite" true (Stats.ratio ~num:3.0 ~den:0.0 = infinity)

let test_geomean_rejects_nonpositive () =
  Alcotest.check_raises "zero" (Invalid_argument "Stats.geomean: non-positive value")
    (fun () -> ignore (Stats.geomean [ 1.0; 0.0 ]))

(* ---------------------------------------------------------------- Table *)

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Table.add_row t ~label:"row1" ~values:[ 1.5; 2.25 ];
  Table.add_text_row t ~label:"row2" ~cells:[ "x"; "y" ];
  let s = Table.render t in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) (fragment ^ " present") true
        (contains ~affix:fragment s))
    [ "demo"; "row1"; "1.50"; "2.25"; "row2"; "x" ]

let test_table_mismatched_row () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Table.add_text_row: cell count mismatch")
    (fun () -> Table.add_row t ~label:"r" ~values:[ 1.0 ])

let test_log_bar () =
  Alcotest.(check string) "1x is empty" "" (Table.log_bar ~width:30 1.0);
  Alcotest.(check int) "1000x fills" 30 (String.length (Table.log_bar ~width:30 1000.0));
  Alcotest.(check int) "10x is a third" 10 (String.length (Table.log_bar ~width:30 10.0));
  Alcotest.(check string) "sub-1 clamps" "" (Table.log_bar ~width:30 0.5)

(* ----------------------------------------------------------------- Pool *)

let test_pool_map_matches_sequential () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let arr = Array.init 100 Fun.id in
      let f x = (x * x) + 1 in
      Alcotest.(check (array int))
        "map_array" (Array.map f arr)
        (Pool.map_array pool ~f arr);
      let l = List.init 57 Fun.id in
      Alcotest.(check (list int)) "map_list" (List.map f l) (Pool.map_list pool ~f l))

let test_pool_jobs_one_inline () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs clamp" 1 (Pool.jobs pool);
      let self = Domain.self () in
      let domains =
        Pool.map_array pool ~f:(fun _ -> Domain.self ()) (Array.make 8 ())
      in
      Alcotest.(check bool) "ran in the calling domain" true
        (Array.for_all (fun d -> d = self) domains))

let test_pool_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "lowest index" (Failure "boom5") (fun () ->
          ignore
            (Pool.map_array pool
               ~f:(fun i -> if i = 5 || i = 9 then failwith (Printf.sprintf "boom%d" i) else i)
               (Array.init 12 Fun.id))))

let test_pool_usable_after_error () =
  Pool.with_pool ~jobs:3 (fun pool ->
      (try
         ignore
           (Pool.map_array pool
              ~f:(fun i -> if i = 0 then failwith "first" else i)
              (Array.init 10 Fun.id))
       with Failure _ -> ());
      Alcotest.(check (array int))
        "pool still works" (Array.init 10 succ)
        (Pool.map_array pool ~f:succ (Array.init 10 Fun.id)))

let test_pool_nested_map () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let result =
        Pool.map_list pool
          ~f:(fun i ->
            Array.fold_left ( + ) 0
              (Pool.map_array pool ~f:(fun j -> (i * 10) + j) (Array.init 4 Fun.id)))
          [ 0; 1; 2 ]
      in
      Alcotest.(check (list int)) "nested totals" [ 6; 46; 86 ] result)

let test_pool_shutdown_rejects () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "rejects map"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map_array pool ~f:Fun.id [| 1 |]))

(* ----------------------------------------------------------------- Json *)

let test_json_render () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.String "x\"y");
        ("c", Json.List [ Json.Bool true; Json.Null; Json.Float 2.5 ]);
        ("d", Json.Float 1.0);
      ]
  in
  Alcotest.(check string) "compact render"
    {|{"a":1,"b":"x\"y","c":[true,null,2.5],"d":1.0}|}
    (Json.to_string v)

let test_json_nonfinite () =
  Alcotest.(check string) "inf as string" {|"inf"|}
    (Json.to_string (Json.float_or_string infinity));
  Alcotest.(check string) "nan as string" {|"nan"|}
    (Json.to_string (Json.float_or_string nan));
  Alcotest.(check string) "finite stays numeric" "2.0"
    (Json.to_string (Json.float_or_string 2.0));
  Alcotest.(check string) "raw non-finite Float is null" "null"
    (Json.to_string (Json.Float infinity))

let test_json_escaping () =
  Alcotest.(check string) "control characters"
    "\"a\\nb\\tc\\u0001\\\\\""
    (Json.to_string (Json.String "a\nb\tc\x01\\"));
  Alcotest.(check string) "carriage return"
    "\"x\\ry\""
    (Json.to_string (Json.String "x\ry"))

(* -------------------------------------------------------------- Metrics *)

(* Metrics state is process-global; each test runs against a freshly
   reset registry with the sink enabled, and restores the default
   (disabled) sink so the rest of the suite pays nothing. *)
let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    f

let counters_of prefix snap =
  List.filter (fun (k, _) -> String.starts_with ~prefix k) snap.Metrics.counters

let test_metrics_counter_basics () =
  with_metrics (fun () ->
      let c = Metrics.counter ~scope:"tm1" "events" in
      Metrics.incr c;
      Metrics.add c 41;
      Alcotest.(check int) "handle reads back" 42 (Metrics.counter_value c);
      Alcotest.(check int) "same key, same metric" 42
        (Metrics.counter_value (Metrics.counter ~scope:"tm1" "events"));
      Alcotest.(check (list (pair string int)))
        "snapshot row" [ ("tm1/events", 42) ]
        (counters_of "tm1/" (Metrics.snapshot ())))

let test_metrics_scope_isolation () =
  with_metrics (fun () ->
      let a = Metrics.counter ~scope:"tm2a" "hits" in
      let b = Metrics.counter ~scope:"tm2b" "hits" in
      Metrics.add a 3;
      Metrics.add b 7;
      Alcotest.(check int) "scope a untouched by b" 3 (Metrics.counter_value a);
      Alcotest.(check int) "scope b untouched by a" 7 (Metrics.counter_value b))

let test_metrics_kind_clash () =
  with_metrics (fun () ->
      ignore (Metrics.counter ~scope:"tm3" "x");
      Alcotest.(check bool) "gauge under a counter key rejected" true
        (match Metrics.gauge ~scope:"tm3" "x" with
        | _ -> false
        | exception Invalid_argument _ -> true))

let test_metrics_disabled_sink_free () =
  Metrics.reset ();
  Metrics.set_enabled false;
  let c = Metrics.counter ~scope:"tm4" "events" in
  let t = Metrics.timer ~scope:"tm4" "wall" in
  Metrics.incr c;
  Metrics.add c 100;
  Metrics.observe t 1.0;
  let ran = ref false in
  ignore (Metrics.time t (fun () -> ran := true; 5));
  Metrics.with_span "tm4span" (fun () -> ());
  Alcotest.(check bool) "thunk still runs when disabled" true !ran;
  Alcotest.(check int) "counter untouched" 0 (Metrics.counter_value c);
  let snap = Metrics.snapshot () in
  Alcotest.(check (list (pair string int)))
    "snapshot shows zero" [ ("tm4/events", 0) ] (counters_of "tm4/" snap);
  let dist = List.assoc "tm4/wall" snap.Metrics.timers in
  Alcotest.(check int) "timer empty" 0 dist.Metrics.count;
  Alcotest.(check bool) "span never recorded" true
    (Metrics.span_total snap "tm4span" = None)

let test_metrics_timer_dist () =
  with_metrics (fun () ->
      let t = Metrics.timer ~scope:"tm5" "obs" in
      List.iter (Metrics.observe t) [ 0.25; 1.0; 0.5 ];
      let snap = Metrics.snapshot () in
      let d = List.assoc "tm5/obs" snap.Metrics.timers in
      Alcotest.(check int) "count" 3 d.Metrics.count;
      check_float "total" 1.75 d.Metrics.total;
      check_float "min" 0.25 d.Metrics.min;
      check_float "max" 1.0 d.Metrics.max)

let test_metrics_span_nesting () =
  with_metrics (fun () ->
      Metrics.with_span "outer" (fun () ->
          Metrics.with_span "inner" (fun () -> ());
          Metrics.with_span "inner" (fun () -> ()));
      let snap = Metrics.snapshot () in
      Alcotest.(check bool) "outer recorded" true
        (Metrics.span_total snap "outer" <> None);
      let inner = List.assoc "outer/inner" snap.Metrics.spans in
      Alcotest.(check int) "inner nests under outer, twice" 2 inner.Metrics.count;
      Alcotest.(check bool) "no top-level inner" true
        (not (List.mem_assoc "inner" snap.Metrics.spans)))

let test_metrics_counter_deltas () =
  with_metrics (fun () ->
      let c = Metrics.counter ~scope:"tm6" "n" in
      let d = Metrics.counter ~scope:"tm6" "steady" in
      Metrics.add d 5;
      let before = Metrics.snapshot () in
      Metrics.add c 17;
      let after = Metrics.snapshot () in
      Alcotest.(check (list (pair string int)))
        "only moved counters appear" [ ("tm6/n", 17) ]
        (List.filter
           (fun (k, _) -> String.starts_with ~prefix:"tm6/" k)
           (Metrics.counter_deltas ~before ~after)))

(* The PR-level contract: counters count logical work, so fanning the
   same tasks over 1 or 4 workers must produce identical values. *)
let test_metrics_jobs_determinism () =
  let run jobs =
    with_metrics (fun () ->
        let c = Metrics.counter ~scope:"tm7" "work" in
        Pool.with_pool ~jobs (fun pool ->
            ignore
              (Pool.map_array pool
                 ~f:(fun i ->
                   Metrics.add c (i mod 7);
                   i)
                 (Array.init 200 Fun.id)));
        counters_of "tm7/" (Metrics.snapshot ())
        @ counters_of "pool/" (Metrics.snapshot ()))
  in
  Alcotest.(check (list (pair string int)))
    "jobs=1 = jobs=4 counters" (run 1) (run 4)

let test_metrics_json_roundtrip () =
  with_metrics (fun () ->
      let c = Metrics.counter ~scope:"tm8" "events" in
      let g = Metrics.gauge ~scope:"tm8" "level" in
      let t = Metrics.timer ~scope:"tm8" "wall" in
      Metrics.add c 123;
      Metrics.set_gauge g 2.5;
      Metrics.observe t 0.125;
      Metrics.with_span "tm8span" (fun () -> ());
      let rendered = Json.to_string (Metrics.to_json (Metrics.snapshot ())) in
      match Json.of_string rendered with
      | Error msg -> Alcotest.fail msg
      | Ok parsed ->
        Alcotest.(check string) "reparse is stable" rendered (Json.to_string parsed);
        let counters = Option.get (Json.member "counters" parsed) in
        Alcotest.(check bool) "counter value survives" true
          (Json.member "tm8/events" counters = Some (Json.Int 123)))

(* ----------------------------------------------------------- Bench_diff *)

let bench_doc sections =
  Json.Obj
    [
      ("schema", Json.String "rb-bench/1");
      ( "sections",
        Json.List
          (List.map
             (fun (name, wall, counters) ->
               Json.Obj
                 [
                   ("section", Json.String name);
                   ("wall_s", Json.Float wall);
                   ( "counters",
                     Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters) );
                 ])
             sections) );
    ]

let diff ?wall_tol ?counter_tol ?allow_new a b =
  match
    Bench_diff.compare_docs ?wall_tol ?counter_tol ?allow_new ~baseline:a
      ~current:b ()
  with
  | Ok r -> r
  | Error msg -> Alcotest.fail msg

let kinds r = List.map (fun v -> v.Bench_diff.kind) r.Bench_diff.violations

let test_diff_tolerance_pass () =
  let base = bench_doc [ ("fig6", 1.0, [ ("sat/solves", 10) ]) ] in
  let cur = bench_doc [ ("fig6", 1.4, [ ("sat/solves", 10) ]) ] in
  let r = diff ~wall_tol:0.5 base cur in
  Alcotest.(check int) "no violations" 0 (List.length r.Bench_diff.violations);
  Alcotest.(check int) "counters checked" 1 r.Bench_diff.counters_checked

let test_diff_wall_regression () =
  let base = bench_doc [ ("fig6", 1.0, []) ] in
  let cur = bench_doc [ ("fig6", 1.6, []) ] in
  Alcotest.(check bool) "above band fails" true
    (kinds (diff ~wall_tol:0.5 base cur) = [ Bench_diff.Wall_regression ]);
  Alcotest.(check int) "faster never fails" 0
    (List.length (diff ~wall_tol:0.0 cur base).Bench_diff.violations)

let test_diff_counter_regression () =
  let base = bench_doc [ ("fig6", 1.0, [ ("sim/op_evals", 1000) ]) ] in
  let cur = bench_doc [ ("fig6", 1.0, [ ("sim/op_evals", 1001) ]) ] in
  Alcotest.(check bool) "exact by default" true
    (kinds (diff base cur) = [ Bench_diff.Counter_drift ]);
  Alcotest.(check int) "within explicit tolerance passes" 0
    (List.length (diff ~counter_tol:0.01 base cur).Bench_diff.violations);
  (* Drift downward is a behaviour change too. *)
  Alcotest.(check bool) "downward drift also fails" true
    (kinds (diff cur base) = [ Bench_diff.Counter_drift ])

let test_diff_missing_metric () =
  let base =
    bench_doc [ ("fig6", 1.0, [ ("sat/solves", 10); ("sim/op_evals", 5) ]) ]
  in
  let cur = bench_doc [ ("fig6", 1.0, [ ("sat/solves", 10) ]) ] in
  Alcotest.(check bool) "dropped counter fails" true
    (kinds (diff base cur) = [ Bench_diff.Missing_counter ])

let test_diff_new_counter () =
  let base = bench_doc [ ("fig6", 1.0, [ ("sat/solves", 10) ]) ] in
  let cur =
    bench_doc [ ("fig6", 1.0, [ ("sat/solves", 10); ("faults/injected", 0) ]) ]
  in
  (* A counter absent from the baseline is a gate failure by default:
     either the baseline is stale or behaviour silently grew. *)
  Alcotest.(check bool) "new counter fails strict" true
    (kinds (diff base cur) = [ Bench_diff.New_counter ]);
  let r = diff ~allow_new:true base cur in
  Alcotest.(check int) "--allow-new demotes to a note" 0
    (List.length r.Bench_diff.violations);
  Alcotest.(check bool) "still reported as an addition" true
    (r.Bench_diff.additions <> [])

let test_diff_new_section_informational () =
  let base = bench_doc [ ("fig6", 1.0, []) ] in
  let cur = bench_doc [ ("fig6", 1.0, []); ("extra", 1.0, [ ("x/y", 1) ]) ] in
  let r = diff base cur in
  Alcotest.(check int) "whole new section never fails" 0
    (List.length r.Bench_diff.violations);
  Alcotest.(check bool) "noted as an addition" true (r.Bench_diff.additions <> [])

let test_diff_missing_section () =
  let base = bench_doc [ ("fig6", 1.0, []); ("quality", 1.0, []) ] in
  let cur = bench_doc [ ("fig6", 1.0, []) ] in
  Alcotest.(check bool) "dropped section fails" true
    (kinds (diff base cur) = [ Bench_diff.Missing_section ])

let test_diff_malformed () =
  Alcotest.(check bool) "shape error is Error, not a crash" true
    (match
       Bench_diff.compare_docs ~baseline:(Json.Obj []) ~current:(bench_doc []) ()
     with
    | Error _ -> true
    | Ok _ -> false)

(* ------------------------------------------------------------ Json parse *)

let test_json_parse_values () =
  List.iter
    (fun (input, expect) ->
      match Json.of_string input with
      | Ok v -> Alcotest.(check string) input expect (Json.to_string v)
      | Error msg -> Alcotest.fail (input ^ ": " ^ msg))
    [
      ("null", "null");
      (" true ", "true");
      ("-42", "-42");
      ("2.5", "2.5");
      ("1e3", "1000.0");
      ({|"aA\n"|}, {|"aA\n"|});
      ({|"😀"|}, "\"\xf0\x9f\x98\x80\"");
      ({|[1, [], {"a": 2}]|}, {|[1,[],{"a":2}]|});
      ({|{"x": 1, "y": [true, null]}|}, {|{"x":1,"y":[true,null]}|});
    ]

let test_json_parse_int_vs_float () =
  Alcotest.(check bool) "integer syntax is Int" true
    (Json.of_string "7" = Ok (Json.Int 7));
  Alcotest.(check bool) "decimal syntax is Float" true
    (Json.of_string "7.0" = Ok (Json.Float 7.0));
  Alcotest.(check bool) "exponent syntax is Float" true
    (Json.of_string "7e0" = Ok (Json.Float 7.0))

let test_json_parse_errors () =
  List.iter
    (fun input ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" input) true
        (match Json.of_string input with Error _ -> true | Ok _ -> false))
    [ ""; "{"; "[1,"; {|{"a" 1}|}; "tru"; "1 2"; {|"unterminated|};
      {|"\ud83d"|}; "[1,]"; "nan" ]

let nested_list depth =
  String.concat "" [ String.make depth '['; "1"; String.make depth ']' ]

let test_json_depth_limit () =
  (* The parser recurses per nesting level; the cap turns a potential
     stack overflow on adversarial input into a parse error. *)
  Alcotest.(check bool) "1000 levels parse" true
    (match Json.of_string (nested_list 1000) with Ok _ -> true | Error _ -> false);
  (match Json.of_string (nested_list 1001) with
  | Ok _ -> Alcotest.fail "1001 levels should be rejected"
  | Error msg ->
    Alcotest.(check bool) "error names the depth cap" true
      (contains ~affix:"nesting too deep" msg));
  (* Objects count against the same budget as arrays. *)
  let deep_obj depth =
    String.concat ""
      [ String.concat "" (List.init depth (fun _ -> {|{"a":|}));
        "1"; String.make depth '}' ]
  in
  Alcotest.(check bool) "deep objects rejected too" true
    (match Json.of_string (deep_obj 1500) with Error _ -> true | Ok _ -> false)

(* ---------------------------------------------------------- Json pretty *)

let test_json_pretty () =
  Alcotest.(check string) "scalars stay compact" "null" (Json.to_string_pretty Json.Null);
  Alcotest.(check string) "empty containers stay compact" "[]"
    (Json.to_string_pretty (Json.List []));
  Alcotest.(check string) "empty object" "{}" (Json.to_string_pretty (Json.Obj []));
  Alcotest.(check string) "two-space indent, one element per line"
    "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}"
    (Json.to_string_pretty
       (Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true; Json.Null ]) ]));
  Alcotest.(check string) "strings escape as in to_string" "\"a\\n\""
    (Json.to_string_pretty (Json.String "a\n"));
  (* no trailing newline: callers add their own *)
  let s = Json.to_string_pretty (Json.List [ Json.Int 1 ]) in
  Alcotest.(check bool) "no trailing newline" false (String.length s > 0 && s.[String.length s - 1] = '\n')

(* --------------------------------------------------------------- Digest *)

let test_digest_string () =
  (* MD5 of the empty string is a published constant — pins both the
     algorithm and the lowercase-hex rendering. *)
  Alcotest.(check string) "md5 hex" "d41d8cd98f00b204e9800998ecf8427e"
    (Rb_util.Digest.string "");
  Alcotest.(check bool) "distinct inputs, distinct digests" true
    (Rb_util.Digest.string "a" <> Rb_util.Digest.string "b")

let test_digest_canonical () =
  let a =
    Json.Obj
      [ ("b", Json.Int 2); ("a", Json.Obj [ ("y", Json.Null); ("x", Json.Int 1) ]) ]
  in
  let b =
    Json.Obj
      [ ("a", Json.Obj [ ("x", Json.Int 1); ("y", Json.Null) ]); ("b", Json.Int 2) ]
  in
  Alcotest.(check string) "field order canonicalized away"
    (Rb_util.Digest.json a) (Rb_util.Digest.json b);
  Alcotest.(check string) "canonical renders sorted" {|{"a":{"x":1,"y":null},"b":2}|}
    (Json.to_string (Rb_util.Digest.canonical a));
  Alcotest.(check bool) "list order still matters" true
    (Rb_util.Digest.json (Json.List [ Json.Int 1; Json.Int 2 ])
    <> Rb_util.Digest.json (Json.List [ Json.Int 2; Json.Int 1 ]));
  Alcotest.(check bool) "values still matter" true
    (Rb_util.Digest.json a
    <> Rb_util.Digest.json (Json.Obj [ ("b", Json.Int 3); ("a", Json.Null) ]))

(* --------------------------------------------------------------- Limits *)

let reason =
  Alcotest.testable
    (fun fmt r -> Format.pp_print_string fmt (Limits.reason_label r))
    ( = )

let test_limits_none () =
  Alcotest.(check bool) "none is none" true (Limits.is_none Limits.none);
  Alcotest.(check bool) "conflicts is not none" false
    (Limits.is_none (Limits.conflicts 5));
  Alcotest.(check (option reason)) "none never trips" None
    (Limits.check Limits.none ~conflicts:max_int ~propagations:max_int)

let test_limits_budgets () =
  let l = Limits.make ~max_conflicts:10 ~max_propagations:100 () in
  Alcotest.(check (option reason)) "under budget" None
    (Limits.check l ~conflicts:9 ~propagations:99);
  Alcotest.(check (option reason)) "conflict budget trips at the bound"
    (Some Limits.Conflicts)
    (Limits.check l ~conflicts:10 ~propagations:0);
  Alcotest.(check (option reason)) "propagation budget trips"
    (Some Limits.Propagations)
    (Limits.check l ~conflicts:0 ~propagations:100);
  (* Fixed reporting order: conflicts win when both trip. *)
  Alcotest.(check (option reason)) "conflicts reported first"
    (Some Limits.Conflicts)
    (Limits.check l ~conflicts:10 ~propagations:100)

let test_limits_cancel () =
  let flag = Limits.new_cancel () in
  let l = Limits.make ~cancel:flag () in
  Alcotest.(check (option reason)) "unraised flag" None (Limits.interrupted l);
  Limits.cancel flag;
  Alcotest.(check bool) "flag observable" true (Limits.cancelled flag);
  Alcotest.(check (option reason)) "interrupted sees it"
    (Some Limits.Cancelled) (Limits.interrupted l);
  Alcotest.(check (option reason)) "check sees it too"
    (Some Limits.Cancelled) (Limits.check l ~conflicts:0 ~propagations:0)

let test_limits_with_cancel () =
  (* with_cancel layers a second flag over an existing limit: either
     flag interrupts, and the base limit's budgets keep counting. *)
  let base_flag = Limits.new_cancel () in
  let extra_flag = Limits.new_cancel () in
  let base = Limits.make ~max_conflicts:10 ~cancel:base_flag () in
  let layered = Limits.with_cancel base extra_flag in
  Alcotest.(check (option reason)) "no flag raised" None (Limits.interrupted layered);
  Alcotest.(check (option reason)) "budget survives layering"
    (Some Limits.Conflicts)
    (Limits.check layered ~conflicts:10 ~propagations:0);
  Limits.cancel extra_flag;
  Alcotest.(check (option reason)) "added flag interrupts"
    (Some Limits.Cancelled) (Limits.interrupted layered);
  Alcotest.(check (option reason)) "base limit unaffected by added flag" None
    (Limits.interrupted base);
  let two = Limits.with_cancel (Limits.with_cancel Limits.none base_flag) extra_flag in
  Alcotest.(check (option reason)) "any flag in the stack interrupts"
    (Some Limits.Cancelled) (Limits.interrupted two)

let test_limits_deadline () =
  let past = Limits.make ~deadline_s:0.0 () in
  Alcotest.(check (option reason)) "past deadline trips"
    (Some Limits.Deadline) (Limits.interrupted past);
  let future = Limits.make ~deadline_s:(Metrics.now_s () +. 3600.0) () in
  Alcotest.(check (option reason)) "future deadline does not" None
    (Limits.interrupted future);
  (* has_deadline distinguishes volatile (clock-dependent) limits from
     deterministic ones; with_deadline composes by min, so tightening
     can only shrink an existing deadline, never extend it. *)
  Alcotest.(check bool) "no deadline on none" false (Limits.has_deadline Limits.none);
  Alcotest.(check bool) "budget alone is deadline-free" false
    (Limits.has_deadline (Limits.conflicts 10));
  Alcotest.(check bool) "with_deadline sets one" true
    (Limits.has_deadline (Limits.with_deadline Limits.none 1.0));
  let tightened = Limits.with_deadline future (Metrics.now_s () -. 1.0) in
  Alcotest.(check (option reason)) "tightening wins over a laxer deadline"
    (Some Limits.Deadline) (Limits.interrupted tightened);
  let not_extended = Limits.with_deadline past 1e12 in
  Alcotest.(check (option reason)) "a laxer deadline cannot extend"
    (Some Limits.Deadline) (Limits.interrupted not_extended)

let counter_at key snap =
  match List.assoc_opt key snap.Metrics.counters with
  | Some v -> v
  | None -> Alcotest.fail (key ^ " not registered")

let test_limits_notes_counters () =
  with_metrics (fun () ->
      Limits.note Limits.Conflicts;
      Limits.note Limits.Propagations;
      Limits.note Limits.Deadline;
      Limits.note Limits.Cancelled;
      let snap = Metrics.snapshot () in
      Alcotest.(check int) "both deterministic reasons share one counter" 2
        (counter_at "limits/budget_exhausted" snap);
      Alcotest.(check int) "deadline" 1 (counter_at "limits/deadline_exceeded" snap);
      Alcotest.(check int) "cancelled" 1 (counter_at "limits/cancelled" snap))

(* --------------------------------------------------------- Share_buffer *)

let test_share_buffer_push_drain_order () =
  let b = Pool.Share_buffer.create ~capacity:8 in
  Alcotest.(check int) "capacity" 8 (Pool.Share_buffer.capacity b);
  List.iter (fun v -> assert (Pool.Share_buffer.push b v)) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "drain in push order" [ 1; 2; 3 ]
    (Pool.Share_buffer.drain b);
  Alcotest.(check (list int)) "drain empties" [] (Pool.Share_buffer.drain b);
  (* Reusable after a drain: slots are reclaimed, not consumed. *)
  assert (Pool.Share_buffer.push b 42);
  Alcotest.(check (list int)) "next round sees new values" [ 42 ]
    (Pool.Share_buffer.drain b)

let test_share_buffer_drops_when_full () =
  let b = Pool.Share_buffer.create ~capacity:2 in
  Alcotest.(check bool) "first" true (Pool.Share_buffer.push b 1);
  Alcotest.(check bool) "second" true (Pool.Share_buffer.push b 2);
  Alcotest.(check bool) "overflow dropped" false (Pool.Share_buffer.push b 3);
  Alcotest.(check (list int)) "stored values survive the drop" [ 1; 2 ]
    (Pool.Share_buffer.drain b);
  Alcotest.(check bool) "space again after drain" true (Pool.Share_buffer.push b 4)

let test_share_buffer_invalid_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Share_buffer.create: capacity must be >= 1") (fun () ->
      ignore (Pool.Share_buffer.create ~capacity:0))

let test_share_buffer_concurrent_pushes () =
  (* Racing pushes from pool workers: every accepted value must appear
     exactly once in the drain — no slot may be lost or duplicated. *)
  let b = Pool.Share_buffer.create ~capacity:128 in
  Pool.with_pool ~jobs:4 (fun pool ->
      ignore
        (Pool.map_array pool
           ~f:(fun i -> assert (Pool.Share_buffer.push b i))
           (Array.init 100 Fun.id)));
  let drained = List.sort compare (Pool.Share_buffer.drain b) in
  Alcotest.(check (list int)) "all pushes land once" (List.init 100 Fun.id) drained

(* --------------------------------------------------------------- Faults *)

let fault_config ?(rate = 1000) ?(sites = []) seed =
  Some { Faults.seed; rate_per_mille = rate; sites }

let test_faults_disabled_by_default () =
  Alcotest.(check bool) "off outside with_config" true
    (Faults.config () = None || Sys.getenv_opt "RB_FAULT_SEED" <> None);
  Faults.with_config None (fun () ->
      Alcotest.(check bool) "never fires when off" false
        (Faults.fire ~site:"pool/task" ~key:"0");
      Faults.inject ~site:"pool/task" ~key:"0" (* must not raise *))

let test_faults_deterministic () =
  Faults.with_config (fault_config ~rate:500 11) (fun () ->
      let decisions () =
        List.init 64 (fun i -> Faults.fire ~site:"pool/task" ~key:(string_of_int i))
      in
      let first = decisions () in
      Alcotest.(check (list bool)) "same config, same decisions" first
        (decisions ());
      Alcotest.(check bool) "rate 500 fires somewhere" true
        (List.mem true first);
      Alcotest.(check bool) "rate 500 spares somewhere" true
        (List.mem false first));
  let at seed =
    Faults.with_config (fault_config ~rate:500 seed) (fun () ->
        List.init 64 (fun i -> Faults.fire ~site:"pool/task" ~key:(string_of_int i)))
  in
  Alcotest.(check bool) "seed changes the decisions" true (at 11 <> at 12)

let test_faults_rate_extremes () =
  Faults.with_config (fault_config ~rate:0 7) (fun () ->
      Alcotest.(check bool) "rate 0 never fires" false
        (List.init 32 (fun i -> Faults.fire ~site:"s" ~key:(string_of_int i))
        |> List.mem true));
  Faults.with_config (fault_config ~rate:1000 7) (fun () ->
      Alcotest.(check bool) "rate 1000 always fires" true
        (List.init 32 (fun i -> Faults.fire ~site:"s" ~key:(string_of_int i))
        |> List.for_all Fun.id))

let test_faults_site_filter () =
  Faults.with_config (fault_config ~rate:1000 ~sites:[ "pool/task" ] 3) (fun () ->
      Alcotest.(check bool) "listed site fires" true
        (Faults.fire ~site:"pool/task" ~key:"k");
      Alcotest.(check bool) "other sites stay quiet" false
        (Faults.fire ~site:"sat/budget" ~key:"k"))

let test_faults_inject_payload () =
  Faults.with_config (fault_config ~rate:1000 5) (fun () ->
      Alcotest.check_raises "payload is site:key"
        (Faults.Injected "pool/task:17") (fun () ->
          Faults.inject ~site:"pool/task" ~key:"17"))

let test_faults_with_config_restores () =
  let outer = fault_config 1 in
  Faults.with_config outer (fun () ->
      (try Faults.with_config (fault_config 2) (fun () -> failwith "boom")
       with Failure _ -> ());
      Alcotest.(check bool) "restored after exception" true
        (Faults.config () = outer));
  ignore (Faults.with_config None (fun () -> ()))

(* ---------------------------------------------------- Pool result maps *)

let task_error =
  Alcotest.testable
    (fun fmt (e : Pool.task_error) ->
      Format.fprintf fmt "{index=%d; attempts=%d; message=%s}" e.Pool.index
        e.Pool.attempts e.Pool.message)
    ( = )

let result_int = Alcotest.(result int task_error)

(* The non-fault tests pin injection off so they hold under the CI
   fault job, which enables "pool/task" via the environment. *)
let test_pool_map_result_ok () =
  Faults.with_config None @@ fun () ->
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (array result_int))
        "all Ok, in index order"
        (Array.init 20 (fun i -> Ok (i * i)))
        (Pool.map_array_result pool ~f:(fun x -> x * x) (Array.init 20 Fun.id)))

let test_pool_map_result_captures_errors () =
  Faults.with_config None @@ fun () ->
  Pool.with_pool ~jobs:4 (fun pool ->
      let results =
        Pool.map_array_result pool
          ~f:(fun i -> if i mod 3 = 0 then failwith "bad" else i)
          (Array.init 10 Fun.id)
      in
      Array.iteri
        (fun i r ->
          if i mod 3 = 0 then
            match r with
            | Error (e : Pool.task_error) ->
              Alcotest.(check int) "error keeps its index" i e.Pool.index;
              Alcotest.(check int) "no retries by default" 1 e.Pool.attempts;
              Alcotest.(check bool) "message survives" true
                (contains ~affix:"bad" e.Pool.message)
            | Ok _ -> Alcotest.fail "expected failure"
          else Alcotest.(check result_int) "success unchanged" (Ok i) r)
        results)

let test_pool_map_result_retries_recover () =
  (* Injected pool faults fire on attempt 0 only, so one retry always
     recovers every injected failure. *)
  Faults.with_config (fault_config ~rate:1000 ~sites:[ "pool/task" ] 9) (fun () ->
      Pool.with_pool ~jobs:4 (fun pool ->
          Alcotest.(check (array result_int))
            "retries:1 absorbs all injections"
            (Array.init 16 (fun i -> Ok i))
            (Pool.map_array_result ~retries:1 pool ~f:Fun.id
               (Array.init 16 Fun.id))))

let test_pool_map_result_injected_errors () =
  Faults.with_config (fault_config ~rate:400 ~sites:[ "pool/task" ] 21) (fun () ->
      let expected =
        Array.init 32 (fun i ->
            if Faults.fire ~site:"pool/task" ~key:(string_of_int i) then
              Error
                {
                  Pool.index = i;
                  attempts = 1;
                  message =
                    Printexc.to_string
                      (Faults.Injected ("pool/task:" ^ string_of_int i));
                }
            else Ok i)
      in
      Alcotest.(check bool) "config injects at least one fault" true
        (Array.exists Result.is_error expected);
      let run jobs =
        Pool.with_pool ~jobs (fun pool ->
            Pool.map_array_result pool ~f:Fun.id (Array.init 32 Fun.id))
      in
      Alcotest.(check (array result_int)) "errors exactly at fired keys" expected
        (run 4);
      Alcotest.(check (array result_int)) "jobs=1 = jobs=4" (run 1) (run 4))

let test_pool_map_result_retry_counter () =
  with_metrics (fun () ->
      Faults.with_config (fault_config ~rate:1000 ~sites:[ "pool/task" ] 9)
        (fun () ->
          Pool.with_pool ~jobs:2 (fun pool ->
              ignore
                (Pool.map_array_result ~retries:2 pool ~f:Fun.id
                   (Array.init 8 Fun.id))));
      let snap = Metrics.snapshot () in
      Alcotest.(check int) "every task injected once" 8
        (counter_at "faults/injected" snap);
      Alcotest.(check int)
        "one retry per injected task, none burned on the recovered attempt" 8
        (counter_at "faults/retries" snap))

let test_pool_run_task_result_attempts () =
  Faults.with_config None @@ fun () ->
  let calls = ref 0 in
  let r =
    Pool.run_task_result ~retries:2 ~index:3 (fun () ->
        incr calls;
        failwith "always")
  in
  Alcotest.(check int) "initial try + 2 retries" 3 !calls;
  match r with
  | Error (e : Pool.task_error) ->
    Alcotest.(check int) "attempts recorded" 3 e.Pool.attempts;
    Alcotest.(check int) "index recorded" 3 e.Pool.index
  | Ok _ -> Alcotest.fail "expected failure"

(* ----------------------------------------------------------- Checkpoint *)

let with_temp_journal f =
  let path = Filename.temp_file "rb_ckpt" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_checkpoint_roundtrip () =
  with_temp_journal (fun path ->
      let j = Checkpoint.create ~path ~resume:false in
      Alcotest.(check int) "fresh journal is empty" 0 (Checkpoint.entries j);
      Checkpoint.record j "a" (Json.Int 1);
      Checkpoint.record j "b" (Json.List [ Json.Int 2; Json.Int 3 ]);
      Checkpoint.record j "a" (Json.Int 99) (* duplicate key: no-op *);
      Alcotest.(check int) "two entries" 2 (Checkpoint.entries j);
      Alcotest.(check bool) "duplicate record kept the first value" true
        (Checkpoint.find j "a" = Some (Json.Int 1));
      Checkpoint.close j;
      let r = Checkpoint.create ~path ~resume:true in
      Alcotest.(check int) "resume loads both" 2 (Checkpoint.entries r);
      Alcotest.(check bool) "values survive" true
        (Checkpoint.find r "b" = Some (Json.List [ Json.Int 2; Json.Int 3 ]));
      Alcotest.(check bool) "missing key misses" true
        (Checkpoint.find r "c" = None);
      Checkpoint.close r)

let test_checkpoint_truncate_without_resume () =
  with_temp_journal (fun path ->
      let j = Checkpoint.create ~path ~resume:false in
      Checkpoint.record j "old" (Json.Int 1);
      Checkpoint.close j;
      let fresh = Checkpoint.create ~path ~resume:false in
      Alcotest.(check int) "resume:false discards history" 0
        (Checkpoint.entries fresh);
      Checkpoint.close fresh)

let test_checkpoint_torn_tail () =
  with_temp_journal (fun path ->
      let j = Checkpoint.create ~path ~resume:false in
      Checkpoint.record j "a" (Json.Int 1);
      Checkpoint.record j "b" (Json.Int 2);
      Checkpoint.close j;
      (* Simulate a crash mid-write: append half a record. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc {|{"k":"c","v":|};
      close_out oc;
      let r = Checkpoint.create ~path ~resume:true in
      Alcotest.(check int) "torn tail dropped, intact prefix kept" 2
        (Checkpoint.entries r);
      (* The resumed journal can append past the torn line. *)
      Checkpoint.record r "d" (Json.Int 4);
      Checkpoint.close r;
      let r2 = Checkpoint.create ~path ~resume:true in
      (* The torn line still sits mid-file, so loading still stops
         there — the journal guarantees at-most-lost-tail, not repair. *)
      Alcotest.(check int) "second resume still sees the prefix" 2
        (Checkpoint.entries r2);
      Checkpoint.close r2)

let test_checkpoint_skip_counter () =
  with_temp_journal (fun path ->
      with_metrics (fun () ->
          let j = Checkpoint.create ~path ~resume:false in
          Checkpoint.record j "a" (Json.Int 1);
          ignore (Checkpoint.find j "a");
          ignore (Checkpoint.find j "a");
          ignore (Checkpoint.find j "nope");
          Checkpoint.close j;
          Alcotest.(check int) "hits counted, misses not" 2
            (counter_at "limits/checkpoint_chunks_skipped" (Metrics.snapshot ()))))

let test_checkpoint_flush_now_safe () =
  with_temp_journal (fun path ->
      let j = Checkpoint.create ~path ~resume:false in
      Checkpoint.record j "a" (Json.Int 1);
      Checkpoint.flush_now j;
      Checkpoint.close j;
      Checkpoint.flush_now j (* after close: still a no-op, not a crash *))

(* --------------------------------------------------------------- QCheck *)

let qcheck_choose_symmetry =
  QCheck2.Test.make ~name:"choose n k = choose n (n-k)" ~count:200
    QCheck2.Gen.(pair (int_range 0 30) (int_range 0 30))
    (fun (n, k) -> Combi.choose n k = Combi.choose n (n - k) || k > n)

let qcheck_k_subsets_count =
  QCheck2.Test.make ~name:"|k_subsets| = choose n k" ~count:50
    QCheck2.Gen.(pair (int_range 0 9) (int_range 0 9))
    (fun (n, k) ->
      let arr = Array.init n Fun.id in
      List.length (Combi.k_subsets arr k) = Combi.choose n k)

let qcheck_rng_int_bounds =
  QCheck2.Test.make ~name:"Rng.int in bounds" ~count:500
    QCheck2.Gen.(pair int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let qcheck_shuffle_multiset =
  QCheck2.Test.make ~name:"shuffle preserves elements" ~count:100
    QCheck2.Gen.(pair int (list_size (int_range 0 40) small_int))
    (fun (seed, l) ->
      let rng = Rng.create seed in
      let arr = Array.of_list l in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let qcheck_pool_exactly_once =
  QCheck2.Test.make ~name:"Pool.map runs each task exactly once, in order" ~count:30
    QCheck2.Gen.(pair (int_range 1 4) (int_range 0 200))
    (fun (jobs, n) ->
      Pool.with_pool ~jobs (fun pool ->
          let counters = Array.init n (fun _ -> Atomic.make 0) in
          let results =
            Pool.map_array pool
              ~f:(fun i ->
                Atomic.incr counters.(i);
                i * 3)
              (Array.init n Fun.id)
          in
          Array.for_all (fun c -> Atomic.get c = 1) counters
          && results = Array.init n (fun i -> i * 3)))

let qcheck_pool_matches_list_map =
  QCheck2.Test.make ~name:"Pool.map_list = List.map" ~count:30
    QCheck2.Gen.(pair (int_range 1 4) (list_size (int_range 0 60) small_int))
    (fun (jobs, l) ->
      Pool.with_pool ~jobs (fun pool ->
          Pool.map_list pool ~f:(fun x -> (2 * x) - 1) l
          = List.map (fun x -> (2 * x) - 1) l))

let qcheck_pool_exception_cleanup =
  QCheck2.Test.make ~name:"failed Pool.map leaves the pool serviceable" ~count:20
    QCheck2.Gen.(pair (int_range 1 4) (int_range 1 50))
    (fun (jobs, n) ->
      Pool.with_pool ~jobs (fun pool ->
          let raised =
            try
              ignore
                (Pool.map_array pool
                   ~f:(fun i -> if i mod 3 = 0 then failwith "task" else i)
                   (Array.init n Fun.id));
              false
            with Failure msg -> msg = "task"
          in
          raised
          && Pool.map_list pool ~f:succ (List.init n Fun.id)
             = List.init n (fun i -> i + 1)))

(* Float-free Json values: Int/String/Bool/Null survive a print/parse
   cycle exactly, so the round-trip can demand structural equality. *)
let json_value_gen =
  let open QCheck2.Gen in
  let key = string_size ~gen:printable (int_range 0 6) in
  sized @@ fix (fun self n ->
      let scalar =
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun i -> Json.Int i) int;
            map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 8));
          ]
      in
      if n <= 0 then scalar
      else
        oneof
          [
            scalar;
            map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 2)));
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (int_range 0 4) (pair key (self (n / 2))));
          ])

let qcheck_json_roundtrip =
  QCheck2.Test.make ~name:"Json.of_string inverts to_string (float-free)"
    ~count:200 json_value_gen
    (fun v -> Json.of_string (Json.to_string v) = Ok v)

let qcheck_json_pretty_roundtrip =
  QCheck2.Test.make ~name:"Json.of_string inverts to_string_pretty (float-free)"
    ~count:200 json_value_gen
    (fun v -> Json.of_string (Json.to_string_pretty v) = Ok v)

let qcheck_digest_canonical =
  QCheck2.Test.make ~name:"Digest.json invariant under object-field shuffles"
    ~count:200
    QCheck2.Gen.(pair json_value_gen (int_range 0 1000))
    (fun (v, salt) ->
      (* Rotate the fields of every object by [salt] — a cheap deterministic
         shuffle — and check the digest does not move. *)
      let rotate = function
        | [] -> []
        | l ->
            let k = salt mod List.length l in
            List.filteri (fun i _ -> i >= k) l
            @ List.filteri (fun i _ -> i < k) l
      in
      (* Duplicate keys make canonical order depend on input order, so drop
         them (keep the first occurrence) before shuffling. *)
      let rec dedup seen = function
        | [] -> []
        | (k, _) :: rest when List.mem k seen -> dedup seen rest
        | (k, v) :: rest -> (k, v) :: dedup (k :: seen) rest
      in
      let rec map_objs f = function
        | Json.Obj kvs ->
            Json.Obj (f (List.map (fun (k, v) -> (k, map_objs f v)) kvs))
        | Json.List l -> Json.List (List.map (map_objs f) l)
        | v -> v
      in
      let v = map_objs (dedup []) v in
      Rb_util.Digest.json v = Rb_util.Digest.json (map_objs rotate v))

let qcheck_metrics_jobs_invariant =
  QCheck2.Test.make ~name:"counter totals invariant across jobs" ~count:20
    QCheck2.Gen.(pair (int_range 1 4) (int_range 0 120))
    (fun (jobs, n) ->
      let run jobs =
        with_metrics (fun () ->
            let c = Metrics.counter ~scope:"tmq" "work" in
            Pool.with_pool ~jobs (fun pool ->
                ignore
                  (Pool.map_array pool
                     ~f:(fun i ->
                       Metrics.add c (1 + (i mod 5));
                       i)
                     (Array.init n Fun.id)));
            Metrics.counter_value c)
      in
      run jobs = run 1)

let () =
  Alcotest.run "rb_util"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick
            test_pool_map_matches_sequential;
          Alcotest.test_case "jobs=1 runs inline" `Quick test_pool_jobs_one_inline;
          Alcotest.test_case "lowest-index error wins" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "usable after a failed map" `Quick
            test_pool_usable_after_error;
          Alcotest.test_case "nested map runs inline" `Quick test_pool_nested_map;
          Alcotest.test_case "shutdown rejects further maps" `Quick
            test_pool_shutdown_rejects;
        ] );
      ( "veci",
        [
          Alcotest.test_case "push/get/pop" `Quick test_veci_push_get_pop;
          Alcotest.test_case "growth" `Quick test_veci_growth_past_capacity;
          Alcotest.test_case "truncate/clear" `Quick test_veci_truncate_clear;
          Alcotest.test_case "swap_remove" `Quick test_veci_swap_remove;
          Alcotest.test_case "conversions" `Quick test_veci_conversions_iter_exists;
          Alcotest.test_case "bounds checks" `Quick test_veci_bounds_checked;
        ] );
      ( "json",
        [
          Alcotest.test_case "render" `Quick test_json_render;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
          Alcotest.test_case "string escaping" `Quick test_json_escaping;
          Alcotest.test_case "parse values" `Quick test_json_parse_values;
          Alcotest.test_case "parse int vs float" `Quick
            test_json_parse_int_vs_float;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "nesting depth cap" `Quick test_json_depth_limit;
          Alcotest.test_case "pretty render" `Quick test_json_pretty;
        ] );
      ( "digest",
        [
          Alcotest.test_case "string digest" `Quick test_digest_string;
          Alcotest.test_case "canonical json" `Quick test_digest_canonical;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_metrics_counter_basics;
          Alcotest.test_case "scope isolation" `Quick test_metrics_scope_isolation;
          Alcotest.test_case "kind clash rejected" `Quick test_metrics_kind_clash;
          Alcotest.test_case "disabled sink is free" `Quick
            test_metrics_disabled_sink_free;
          Alcotest.test_case "timer distribution" `Quick test_metrics_timer_dist;
          Alcotest.test_case "span nesting" `Quick test_metrics_span_nesting;
          Alcotest.test_case "counter deltas" `Quick test_metrics_counter_deltas;
          Alcotest.test_case "jobs determinism" `Quick
            test_metrics_jobs_determinism;
          Alcotest.test_case "json round-trip" `Quick test_metrics_json_roundtrip;
        ] );
      ( "bench_diff",
        [
          Alcotest.test_case "within tolerance passes" `Quick
            test_diff_tolerance_pass;
          Alcotest.test_case "wall regression fails" `Quick
            test_diff_wall_regression;
          Alcotest.test_case "counter drift fails" `Quick
            test_diff_counter_regression;
          Alcotest.test_case "missing counter fails" `Quick
            test_diff_missing_metric;
          Alcotest.test_case "missing section fails" `Quick
            test_diff_missing_section;
          Alcotest.test_case "malformed doc is an error" `Quick
            test_diff_malformed;
          Alcotest.test_case "new counter strict vs --allow-new" `Quick
            test_diff_new_counter;
          Alcotest.test_case "new section is informational" `Quick
            test_diff_new_section_informational;
        ] );
      ( "limits",
        [
          Alcotest.test_case "none" `Quick test_limits_none;
          Alcotest.test_case "budgets" `Quick test_limits_budgets;
          Alcotest.test_case "cancel flag" `Quick test_limits_cancel;
          Alcotest.test_case "with_cancel layers flags" `Quick
            test_limits_with_cancel;
          Alcotest.test_case "deadline" `Quick test_limits_deadline;
          Alcotest.test_case "note counters" `Quick test_limits_notes_counters;
        ] );
      ( "share_buffer",
        [
          Alcotest.test_case "push/drain order" `Quick
            test_share_buffer_push_drain_order;
          Alcotest.test_case "drop when full" `Quick
            test_share_buffer_drops_when_full;
          Alcotest.test_case "capacity validated" `Quick
            test_share_buffer_invalid_capacity;
          Alcotest.test_case "concurrent pushes" `Quick
            test_share_buffer_concurrent_pushes;
        ] );
      ( "faults",
        [
          Alcotest.test_case "disabled by default" `Quick
            test_faults_disabled_by_default;
          Alcotest.test_case "deterministic decisions" `Quick
            test_faults_deterministic;
          Alcotest.test_case "rate extremes" `Quick test_faults_rate_extremes;
          Alcotest.test_case "site filter" `Quick test_faults_site_filter;
          Alcotest.test_case "inject payload" `Quick test_faults_inject_payload;
          Alcotest.test_case "with_config restores" `Quick
            test_faults_with_config_restores;
        ] );
      ( "pool_result",
        [
          Alcotest.test_case "all Ok in order" `Quick test_pool_map_result_ok;
          Alcotest.test_case "errors captured per task" `Quick
            test_pool_map_result_captures_errors;
          Alcotest.test_case "retries recover injections" `Quick
            test_pool_map_result_retries_recover;
          Alcotest.test_case "injected errors are deterministic" `Quick
            test_pool_map_result_injected_errors;
          Alcotest.test_case "retry counter" `Quick
            test_pool_map_result_retry_counter;
          Alcotest.test_case "attempts exhausted" `Quick
            test_pool_run_task_result_attempts;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "record/find/resume round-trip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "resume:false truncates" `Quick
            test_checkpoint_truncate_without_resume;
          Alcotest.test_case "torn tail tolerated" `Quick test_checkpoint_torn_tail;
          Alcotest.test_case "skip counter" `Quick test_checkpoint_skip_counter;
          Alcotest.test_case "flush_now after close" `Quick
            test_checkpoint_flush_now_safe;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "combi",
        [
          Alcotest.test_case "choose values" `Quick test_choose_values;
          Alcotest.test_case "k_subsets enumeration" `Quick test_k_subsets_enumeration;
          Alcotest.test_case "k_subsets edges" `Quick test_k_subsets_edge_cases;
          Alcotest.test_case "fold matches list" `Quick test_fold_k_subsets_matches_list;
          Alcotest.test_case "cartesian product" `Quick test_cartesian_product;
          Alcotest.test_case "fold_cartesian matches" `Quick test_fold_cartesian_matches_list;
          Alcotest.test_case "product_size saturates" `Quick test_product_size_saturates;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "ratio" `Quick test_stats_ratio;
          Alcotest.test_case "geomean domain" `Quick test_geomean_rejects_nonpositive;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "mismatched row" `Quick test_table_mismatched_row;
          Alcotest.test_case "log bar" `Quick test_log_bar;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_choose_symmetry; qcheck_k_subsets_count; qcheck_rng_int_bounds;
            qcheck_shuffle_multiset; qcheck_pool_exactly_once;
            qcheck_pool_matches_list_map; qcheck_pool_exception_cleanup;
            qcheck_json_roundtrip; qcheck_json_pretty_roundtrip;
            qcheck_digest_canonical; qcheck_metrics_jobs_invariant ] );
    ]
