module Rng = Rb_util.Rng
module Combi = Rb_util.Combi
module Stats = Rb_util.Stats
module Table = Rb_util.Table
module Pool = Rb_util.Pool
module Json = Rb_util.Json

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ Rng *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_int_in () =
  let rng = Rng.create 3 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 10 14 in
    Alcotest.(check bool) "bounds" true (v >= 10 && v <= 14);
    seen.(v - 10) <- true
  done;
  Alcotest.(check bool) "all values reached" true (Array.for_all Fun.id seen)

let test_rng_copy_independent () =
  let a = Rng.create 5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "split streams differ" true !differs

let test_rng_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 13 in
  let n = 20_000 in
  let values = List.init n (fun _ -> Rng.gaussian rng ~mean:10.0 ~stdev:2.0) in
  let mean = Stats.mean values in
  let stdev = Stats.stdev values in
  Alcotest.(check bool) "mean near 10" true (abs_float (mean -. 10.0) < 0.1);
  Alcotest.(check bool) "stdev near 2" true (abs_float (stdev -. 2.0) < 0.1)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 17 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "multiset preserved" (Array.init 50 Fun.id) sorted;
  Alcotest.(check bool) "actually moved something" true (arr <> Array.init 50 Fun.id)

(* ---------------------------------------------------------------- Combi *)

let test_choose_values () =
  List.iter
    (fun (n, k, expect) -> Alcotest.(check int) (Printf.sprintf "C(%d,%d)" n k) expect (Combi.choose n k))
    [ (0, 0, 1); (5, 0, 1); (5, 5, 1); (5, 2, 10); (10, 3, 120); (10, 2, 45);
      (5, 6, 0); (5, -1, 0); (52, 5, 2598960) ]

let test_k_subsets_enumeration () =
  let subsets = Combi.k_subsets [| 1; 2; 3; 4 |] 2 in
  Alcotest.(check int) "count" 6 (List.length subsets);
  Alcotest.(check (list (array int)))
    "lexicographic order"
    [ [| 1; 2 |]; [| 1; 3 |]; [| 1; 4 |]; [| 2; 3 |]; [| 2; 4 |]; [| 3; 4 |] ]
    subsets

let test_k_subsets_edge_cases () =
  Alcotest.(check (list (array int))) "k=0" [ [||] ] (Combi.k_subsets [| 1; 2 |] 0);
  Alcotest.(check (list (array int))) "k=n" [ [| 1; 2 |] ] (Combi.k_subsets [| 1; 2 |] 2);
  Alcotest.(check (list (array int))) "k>n" [] (Combi.k_subsets [| 1; 2 |] 3)

let test_fold_k_subsets_matches_list () =
  let arr = Array.init 7 Fun.id in
  for k = 0 to 7 do
    let from_fold =
      Combi.fold_k_subsets arr k ~init:[] ~f:(fun acc s -> Array.copy s :: acc)
      |> List.rev
    in
    Alcotest.(check (list (array int)))
      (Printf.sprintf "k=%d" k) (Combi.k_subsets arr k) from_fold
  done

let test_cartesian_product () =
  Alcotest.(check (list (list int)))
    "2x2" [ [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ] ]
    (Combi.cartesian_product [ [ 1; 2 ]; [ 3; 4 ] ]);
  Alcotest.(check (list (list int))) "empty product" [ [] ] (Combi.cartesian_product []);
  Alcotest.(check (list (list int))) "empty factor" [] (Combi.cartesian_product [ [ 1 ]; [] ])

let test_fold_cartesian_matches_list () =
  let choices = [| [| 1; 2 |]; [| 3 |]; [| 4; 5; 6 |] |] in
  let tuples =
    Combi.fold_cartesian choices ~init:[] ~f:(fun acc t -> Array.to_list t :: acc)
    |> List.rev
  in
  Alcotest.(check (list (list int)))
    "same as list product"
    (Combi.cartesian_product (Array.to_list (Array.map Array.to_list choices)))
    tuples

let test_product_size_saturates () =
  Alcotest.(check int) "normal" 24 (Combi.product_size [ 2; 3; 4 ]);
  Alcotest.(check int) "zero" 0 (Combi.product_size [ 5; 0 ]);
  Alcotest.(check int) "saturation" max_int
    (Combi.product_size [ max_int / 2; 3 ])

(* ---------------------------------------------------------------- Stats *)

let test_stats_basics () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "mean empty" 0.0 (Stats.mean []);
  check_float "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  check_float "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "median even" 2.5 (Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "stdev" 1.0 (Stats.stdev [ 1.0; 2.0; 3.0 ]);
  check_float "min" 1.0 (Stats.minimum [ 2.0; 1.0; 3.0 ]);
  check_float "max" 3.0 (Stats.maximum [ 2.0; 1.0; 3.0 ])

let test_stats_ratio () =
  check_float "normal" 2.0 (Stats.ratio ~num:4.0 ~den:2.0);
  check_float "0/0" 1.0 (Stats.ratio ~num:0.0 ~den:0.0);
  Alcotest.(check bool) "x/0 infinite" true (Stats.ratio ~num:3.0 ~den:0.0 = infinity)

let test_geomean_rejects_nonpositive () =
  Alcotest.check_raises "zero" (Invalid_argument "Stats.geomean: non-positive value")
    (fun () -> ignore (Stats.geomean [ 1.0; 0.0 ]))

(* ---------------------------------------------------------------- Table *)

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Table.add_row t ~label:"row1" ~values:[ 1.5; 2.25 ];
  Table.add_text_row t ~label:"row2" ~cells:[ "x"; "y" ];
  let s = Table.render t in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) (fragment ^ " present") true
        (contains ~affix:fragment s))
    [ "demo"; "row1"; "1.50"; "2.25"; "row2"; "x" ]

let test_table_mismatched_row () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Table.add_text_row: cell count mismatch")
    (fun () -> Table.add_row t ~label:"r" ~values:[ 1.0 ])

let test_log_bar () =
  Alcotest.(check string) "1x is empty" "" (Table.log_bar ~width:30 1.0);
  Alcotest.(check int) "1000x fills" 30 (String.length (Table.log_bar ~width:30 1000.0));
  Alcotest.(check int) "10x is a third" 10 (String.length (Table.log_bar ~width:30 10.0));
  Alcotest.(check string) "sub-1 clamps" "" (Table.log_bar ~width:30 0.5)

(* ----------------------------------------------------------------- Pool *)

let test_pool_map_matches_sequential () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let arr = Array.init 100 Fun.id in
      let f x = (x * x) + 1 in
      Alcotest.(check (array int))
        "map_array" (Array.map f arr)
        (Pool.map_array pool ~f arr);
      let l = List.init 57 Fun.id in
      Alcotest.(check (list int)) "map_list" (List.map f l) (Pool.map_list pool ~f l))

let test_pool_jobs_one_inline () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs clamp" 1 (Pool.jobs pool);
      let self = Domain.self () in
      let domains =
        Pool.map_array pool ~f:(fun _ -> Domain.self ()) (Array.make 8 ())
      in
      Alcotest.(check bool) "ran in the calling domain" true
        (Array.for_all (fun d -> d = self) domains))

let test_pool_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "lowest index" (Failure "boom5") (fun () ->
          ignore
            (Pool.map_array pool
               ~f:(fun i -> if i = 5 || i = 9 then failwith (Printf.sprintf "boom%d" i) else i)
               (Array.init 12 Fun.id))))

let test_pool_usable_after_error () =
  Pool.with_pool ~jobs:3 (fun pool ->
      (try
         ignore
           (Pool.map_array pool
              ~f:(fun i -> if i = 0 then failwith "first" else i)
              (Array.init 10 Fun.id))
       with Failure _ -> ());
      Alcotest.(check (array int))
        "pool still works" (Array.init 10 succ)
        (Pool.map_array pool ~f:succ (Array.init 10 Fun.id)))

let test_pool_nested_map () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let result =
        Pool.map_list pool
          ~f:(fun i ->
            Array.fold_left ( + ) 0
              (Pool.map_array pool ~f:(fun j -> (i * 10) + j) (Array.init 4 Fun.id)))
          [ 0; 1; 2 ]
      in
      Alcotest.(check (list int)) "nested totals" [ 6; 46; 86 ] result)

let test_pool_shutdown_rejects () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "rejects map"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map_array pool ~f:Fun.id [| 1 |]))

(* ----------------------------------------------------------------- Json *)

let test_json_render () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.String "x\"y");
        ("c", Json.List [ Json.Bool true; Json.Null; Json.Float 2.5 ]);
        ("d", Json.Float 1.0);
      ]
  in
  Alcotest.(check string) "compact render"
    {|{"a":1,"b":"x\"y","c":[true,null,2.5],"d":1.0}|}
    (Json.to_string v)

let test_json_nonfinite () =
  Alcotest.(check string) "inf as string" {|"inf"|}
    (Json.to_string (Json.float_or_string infinity));
  Alcotest.(check string) "nan as string" {|"nan"|}
    (Json.to_string (Json.float_or_string nan));
  Alcotest.(check string) "finite stays numeric" "2.0"
    (Json.to_string (Json.float_or_string 2.0));
  Alcotest.(check string) "raw non-finite Float is null" "null"
    (Json.to_string (Json.Float infinity))

let test_json_escaping () =
  Alcotest.(check string) "control characters"
    "\"a\\nb\\tc\\u0001\\\\\""
    (Json.to_string (Json.String "a\nb\tc\x01\\"));
  Alcotest.(check string) "carriage return"
    "\"x\\ry\""
    (Json.to_string (Json.String "x\ry"))

(* --------------------------------------------------------------- QCheck *)

let qcheck_choose_symmetry =
  QCheck2.Test.make ~name:"choose n k = choose n (n-k)" ~count:200
    QCheck2.Gen.(pair (int_range 0 30) (int_range 0 30))
    (fun (n, k) -> Combi.choose n k = Combi.choose n (n - k) || k > n)

let qcheck_k_subsets_count =
  QCheck2.Test.make ~name:"|k_subsets| = choose n k" ~count:50
    QCheck2.Gen.(pair (int_range 0 9) (int_range 0 9))
    (fun (n, k) ->
      let arr = Array.init n Fun.id in
      List.length (Combi.k_subsets arr k) = Combi.choose n k)

let qcheck_rng_int_bounds =
  QCheck2.Test.make ~name:"Rng.int in bounds" ~count:500
    QCheck2.Gen.(pair int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let qcheck_shuffle_multiset =
  QCheck2.Test.make ~name:"shuffle preserves elements" ~count:100
    QCheck2.Gen.(pair int (list_size (int_range 0 40) small_int))
    (fun (seed, l) ->
      let rng = Rng.create seed in
      let arr = Array.of_list l in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let qcheck_pool_exactly_once =
  QCheck2.Test.make ~name:"Pool.map runs each task exactly once, in order" ~count:30
    QCheck2.Gen.(pair (int_range 1 4) (int_range 0 200))
    (fun (jobs, n) ->
      Pool.with_pool ~jobs (fun pool ->
          let counters = Array.init n (fun _ -> Atomic.make 0) in
          let results =
            Pool.map_array pool
              ~f:(fun i ->
                Atomic.incr counters.(i);
                i * 3)
              (Array.init n Fun.id)
          in
          Array.for_all (fun c -> Atomic.get c = 1) counters
          && results = Array.init n (fun i -> i * 3)))

let qcheck_pool_matches_list_map =
  QCheck2.Test.make ~name:"Pool.map_list = List.map" ~count:30
    QCheck2.Gen.(pair (int_range 1 4) (list_size (int_range 0 60) small_int))
    (fun (jobs, l) ->
      Pool.with_pool ~jobs (fun pool ->
          Pool.map_list pool ~f:(fun x -> (2 * x) - 1) l
          = List.map (fun x -> (2 * x) - 1) l))

let qcheck_pool_exception_cleanup =
  QCheck2.Test.make ~name:"failed Pool.map leaves the pool serviceable" ~count:20
    QCheck2.Gen.(pair (int_range 1 4) (int_range 1 50))
    (fun (jobs, n) ->
      Pool.with_pool ~jobs (fun pool ->
          let raised =
            try
              ignore
                (Pool.map_array pool
                   ~f:(fun i -> if i mod 3 = 0 then failwith "task" else i)
                   (Array.init n Fun.id));
              false
            with Failure msg -> msg = "task"
          in
          raised
          && Pool.map_list pool ~f:succ (List.init n Fun.id)
             = List.init n (fun i -> i + 1)))

let () =
  Alcotest.run "rb_util"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick
            test_pool_map_matches_sequential;
          Alcotest.test_case "jobs=1 runs inline" `Quick test_pool_jobs_one_inline;
          Alcotest.test_case "lowest-index error wins" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "usable after a failed map" `Quick
            test_pool_usable_after_error;
          Alcotest.test_case "nested map runs inline" `Quick test_pool_nested_map;
          Alcotest.test_case "shutdown rejects further maps" `Quick
            test_pool_shutdown_rejects;
        ] );
      ( "json",
        [
          Alcotest.test_case "render" `Quick test_json_render;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
          Alcotest.test_case "string escaping" `Quick test_json_escaping;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "combi",
        [
          Alcotest.test_case "choose values" `Quick test_choose_values;
          Alcotest.test_case "k_subsets enumeration" `Quick test_k_subsets_enumeration;
          Alcotest.test_case "k_subsets edges" `Quick test_k_subsets_edge_cases;
          Alcotest.test_case "fold matches list" `Quick test_fold_k_subsets_matches_list;
          Alcotest.test_case "cartesian product" `Quick test_cartesian_product;
          Alcotest.test_case "fold_cartesian matches" `Quick test_fold_cartesian_matches_list;
          Alcotest.test_case "product_size saturates" `Quick test_product_size_saturates;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "ratio" `Quick test_stats_ratio;
          Alcotest.test_case "geomean domain" `Quick test_geomean_rejects_nonpositive;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "mismatched row" `Quick test_table_mismatched_row;
          Alcotest.test_case "log bar" `Quick test_log_bar;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_choose_symmetry; qcheck_k_subsets_count; qcheck_rng_int_bounds;
            qcheck_shuffle_multiset; qcheck_pool_exactly_once;
            qcheck_pool_matches_list_map; qcheck_pool_exception_cleanup ] );
    ]
