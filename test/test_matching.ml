module Hungarian = Rb_matching.Hungarian
module Cost_graph = Rb_matching.Cost_graph
module Matcher = Rb_matching.Matcher

let () = Rb_matching.Matchers.ensure_registered ()

let check_assignment name matrix expected_cols =
  let assign = Hungarian.min_cost_assignment matrix in
  Alcotest.(check (array int)) name expected_cols assign

let test_identity () =
  check_assignment "diagonal optimum"
    [| [| 0.0; 9.0; 9.0 |]; [| 9.0; 0.0; 9.0 |]; [| 9.0; 9.0; 0.0 |] |]
    [| 0; 1; 2 |]

let test_antidiagonal () =
  check_assignment "anti-diagonal optimum"
    [| [| 9.0; 9.0; 0.0 |]; [| 9.0; 0.0; 9.0 |]; [| 0.0; 9.0; 9.0 |] |]
    [| 2; 1; 0 |]

let test_classic_3x3 () =
  (* Classic example: optimal cost 5 via (0,1) (1,0) (2,2). *)
  let m = [| [| 4.0; 1.0; 3.0 |]; [| 2.0; 0.0; 5.0 |]; [| 3.0; 2.0; 2.0 |] |] in
  let assign = Hungarian.min_cost_assignment m in
  Alcotest.(check (float 1e-9)) "cost 5" 5.0 (Hungarian.assignment_weight m assign)

let test_rectangular () =
  let m = [| [| 10.0; 1.0; 10.0; 10.0 |]; [| 10.0; 10.0; 10.0; 2.0 |] |] in
  let assign = Hungarian.min_cost_assignment m in
  Alcotest.(check (array int)) "uses cheap columns" [| 1; 3 |] assign

let test_max_weight () =
  let m = [| [| 1.0; 5.0 |]; [| 6.0; 2.0 |] |] in
  let assign = Hungarian.max_weight_assignment m in
  Alcotest.(check (array int)) "max picks 5+6" [| 1; 0 |] assign;
  Alcotest.(check (float 1e-9)) "weight" 11.0 (Hungarian.assignment_weight m assign)

let test_negative_weights () =
  let m = [| [| -5.0; -1.0 |]; [| -2.0; -8.0 |] |] in
  let assign = Hungarian.max_weight_assignment m in
  Alcotest.(check (float 1e-9)) "best of a bad lot" (-3.0) (Hungarian.assignment_weight m assign)

let test_single_cell () =
  Alcotest.(check (array int)) "1x1" [| 0 |] (Hungarian.min_cost_assignment [| [| 7.0 |] |])

let test_all_equal_weights () =
  (* any perfect matching is optimal; result must still be a valid
     injective assignment *)
  let m = Array.make_matrix 4 6 3.0 in
  let assign = Hungarian.min_cost_assignment m in
  Alcotest.(check (float 1e-9)) "cost 12" 12.0 (Hungarian.assignment_weight m assign);
  Alcotest.(check int) "distinct columns" 4
    (List.length (List.sort_uniq Int.compare (Array.to_list assign)))

let test_large_random_consistency () =
  (* max on w == -(min on -w) at a size brute force cannot check *)
  let rng = Rb_util.Rng.create 2024 in
  let m = Array.init 40 (fun _ -> Array.init 40 (fun _ -> float_of_int (Rb_util.Rng.int rng 1000))) in
  let neg = Array.map (Array.map (fun w -> -.w)) m in
  let a1 = Hungarian.max_weight_assignment m in
  let a2 = Hungarian.min_cost_assignment neg in
  Alcotest.(check (float 1e-6)) "duality at 40x40"
    (Hungarian.assignment_weight m a1)
    (-. Hungarian.assignment_weight neg a2)

let test_empty_is_empty () =
  (* The 0-row matrix is a legal (empty) assignment problem: binders
     meet it on cycles with no operations of a kind. *)
  Alcotest.(check (array int)) "hungarian min" [||] (Hungarian.min_cost_assignment [||]);
  Alcotest.(check (array int)) "hungarian max" [||] (Hungarian.max_weight_assignment [||]);
  Alcotest.(check (array int)) "registry dense" [||] (Matcher.min_cost_dense [||]);
  List.iter
    (fun m ->
      Alcotest.(check (array int)) (m ^ " empty graph") [||]
        (Matcher.min_cost_assignment ~matcher:m (Cost_graph.of_rows ~cols:0 [||])))
    (Matcher.names ())

let test_validation_errors () =
  let invalid name m =
    match Hungarian.min_cost_assignment m with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  invalid "empty row" [| [||] |];
  invalid "ragged" [| [| 1.0; 2.0 |]; [| 1.0 |] |];
  invalid "too tall" [| [| 1.0 |]; [| 2.0 |] |];
  invalid "nan weight" [| [| 1.0; nan |] |];
  invalid "inf weight" [| [| infinity; 2.0 |] |];
  invalid "neg inf weight" [| [| 1.0; neg_infinity |] |];
  (match Hungarian.max_weight_assignment [| [| nan; 1.0 |] |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "max nan: expected Invalid_argument");
  (match Cost_graph.of_rows ~cols:3 [| [| (0, nan) |] |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "sparse nan: expected Invalid_argument");
  (match Cost_graph.of_rows ~cols:2 [| [| (2, 1.0) |] |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "col out of range: expected Invalid_argument");
  (match Cost_graph.of_rows ~cols:2 [| [| (0, 1.0); (0, 2.0) |] |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "duplicate arc: expected Invalid_argument")

(* {1 Registry} *)

let test_registry_names () =
  let names = Matcher.names () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [ "auction"; "hungarian"; "jv" ];
  Alcotest.(check (list string)) "sorted" (List.sort String.compare names) names;
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " described") true (Matcher.describe n <> ""))
    names;
  (match Matcher.describe "no-such-matcher" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "describe unknown: expected Invalid_argument")

let test_registry_use_default () =
  let before = Matcher.default () in
  Alcotest.(check string) "hungarian at startup" "hungarian" before;
  Fun.protect
    ~finally:(fun () -> Matcher.use before)
    (fun () ->
      Matcher.use "auction";
      Alcotest.(check string) "use sticks" "auction" (Matcher.default ());
      match Matcher.use "no-such-matcher" with
      | exception Invalid_argument _ ->
        Alcotest.(check string) "failed use leaves default" "auction" (Matcher.default ())
      | () -> Alcotest.fail "use unknown: expected Invalid_argument")

let test_infeasible () =
  (* Row 1 has no arcs: Hall violation, reported before any algorithm
     runs, under the same exception for every matcher. *)
  let g = Cost_graph.of_rows ~cols:3 [| [| (0, 1.0) |]; [||] |] in
  List.iter
    (fun m ->
      match Matcher.min_cost_assignment ~matcher:m g with
      | exception Matcher.Infeasible _ -> ()
      | _ -> Alcotest.failf "%s: expected Infeasible" m)
    (Matcher.names ());
  (* Two rows forced onto the same single column. *)
  let pinch = Cost_graph.of_rows ~cols:3 [| [| (1, 1.0) |]; [| (1, 2.0) |] |] in
  List.iter
    (fun m ->
      match Matcher.min_cost_total ~matcher:m pinch with
      | exception Matcher.Infeasible _ -> ()
      | _ -> Alcotest.failf "%s pinch: expected Infeasible" m)
    (Matcher.names ())

(* {1 Differential properties}

   The registry's correctness story: every registered matcher produces
   the same optimal total as the dense Hungarian reference, and after
   canonicalization the same byte-identical assignment. *)

let brute_force_min matrix =
  let rows = Array.length matrix and cols = if matrix = [||] then 0 else Array.length matrix.(0) in
  let best = ref infinity in
  let used = Array.make (max cols 1) false in
  let rec go row acc =
    if row = rows then (if acc < !best then best := acc)
    else
      for c = 0 to cols - 1 do
        if not used.(c) then begin
          used.(c) <- true;
          go (row + 1) (acc +. matrix.(row).(c));
          used.(c) <- false
        end
      done
  in
  go 0 0.0;
  !best

let matrix_gen =
  QCheck2.Gen.(
    bind (pair (int_range 1 6) (int_range 1 7)) (fun (rows, cols) ->
        let rows = min rows cols in
        array_size (return rows)
          (array_size (return cols) (map float_of_int (int_range 0 50)))))

(* Small weight alphabet: optima are massively tied, exercising the
   canonical tie-break rather than the optimizer. *)
let tied_matrix_gen =
  QCheck2.Gen.(
    bind (pair (int_range 1 5) (int_range 1 7)) (fun (rows, cols) ->
        let rows = min rows cols in
        array_size (return rows)
          (array_size (return cols) (map float_of_int (int_range 0 2)))))

(* Feasible sparse graphs: row r always carries its identity arc
   (column r), plus a random bundle of extras, with signed weights. *)
let sparse_graph_gen =
  QCheck2.Gen.(
    bind (pair (int_range 1 10) (int_range 0 6)) (fun (rows, extra_cols) ->
        let cols = rows + extra_cols in
        let arc_weight = map float_of_int (int_range (-30) 30) in
        let row r =
          bind (list_size (int_range 0 4) (pair (int_range 0 (cols - 1)) arc_weight))
            (fun extras ->
              bind arc_weight (fun w0 ->
                  let tbl = Hashtbl.create 8 in
                  Hashtbl.replace tbl r w0;
                  List.iter
                    (fun (c, w) -> if not (Hashtbl.mem tbl c) then Hashtbl.add tbl c w)
                    extras;
                  let arcs = Hashtbl.fold (fun c w acc -> (c, w) :: acc) tbl [] in
                  return
                    (Array.of_list
                       (List.sort (fun (a, _) (b, _) -> Int.compare a b) arcs))))
        in
        map
          (fun rows_arcs -> Cost_graph.of_rows ~cols (Array.of_list rows_arcs))
          (flatten_l (List.init rows row))))

let same_assignment a b = a = (b : int array)

let check_all_matchers_agree g =
  let reference = Matcher.min_cost_assignment ~matcher:"hungarian" g in
  let ref_total = Cost_graph.assignment_weight g reference in
  List.for_all
    (fun m ->
      let a = Matcher.min_cost_assignment ~matcher:m g in
      let total = Matcher.min_cost_total ~matcher:m g in
      same_assignment reference a
      && abs_float (Cost_graph.assignment_weight g a -. ref_total) < 1e-6
      && abs_float (total -. ref_total) < 1e-6)
    (Matcher.names ())

let qcheck_optimal_vs_brute_force =
  QCheck2.Test.make ~name:"Hungarian matches brute force" ~count:300 matrix_gen
    (fun m ->
      let assign = Hungarian.min_cost_assignment m in
      abs_float (Hungarian.assignment_weight m assign -. brute_force_min m) < 1e-6)

let qcheck_assignment_valid =
  QCheck2.Test.make ~name:"assignment is injective and total" ~count:300 matrix_gen
    (fun m ->
      let assign = Hungarian.min_cost_assignment m in
      let cols = Array.length m.(0) in
      Array.length assign = Array.length m
      && Array.for_all (fun c -> c >= 0 && c < cols) assign
      && List.length (List.sort_uniq Int.compare (Array.to_list assign))
         = Array.length assign)

let qcheck_max_min_duality =
  QCheck2.Test.make ~name:"max on negated = min" ~count:200 matrix_gen
    (fun m ->
      let neg = Array.map (Array.map (fun w -> -.w)) m in
      let min_a = Hungarian.min_cost_assignment m in
      let max_a = Hungarian.max_weight_assignment neg in
      abs_float
        (Hungarian.assignment_weight m min_a +. Hungarian.assignment_weight neg max_a)
      < 1e-6)

let qcheck_dense_differential =
  QCheck2.Test.make ~name:"all matchers agree on dense instances" ~count:300
    matrix_gen
    (fun m ->
      let g = Cost_graph.of_dense m in
      check_all_matchers_agree g
      && abs_float (Matcher.min_cost_total g -. brute_force_min m) < 1e-6)

let qcheck_tied_differential =
  QCheck2.Test.make ~name:"canonical assignment identical under heavy ties"
    ~count:300 tied_matrix_gen
    (fun m -> check_all_matchers_agree (Cost_graph.of_dense m))

let qcheck_sparse_differential =
  QCheck2.Test.make ~name:"all matchers agree on sparse instances" ~count:300
    sparse_graph_gen check_all_matchers_agree

let qcheck_dense_max_weight =
  QCheck2.Test.make ~name:"max-weight dense entry points agree" ~count:200
    matrix_gen
    (fun m ->
      let reference = Matcher.max_weight_dense ~matcher:"hungarian" m in
      List.for_all
        (fun name ->
          same_assignment reference (Matcher.max_weight_dense ~matcher:name m)
          && abs_float
               (Matcher.max_weight_total_dense ~matcher:name m
               -. Hungarian.assignment_weight m reference)
             < 1e-6)
        (Matcher.names ()))

(* Dual-feasibility contract from matcher.mli: w(i,j) >= u(i) + v(j) on
   every arc, equality on matched arcs, v(j) <= 0 with equality on
   unmatched columns. Certifies optimality without a reference solve. *)
let duals_certify name g =
  let s = Matcher.solve ~matcher:name g in
  let tol = 1e-6 in
  let ok = ref (Array.length s.Matcher.assignment = Cost_graph.rows g) in
  let matched_col = Array.make (Cost_graph.cols g) false in
  Array.iteri
    (fun r c ->
      matched_col.(c) <- true;
      let tight = ref false in
      Cost_graph.iter_row g r (fun j w ->
          if w < s.Matcher.row_duals.(r) +. s.Matcher.col_duals.(j) -. tol then ok := false;
          if j = c && abs_float (w -. (s.Matcher.row_duals.(r) +. s.Matcher.col_duals.(j))) <= tol
          then tight := true);
      if not !tight then ok := false)
    s.Matcher.assignment;
  Array.iteri
    (fun j v ->
      if v > tol then ok := false;
      if (not matched_col.(j)) && abs_float v > tol then ok := false)
    s.Matcher.col_duals;
  !ok

let qcheck_dual_contract =
  QCheck2.Test.make ~name:"optimal duals certify every matcher" ~count:200
    sparse_graph_gen
    (fun g -> List.for_all (fun m -> duals_certify m g) (Matcher.names ()))

let () =
  Alcotest.run "rb_matching"
    [
      ( "hungarian",
        [
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "anti-diagonal" `Quick test_antidiagonal;
          Alcotest.test_case "classic 3x3" `Quick test_classic_3x3;
          Alcotest.test_case "rectangular" `Quick test_rectangular;
          Alcotest.test_case "max weight" `Quick test_max_weight;
          Alcotest.test_case "negative weights" `Quick test_negative_weights;
          Alcotest.test_case "single cell" `Quick test_single_cell;
          Alcotest.test_case "all equal" `Quick test_all_equal_weights;
          Alcotest.test_case "40x40 duality" `Quick test_large_random_consistency;
          Alcotest.test_case "empty" `Quick test_empty_is_empty;
          Alcotest.test_case "validation" `Quick test_validation_errors;
        ] );
      ( "registry",
        [
          Alcotest.test_case "names and describe" `Quick test_registry_names;
          Alcotest.test_case "use and default" `Quick test_registry_use_default;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_optimal_vs_brute_force;
            qcheck_assignment_valid;
            qcheck_max_min_duality;
            qcheck_dense_differential;
            qcheck_tied_differential;
            qcheck_sparse_differential;
            qcheck_dense_max_weight;
            qcheck_dual_contract;
          ] );
    ]
