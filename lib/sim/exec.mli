(** Trace-driven execution of (possibly bound and locked) DFGs.

    Two execution modes back the whole evaluation:

    - {!eval_clean}: the golden run. Per sample, every operation's
      operand pair and result — the raw material of the K matrix
      (Sec. IV-A) and of the switching model.
    - {!eval_locked}: the wrong-key run. Operations bound to a locked
      FU produce corrupted output whenever their (possibly already
      corrupted) operands form a locked minterm, and the corruption
      propagates through the dataflow — the application-level error the
      paper is engineering. *)

module Dfg = Rb_dfg.Dfg
module Minterm = Rb_dfg.Minterm

type op_eval = { a : int; b : int; result : int }
(** One operation's operand pair and result in one sample. *)

(** Zero-allocation evaluation for sample loops.

    [make] compiles the trace's DFG once — operand sources flattened
    to int arrays, input names resolved to sample columns — and
    allocates result buffers that every subsequent {!Fast.eval_clean}
    reuses. Callers that sweep a whole trace (the K-matrix build, the
    error aggregation) pay the interpretive cost per trace instead of
    per sample and allocate nothing inside the loop. The one-shot
    {!eval_clean}/{!eval_locked} functions below stay as conveniences
    for single-sample callers. *)
module Fast : sig
  type t

  val make : Trace.t -> t
  (** Compile the trace's DFG. O(ops), including the per-input name
      lookups the evaluation loop then never repeats. *)

  val n_ops : t -> int

  val eval_clean : t -> sample:int -> unit
  (** Golden evaluation of one sample into the internal buffers. *)

  val a : t -> int array
  (** Left operands of the last evaluation, indexed by op id. The
      buffer is owned by [t] and overwritten by the next evaluation —
      read, don't keep. *)

  val b : t -> int array
  (** Right operands; same ownership rules as {!a}. *)

  val results : t -> int array
  (** Results; same ownership rules as {!a}. *)
end

val eval_clean : Trace.t -> sample:int -> op_eval array
(** Golden evaluation of one sample, indexed by operation id. *)

val eval_locked :
  Trace.t ->
  sample:int ->
  fu_of_op:int array ->
  config:Rb_locking.Config.t ->
  op_eval array * int
(** Wrong-key evaluation of one sample under a binding ([fu_of_op]
    maps operation id to FU id) and a locking configuration. Returns
    the per-operation evaluations (with corruption propagated) and the
    number of error-injection events (locked-FU executions whose
    operand minterm was locked). *)

type error_report = {
  samples : int;  (** trace length *)
  error_events : int;  (** locked-input hits during faulty execution *)
  clean_hits : int;  (** locked-input hits during golden execution — the realized value of cost Eqn. 2 *)
  corrupted_output_words : int;  (** output words differing from golden, summed over samples *)
  corrupted_samples : int;  (** samples with at least one wrong output *)
  corrupted_cycles : int;  (** (sample, cycle) pairs with >= 1 injection *)
  max_consecutive_cycles : int;  (** longest error burst within a sample — the "quality" notion of Sec. III *)
}

val application_errors :
  Rb_sched.Schedule.t ->
  Trace.t ->
  fu_of_op:int array ->
  config:Rb_locking.Config.t ->
  error_report
(** Run the whole trace both clean and locked and aggregate the
    application-level error metrics. Raises [Invalid_argument] if the
    trace and schedule wrap different DFGs or the binding array length
    differs from the operation count. *)
