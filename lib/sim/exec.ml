module Dfg = Rb_dfg.Dfg
module Minterm = Rb_dfg.Minterm
module Word = Rb_dfg.Word
module Schedule = Rb_sched.Schedule
module Config = Rb_locking.Config

type op_eval = { a : int; b : int; result : int }

(* The simulator is the innermost hot loop of every experiment, so the
   counters count whole evaluations and flush op totals once per call
   rather than bumping inside the per-op loop. *)
module Metrics = Rb_util.Metrics

let m_clean_evals = Metrics.counter ~scope:"sim" "clean_evals"
let m_locked_evals = Metrics.counter ~scope:"sim" "locked_evals"
let m_op_evals = Metrics.counter ~scope:"sim" "op_evals"
let m_injections = Metrics.counter ~scope:"sim" "injections"
let m_error_reports = Metrics.counter ~scope:"sim" "error_reports"

(* ------------------------------------------------------------ fast core *)

(* Operand source codes for the compiled plan. *)
let src_input = 0
let src_const = 1
let src_op = 2

module Fast = struct
  (* A DFG compiled to struct-of-arrays form, plus result buffers
     reused across samples. The interpretive loop in the old code paid
     a [Dfg.op] record load, two [operand] constructor matches and —
     for input operands — a per-op hashtable lookup of the input name,
     for every op of every sample. Compiling once per trace moves all
     of that out of the sample loop: evaluating a sample is then a
     single pass over flat int arrays with no allocation at all. *)
  type t = {
    trace : Trace.t;
    n : int;
    kind : int array; (* 0 = add, 1 = mul *)
    a_src : int array; (* src_input / src_const / src_op *)
    a_ix : int array; (* sample column | constant value | op id *)
    b_src : int array;
    b_ix : int array;
    a : int array; (* operand/result buffers of the last eval *)
    b : int array;
    r : int array;
  }

  let compile_operand trace = function
    | Dfg.Input name -> (src_input, Trace.input_index trace name)
    | Dfg.Const c -> (src_const, Word.clamp c)
    | Dfg.Op id -> (src_op, id)

  let make trace =
    let dfg = Trace.dfg trace in
    let n = Dfg.op_count dfg in
    let kind = Array.make n 0 in
    let a_src = Array.make n 0 in
    let a_ix = Array.make n 0 in
    let b_src = Array.make n 0 in
    let b_ix = Array.make n 0 in
    for id = 0 to n - 1 do
      let o = Dfg.op dfg id in
      kind.(id) <- (match o.kind with Dfg.Add -> 0 | Dfg.Mul -> 1);
      let sa, xa = compile_operand trace o.lhs in
      a_src.(id) <- sa;
      a_ix.(id) <- xa;
      let sb, xb = compile_operand trace o.rhs in
      b_src.(id) <- sb;
      b_ix.(id) <- xb
    done;
    {
      trace;
      n;
      kind;
      a_src;
      a_ix;
      b_src;
      b_ix;
      a = Array.make n 0;
      b = Array.make n 0;
      r = Array.make n 0;
    }

  let n_ops t = t.n
  let a t = t.a
  let b t = t.b
  let results t = t.r

  (* One operand: every source is an int-array read (the sample row for
     inputs, the result buffer for op references) or the constant
     itself. All three are clamped to the word range already, so the
     arithmetic below can pack minterms with plain shifts. *)
  let[@inline] operand row r src ix =
    if src = src_op then Array.unsafe_get r ix
    else if src = src_input then Array.unsafe_get row ix
    else ix

  (* Golden pass over one sample row into caller-supplied buffers. *)
  let eval_into t ~row ~a ~b ~r =
    let kind = t.kind in
    let a_src = t.a_src and a_ix = t.a_ix in
    let b_src = t.b_src and b_ix = t.b_ix in
    for id = 0 to t.n - 1 do
      let av =
        operand row r (Array.unsafe_get a_src id) (Array.unsafe_get a_ix id)
      in
      let bv =
        operand row r (Array.unsafe_get b_src id) (Array.unsafe_get b_ix id)
      in
      Array.unsafe_set a id av;
      Array.unsafe_set b id bv;
      Array.unsafe_set r id
        (if Array.unsafe_get kind id = 0 then Word.add av bv else Word.mul av bv)
    done

  let eval_clean t ~sample =
    eval_into t ~row:(Trace.sample t.trace sample) ~a:t.a ~b:t.b ~r:t.r;
    Metrics.incr m_clean_evals;
    Metrics.add m_op_evals t.n
end

(* Per-op locked-minterm lookup tables. [Config.is_locked_input] is a
   [List.assoc] over the locked FUs followed by a [Minterm.Set.mem] —
   fine once, ruinous once per op per sample. A minterm is
   [2 * Word.width] bits, so each locked FU's set flattens into a 64 KB
   byte table and the per-op query becomes one byte load. Ops on
   unlocked FUs share a single all-zero table, which keeps the hot
   loop free of any "is this FU locked" branch. *)
let table_size = 1 lsl (2 * Word.width)

let locked_tables config ~fu_of_op n =
  let zero = Bytes.make table_size '\000' in
  let by_fu = Hashtbl.create 8 in
  let table_of fu =
    match Hashtbl.find_opt by_fu fu with
    | Some t -> t
    | None ->
      let set = Config.minterms_of config fu in
      let t =
        if Minterm.Set.is_empty set then zero
        else begin
          let t = Bytes.make table_size '\000' in
          Minterm.Set.iter (fun m -> Bytes.set t (Minterm.to_int m) '\001') set;
          t
        end
      in
      Hashtbl.add by_fu fu t;
      t
  in
  Array.init n (fun id -> table_of fu_of_op.(id))

(* Faulty pass: same shape as {!Fast.eval_into}, plus corruption of
   locked minterms (on the possibly-already-corrupted operand stream,
   so errors propagate through the dataflow). Returns the injection
   count. *)
let eval_locked_into (f : Fast.t) ~row ~tables ~a ~b ~r =
  let kind = f.Fast.kind in
  let a_src = f.Fast.a_src and a_ix = f.Fast.a_ix in
  let b_src = f.Fast.b_src and b_ix = f.Fast.b_ix in
  let injections = ref 0 in
  for id = 0 to f.Fast.n - 1 do
    let av =
      Fast.operand row r (Array.unsafe_get a_src id) (Array.unsafe_get a_ix id)
    in
    let bv =
      Fast.operand row r (Array.unsafe_get b_src id) (Array.unsafe_get b_ix id)
    in
    Array.unsafe_set a id av;
    Array.unsafe_set b id bv;
    let clean =
      if Array.unsafe_get kind id = 0 then Word.add av bv else Word.mul av bv
    in
    let m = (av lsl Word.width) lor bv in
    let result =
      if Bytes.unsafe_get (Array.unsafe_get tables id) m <> '\000' then begin
        incr injections;
        Config.corrupt clean
      end
      else clean
    in
    Array.unsafe_set r id result
  done;
  !injections

(* --------------------------------------------------- compatibility API *)

let to_op_evals n a b r =
  Array.init n (fun id -> { a = a.(id); b = b.(id); result = r.(id) })

let eval_clean trace ~sample =
  let f = Fast.make trace in
  Fast.eval_clean f ~sample;
  to_op_evals f.Fast.n f.Fast.a f.Fast.b f.Fast.r

let eval_locked trace ~sample ~fu_of_op ~config =
  let f = Fast.make trace in
  if Array.length fu_of_op <> f.Fast.n then
    invalid_arg "Exec.eval_locked: binding width";
  let tables = locked_tables config ~fu_of_op f.Fast.n in
  let injections =
    eval_locked_into f ~row:(Trace.sample trace sample) ~tables ~a:f.Fast.a
      ~b:f.Fast.b ~r:f.Fast.r
  in
  Metrics.incr m_locked_evals;
  Metrics.add m_op_evals f.Fast.n;
  Metrics.add m_injections injections;
  (to_op_evals f.Fast.n f.Fast.a f.Fast.b f.Fast.r, injections)

type error_report = {
  samples : int;
  error_events : int;
  clean_hits : int;
  corrupted_output_words : int;
  corrupted_samples : int;
  corrupted_cycles : int;
  max_consecutive_cycles : int;
}

let application_errors schedule trace ~fu_of_op ~config =
  let dfg = Trace.dfg trace in
  if Dfg.name (Schedule.dfg schedule) <> Dfg.name dfg then
    invalid_arg "Exec.application_errors: schedule/trace DFG mismatch";
  let n = Dfg.op_count dfg in
  if Array.length fu_of_op <> n then
    invalid_arg "Exec.application_errors: binding width";
  let f = Fast.make trace in
  let tables = locked_tables config ~fu_of_op n in
  let cycle_of = Array.init n (Schedule.cycle_of schedule) in
  let out_ids = Array.of_list (Dfg.outputs dfg) in
  (* Faulty-run buffers; the golden run uses the plan's own. All are
     reused across samples, so the per-sample loop never allocates. *)
  let fa = Array.make n 0 and fb = Array.make n 0 and fr = Array.make n 0 in
  let n_samples = Trace.length trace in
  let error_events = ref 0 in
  let clean_hits = ref 0 in
  let corrupted_output_words = ref 0 in
  let corrupted_samples = ref 0 in
  let corrupted_cycles = ref 0 in
  let max_burst = ref 0 in
  let n_cycles = Schedule.n_cycles schedule in
  let cycle_hit = Array.make n_cycles false in
  for s = 0 to n_samples - 1 do
    let row = Trace.sample trace s in
    let ga = f.Fast.a and gb = f.Fast.b and gr = f.Fast.r in
    Fast.eval_into f ~row ~a:ga ~b:gb ~r:gr;
    let injections = eval_locked_into f ~row ~tables ~a:fa ~b:fb ~r:fr in
    error_events := !error_events + injections;
    (* One fused stats pass per sample. The old code re-derived the
       injection sites with two more [is_locked_input] sweeps (one
       over the golden stream for clean hits, one over the faulty
       stream for the cycle map); here each op costs exactly two byte
       loads — one per stream. *)
    Array.fill cycle_hit 0 n_cycles false;
    for id = 0 to n - 1 do
      let tbl = Array.unsafe_get tables id in
      let gm =
        (Array.unsafe_get ga id lsl Word.width) lor Array.unsafe_get gb id
      in
      (* Clean hits: Eqn. 2 realized on the golden value stream. *)
      if Bytes.unsafe_get tbl gm <> '\000' then incr clean_hits;
      let fm =
        (Array.unsafe_get fa id lsl Word.width) lor Array.unsafe_get fb id
      in
      if Bytes.unsafe_get tbl fm <> '\000' then
        Array.unsafe_set cycle_hit (Array.unsafe_get cycle_of id) true
    done;
    (* Output corruption. *)
    let wrong_words = ref 0 in
    Array.iter (fun out -> if gr.(out) <> fr.(out) then incr wrong_words) out_ids;
    corrupted_output_words := !corrupted_output_words + !wrong_words;
    if !wrong_words > 0 then incr corrupted_samples;
    (* Burst statistics from the per-cycle injection map. *)
    let burst = ref 0 in
    Array.iter
      (fun hit ->
        if hit then begin
          incr burst;
          incr corrupted_cycles;
          if !burst > !max_burst then max_burst := !burst
        end
        else burst := 0)
      cycle_hit
  done;
  (* Counter totals match the unfused implementation (which ran
     [eval_clean] and [eval_locked] per sample), so metric baselines
     stay comparable. *)
  Metrics.add m_clean_evals n_samples;
  Metrics.add m_locked_evals n_samples;
  Metrics.add m_op_evals (2 * n * n_samples);
  Metrics.add m_injections !error_events;
  Metrics.incr m_error_reports;
  {
    samples = n_samples;
    error_events = !error_events;
    clean_hits = !clean_hits;
    corrupted_output_words = !corrupted_output_words;
    corrupted_samples = !corrupted_samples;
    corrupted_cycles = !corrupted_cycles;
    max_consecutive_cycles = !max_burst;
  }
