module Dfg = Rb_dfg.Dfg
module Minterm = Rb_dfg.Minterm
module Schedule = Rb_sched.Schedule
module Config = Rb_locking.Config

type op_eval = { a : int; b : int; result : int }

(* The simulator is the innermost hot loop of every experiment, so the
   counters count whole evaluations and flush op totals once per call
   rather than bumping inside the per-op loop. *)
module Metrics = Rb_util.Metrics

let m_clean_evals = Metrics.counter ~scope:"sim" "clean_evals"
let m_locked_evals = Metrics.counter ~scope:"sim" "locked_evals"
let m_op_evals = Metrics.counter ~scope:"sim" "op_evals"
let m_injections = Metrics.counter ~scope:"sim" "injections"
let m_error_reports = Metrics.counter ~scope:"sim" "error_reports"

let operand_value trace ~sample results = function
  | Dfg.Input name -> Trace.input_value trace ~sample ~input:name
  | Dfg.Const c -> c
  | Dfg.Op id -> results.(id).result

let eval_clean trace ~sample =
  let dfg = Trace.dfg trace in
  let n = Dfg.op_count dfg in
  let results = Array.make n { a = 0; b = 0; result = 0 } in
  for id = 0 to n - 1 do
    let o = Dfg.op dfg id in
    let a = operand_value trace ~sample results o.lhs in
    let b = operand_value trace ~sample results o.rhs in
    results.(id) <- { a; b; result = Dfg.eval_kind o.kind a b }
  done;
  Metrics.incr m_clean_evals;
  Metrics.add m_op_evals n;
  results

let eval_locked trace ~sample ~fu_of_op ~config =
  let dfg = Trace.dfg trace in
  let n = Dfg.op_count dfg in
  if Array.length fu_of_op <> n then invalid_arg "Exec.eval_locked: binding width";
  let results = Array.make n { a = 0; b = 0; result = 0 } in
  let injections = ref 0 in
  for id = 0 to n - 1 do
    let o = Dfg.op dfg id in
    let a = operand_value trace ~sample results o.lhs in
    let b = operand_value trace ~sample results o.rhs in
    let clean = Dfg.eval_kind o.kind a b in
    let fu = fu_of_op.(id) in
    let result =
      if Config.is_locked_input config ~fu (Minterm.pack a b) then begin
        incr injections;
        Config.corrupt clean
      end
      else clean
    in
    results.(id) <- { a; b; result }
  done;
  Metrics.incr m_locked_evals;
  Metrics.add m_op_evals n;
  Metrics.add m_injections !injections;
  (results, !injections)

type error_report = {
  samples : int;
  error_events : int;
  clean_hits : int;
  corrupted_output_words : int;
  corrupted_samples : int;
  corrupted_cycles : int;
  max_consecutive_cycles : int;
}

let application_errors schedule trace ~fu_of_op ~config =
  let dfg = Trace.dfg trace in
  if Dfg.name (Schedule.dfg schedule) <> Dfg.name dfg then
    invalid_arg "Exec.application_errors: schedule/trace DFG mismatch";
  let n = Dfg.op_count dfg in
  if Array.length fu_of_op <> n then
    invalid_arg "Exec.application_errors: binding width";
  let n_samples = Trace.length trace in
  let error_events = ref 0 in
  let clean_hits = ref 0 in
  let corrupted_output_words = ref 0 in
  let corrupted_samples = ref 0 in
  let corrupted_cycles = ref 0 in
  let max_burst = ref 0 in
  let n_cycles = Schedule.n_cycles schedule in
  let cycle_hit = Array.make n_cycles false in
  for s = 0 to n_samples - 1 do
    let golden = eval_clean trace ~sample:s in
    let faulty, injections = eval_locked trace ~sample:s ~fu_of_op ~config in
    error_events := !error_events + injections;
    (* Clean hits: Eqn. 2 realized on the golden value stream. *)
    for id = 0 to n - 1 do
      let g = golden.(id) in
      let fu = fu_of_op.(id) in
      if Config.is_locked_input config ~fu (Minterm.pack g.a g.b) then incr clean_hits
    done;
    (* Output corruption. *)
    let wrong_words =
      List.fold_left
        (fun acc out ->
          if golden.(out).result <> faulty.(out).result then acc + 1 else acc)
        0 (Dfg.outputs dfg)
    in
    corrupted_output_words := !corrupted_output_words + wrong_words;
    if wrong_words > 0 then incr corrupted_samples;
    (* Per-cycle injection map for burst statistics. *)
    Array.fill cycle_hit 0 n_cycles false;
    for id = 0 to n - 1 do
      let f = faulty.(id) in
      let fu = fu_of_op.(id) in
      if Config.is_locked_input config ~fu (Minterm.pack f.a f.b) then
        cycle_hit.(Schedule.cycle_of schedule id) <- true
    done;
    let burst = ref 0 in
    Array.iter
      (fun hit ->
        if hit then begin
          incr burst;
          incr corrupted_cycles;
          if !burst > !max_burst then max_burst := !burst
        end
        else burst := 0)
      cycle_hit
  done;
  Metrics.incr m_error_reports;
  {
    samples = n_samples;
    error_events = !error_events;
    clean_hits = !clean_hits;
    corrupted_output_words = !corrupted_output_words;
    corrupted_samples = !corrupted_samples;
    corrupted_cycles = !corrupted_cycles;
    max_consecutive_cycles = !max_burst;
  }
