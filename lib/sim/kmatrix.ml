module Dfg = Rb_dfg.Dfg
module Minterm = Rb_dfg.Minterm

type t = {
  dfg : Dfg.t;
  (* op id -> minterm counts. The buckets hold [int ref]s so that the
     build loop bumps a count with one hash probe ([find_opt] + [incr])
     instead of the find/replace double probe an immutable [int]
     payload forces. *)
  per_op : (Minterm.t, int ref) Hashtbl.t array;
}

module Metrics = Rb_util.Metrics

let m_builds = Metrics.counter ~scope:"sim" "kmatrix_builds"
let m_samples = Metrics.counter ~scope:"sim" "kmatrix_samples"
let t_build = Metrics.timer ~scope:"sim" "kmatrix_build"

let build trace =
  Metrics.incr m_builds;
  Metrics.add m_samples (Trace.length trace);
  Metrics.time t_build @@ fun () ->
  let dfg = Trace.dfg trace in
  let n = Dfg.op_count dfg in
  let per_op = Array.init n (fun _ -> Hashtbl.create 32) in
  (* One compiled evaluator for the whole sweep: operand buffers are
     reused across samples, so the loop's only allocations are the
     count refs of first-seen minterms. *)
  let fast = Exec.Fast.make trace in
  let a = Exec.Fast.a fast and b = Exec.Fast.b fast in
  for s = 0 to Trace.length trace - 1 do
    Exec.Fast.eval_clean fast ~sample:s;
    for id = 0 to n - 1 do
      let m = Minterm.pack a.(id) b.(id) in
      let table = per_op.(id) in
      match Hashtbl.find_opt table m with
      | Some r -> incr r
      | None -> Hashtbl.add table m (ref 1)
    done
  done;
  { dfg; per_op }

let of_counts dfg entries =
  let n = Dfg.op_count dfg in
  let per_op = Array.init n (fun _ -> Hashtbl.create 8) in
  List.iter
    (fun (op, counts) ->
      if op < 0 || op >= n then invalid_arg "Kmatrix.of_counts: op id";
      List.iter
        (fun (m, c) ->
          if c < 0 then invalid_arg "Kmatrix.of_counts: negative count";
          match Hashtbl.find_opt per_op.(op) m with
          | Some r -> r := !r + c
          | None -> Hashtbl.add per_op.(op) m (ref c))
        counts)
    entries;
  { dfg; per_op }

let dfg t = t.dfg

let count t m n =
  match Hashtbl.find_opt t.per_op.(n) m with Some r -> !r | None -> 0

let count_set t set n =
  Minterm.Set.fold (fun m acc -> acc + count t m n) set 0

let op_histogram t n =
  Hashtbl.fold (fun m c acc -> (m, !c) :: acc) t.per_op.(n) []
  |> List.sort (fun (m1, c1) (m2, c2) ->
         match Int.compare c2 c1 with 0 -> Minterm.compare m1 m2 | c -> c)

let total_occurrences t m =
  Array.fold_left
    (fun acc table ->
      acc + (match Hashtbl.find_opt table m with Some r -> !r | None -> 0))
    0 t.per_op

let aggregate ?kind t =
  let include_op id =
    match kind with None -> true | Some k -> (Dfg.op t.dfg id).kind = k
  in
  let totals : (Minterm.t, int) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun id table ->
      if include_op id then
        Hashtbl.iter
          (fun m c ->
            let current = Option.value (Hashtbl.find_opt totals m) ~default:0 in
            Hashtbl.replace totals m (current + !c))
          table)
    t.per_op;
  totals

let all_minterms ?kind t =
  let totals = aggregate ?kind t in
  Hashtbl.fold (fun m c acc -> (m, c) :: acc) totals []
  |> List.sort (fun (m1, c1) (m2, c2) ->
         match Int.compare c2 c1 with 0 -> Minterm.compare m1 m2 | c -> c)

let top_minterms ?kind t ~n =
  all_minterms ?kind t |> List.filteri (fun i _ -> i < n) |> List.map fst

let distinct_minterms t = Hashtbl.length (aggregate t)

let head_mass ?kind t ~n =
  let all = all_minterms ?kind t in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 all in
  if total = 0 then 0.0
  else begin
    let head =
      all |> List.filteri (fun i _ -> i < n)
      |> List.fold_left (fun acc (_, c) -> acc + c) 0
    in
    float_of_int head /. float_of_int total
  end

let op_concentration t m =
  let total = total_occurrences t m in
  if total = 0 then 0.0
  else begin
    let best = ref 0 in
    Array.iter
      (fun table ->
        let c = match Hashtbl.find_opt table m with Some r -> !r | None -> 0 in
        if c > !best then best := c)
      t.per_op;
    float_of_int !best /. float_of_int total
  end
