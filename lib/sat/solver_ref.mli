(** The seed CDCL solver, retained as a differential-testing oracle.

    {!Solver} was rewritten for speed (order-heap VSIDS, flat watch
    lists with blockers, Luby restarts, learnt-clause database
    reduction). Heuristic changes of that size cannot be reviewed by
    eye, so this module keeps the original, slower implementation —
    unmodified search behaviour, stripped of metrics and budget
    plumbing — and the QCheck differential suite checks both solvers
    return identical Sat/Unsat verdicts (with independently verified
    models) over random CNFs, including the assumption and
    incremental paths.

    Not for production call sites: it still scans every variable per
    decision and conses a list cell per propagation. *)

type t

type result = Sat | Unsat

val create : unit -> t
val new_var : t -> int
val new_vars : t -> int -> int
val add_clause : t -> int list -> unit
val solve : ?assumptions:int list -> t -> result
val value : t -> int -> bool
