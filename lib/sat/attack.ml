module Netlist = Rb_netlist.Netlist
module Lock = Rb_netlist.Lock
module Rng = Rb_util.Rng
module Metrics = Rb_util.Metrics
module Limits = Rb_util.Limits

(* Deterministic attack counters: one [dip_queries] per attack
   iteration (the paper's security unit — what Eqn. 1 predicts), one
   [oracle_queries] per oracle evaluation (DIP replays plus the
   approximate attacker's random probes). *)
let m_runs = Metrics.counter ~scope:"attack" "runs"
let m_dip_queries = Metrics.counter ~scope:"attack" "dip_queries"
let m_oracle_queries = Metrics.counter ~scope:"attack" "oracle_queries"
let m_key_extractions = Metrics.counter ~scope:"attack" "key_extractions"

type outcome =
  | Broken of { key : bool array; iterations : int }
  | Budget_exceeded of { iterations : int }
  | Solver_limit of { iterations : int; reason : Limits.reason }

(* Force at least one pair of corresponding outputs to differ: for each
   output pair (a, b) introduce d with d -> (a xor b), and require
   "some d". The reverse implication is unnecessary for a miter. *)
let add_miter_difference solver (a : Tseitin.instance) (b : Tseitin.instance) =
  let n = Array.length a.output_vars in
  let diffs =
    Array.init n (fun i ->
        let d = Solver.new_var solver in
        let x = a.output_vars.(i) and y = b.output_vars.(i) in
        Solver.add_clause solver [ -d; x; y ];
        Solver.add_clause solver [ -d; -x; -y ];
        d)
  in
  Solver.add_clause solver (Array.to_list diffs)

type miter = {
  solver : Solver.t;
  copy_a : Tseitin.instance;
  copy_b : Tseitin.instance;
  locked : Netlist.t;
  mutable history : (bool array * bool array) list;
}

let new_miter locked =
  let solver = Solver.create () in
  let copy_a = Tseitin.encode solver locked in
  let copy_b = Tseitin.encode solver locked ~input_vars:copy_a.Tseitin.input_vars in
  add_miter_difference solver copy_a copy_b;
  { solver; copy_a; copy_b; locked; history = [] }

(* Record one oracle observation: both key copies must reproduce it. *)
let add_io_pair m inputs response =
  m.history <- (inputs, response) :: m.history;
  List.iter
    (fun key_vars ->
      let inst = Tseitin.encode m.solver m.locked ~key_vars in
      Tseitin.constrain_inputs m.solver inst inputs;
      Tseitin.constrain_outputs m.solver inst response)
    [ m.copy_a.Tseitin.key_vars; m.copy_b.Tseitin.key_vars ]

(* Any key consistent with every recorded I/O pair, from a clean
   solver. The correct key satisfies all pairs, so this never fails for
   a well-formed oracle. *)
let extract_key m =
  Metrics.incr m_key_extractions;
  let key_solver = Solver.create () in
  let model = Tseitin.encode key_solver m.locked in
  List.iter
    (fun (inputs, response) ->
      let inst = Tseitin.encode key_solver m.locked ~key_vars:model.Tseitin.key_vars in
      Tseitin.constrain_inputs key_solver inst inputs;
      Tseitin.constrain_outputs key_solver inst response)
    m.history;
  (* Key extraction is never budgeted: it re-solves a conjunction of
     satisfied constraints, which the correct key satisfies by
     construction. *)
  match Solver.solve key_solver with
  | Sat ->
    Array.init (Netlist.n_keys m.locked) (fun i ->
        Solver.value key_solver model.Tseitin.key_vars.(i))
  | Unsat | Unknown _ -> assert false

let run ?(max_iterations = 100_000) ?limit ~oracle ~locked () =
  Metrics.incr m_runs;
  let m = new_miter locked in
  let n_in = Netlist.n_inputs locked in
  let rec attack_loop iterations =
    if iterations >= max_iterations then Budget_exceeded { iterations }
    else
      match Solver.solve ?limit m.solver with
      | Unsat -> Broken { key = extract_key m; iterations }
      | Unknown reason ->
        (* Degrade to a partial resilience estimate: the DIPs found so
           far are a lower bound on the scheme's iteration count. *)
        Solver_limit { iterations; reason }
      | Sat ->
        let dip =
          Array.init n_in (fun i -> Solver.value m.solver m.copy_a.Tseitin.input_vars.(i))
        in
        Metrics.incr m_dip_queries;
        Metrics.incr m_oracle_queries;
        add_io_pair m dip (oracle dip);
        attack_loop (iterations + 1)
  in
  attack_loop 0

let attack_locked ?max_iterations ?limit (locked : Lock.locked) =
  let oracle inputs =
    Netlist.eval locked.circuit ~inputs ~keys:locked.correct_key
  in
  run ?max_iterations ?limit ~oracle ~locked:locked.circuit ()

let key_is_correct (locked : Lock.locked) candidate =
  let c = locked.circuit in
  let n_in = Netlist.n_inputs c in
  if n_in > 20 then invalid_arg "Attack.key_is_correct: input space too large";
  let pack k =
    Array.to_list k
    |> List.mapi (fun i b -> if b then 1 lsl i else 0)
    |> List.fold_left ( lor ) 0
  in
  let golden = pack locked.correct_key and cand = pack candidate in
  let rec sweep x =
    if x < 0 then true
    else if
      Netlist.eval_words c ~inputs:x ~keys:golden
      <> Netlist.eval_words c ~inputs:x ~keys:cand
    then false
    else sweep (x - 1)
  in
  sweep ((1 lsl n_in) - 1)

type approximate_outcome = {
  key : bool array;
  dip_iterations : int;
  random_queries : int;
  converged : bool;
  estimated_error_rate : float;
}

let approximate ?(dip_budget = 30) ?(queries_per_round = 16) ?(estimate_samples = 2000)
    ?(seed = 97) ?limit (locked : Lock.locked) =
  let oracle inputs =
    Netlist.eval locked.Lock.circuit ~inputs ~keys:locked.Lock.correct_key
  in
  let circuit = locked.Lock.circuit in
  let n_in = Netlist.n_inputs circuit in
  let rng = Rng.create seed in
  let random_inputs () = Array.init n_in (fun _ -> Rng.bool rng) in
  let m = new_miter circuit in
  let queries = ref 0 in
  (* AppSAT-style: interleave DIP refinement with random oracle
     queries, which prune approximately-wrong keys that exact DIPs
     would take exponentially long to reach. *)
  Metrics.incr m_runs;
  let rec loop iterations =
    if iterations >= dip_budget then (iterations, false)
    else
      match Solver.solve ?limit m.solver with
      | Unsat -> (iterations, true)
      (* A budgeted solve that gives up is just another way of not
         converging; the extracted key is still the best candidate. *)
      | Unknown _ -> (iterations, false)
      | Sat ->
        let dip =
          Array.init n_in (fun i -> Solver.value m.solver m.copy_a.Tseitin.input_vars.(i))
        in
        Metrics.incr m_dip_queries;
        Metrics.incr m_oracle_queries;
        add_io_pair m dip (oracle dip);
        if (iterations + 1) mod 5 = 0 then
          for _ = 1 to queries_per_round do
            incr queries;
            Metrics.incr m_oracle_queries;
            let inputs = random_inputs () in
            add_io_pair m inputs (oracle inputs)
          done;
        loop (iterations + 1)
  in
  let dip_iterations, converged = loop 0 in
  let key = extract_key m in
  (* Estimate the residual wrong-output rate of the extracted key. *)
  let errors = ref 0 in
  for _ = 1 to estimate_samples do
    let inputs = random_inputs () in
    if Netlist.eval circuit ~inputs ~keys:key <> oracle inputs then incr errors
  done;
  {
    key;
    dip_iterations;
    random_queries = !queries;
    converged;
    estimated_error_rate = float_of_int !errors /. float_of_int estimate_samples;
  }
