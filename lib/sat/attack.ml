module Netlist = Rb_netlist.Netlist
module Lock = Rb_netlist.Lock
module Rng = Rb_util.Rng
module Metrics = Rb_util.Metrics
module Limits = Rb_util.Limits
module Pool = Rb_util.Pool

(* Deterministic attack counters: one [dip_queries] per attack
   iteration (the paper's security unit — what Eqn. 1 predicts), one
   [oracle_queries] per oracle evaluation (DIP replays plus the
   approximate attacker's random probes). [canon_solves] counts the
   per-bit assumption solves of the lex-min canonicalization. All are
   --jobs-invariant at portfolio 1; a racing portfolio makes solver-
   side counts (and [clauses_imported]) timing-dependent, which is why
   deterministic surfaces run their counters at portfolio 1. *)
let m_runs = Metrics.counter ~scope:"attack" "runs"
let m_dip_queries = Metrics.counter ~scope:"attack" "dip_queries"
let m_oracle_queries = Metrics.counter ~scope:"attack" "oracle_queries"
let m_key_extractions = Metrics.counter ~scope:"attack" "key_extractions"
let m_canon_solves = Metrics.counter ~scope:"attack" "canon_solves"
let m_clauses_imported = Metrics.counter ~scope:"attack" "clauses_imported"

type outcome =
  | Broken of { key : bool array; iterations : int }
  | Budget_exceeded of { iterations : int }
  | Solver_limit of { iterations : int; reason : Limits.reason }

(* Clause-sharing bounds: only short, low-LBD ("glue") clauses travel
   between members — they are the ones likely to prune other members'
   searches, and the bound keeps imports from bloating clause
   databases. The buffer is drained once per round; overflow drops. *)
let share_max_lbd = 4
let share_max_len = 8
let share_capacity = 4096

(* One portfolio member: a complete persistent miter. All members
   encode the identical circuit in the identical order, so their
   variable spaces are aligned — an exported clause is meaningful in
   every member verbatim, no translation table needed. *)
type member = {
  solver : Solver.t;
  inputs : int array; (* primary inputs, shared by both copies *)
  keys_a : int array;
  keys_b : int array;
  act : int;
      (* activation literal guarding the miter difference clause:
         DIP rounds solve under [act]; key extraction solves the very
         same instance under [-act], with the difference disabled *)
}

type miter = {
  locked : Netlist.t;
  members : member array;
  pool : Pool.t option;
  share : (int * int array) Pool.Share_buffer.t; (* (origin, clause) *)
  limit : Limits.t;
}

(* Force at least one pair of corresponding outputs to differ — but
   only when [act] is assumed: for each output pair (x, y) introduce d
   with d -> (x xor y), and require [act -> some d]. Guarding the
   disjunction with an activation literal is what lets the final
   key-recovery solve reuse this instance (under [-act]) instead of
   re-encoding the whole observation history from scratch. *)
let new_member locked i =
  let solver = Solver.create ~config:(Solver.diverse_config i) () in
  let a = Tseitin.encode solver locked in
  let b = Tseitin.encode solver locked ~input_vars:a.Tseitin.input_vars in
  let act = Solver.new_var solver in
  let n = Array.length a.Tseitin.output_vars in
  let diffs =
    Array.init n (fun j ->
        let d = Solver.new_var solver in
        let x = a.Tseitin.output_vars.(j) and y = b.Tseitin.output_vars.(j) in
        Solver.add_clause solver [ -d; x; y ];
        Solver.add_clause solver [ -d; -x; -y ];
        d)
  in
  Solver.add_clause solver (-act :: Array.to_list diffs);
  {
    solver;
    inputs = a.Tseitin.input_vars;
    keys_a = a.Tseitin.key_vars;
    keys_b = b.Tseitin.key_vars;
    act;
  }

let new_miter ?pool ?(portfolio = 1) ?(limit = Limits.none) locked =
  if portfolio < 1 then invalid_arg "Attack.new_miter: portfolio must be >= 1";
  {
    locked;
    members = Array.init portfolio (new_member locked);
    pool;
    share = Pool.Share_buffer.create ~capacity:share_capacity;
    limit;
  }

(* Record one oracle observation in every member: both key copies must
   reproduce it. The encoding is specialized under the known DIP, so
   each observation costs clauses only for its key-dependent cone. *)
let add_io_pair m dip response =
  Array.iter
    (fun mem ->
      Tseitin.constrain_observation mem.solver m.locked ~key_vars:mem.keys_a
        ~inputs:dip ~outputs:response;
      Tseitin.constrain_observation mem.solver m.locked ~key_vars:mem.keys_b
        ~inputs:dip ~outputs:response)
    m.members

let decisive = function Solver.Sat | Solver.Unsat -> true | Solver.Unknown _ -> false

(* One miter round.

   A single member solves directly. A portfolio races all members over
   the pool under two round-local cancel flags with asymmetric roles,
   which is what makes the race deterministic in its reported result
   (see the contract note above [run]):

   - member 0 is the {e sequence owner}: it is only ever interrupted
     by a proven Unsat (a fact about the constraint set, not about
     timing), so on Sat rounds its solve — and hence its model, the
     round's DIP — evolves exactly as at [portfolio = 1];
   - members 1..n-1 are {e helpers}: they stop as soon as member 0 is
     decisive (their own Sat models are never consumed), and their
     real contribution is racing the expensive Unsat proofs — any
     member proving Unsat ends the round for everyone, soundly, since
     all members hold logically equivalent instances.

   During the race every member exports its short learnt clauses into
   the share buffer; once every member has stopped (the map join is
   the quiescent point) the round's harvest is imported into the
   helpers. Member 0 never imports — imported clauses arrive at
   timing-dependent points and would perturb its search, breaking the
   deterministic DIP sequence.

   Budgeted rounds ({!Limits.has_budget}) tighten the contract: a
   conflict/propagation budget promises the {e same} partial result at
   every [--portfolio], but a helper can prove Unsat in wall-time the
   budget denies member 0 — reporting that Unsat would make the
   attack's outcome depend on the racers. So under a work budget
   member 0 runs with {e no} cancel flag at all (its stop point is a
   pure function of the constraint set, exactly as at
   [portfolio = 1]), a member-0 budget stop also stops the helpers,
   and the join discards helper Unsats whenever member 0 was
   budget-stopped. Helpers still race real Unsat proofs for member-0
   rounds that decide within budget, and clause sharing is unaffected
   (member 0 never imports).

   Returns the round result plus the index of the member whose
   model/proof to use: member 0 for Sat, the lowest Unsat prover for
   Unsat (the extracted key is canonical, so the choice is
   unobservable). *)
let budget_stop = function
  | Solver.Unknown (Limits.Conflicts | Limits.Propagations) -> true
  | _ -> false

let solve_round m =
  let members = m.members in
  let n = Array.length members in
  if n = 1 then
    (Solver.solve ~assumptions:[ members.(0).act ] ~limit:m.limit members.(0).solver, 0)
  else begin
    let budgeted = Limits.has_budget m.limit in
    let unsat_found = Limits.new_cancel () in
    let helpers_stop = Limits.new_cancel () in
    let solve_member i =
      let mem = members.(i) in
      let limit =
        if i > 0 then Limits.with_cancel m.limit helpers_stop
        else if budgeted then m.limit
        else Limits.with_cancel m.limit unsat_found
      in
      Solver.set_learnt_hook mem.solver
        (Some
           (fun ~lbd clause ->
             if lbd <= share_max_lbd && Array.length clause <= share_max_len then
               ignore (Pool.Share_buffer.push m.share (i, clause))));
      Fun.protect ~finally:(fun () -> Solver.set_learnt_hook mem.solver None)
      @@ fun () ->
      let r = Solver.solve ~assumptions:[ mem.act ] ~limit mem.solver in
      (match r with
      | Solver.Unsat ->
        Limits.cancel unsat_found;
        Limits.cancel helpers_stop
      | _ -> if i = 0 && (decisive r || budget_stop r) then Limits.cancel helpers_stop);
      r
    in
    let results =
      match m.pool with
      | Some pool -> Pool.map_array pool ~f:solve_member (Array.init n (fun i -> i))
      | None ->
        (* Pool-free (or nested) fallback: member 0 solves alone, and
           the helpers only get a turn — in index order — when member
           0 could not decide the round within its budget. *)
        let out = Array.make n (Solver.Unknown Limits.Cancelled) in
        out.(0) <- solve_member 0;
        if not (decisive out.(0) || budget_stop out.(0)) then
          for i = 1 to n - 1 do
            if not (Limits.cancelled helpers_stop) then out.(i) <- solve_member i
          done;
        out
    in
    List.iter
      (fun (origin, clause) ->
        let lits = Array.to_list clause in
        Array.iteri
          (fun j mem ->
            if j <> origin && j > 0 then begin
              Metrics.incr m_clauses_imported;
              Solver.add_clause mem.solver lits
            end)
          members)
      (Pool.Share_buffer.drain m.share);
    if budgeted && budget_stop results.(0) then
      (* The deterministic member ran out of budget: report exactly
         what [portfolio = 1] would, even if a helper won an Unsat
         race in the meantime. *)
      (results.(0), 0)
    else begin
      let unsat = ref (-1) in
      Array.iteri
        (fun i r -> if !unsat < 0 && r = Solver.Unsat then unsat := i)
        results;
      if !unsat >= 0 then (Solver.Unsat, !unsat) else (results.(0), 0)
    end
  end

(* Lex-min canonicalization: the lexicographically smallest assignment
   of [vars] consistent with the instance under the [prefix0]
   assumptions. A pure function of the constraint set — every clause a
   member ever imports is logically implied by that set (learnt
   clauses derive by resolution from the shared clauses), so the
   canonical element is identical in every portfolio member, whichever
   one happened to finish the final round.

   Bit i is decided by one unbudgeted assumption solve forcing it
   false under the already-decided prefix: Sat fixes false, Unsat
   fixes true. The current witness model skips most solves — a bit the
   witness already sets false needs no solve, and each Sat yields a
   fresh witness for the remaining bits; phase saving initialized to
   false biases models toward lex-min, keeping the solve count low. *)
let lex_min mem ~prefix0 ~vars =
  let n = Array.length vars in
  let wit = Array.init n (fun i -> Solver.value mem.solver vars.(i)) in
  let bits = Array.make n false in
  let prefix = ref prefix0 in
  (* reversed assumption list *)
  for i = 0 to n - 1 do
    let li = -vars.(i) in
    if not wit.(i) then prefix := li :: !prefix
    else begin
      Metrics.incr m_canon_solves;
      match Solver.solve ~assumptions:(List.rev (li :: !prefix)) mem.solver with
      | Solver.Sat ->
        for k = i + 1 to n - 1 do
          wit.(k) <- Solver.value mem.solver vars.(k)
        done;
        prefix := li :: !prefix
      | Solver.Unsat ->
        bits.(i) <- true;
        prefix := -li :: !prefix
      | Solver.Unknown _ -> assert false (* unbudgeted *)
    end
  done;
  bits

(* The canonical key: the lex-min key consistent with every recorded
   I/O pair — the same live instance solved under [-act], which
   disables the miter difference and leaves exactly the observation
   constraints on the key copies. Key extraction is never budgeted —
   the correct key satisfies every constraint by construction, so
   these solves always terminate on the instances a well-formed oracle
   produces. *)
let extract_key mem =
  Metrics.incr m_key_extractions;
  (match Solver.solve ~assumptions:[ -mem.act ] mem.solver with
  | Solver.Sat -> ()
  | Solver.Unsat | Solver.Unknown _ -> assert false);
  lex_min mem ~prefix0:[ -mem.act ] ~vars:mem.keys_a

let run ?(max_iterations = 100_000) ?limit ?pool ?(portfolio = 1) ?on_dip ~oracle
    ~locked () =
  Metrics.incr m_runs;
  let m = new_miter ?pool ~portfolio ?limit locked in
  let rec attack_loop iterations =
    if iterations >= max_iterations then Budget_exceeded { iterations }
    else begin
      let result, w = solve_round m in
      match result with
      | Solver.Unknown reason ->
        (* Degrade to a partial resilience estimate: the DIPs found so
           far are a lower bound on the scheme's iteration count. *)
        Solver_limit { iterations; reason }
      | Solver.Unsat -> Broken { key = extract_key m.members.(w); iterations }
      | Solver.Sat ->
        (* The DIP is the sequence owner's model, read directly: w = 0
           on every Sat round, and member 0's search is never
           perturbed by the portfolio, so the sequence is the
           portfolio-1 sequence. *)
        let mem = m.members.(w) in
        let dip = Array.map (Solver.value mem.solver) mem.inputs in
        Metrics.incr m_dip_queries;
        Metrics.incr m_oracle_queries;
        (match on_dip with Some f -> f (Array.copy dip) | None -> ());
        add_io_pair m dip (oracle dip);
        attack_loop (iterations + 1)
    end
  in
  attack_loop 0

let attack_locked ?max_iterations ?limit ?pool ?portfolio ?on_dip
    (locked : Lock.locked) =
  let oracle inputs =
    Netlist.eval locked.circuit ~inputs ~keys:locked.correct_key
  in
  run ?max_iterations ?limit ?pool ?portfolio ?on_dip ~oracle ~locked:locked.circuit ()

let key_is_correct (locked : Lock.locked) candidate =
  let c = locked.circuit in
  let n_in = Netlist.n_inputs c in
  if n_in > 20 then invalid_arg "Attack.key_is_correct: input space too large";
  let pack k =
    Array.to_list k
    |> List.mapi (fun i b -> if b then 1 lsl i else 0)
    |> List.fold_left ( lor ) 0
  in
  let golden = pack locked.correct_key and cand = pack candidate in
  let rec sweep x =
    if x < 0 then true
    else if
      Netlist.eval_words c ~inputs:x ~keys:golden
      <> Netlist.eval_words c ~inputs:x ~keys:cand
    then false
    else sweep (x - 1)
  in
  sweep ((1 lsl n_in) - 1)

type approximate_outcome = {
  key : bool array;
  dip_iterations : int;
  random_queries : int;
  converged : bool;
  estimated_error_rate : float;
}

let approximate ?(dip_budget = 30) ?(queries_per_round = 16) ?(estimate_samples = 2000)
    ?(seed = 97) ?limit (locked : Lock.locked) =
  let oracle inputs =
    Netlist.eval locked.Lock.circuit ~inputs ~keys:locked.Lock.correct_key
  in
  let circuit = locked.Lock.circuit in
  let n_in = Netlist.n_inputs circuit in
  let rng = Rng.create seed in
  let random_inputs () = Array.init n_in (fun _ -> Rng.bool rng) in
  let m = new_miter ?limit circuit in
  let mem = m.members.(0) in
  let queries = ref 0 in
  (* AppSAT-style: interleave DIP refinement with random oracle
     queries, which prune approximately-wrong keys that exact DIPs
     would take exponentially long to reach. The raw model DIP is used
     (no canonicalization): the approximate attacker trades rigor for
     speed, and with a single member the run is deterministic anyway. *)
  Metrics.incr m_runs;
  let rec loop iterations =
    if iterations >= dip_budget then (iterations, false)
    else
      match Solver.solve ~assumptions:[ mem.act ] ~limit:m.limit mem.solver with
      | Solver.Unsat -> (iterations, true)
      (* A budgeted solve that gives up is just another way of not
         converging; the extracted key is still the best candidate. *)
      | Solver.Unknown _ -> (iterations, false)
      | Solver.Sat ->
        let dip = Array.init n_in (fun i -> Solver.value mem.solver mem.inputs.(i)) in
        Metrics.incr m_dip_queries;
        Metrics.incr m_oracle_queries;
        add_io_pair m dip (oracle dip);
        if (iterations + 1) mod 5 = 0 then
          for _ = 1 to queries_per_round do
            incr queries;
            Metrics.incr m_oracle_queries;
            let inputs = random_inputs () in
            add_io_pair m inputs (oracle inputs)
          done;
        loop (iterations + 1)
  in
  let dip_iterations, converged = loop 0 in
  let key = extract_key mem in
  (* Estimate the residual wrong-output rate of the extracted key. *)
  let errors = ref 0 in
  for _ = 1 to estimate_samples do
    let inputs = random_inputs () in
    if Netlist.eval circuit ~inputs ~keys:key <> oracle inputs then incr errors
  done;
  {
    key;
    dip_iterations;
    random_queries = !queries;
    converged;
    estimated_error_rate = float_of_int !errors /. float_of_int estimate_samples;
  }
