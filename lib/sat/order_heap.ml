type t = {
  mutable heap : int array; (* heap slot -> variable *)
  mutable size : int;
  mutable pos : int array; (* variable -> heap slot, -1 if absent *)
  mutable act : float array; (* variable -> activity *)
  mutable nvars : int;
}

let create () =
  { heap = Array.make 8 0; size = 0; pos = Array.make 8 (-1); act = Array.make 8 0.0; nvars = 0 }

let grow arr size default =
  if Array.length arr >= size then arr
  else begin
    let bigger = Array.make (max size (2 * Array.length arr)) default in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

let in_heap t v = v <= t.nvars && t.pos.(v) >= 0

let swap t i j =
  let vi = t.heap.(i) and vj = t.heap.(j) in
  t.heap.(i) <- vj;
  t.heap.(j) <- vi;
  t.pos.(vj) <- i;
  t.pos.(vi) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.act.(t.heap.(i)) > t.act.(t.heap.(parent)) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.size then begin
    let r = l + 1 in
    let child = if r < t.size && t.act.(t.heap.(r)) > t.act.(t.heap.(l)) then r else l in
    if t.act.(t.heap.(child)) > t.act.(t.heap.(i)) then begin
      swap t i child;
      sift_down t child
    end
  end

let insert t v =
  if v < 1 || v > t.nvars then invalid_arg "Order_heap.insert";
  if t.pos.(v) < 0 then begin
    t.heap <- grow t.heap (t.size + 1) 0;
    t.heap.(t.size) <- v;
    t.pos.(v) <- t.size;
    t.size <- t.size + 1;
    sift_up t t.pos.(v)
  end

let ensure t v =
  if v > t.nvars then begin
    t.pos <- grow t.pos (v + 1) (-1);
    t.act <- grow t.act (v + 1) 0.0;
    let first = t.nvars + 1 in
    t.nvars <- v;
    for u = first to v do
      t.pos.(u) <- -1;
      t.act.(u) <- 0.0;
      insert t u
    done
  end

let pop t =
  if t.size = 0 then 0
  else begin
    let v = t.heap.(0) in
    t.size <- t.size - 1;
    t.pos.(v) <- -1;
    if t.size > 0 then begin
      let last = t.heap.(t.size) in
      t.heap.(0) <- last;
      t.pos.(last) <- 0;
      sift_down t 0
    end;
    v
  end

let size t = t.size

let activity t v =
  if v < 1 || v > t.nvars then invalid_arg "Order_heap.activity";
  t.act.(v)

let bump t v amount =
  if v < 1 || v > t.nvars then invalid_arg "Order_heap.bump";
  t.act.(v) <- t.act.(v) +. amount;
  if t.pos.(v) >= 0 then sift_up t t.pos.(v)

let set_activity t v a =
  if v < 1 || v > t.nvars then invalid_arg "Order_heap.set_activity";
  let old = t.act.(v) in
  t.act.(v) <- a;
  if t.pos.(v) >= 0 then
    if a > old then sift_up t t.pos.(v) else sift_down t t.pos.(v)

let rebuild t =
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

let rescale t factor =
  for v = 1 to t.nvars do
    t.act.(v) <- t.act.(v) *. factor
  done;
  rebuild t

let valid t =
  let ordered = ref true in
  for i = 1 to t.size - 1 do
    let parent = (i - 1) / 2 in
    if t.act.(t.heap.(parent)) < t.act.(t.heap.(i)) then ordered := false
  done;
  let indexed = ref true in
  for i = 0 to t.size - 1 do
    if t.pos.(t.heap.(i)) <> i then indexed := false
  done;
  for v = 1 to t.nvars do
    let p = t.pos.(v) in
    if p >= 0 && (p >= t.size || t.heap.(p) <> v) then indexed := false
  done;
  !ordered && !indexed
