(* The seed solver, verbatim except for the removal of the Metrics,
   Limits and Faults plumbing. Do not optimize this file: its value is
   being the independently-written implementation the fast solver is
   differentially tested against. *)

type result = Sat | Unsat

let lidx lit = if lit > 0 then 2 * lit else (2 * -lit) + 1

type t = {
  mutable nvars : int;
  mutable clauses : int array array;
  mutable n_clauses : int;
  mutable watches : int list array; (* lidx -> clause indices *)
  mutable values : int array; (* var -> -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : int array; (* var -> clause index or -1 *)
  mutable phase : bool array;
  mutable activity : float array;
  mutable var_inc : float;
  mutable trail : int array; (* assigned literals in order *)
  mutable trail_size : int;
  mutable trail_lim : int array; (* start of each decision level in trail *)
  mutable n_levels : int;
  mutable qhead : int;
  mutable root_unsat : bool;
  mutable seen : bool array;
}

let create () =
  {
    nvars = 0;
    clauses = Array.make 64 [||];
    n_clauses = 0;
    watches = Array.make 16 [];
    values = Array.make 8 (-1);
    level = Array.make 8 0;
    reason = Array.make 8 (-1);
    phase = Array.make 8 false;
    activity = Array.make 8 0.0;
    var_inc = 1.0;
    trail = Array.make 8 0;
    trail_size = 0;
    trail_lim = Array.make 8 0;
    n_levels = 0;
    qhead = 0;
    root_unsat = false;
    seen = Array.make 8 false;
  }

let grow_int_array arr size default =
  if Array.length arr >= size then arr
  else begin
    let bigger = Array.make (max size (2 * Array.length arr)) default in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

let grow_generic arr size default =
  if Array.length arr >= size then arr
  else begin
    let bigger = Array.make (max size (2 * Array.length arr)) default in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

let new_var s =
  s.nvars <- s.nvars + 1;
  let v = s.nvars in
  let cap = v + 1 in
  s.values <- grow_int_array s.values cap (-1);
  s.level <- grow_int_array s.level cap 0;
  s.reason <- grow_int_array s.reason cap (-1);
  s.phase <- grow_generic s.phase cap false;
  s.activity <- grow_generic s.activity cap 0.0;
  s.seen <- grow_generic s.seen cap false;
  s.trail <- grow_int_array s.trail (v + 1) 0;
  s.watches <- grow_generic s.watches ((2 * cap) + 2) [];
  s.values.(v) <- -1;
  s.reason.(v) <- -1;
  v

let new_vars s n =
  if n <= 0 then invalid_arg "Solver_ref.new_vars";
  let first = new_var s in
  for _ = 2 to n do
    ignore (new_var s)
  done;
  first

let lit_value s lit =
  let v = s.values.(abs lit) in
  if v = -1 then -1 else if lit > 0 then v else 1 - v

let current_level s = s.n_levels

let enqueue s lit reason_idx =
  let v = abs lit in
  s.values.(v) <- (if lit > 0 then 1 else 0);
  s.level.(v) <- current_level s;
  s.reason.(v) <- reason_idx;
  s.trail.(s.trail_size) <- lit;
  s.trail_size <- s.trail_size + 1

let push_clause s arr =
  if s.n_clauses = Array.length s.clauses then begin
    let bigger = Array.make (2 * Array.length s.clauses) [||] in
    Array.blit s.clauses 0 bigger 0 s.n_clauses;
    s.clauses <- bigger
  end;
  s.clauses.(s.n_clauses) <- arr;
  s.n_clauses <- s.n_clauses + 1;
  s.n_clauses - 1

let watch s lit ci = s.watches.(lidx lit) <- ci :: s.watches.(lidx lit)

let attach s ci =
  let c = s.clauses.(ci) in
  watch s c.(0) ci;
  watch s c.(1) ci

let add_clause s lits =
  List.iter
    (fun lit ->
      let v = abs lit in
      if v < 1 || v > s.nvars then invalid_arg "Solver_ref.add_clause: unknown variable")
    lits;
  if not s.root_unsat then begin
    assert (current_level s = 0);
    let lits = List.sort_uniq Int.compare lits in
    let tautology = List.exists (fun l -> List.mem (-l) lits) lits in
    let satisfied = List.exists (fun l -> lit_value s l = 1) lits in
    if not (tautology || satisfied) then begin
      let active = List.filter (fun l -> lit_value s l = -1) lits in
      match active with
      | [] -> s.root_unsat <- true
      | [ unit_lit ] -> enqueue s unit_lit (-1)
      | _ :: _ :: _ ->
        let arr = Array.of_list active in
        let ci = push_clause s arr in
        attach s ci
    end
  end

let var_decay = 1.0 /. 0.95

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 1 to s.nvars do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let decay_activity s = s.var_inc <- s.var_inc *. var_decay

let propagate s =
  let conflict = ref (-1) in
  while !conflict = -1 && s.qhead < s.trail_size do
    let lit = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    let false_lit = -lit in
    let wl = s.watches.(lidx false_lit) in
    s.watches.(lidx false_lit) <- [];
    let rec process = function
      | [] -> ()
      | ci :: rest ->
        let c = s.clauses.(ci) in
        if c.(0) = false_lit then begin
          c.(0) <- c.(1);
          c.(1) <- false_lit
        end;
        if lit_value s c.(0) = 1 then begin
          s.watches.(lidx false_lit) <- ci :: s.watches.(lidx false_lit);
          process rest
        end
        else begin
          let len = Array.length c in
          let rec find i =
            if i >= len then -1 else if lit_value s c.(i) <> 0 then i else find (i + 1)
          in
          let j = find 2 in
          if j >= 0 then begin
            c.(1) <- c.(j);
            c.(j) <- false_lit;
            watch s c.(1) ci;
            process rest
          end
          else begin
            s.watches.(lidx false_lit) <- ci :: s.watches.(lidx false_lit);
            if lit_value s c.(0) = 0 then begin
              List.iter
                (fun ci' ->
                  s.watches.(lidx false_lit) <- ci' :: s.watches.(lidx false_lit))
                rest;
              conflict := ci
            end
            else begin
              enqueue s c.(0) ci;
              process rest
            end
          end
        end
    in
    process wl
  done;
  !conflict

let backtrack s target_level =
  if current_level s > target_level then begin
    let bound = s.trail_lim.(target_level) in
    for i = s.trail_size - 1 downto bound do
      let v = abs s.trail.(i) in
      s.phase.(v) <- s.values.(v) = 1;
      s.values.(v) <- -1;
      s.reason.(v) <- -1
    done;
    s.trail_size <- bound;
    s.qhead <- bound;
    s.n_levels <- target_level
  end

let new_decision_level s =
  s.trail_lim <- grow_int_array s.trail_lim (s.n_levels + 1) 0;
  s.trail_lim.(s.n_levels) <- s.trail_size;
  s.n_levels <- s.n_levels + 1

let analyze s confl =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref 0 in
  let index = ref (s.trail_size - 1) in
  let clause_idx = ref confl in
  let finished = ref false in
  while not !finished do
    let c = s.clauses.(!clause_idx) in
    let start = if !p = 0 then 0 else 1 in
    for i = start to Array.length c - 1 do
      let q = c.(i) in
      let v = abs q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        bump_var s v;
        if s.level.(v) >= current_level s then incr counter
        else learnt := q :: !learnt
      end
    done;
    let rec next_seen i = if s.seen.(abs s.trail.(i)) then i else next_seen (i - 1) in
    index := next_seen !index;
    let p_lit = s.trail.(!index) in
    index := !index - 1;
    let v = abs p_lit in
    s.seen.(v) <- false;
    decr counter;
    p := p_lit;
    if !counter = 0 then finished := true
    else begin
      clause_idx := s.reason.(v);
      assert (!clause_idx >= 0)
    end
  done;
  let asserting = - !p in
  let tail = !learnt in
  List.iter (fun q -> s.seen.(abs q) <- false) tail;
  let backjump = List.fold_left (fun acc q -> max acc s.level.(abs q)) 0 tail in
  (asserting :: tail, backjump)

let record_learnt s learnt backjump =
  match learnt with
  | [] -> assert false
  | [ lit ] ->
    backtrack s 0;
    enqueue s lit (-1)
  | lit :: _ ->
    backtrack s backjump;
    let arr = Array.of_list learnt in
    let best = ref 1 in
    for i = 2 to Array.length arr - 1 do
      if s.level.(abs arr.(i)) > s.level.(abs arr.(!best)) then best := i
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!best);
    arr.(!best) <- tmp;
    let ci = push_clause s arr in
    attach s ci;
    enqueue s lit ci

let pick_branch_var s =
  let best = ref 0 in
  let best_act = ref neg_infinity in
  for v = 1 to s.nvars do
    if s.values.(v) = -1 && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  !best

exception Result of result

let solve ?(assumptions = []) s =
  if s.root_unsat then Unsat
  else begin
    List.iter
      (fun lit ->
        let v = abs lit in
        if v < 1 || v > s.nvars then invalid_arg "Solver_ref.solve: unknown assumption")
      assumptions;
    let n_assumptions = List.length assumptions in
    let assumption = Array.of_list assumptions in
    let conflict_budget = ref 100 in
    let conflicts_here = ref 0 in
    let result = ref None in
    (try
       while !result = None do
         let confl = propagate s in
         if confl >= 0 then begin
           incr conflicts_here;
           if current_level s <= n_assumptions then begin
             if current_level s = 0 then s.root_unsat <- true;
             backtrack s 0;
             raise (Result Unsat)
           end;
           let learnt, backjump = analyze s confl in
           let backjump = max backjump n_assumptions in
           let backjump = min backjump (current_level s - 1) in
           record_learnt s learnt backjump;
           decay_activity s;
           if !conflicts_here >= !conflict_budget then begin
             conflicts_here := 0;
             conflict_budget := !conflict_budget + (!conflict_budget / 2);
             backtrack s 0
           end
         end
         else if current_level s < n_assumptions then begin
           let lit = assumption.(current_level s) in
           match lit_value s lit with
           | 1 -> new_decision_level s
           | 0 ->
             backtrack s 0;
             raise (Result Unsat)
           | _ ->
             new_decision_level s;
             enqueue s lit (-1)
         end
         else begin
           let v = pick_branch_var s in
           if v = 0 then raise (Result Sat)
           else begin
             new_decision_level s;
             let lit = if s.phase.(v) then v else -v in
             enqueue s lit (-1)
           end
         end
       done
     with Result r -> result := Some r);
    match !result with
    | Some Sat ->
      for v = 1 to s.nvars do
        if s.values.(v) >= 0 then s.phase.(v) <- s.values.(v) = 1
      done;
      backtrack s 0;
      Sat
    | Some Unsat -> Unsat
    | None -> assert false
  end

let value s v =
  if v < 1 || v > s.nvars then invalid_arg "Solver_ref.value";
  if s.values.(v) >= 0 then s.values.(v) = 1 else s.phase.(v)
