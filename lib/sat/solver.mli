(** A CDCL Boolean-satisfiability solver.

    The SAT attack of Subramanyan et al. [10] — the resilience
    yardstick for every locking decision in the paper — needs a SAT
    solver with incremental clause addition. None is available in the
    sealed environment, so this is a from-scratch conflict-driven
    clause-learning solver: two-watched-literal propagation over flat
    watch lists with blocker literals ({!Rb_util.Veci}, no
    per-propagation allocation), first-UIP conflict analysis with
    clause learning and non-chronological backjumping, VSIDS branching
    through an {!Order_heap} (O(log n) decisions), phase saving, Luby
    restarts, and LBD-ranked learnt-clause database reduction so long
    incremental attacks do not drown in dead learnt clauses. It
    comfortably handles the miter-style instances produced by
    {!Attack} (tens of thousands of clauses, hundreds of thousands of
    conflicts). {!Solver_ref} retains the seed implementation as a
    differential-testing oracle.

    All heuristics count logical work only (conflicts, restart
    indices, reduction cadence), so runs are bit-deterministic across
    machines and [--jobs] values.

    Literals follow the DIMACS convention: variables are positive
    integers and a negative integer denotes negation.

    When [Rb_util.Metrics] collection is enabled, every [solve] call
    flushes its {!stats} deltas into the deterministic ["sat"]-scope
    counters ([solves], [sat_results], [unsat_results], [decisions],
    [conflicts], [propagations], [restarts], [learned_clauses]) and
    records wall-clock in the ["sat/solve"] timer. *)

type t

type result =
  | Sat
  | Unsat
  | Unknown of Rb_util.Limits.reason
      (** the [?limit] passed to {!solve} tripped before a decision was
          reached; the payload says which budget ran out *)

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  learned : int;
}

(** Search-heuristic diversification, the portfolio lever: every
    config decides the same instances, but restart cadence, VSIDS
    decay and initial phases steer the search differently, so racing
    members explore distinct parts of the space. *)
type config = {
  restart_base : int;  (** Luby restart unit in conflicts (default 100) *)
  var_decay : float;  (** VSIDS activity decay, in (0, 1) (default 0.92) *)
  phase_seed : int option;
      (** [None] initializes every saved phase to [false] (the default,
          and what biases models toward lexicographically small
          assignments); [Some seed] scatters initial phases by a
          deterministic per-variable hash of [seed] *)
}

val default_config : config

val diverse_config : int -> config
(** [diverse_config i] is a deterministic config for portfolio member
    [i]: member 0 is {!default_config} (a 1-member portfolio is
    exactly the plain solver), higher indices cycle through distinct
    restart/decay/phase combinations. *)

val create : ?config:config -> unit -> t
(** [config] defaults to {!default_config}. [Invalid_argument] when
    [restart_base < 1] or [var_decay] is outside (0, 1). *)

val new_var : t -> int
(** Allocate the next variable (1, 2, 3, ...). *)

val new_vars : t -> int -> int
(** [new_vars s n] allocates [n] variables and returns the first. *)

val n_vars : t -> int

val add_clause : t -> int list -> unit
(** Add a clause; literals over unallocated variables raise
    [Invalid_argument]. Adding the empty clause (or only falsified
    literals at level 0) makes the instance permanently unsatisfiable.
    May be called between [solve] calls (incremental interface). *)

val solve : ?assumptions:int list -> ?limit:Rb_util.Limits.t -> t -> result
(** Decide satisfiability of the current clause set under optional
    assumption literals. After [Sat], {!value} reads the model; after
    [Unsat] with assumptions, the instance may still be satisfiable
    under different assumptions.

    [?limit] (default {!Rb_util.Limits.none}) bounds the search:
    budgets are polled once per search-loop iteration against this
    call's own conflict/propagation deltas, and a tripped limit
    returns [Unknown reason] with the trail fully backtracked — the
    solver stays usable incrementally, and a later unlimited [solve]
    can still decide the instance. Conflict/propagation budgets abort
    at a deterministic point; deadline and cancel limits do not (see
    {!Rb_util.Limits}). An [Unknown] result counts under
    ["sat/unknown_results"] and ["limits/budget_exhausted"]. When the
    {!Rb_util.Faults} site ["sat/budget"] fires (keyed by this
    solver's solve ordinal), a budgeted call reports
    [Unknown Conflicts] immediately. *)

val value : t -> int -> bool
(** Model value of a variable after a [Sat] answer. Unconstrained
    variables read their saved phase (false initially). *)

val stats : t -> stats
(** Cumulative search statistics. *)

val set_learnt_hook : t -> (lbd:int -> int array -> unit) option -> unit
(** Install (or clear) a callback invoked on every clause the solver
    learns, with its literal-block distance. Learnt clauses are
    implied by the clause database {e alone} — CDCL resolves only on
    reason clauses, and assumptions are decisions, never reasons — so
    a hooked clause may be re-added to any solver holding the same
    clause set (the portfolio's clause-sharing channel). The array is
    owned by the callback; the hook runs on the solving domain, so it
    must be cheap and must not call back into this solver. *)

(** {2 Introspection for tests}

    Structural state of the learnt-clause database, exposed so the
    test suite can observe reduction behaviour that the solving
    interface hides. Not meant for production call sites. *)

val live_learnt_clauses : t -> int
(** Learnt clauses currently in the database (learned minus removed). *)

val db_reductions : t -> int
(** Times the learnt database has been reduced. *)

val removed_clauses : t -> int
(** Learnt clauses dropped by all reductions so far. *)

val reasons_are_live : t -> bool
(** No assigned variable's reason clause has been removed — the
    invariant that makes database reduction sound. *)
