module Netlist = Rb_netlist.Netlist

type instance = {
  input_vars : int array;
  key_vars : int array;
  output_vars : int array;
}

let fresh_vars solver n = Array.init n (fun _ -> Solver.new_var solver)

(* CNF clauses asserting z <-> gate(inputs), with [v] resolving net
   variables. Shared by the solver encoding and the DIMACS export. *)
let gate_clauses ~z ~v (g : Rb_netlist.Netlist.gate) =
  match g with
  | And (a, b) -> [ [ -z; v a ]; [ -z; v b ]; [ z; -(v a); -(v b) ] ]
  | Nand (a, b) -> [ [ z; v a ]; [ z; v b ]; [ -z; -(v a); -(v b) ] ]
  | Or (a, b) -> [ [ z; -(v a) ]; [ z; -(v b) ]; [ -z; v a; v b ] ]
  | Nor (a, b) -> [ [ -z; -(v a) ]; [ -z; -(v b) ]; [ z; v a; v b ] ]
  | Xor (a, b) ->
    [ [ -z; v a; v b ]; [ -z; -(v a); -(v b) ]; [ z; -(v a); v b ]; [ z; v a; -(v b) ] ]
  | Xnor (a, b) ->
    [ [ z; v a; v b ]; [ z; -(v a); -(v b) ]; [ -z; -(v a); v b ]; [ -z; v a; -(v b) ] ]
  | Not a -> [ [ -z; -(v a) ]; [ z; v a ] ]
  | Buf a -> [ [ -z; v a ]; [ z; -(v a) ] ]
  | Mux (s, a, b) ->
    (* z = s ? b : a *)
    [ [ -z; v s; v a ]; [ z; v s; -(v a) ]; [ -z; -(v s); v b ]; [ z; -(v s); -(v b) ] ]
  | Const true -> [ [ z ] ]
  | Const false -> [ [ -z ] ]

let encode ?input_vars ?key_vars solver circuit =
  let n_in = Netlist.n_inputs circuit in
  let n_key = Netlist.n_keys circuit in
  let input_vars =
    match input_vars with
    | None -> fresh_vars solver n_in
    | Some v ->
      if Array.length v <> n_in then invalid_arg "Tseitin.encode: input width";
      v
  in
  let key_vars =
    match key_vars with
    | None -> fresh_vars solver n_key
    | Some v ->
      if Array.length v <> n_key then invalid_arg "Tseitin.encode: key width";
      v
  in
  let n_nets = Netlist.n_nets circuit in
  let var_of_net = Array.make n_nets 0 in
  Array.blit input_vars 0 var_of_net 0 n_in;
  Array.blit key_vars 0 var_of_net n_in n_key;
  let base = n_in + n_key in
  Array.iteri
    (fun i g ->
      let z = Solver.new_var solver in
      var_of_net.(base + i) <- z;
      let v n = var_of_net.(n) in
      List.iter (Solver.add_clause solver) (gate_clauses ~z ~v g))
    (Netlist.gates circuit);
  let output_vars = Array.map (fun o -> var_of_net.(o)) (Netlist.outputs circuit) in
  { input_vars; key_vars; output_vars }

(* Partially evaluated net values while encoding under fixed inputs: a
   net is a known constant, a literal over already-allocated variables
   (negation is free), or a still-unmaterialized conjunction or
   disjunction of literals. Deferring And/Or matters enormously for
   the incremental attack: an observation usually {e forces} most of
   its key cone (a comparator tree forced to 0 is one clause, forced
   to 1 is unit clauses), so a deferred gate that flows into an output
   constraint — or into a wider And/Or, where the literal lists merge —
   never allocates a variable at all. [And]/[Or] lists hold at least
   two distinct, non-complementary literals. *)
type value = F | T | L of int | And of int list | Or of int list

let vneg = function
  | F -> T
  | T -> F
  | L x -> L (-x)
  | And ls -> Or (List.rev_map Int.neg ls)
  | Or ls -> And (List.rev_map Int.neg ls)

let constrain_observation solver circuit ~key_vars ~inputs ~outputs =
  let n_in = Netlist.n_inputs circuit in
  let n_key = Netlist.n_keys circuit in
  if Array.length inputs <> n_in then
    invalid_arg "Tseitin.constrain_observation: input width";
  if Array.length key_vars <> n_key then
    invalid_arg "Tseitin.constrain_observation: key width";
  if Array.length outputs <> Array.length (Netlist.outputs circuit) then
    invalid_arg "Tseitin.constrain_observation: output width";
  let cl = Solver.add_clause solver in
  (* Materialize a deferred value into a defined literal. *)
  let lit_exn = function
    | L x -> x
    | And ls ->
      let z = Solver.new_var solver in
      List.iter (fun l -> cl [ -z; l ]) ls;
      cl (z :: List.rev_map Int.neg ls);
      z
    | Or ls ->
      let z = Solver.new_var solver in
      List.iter (fun l -> cl [ z; -l ]) ls;
      cl (-z :: ls);
      z
    | F | T -> assert false
  in
  let lits = function L x -> [ x ] | And ls -> ls | F | T | Or _ -> assert false in
  (* Conjunction with literal-list merging: duplicate literals unify,
     complementary literals collapse to false, and the result stays
     deferred. The disjunction constructor is its dual via vneg. *)
  let rec mk_and a b =
    match (a, b) with
    | F, _ | _, F -> F
    | T, x | x, T -> x
    | (Or _ as o), x -> mk_and (L (lit_exn o)) x
    | x, (Or _ as o) -> mk_and x (L (lit_exn o))
    | (L _ | And _), (L _ | And _) -> (
      let merged =
        List.fold_left
          (fun acc l ->
            match acc with
            | None -> None
            | Some acc ->
              if List.mem l acc then Some acc
              else if List.mem (-l) acc then None
              else Some (l :: acc))
          (Some (lits a)) (lits b)
      in
      match merged with
      | None -> F
      | Some [ l ] -> L l
      | Some ls -> And ls)
  in
  let mk_or a b = vneg (mk_and (vneg a) (vneg b)) in
  let mk_xor a b =
    match (a, b) with
    | F, x | x, F -> x
    | T, x | x, T -> vneg x
    | a, b ->
      let x = lit_exn a and y = lit_exn b in
      if x = y then F
      else if x = -y then T
      else begin
        let z = Solver.new_var solver in
        cl [ -z; x; y ];
        cl [ -z; -x; -y ];
        cl [ z; -x; y ];
        cl [ z; x; -y ];
        L z
      end
  in
  (* z = s ? b : a, mirroring the Mux convention of {!gate_clauses}. *)
  let mk_mux s a b =
    match s with
    | T -> b
    | F -> a
    | s -> (
      if a = b then a
      else
        let sv = lit_exn s in
        match (a, b) with
        | F, T -> L sv
        | T, F -> L (-sv)
        | F, y -> mk_and (L sv) y
        | T, y -> vneg (mk_and (L sv) (vneg y))
        | x, F -> mk_and (L (-sv)) x
        | x, T -> vneg (mk_and (L (-sv)) (vneg x))
        | x, y ->
          let xv = lit_exn x and yv = lit_exn y in
          if xv = yv then L xv
          else if xv = -yv then mk_xor (L sv) (L xv)
          else begin
            let z = Solver.new_var solver in
            cl [ -z; sv; xv ];
            cl [ z; sv; -xv ];
            cl [ -z; -sv; yv ];
            cl [ z; -sv; -yv ];
            L z
          end)
  in
  let n_nets = Netlist.n_nets circuit in
  let values = Array.make n_nets F in
  for i = 0 to n_in - 1 do
    values.(i) <- (if inputs.(i) then T else F)
  done;
  for i = 0 to n_key - 1 do
    values.(n_in + i) <- L key_vars.(i)
  done;
  let base = n_in + n_key in
  (* Raw view for And/Or chains; [vm] materializes (and caches, so a
     net with fanout is materialized at most once) for consumers that
     need a definite literal. *)
  Array.iteri
    (fun i g ->
      let v n = values.(n) in
      let vm n =
        match values.(n) with
        | (And _ | Or _) as d ->
          let z = L (lit_exn d) in
          values.(n) <- z;
          z
        | x -> x
      in
      values.(base + i) <-
        (match (g : Rb_netlist.Netlist.gate) with
        | And (a, b) -> mk_and (v a) (v b)
        | Nand (a, b) -> vneg (mk_and (v a) (v b))
        | Or (a, b) -> mk_or (v a) (v b)
        | Nor (a, b) -> vneg (mk_or (v a) (v b))
        | Xor (a, b) -> mk_xor (vm a) (vm b)
        | Xnor (a, b) -> vneg (mk_xor (vm a) (vm b))
        | Not a -> vneg (v a)
        | Buf a -> v a
        | Mux (s, a, b) -> mk_mux (vm s) (vm a) (vm b)
        | Const c -> if c then T else F))
    (Netlist.gates circuit);
  Array.iteri
    (fun i o ->
      let want = outputs.(i) in
      match values.(o) with
      | T -> if not want then cl [] (* inconsistent observation *)
      | F -> if want then cl []
      | L x -> cl [ (if want then x else -x) ]
      | And ls ->
        (* A forced conjunction never materializes: true pins every
           conjunct, false is a single clause. *)
        if want then List.iter (fun l -> cl [ l ]) ls
        else cl (List.rev_map Int.neg ls)
      | Or ls -> if want then cl ls else List.iter (fun l -> cl [ -l ]) ls)
    (Netlist.outputs circuit)

let pin solver vars values name =
  if Array.length vars <> Array.length values then invalid_arg name;
  Array.iteri
    (fun i v -> Solver.add_clause solver [ (if values.(i) then v else -v) ])
    vars

let constrain_inputs solver inst values =
  pin solver inst.input_vars values "Tseitin.constrain_inputs"

let constrain_outputs solver inst values =
  pin solver inst.output_vars values "Tseitin.constrain_outputs"
