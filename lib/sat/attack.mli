(** The oracle-guided SAT attack on logic locking.

    Implements Subramanyan et al.'s algorithm [10], the threat model of
    the entire paper: the attacker holds the locked netlist (from the
    GDSII) and black-box access to an activated chip (the oracle, which
    the scan-chain assumption extends to every locked module).

    The attack builds a miter of two locked-circuit copies with shared
    primary inputs and independent keys. While the miter is
    satisfiable, the model yields a {e distinguishing input pattern}
    (DIP); the oracle's response on that DIP is added as an I/O
    constraint on both key copies, pruning every key that disagrees.
    When the miter becomes unsatisfiable, any key consistent with all
    recorded I/O pairs is functionally correct, and the number of
    iterations measures the scheme's resilience — the quantity paper
    Eqn. 1 lower-bounds. *)

type outcome =
  | Broken of { key : bool array; iterations : int }
      (** the recovered key and the number of DIP iterations *)
  | Budget_exceeded of { iterations : int }
      (** iteration budget exhausted before convergence *)
  | Solver_limit of { iterations : int; reason : Rb_util.Limits.reason }
      (** a budgeted miter solve returned [Unknown]: the attack
          degrades to a partial estimate — [iterations] DIPs is a
          lower bound on the scheme's resilience *)

val run :
  ?max_iterations:int ->
  ?limit:Rb_util.Limits.t ->
  oracle:(bool array -> bool array) ->
  locked:Rb_netlist.Netlist.t ->
  unit ->
  outcome
(** [run ~oracle ~locked ()] attacks a locked netlist. [oracle] maps a
    primary-input assignment to the activated chip's outputs.
    [max_iterations] defaults to 100_000. [?limit] bounds every miter
    solve (see {!Solver.solve}); a tripped limit yields
    [Solver_limit] instead of hanging on a pathologically hard miter.
    Key extraction after an [Unsat] miter is never budgeted. The
    returned key is verified internally against all recorded DIPs;
    callers typically verify it exhaustively against the oracle in
    tests. *)

val attack_locked :
  ?max_iterations:int -> ?limit:Rb_util.Limits.t -> Rb_netlist.Lock.locked -> outcome
(** Convenience: attack a {!Rb_netlist.Lock.locked} construction using
    its own correct key to answer oracle queries (the usual
    experimental setup, where the attacker's chip is simulated). *)

val key_is_correct : Rb_netlist.Lock.locked -> bool array -> bool
(** Exhaustively check functional equivalence of a candidate key
    against the construction's correct key (inputs <= 20 bits). *)

(** Result of the approximate (AppSAT-style) attack. *)
type approximate_outcome = {
  key : bool array;  (** best key consistent with everything observed *)
  dip_iterations : int;  (** exact DIPs spent *)
  random_queries : int;  (** random oracle queries injected *)
  converged : bool;  (** true if the miter went UNSAT within budget *)
  estimated_error_rate : float;
      (** sampled wrong-output rate of [key] vs the oracle *)
}

val approximate :
  ?dip_budget:int ->
  ?queries_per_round:int ->
  ?estimate_samples:int ->
  ?seed:int ->
  ?limit:Rb_util.Limits.t ->
  Rb_netlist.Lock.locked ->
  approximate_outcome
(** The approximate attack of Shamsi et al.'s impossibility result
    [12] (AppSAT-style): interleave exact DIP refinement with batches
    of random oracle queries and stop early, settling for an
    {e approximately} correct key. Point-function locking survives the
    exact attack by corrupting almost nothing — which is precisely why
    an attacker content with a low error rate wins quickly. This is the
    paper's motivation for needing {e application-level} corruption,
    not just SAT iterations. Defaults: 30 DIPs, 16 random queries every
    5 DIPs, 2000 estimation samples. *)
