(** The oracle-guided SAT attack on logic locking.

    Implements Subramanyan et al.'s algorithm [10], the threat model of
    the entire paper: the attacker holds the locked netlist (from the
    GDSII) and black-box access to an activated chip (the oracle, which
    the scan-chain assumption extends to every locked module).

    The attack builds a miter of two locked-circuit copies with shared
    primary inputs and independent keys. While the miter is
    satisfiable, the model yields a {e distinguishing input pattern}
    (DIP); the oracle's response on that DIP is added as an I/O
    constraint on both key copies, pruning every key that disagrees.
    When the miter becomes unsatisfiable, any key consistent with all
    recorded I/O pairs is functionally correct, and the number of
    iterations measures the scheme's resilience — the quantity paper
    Eqn. 1 lower-bounds.

    {2 Incremental engine}

    The attack is fully incremental: one persistent {!Solver.t} (per
    portfolio member) holds the miter for the whole run. The miter
    difference clause is guarded by an activation literal, so DIP
    rounds solve under the assumption [act], each oracle observation
    lands as constant-specialized clauses
    ({!Tseitin.constrain_observation} — learnt clauses survive across
    rounds), and the final key recovery solves the {e same} instance
    under [-act] instead of re-encoding the observation history.

    {2 Portfolio and the deterministic-result contract}

    With [portfolio = n > 1], [n] identically-encoded members with
    diversified search heuristics ({!Solver.diverse_config}) race each
    round over the worker pool, exchanging short low-LBD learnt
    clauses at round boundaries (sound because members' variable
    spaces are aligned and learnt clauses are implied by the shared
    clause database alone). The {e reported} DIP sequence and key are
    identical at every [jobs]/[portfolio] combination, by
    construction:

    - member 0 {e owns the DIP sequence}: every DIP is member 0's own
      model, member 0 never imports shared clauses, and nothing may
      interrupt its solve except a proven Unsat — a fact about the
      constraint set, not about timing — so its models are exactly the
      [portfolio = 1] models;
    - members 1..n-1 are {e helpers}: their Sat models are never
      consumed; they accelerate the attack by racing the expensive
      Unsat proofs (any member proving Unsat ends the round soundly,
      since all members hold logically equivalent instances) and by
      sharing clauses with each other;
    - the recovered key is canonicalized to the lexicographically
      smallest key consistent with all observations — a property of
      the constraint set, not of whichever member finished the final
      round.

    Wall-clock and solver-side metrics (["sat/*"],
    ["attack/clauses_imported"]) remain timing-dependent when racing;
    deterministic surfaces run at [portfolio = 1]. One corner is
    weaker under a budget ([?limit]): when member 0 returns [Unknown],
    whether a helper completed an Unsat proof before the round ended
    is a race, so a budgeted portfolio run may report [Solver_limit]
    where another reports [Broken] (unbudgeted runs are fully
    deterministic). *)

type outcome =
  | Broken of { key : bool array; iterations : int }
      (** the recovered key (lexicographically smallest consistent
          one) and the number of DIP iterations *)
  | Budget_exceeded of { iterations : int }
      (** iteration budget exhausted before convergence *)
  | Solver_limit of { iterations : int; reason : Rb_util.Limits.reason }
      (** a budgeted miter solve returned [Unknown]: the attack
          degrades to a partial estimate — [iterations] DIPs is a
          lower bound on the scheme's resilience *)

val run :
  ?max_iterations:int ->
  ?limit:Rb_util.Limits.t ->
  ?pool:Rb_util.Pool.t ->
  ?portfolio:int ->
  ?on_dip:(bool array -> unit) ->
  oracle:(bool array -> bool array) ->
  locked:Rb_netlist.Netlist.t ->
  unit ->
  outcome
(** [run ~oracle ~locked ()] attacks a locked netlist. [oracle] maps a
    primary-input assignment to the activated chip's outputs.
    [max_iterations] defaults to 100_000. [?limit] bounds every miter
    and DIP-canonicalization solve (see {!Solver.solve}); a tripped
    limit yields [Solver_limit] instead of hanging on a pathologically
    hard miter. Key extraction after an [Unsat] miter is never
    budgeted. [?portfolio] (default 1, [Invalid_argument] below 1) is
    the number of racing solver members; [?pool] supplies the workers
    they race on (without it a portfolio degenerates to trying members
    in index order, still correct). [?on_dip] observes each canonical
    DIP as it is queried, in order — the test hook for the
    deterministic-sequence contract. The returned key is the smallest
    consistent with all recorded DIPs; callers typically verify it
    exhaustively against the oracle in tests. *)

val attack_locked :
  ?max_iterations:int ->
  ?limit:Rb_util.Limits.t ->
  ?pool:Rb_util.Pool.t ->
  ?portfolio:int ->
  ?on_dip:(bool array -> unit) ->
  Rb_netlist.Lock.locked ->
  outcome
(** Convenience: attack a {!Rb_netlist.Lock.locked} construction using
    its own correct key to answer oracle queries (the usual
    experimental setup, where the attacker's chip is simulated). *)

val key_is_correct : Rb_netlist.Lock.locked -> bool array -> bool
(** Exhaustively check functional equivalence of a candidate key
    against the construction's correct key (inputs <= 20 bits). *)

(** Result of the approximate (AppSAT-style) attack. *)
type approximate_outcome = {
  key : bool array;  (** best key consistent with everything observed *)
  dip_iterations : int;  (** exact DIPs spent *)
  random_queries : int;  (** random oracle queries injected *)
  converged : bool;  (** true if the miter went UNSAT within budget *)
  estimated_error_rate : float;
      (** sampled wrong-output rate of [key] vs the oracle *)
}

val approximate :
  ?dip_budget:int ->
  ?queries_per_round:int ->
  ?estimate_samples:int ->
  ?seed:int ->
  ?limit:Rb_util.Limits.t ->
  Rb_netlist.Lock.locked ->
  approximate_outcome
(** The approximate attack of Shamsi et al.'s impossibility result
    [12] (AppSAT-style): interleave exact DIP refinement with batches
    of random oracle queries and stop early, settling for an
    {e approximately} correct key. Runs on the same incremental miter
    (single member, raw model DIPs — rigor traded for speed).
    Point-function locking survives the exact attack by corrupting
    almost nothing — which is precisely why an attacker content with a
    low error rate wins quickly. This is the paper's motivation for
    needing {e application-level} corruption, not just SAT iterations.
    Defaults: 30 DIPs, 16 random queries every 5 DIPs, 2000 estimation
    samples. *)
