module Limits = Rb_util.Limits
module Faults = Rb_util.Faults
module Veci = Rb_util.Veci

type result = Sat | Unsat | Unknown of Limits.reason

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  learned : int;
}

(* Literal encoding for watch lists: positive literal v -> 2v, negative
   literal -v -> 2v+1. *)
let lidx lit = if lit > 0 then 2 * lit else (2 * -lit) + 1

(* Watch lists are flat int vectors, one packed int per watcher:
   clause tag in the high bits (arithmetic shifts keep its sign), the
   blocker literal biased into the low 22 bits. The blocker is some
   literal of the clause (kept best-effort up to date); when it is
   already true the propagation loop skips the clause after one int
   load and one byte load — the common case on the attack miters,
   where most watched clauses are satisfied by earlier assignments.

   Binary clauses get a fully inlined fast path: their tag is the
   negative [-ci - 1], and the blocker is the clause's other literal.
   Propagating one never touches the clause array — the blocker value
   alone decides between skip, enqueue and conflict. Tseitin gate
   encodings are roughly half binary clauses, so this halves the
   pointer chasing of the hot loop. *)
let blocker_bits = 22
let blocker_bias = 1 lsl (blocker_bits - 1)
let blocker_mask = (1 lsl blocker_bits) - 1
let max_vars = blocker_bias - 1
let pack_watch tag blocker = (tag lsl blocker_bits) lor (blocker + blocker_bias)
let watch_tag p = p asr blocker_bits
let watch_blocker p = (p land blocker_mask) - blocker_bias
let binary_tag ci = -ci - 1

(* Clauses live in one flat int arena: a header word (length in the
   low bits, LBD above), then the literals. A clause reference is the
   header's offset — watchers, reasons and the learnt index all store
   offsets, so visiting a clause is one load in a single hot array
   instead of a chase through an array of arrays, and clauses pushed
   together (e.g. one Tseitin gate) share cache lines. Removed clauses
   leave their words behind as tombstones (header zeroed); the waste
   is bounded by the reduction budget and far cheaper than rewriting
   every stored reference to compact. *)
let hdr_len_bits = 21 (* max_vars < 2^21 bounds any clause length *)
let hdr_len_mask = (1 lsl hdr_len_bits) - 1

(* Heuristic diversification for portfolio solving. Every config
   decides the same instances (soundness never depends on these), but
   restart cadence, activity decay and initial phases steer the search
   into different parts of the space — which is the whole point of
   racing several members. *)
type config = {
  restart_base : int;
  var_decay : float;
  phase_seed : int option;
}

let default_config = { restart_base = 100; var_decay = 0.92; phase_seed = None }

(* Member 0 is always the default config, so a 1-member portfolio is
   exactly the plain solver. The table mixes short/long restart
   cadences with slow/fast decay; odd members keep the false-phase
   bias (good for lex-min witnesses), even members scatter phases. *)
let diverse_config i =
  if i <= 0 then default_config
  else begin
    let bases = [| 100; 60; 220; 340; 80; 150; 480; 40 |] in
    let decays = [| 0.92; 0.95; 0.88; 0.92; 0.97; 0.85; 0.93; 0.90 |] in
    let j = i mod 8 in
    {
      restart_base = bases.(j);
      var_decay = decays.(j);
      phase_seed = (if i mod 2 = 0 then Some (0x5EED + i) else None);
    }
  end

type t = {
  config : config;
  var_decay_factor : float; (* 1 / config.var_decay, applied per conflict *)
  mutable learnt_hook : (lbd:int -> int array -> unit) option;
  mutable nvars : int;
  arena : Veci.t; (* flat clause storage: header word, then literals *)
  mutable watches : Veci.t array; (* lidx -> (ci, blocker) pairs *)
  mutable assign : Bytes.t; (* lidx -> 0 false / 1 true / 2 unassigned *)
  mutable level : int array;
  mutable reason : int array; (* var -> clause index or -1 *)
  mutable phase : bool array;
  order : Order_heap.t; (* VSIDS branching order; owns activities *)
  mutable var_inc : float;
  mutable trail : int array; (* assigned literals in order *)
  mutable trail_size : int;
  mutable trail_lim : int array; (* start of each decision level in trail *)
  mutable n_levels : int;
  mutable qhead : int;
  mutable root_unsat : bool;
  mutable seen : bool array;
  mutable lbd_mark : int array; (* level -> lbd_stamp, for LBD counting *)
  mutable lbd_stamp : int;
  learnts : Veci.t; (* indices of live learnt clauses *)
  learnt_buf : Veci.t; (* scratch: tail of the clause being learnt *)
  mutable conflicts_since_reduce : int;
  mutable reduce_limit : int;
  mutable s_decisions : int;
  mutable s_conflicts : int;
  mutable s_propagations : int;
  mutable s_restarts : int;
  mutable s_learned : int;
  mutable s_reduces : int;
  mutable s_removed : int;
  mutable s_solves : int;
}

(* Learnt-DB reduction cadence (Glucose-style): first pass after
   [reduce_first] conflicts, each subsequent interval [reduce_inc]
   conflicts longer. Both counts are logical work, so reductions land
   at the same point on every machine and --jobs value. *)
let reduce_first = 2000
let reduce_inc = 300

let create ?(config = default_config) () =
  if config.restart_base < 1 then invalid_arg "Solver.create: restart_base must be >= 1";
  if not (config.var_decay > 0.0 && config.var_decay < 1.0) then
    invalid_arg "Solver.create: var_decay must be in (0, 1)";
  {
    config;
    var_decay_factor = 1.0 /. config.var_decay;
    learnt_hook = None;
    nvars = 0;
    arena = Veci.create ~cap:256 ();
    watches = Array.init 16 (fun _ -> Veci.create ());
    assign = Bytes.make 16 '\002';
    level = Array.make 8 0;
    reason = Array.make 8 (-1);
    phase = Array.make 8 false;
    order = Order_heap.create ();
    var_inc = 1.0;
    trail = Array.make 8 0;
    trail_size = 0;
    trail_lim = Array.make 8 0;
    n_levels = 0;
    qhead = 0;
    root_unsat = false;
    seen = Array.make 8 false;
    lbd_mark = Array.make 8 0;
    lbd_stamp = 0;
    learnts = Veci.create ();
    learnt_buf = Veci.create ();
    conflicts_since_reduce = 0;
    reduce_limit = reduce_first;
    s_decisions = 0;
    s_conflicts = 0;
    s_propagations = 0;
    s_restarts = 0;
    s_learned = 0;
    s_reduces = 0;
    s_removed = 0;
    s_solves = 0;
  }

let grow arr size default =
  if Array.length arr >= size then arr
  else begin
    let bigger = Array.make (max size (2 * Array.length arr)) default in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

let grow_bytes b size default =
  if Bytes.length b >= size then b
  else begin
    let bigger = Bytes.make (max size (2 * Bytes.length b)) default in
    Bytes.blit b 0 bigger 0 (Bytes.length b);
    bigger
  end

let grow_watches s size =
  if Array.length s.watches < size then begin
    let old = Array.length s.watches in
    let bigger =
      Array.init (max size (2 * old)) (fun i ->
          if i < old then s.watches.(i) else Veci.create ())
    in
    s.watches <- bigger
  end

let new_var s =
  if s.nvars >= max_vars then
    invalid_arg "Solver.new_var: variable does not fit in a packed watch entry";
  s.nvars <- s.nvars + 1;
  let v = s.nvars in
  let cap = v + 1 in
  s.assign <- grow_bytes s.assign ((2 * cap) + 2) '\002';
  s.level <- grow s.level cap 0;
  s.reason <- grow s.reason cap (-1);
  s.phase <- grow s.phase cap false;
  s.seen <- grow s.seen cap false;
  s.lbd_mark <- grow s.lbd_mark cap 0;
  s.trail <- grow s.trail (v + 1) 0;
  grow_watches s ((2 * cap) + 2);
  Order_heap.ensure s.order v;
  Bytes.unsafe_set s.assign (2 * v) '\002';
  Bytes.unsafe_set s.assign ((2 * v) + 1) '\002';
  s.reason.(v) <- -1;
  (match s.config.phase_seed with
  | None -> ()
  | Some seed ->
    (* Deterministic per-variable phase scatter (mixer, not an RNG
       stream: the phase depends only on (seed, v), never on
       allocation order elsewhere). *)
    let h = seed + (v * 0x9E3779B9) in
    let h = h lxor (h lsr 16) in
    let h = h * 0x85EBCA6B in
    let h = h lxor (h lsr 13) in
    s.phase.(v) <- h land 1 = 1);
  v

let new_vars s n =
  if n <= 0 then invalid_arg "Solver.new_vars";
  let first = new_var s in
  for _ = 2 to n do
    ignore (new_var s)
  done;
  first

let n_vars s = s.nvars

(* Truth values live in a byte array indexed by literal (both
   polarities stored), so the hot loops read one byte per query — no
   sign branch, and an 8x denser cache footprint than an int array.
   Codes: 0 = false, 1 = true, 2 = unassigned. *)
let lit_value s lit = Char.code (Bytes.unsafe_get s.assign (lidx lit))
let var_assigned s v = Bytes.unsafe_get s.assign (2 * v) <> '\002'
let var_true s v = Bytes.unsafe_get s.assign (2 * v) = '\001'

let current_level s = s.n_levels

let enqueue s lit reason_idx =
  let v = abs lit in
  let t, f = if lit > 0 then '\001', '\000' else '\000', '\001' in
  Bytes.unsafe_set s.assign (2 * v) t;
  Bytes.unsafe_set s.assign ((2 * v) + 1) f;
  s.level.(v) <- current_level s;
  s.reason.(v) <- reason_idx;
  s.trail.(s.trail_size) <- lit;
  s.trail_size <- s.trail_size + 1

let cls_len s cr = Veci.unsafe_get s.arena cr land hdr_len_mask
let cls_lbd s cr = Veci.unsafe_get s.arena cr lsr hdr_len_bits
let cls_lit s cr i = Veci.unsafe_get s.arena (cr + 1 + i)

(* Append a clause to the arena (LBD 0); returns its reference. *)
let push_clause s arr =
  let cr = Veci.length s.arena in
  Veci.push s.arena (Array.length arr);
  Array.iter (fun l -> Veci.push s.arena l) arr;
  cr

let watch s lit tag blocker = Veci.push s.watches.(lidx lit) (pack_watch tag blocker)

(* Attach a clause of length >= 2: watch the first two literals, each
   with the other as blocker. Binary clauses are watched in tagged
   form and never move their watches afterwards. *)
let attach s cr =
  let l0 = cls_lit s cr 0 and l1 = cls_lit s cr 1 in
  let tag = if cls_len s cr = 2 then binary_tag cr else cr in
  watch s l0 tag l1;
  watch s l1 tag l0

(* Remove one watcher of clause [ci] — order is irrelevant, so the
   last entry is moved into the hole. *)
let unwatch s lit ci =
  let wl = s.watches.(lidx lit) in
  let n = Veci.length wl in
  let rec find i =
    if i >= n then ()
    else if watch_tag (Veci.unsafe_get wl i) = ci then begin
      Veci.unsafe_set wl i (Veci.unsafe_get wl (n - 1));
      Veci.truncate wl (n - 1)
    end
    else find (i + 1)
  in
  find 0

(* Order literals by variable (sign breaks ties) so duplicate literals
   and complementary pairs sit adjacent — the tautology/duplicate
   check is then one linear scan instead of List.mem per literal. *)
let lit_order a b =
  match Int.compare (abs a) (abs b) with 0 -> Int.compare a b | c -> c

let add_clause s lits =
  List.iter
    (fun lit ->
      let v = abs lit in
      if v < 1 || v > s.nvars then invalid_arg "Solver.add_clause: unknown variable")
    lits;
  if not s.root_unsat then begin
    assert (current_level s = 0);
    (* Simplify at level 0 with one in-place pass over a sorted array:
       adjacent duplicates collapse, an adjacent complementary pair
       means tautology, satisfied/falsified literals resolve against
       the root assignment. The write cursor [w] compacts surviving
       literals into the same array, so a clean clause costs exactly
       one array allocation. *)
    let arr = Array.of_list lits in
    Array.sort lit_order arr;
    let n = Array.length arr in
    let w = ref 0 in
    let i = ref 0 in
    let tautology = ref false in
    let satisfied = ref false in
    while (not !tautology) && (not !satisfied) && !i < n do
      let l = arr.(!i) in
      if !i + 1 < n && abs arr.(!i + 1) = abs l then
        if arr.(!i + 1) = l then incr i (* duplicate: keep the later copy *)
        else tautology := true (* v next to -v *)
      else begin
        (match lit_value s l with
        | 1 -> satisfied := true
        | 2 ->
          arr.(!w) <- l;
          incr w
        | _ -> () (* falsified at level 0: drop *));
        incr i
      end
    done;
    if (not !tautology) && not !satisfied then
      match !w with
      | 0 -> s.root_unsat <- true
      | 1 ->
        enqueue s arr.(0) (-1)
        (* propagation happens at the start of the next solve *)
      | w ->
        let arr = if w = n then arr else Array.sub arr 0 w in
        let ci = push_clause s arr in
        attach s ci
  end

let bump_var s v =
  Order_heap.bump s.order v s.var_inc;
  if Order_heap.activity s.order v > 1e100 then begin
    Order_heap.rescale s.order 1e-100;
    s.var_inc <- s.var_inc *. 1e-100
  end

let decay_activity s = s.var_inc <- s.var_inc *. s.var_decay_factor

(* Two-watched-literal unit propagation over the flat lists. Returns
   the index of a conflicting clause, or -1. The loop compacts each
   list in place (read cursor [i], write cursor [j]); entries moved to
   another clause's watch list are simply not copied forward.

   The scanned list's backing array is let-bound once per literal:
   nothing pushes onto the list being scanned (a replacement watch
   always lands on a different literal's list), so the alias stays
   valid and saves a pointer reload per entry. *)
let propagate s =
  let assign = s.assign in
  let level = s.level in
  let arena = Veci.unsafe_data s.arena in
  let conflict = ref (-1) in
  while !conflict = -1 && s.qhead < s.trail_size do
    let lit = Array.unsafe_get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.s_propagations <- s.s_propagations + 1;
    let false_lit = -lit in
    let wl = Array.unsafe_get s.watches (lidx false_lit) in
    let w = Veci.unsafe_data wl in
    let n = Veci.length wl in
    let i = ref 0 in
    let j = ref 0 in
    while !i < n do
      let entry = Array.unsafe_get w !i in
      let blocker = watch_blocker entry in
      incr i;
      let bli = lidx blocker in
      if Char.code (Bytes.unsafe_get assign bli) = 1 then begin
        (* Satisfied via the blocker. Level-0 assignments are never
           undone, so a clause satisfied there is satisfied forever:
           drop its watcher instead of rescanning it every visit. The
           attack miters make this essential — key variables are
           shared by every accumulated observation copy, and without
           the pruning their watch lists (scanned on each key
           decision) grow linearly with the number of DIPs. *)
        if Array.unsafe_get level (bli lsr 1) = 0 then ()
        else begin
          Array.unsafe_set w !j entry;
          incr j
        end
      end
      else begin
        let tag = watch_tag entry in
        if tag < 0 then begin
          (* Binary clause: the blocker IS the other literal, so its
             value alone decides — no clause dereference. *)
          let cr = binary_tag tag in
          Array.unsafe_set w !j entry;
          incr j;
          if Char.code (Bytes.unsafe_get assign (lidx blocker)) = 0 then begin
            while !i < n do
              Array.unsafe_set w !j (Array.unsafe_get w !i);
              incr i;
              incr j
            done;
            conflict := cr
          end
          else enqueue s blocker cr
        end
        else begin
          let cr = tag in
          let base = cr + 1 in
          (* Normalize: the falsified watch sits in slot 1. *)
          if Array.unsafe_get arena base = false_lit then begin
            Array.unsafe_set arena base (Array.unsafe_get arena (base + 1));
            Array.unsafe_set arena (base + 1) false_lit
          end;
          let first = Array.unsafe_get arena base in
          let first_value = Char.code (Bytes.unsafe_get assign (lidx first)) in
          if first <> blocker && first_value = 1 then begin
            (* Satisfied by the other watch. Drop the watcher if that
               holds at level 0 (permanent); else it becomes the
               blocker. *)
            if Array.unsafe_get level (lidx first lsr 1) = 0 then ()
            else begin
              Array.unsafe_set w !j (pack_watch cr first);
              incr j
            end
          end
          else begin
            (* Look for a replacement watch. *)
            let len = Array.unsafe_get arena cr land hdr_len_mask in
            let k = ref 2 in
            while
              !k < len
              && Char.code
                   (Bytes.unsafe_get assign (lidx (Array.unsafe_get arena (base + !k))))
                 = 0
            do
              incr k
            done;
            if !k < len then begin
              Array.unsafe_set arena (base + 1) (Array.unsafe_get arena (base + !k));
              Array.unsafe_set arena (base + !k) false_lit;
              watch s (Array.unsafe_get arena (base + 1)) cr first
            end
            else begin
              (* Unit or conflicting: keep watching false_lit. *)
              Array.unsafe_set w !j (pack_watch cr first);
              incr j;
              if first_value = 0 then begin
                (* Conflict: keep the remaining entries and bail. *)
                while !i < n do
                  Array.unsafe_set w !j (Array.unsafe_get w !i);
                  incr i;
                  incr j
                done;
                conflict := cr
              end
              else enqueue s first cr
            end
          end
        end
      end
    done;
    Veci.truncate wl !j
  done;
  !conflict

let backtrack s target_level =
  if current_level s > target_level then begin
    let bound = s.trail_lim.(target_level) in
    for i = s.trail_size - 1 downto bound do
      let v = abs s.trail.(i) in
      s.phase.(v) <- var_true s v;
      Bytes.unsafe_set s.assign (2 * v) '\002';
      Bytes.unsafe_set s.assign ((2 * v) + 1) '\002';
      s.reason.(v) <- -1;
      Order_heap.insert s.order v
    done;
    s.trail_size <- bound;
    s.qhead <- bound;
    s.n_levels <- target_level
  end

let new_decision_level s =
  s.trail_lim <- grow s.trail_lim (s.n_levels + 1) 0;
  s.trail_lim.(s.n_levels) <- s.trail_size;
  s.n_levels <- s.n_levels + 1

(* Literal-block distance: number of distinct decision levels in a
   learnt clause (Glucose). Low-LBD ("glue") clauses connect few
   levels and keep proving useful; high-LBD clauses are the first to
   go when the database is reduced. *)
let compute_lbd s lits =
  s.lbd_stamp <- s.lbd_stamp + 1;
  let stamp = s.lbd_stamp in
  let distinct = ref 0 in
  Veci.iter
    (fun q ->
      let lv = s.level.(abs q) in
      if s.lbd_mark.(lv) <> stamp then begin
        s.lbd_mark.(lv) <- stamp;
        incr distinct
      end)
    lits;
  !distinct

(* First-UIP conflict analysis. Returns (asserting literal, backjump
   level); the rest of the learnt clause is left in [s.learnt_buf] in
   discovery order for {!record_learnt} to consume. *)
let analyze s confl =
  Veci.clear s.learnt_buf;
  let arena = Veci.unsafe_data s.arena in
  let counter = ref 0 in
  let p = ref 0 in
  let index = ref (s.trail_size - 1) in
  let clause_idx = ref confl in
  let finished = ref false in
  while not !finished do
    let cr = !clause_idx in
    let len = Array.unsafe_get arena cr land hdr_len_mask in
    (* Skip the literal being resolved on by value, not position:
       binary reason clauses are never rearranged by propagation, so
       the propagated literal is not guaranteed to sit in slot 0. *)
    for i = 1 to len do
      let q = Array.unsafe_get arena (cr + i) in
      let v = abs q in
      if q <> !p && (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        bump_var s v;
        if s.level.(v) >= current_level s then incr counter
        else Veci.push s.learnt_buf q
      end
    done;
    (* Select the next literal on the trail to resolve on. *)
    let rec next_seen i = if s.seen.(abs s.trail.(i)) then i else next_seen (i - 1) in
    index := next_seen !index;
    let p_lit = s.trail.(!index) in
    index := !index - 1;
    let v = abs p_lit in
    s.seen.(v) <- false;
    decr counter;
    p := p_lit;
    if !counter = 0 then finished := true
    else begin
      clause_idx := s.reason.(v);
      assert (!clause_idx >= 0)
    end
  done;
  let asserting = - !p in
  let backjump = ref 0 in
  Veci.iter
    (fun q ->
      s.seen.(abs q) <- false;
      if s.level.(abs q) > !backjump then backjump := s.level.(abs q))
    s.learnt_buf;
  (asserting, !backjump)

(* Install the clause learnt by {!analyze} (asserting literal plus
   [s.learnt_buf]): asserting literal first, a literal from the
   backjump level second (required for correct watching). *)
let record_learnt s asserting backjump =
  let nb = Veci.length s.learnt_buf in
  if nb = 0 then begin
    backtrack s 0;
    enqueue s asserting (-1);
    (* A learnt unit: implied by the clause database alone (CDCL
       learns by resolution on reason clauses only — assumptions are
       decisions, never reasons), so it is safe to hand to a sharing
       hook and re-add in any solver over the same clause set. *)
    match s.learnt_hook with
    | None -> ()
    | Some f -> f ~lbd:1 [| asserting |]
  end
  else begin
    (* The asserting literal sits at the conflict level, which no tail
       literal shares, so it contributes exactly one more level. *)
    let lbd = 1 + compute_lbd s s.learnt_buf in
    backtrack s backjump;
    let arr = Array.make (nb + 1) asserting in
    for k = 0 to nb - 1 do
      arr.(1 + k) <- Veci.unsafe_get s.learnt_buf (nb - 1 - k)
    done;
    (* Move a max-level literal (other than the asserting one) to
       position 1 so both watches are correct after backjumping. *)
    let best = ref 1 in
    for i = 2 to Array.length arr - 1 do
      if s.level.(abs arr.(i)) > s.level.(abs arr.(!best)) then best := i
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!best);
    arr.(!best) <- tmp;
    let cr = push_clause s arr in
    Veci.unsafe_set s.arena cr (Array.length arr lor (lbd lsl hdr_len_bits));
    Veci.push s.learnts cr;
    attach s cr;
    s.s_learned <- s.s_learned + 1;
    enqueue s asserting cr;
    (* [arr] was copied into the arena by push_clause, so ownership
       transfers to the hook without another allocation. *)
    match s.learnt_hook with
    | None -> ()
    | Some f -> f ~lbd arr
  end

(* Learnt-database reduction: drop the worst half of the removable
   learnt clauses, ranked by LBD (highest first, older clause wins a
   tie). Never removed: clauses currently acting as the reason of a
   trail assignment (their indices are live in [reason]), binary
   clauses, and glue clauses (LBD <= 2). *)
let reduce_db s =
  s.s_reduces <- s.s_reduces + 1;
  let locked = Array.make (Veci.length s.arena) false in
  for i = 0 to s.trail_size - 1 do
    let r = s.reason.(abs s.trail.(i)) in
    if r >= 0 then locked.(r) <- true
  done;
  let n_learnts = Veci.length s.learnts in
  let removable = ref [] in
  Veci.iter
    (fun cr ->
      if (not locked.(cr)) && cls_len s cr > 2 && cls_lbd s cr > 2 then
        removable := cr :: !removable)
    s.learnts;
  let ranked =
    List.sort
      (fun a b ->
        match Int.compare (cls_lbd s b) (cls_lbd s a) with
        | 0 -> Int.compare a b
        | c -> c)
      !removable
  in
  let budget = ref (n_learnts / 2) in
  List.iter
    (fun cr ->
      if !budget > 0 then begin
        decr budget;
        unwatch s (cls_lit s cr 0) cr;
        unwatch s (cls_lit s cr 1) cr;
        Veci.unsafe_set s.arena cr 0;
        s.s_removed <- s.s_removed + 1
      end)
    ranked;
  (* Compact the live-learnts index. *)
  let keep = Veci.to_array s.learnts in
  Veci.clear s.learnts;
  Array.iter
    (fun cr -> if cls_len s cr > 0 then Veci.push s.learnts cr)
    keep

let pick_branch_var s =
  let rec next () =
    let v = Order_heap.pop s.order in
    if v = 0 then 0 else if var_assigned s v then next () else v
  in
  next ()

(* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
   [luby x] is the value at 0-based index [x]. *)
let luby x =
  let size = ref 1 in
  let seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

exception Result of result

(* Metrics: per-solve deltas of the internal statistics, flushed once
   per solve call so the CDCL inner loops stay free of sink checks. *)
module Metrics = Rb_util.Metrics

let m_solves = Metrics.counter ~scope:"sat" "solves"
let m_sat = Metrics.counter ~scope:"sat" "sat_results"
let m_unsat = Metrics.counter ~scope:"sat" "unsat_results"
let m_unknown = Metrics.counter ~scope:"sat" "unknown_results"
let m_decisions = Metrics.counter ~scope:"sat" "decisions"
let m_conflicts = Metrics.counter ~scope:"sat" "conflicts"
let m_propagations = Metrics.counter ~scope:"sat" "propagations"
let m_restarts = Metrics.counter ~scope:"sat" "restarts"
let m_learned = Metrics.counter ~scope:"sat" "learned_clauses"
let m_reduces = Metrics.counter ~scope:"sat" "db_reductions"
let m_removed = Metrics.counter ~scope:"sat" "removed_clauses"
let t_solve = Metrics.timer ~scope:"sat" "solve"

let flush_metrics s ~from result =
  let d0, c0, p0, r0, l0, rd0, rm0 = from in
  Metrics.incr m_solves;
  Metrics.incr
    (match result with Sat -> m_sat | Unsat -> m_unsat | Unknown _ -> m_unknown);
  Metrics.add m_decisions (s.s_decisions - d0);
  Metrics.add m_conflicts (s.s_conflicts - c0);
  Metrics.add m_propagations (s.s_propagations - p0);
  Metrics.add m_restarts (s.s_restarts - r0);
  Metrics.add m_learned (s.s_learned - l0);
  Metrics.add m_reduces (s.s_reduces - rd0);
  Metrics.add m_removed (s.s_removed - rm0)

let solve ?(assumptions = []) ?(limit = Limits.none) s =
  s.s_solves <- s.s_solves + 1;
  let from =
    ( s.s_decisions, s.s_conflicts, s.s_propagations, s.s_restarts, s.s_learned,
      s.s_reduces, s.s_removed )
  in
  let finish result =
    flush_metrics s ~from result;
    result
  in
  (* Budgets apply per solve call; the limit poll is skipped entirely
     on the (default) unlimited path so the search loop stays free of
     clock and flag reads. The "sat/budget" fault site simulates
     immediate exhaustion of a budgeted call — keyed by the solver's
     own solve ordinal, so it is independent of scheduling. *)
  let limited = not (Limits.is_none limit) in
  let _, c0, p0, _, _, _, _ = from in
  let injected =
    limited
    && match Faults.inject ~site:"sat/budget" ~key:(string_of_int s.s_solves) with
       | () -> false
       | exception Faults.Injected _ -> true
  in
  Metrics.time t_solve @@ fun () ->
  if s.root_unsat then finish Unsat
  else if injected then begin
    Limits.note Limits.Conflicts;
    finish (Unknown Limits.Conflicts)
  end
  else begin
    List.iter
      (fun lit ->
        let v = abs lit in
        if v < 1 || v > s.nvars then invalid_arg "Solver.solve: unknown assumption")
      assumptions;
    let n_assumptions = List.length assumptions in
    let assumption = Array.of_list assumptions in
    let restarts_here = ref 0 in
    let restart_base = s.config.restart_base in
    let conflict_budget = ref (restart_base * luby 0) in
    let conflicts_here = ref 0 in
    let result = ref None in
    (try
       while !result = None do
         if limited then
           (match
              Limits.check limit ~conflicts:(s.s_conflicts - c0)
                ~propagations:(s.s_propagations - p0)
            with
           | None -> ()
           | Some r ->
             Limits.note r;
             backtrack s 0;
             raise (Result (Unknown r)));
         let confl = propagate s in
         if confl >= 0 then begin
           s.s_conflicts <- s.s_conflicts + 1;
           incr conflicts_here;
           if current_level s <= n_assumptions then begin
             (* Conflict inside (or below) the assumption levels. *)
             if current_level s = 0 then s.root_unsat <- true;
             backtrack s 0;
             raise (Result Unsat)
           end;
           let asserting, backjump = analyze s confl in
           (* Never backjump into the middle of the assumptions; redo
              them instead. *)
           let backjump = max backjump n_assumptions in
           let backjump = min backjump (current_level s - 1) in
           record_learnt s asserting backjump;
           decay_activity s;
           s.conflicts_since_reduce <- s.conflicts_since_reduce + 1;
           if s.conflicts_since_reduce >= s.reduce_limit then begin
             s.conflicts_since_reduce <- 0;
             s.reduce_limit <- s.reduce_limit + reduce_inc;
             reduce_db s
           end;
           if !conflicts_here >= !conflict_budget then begin
             conflicts_here := 0;
             incr restarts_here;
             conflict_budget := restart_base * luby !restarts_here;
             s.s_restarts <- s.s_restarts + 1;
             backtrack s 0
           end
         end
         else if current_level s < n_assumptions then begin
           (* Re-establish the next assumption as a decision. *)
           let lit = assumption.(current_level s) in
           match lit_value s lit with
           | 1 ->
             (* Already implied; introduce an empty decision level so
                the level <-> assumption mapping stays aligned. *)
             new_decision_level s
           | 0 ->
             backtrack s 0;
             raise (Result Unsat)
           | _ ->
             new_decision_level s;
             enqueue s lit (-1)
         end
         else begin
           let v = pick_branch_var s in
           if v = 0 then raise (Result Sat)
           else begin
             s.s_decisions <- s.s_decisions + 1;
             new_decision_level s;
             let lit = if s.phase.(v) then v else -v in
             enqueue s lit (-1)
           end
         end
       done
     with Result r -> result := Some r);
    match !result with
    | Some Sat ->
      (* Reset the trail so the solver stays usable incrementally.
         [backtrack] records every popped assignment in [phase], and
         level-0 assignments stay on the trail, so {!value} reads the
         full model without an explicit copy. *)
      backtrack s 0;
      finish Sat
    | Some (Unsat | Unknown _ as r) -> finish r
    | None -> assert false
  end

let value s v =
  if v < 1 || v > s.nvars then invalid_arg "Solver.value";
  if var_assigned s v then var_true s v else s.phase.(v)

let set_learnt_hook s hook = s.learnt_hook <- hook

let stats s =
  {
    decisions = s.s_decisions;
    conflicts = s.s_conflicts;
    propagations = s.s_propagations;
    restarts = s.s_restarts;
    learned = s.s_learned;
  }

(* Test hooks: structural invariants that would be awkward to observe
   through the public solving interface alone. *)
let live_learnt_clauses s = Veci.length s.learnts
let db_reductions s = s.s_reduces
let removed_clauses s = s.s_removed

let reasons_are_live s =
  let ok = ref true in
  for i = 0 to s.trail_size - 1 do
    let r = s.reason.(abs s.trail.(i)) in
    if r >= 0 && cls_len s r = 0 then ok := false
  done;
  !ok