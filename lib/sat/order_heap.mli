(** Indexed binary max-heap over variable activities — the VSIDS
    branching order.

    The solver's previous [pick_branch_var] scanned every variable on
    every decision: O(nvars) per decision dwarfs the rest of the
    search loop on the attack miters (thousands of variables, a
    decision every few propagations). The order heap keeps unassigned
    variables ordered by activity so a decision is an O(log n) pop,
    and activity bumps are O(log n) sift-ups.

    The heap owns the activity table: {!bump} both raises an activity
    and restores heap order, and {!rescale} applies the VSIDS
    overflow rescue to every variable and rebuilds. Variables are the
    positive integers handed out by the solver; index 0 is unused. *)

type t

val create : unit -> t

val ensure : t -> int -> unit
(** [ensure t v] grows the tables to cover variables [1..v] (new
    variables start at activity 0 and are inserted into the heap). *)

val in_heap : t -> int -> bool

val insert : t -> int -> unit
(** Insert a variable; a no-op if it is already present. *)

val pop : t -> int
(** Remove and return the maximum-activity variable; 0 when empty.
    Ties are broken by heap layout, which is deterministic for a
    deterministic operation sequence. *)

val size : t -> int

val activity : t -> int -> float

val bump : t -> int -> float -> unit
(** Add to a variable's activity and sift it up if it is in the heap.
    The solver checks {!activity} afterwards to trigger {!rescale}. *)

val set_activity : t -> int -> float -> unit
(** Overwrite an activity and restore heap order whichever way it
    moved (sift up on increase, down on decrease). *)

val rescale : t -> float -> unit
(** Multiply every activity by a factor and rebuild the heap — the
    1e-100 overflow rescue. *)

val rebuild : t -> unit
(** Re-establish the heap invariant from the current activities (used
    after bulk activity edits; {!rescale} calls it internally). *)

val valid : t -> bool
(** Invariant check for tests: every parent's activity >= its
    children's, and the position index matches the heap array. *)
