(** Tseitin encoding of netlists into CNF.

    Instantiates a copy of a {!Rb_netlist.Netlist.t} inside a
    {!Solver}: every net receives a solver variable (or reuses a
    caller-supplied one, which is how the SAT attack shares primary
    inputs between the two halves of a miter and key variables across
    I/O-constraint copies). *)

type instance = {
  input_vars : int array;  (** solver variable per primary input *)
  key_vars : int array;  (** solver variable per key input *)
  output_vars : int array;  (** solver variable per output, in order *)
}

val gate_clauses : z:int -> v:(int -> int) -> Rb_netlist.Netlist.gate -> int list list
(** The CNF clauses asserting [z <-> gate(...)], with [v] mapping nets
    to variables — the per-gate encoding shared with {!Dimacs}. *)

val encode :
  ?input_vars:int array ->
  ?key_vars:int array ->
  Solver.t ->
  Rb_netlist.Netlist.t ->
  instance
(** Add one copy of the circuit to the solver. Omitted variable arrays
    are freshly allocated; supplied arrays must match the circuit's
    widths. Gate semantics are encoded with the standard 2-3 clause
    Tseitin forms. *)

val constrain_observation :
  Solver.t ->
  Rb_netlist.Netlist.t ->
  key_vars:int array ->
  inputs:bool array ->
  outputs:bool array ->
  unit
(** Assert [circuit(inputs, key) = outputs] as clauses over the
    existing [key_vars] — the incremental attack's per-DIP constraint.
    Unlike {!encode} + pinning, the encoding is specialized under the
    constant [inputs]: gates fold through constants and shared or
    negated literals unify, so fresh variables and clauses are
    allocated only for the key-dependent cone of this input pattern.
    Variable allocation is a deterministic function of
    [(circuit, inputs)], which keeps the variable spaces of portfolio
    members aligned. An observation a key cannot explain (possible
    only with an inconsistent oracle) makes the instance permanently
    unsatisfiable. *)

val constrain_inputs : Solver.t -> instance -> bool array -> unit
(** Pin the instance's primary inputs to concrete values (unit
    clauses). Used to replay a distinguishing input pattern. *)

val constrain_outputs : Solver.t -> instance -> bool array -> unit
(** Pin the instance's outputs to oracle-observed values. *)
