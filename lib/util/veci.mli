(** Growable flat [int] vectors.

    The CDCL solver's watch lists and trail-like scratch buffers need
    push/truncate semantics without per-element boxing: an [int list]
    watch list allocates a cons cell per propagation step, which is
    exactly the garbage the hot loop must not produce. A [Veci] is a
    plain [int array] plus a length — pushes amortize to O(1), reads
    compile to unboxed array loads, and [truncate]/[clear] never
    release storage, so a buffer reused across iterations stops
    allocating entirely once it has seen its high-water mark. *)

type t

val create : ?cap:int -> unit -> t
(** Empty vector. [cap] pre-sizes the backing array (default 4);
    negative caps raise [Invalid_argument]. *)

val length : t -> int

val get : t -> int -> int
(** Bounds-checked read; raises [Invalid_argument] outside
    [0..length-1]. *)

val set : t -> int -> int -> unit
(** Bounds-checked write to an existing slot. *)

val push : t -> int -> unit
(** Append, growing the backing array geometrically when full. *)

val pop : t -> int
(** Remove and return the last element; raises [Invalid_argument] on
    an empty vector. *)

val truncate : t -> int -> unit
(** Shrink the length (storage is kept). Raises [Invalid_argument] if
    the new length is negative or exceeds the current length. *)

val clear : t -> unit
(** [truncate] to 0. *)

val swap_remove : t -> int -> unit
(** Remove index [i] by moving the last element into it — O(1), does
    not preserve order. *)

val to_list : t -> int list
val of_list : int list -> t
val to_array : t -> int array
(** Fresh array copy of the live prefix. *)

val iter : (int -> unit) -> t -> unit
val exists : (int -> bool) -> t -> bool

val unsafe_get : t -> int -> int
(** Unchecked read for loops that have already established bounds. *)

val unsafe_set : t -> int -> int -> unit

val unsafe_data : t -> int array
(** The backing array itself (valid up to [length - 1]). For hot loops
    that index one vector many times: reading through [t] reloads the
    [data] pointer after every write the compiler cannot prove
    non-aliasing, while a let-bound alias is loaded once. The alias is
    invalidated by [push] (which may reallocate); do not hold it
    across one. *)
