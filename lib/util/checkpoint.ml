type t = {
  path : string;
  mutex : Mutex.t;
  table : (string, Json.t) Hashtbl.t;
  mutable oc : out_channel option;
}

let m_skipped = Metrics.counter ~scope:"limits" "checkpoint_chunks_skipped"

(* One journal line. Rendered compactly so a record is a single line
   and the journal stays greppable. *)
let render_line key value =
  Json.to_string (Json.Obj [ ("k", Json.String key); ("v", value) ])

let parse_line line =
  match Json.of_string line with
  | Error _ -> None
  | Ok doc -> (
    match (Json.member "k" doc, Json.member "v" doc) with
    | Some (Json.String k), Some v -> Some (k, v)
    | _ -> None)

(* Load an existing journal. A run killed mid-write leaves a torn final
   line; parsing stops at the first undecodable line so a torn tail
   costs at most the record being written when the run died. *)
let load table path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec loop () =
          match input_line ic with
          | exception End_of_file -> ()
          | line ->
            if String.trim line = "" then loop ()
            else (
              match parse_line line with
              | None -> () (* torn tail: ignore this and everything after *)
              | Some (k, v) ->
                Hashtbl.replace table k v;
                loop ())
        in
        loop ())
  end

let create ~path ~resume =
  let table = Hashtbl.create 64 in
  if resume then load table path;
  (* Append keeps replayed records on resume; a fresh run truncates. *)
  let flags =
    if resume then [ Open_wronly; Open_creat; Open_append; Open_binary ]
    else [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
  in
  let oc = open_out_gen flags 0o644 path in
  { path; mutex = Mutex.create (); table; oc = Some oc }

let path t = t.path
let entries t = Hashtbl.length t.table

let find t key =
  Mutex.lock t.mutex;
  let v = Hashtbl.find_opt t.table key in
  Mutex.unlock t.mutex;
  if v <> None then Metrics.incr m_skipped;
  v

let record t key value =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if not (Hashtbl.mem t.table key) then begin
        Hashtbl.replace t.table key value;
        match t.oc with
        | None -> ()
        | Some oc ->
          (* Flush per record: crash safety is the point. *)
          output_string oc (render_line key value);
          output_char oc '\n';
          flush oc
      end)

(* Best-effort: callable from a signal handler, which may interrupt a
   thread that already holds the mutex — never block there. Records
   are flushed as they are written, so this only catches an in-flight
   buffer. *)
let flush_now t =
  if Mutex.try_lock t.mutex then begin
    (match t.oc with Some oc -> (try flush oc with Sys_error _ -> ()) | None -> ());
    Mutex.unlock t.mutex
  end

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        t.oc <- None;
        close_out_noerr oc)
