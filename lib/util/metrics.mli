(** Lightweight observability: named counters, gauges and wall-clock
    timers grouped into scopes, plus nested span tracing, behind one
    process-wide registry that renders to text and {!Json}.

    The design splits metrics into two classes with different
    guarantees:

    - {b Counters and gauges are deterministic.} They count logical
      work (solver decisions, DIP queries, operations evaluated,
      augmenting paths, pool tasks), so two runs of the same workload
      produce identical values regardless of [--jobs] or machine.
      Counter updates are atomic adds, which commute, so parallel
      fan-out cannot perturb them.
    - {b Timers and spans are not.} They observe wall-clock durations
      and are reported separately, so deterministic surfaces (stdout
      tables, counter snapshots) never embed a timing value.

    Collection is {e disabled by default}: every record operation
    first reads one atomic flag and returns immediately when the sink
    is off, so instrumented hot paths cost a predictable branch.
    Handles may be created eagerly at module initialization whether or
    not metrics are ever enabled.

    All operations are safe to call from pool worker domains. *)

type counter
type gauge
type timer

val enabled : unit -> bool
(** Is the sink collecting? [false] at startup. *)

val set_enabled : bool -> unit
(** Turn collection on or off. Registered metrics and their current
    values survive; only future record operations are affected. *)

val reset : unit -> unit
(** Zero every registered metric (counters to 0, gauges to 0, timers
    and spans to empty distributions). Registrations are kept. *)

val now_s : unit -> float
(** The clock used by {!time}, {!with_span} and
    {!Rb_util.Limits.with_deadline}: {e monotonic} seconds
    ([CLOCK_MONOTONIC] via a C stub), so durations and absolute
    deadlines are immune to NTP steps and wall-clock adjustments.
    The epoch is unspecified (typically boot time) — values are only
    meaningful as differences or as deadlines compared against later
    [now_s] samples, never as calendar timestamps. *)

(** {1 Handles}

    [counter ~scope name] returns the process-wide metric registered
    under [scope ^ "/" ^ name], creating it on first use; re-requesting
    the same key returns the same handle. Requesting a key that is
    already registered as a different metric type raises
    [Invalid_argument]. Scopes must not contain ['/']. *)

val counter : scope:string -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : scope:string -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val timer : scope:string -> string -> timer

val observe : timer -> float -> unit
(** Record one duration, in seconds. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, recording its wall-clock duration when the sink is
    enabled. Exceptions propagate; the duration is still recorded. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Nested span tracing. [with_span "fig4" f] times [f] under the span
    path ["fig4"]; a [with_span "sweep" g] inside [f] records under
    ["fig4/sweep"]. The span stack is per-domain, so spans opened by
    pool workers nest under the worker's own stack, not the
    submitter's. A no-op (beyond running the thunk) when disabled. *)

(** {1 Snapshots} *)

type dist = {
  count : int;
  total : float;  (** seconds *)
  min : float;  (** [infinity] when [count = 0] *)
  max : float;  (** [neg_infinity] when [count = 0] *)
}

type snapshot = {
  counters : (string * int) list;  (** ["scope/name"], sorted by key *)
  gauges : (string * float) list;
  timers : (string * dist) list;
  spans : (string * dist) list;  (** keyed by span path, sorted *)
}

val snapshot : unit -> snapshot
(** A consistent-enough copy of every registered metric (individual
    reads are atomic; the snapshot as a whole is not a global
    barrier — take snapshots between parallel phases, not inside
    them). All four lists are sorted by key. *)

val counter_deltas : before:snapshot -> after:snapshot -> (string * int) list
(** Per-key [after - before] for counters, dropping zero deltas;
    counters absent from [before] count from 0. Sorted by key. *)

val span_total : snapshot -> string -> float option
(** Total seconds recorded under a span path, if it was ever entered. *)

val counters_to_json : (string * int) list -> Json.t
(** An object mapping counter key to integer value. *)

val to_json : snapshot -> Json.t
(** [{"counters": {..}, "gauges": {..}, "timers": {..}, "spans": {..}}]
    with each timer/span as
    [{"count": n, "total_s": t, "min_s": a, "max_s": b}]. *)

val render : snapshot -> string
(** Human-readable multi-line text form of a snapshot. *)
