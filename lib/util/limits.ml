type reason = Conflicts | Propagations | Deadline | Cancelled

type t = {
  max_conflicts : int option;
  max_propagations : int option;
  deadline_s : float option;
  cancels : bool Atomic.t list;
}

let none =
  { max_conflicts = None; max_propagations = None; deadline_s = None; cancels = [] }

let make ?max_conflicts ?max_propagations ?deadline_s ?cancel () =
  { max_conflicts; max_propagations; deadline_s; cancels = Option.to_list cancel }

let conflicts n = make ~max_conflicts:n ()

let is_none t =
  t.max_conflicts = None && t.max_propagations = None && t.deadline_s = None
  && t.cancels = []

let new_cancel () = Atomic.make false
let cancel flag = Atomic.set flag true
let cancelled flag = Atomic.get flag

let with_cancel t flag = { t with cancels = flag :: t.cancels }

(* Deadlines compose by tightening: the earlier of the two wins, so a
   per-request deadline can only shrink whatever the daemon already
   imposed. *)
let with_deadline t deadline_s =
  let deadline_s =
    match t.deadline_s with Some d -> Float.min d deadline_s | None -> deadline_s
  in
  { t with deadline_s = Some deadline_s }

let has_deadline t = t.deadline_s <> None
let has_budget t = t.max_conflicts <> None || t.max_propagations <> None

let exceeds budget used =
  match budget with Some b -> used >= b | None -> false

(* The nondeterministic half: cancel flags first (one atomic read
   each), then the wall clock (a syscall — only consulted when a
   deadline is actually set). *)
let interrupted t =
  if List.exists Atomic.get t.cancels then Some Cancelled
  else
    match t.deadline_s with
    | Some d when Metrics.now_s () >= d -> Some Deadline
    | _ -> None

let check t ~conflicts ~propagations =
  if exceeds t.max_conflicts conflicts then Some Conflicts
  else if exceeds t.max_propagations propagations then Some Propagations
  else interrupted t

let reason_label = function
  | Conflicts -> "conflicts"
  | Propagations -> "propagations"
  | Deadline -> "deadline"
  | Cancelled -> "cancelled"

let m_budget = Metrics.counter ~scope:"limits" "budget_exhausted"
let m_deadline = Metrics.counter ~scope:"limits" "deadline_exceeded"
let m_cancelled = Metrics.counter ~scope:"limits" "cancelled"

let note = function
  | Conflicts | Propagations -> Metrics.incr m_budget
  | Deadline -> Metrics.incr m_deadline
  | Cancelled -> Metrics.incr m_cancelled
