(** A fixed-size domain pool for embarrassingly parallel evaluation.

    The experiment layer fans per-benchmark sweeps and combination
    ranges out over OCaml 5 domains through this pool. The contract is
    deterministic parallelism: {!map_list}/{!map_array} collect results
    by task index, so the output is identical for every worker count —
    including [jobs = 1], which runs tasks inline in the calling domain
    with no domain machinery at all.

    Tasks must not share mutable state (each experiment task derives
    its own {!Rng.t} from the harness seed and its task index); the
    pool itself only synchronizes the work queue and result slots.

    A map call issued from inside a pool task runs sequentially in that
    task (nested fan-out never deadlocks the fixed worker set).

    When {!Metrics} collection is enabled, the pool reports under the
    ["pool"] scope: counters [maps] and [tasks] count map calls and
    elements mapped (elements are counted whether they run inline or on
    a worker, so the totals are identical for every worker count), and
    timers [queue_wait] / [task_busy] record per-task submission-to-start
    latency and execution time for tasks that ran on a worker. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [--jobs] default. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] worker domains ([jobs] defaults to
    {!default_jobs}; values below 1 are clamped to 1). A 1-job pool
    spawns no domains. *)

val jobs : t -> int

val map_array : t -> f:('a -> 'b) -> 'a array -> 'b array
(** Apply [f] to every element on the pool's workers and return the
    results in input order. Every element is evaluated exactly once.
    If any task raises, the remaining tasks still run to completion,
    and the exception of the lowest-indexed failing task is re-raised
    (with its backtrace) in the caller. *)

val map_list : t -> f:('a -> 'b) -> 'a list -> 'b list
(** {!map_array} over a list. *)

(** One failed task of {!map_array_result}. *)
type task_error = {
  index : int;  (** input index of the failing element *)
  attempts : int;  (** runs spent, i.e. [1 + retries] *)
  message : string;  (** [Printexc.to_string] of the last exception *)
}

val map_array_result :
  ?retries:int -> t -> f:('a -> 'b) -> 'a array -> ('b, task_error) result array
(** Fault-isolated {!map_array}: a raising task yields its own
    [Error] slot instead of poisoning the whole map, so one bad sample
    no longer discards its siblings. The exactly-once/index-order
    contract is unchanged; results are deterministic for every worker
    count. A task that raises is re-run up to [retries] more times
    (default 0) in place, deterministically — tasks must be pure, so a
    retry of a genuinely failing task fails identically, while an
    injected first-attempt fault (site ["pool/task"], keyed by task
    index — see {!Faults}) is always recovered by [retries >= 1].
    Retries count under ["faults/retries"]. [Invalid_argument] on
    negative [retries] or a shut-down pool. *)

val run_task_result :
  retries:int -> index:int -> (unit -> 'b) -> ('b, task_error) result
(** The per-task wrapper of {!map_array_result}, exposed so a driver
    running {e without} a pool applies the identical fault-site,
    retry and error-capture semantics — keeping pooled and pool-free
    runs byte-identical under fault injection. *)

(** A bounded wait-free exchange buffer for racing pool tasks.

    Producers running concurrently on pool workers push values with a
    single fetch-and-add slot claim; pushes beyond [capacity] are
    dropped, so a push never blocks and never allocates beyond the
    fixed slot array. Draining is only sound at a {e quiescent point}:
    every producer must have finished (the pool map that ran them has
    returned) so the slot writes happen-before the reads. Built for
    the SAT-attack portfolio, which exports short learned clauses
    during a racing round and imports them between rounds. *)
module Share_buffer : sig
  type 'a t

  val create : capacity:int -> 'a t
  (** [Invalid_argument] when [capacity < 1]. *)

  val capacity : 'a t -> int

  val push : 'a t -> 'a -> bool
  (** Claim the next slot and store the value; [false] (value dropped)
      when the buffer is full. Wait-free, safe from any domain. *)

  val drain : 'a t -> 'a list
  (** All stored values in push order, emptying the buffer for the
      next round. Must only be called when no push is in flight. *)
end

val shutdown : t -> unit
(** Join the worker domains. Idempotent. Mapping over a pool after
    [shutdown] raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down on exit,
    including on exceptions. *)
