type t = {
  jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  space_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  capacity : int;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

(* Deterministic counters: elements are counted per map call whatever
   executes them, so totals match across worker counts. Queue-wait and
   busy time are wall-clock and live on the timing side of the
   Metrics contract. *)
let m_maps = Metrics.counter ~scope:"pool" "maps"
let m_tasks = Metrics.counter ~scope:"pool" "tasks"
let t_queue_wait = Metrics.timer ~scope:"pool" "queue_wait"
let t_task_busy = Metrics.timer ~scope:"pool" "task_busy"

(* Workers flag their domain so a map issued from inside a task falls
   back to inline execution instead of blocking on its own pool. *)
let inside_worker = Domain.DLS.new_key (fun () -> false)

let worker_loop t =
  Domain.DLS.set inside_worker true;
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.work_available t.mutex
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex
    else begin
      let task = Queue.pop t.queue in
      Condition.signal t.space_available;
      Mutex.unlock t.mutex;
      task ();
      loop ()
    end
  in
  loop ()

let create ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      space_available = Condition.create ();
      queue = Queue.create ();
      capacity = 4 * jobs;
      closed = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let submit t task =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.map: pool is shut down"
  end;
  while Queue.length t.queue >= t.capacity do
    Condition.wait t.space_available t.mutex
  done;
  Queue.push task t.queue;
  Condition.signal t.work_available;
  Mutex.unlock t.mutex

let check_open t =
  Mutex.lock t.mutex;
  let closed = t.closed in
  Mutex.unlock t.mutex;
  if closed then invalid_arg "Pool.map: pool is shut down"

let map_array t ~f arr =
  let n = Array.length arr in
  check_open t;
  Metrics.incr m_maps;
  Metrics.add m_tasks n;
  if t.jobs <= 1 || Domain.DLS.get inside_worker || n <= 1 then Array.map f arr
  else begin
    let timed = Metrics.enabled () in
    let results = Array.make n None in
    let errors = Array.make n None in
    let remaining = ref n in
    let mutex = Mutex.create () in
    let finished = Condition.create () in
    for i = 0 to n - 1 do
      let submitted = if timed then Metrics.now_s () else 0.0 in
      submit t (fun () ->
          let started = if timed then Metrics.now_s () else 0.0 in
          let outcome =
            match f arr.(i) with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ())
          in
          if timed then begin
            Metrics.observe t_queue_wait (started -. submitted);
            Metrics.observe t_task_busy (Metrics.now_s () -. started)
          end;
          Mutex.lock mutex;
          (match outcome with
          | Ok v -> results.(i) <- Some v
          | Error err -> errors.(i) <- Some err);
          decr remaining;
          if !remaining = 0 then Condition.signal finished;
          Mutex.unlock mutex)
    done;
    Mutex.lock mutex;
    while !remaining > 0 do
      Condition.wait finished mutex
    done;
    Mutex.unlock mutex;
    (* Re-raise deterministically: the lowest-indexed failure wins,
       independent of which worker hit it first. *)
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list t ~f l = Array.to_list (map_array t ~f (Array.of_list l))

type task_error = { index : int; attempts : int; message : string }

let m_retries = Metrics.counter ~scope:"faults" "retries"

(* The fault-isolation wrapper: never raises, so layered on map_array
   the exactly-once/index-order contract (and the counters and timers
   above) carry over unchanged. The "pool/task" fault site fires on a
   task's first attempt only, so any retry budget >= 1 recovers every
   injected failure deterministically. Exposed so pool-free callers
   (drivers run without a pool in tests) get byte-identical
   fault/retry behaviour. *)
let run_task_result ~retries ~index f =
  if retries < 0 then invalid_arg "Pool.run_task_result: negative retries";
  let rec go attempt =
    match
      if attempt = 0 then Faults.inject ~site:"pool/task" ~key:(string_of_int index);
      f ()
    with
    | v -> Ok v
    | exception e ->
      if attempt < retries then begin
        Metrics.incr m_retries;
        go (attempt + 1)
      end
      else Error { index; attempts = attempt + 1; message = Printexc.to_string e }
  in
  go 0

let map_array_result ?(retries = 0) t ~f arr =
  if retries < 0 then invalid_arg "Pool.map_array_result: negative retries";
  map_array t
    ~f:(fun (i, x) -> run_task_result ~retries ~index:i (fun () -> f x))
    (Array.mapi (fun i x -> (i, x)) arr)

(* A bounded wait-free single-round exchange buffer. Writers claim
   slots with one fetch-and-add and write their slot unshared; pushes
   past capacity are dropped (the producers are speculative — losing
   an exported clause costs nothing but a little speed). [drain] is
   only sound at a quiescent point: all producers must have returned
   (e.g. the pool map that ran them has joined) so their slot writes
   happen-before the reads. The SAT-attack portfolio drains between
   solve rounds, after the racing map_array call returns. *)
module Share_buffer = struct
  type 'a t = { slots : 'a option array; cursor : int Atomic.t }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Share_buffer.create: capacity must be >= 1";
    { slots = Array.make capacity None; cursor = Atomic.make 0 }

  let capacity b = Array.length b.slots

  let push b x =
    let i = Atomic.fetch_and_add b.cursor 1 in
    if i < Array.length b.slots then begin
      b.slots.(i) <- Some x;
      true
    end
    else false

  let drain b =
    let n = min (Atomic.get b.cursor) (Array.length b.slots) in
    let out = ref [] in
    for i = n - 1 downto 0 do
      (match b.slots.(i) with Some x -> out := x :: !out | None -> ());
      b.slots.(i) <- None
    done;
    Atomic.set b.cursor 0;
    !out
end

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.closed <- true;
  t.workers <- [];
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
