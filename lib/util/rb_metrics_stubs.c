/* Monotonic clock for Rb_util.Metrics.now_s.
 *
 * Durations and absolute deadlines are computed as differences of
 * now_s samples, so the clock must not jump when NTP steps the system
 * time: CLOCK_MONOTONIC when available, with a gettimeofday fallback
 * for platforms without it (where the old wall-clock behaviour is the
 * best we can do). */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value rb_metrics_monotonic_now_s(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
  }
}
