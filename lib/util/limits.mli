(** Resource budgets and cooperative cancellation for long-running
    work.

    A {!t} is an immutable bundle of optional limits threaded down
    from a CLI or driver into the layers that loop: the SAT solver, the
    methodology grow loop, the experiment sweeps. Each looping layer
    polls {!check} (or the cheaper {!interrupted}) at its own safe
    points and degrades to a partial result carrying the {!reason}
    instead of running forever.

    The limits split into two classes, mirroring the determinism
    contract of {!Metrics}:

    - {b Conflict and propagation budgets are deterministic.} They
      count the solver's logical work, so a budgeted run aborts at the
      same point on every machine and for every [--jobs] value.
      Experiments and tests use only these.
    - {b Wall deadlines and cancel flags are not.} They exist for the
      interactive CLIs (a user-facing [--timeout], a SIGINT handler
      flipping the flag); deterministic surfaces must never depend on
      them.

    When {!Metrics} collection is enabled, {!note} records every
    budget stop under the ["limits"] scope ([budget_exhausted],
    [deadline_exceeded], [cancelled]). *)

type reason =
  | Conflicts  (** the solver's conflict budget ran out *)
  | Propagations  (** the solver's propagation budget ran out *)
  | Deadline  (** the wall-clock deadline passed *)
  | Cancelled  (** the cooperative cancel flag was raised *)

type t

val none : t
(** No limits: {!check} and {!interrupted} always return [None]. The
    default everywhere a [?limit] is accepted. *)

val make :
  ?max_conflicts:int ->
  ?max_propagations:int ->
  ?deadline_s:float ->
  ?cancel:bool Atomic.t ->
  unit ->
  t
(** [deadline_s] is an {e absolute} time on the {!Metrics.now_s}
    clock (monotonic, so a stepped wall clock cannot trip or extend
    it); compute it as [Metrics.now_s () +. budget]. Omitted fields
    are unlimited. *)

val conflicts : int -> t
(** [conflicts n] = [make ~max_conflicts:n ()] — the common case. *)

val is_none : t -> bool
(** [true] iff no limit of any kind is set. Loops use this to skip the
    per-iteration poll entirely on the unlimited path. *)

val new_cancel : unit -> bool Atomic.t
(** A fresh cancel flag, initially unraised. Share one flag between a
    signal handler and any number of [make ~cancel] values. *)

val cancel : bool Atomic.t -> unit
(** Raise the flag. Async-signal-safe (one atomic store). *)

val cancelled : bool Atomic.t -> bool

val with_cancel : t -> bool Atomic.t -> t
(** [with_cancel t flag] adds one more cancel flag to [t]: the result
    trips as [Cancelled] when {e any} of [t]'s flags or [flag] is
    raised. Layered cancellation — e.g. a portfolio race's
    first-winner flag composed with an outer SIGINT flag — without
    the layers knowing about each other. *)

val with_deadline : t -> float -> t
(** [with_deadline t d] tightens [t] with an absolute deadline on the
    {!Metrics.now_s} clock: the result trips as [Deadline] at the
    earlier of [d] and any deadline already in [t]. Deadlines only
    ever shrink, so a per-request deadline composed onto a daemon-wide
    budget cannot extend it. *)

val has_deadline : t -> bool
(** [true] iff a wall deadline is set. Lets a caller distinguish a
    deadline-bearing limit (whose results must not be cached — they
    depend on the clock) from a purely deterministic one. *)

val has_budget : t -> bool
(** [true] iff a deterministic work budget (conflicts or propagations)
    is set. Budgeted runs must report the {e same} partial result at
    every parallelism level, so racing layers (the SAT portfolio) use
    this to route budget stops through the deterministic member rather
    than whichever racer finishes first. *)

val check : t -> conflicts:int -> propagations:int -> reason option
(** Poll every limit against the caller's {e per-call} work deltas.
    Checks in a fixed order — [Conflicts], [Propagations], [Cancelled],
    [Deadline] — so the reported reason is deterministic whenever the
    deterministic budgets are the ones that trip. *)

val interrupted : t -> reason option
(** {!check} for loops with no solver counters: polls only the cancel
    flag and the deadline. Cheap enough for per-iteration use. *)

val reason_label : reason -> string
(** ["conflicts"], ["propagations"], ["deadline"], ["cancelled"] —
    stable strings for tables and JSON. *)

val note : reason -> unit
(** Bump the ["limits"] counter for a stop that is about to be
    reported ([budget_exhausted] for the two deterministic reasons,
    [deadline_exceeded], [cancelled]). Callers that surface a reason
    should note it exactly once. *)
