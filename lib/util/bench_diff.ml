type kind =
  | Missing_section
  | Missing_counter
  | New_counter
  | Counter_drift
  | Wall_regression

type violation = {
  section : string;
  metric : string;
  kind : kind;
  baseline : float;
  current : float;
}

type report = {
  violations : violation list;
  sections_checked : int;
  counters_checked : int;
  additions : string list;
}

let describe v =
  match v.kind with
  | Missing_section -> Printf.sprintf "%s: section missing from current run" v.section
  | Missing_counter ->
    Printf.sprintf "%s: counter %s missing from current run (baseline %.0f)"
      v.section v.metric v.baseline
  | New_counter ->
    Printf.sprintf
      "%s: counter %s not in baseline (current %.0f) — refresh the baseline or \
       pass --allow-new"
      v.section v.metric v.current
  | Counter_drift ->
    Printf.sprintf "%s: counter %s drifted %.0f -> %.0f" v.section v.metric
      v.baseline v.current
  | Wall_regression ->
    Printf.sprintf "%s: wall-clock regressed %.3fs -> %.3fs" v.section v.baseline
      v.current

(* --------------------------------------------------- document decoding *)

type section = {
  name : string;
  wall_s : float;
  counters : (string * float) list;
}

exception Shape of string

let shape fmt = Printf.ksprintf (fun msg -> raise (Shape msg)) fmt

let number ~what = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> shape "%s: expected a number" what

let field ~what name j =
  match Json.member name j with
  | Some v -> v
  | None -> shape "%s: missing field %S" what name

let decode_section j =
  let name =
    match field ~what:"section" "section" j with
    | Json.String s -> s
    | _ -> shape "section: name is not a string"
  in
  let what = "section " ^ name in
  let wall_s = number ~what:(what ^ " wall_s") (field ~what "wall_s" j) in
  let counters =
    match field ~what "counters" j with
    | Json.Obj fields ->
      List.map (fun (k, v) -> (k, number ~what:(what ^ " counter " ^ k) v)) fields
    | _ -> shape "%s: counters is not an object" what
  in
  { name; wall_s; counters }

let decode_doc ~label j =
  (match Json.member "schema" j with
  | Some (Json.String "rb-bench/1") -> ()
  | Some (Json.String other) -> shape "%s: unsupported schema %S" label other
  | _ -> shape "%s: not a BENCH.json document (no \"schema\")" label);
  match field ~what:label "sections" j with
  | Json.List sections -> List.map decode_section sections
  | _ -> shape "%s: sections is not a list" label

(* ------------------------------------------------------------- compare *)

let within_rel ~tol ~baseline ~current =
  if baseline = current then true
  else begin
    let scale = Float.max (Float.abs baseline) 1e-9 in
    Float.abs (current -. baseline) <= (tol *. scale) +. 1e-12
  end

let compare_docs ?(wall_tol = 0.5) ?(counter_tol = 0.0) ?(allow_new = false)
    ~baseline ~current () =
  if wall_tol < 0.0 || counter_tol < 0.0 then
    invalid_arg "Bench_diff.compare_docs: negative tolerance";
  match
    let base = decode_doc ~label:"baseline" baseline in
    let cur = decode_doc ~label:"current" current in
    (base, cur)
  with
  | exception Shape msg -> Error msg
  | base, cur ->
    let violations = ref [] in
    let additions = ref [] in
    let counters_checked = ref 0 in
    let flag section metric kind baseline current =
      violations := { section; metric; kind; baseline; current } :: !violations
    in
    List.iter
      (fun b ->
        match List.find_opt (fun c -> c.name = b.name) cur with
        | None -> flag b.name "" Missing_section 0.0 0.0
        | Some c ->
          if c.wall_s > b.wall_s *. (1.0 +. wall_tol) then
            flag b.name "wall_s" Wall_regression b.wall_s c.wall_s;
          List.iter
            (fun (key, bv) ->
              incr counters_checked;
              match List.assoc_opt key c.counters with
              | None -> flag b.name key Missing_counter bv 0.0
              | Some cv ->
                if not (within_rel ~tol:counter_tol ~baseline:bv ~current:cv) then
                  flag b.name key Counter_drift bv cv)
            b.counters;
          (* Counters only in the current run: strict mode treats them
             as a gate failure (instrumentation changed without a
             baseline refresh); [allow_new] demotes them to notes. *)
          List.iter
            (fun (key, cv) ->
              if not (List.mem_assoc key b.counters) then
                if allow_new then
                  additions := Printf.sprintf "%s/%s" c.name key :: !additions
                else flag b.name key New_counter 0.0 cv)
            c.counters)
      base;
    List.iter
      (fun c ->
        if not (List.exists (fun b -> b.name = c.name) base) then
          additions := c.name :: !additions)
      cur;
    Ok
      {
        violations = List.rev !violations;
        sections_checked = List.length base;
        counters_checked = !counters_checked;
        additions = List.rev !additions;
      }

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Ok contents
  | exception Sys_error msg -> Error msg

let compare_files ?wall_tol ?counter_tol ?allow_new ~baseline ~current () =
  let ( let* ) = Result.bind in
  let load label path =
    let* contents =
      Result.map_error (Printf.sprintf "%s: %s" label) (read_file path)
    in
    Result.map_error (Printf.sprintf "%s (%s): %s" label path) (Json.of_string contents)
  in
  let* baseline = load "baseline" baseline in
  let* current = load "current" current in
  compare_docs ?wall_tol ?counter_tol ?allow_new ~baseline ~current ()
