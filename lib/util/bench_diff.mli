(** Compare two machine-readable bench reports ([BENCH.json], as
    emitted by [bench/main.exe --metrics]) against per-metric
    tolerances — the logic behind [bench/compare.exe] and the CI
    perf-regression gate.

    The deterministic/timing split of {!Metrics} drives the policy:

    - {b counters are exact by default} ([counter_tol = 0.0]) — they
      count logical work, so any drift means behaviour changed, in
      either direction;
    - {b wall-clock is tolerance-banded and one-sided} — only
      [current > baseline * (1 + wall_tol)] is a regression; getting
      faster never fails the gate.

    Divergence in either direction is surfaced: anything in
    [baseline] but missing from [current] is a failure (silent
    coverage shrink is exactly what the gate exists to catch), and a
    counter only in [current] is a failure too by default — behaviour
    grew without a baseline refresh. Pass [allow_new] to demote new
    counters to informational additions (the intended mode for a PR
    that adds instrumentation and defers the baseline refresh).
    Sections only in [current] are always informational — the gate
    runs a pinned section list, so an extra section cannot slip in
    silently. *)

type kind =
  | Missing_section  (** baseline section absent from current *)
  | Missing_counter  (** baseline counter absent from the section *)
  | New_counter
      (** counter absent from the baseline section (strict mode only —
          [allow_new] reports these as additions instead) *)
  | Counter_drift  (** counter outside [counter_tol], either direction *)
  | Wall_regression  (** wall-clock above [baseline * (1 + wall_tol)] *)

type violation = {
  section : string;
  metric : string;  (** [""] for section-level violations *)
  kind : kind;
  baseline : float;
  current : float;
}

type report = {
  violations : violation list;  (** document order *)
  sections_checked : int;
  counters_checked : int;
  additions : string list;
      (** sections/counters only in [current]; informational *)
}

val describe : violation -> string
(** One human-readable line, e.g.
    ["fig6: counter matching/phases drifted 120 -> 140 (tolerance 0%)"]. *)

val compare_docs :
  ?wall_tol:float ->
  ?counter_tol:float ->
  ?allow_new:bool ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  (report, string) result
(** [wall_tol] and [counter_tol] are relative fractions (e.g. [0.5] =
    +50%); defaults [wall_tol = 0.5], [counter_tol = 0.0].
    [allow_new] (default [false]) tolerates counters present only in
    [current] as additions instead of {!New_counter} violations.
    [Error] means one of the documents does not have the [rb-bench/1]
    shape (that is a malformed input, not a regression — callers
    should exit with a distinct status). *)

val compare_files :
  ?wall_tol:float ->
  ?counter_tol:float ->
  ?allow_new:bool ->
  baseline:string ->
  current:string ->
  unit ->
  (report, string) result
(** {!compare_docs} over two files; file read and JSON parse errors
    surface as [Error]. *)
