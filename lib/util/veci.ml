type t = { mutable data : int array; mutable len : int }

let create ?(cap = 4) () =
  if cap < 0 then invalid_arg "Veci.create";
  { data = Array.make (max cap 1) 0; len = 0 }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Veci.get";
  Array.unsafe_get t.data i

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Veci.set";
  Array.unsafe_set t.data i x

let grow t needed =
  let cap = max needed (2 * Array.length t.data) in
  let bigger = Array.make cap 0 in
  Array.blit t.data 0 bigger 0 t.len;
  t.data <- bigger

let push t x =
  if t.len = Array.length t.data then grow t (t.len + 1);
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Veci.pop";
  t.len <- t.len - 1;
  Array.unsafe_get t.data t.len

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Veci.truncate";
  t.len <- n

let clear t = t.len <- 0

let swap_remove t i =
  if i < 0 || i >= t.len then invalid_arg "Veci.swap_remove";
  t.len <- t.len - 1;
  Array.unsafe_set t.data i (Array.unsafe_get t.data t.len)

let to_list t =
  let rec build i acc = if i < 0 then acc else build (i - 1) (t.data.(i) :: acc) in
  build (t.len - 1) []

let of_list l =
  let t = create ~cap:(max 1 (List.length l)) () in
  List.iter (push t) l;
  t

let to_array t = Array.sub t.data 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let exists p t =
  let rec scan i = i < t.len && (p (Array.unsafe_get t.data i) || scan (i + 1)) in
  scan 0

let unsafe_get t i = Array.unsafe_get t.data i
let unsafe_set t i x = Array.unsafe_set t.data i x
let unsafe_data t = t.data
