type counter = { c_key : string; value : int Atomic.t }
type gauge = { g_key : string; level : float Atomic.t }

(* One mutex per timer: observations are rare compared to counter
   bumps (instrumented code accumulates locally and flushes once per
   call), so contention is negligible. *)
type timer = {
  t_key : string;
  lock : Mutex.t;
  mutable count : int;
  mutable total : float;
  mutable mn : float;
  mutable mx : float;
}

type metric = C of counter | G of gauge | T of timer

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
(* Monotonic seconds (C stub over CLOCK_MONOTONIC): deadlines are
   stored as absolute now_s values, so an NTP step on the wall clock
   must not spuriously trip — or silently extend — every in-flight
   deadline, and timer distributions must never observe a negative
   duration. *)
external now_s : unit -> float = "rb_metrics_monotonic_now_s"

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

(* Spans live in the registry as timers under this reserved scope;
   snapshots split them back out. User scopes cannot collide with it
   because scopes may not contain '/'. *)
let span_scope = "span/"

let key ~scope name =
  if scope = "" || name = "" then invalid_arg "Metrics: empty scope or name";
  if String.contains scope '/' then invalid_arg "Metrics: scope contains '/'";
  scope ^ "/" ^ name

let register k make describe =
  Mutex.lock registry_lock;
  let metric =
    match Hashtbl.find_opt registry k with
    | Some m -> m
    | None ->
      let m = make () in
      Hashtbl.add registry k m;
      m
  in
  Mutex.unlock registry_lock;
  match describe metric with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Metrics: %S is already registered as another metric kind" k)

let counter ~scope name =
  register (key ~scope name)
    (fun () -> C { c_key = key ~scope name; value = Atomic.make 0 })
    (function C c -> Some c | _ -> None)

let gauge ~scope name =
  register (key ~scope name)
    (fun () -> G { g_key = key ~scope name; level = Atomic.make 0.0 })
    (function G g -> Some g | _ -> None)

let make_timer k =
  { t_key = k; lock = Mutex.create (); count = 0; total = 0.0;
    mn = infinity; mx = neg_infinity }

let timer ~scope name =
  register (key ~scope name)
    (fun () -> T (make_timer (key ~scope name)))
    (function T t -> Some t | _ -> None)

let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.value n)
let incr c = add c 1
let counter_value c = Atomic.get c.value

let set_gauge g v = if Atomic.get enabled_flag then Atomic.set g.level v
let gauge_value g = Atomic.get g.level

let observe_always t dt =
  Mutex.lock t.lock;
  t.count <- t.count + 1;
  t.total <- t.total +. dt;
  if dt < t.mn then t.mn <- dt;
  if dt > t.mx then t.mx <- dt;
  Mutex.unlock t.lock

let observe t dt = if Atomic.get enabled_flag then observe_always t dt

let time t f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now_s () in
    Fun.protect ~finally:(fun () -> observe_always t (now_s () -. t0)) f
  end

(* ---------------------------------------------------------------- spans *)

let span_stack : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let span_timer path =
  let k = span_scope ^ path in
  register k
    (fun () -> T (make_timer k))
    (function T t -> Some t | _ -> None)

let with_span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get span_stack in
    let path = match stack with [] -> name | top :: _ -> top ^ "/" ^ name in
    let t = span_timer path in
    Domain.DLS.set span_stack (path :: stack);
    let t0 = now_s () in
    Fun.protect
      ~finally:(fun () ->
        observe_always t (now_s () -. t0);
        Domain.DLS.set span_stack stack)
      f
  end

(* ------------------------------------------------------------ snapshots *)

type dist = { count : int; total : float; min : float; max : float }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  timers : (string * dist) list;
  spans : (string * dist) list;
}

let dist_of_timer t =
  Mutex.lock t.lock;
  let d = { count = t.count; total = t.total; min = t.mn; max = t.mx } in
  Mutex.unlock t.lock;
  d

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter
    (fun _ -> function
      | C c -> Atomic.set c.value 0
      | G g -> Atomic.set g.level 0.0
      | T t ->
        Mutex.lock t.lock;
        t.count <- 0;
        t.total <- 0.0;
        t.mn <- infinity;
        t.mx <- neg_infinity;
        Mutex.unlock t.lock)
    registry;
  Mutex.unlock registry_lock

let by_key (a, _) (b, _) = String.compare a b

let strip_span k = String.sub k (String.length span_scope)
    (String.length k - String.length span_scope)

let is_span k =
  String.length k >= String.length span_scope
  && String.sub k 0 (String.length span_scope) = span_scope

let snapshot () =
  Mutex.lock registry_lock;
  let metrics = Hashtbl.fold (fun k m acc -> (k, m) :: acc) registry [] in
  Mutex.unlock registry_lock;
  let counters = ref [] and gauges = ref [] and timers = ref [] and spans = ref [] in
  List.iter
    (fun (k, m) ->
      match m with
      | C c -> counters := (k, Atomic.get c.value) :: !counters
      | G g -> gauges := (k, Atomic.get g.level) :: !gauges
      | T t ->
        if is_span k then spans := (strip_span k, dist_of_timer t) :: !spans
        else timers := (k, dist_of_timer t) :: !timers)
    metrics;
  {
    counters = List.sort by_key !counters;
    gauges = List.sort by_key !gauges;
    timers = List.sort by_key !timers;
    spans = List.sort by_key !spans;
  }

let counter_deltas ~before ~after =
  let base = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace base k v) before.counters;
  after.counters
  |> List.filter_map (fun (k, v) ->
         let d = v - Option.value (Hashtbl.find_opt base k) ~default:0 in
         if d = 0 then None else Some (k, d))

let span_total s path =
  List.assoc_opt path s.spans |> Option.map (fun d -> d.total)

(* ----------------------------------------------------------- rendering *)

let counters_to_json counters =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters)

let dist_to_json d =
  Json.Obj
    [
      ("count", Json.Int d.count);
      ("total_s", Json.Float d.total);
      ("min_s", if d.count = 0 then Json.Null else Json.Float d.min);
      ("max_s", if d.count = 0 then Json.Null else Json.Float d.max);
    ]

let to_json s =
  Json.Obj
    [
      ("counters", counters_to_json s.counters);
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.float_or_string v)) s.gauges));
      ("timers", Json.Obj (List.map (fun (k, d) -> (k, dist_to_json d)) s.timers));
      ("spans", Json.Obj (List.map (fun (k, d) -> (k, dist_to_json d)) s.spans));
    ]

let render s =
  let buf = Buffer.create 512 in
  let section title render_one = function
    | [] -> ()
    | entries ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n';
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-40s %s\n" k (render_one v)))
        entries
  in
  let dist d =
    if d.count = 0 then "count 0"
    else
      Printf.sprintf "count %-6d total %10.4fs  min %.6fs  max %.6fs" d.count
        d.total d.min d.max
  in
  section "counters:" string_of_int s.counters;
  section "gauges:" (Printf.sprintf "%g") s.gauges;
  section "timers:" dist s.timers;
  section "spans:" dist s.spans;
  Buffer.contents buf
