exception Injected of string

type config = { seed : int; rate_per_mille : int; sites : string list }

let m_injected = Metrics.counter ~scope:"faults" "injected"

let active : config option Atomic.t = Atomic.make None

let configure c = Atomic.set active c
let config () = Atomic.get active
let enabled () = Atomic.get active <> None

let site_allowed c site = c.sites = [] || List.mem site c.sites

let decide c ~site ~key =
  site_allowed c site
  && Hashtbl.hash (c.seed, site, key) mod 1000
     < max 0 (min 1000 c.rate_per_mille)

let fire ~site ~key =
  match Atomic.get active with None -> false | Some c -> decide c ~site ~key

let inject ~site ~key =
  match Atomic.get active with
  | None -> ()
  | Some c ->
    if decide c ~site ~key then begin
      Metrics.incr m_injected;
      raise (Injected (site ^ ":" ^ key))
    end

let with_config c f =
  let previous = Atomic.get active in
  Atomic.set active c;
  Fun.protect ~finally:(fun () -> Atomic.set active previous) f

(* CI enables the harness on an unmodified binary through the
   environment; a missing or malformed RB_FAULT_SEED leaves it off. *)
let () =
  match Sys.getenv_opt "RB_FAULT_SEED" with
  | None -> ()
  | Some seed_s -> (
    match int_of_string_opt (String.trim seed_s) with
    | None -> ()
    | Some seed ->
      let rate =
        match Sys.getenv_opt "RB_FAULT_RATE" with
        | Some r -> ( match int_of_string_opt (String.trim r) with Some r -> r | None -> 100)
        | None -> 100
      in
      let sites =
        match Sys.getenv_opt "RB_FAULT_SITES" with
        | None | Some "" -> []
        | Some s ->
          String.split_on_char ',' s
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
      in
      configure (Some { seed; rate_per_mille = rate; sites }))
