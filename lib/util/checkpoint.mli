(** A crash-safe journal of completed work chunks.

    Long sweeps record each finished chunk under a stable string key;
    a resumed run looks its chunks up before recomputing them. The
    journal is an append-only file of JSON lines
    ([{"k": "<key>", "v": <value>}] — one record per line, flushed as
    it is written), so a run killed at any point loses at most the
    record being written: on load, parsing stops at the first torn
    line.

    Keys must be stable across runs and unique per chunk (the sweep
    drivers build them from benchmark, kind, configuration and chunk
    index). Values are whatever {!Json.t} the caller can replay a
    chunk result from. Recording an already-present key is a no-op, so
    a resumed run appends only the chunks it actually computed.

    All operations are mutex-protected and safe from pool worker
    domains. When {!Metrics} collection is enabled, journal hits count
    under ["limits/checkpoint_chunks_skipped"]. *)

type t

val create : path:string -> resume:bool -> t
(** Open a journal at [path]. With [~resume:true], existing records
    are loaded (tolerating a torn tail) and new ones appended; with
    [~resume:false] the file is truncated. *)

val path : t -> string

val entries : t -> int
(** Records currently held (loaded + recorded this run). *)

val find : t -> string -> Json.t option
(** Look a chunk up; a hit bumps the skip counter. *)

val record : t -> string -> Json.t -> unit
(** Journal one completed chunk (write + flush). No-op if the key is
    already present. *)

val flush_now : t -> unit
(** Best-effort flush that never blocks — safe to call from a signal
    handler (uses [Mutex.try_lock]; records are already flushed as
    written, so this only catches an in-flight buffer). *)

val close : t -> unit
(** Close the underlying channel. Idempotent; {!find} keeps working,
    further {!record}s update only the in-memory table. *)
