(** Deterministic fault injection for robustness testing.

    Production code sprinkles {!inject} calls at its fault {e sites}
    (a pool task about to run, a solver about to search); the harness
    decides — purely from the configured seed, the site name and the
    caller-supplied key — whether that site throws. The decision is a
    hash of [(seed, site, key)], so it is independent of execution
    order, worker count and wall clock: the same configuration fails
    the same logical tasks on every run, which is what lets CI assert
    exact recovery behaviour.

    Injection is {e off by default} and follows the {!Metrics} sink
    discipline: every {!inject} first reads one [Atomic.t] and returns
    immediately when no configuration is installed, so instrumented
    paths cost a predictable branch in production.

    Known sites (grep for [Faults.inject] to refresh this list):
    - ["pool/task"], keyed by task index — fails a {!Pool} task on its
      first attempt only, so retried tasks always recover;
    - ["sat/budget"], keyed by per-solver solve ordinal — makes a
      budgeted [Solver.solve] report [Unknown] immediately;
    - ["serve/conn"], keyed by connection ordinal — kills one socket
      connection's handler thread at accept time; the daemon keeps
      serving every other connection;
    - ["store/evict"], keyed by the store's access tick — fails one
      eviction pass; the store stays over cap until the next insert
      instead of failing the lookup.

    Configuration can come from the environment (read once at module
    initialization), which is how the CI fault job enables the harness
    under an unmodified test binary:
    [RB_FAULT_SEED] (int, required to enable), [RB_FAULT_RATE]
    (per-mille, default 100), [RB_FAULT_SITES] (comma-separated site
    filter, default all sites).

    When {!Metrics} collection is enabled, fired injections count under
    ["faults/injected"]. *)

exception Injected of string
(** Raised by a firing {!inject}; the payload is ["site:key"]. *)

type config = {
  seed : int;
  rate_per_mille : int;  (** firing probability out of 1000, clamped to [0,1000] *)
  sites : string list;  (** sites allowed to fire; [[]] means every site *)
}

val configure : config option -> unit
(** Install or clear the active configuration. *)

val config : unit -> config option

val enabled : unit -> bool

val fire : site:string -> key:string -> bool
(** Would an {!inject} at this site and key throw? Pure given the
    active configuration. [false] when disabled. *)

val inject : site:string -> key:string -> unit
(** Raise {!Injected} iff {!fire} says so (and count it). The no-op
    path is one atomic read. *)

val with_config : config option -> (unit -> 'a) -> 'a
(** Run the thunk under a temporary configuration, restoring the
    previous one on exit (including on exceptions). For tests. *)
