(** A minimal JSON document builder and reader.

    One schema module shared by every machine-readable surface in the
    repo ([Rb_lint]'s lint reports, [bindlock]'s [--format json]
    output, the bench harness's [BENCH.json] metrics records), so
    escaping and number formatting stay consistent. Build a {!t} and
    render it with {!to_string}; read one back with {!of_string} —
    added for the bench comparator, which must consume what the
    harness emits. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** fields are emitted in list order *)

val float_or_string : float -> t
(** [Float f], except non-finite values become their string form
    ("inf", "-inf", "nan") — JSON has no literals for them, and the
    experiment reports use infinity for unbounded SAT resilience. *)

val escape : string -> string
(** JSON string-escape (quotes, backslash, control characters); does
    not add the surrounding quotes. *)

val to_string : t -> string
(** Render compactly (no whitespace). Integers print as integers;
    finite floats with up to six significant digits; non-finite floats
    as [null] — use {!float_or_string} where they are meaningful. *)

val to_string_pretty : t -> string
(** Render with a stable 2-space indent: containers break one element
    per line, empty containers stay ["[]"]/["{}"], scalars format
    exactly as {!to_string} does. No trailing newline. The CLI's
    [--format json] surfaces use this; machine streams (NDJSON,
    BENCH.json) stay on the compact {!to_string}. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document. Covers everything {!to_string}
    emits plus ordinary interchange JSON: whitespace, all escape
    forms ([\uXXXX] including surrogate pairs, decoded to UTF-8),
    exponent floats. Numbers parse as [Int] when they are written in
    integer syntax and fit in [int], as [Float] otherwise. Duplicate
    object fields are kept in document order. Containers may nest at
    most 1000 levels deep — beyond that is a parse error, not a stack
    overflow. [Error msg] carries a byte offset. *)

val member : string -> t -> t option
(** Field lookup on [Obj] (first match); [None] on other variants. *)

