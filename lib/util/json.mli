(** A minimal JSON document builder.

    One schema module shared by every machine-readable reporter in the
    repo ([Rb_lint]'s lint reports, [bindlock]'s [--format json]
    output), so escaping and number formatting stay consistent. Build
    a {!t} and render it with {!to_string}; there is deliberately no
    parser — the tools only emit. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** fields are emitted in list order *)

val float_or_string : float -> t
(** [Float f], except non-finite values become their string form
    ("inf", "-inf", "nan") — JSON has no literals for them, and the
    experiment reports use infinity for unbounded SAT resilience. *)

val escape : string -> string
(** JSON string-escape (quotes, backslash, control characters); does
    not add the surrounding quotes. *)

val to_string : t -> string
(** Render compactly (no whitespace). Integers print as integers;
    finite floats with up to six significant digits; non-finite floats
    as [null] — use {!float_or_string} where they are meaningful. *)
