(** Content-address digests for the artifact store.

    The service layer keys every cached artifact (parsed DFGs,
    schedules, bound netlists, CNF encodings, attack verdicts, whole
    job results) by a digest of its {e canonicalized} inputs, so two
    requests that mean the same thing — regardless of JSON field
    order — address the same cache slot. The digest is MD5 (via
    [Stdlib.Digest]) rendered as lowercase hex: 32 characters, cheap,
    and collision-resistant far beyond the cache sizes involved; this
    is an addressing scheme, not a security boundary. *)

val string : string -> string
(** MD5 of the raw bytes, as lowercase hex. *)

val canonical : Json.t -> Json.t
(** Canonical form: object fields sorted by name at every level
    (stable sort, so duplicate names keep document order), lists kept
    in order. Scalars are untouched — note that [Int 1] and [Float 1.]
    render differently and therefore digest differently. *)

val json : Json.t -> string
(** [string (Json.to_string (canonical v))] — the digest of a JSON
    document independent of its field order. *)
