let string s = Stdlib.Digest.to_hex (Stdlib.Digest.string s)

let rec canonical (v : Json.t) : Json.t =
  match v with
  | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.String _ -> v
  | Json.List items -> Json.List (List.map canonical items)
  | Json.Obj fields ->
    Json.Obj
      (List.stable_sort
         (fun (a, _) (b, _) -> String.compare a b)
         (List.map (fun (name, value) -> (name, canonical value)) fields))

let json v = string (Json.to_string (canonical v))
