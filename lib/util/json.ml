type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let float_or_string f =
  if Float.is_finite f then Float f
  else if f = infinity then String "inf"
  else if f = neg_infinity then String "-inf"
  else String "nan"

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else begin
    let s = Printf.sprintf "%.6g" f in
    Buffer.add_string buf s;
    (* keep it a JSON number that reads back as a float *)
    if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then
      Buffer.add_string buf ".0"
  end

let to_string t =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> add_float buf f
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, value) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape name);
          Buffer.add_string buf "\":";
          go value)
        fields;
      Buffer.add_char buf '}'
  in
  go t;
  Buffer.contents buf
