type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let float_or_string f =
  if Float.is_finite f then Float f
  else if f = infinity then String "inf"
  else if f = neg_infinity then String "-inf"
  else String "nan"

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else begin
    let s = Printf.sprintf "%.6g" f in
    Buffer.add_string buf s;
    (* keep it a JSON number that reads back as a float *)
    if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then
      Buffer.add_string buf ".0"
  end

let to_string t =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> add_float buf f
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, value) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape name);
          Buffer.add_string buf "\":";
          go value)
        fields;
      Buffer.add_char buf '}'
  in
  go t;
  Buffer.contents buf

let to_string_pretty t =
  let buf = Buffer.create 256 in
  let pad depth = Buffer.add_string buf (String.make (2 * depth) ' ') in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> add_float buf f
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          go (depth + 1) item)
        items;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (name, value) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape name);
          Buffer.add_string buf "\": ";
          go (depth + 1) value)
        fields;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* ------------------------------------------------------------- parsing *)

exception Parse_error of int * string

let fail pos msg = raise (Parse_error (pos, msg))

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

(* Recursive-descent parser over a string with an explicit cursor.
   Depth of real documents here is tiny (BENCH.json nests 4 deep);
   [max_depth] only guards against pathological inputs whose recursion
   would otherwise blow the stack. *)
let max_depth = 1000

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail !pos (Printf.sprintf "expected %C, got %C" c got)
    | None -> fail !pos (Printf.sprintf "expected %C, got end of input" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail !pos "truncated \\u escape";
    let v =
      match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
      | Some v -> v
      | None -> fail !pos "invalid \\u escape"
    in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | None -> fail !pos "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            let code = hex4 () in
            if code >= 0xD800 && code <= 0xDBFF then begin
              (* High surrogate: must pair with a low one. *)
              if !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
                pos := !pos + 2;
                let low = hex4 () in
                if low < 0xDC00 || low > 0xDFFF then fail !pos "unpaired surrogate";
                add_utf8 buf
                  (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
              end
              else fail !pos "unpaired surrogate"
            end
            else if code >= 0xDC00 && code <= 0xDFFF then
              fail !pos "unpaired surrogate"
            else add_utf8 buf code
          | c -> fail (!pos - 1) (Printf.sprintf "invalid escape \\%C" c)));
        go ()
      | c when Char.code c < 0x20 -> fail !pos "unescaped control character"
      | c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail !pos "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  (* Containers recurse through [parse_value]; a depth cap keeps
     adversarial inputs like ["[[[[..."] from overflowing the stack. *)
  let rec parse_value depth =
    if depth > max_depth then fail !pos "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let name = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((name, value) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((name, value) :: acc)
          | _ -> fail !pos "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let value = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (value :: acc)
          | Some ']' ->
            advance ();
            List.rev (value :: acc)
          | _ -> fail !pos "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail !pos (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos < n then fail !pos "trailing content after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)
  | exception Failure msg -> Error (Printf.sprintf "JSON parse error: %s" msg)
