module Rng = Rb_util.Rng
module Trace = Rb_sim.Trace

type t = {
  name : string;
  source : string;
  dfg : Rb_dfg.Dfg.t;
  workload : unit -> Gen.generator;
}

let all () =
  [
    { name = "dct"; source = "mpeg2enc: fdct 8-point"; dfg = Kernels.dct ();
      workload = Gen.image_pixels };
    { name = "ecb_enc4"; source = "pegwit: ECB encrypt rounds"; dfg = Kernels.ecb_enc4 ();
      workload = Gen.cipher_bytes };
    { name = "fft"; source = "rasta: radix-2 FFT butterflies"; dfg = Kernels.fft ();
      workload = Gen.audio_samples };
    { name = "fir"; source = "epic: 8-tap FIR filter"; dfg = Kernels.fir ();
      workload = Gen.audio_samples };
    { name = "jctrans2"; source = "cjpeg: coefficient requantization"; dfg = Kernels.jctrans2 ();
      workload = Gen.image_pixels };
    { name = "jdmerge1"; source = "djpeg: h1v1 merged upsampling"; dfg = Kernels.jdmerge1 ();
      workload = Gen.image_pixels };
    { name = "jdmerge3"; source = "djpeg: h2v1 merged upsampling"; dfg = Kernels.jdmerge3 ();
      workload = Gen.image_pixels };
    { name = "jdmerge4"; source = "djpeg: h2v2 merged upsampling"; dfg = Kernels.jdmerge4 ();
      workload = Gen.image_pixels };
    { name = "motion2"; source = "mpeg2dec: half-pel compensation"; dfg = Kernels.motion2 ();
      workload = Gen.image_pixels };
    { name = "motion3"; source = "mpeg2dec: bi-directional prediction"; dfg = Kernels.motion3 ();
      workload = Gen.residuals };
    { name = "noisest2"; source = "gsm: noise variance estimate"; dfg = Kernels.noisest2 ();
      workload = Gen.audio_samples };
  ]

let names () = List.map (fun b -> b.name) (all ())

(* Parameterized thousand-op kernels, kept out of [all] so the 11-name
   Fig. 4 registry (and every surface enumerating it: CLI listings,
   experiment tables, goldens) is unchanged. *)
let parametric name ~n =
  match name with
  | "fft" ->
      { name = Printf.sprintf "fft%d" n;
        source = Printf.sprintf "parameterized: radix-2 FFT, %d points" n;
        dfg = Kernels.fft_n ~n; workload = Gen.audio_samples }
  | "dct" ->
      { name = Printf.sprintf "dct%d" n;
        source = Printf.sprintf "parameterized: %d-point DCT" n;
        dfg = Kernels.dct_n ~n; workload = Gen.image_pixels }
  | "conv" ->
      { name = Printf.sprintf "conv%d" n;
        source = Printf.sprintf "parameterized: 16-tap convolution, %d points" n;
        dfg = Kernels.conv_n ~taps:16 ~points:n; workload = Gen.audio_samples }
  | "aes" ->
      { name = Printf.sprintf "aes%d" n;
        source = Printf.sprintf "parameterized: AES-style round, %d blocks" n;
        dfg = Kernels.aes_round_n ~blocks:n; workload = Gen.cipher_bytes }
  | _ ->
      invalid_arg
        (Printf.sprintf "Benchmark.parametric: unknown family %S (fft, dct, conv, aes)"
           name)

let find name =
  match List.find_opt (fun b -> b.name = name) (all ()) with
  | Some b -> b
  | None -> raise Not_found

let default_trace_length = 256

let trace ?(seed = 1789) ?(length = default_trace_length) t =
  let rng = Rng.create (seed + Hashtbl.hash t.name) in
  let generator = t.workload () in
  Trace.generate t.dfg ~n:length ~f:(fun sample name -> generator rng sample name)

let schedule ?limits t = Rb_sched.Scheduler.path_based ?limits t.dfg
