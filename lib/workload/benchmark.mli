(** The benchmark registry — Sec. VI's 11 MediaBench-derived kernels.

    Each benchmark couples a kernel DFG with the synthetic workload
    generator standing in for its MediaBench sample inputs, plus the
    provenance string recording which benchmark/function it rebuilds. *)

type t = {
  name : string;
  source : string;  (** MediaBench benchmark and function it stands in for *)
  dfg : Rb_dfg.Dfg.t;
  workload : unit -> Gen.generator;  (** fresh generator for trace synthesis *)
}

val all : unit -> t list
(** The 11 benchmarks in the paper's Fig. 4 order: dct, ecb_enc4, fft,
    fir, jctrans2, jdmerge1, jdmerge3, jdmerge4, motion2, motion3,
    noisest2. *)

val names : unit -> string list

val find : string -> t
(** Raises [Not_found] for unknown names. *)

val parametric : string -> n:int -> t
(** A size-parameterized benchmark outside the fixed registry:
    families ["fft"], ["dct"], ["conv"], ["aes"] map to the
    {!Kernels} generators of the same name at size [n] (named e.g.
    ["fft256"]). Raises [Invalid_argument] on an unknown family or an
    out-of-range size. *)

val default_trace_length : int
(** Samples per synthesized trace (256). *)

val trace : ?seed:int -> ?length:int -> t -> Rb_sim.Trace.t
(** Synthesize the benchmark's typical input trace. Default seed 1789,
    default length {!default_trace_length}; the same (seed, length)
    always produces the same trace. *)

val schedule : ?limits:Rb_sched.Scheduler.limits -> t -> Rb_sched.Schedule.t
(** Path-based schedule; [limits] defaults to the paper's resource
    budget (up to 3 FUs of each kind). Thousand-op parametric kernels
    pass wider limits to keep latency (and per-cycle matching size)
    realistic. *)
