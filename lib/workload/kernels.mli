(** The 11 benchmark DFG kernels (Sec. VI).

    Each function rebuilds, from the paper's description of its
    MediaBench source function, an arithmetic kernel with the same
    operation mix and dependency shape (see DESIGN.md, substitutions).
    Subtraction is expressed as [x + (y * 255)] — exact two's-complement
    negation in 8-bit arithmetic — which is also why several
    image kernels carry "neg" multiplications, as strength-reduced
    SUIF output would.

    All kernels use only {!Rb_dfg.Dfg.op_kind} Add/Mul operations and
    validate structurally. *)

val dct : unit -> Rb_dfg.Dfg.t
(** 8-point DCT, even/odd decomposition (mpeg2enc transform). *)

val ecb_enc4 : unit -> Rb_dfg.Dfg.t
(** Block-cipher ECB encryption round group (pegwit); adds only. *)

val fft : unit -> Rb_dfg.Dfg.t
(** Radix-2 decimation-in-time butterflies with twiddle products. *)

val fir : unit -> Rb_dfg.Dfg.t
(** 8-tap FIR filter inner loop body (EPIC/rasta filtering). *)

val jctrans2 : unit -> Rb_dfg.Dfg.t
(** JPEG transcoding requantization of one coefficient block (cjpeg). *)

val jdmerge1 : unit -> Rb_dfg.Dfg.t
(** JPEG upsampled YCbCr->RGB merge, h1v1 variant (djpeg). *)

val jdmerge3 : unit -> Rb_dfg.Dfg.t
(** JPEG merge, h2v1 variant: 4 pixels share interpolated chroma. *)

val jdmerge4 : unit -> Rb_dfg.Dfg.t
(** JPEG merge, h2v2 variant: two chroma rows, triangle filter. *)

val motion2 : unit -> Rb_dfg.Dfg.t
(** Half-pel motion compensation + SAD accumulation (mpeg2dec). *)

val motion3 : unit -> Rb_dfg.Dfg.t
(** Bi-directional weighted prediction + SAD (mpeg2dec). *)

val noisest2 : unit -> Rb_dfg.Dfg.t
(** Noise-variance estimation: squared differences (gsm/rasta). *)

(** {1 Parameterized kernels}

    Size-parameterized generalizations of the fixed kernels for the
    thousand-operation scaling experiments. Multiplier constants are
    deterministic 8-bit surrogates (the binding layers only see
    operation kinds and dependency shape), so each generator is a pure
    function of its parameters. All raise [Invalid_argument] on
    out-of-range sizes. *)

val fft_n : n:int -> Rb_dfg.Dfg.t
(** Radix-2 decimation-in-time FFT over [n] points ([n] a power of two
    >= 8): [log2 n] stages of [n/2] butterflies, ~[2 n log2 n]
    operations ([n = 256] gives 4096). *)

val dct_n : n:int -> Rb_dfg.Dfg.t
(** [n]-point DCT ([n] a power of two >= 8): even/odd butterfly
    decomposition, then dense cosine-surrogate dot products on each
    half — ~[n^2] operations ([n = 32] gives ~1.5k). *)

val conv_n : taps:int -> points:int -> Rb_dfg.Dfg.t
(** Sliding-window 1-D convolution/stencil: [points] independent
    [taps]-wide dot products over a shared input window, ~[2 taps
    points] operations. [taps >= 2], [points >= 1]. *)

val aes_round_n : blocks:int -> Rb_dfg.Dfg.t
(** One AES-style round (AddRoundKey, affine SubBytes surrogate,
    ShiftRows wiring, MixColumns) over [blocks] 16-byte blocks, 128
    operations per block ([blocks = 16] gives 2048). *)
