module B = Rb_dfg.Dfg.Builder

(* x - y in 8-bit two's complement: y * 255 = -y (mod 256). *)
let neg b ?label y = B.mul ?label b y (B.const 255)
let sub b ?label x y = B.add ?label b x (neg b y)

let inputs b prefix n = Array.init n (fun i -> B.input b (Printf.sprintf "%s%d" prefix i))

let dct () =
  let b = B.create "dct" in
  let x = inputs b "x" 8 in
  (* Stage 1: sum/difference butterflies over mirrored pairs. *)
  let s = Array.init 4 (fun i -> B.add ~label:(Printf.sprintf "s%d" i) b x.(i) x.(7 - i)) in
  let d = Array.init 4 (fun i -> sub ~label:(Printf.sprintf "d%d" i) b x.(i) x.(7 - i)) in
  (* Even part. *)
  let e0 = B.add ~label:"e0" b s.(0) s.(3) in
  let e1 = B.add ~label:"e1" b s.(1) s.(2) in
  let y0 = B.add ~label:"y0" b e0 e1 in
  let y4 = sub ~label:"y4" b e0 e1 in
  let sa = sub ~label:"sa" b s.(0) s.(3) in
  let sb = sub ~label:"sb" b s.(1) s.(2) in
  let y2 = B.add ~label:"y2" b (B.mul b sa (B.const 98)) (B.mul b sb (B.const 41)) in
  let y6 = B.add ~label:"y6" b (B.mul b sa (B.const 41)) (neg b (B.mul b sb (B.const 98))) in
  (* Odd part: rotations by the remaining cosine coefficients. *)
  let y1 = B.add ~label:"y1" b (B.mul b d.(0) (B.const 126)) (B.mul b d.(1) (B.const 106)) in
  let y3 = B.add ~label:"y3" b (B.mul b d.(0) (B.const 106)) (neg b (B.mul b d.(2) (B.const 25))) in
  let y5 = B.add ~label:"y5" b (B.mul b d.(1) (B.const 71)) (B.mul b d.(3) (B.const 25)) in
  let y7 = B.add ~label:"y7" b (B.mul b d.(0) (B.const 25)) (neg b (B.mul b d.(3) (B.const 71))) in
  List.iter (B.output b) [ y0; y1; y2; y3; y4; y5; y6; y7 ];
  B.finish b

let ecb_enc4 () =
  let b = B.create "ecb_enc4" in
  let p = inputs b "p" 8 in
  let round_keys = [| 0x2B; 0x7E; 0x15; 0x16; 0x28; 0xAE; 0xD2; 0xA6 |] in
  let round2_keys = [| 0xA0; 0xFA; 0xFE; 0x17; 0x88; 0x54; 0x2C; 0xB1 |] in
  (* Round 1: key whitening. *)
  let w = Array.mapi (fun i pi -> B.add ~label:(Printf.sprintf "w%d" i) b pi (B.const round_keys.(i))) p in
  (* Diffusion: each byte absorbs its neighbour. *)
  let m = Array.init 8 (fun i -> B.add ~label:(Printf.sprintf "m%d" i) b w.(i) w.((i + 1) mod 8)) in
  (* Round 2: key addition. *)
  let c = Array.mapi (fun i mi -> B.add ~label:(Printf.sprintf "c%d" i) b mi (B.const round2_keys.(i))) m in
  Array.iter (B.output b) c;
  B.finish b

let fft () =
  let b = B.create "fft" in
  let re = inputs b "re" 8 in
  (* Stage 1: butterflies on (i, i+4), real-valued decimation. *)
  let t = Array.init 4 (fun i -> B.add ~label:(Printf.sprintf "t%d" i) b re.(i) re.(i + 4)) in
  let u = Array.init 4 (fun i -> sub ~label:(Printf.sprintf "u%d" i) b re.(i) re.(i + 4)) in
  (* Stage 2 on the even branch. *)
  let t01 = B.add ~label:"t01" b t.(0) t.(2) in
  let t23 = B.add ~label:"t23" b t.(1) t.(3) in
  let d01 = sub ~label:"d01" b t.(0) t.(2) in
  let d23 = sub ~label:"d23" b t.(1) t.(3) in
  (* Twiddle products on the odd branch (W_8^k coefficients). *)
  let w1 = B.mul ~label:"w1" b u.(1) (B.const 90) in
  let w2 = B.mul ~label:"w2" b u.(2) (B.const 70) in
  let w3 = B.mul ~label:"w3" b u.(3) (B.const 46) in
  (* Stage 3 recombination. *)
  let y0 = B.add ~label:"y0" b t01 t23 in
  let y4 = sub ~label:"y4" b t01 t23 in
  let y2 = B.add ~label:"y2" b d01 (B.mul ~label:"wd" b d23 (B.const 90)) in
  let y6 = sub ~label:"y6" b d01 d23 in
  let o1 = B.add ~label:"o1" b u.(0) w1 in
  let o2 = B.add ~label:"o2" b w2 w3 in
  let y1 = B.add ~label:"y1" b o1 o2 in
  let y3 = sub ~label:"y3" b o1 w2 in
  let y5 = B.add ~label:"y5" b (sub ~label:"s5" b u.(0) w1) w3 in
  List.iter (B.output b) [ y0; y1; y2; y3; y4; y5; y6 ];
  B.finish b

let fir () =
  let b = B.create "fir" in
  let x = inputs b "x" 8 in
  let coeffs = [| 3; 11; 32; 78; 78; 32; 11; 3 |] in
  let taps = Array.mapi (fun i xi -> B.mul ~label:(Printf.sprintf "t%d" i) b xi (B.const coeffs.(i))) x in
  let acc = ref taps.(0) in
  for i = 1 to 7 do
    acc := B.add ~label:(Printf.sprintf "a%d" i) b !acc taps.(i)
  done;
  B.output b !acc;
  B.finish b

let jctrans2 () =
  let b = B.create "jctrans2" in
  let coef = inputs b "q" 8 in
  let quant = [| 16; 11; 10; 16; 24; 40; 51; 61 |] in
  (* Dequantize, bias for rounding, and re-accumulate block energy. *)
  let deq = Array.mapi (fun i c -> B.mul ~label:(Printf.sprintf "dq%d" i) b c (B.const quant.(i))) coef in
  let biased = Array.mapi (fun i d -> B.add ~label:(Printf.sprintf "rb%d" i) b d (B.const 8)) deq in
  let pair = Array.init 4 (fun i -> B.add ~label:(Printf.sprintf "p%d" i) b biased.(2 * i) biased.((2 * i) + 1)) in
  let q0 = B.add ~label:"q0" b pair.(0) pair.(1) in
  let q1 = B.add ~label:"q1" b pair.(2) pair.(3) in
  let energy = B.add ~label:"energy" b q0 q1 in
  Array.iter (B.output b) biased;
  B.output b energy;
  B.finish b

(* Shared YCbCr -> RGB chroma contribution: cred = 1.402 Cr,
   cgreen = 0.344 Cb + 0.714 Cr (negated at use sites), cblue = 1.772 Cb. *)
let chroma_terms b cb cr =
  let cred = B.mul ~label:"cred" b cr (B.const 90) in
  let cg1 = B.mul ~label:"cg1" b cb (B.const 22) in
  let cg2 = B.mul ~label:"cg2" b cr (B.const 46) in
  let cgreen = B.add ~label:"cgreen" b cg1 cg2 in
  let cblue = B.mul ~label:"cblue" b cb (B.const 113) in
  (cred, cgreen, cblue)

let rgb_pixel b idx y (cred, cgreen, cblue) =
  let r = B.add ~label:(Printf.sprintf "r%d" idx) b y cred in
  let g = sub ~label:(Printf.sprintf "g%d" idx) b y cgreen in
  let bl = B.add ~label:(Printf.sprintf "b%d" idx) b y cblue in
  (r, g, bl)

let jdmerge1 () =
  let b = B.create "jdmerge1" in
  let y = inputs b "y" 2 in
  let cb = B.input b "cb" in
  let cr = B.input b "cr" in
  let terms = chroma_terms b cb cr in
  Array.iteri
    (fun i yi ->
      let r, g, bl = rgb_pixel b i yi terms in
      List.iter (B.output b) [ r; g; bl ])
    y;
  B.finish b

let jdmerge3 () =
  let b = B.create "jdmerge3" in
  let y = inputs b "y" 4 in
  let cb = inputs b "cb" 2 in
  let cr = inputs b "cr" 2 in
  (* h2v1: horizontally interpolate the chroma pair. *)
  let cbi = B.add ~label:"cbi" b cb.(0) cb.(1) in
  let cri = B.add ~label:"cri" b cr.(0) cr.(1) in
  let terms = chroma_terms b cbi cri in
  Array.iteri
    (fun i yi ->
      let r, g, bl = rgb_pixel b i yi terms in
      List.iter (B.output b) [ r; g; bl ])
    y;
  B.finish b

let jdmerge4 () =
  let b = B.create "jdmerge4" in
  let y = inputs b "y" 4 in
  let cb = inputs b "cb" 2 in
  let cr = inputs b "cr" 2 in
  (* h2v2: triangle filter 3:1 across the two chroma rows. *)
  let tri ~label near far =
    let scaled = B.mul b near (B.const 3) in
    let mixed = B.add b scaled far in
    B.add ~label b mixed (B.const 2)
  in
  let cb0 = tri ~label:"cb0" cb.(0) cb.(1) in
  let cb1 = tri ~label:"cb1" cb.(1) cb.(0) in
  let cr0 = tri ~label:"cr0" cr.(0) cr.(1) in
  let cr1 = tri ~label:"cr1" cr.(1) cr.(0) in
  let terms0 = chroma_terms b cb0 cr0 in
  let terms1 = chroma_terms b cb1 cr1 in
  Array.iteri
    (fun i yi ->
      let terms = if i < 2 then terms0 else terms1 in
      let r, g, bl = rgb_pixel b i yi terms in
      List.iter (B.output b) [ r; g; bl ])
    y;
  B.finish b

let motion2 () =
  let b = B.create "motion2" in
  let r = inputs b "r" 7 in
  let c = inputs b "c" 6 in
  (* Half-pel horizontal interpolation with rounding. *)
  let pred =
    Array.init 6 (fun i ->
        let s = B.add ~label:(Printf.sprintf "hp%d" i) b r.(i) r.(i + 1) in
        B.add ~label:(Printf.sprintf "rnd%d" i) b s (B.const 1))
  in
  (* Weighted prediction, then absolute-difference surrogate. *)
  let wpred = Array.mapi (fun i p -> B.mul ~label:(Printf.sprintf "wp%d" i) b p (B.const 128)) pred in
  let diff = Array.init 6 (fun i -> sub ~label:(Printf.sprintf "df%d" i) b c.(i) wpred.(i)) in
  let s0 = B.add ~label:"s0" b diff.(0) diff.(1) in
  let s1 = B.add ~label:"s1" b diff.(2) diff.(3) in
  let s2 = B.add ~label:"s2" b diff.(4) diff.(5) in
  let s01 = B.add ~label:"s01" b s0 s1 in
  let sad = B.add ~label:"sad" b s01 s2 in
  Array.iter (B.output b) pred;
  B.output b sad;
  B.finish b

let motion3 () =
  let b = B.create "motion3" in
  let fwd = inputs b "f" 5 in
  let bwd = inputs b "b" 4 in
  let cur = inputs b "c" 4 in
  (* Forward reference is half-pel: interpolate before weighting. *)
  let fpel =
    Array.init 4 (fun i ->
        let s = B.add ~label:(Printf.sprintf "fi%d" i) b fwd.(i) fwd.(i + 1) in
        B.add ~label:(Printf.sprintf "fr%d" i) b s (B.const 1))
  in
  (* Bi-directional weighted prediction per pixel. *)
  let pred =
    Array.init 4 (fun i ->
        let wf = B.mul ~label:(Printf.sprintf "wf%d" i) b fpel.(i) (B.const 96) in
        let wb = B.mul ~label:(Printf.sprintf "wb%d" i) b bwd.(i) (B.const 32) in
        let s = B.add ~label:(Printf.sprintf "bp%d" i) b wf wb in
        B.add ~label:(Printf.sprintf "br%d" i) b s (B.const 1))
  in
  let diff = Array.init 4 (fun i -> sub ~label:(Printf.sprintf "df%d" i) b cur.(i) pred.(i)) in
  let s0 = B.add ~label:"s0" b diff.(0) diff.(1) in
  let s1 = B.add ~label:"s1" b diff.(2) diff.(3) in
  let sad = B.add ~label:"sad" b s0 s1 in
  Array.iter (B.output b) pred;
  B.output b sad;
  B.finish b

(* ---- Parameterized kernels ----------------------------------------

   Size-parameterized generalizations of the fixed 8-point kernels,
   for the thousand-operation scaling experiments (10^3..10^4 ops).
   Multiplier constants are deterministic 8-bit surrogates on the same
   footing as the fixed kernels' 90/70/46-style coefficients: the
   binding layers only see operation kinds and dependency shape, so
   pseudo-twiddles drawn from a fixed integer recurrence keep the
   generators exactly reproducible without floating-point rounding. *)

(* 8-bit surrogate coefficient in 1..125, never 0 (a zero weight would
   make the multiplication degenerate). *)
let coeff a b = (((a * 73) + (b * 29)) mod 125) + 1

let require_pow2 fn n =
  if n < 8 || n land (n - 1) <> 0 then
    invalid_arg (Printf.sprintf "Kernels.%s: n must be a power of two >= 8" fn)

let fft_n ~n =
  require_pow2 "fft_n" n;
  let b = B.create (Printf.sprintf "fft%d" n) in
  let data = inputs b "re" n in
  let stage = ref 0 in
  let half = ref 1 in
  (* Radix-2 decimation-in-time: log2 n stages of n/2 butterflies,
     each a twiddle product plus a sum/difference pair. *)
  while !half < n do
    let step = !half * 2 in
    let base = ref 0 in
    while !base < n do
      for k = 0 to !half - 1 do
        let i = !base + k and j = !base + k + !half in
        let tw = B.const (coeff (k + 1) !stage) in
        let bw = B.mul ~label:(Printf.sprintf "w%d_%d" !stage i) b data.(j) tw in
        let t = B.add ~label:(Printf.sprintf "t%d_%d" !stage i) b data.(i) bw in
        let u = sub ~label:(Printf.sprintf "u%d_%d" !stage i) b data.(i) bw in
        data.(i) <- t;
        data.(j) <- u
      done;
      base := !base + step
    done;
    half := step;
    incr stage
  done;
  Array.iter (B.output b) data;
  B.finish b

let dct_n ~n =
  require_pow2 "dct_n" n;
  let b = B.create (Printf.sprintf "dct%d" n) in
  let x = inputs b "x" n in
  let h = n / 2 in
  (* Even/odd decomposition (the fixed dct's stage 1 at size n), then
     dense cosine-surrogate products on each half. *)
  let s = Array.init h (fun i -> B.add ~label:(Printf.sprintf "s%d" i) b x.(i) x.(n - 1 - i)) in
  let d = Array.init h (fun i -> sub ~label:(Printf.sprintf "d%d" i) b x.(i) x.(n - 1 - i)) in
  let dot name half_arr k =
    let acc = ref (B.mul b half_arr.(0) (B.const (coeff k 0))) in
    for i = 1 to h - 1 do
      let p = B.mul b half_arr.(i) (B.const (coeff k i)) in
      let label = if i = h - 1 then Some (Printf.sprintf "%s%d" name k) else None in
      acc := B.add ?label b !acc p
    done;
    !acc
  in
  for k = 0 to h - 1 do
    B.output b (dot "ye" s k);
    B.output b (dot "yo" d k)
  done;
  B.finish b

let conv_n ~taps ~points =
  if taps < 2 || points < 1 then
    invalid_arg "Kernels.conv_n: taps must be >= 2 and points >= 1";
  let b = B.create (Printf.sprintf "conv%dx%d" taps points) in
  let x = inputs b "x" (points + taps - 1) in
  (* Sliding-window stencil: each output point is an independent
     taps-wide dot product over the shared input window. *)
  for p = 0 to points - 1 do
    let acc = ref (B.mul b x.(p) (B.const (coeff 1 0))) in
    for t = 1 to taps - 1 do
      let prod = B.mul b x.(p + t) (B.const (coeff (t + 1) 0)) in
      let label = if t = taps - 1 then Some (Printf.sprintf "y%d" p) else None in
      acc := B.add ?label b !acc prod
    done;
    B.output b !acc
  done;
  B.finish b

let aes_round_n ~blocks =
  if blocks < 1 then invalid_arg "Kernels.aes_round_n: blocks must be >= 1";
  let b = B.create (Printf.sprintf "aes_round%d" blocks) in
  let round_key = Array.init 16 (fun i -> coeff (i + 3) 7) in
  for blk = 0 to blocks - 1 do
    let st = inputs b (Printf.sprintf "p%d_" blk) 16 in
    (* AddRoundKey, then the affine SubBytes surrogate (x*31 + 99 —
       the real S-box's affine layer with the inversion dropped). *)
    let ark = Array.mapi (fun i s -> B.add b s (B.const round_key.(i))) st in
    let sb = Array.map (fun s -> B.add b (B.mul b s (B.const 31)) (B.const 99)) ark in
    (* ShiftRows is pure wiring: row r rotates left by r. *)
    let sr = Array.init 16 (fun i ->
        let r = i mod 4 and c = i / 4 in
        sb.((r + (4 * ((c + r) mod 4))))) in
    (* MixColumns: out_i = 2*a_i + 3*a_{i+1} + a_{i+2} + a_{i+3}. *)
    for c = 0 to 3 do
      let a = Array.init 4 (fun r -> sr.((4 * c) + r)) in
      for r = 0 to 3 do
        let x2 = B.mul b a.(r) (B.const 2) in
        let x3 = B.mul b a.((r + 1) mod 4) (B.const 3) in
        let s1 = B.add b x2 x3 in
        let s2 = B.add b s1 a.((r + 2) mod 4) in
        let out = B.add ~label:(Printf.sprintf "mc%d_%d" blk ((4 * c) + r)) b s2 a.((r + 3) mod 4) in
        B.output b out
      done
    done
  done;
  B.finish b

let noisest2 () =
  let b = B.create "noisest2" in
  let x = inputs b "x" 4 in
  let y = inputs b "y" 4 in
  (* Squared differences between signal and smoothed estimate. *)
  let d = Array.init 4 (fun i -> sub ~label:(Printf.sprintf "d%d" i) b x.(i) y.(i)) in
  let sq = Array.mapi (fun i di -> B.mul ~label:(Printf.sprintf "sq%d" i) b di di) d in
  let s0 = B.add ~label:"s0" b sq.(0) sq.(1) in
  let s1 = B.add ~label:"s1" b sq.(2) sq.(3) in
  let sum = B.add ~label:"sum" b s0 s1 in
  (* Mean of the signal and its square, for the variance estimate. *)
  let m0 = B.add ~label:"m0" b x.(0) x.(1) in
  let m1 = B.add ~label:"m1" b x.(2) x.(3) in
  let mean = B.add ~label:"mean" b m0 m1 in
  let mean_sq = B.mul ~label:"mean_sq" b mean mean in
  let var = sub ~label:"var" b sum mean_sq in
  List.iter (B.output b) [ sum; var ];
  B.finish b
