(** Registers the sparse matchers ("auction", "jv") into the
    {!Matcher} registry, alongside the always-present "hungarian"
    reference. Idempotent; call from entry points before parsing a
    [--matcher] flag. *)

val ensure_registered : unit -> unit
