(* Hungarian algorithm with row/column potentials (the classical
   "e-maxx" formulation). Internally 1-indexed: row 0 and column 0 are
   sentinels, [p.(j)] is the row currently matched to column [j], and
   [way.(j)] remembers the alternating path used to augment. Each of
   the [n] phases grows the matching by one row in O(n*m). *)

(* Metrics: every binding algorithm bottoms out here, so assignment
   counts, augmenting-path phases and inner relaxation scans are the
   work units that explain binder runtime. Accumulated locally and
   flushed once per call to keep the O(n*m) core branch-free. *)
module Metrics = Rb_util.Metrics

let m_assignments = Metrics.counter ~scope:"matching" "assignments"
let m_phases = Metrics.counter ~scope:"matching" "augmenting_phases"
let m_scans = Metrics.counter ~scope:"matching" "relaxation_scans"
let t_assignment = Metrics.timer ~scope:"matching" "assignment"

let validate cost =
  let rows = Array.length cost in
  if rows = 0 then invalid_arg "Hungarian: empty matrix";
  let cols = Array.length cost.(0) in
  if cols = 0 then invalid_arg "Hungarian: empty row";
  Array.iter
    (fun row ->
      if Array.length row <> cols then invalid_arg "Hungarian: ragged matrix")
    cost;
  if rows > cols then invalid_arg "Hungarian: more rows than columns";
  (rows, cols)

let min_cost_assignment cost =
  let rows, cols = validate cost in
  Metrics.incr m_assignments;
  Metrics.time t_assignment @@ fun () ->
  let scans = ref 0 in
  let n = rows and m = cols in
  let u = Array.make (n + 1) 0.0 in
  let v = Array.make (m + 1) 0.0 in
  let p = Array.make (m + 1) 0 in
  let way = Array.make (m + 1) 0 in
  for i = 1 to n do
    p.(0) <- i;
    let j0 = ref 0 in
    let minv = Array.make (m + 1) infinity in
    let used = Array.make (m + 1) false in
    let continue = ref true in
    while !continue do
      incr scans;
      used.(!j0) <- true;
      let i0 = p.(!j0) in
      let delta = ref infinity in
      let j1 = ref 0 in
      for j = 1 to m do
        if not used.(j) then begin
          let cur = cost.(i0 - 1).(j - 1) -. u.(i0) -. v.(j) in
          if cur < minv.(j) then begin
            minv.(j) <- cur;
            way.(j) <- !j0
          end;
          if minv.(j) < !delta then begin
            delta := minv.(j);
            j1 := j
          end
        end
      done;
      for j = 0 to m do
        if used.(j) then begin
          u.(p.(j)) <- u.(p.(j)) +. !delta;
          v.(j) <- v.(j) -. !delta
        end
        else minv.(j) <- minv.(j) -. !delta
      done;
      j0 := !j1;
      if p.(!j0) = 0 then continue := false
    done;
    (* Unwind the alternating path recorded in [way]. *)
    let j0 = ref !j0 in
    while !j0 <> 0 do
      let j1 = way.(!j0) in
      p.(!j0) <- p.(j1);
      j0 := j1
    done
  done;
  Metrics.add m_phases n;
  Metrics.add m_scans !scans;
  let assign = Array.make n (-1) in
  for j = 1 to m do
    if p.(j) > 0 then assign.(p.(j) - 1) <- j - 1
  done;
  assign

let max_weight_assignment weight =
  let negated = Array.map (Array.map (fun w -> -.w)) weight in
  min_cost_assignment negated

let assignment_weight weight assign =
  let total = ref 0.0 in
  Array.iteri (fun r c -> total := !total +. weight.(r).(c)) assign;
  !total
