(* Hungarian algorithm with row/column potentials (the classical
   "e-maxx" formulation). Internally 1-indexed: row 0 and column 0 are
   sentinels, [p.(j)] is the row currently matched to column [j], and
   [way.(j)] remembers the alternating path used to augment. Each of
   the [n] phases grows the matching by one row in O(n*m). *)

(* Metrics: every binding algorithm bottoms out here, so assignment
   counts, augmenting-path phases and inner relaxation scans are the
   work units that explain binder runtime. Accumulated locally and
   flushed once per call to keep the O(n*m) core branch-free. *)
module Metrics = Rb_util.Metrics

let m_assignments = Metrics.counter ~scope:"matching" "assignments"
let m_phases = Metrics.counter ~scope:"matching" "augmenting_phases"
let m_scans = Metrics.counter ~scope:"matching" "relaxation_scans"
let t_assignment = Metrics.timer ~scope:"matching" "assignment"

let validate cost =
  let rows = Array.length cost in
  if rows = 0 then (0, 0)
  else begin
    let cols = Array.length cost.(0) in
    if cols = 0 then invalid_arg "Hungarian: empty row";
    Array.iter
      (fun row ->
        if Array.length row <> cols then invalid_arg "Hungarian: ragged matrix";
        Array.iter
          (fun w ->
            if not (Float.is_finite w) then
              invalid_arg "Hungarian: weight must be finite (no NaN/infinity)")
          row)
      cost;
    if rows > cols then invalid_arg "Hungarian: more rows than columns";
    (rows, cols)
  end

(* The uninstrumented core. Requires a validated matrix with
   [1 <= rows <= cols]. Returns [(assign, u, v, scans)] where [u], [v]
   are 0-indexed optimal dual potentials satisfying, at termination:
   - feasibility: [cost.(i).(j) >= u.(i) +. v.(j)] for every cell;
   - complementary slackness: equality on every matched cell;
   - [v.(j) <= 0.], with [v.(j) = 0.] on every unmatched column.
   These conventions are the matcher contract ({!Matcher.solution});
   the registry's canonicalization pass depends on them. *)
let solve_core cost =
  let n = Array.length cost and m = Array.length cost.(0) in
  let scans = ref 0 in
  let u = Array.make (n + 1) 0.0 in
  let v = Array.make (m + 1) 0.0 in
  let p = Array.make (m + 1) 0 in
  let way = Array.make (m + 1) 0 in
  for i = 1 to n do
    p.(0) <- i;
    let j0 = ref 0 in
    let minv = Array.make (m + 1) infinity in
    let used = Array.make (m + 1) false in
    let continue = ref true in
    while !continue do
      incr scans;
      used.(!j0) <- true;
      let i0 = p.(!j0) in
      let delta = ref infinity in
      let j1 = ref 0 in
      for j = 1 to m do
        if not used.(j) then begin
          let cur = cost.(i0 - 1).(j - 1) -. u.(i0) -. v.(j) in
          if cur < minv.(j) then begin
            minv.(j) <- cur;
            way.(j) <- !j0
          end;
          if minv.(j) < !delta then begin
            delta := minv.(j);
            j1 := j
          end
        end
      done;
      for j = 0 to m do
        if used.(j) then begin
          u.(p.(j)) <- u.(p.(j)) +. !delta;
          v.(j) <- v.(j) -. !delta
        end
        else minv.(j) <- minv.(j) -. !delta
      done;
      j0 := !j1;
      if p.(!j0) = 0 then continue := false
    done;
    (* Unwind the alternating path recorded in [way]. *)
    let j0 = ref !j0 in
    while !j0 <> 0 do
      let j1 = way.(!j0) in
      p.(!j0) <- p.(j1);
      j0 := j1
    done
  done;
  let assign = Array.make n (-1) in
  for j = 1 to m do
    if p.(j) > 0 then assign.(p.(j) - 1) <- j - 1
  done;
  let u0 = Array.init n (fun i -> u.(i + 1)) in
  let v0 = Array.init m (fun j -> v.(j + 1)) in
  (assign, u0, v0, !scans)

let solve_with_duals cost =
  let rows, cols = validate cost in
  if rows = 0 then ([||], [||], Array.make cols 0.0, 0) else solve_core cost

let min_cost_assignment cost =
  let rows, _cols = validate cost in
  if rows = 0 then [||]
  else begin
    Metrics.incr m_assignments;
    Metrics.time t_assignment @@ fun () ->
    let assign, _u, _v, scans = solve_core cost in
    Metrics.add m_phases rows;
    Metrics.add m_scans scans;
    assign
  end

let max_weight_assignment weight =
  let negated = Array.map (Array.map (fun w -> -.w)) weight in
  min_cost_assignment negated

let assignment_weight weight assign =
  let total = ref 0.0 in
  Array.iteri (fun r c -> total := !total +. weight.(r).(c)) assign;
  !total
