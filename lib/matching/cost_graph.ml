(* Sparse cost graphs in CSR form: one row per operation, each row a
   sorted list of (column, weight) candidate arcs. Binders emit only
   the feasible (op, FU) pairs; dense matrices adapt losslessly via
   [of_dense]. Construction validates eagerly — every weight finite,
   every column in range, no duplicate arcs — so the solvers can run
   branch-free. *)

type t = {
  rows : int;
  cols : int;
  row_off : int array;  (* length rows + 1; arcs of row r live in [row_off.(r), row_off.(r+1)) *)
  arc_col : int array;  (* ascending within each row *)
  arc_w : float array;
}

let rows t = t.rows
let cols t = t.cols
let arcs t = Array.length t.arc_col
let complete t = arcs t = t.rows * t.cols

let check_weight w =
  if not (Float.is_finite w) then
    invalid_arg "Cost_graph: weight must be finite (no NaN/infinity)"

let of_dense matrix =
  let rows = Array.length matrix in
  if rows = 0 then
    { rows = 0; cols = 0; row_off = [| 0 |]; arc_col = [||]; arc_w = [||] }
  else begin
    let cols = Array.length matrix.(0) in
    if cols = 0 then invalid_arg "Cost_graph: empty row";
    Array.iter
      (fun row ->
        if Array.length row <> cols then invalid_arg "Cost_graph: ragged matrix";
        Array.iter check_weight row)
      matrix;
    if rows > cols then invalid_arg "Cost_graph: more rows than columns";
    let row_off = Array.init (rows + 1) (fun r -> r * cols) in
    let arc_col = Array.init (rows * cols) (fun a -> a mod cols) in
    let arc_w = Array.init (rows * cols) (fun a -> matrix.(a / cols).(a mod cols)) in
    { rows; cols; row_off; arc_col; arc_w }
  end

(* [candidates.(r)] lists row [r]'s feasible (column, weight) arcs, in
   any order. A row with no arcs is accepted here — it surfaces as
   [Matcher.Infeasible] at solve time, like any other Hall violation. *)
let of_rows ~cols candidates =
  let rows = Array.length candidates in
  if cols < 0 then invalid_arg "Cost_graph: negative column count";
  if rows > cols then invalid_arg "Cost_graph: more rows than columns";
  let sorted =
    Array.map
      (fun cands ->
        let cands = Array.copy cands in
        Array.iter
          (fun (c, w) ->
            if c < 0 || c >= cols then invalid_arg "Cost_graph: column out of range";
            check_weight w)
          cands;
        Array.sort (fun (a, _) (b, _) -> Int.compare a b) cands;
        Array.iteri
          (fun i (c, _) ->
            if i > 0 && fst cands.(i - 1) = c then
              invalid_arg "Cost_graph: duplicate arc in a row")
          cands;
        cands)
      candidates
  in
  let row_off = Array.make (rows + 1) 0 in
  Array.iteri (fun r cands -> row_off.(r + 1) <- row_off.(r) + Array.length cands) sorted;
  let nnz = row_off.(rows) in
  let arc_col = Array.make nnz 0 in
  let arc_w = Array.make nnz 0.0 in
  Array.iteri
    (fun r cands ->
      Array.iteri
        (fun i (c, w) ->
          arc_col.(row_off.(r) + i) <- c;
          arc_w.(row_off.(r) + i) <- w)
        cands)
    sorted;
  { rows; cols; row_off; arc_col; arc_w }

let iter_row t r f =
  for a = t.row_off.(r) to t.row_off.(r + 1) - 1 do
    f t.arc_col.(a) t.arc_w.(a)
  done

let row_degree t r = t.row_off.(r + 1) - t.row_off.(r)

let negate t = { t with arc_w = Array.map (fun w -> -.w) t.arc_w }

(* Weight range over all arcs; (0, 0) for an arc-free graph. *)
let weight_range t =
  let lo = ref infinity and hi = ref neg_infinity in
  Array.iter
    (fun w ->
      if w < !lo then lo := w;
      if w > !hi then hi := w)
    t.arc_w;
  if !lo > !hi then (0.0, 0.0) else (!lo, !hi)

(* Dense matrix with [fill] in the non-arc cells — the adapter for the
   dense Hungarian reference. Callers pick [fill] large enough that no
   optimal assignment of a feasible graph ever uses a filler cell. *)
let to_dense ~fill t =
  let m = Array.make_matrix t.rows t.cols fill in
  for r = 0 to t.rows - 1 do
    iter_row t r (fun c w -> m.(r).(c) <- w)
  done;
  m

let assignment_weight t assign =
  let total = ref 0.0 in
  Array.iteri
    (fun r c ->
      let found = ref false in
      iter_row t r (fun c' w ->
          if c' = c then begin
            found := true;
            total := !total +. w
          end);
      if not !found then invalid_arg "Cost_graph.assignment_weight: not an arc")
    assign;
  !total
