(* Registration hub for the non-reference matchers, mirroring
   Rb_core.Binders. The Hungarian reference registers itself when
   Matcher loads (so the default always resolves); auction and JV are
   registered here so entry points opt in explicitly and library users
   linking only the reference pay nothing. Idempotent and
   thread-safe. *)

let mutex = Mutex.create ()
let registered = ref false

let ensure_registered () =
  Mutex.protect mutex (fun () ->
      if not !registered then begin
        registered := true;
        Matcher.register (module Jv);
        Matcher.register (module Auction)
      end)
