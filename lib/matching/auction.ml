(* Forward-auction assignment with ε-scaling (Bertsekas), plus a
   dual-repair pass that turns the auction's ε-optimal prices into
   *exact* optimal duals meeting the {!Matcher.solution} contract.

   Orientation: the auction maximizes benefit, so a min-cost instance
   runs on negated weights. Unassigned rows bid for their best-value
   column (value = benefit − price) at increment (best − second-best)
   + ε; outbid rows requeue. Phases shrink ε by θ = 5, keeping prices
   and resetting the assignment; by ε-complementary-slackness each
   phase starts near-optimal, so total work stays near-linear in arcs
   on sparse graphs.

   Rectangular instances: ε-scaling with persistent prices is only
   sound when every column is matched at phase end (otherwise a column
   bid up in one phase can be orphaned at an inflated price that no
   later phase corrects — which silently breaks the ε-CS optimality
   argument). The instance is therefore squared with [cols − rows]
   zero-benefit dummy bidders; the square optimum restricted to the
   real rows is exactly the rectangular optimum. Dummies are never
   materialized as arcs: a dummy's best and second-best columns are
   just the two cheapest prices, served in O(log cols) from a lazily
   deleted min-heap keyed (price, column) — the same smallest-column
   tie rule the per-arc scan uses, so results match the materialized
   construction bid for bid.

   Exactness:
   - Integer-grid weights (every binder path: integer edge weights,
     quarter-integer area scores, 1/256-grid power scores): weights
     are scaled onto an integer grid, benefits multiplied by
     (rows + 1), and ε driven down to 1 — the classical scaling
     argument makes the final assignment exactly optimal, and all
     arithmetic stays on integers exactly representable in float.
   - Arbitrary floats: ε is driven to a ~1e-9·span floor, then dual
     repair cancels any remaining strictly-improving exchange cycle
     (each cancellation strictly lowers the total, so the loop
     terminates); a defensive cap falls back to the exact JV engine.

   Dual repair (both modes): with the primal fixed, optimal duals
   solve the difference constraints v(j') <= v(j(i)) + w(i,j') −
   w(i,j(i)) over the column exchange graph. Label-correcting
   relaxation (SPFA: a FIFO queue of columns whose potential dropped,
   re-relaxing only the row matched there) from v ≡ 0 reaches the
   greatest fixpoint; at an optimal primal no negative cycle exists
   and no unmatched column drops below 0 (either would witness an
   improving exchange), so the result satisfies feasibility, tightness
   on matched arcs, v <= 0, and v = 0 off the matching — exactly the
   registry contract. *)

let theta = 5.0

(* Local CSR copy: degrees/offsets plus per-arc columns and weights,
   so the bidding inner loop is flat array reads. *)
type csr = { off : int array; col : int array; w : float array }

let csr_of_graph graph =
  let rows = Cost_graph.rows graph in
  let off = Array.make (rows + 1) 0 in
  for r = 0 to rows - 1 do
    off.(r + 1) <- off.(r) + Cost_graph.row_degree graph r
  done;
  let nnz = off.(rows) in
  let col = Array.make nnz 0 and w = Array.make nnz 0.0 in
  let a = ref 0 in
  for r = 0 to rows - 1 do
    Cost_graph.iter_row graph r (fun c wt ->
        col.(!a) <- c;
        w.(!a) <- wt;
        incr a)
  done;
  { off; col; w }

(* Grid detection: smallest power-of-two scale putting every weight on
   an integer grid. Bounded so scaled benefits, prices and bids stay
   exactly representable in float: rows <= 2^14 and span·scale <= 2^20
   keep every intermediate below ~2^49 < 2^53. *)
let grid_scale graph =
  let lo, hi = Cost_graph.weight_range graph in
  let rec search scale tries =
    if tries = 0 || (hi -. lo) *. scale > 1048576.0 then None
    else begin
      let exception Not_grid in
      let ok =
        try
          for r = 0 to Cost_graph.rows graph - 1 do
            Cost_graph.iter_row graph r (fun _ w ->
                let s = w *. scale in
                if not (Float.is_integer s) || Float.abs s > 1.0e12 then
                  raise Not_grid)
          done;
          true
        with Not_grid -> false
      in
      if ok then Some scale else search (2.0 *. scale) (tries - 1)
    end
  in
  if Cost_graph.rows graph > 16384 then None else search 1.0 25

(* Auction over per-arc benefits [ben] (CSR-aligned) plus [dummies]
   implicit zero-benefit bidders, ε scaled from [eps0] down through /θ
   to [eps_final] with persistent prices. Requires a feasible graph
   (registry pre-checks). Returns (bidder -> col assignment with the
   real rows first, phases, bids). *)
let run_auction csr ~rows ~cols ~dummies ~eps0 ~eps_final ben =
  let n = rows + dummies in
  let prices = Array.make cols 0.0 in
  let owner = Array.make cols (-1) in
  let row_col = Array.make n (-1) in
  let stack = Array.make n 0 in
  let phases = ref 0 and bids = ref 0 in
  (* A single-candidate row bids as if its second-best value trailed by
     more than any real gap, taking the column outright. *)
  let lo_b = ref infinity and hi_b = ref neg_infinity in
  Array.iter
    (fun b ->
      if b < !lo_b then lo_b := b;
      if b > !hi_b then hi_b := b)
    ben;
  if dummies > 0 then begin
    if 0.0 < !lo_b then lo_b := 0.0;
    if 0.0 > !hi_b then hi_b := 0.0
  end;
  let lone_gap = if !lo_b > !hi_b then 1.0 else !hi_b -. !lo_b +. 1.0 in
  (* Lazy min-heap of (price, column) for the dummies' two-cheapest
     query; an entry is stale once its column was re-priced. Refilled
     each phase, fed on every price move. *)
  let heap = Minheap.create () in
  let heap_pop_fresh () =
    let rec go () =
      let p, j = Minheap.pop heap in
      if p = prices.(j) then (p, j) else go ()
    in
    go ()
  in
  let run_phase eps =
    incr phases;
    Array.fill owner 0 cols (-1);
    Array.fill row_col 0 n (-1);
    if dummies > 0 then begin
      Minheap.clear heap;
      for j = 0 to cols - 1 do
        Minheap.push heap prices.(j) j
      done
    end;
    let top = ref n in
    for i = 0 to n - 1 do
      stack.(n - 1 - i) <- i
    done;
    while !top > 0 do
      decr top;
      let i = stack.(!top) in
      incr bids;
      let j, bid =
        if i < rows then begin
          let best = ref neg_infinity and second = ref neg_infinity in
          let jbest = ref (-1) in
          for a = csr.off.(i) to csr.off.(i + 1) - 1 do
            let value = ben.(a) -. prices.(csr.col.(a)) in
            (* Strict [>] keeps the first maximizer; columns ascend
               within a row, so ties resolve to the smallest column. *)
            if value > !best then begin
              second := !best;
              best := value;
              jbest := csr.col.(a)
            end
            else if value > !second then second := value
          done;
          let second =
            if !second = neg_infinity then !best -. lone_gap else !second
          in
          (!jbest, !best -. second +. eps)
        end
        else begin
          (* Dummy bidder: benefit 0 everywhere, so best/second-best
             are the two cheapest columns ([dummies > 0] implies
             [cols >= 2], and every column keeps a fresh heap entry,
             so the second pop always succeeds). *)
          let p1, j1 = heap_pop_fresh () in
          let p2, j2 = heap_pop_fresh () in
          Minheap.push heap p2 j2;
          (j1, p2 -. p1 +. eps)
        end
      in
      prices.(j) <- prices.(j) +. bid;
      if dummies > 0 then Minheap.push heap prices.(j) j;
      (match owner.(j) with
      | -1 -> ()
      | prev ->
          row_col.(prev) <- -1;
          stack.(!top) <- prev;
          incr top);
      owner.(j) <- i;
      row_col.(i) <- j
    done
  in
  let eps = ref eps0 in
  let continue = ref true in
  while !continue do
    run_phase !eps;
    if !eps <= eps_final then continue := false
    else eps := Float.max eps_final (!eps /. theta)
  done;
  (row_col, !phases, !bids)

(* Weight of row [i]'s arc to its matched column (every matched column
   is one of the row's arcs). *)
let matched_weight csr i ji =
  let w = ref 0.0 in
  for a = csr.off.(i) to csr.off.(i + 1) - 1 do
    if csr.col.(a) = ji then w := csr.w.(a)
  done;
  !w

(* Label-correcting relaxation (SPFA) over the column exchange graph
   of [row_col] on the *original* min-cost weights: a FIFO queue holds
   matched columns whose potential just dropped; draining one
   re-relaxes only the row matched there. Each column's enqueue count
   is bounded by [cols + 1] on negative-cycle-free graphs, and on the
   long dependency chains banded binding instances produce the queue
   settles in near-linear time where full Bellman–Ford passes would go
   quadratic. Returns [Some (u, v)] at a clean fixpoint.

   A suboptimal primal (only reachable in the non-grid float mode)
   surfaces in one of two ways, and either returns [None] after
   strictly improving the matching so the caller retries:
   - a negative cycle (some column's enqueue count passes [cols + 1]):
     rotate each cycle row one step along it;
   - a negative path — the fixpoint drags an *unmatched* column below
     0, i.e. an improving alternating path that swaps which columns
     are used: rotate rows along the parent chain, matching that
     column and freeing the chain's origin.
   At a true optimum neither exists, so the fixpoint satisfies
   feasibility, tightness on matched arcs, v <= 0, and v = 0 off the
   matching. [tol] guards float round-off: only exchanges improving by
   more than it are applied, and residual [-tol, 0) values on
   unmatched columns are clamped to 0 (within the canonicalizer's
   slack tolerance). *)
let repair_duals csr ~rows ~cols ~tol row_col =
  let v = Array.make cols 0.0 in
  let parent_row = Array.make cols (-1) in
  let mw = Array.make rows 0.0 in
  for i = 0 to rows - 1 do
    mw.(i) <- matched_weight csr i row_col.(i)
  done;
  let col_of = Array.make cols (-1) in
  for i = 0 to rows - 1 do
    col_of.(row_col.(i)) <- i
  done;
  (* FIFO ring of size cols + 1 (in-queue flags cap occupancy at
     cols); deterministic drain order. *)
  let q = Array.make (cols + 1) 0 in
  let qh = ref 0 and qt = ref 0 in
  let in_q = Array.make cols false in
  let enq_count = Array.make cols 0 in
  let cycle_col = ref (-1) in
  let enqueue j =
    if not in_q.(j) then begin
      in_q.(j) <- true;
      enq_count.(j) <- enq_count.(j) + 1;
      if enq_count.(j) > cols + 1 then cycle_col := j
      else begin
        q.(!qt) <- j;
        qt := (!qt + 1) mod (cols + 1)
      end
    end
  in
  let relax_row i =
    let base = v.(row_col.(i)) -. mw.(i) in
    for a = csr.off.(i) to csr.off.(i + 1) - 1 do
      let j' = csr.col.(a) in
      let cand = base +. csr.w.(a) in
      if cand < v.(j') -. tol then begin
        v.(j') <- cand;
        parent_row.(j') <- i;
        (* Unmatched columns have no outgoing constraint; they only
           ever receive labels. *)
        if col_of.(j') >= 0 then enqueue j'
      end
    done
  in
  for i = 0 to rows - 1 do
    enqueue row_col.(i)
  done;
  while !cycle_col < 0 && !qh <> !qt do
    let j = q.(!qh) in
    qh := (!qh + 1) mod (cols + 1);
    in_q.(j) <- false;
    relax_row col_of.(j)
  done;
  if !cycle_col < 0 then begin
    let matched = Array.make cols false in
    for i = 0 to rows - 1 do
      matched.(row_col.(i)) <- true
    done;
    let bad_col = ref (-1) in
    for j = cols - 1 downto 0 do
      if (not matched.(j)) && v.(j) < -.tol then bad_col := j
    done;
    match !bad_col with
    | -1 ->
        for j = 0 to cols - 1 do
          if not matched.(j) then v.(j) <- 0.0
        done;
        let u = Array.make rows 0.0 in
        for i = 0 to rows - 1 do
          u.(i) <- mw.(i) -. v.(row_col.(i))
        done;
        Some (u, v)
    | bad ->
        (* Improving path into unmatched column [bad]: rotate rows
           forward along the parent chain, freeing the chain's origin
           column. The chain is acyclic at an exact fixpoint; under a
           float tolerance a pseudo-cycle of near-zero exchanges could
           persist in the parent pointers, so pre-walk with a step
           bound and skip the rotation (leaving the caller's retry cap
           to hand the instance to the JV fallback) if no origin
           appears. *)
        let steps = ref 0 and c = ref bad in
        while !steps <= cols && parent_row.(row_col.(parent_row.(!c))) <> -1 do
          incr steps;
          c := row_col.(parent_row.(!c))
        done;
        if !steps > cols then None
        else begin
          let c = ref bad in
          let continue = ref true in
          while !continue do
            let r = parent_row.(!c) in
            let c_prev = row_col.(r) in
            row_col.(r) <- !c;
            if parent_row.(c_prev) = -1 then continue := false else c := c_prev
          done;
          None
        end
  end
  else begin
    (* Negative cycle in the exchange graph. The parent pointers
       encode, for each column [c], the row [parent_row.(c)] that
       would improve by moving to [c] from its current column
       [row_col.(parent_row.(c))] — the cycle's predecessor node. Walk
       predecessors [cols] times to land inside the cycle, then rotate
       each cycle row one step forward (to the column it relaxed),
       strictly improving the matching. *)
    let j = ref !cycle_col in
    for _ = 1 to cols do
      j := row_col.(parent_row.(!j))
    done;
    let start = !j in
    let rec rotate c =
      let r = parent_row.(c) in
      let c_prev = row_col.(r) in
      row_col.(r) <- c;
      if c_prev <> start then rotate c_prev
    in
    rotate start;
    None
  end

let name = "auction"

let description =
  "forward auction with epsilon-scaling + label-correcting dual repair; exact \
   on integer-grid weights (all binder paths), near-linear on sparse graphs"

let phase_metric = "epsilon_phases"

(* Defensive bound on dual-repair improvement rounds in the non-grid
   float mode before handing the instance to the exact JV engine. *)
let max_cancels = 64

let solve graph : Matcher.solution =
  let rows = Cost_graph.rows graph and cols = Cost_graph.cols graph in
  let csr = csr_of_graph graph in
  let lo, hi = Cost_graph.weight_range graph in
  let span = hi -. lo in
  let dummies = cols - rows in
  let finish ~tol ~phases ~bids row_col =
    let rec attempt k =
      if k > max_cancels then None
      else
        match repair_duals csr ~rows ~cols ~tol row_col with
        | Some uv -> Some uv
        | None -> attempt (k + 1)
    in
    match attempt 0 with
    | Some (u, v) ->
        { Matcher.assignment = row_col; row_duals = u; col_duals = v; phases;
          scans = bids }
    | None ->
        (* Pathological float instance: defer to the exact JV engine,
           keeping the work counters spent so far visible. *)
        let sol = Jv.solve graph in
        { sol with phases = sol.phases + phases; scans = sol.scans + bids }
  in
  match grid_scale graph with
  | Some scale ->
      (* Benefits on the (rows+1)-inflated integer grid; final ε = 1
         makes the square assignment exactly optimal on the inflated
         grid, hence exactly optimal on the original weights. *)
      let mult = scale *. float_of_int (rows + 1) in
      let ben = Array.map (fun w -> -.w *. mult) csr.w in
      let span_b = (Float.max (-.lo) 0.0 +. Float.max hi 0.0) *. mult in
      let eps0 = Float.max 1.0 (span_b /. 4.0) in
      let row_col, phases, bids =
        run_auction csr ~rows ~cols ~dummies ~eps0 ~eps_final:1.0 ben
      in
      finish ~tol:0.0 ~phases ~bids (Array.sub row_col 0 rows)
  | None ->
      (* Arbitrary floats: ε-scale to a ~1e-9 relative floor, then let
         dual repair cancel residual improving cycles/paths. *)
      let ben = Array.map (fun w -> -.w) csr.w in
      let tol = 1e-9 *. (1.0 +. span) in
      let span_b = Float.max (-.lo) 0.0 +. Float.max hi 0.0 in
      let eps_final = Float.max (tol /. float_of_int (cols + 1)) epsilon_float in
      let eps0 = Float.max eps_final (span_b /. 4.0) in
      let row_col, phases, bids =
        run_auction csr ~rows ~cols ~dummies ~eps0 ~eps_final ben
      in
      finish ~tol ~phases ~bids (Array.sub row_col 0 rows)
