(* Canonical tie-breaking for optimal assignments.

   Different exact matchers (Hungarian, auction, Jonker–Volgenant) may
   return *different* optimal assignments when optima are tied — and
   binders produce massively tied instances (e.g. the codesign fast
   path weighs every unlocked FU 0). The determinism contract requires
   byte-identical reports whichever matcher is selected, so the
   registry normalizes every assignment to a canonical representative
   before it reaches a binder.

   The canonical form is the lexicographically smallest optimal
   assignment (compare [assign.(0)], then [assign.(1)], ...). Why it
   is matcher-independent: given any optimal dual [(u, v)] satisfying
   the contract (feasibility [w_ij >= u_i + v_j], tightness on matched
   arcs, [v_j <= 0] with [v_j = 0] on unmatched columns), a
   row-perfect matching is optimal iff it uses only *tight* arcs
   ([w_ij = u_i + v_j]) and covers every column with [v_j < 0]. That
   optimal face is the set of optimal matchings itself, so it is the
   same for every valid dual — and walking it lexicographically yields
   the same answer no matter which algorithm produced the input.

   Procedure: fix rows in ascending order. For row [i], try its tight
   columns in ascending order, stopping at the column it already
   holds. A move of [i] from [j_old] to candidate [c] must transform
   the current matching into another member of the optimal face with
   [i] on [c], which takes two searches over tight arcs through
   unfixed rows and unlocked columns:
   1. re-match the rows displaced by taking [c], Kuhn-style, ending at
      any free column (free columns have [v = 0], so using one is
      cost-neutral);
   2. if [j_old] must stay covered ([v_{j_old} < 0]) and step 1's path
      did not loop back to it, repair coverage: pull some row onto
      [j_old], then recursively re-cover the column that row vacated
      until a coverage-optional column is freed. (The classic
      single-chain search misses exactly this case — the witness
      alternating path passes *through* [j_old] via a row that was
      never displaced.)
   Both searches are standard augmenting-path arguments, so each
   succeeds iff some optimal-face matching with the desired prefix
   exists; the attempt is rolled back from a snapshot on failure. Once
   row [i] is fixed its column is locked. The pass is
   O(rows * tight-arcs) per attempted candidate in the worst case and
   near-free on untied instances. *)

(* Relative tolerance for tightness tests. Integer-valued weights (all
   binder paths: edge weights, quarter-integer area scores, 1/256-grid
   power scores) make slacks exactly 0.0, so the tolerance only
   matters for arbitrary float instances. *)
let slack_tol w u v = 1e-9 *. (1.0 +. Float.abs w +. Float.abs u +. Float.abs v)

let lex_min graph ~assignment ~row_duals ~col_duals =
  let rows = Cost_graph.rows graph and cols = Cost_graph.cols graph in
  if rows = 0 then [||]
  else begin
    let assign = Array.copy assignment in
    let col_row = Array.make cols (-1) in
    Array.iteri (fun r c -> col_row.(c) <- r) assign;
    (* Tight sub-graph, both row-major (ascending columns) and
       col-major (ascending rows) CSR. *)
    let is_tight r c w =
      let u = row_duals.(r) and v = col_duals.(c) in
      w -. u -. v <= slack_tol w u v
    in
    let row_off = Array.make (rows + 1) 0 in
    let col_off = Array.make (cols + 1) 0 in
    let count = ref 0 in
    for r = 0 to rows - 1 do
      Cost_graph.iter_row graph r (fun c w ->
          if is_tight r c w then begin
            incr count;
            col_off.(c + 1) <- col_off.(c + 1) + 1
          end);
      row_off.(r + 1) <- !count
    done;
    for c = 0 to cols - 1 do
      col_off.(c + 1) <- col_off.(c + 1) + col_off.(c)
    done;
    let row_adj = Array.make !count 0 in
    let col_adj = Array.make !count 0 in
    let col_fill = Array.copy col_off in
    let fill = ref 0 in
    for r = 0 to rows - 1 do
      Cost_graph.iter_row graph r (fun c w ->
          if is_tight r c w then begin
            row_adj.(!fill) <- c;
            incr fill;
            col_adj.(col_fill.(c)) <- r;
            col_fill.(c) <- col_fill.(c) + 1
          end)
    done;
    let must_cover c =
      col_duals.(c) < -.(1e-9 *. (1.0 +. Float.abs col_duals.(c)))
    in
    let locked = Array.make cols false in
    let visited = Array.make cols (-1) in
    let stamp = ref 0 in
    (* Snapshot-based rollback for failed attempts. *)
    let saved_assign = Array.make rows 0 in
    let saved_col_row = Array.make cols 0 in
    for i = 0 to rows - 1 do
      let j_old = assign.(i) in
      (* Phase 1: Kuhn re-match of displaced rows onto free columns. *)
      let rec rematch r =
        let ok = ref false in
        let a = ref row_off.(r) in
        while (not !ok) && !a < row_off.(r + 1) do
          let c = row_adj.(!a) in
          incr a;
          if (not locked.(c)) && visited.(c) <> !stamp then begin
            visited.(c) <- !stamp;
            let occupant = col_row.(c) in
            if occupant = -1 || rematch occupant then begin
              assign.(r) <- c;
              col_row.(c) <- r;
              ok := true
            end
          end
        done;
        !ok
      in
      (* Phase 2: re-cover column [c_star] (free, must-cover) by
         pulling an unfixed row onto it; recurse on the column that
         row vacates until a coverage-optional one is freed. *)
      let rec cover c_star =
        visited.(c_star) <- !stamp;
        let ok = ref false in
        let a = ref col_off.(c_star) in
        while (not !ok) && !a < col_off.(c_star + 1) do
          let r = col_adj.(!a) in
          incr a;
          (* Unfixed rows only (fixed rows, including [i], are pinned
             to locked columns or to [c]). *)
          if r > i then begin
            let c_r = assign.(r) in
            if visited.(c_r) <> !stamp then begin
              col_row.(c_r) <- -1;
              assign.(r) <- c_star;
              col_row.(c_star) <- r;
              if (not (must_cover c_r)) || cover c_r then ok := true
              else begin
                col_row.(c_star) <- -1;
                assign.(r) <- c_r;
                col_row.(c_r) <- r
              end
            end
          end
        done;
        !ok
      in
      let attempt c =
        Array.blit assign 0 saved_assign 0 rows;
        Array.blit col_row 0 saved_col_row 0 cols;
        incr stamp;
        visited.(c) <- !stamp;
        let occupant = col_row.(c) in
        col_row.(j_old) <- -1;
        assign.(i) <- c;
        col_row.(c) <- i;
        let ok =
          (occupant = -1 || rematch occupant)
          && ((not (must_cover j_old))
             || col_row.(j_old) <> -1
             ||
             (incr stamp;
              cover j_old))
        in
        if not ok then begin
          Array.blit saved_assign 0 assign 0 rows;
          Array.blit saved_col_row 0 col_row 0 cols
        end;
        ok
      in
      let a = ref row_off.(i) in
      let moved = ref false in
      while (not !moved) && !a < row_off.(i + 1) do
        let c = row_adj.(!a) in
        incr a;
        if c >= j_old then a := row_off.(i + 1)
        else if not locked.(c) then moved := attempt c
      done;
      locked.(assign.(i)) <- true
    done;
    assign
  end
