(* Jonker–Volgenant-style successive shortest augmenting paths on the
   sparse cost graph. One Dijkstra per row over reduced costs
   [rc(i,j) = c'(i,j) - u(i) - v(j)] (nonnegative by the running dual
   invariant), stopping at the first unmatched column popped; dual
   updates keep matched arcs tight and [v <= 0] with [v = 0] on
   unmatched columns, so the returned duals certify optimality under
   the {!Matcher.solution} contract. O(rows * (arcs + arcs log arcs));
   near-linear per row on the sparse graphs real binding cycles
   produce.

   Weights are pre-shifted by their global minimum so the initial
   all-zero duals are feasible; the shift is folded back into the row
   duals on exit. All arithmetic on integer-valued weights stays exact
   (sums of integers in float). Determinism: the heap orders by
   (distance, column) lexicographically, so tie-broken pop order —
   hence the returned assignment and duals — is reproducible. *)

let solve graph : Matcher.solution =
  let rows = Cost_graph.rows graph and cols = Cost_graph.cols graph in
  let lo, _hi = Cost_graph.weight_range graph in
  let u = Array.make rows 0.0 in
  let v = Array.make cols 0.0 in
  let row_col = Array.make rows (-1) in
  let col_row = Array.make cols (-1) in
  let dist = Array.make cols infinity in
  let finalized = Array.make cols false in
  let final_cols = Array.make cols 0 in
  let pred_row = Array.make cols (-1) in
  let heap = Minheap.create () in
  let scans = ref 0 in
  for r0 = 0 to rows - 1 do
    Array.fill dist 0 cols infinity;
    Array.fill finalized 0 cols false;
    Minheap.clear heap;
    let n_final = ref 0 in
    (* Seed with r0's arcs; row r0 is at implicit distance 0. *)
    Cost_graph.iter_row graph r0 (fun j w ->
        incr scans;
        let d = w -. lo -. u.(r0) -. v.(j) in
        if d < dist.(j) then begin
          dist.(j) <- d;
          pred_row.(j) <- r0;
          Minheap.push heap d j
        end);
    let terminal = ref (-1) in
    let d_star = ref 0.0 in
    while !terminal < 0 && not (Minheap.is_empty heap) do
      let d, j = Minheap.pop heap in
      if not finalized.(j) then begin
        finalized.(j) <- true;
        dist.(j) <- d;
        final_cols.(!n_final) <- j;
        incr n_final;
        if col_row.(j) = -1 then begin
          terminal := j;
          d_star := d
        end
        else begin
          (* The matched arc (col_row j, j) is tight, so that row sits
             at distance [d]; relax its other arcs. *)
          let r = col_row.(j) in
          Cost_graph.iter_row graph r (fun j' w ->
              if not finalized.(j') then begin
                incr scans;
                let nd = d +. (w -. lo -. u.(r) -. v.(j')) in
                if nd < dist.(j') then begin
                  dist.(j') <- nd;
                  pred_row.(j') <- r;
                  Minheap.push heap nd j'
                end
              end)
        end
      end
    done;
    if !terminal < 0 then
      (* Unreachable for graphs that pass the registry's Kuhn
         pre-check; defensive for direct callers. *)
      raise
        (Matcher.Infeasible
           (Printf.sprintf "jv: row %d cannot reach an unmatched column" r0));
    (* Dual update keeps finalized matched arcs tight and only ever
       decreases v (finalized columns have dist <= d_star); the
       terminal column's v is untouched (dist = d_star), so unmatched
       columns stay at 0. *)
    for k = 0 to !n_final - 1 do
      let j = final_cols.(k) in
      let delta = dist.(j) -. !d_star in
      v.(j) <- v.(j) +. delta;
      match col_row.(j) with
      | -1 -> ()
      | r -> u.(r) <- u.(r) -. delta
    done;
    u.(r0) <- u.(r0) +. !d_star;
    (* Augment along the predecessor chain ending at [terminal]. *)
    let j = ref !terminal in
    let continue = ref true in
    while !continue do
      let r = pred_row.(!j) in
      let j_prev = row_col.(r) in
      row_col.(r) <- !j;
      col_row.(!j) <- r;
      if r = r0 then continue := false else j := j_prev
    done
  done;
  (* Fold the global shift back into the row duals: with original
     weights w = w' + lo, feasibility and tightness transfer to
     (u + lo, v). *)
  let row_duals = Array.map (fun ui -> ui +. lo) u in
  { assignment = row_col; row_duals; col_duals = v; phases = rows; scans = !scans }

let name = "jv"

let description =
  "Jonker-Volgenant sparse successive shortest augmenting paths (Dijkstra with \
   potentials); exact, near-linear per row on sparse graphs"

let phase_metric = "augmenting_phases"
