(** Canonical tie-breaking over the optimal face of an assignment.

    Matchers agree on the optimal total but not, under ties, on the
    assignment itself. Given any optimal assignment together with dual
    potentials meeting the {!Matcher.solution} contract, {!lex_min}
    returns the lexicographically smallest optimal assignment — a
    representative that is provably independent of which matcher (and
    which valid dual) produced the input, because the optimal face is
    exactly the row-perfect matchings on tight arcs that keep every
    negative-dual column covered. See DESIGN.md §14. *)

val lex_min :
  Cost_graph.t ->
  assignment:int array ->
  row_duals:float array ->
  col_duals:float array ->
  int array
(** O(rows · arcs) worst case; near-free when optima are untied.
    Exact for integer-grid weights; uses a relative 1e-9 slack
    tolerance on arbitrary floats. *)
