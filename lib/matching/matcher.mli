(** Name-keyed registry of assignment algorithms (mirrors the binder
    registry). See DESIGN.md §14.

    Every registered matcher solves min-cost row-perfect assignment on
    a sparse {!Cost_graph.t} and returns optimal dual potentials with
    the primal. The duals serve two purposes: they certify optimality
    (checked property-wise in tests), and they let the registry
    normalize tied optima to one canonical assignment
    ({!Canonical.lex_min}), so binder output is byte-identical
    whichever matcher is selected.

    The "hungarian" reference is always registered; "auction" and "jv"
    join via {!Matchers.ensure_registered}. *)

exception Infeasible of string
(** No row-perfect matching exists within the graph's candidate arcs
    (a Hall violation, e.g. an arc-free row). Raised before the
    selected algorithm runs. *)

type solution = {
  assignment : int array;  (** [assignment.(r)] = column matched to row [r] *)
  row_duals : float array;
  col_duals : float array;
      (** Optimal duals: [w(i,j) >= u.(i) +. v.(j)] on every arc,
          equality on matched arcs, [v.(j) <= 0.] with equality on
          unmatched columns. *)
  phases : int;  (** augmenting phases / ε-phases, algorithm-defined *)
  scans : int;  (** relaxation scans / bids, algorithm-defined *)
}

module type S = sig
  val name : string
  val description : string

  val phase_metric : string
  (** Name of the per-algorithm phase counter
      (["augmenting_phases"] or ["epsilon_phases"]). *)

  val solve : Cost_graph.t -> solution
  (** Exact min-cost solve of a feasible graph with [rows >= 1]
      (the registry pre-checks both). *)
end

(** {1 Registry} *)

val register : (module S) -> unit
val names : unit -> string list
(** Sorted registered names. *)

val describe : string -> string
(** Raises [Invalid_argument] on an unknown name, like {!use}. *)

val use : string -> unit
(** Select the process-wide default matcher ([--matcher] on
    bindlock/bench). Deliberately not part of [Rb_service] job
    descriptions: matchers are output-equivalent by construction, so
    the selection must not perturb job digests. *)

val default : unit -> string
(** Currently selected default; ["hungarian"] at startup. *)

(** {1 Solving}

    All entry points: instrument under both the legacy ["matching/*"]
    totals and per-algorithm ["matching/<name>/*"] counters; pre-check
    feasibility on incomplete graphs (raising {!Infeasible}); return
    [[||]] for 0-row graphs. [?matcher] overrides the default.

    The [_assignment] variants canonicalize ties (lex-min over the
    optimal face) and are what binders use; the [_total] variants skip
    canonicalization — optimal totals are matcher-invariant already —
    for search loops that only rank candidates (the codesign sweep's
    187k-call hot path). *)

val solve : ?matcher:string -> Cost_graph.t -> solution
(** Raw instrumented solve; duals as produced by the algorithm,
    assignment not canonicalized. *)

val min_cost_assignment : ?matcher:string -> Cost_graph.t -> int array
val min_cost_total : ?matcher:string -> Cost_graph.t -> float
val max_weight_assignment : ?matcher:string -> Cost_graph.t -> int array
val max_weight_total : ?matcher:string -> Cost_graph.t -> float

val min_cost_dense : ?matcher:string -> float array array -> int array
val max_weight_dense : ?matcher:string -> float array array -> int array
val max_weight_total_dense : ?matcher:string -> float array array -> float
