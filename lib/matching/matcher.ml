(* Name-keyed registry of assignment algorithms, mirroring the binder
   registry (lib/hls/binder.ml). Every registered matcher solves the
   same problem — min-cost row-perfect assignment on a sparse cost
   graph — and returns optimal dual potentials alongside the primal so
   the registry can (a) certify optimality in tests and (b) normalize
   tied optima to one canonical assignment, keeping binder output
   byte-identical whichever matcher is selected. *)

module Metrics = Rb_util.Metrics

exception Infeasible of string

type solution = {
  assignment : int array;
  row_duals : float array;
  col_duals : float array;
  phases : int;
  scans : int;
}

module type S = sig
  val name : string
  val description : string
  val phase_metric : string
  val solve : Cost_graph.t -> solution
end

(* Legacy totals (same keys the Hungarian module has always recorded)
   plus per-algorithm attribution. Metric names may contain '/', so
   "auction/assignments" under scope "matching" yields the
   "matching/auction/assignments" key promised by the issue. *)
let m_assignments = Metrics.counter ~scope:"matching" "assignments"
let m_phases = Metrics.counter ~scope:"matching" "augmenting_phases"
let m_scans = Metrics.counter ~scope:"matching" "relaxation_scans"
let t_assignment = Metrics.timer ~scope:"matching" "assignment"
let t_canonical = Metrics.timer ~scope:"matching" "canonicalize"

type entry = {
  impl : (module S);
  m_calls : Metrics.counter;
  m_algo_phases : Metrics.counter;
  m_algo_scans : Metrics.counter;
}

let registry : (string, entry) Hashtbl.t = Hashtbl.create 7
let registry_mutex = Mutex.create ()

let register (module M : S) =
  let entry =
    {
      impl = (module M);
      m_calls = Metrics.counter ~scope:"matching" (M.name ^ "/assignments");
      m_algo_phases = Metrics.counter ~scope:"matching" (M.name ^ "/" ^ M.phase_metric);
      m_algo_scans = Metrics.counter ~scope:"matching" (M.name ^ "/relaxation_scans");
    }
  in
  Mutex.protect registry_mutex (fun () -> Hashtbl.replace registry M.name entry)

let find name = Mutex.protect registry_mutex (fun () -> Hashtbl.find_opt registry name)

let names () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) registry [])
  |> List.sort String.compare

let require name =
  match find name with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "unknown matcher %S (registered: %s)" name
           (String.concat ", " (names ())))

let describe name =
  let e = require name in
  let (module M : S) = e.impl in
  M.description

(* The process-wide default, selected by [--matcher] on bindlock/bench.
   Deliberately *not* part of Rb_service job descriptions: matchers are
   output-equivalent by construction, so the selection must not perturb
   job digests or cached results. *)
let default_name = Atomic.make "hungarian"
let default () = Atomic.get default_name

let use name =
  ignore (require name);
  Atomic.set default_name name

(* Kuhn's augmenting-path maximum matching, used as a feasibility
   pre-check on incomplete graphs: a sparse instance whose candidate
   lists cannot cover every row (a Hall violation, including an
   arc-free row) must fail loudly rather than return a partial or
   filler-padded assignment. O(rows * arcs); skipped when the graph is
   complete, where rows <= cols guarantees feasibility. *)
let check_feasible graph =
  let rows = Cost_graph.rows graph and cols = Cost_graph.cols graph in
  let col_row = Array.make cols (-1) in
  let visited = Array.make cols (-1) in
  let rec augment stamp r =
    let ok = ref false in
    Cost_graph.iter_row graph r (fun c _ ->
        if (not !ok) && visited.(c) <> stamp then begin
          visited.(c) <- stamp;
          if col_row.(c) = -1 || augment stamp col_row.(c) then begin
            col_row.(c) <- r;
            ok := true
          end
        end);
    !ok
  in
  for r = 0 to rows - 1 do
    if not (augment r r) then
      raise
        (Infeasible
           (Printf.sprintf
              "matcher: no row-perfect matching exists (row %d cannot be \
               assigned; %d rows, %d cols, %d arcs)"
              r rows cols (Cost_graph.arcs graph)))
  done

let empty_solution graph =
  {
    assignment = [||];
    row_duals = [||];
    col_duals = Array.make (Cost_graph.cols graph) 0.0;
    phases = 0;
    scans = 0;
  }

(* Instrumented min-cost solve: feasibility pre-check, the selected
   algorithm under both the legacy "matching/*" totals and its own
   "matching/<name>/*" attribution, duals left raw (canonicalization
   is a separate, separately-timed step). *)
let solve_entry entry graph =
  let (module M : S) = entry.impl in
  if Cost_graph.rows graph = 0 then empty_solution graph
  else begin
    if not (Cost_graph.complete graph) then check_feasible graph;
    Metrics.incr m_assignments;
    Metrics.incr entry.m_calls;
    let sol = Metrics.time t_assignment (fun () -> M.solve graph) in
    Metrics.add m_phases sol.phases;
    Metrics.add m_scans sol.scans;
    Metrics.add entry.m_algo_phases sol.phases;
    Metrics.add entry.m_algo_scans sol.scans;
    sol
  end

let solve ?matcher graph =
  let name = match matcher with Some n -> n | None -> default () in
  solve_entry (require name) graph

let canonicalize graph sol =
  if Array.length sol.assignment = 0 then sol.assignment
  else
    Metrics.time t_canonical (fun () ->
        Canonical.lex_min graph ~assignment:sol.assignment
          ~row_duals:sol.row_duals ~col_duals:sol.col_duals)

let min_cost_assignment ?matcher graph =
  let sol = solve ?matcher graph in
  canonicalize graph sol

let min_cost_total ?matcher graph =
  let sol = solve ?matcher graph in
  Cost_graph.assignment_weight graph sol.assignment

(* Max-weight is min-cost on the negated graph. The canonical
   representative is computed on the negated instance, so it is the
   same for either orientation. *)
let max_weight_assignment ?matcher graph =
  min_cost_assignment ?matcher (Cost_graph.negate graph)

let max_weight_total ?matcher graph = -.min_cost_total ?matcher (Cost_graph.negate graph)

(* Dense conveniences for binder call sites. *)
let min_cost_dense ?matcher cost = min_cost_assignment ?matcher (Cost_graph.of_dense cost)

let max_weight_dense ?matcher weight =
  max_weight_assignment ?matcher (Cost_graph.of_dense weight)

let max_weight_total_dense ?matcher weight =
  max_weight_total ?matcher (Cost_graph.of_dense weight)

(* The dense Hungarian reference, registered here so the registry is
   never empty and "hungarian" (the default) always resolves. Sparse
   graphs are densified with a filler weight no optimal assignment of
   a feasible instance can touch: any all-real assignment costs at
   most rows*max, any filler-using one at least fill + (rows-1)*min,
   and fill = (rows+1)*(max-min) + max + 1 separates the two. Duals
   from the padded matrix remain valid for the real arcs. *)
module Hungarian_ref = struct
  let name = "hungarian"

  let description =
    "dense Hungarian reference (e-maxx potentials, O(n^2 m)); exact oracle for \
     the sparse engines"

  let phase_metric = "augmenting_phases"

  let solve graph =
    let cost =
      if Cost_graph.complete graph then Cost_graph.to_dense ~fill:0.0 graph
      else begin
        let lo, hi = Cost_graph.weight_range graph in
        let rows = float_of_int (Cost_graph.rows graph) in
        let fill = ((rows +. 1.0) *. (hi -. lo)) +. hi +. 1.0 in
        Cost_graph.to_dense ~fill graph
      end
    in
    let assignment, row_duals, col_duals, scans = Hungarian.solve_with_duals cost in
    { assignment; row_duals; col_duals; phases = Array.length cost; scans }
end

let () = register (module Hungarian_ref)
