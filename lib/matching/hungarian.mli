(** Optimal assignment on weighted bipartite graphs — the dense
    Hungarian reference.

    Every binding algorithm in this library — the paper's
    obfuscation-aware binding (Sec. IV-B) as well as the area-aware [20]
    and power-aware [19] baselines — reduces one clock cycle of binding
    to an assignment problem: match each of the cycle's operations
    (rows) to a distinct functional unit (columns) optimizing the sum of
    edge weights. The paper invokes Karp's O(mn log n) matching [23];
    this module implements the classical O(n^2 m) Hungarian algorithm
    with potentials, which is exact and comfortably fast at HLS sizes
    (|rows| <= |cols| <= a few dozen).

    At thousand-op sizes, prefer the {!Matcher} registry, which selects
    between this reference and the sparse auction / Jonker–Volgenant
    engines while verifying them differentially against it.

    Matrices are rectangular with [rows <= cols]; every row is
    assigned, columns may be left unassigned. *)

val min_cost_assignment : float array array -> int array
(** [min_cost_assignment cost] returns [assign] with [assign.(r)] the
    column matched to row [r], minimizing the total cost. All rows must
    have the same positive length [cols >= rows]. The 0-row matrix
    [[||]] yields [[||]]. Raises [Invalid_argument] on a ragged or
    over-tall matrix, or when any weight is NaN or infinite (NaN would
    silently corrupt the potentials). *)

val max_weight_assignment : float array array -> int array
(** Same matching, maximizing the total weight (implemented by
    negation; weights may be any finite float). *)

val assignment_weight : float array array -> int array -> float
(** [assignment_weight w assign] is the total weight of an assignment,
    a convenience for checking optima in tests and reports. *)

val solve_with_duals :
  float array array -> int array * float array * float array * int
(** [solve_with_duals cost] is the uninstrumented reference core used
    by the {!Matcher} registry: [(assign, u, v, scans)] where [u]/[v]
    are optimal dual potentials satisfying the matcher contract —
    [cost.(i).(j) >= u.(i) +. v.(j)] everywhere, equality on matched
    cells, [v.(j) <= 0.] with equality on unmatched columns — and
    [scans] counts inner relaxation scans. Records no metrics (the
    registry attributes work to the selected matcher itself). Same
    validation as {!min_cost_assignment}. *)
