(* Binary min-heap on (float key, int payload) pairs, ordered
   lexicographically — equal keys resolve to the smallest payload, the
   tie rule both sparse matchers use to keep their scan order (and so
   their counters and results) deterministic. Flat growable arrays, no
   allocation per operation; callers use lazy deletion (skip stale
   entries when popped). *)

type t = { mutable key : float array; mutable pay : int array; mutable size : int }

let create () = { key = Array.make 64 0.0; pay = Array.make 64 0; size = 0 }
let clear h = h.size <- 0
let is_empty h = h.size = 0

let less h a b =
  h.key.(a) < h.key.(b) || (h.key.(a) = h.key.(b) && h.pay.(a) < h.pay.(b))

let swap h a b =
  let k = h.key.(a) and p = h.pay.(a) in
  h.key.(a) <- h.key.(b);
  h.pay.(a) <- h.pay.(b);
  h.key.(b) <- k;
  h.pay.(b) <- p

let push h key pay =
  if h.size = Array.length h.key then begin
    let key' = Array.make (2 * h.size) 0.0 and pay' = Array.make (2 * h.size) 0 in
    Array.blit h.key 0 key' 0 h.size;
    Array.blit h.pay 0 pay' 0 h.size;
    h.key <- key';
    h.pay <- pay'
  end;
  h.key.(h.size) <- key;
  h.pay.(h.size) <- pay;
  let i = ref h.size in
  h.size <- h.size + 1;
  while !i > 0 && less h !i ((!i - 1) / 2) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

(* Pop the minimum; undefined on an empty heap (callers check). *)
let pop h =
  let key = h.key.(0) and pay = h.pay.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.key.(0) <- h.key.(h.size);
    h.pay.(0) <- h.pay.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let best = ref !i in
      if l < h.size && less h l !best then best := l;
      if r < h.size && less h r !best then best := r;
      if !best = !i then continue := false
      else begin
        swap h !i !best;
        i := !best
      end
    done
  end;
  (key, pay)
