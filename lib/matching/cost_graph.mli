(** Sparse bipartite cost graphs in CSR form.

    One row per operation; each row carries only its feasible
    (column, weight) candidate arcs, sorted by column. Binders at
    thousand-op scale emit a few candidates per operation instead of a
    full n×m matrix; dense matrices adapt losslessly via {!of_dense}.

    Construction validates eagerly — every weight finite, every column
    in range, no duplicate arcs, [rows <= cols] — so solvers run
    branch-free. A row with no arcs is accepted at construction and
    surfaces as [Matcher.Infeasible] at solve time. *)

type t

val of_dense : float array array -> t
(** Lossless adapter from a dense matrix (every cell becomes an arc).
    The 0-row matrix [[||]] yields the empty graph. Raises
    [Invalid_argument] on ragged/over-tall input or non-finite
    weights. *)

val of_rows : cols:int -> (int * float) array array -> t
(** [of_rows ~cols candidates] builds a sparse graph where
    [candidates.(r)] lists row [r]'s feasible [(column, weight)] arcs,
    in any order. Raises [Invalid_argument] on an out-of-range column,
    a duplicate arc within a row, a non-finite weight, or
    [rows > cols]. *)

val rows : t -> int
val cols : t -> int

val arcs : t -> int
(** Total number of arcs (nnz). *)

val complete : t -> bool
(** [arcs t = rows t * cols t] — every (row, column) pair is an arc, so
    feasibility pre-checks can be skipped. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** [iter_row t r f] applies [f col weight] to row [r]'s arcs in
    ascending column order. *)

val row_degree : t -> int -> int

val negate : t -> t
(** Same structure, negated weights (max-weight via min-cost). *)

val weight_range : t -> float * float
(** [(min, max)] over all arc weights; [(0., 0.)] when arc-free. *)

val to_dense : fill:float -> t -> float array array
(** Dense matrix with [fill] in non-arc cells — the adapter for the
    dense Hungarian reference. Callers pick [fill] large enough that no
    optimal assignment of a feasible graph ever uses a filler cell. *)

val assignment_weight : t -> int array -> float
(** Total weight of [assign] (row [r] matched to [assign.(r)]). Raises
    [Invalid_argument] if some [(r, assign.(r))] is not an arc. *)
